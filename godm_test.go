package godm

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestSimClusterPutGet(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 4, SharedPoolBytes: 1 << 20, RecvPoolBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := c.Node(0).AddServer("vm0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		data := bytes.Repeat([]byte{0x5A}, 4096)
		tier, err := vs.Put(ctx, 1, data, 4096, 4096)
		if err != nil {
			return err
		}
		if tier != TierSharedMemory {
			t.Errorf("tier = %v, want shared memory first", tier)
		}
		got, loc, err := vs.Get(ctx, 1)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("data mismatch")
		}
		if loc.Tier != TierSharedMemory {
			t.Errorf("loc.Tier = %v", loc.Tier)
		}
		return vs.Delete(ctx, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node-local shared-memory operations are instantaneous in the core
	// layer (devices charge time in the swap layer), so Elapsed may be zero
	// here; it must at least be readable.
	if c.Elapsed() < 0 {
		t.Fatal("negative simulated time")
	}
}

func TestSimClusterOverflowAndFailover(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{
		Nodes:           5,
		SharedPoolBytes: 1 << 20, // one slab: overflows quickly
		RecvPoolBytes:   16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := c.Node(0).AddServer("vm0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		data := bytes.Repeat([]byte{1}, 4096)
		var remoteID EntryID
		for id := EntryID(0); id < 400; id++ {
			tier, err := vs.Put(ctx, id, data, 4096, 4096)
			if err != nil {
				return err
			}
			if tier == TierRemote {
				remoteID = id
			}
		}
		loc, err := vs.Location(remoteID)
		if err != nil {
			return err
		}
		if loc.Tier != TierRemote || len(loc.Replicas) != 2 {
			t.Errorf("remote entry loc = %+v", loc)
		}
		// Partition the primary: the read fails over to a replica.
		c.Partition(0, int(loc.Primary)-1)
		got, _, err := vs.Get(ctx, remoteID)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			t.Error("failover data mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimClusterSwapManager(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 4, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := c.NewSwapManager("vm0", FastSwapConfig(64, 9, true, func(int) float64 { return 2 }))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		for it := 0; it < 3; it++ {
			for pg := 0; pg < 128; pg++ {
				if err := mgr.Touch(ctx, pg, time.Microsecond, true); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.SwapOuts == 0 || st.SharedOuts == 0 {
		t.Fatalf("no swapping happened: %+v", st)
	}
}

func TestSimClusterLinuxBaselineNeedsNoServer(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := c.NewSwapManager("vm0", LinuxConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		for pg := 0; pg < 64; pg++ {
			if err := mgr.Touch(ctx, pg, 0, true); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().DiskOuts == 0 {
		t.Fatal("Linux baseline did not touch disk")
	}
}

func TestSimClusterKVServer(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 4, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := WorkloadByName("Memcached")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := c.NewKVServer("mc0", prof, FastSwapConfig(128, 10, false, func(int) float64 { return 2 }), 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		if err := srv.Set(ctx, "answer", []byte("42")); err != nil {
			return err
		}
		v, ok, err := srv.Get(ctx, "answer")
		if err != nil || !ok || string(v) != "42" {
			t.Errorf("Get = %q %v %v", v, ok, err)
		}
		return srv.RunOps(ctx, 500, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Ops() != 502 {
		t.Fatalf("Ops = %d", srv.Ops())
	}
}

func TestSimClusterRDD(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 4, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := c.NewRDDExecutor("exec0", 64, true)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewRDDEngine(exec)
	err = c.Run(func(ctx context.Context) error {
		src, err := eng.TextFile(8, 16)
		if err != nil {
			return err
		}
		data := src.Map(time.Microsecond).Cache()
		for i := 0; i < 3; i++ {
			if _, err := data.Map(time.Microsecond).Count(ctx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Stats().DisaggHits == 0 {
		t.Fatalf("DAHI executor never hit disaggregated memory: %+v", exec.Stats())
	}
}

func TestWorkloadCatalogExported(t *testing.T) {
	if len(Workloads()) != 10 {
		t.Fatalf("catalog = %d, want 10", len(Workloads()))
	}
}

func TestRunExperiment(t *testing.T) {
	out, err := RunExperiment("mapscale", DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "flat map") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := RunExperiment("bogus", DefaultScale()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestExperimentsRegistryExported(t *testing.T) {
	if len(Experiments()) < 14 {
		t.Fatalf("registry = %d experiments, want >= 14", len(Experiments()))
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	// A real two-node TCP deployment: node 2 donates memory, a client on
	// node 1 parks and retrieves an entry.
	serverCfg := NodeConfig{
		ID:                2,
		SharedPoolBytes:   1 << 20,
		SendPoolBytes:     1 << 20,
		RecvPoolBytes:     4 << 20,
		SlabSize:          1 << 20,
		ReplicationFactor: 1,
	}
	_, serverEP, err := ListenNode(serverCfg, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer serverEP.Close()

	client, clientEP, err := DialClient(1, "127.0.0.1:0", map[NodeID]string{2: serverEP.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer clientEP.Close()

	ctx := context.Background()
	free, err := client.Stats(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if free != 4<<20 {
		t.Fatalf("free = %d, want 4 MiB", free)
	}
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if err := client.Put(ctx, 2, 77, data); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(ctx, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip mismatch")
	}
	if err := client.Delete(ctx, 2, 77); err != nil {
		t.Fatal(err)
	}
	free2, err := client.Stats(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if free2 < free-(1<<20) {
		t.Fatalf("free after delete = %d", free2)
	}
}

func TestBackgroundPumpViaGo(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 4, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := c.NewSwapManager("vm0", FastSwapConfig(32, 10, false, func(int) float64 { return 2 }))
	if err != nil {
		t.Fatal(err)
	}
	done := false
	pumped := 0
	c.Go("pump", func(ctx context.Context) {
		for !done {
			n := mgr.ProactiveSwapIn(ctx, 16)
			pumped += n
			if n == 0 {
				if done {
					return
				}
				// Yield simulated time so the foreground can progress.
				mgrSleep(ctx, time.Millisecond)
			}
		}
	})
	err = c.Run(func(ctx context.Context) error {
		defer func() { done = true }()
		for pg := 0; pg < 96; pg++ {
			if err := mgr.Touch(ctx, pg, 0, true); err != nil {
				return err
			}
		}
		mgr.EvictAll(ctx)
		mgrSleep(ctx, 10*time.Millisecond) // let the pump restore
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pumped == 0 {
		t.Fatal("pump restored nothing")
	}
}

// mgrSleep charges simulated time from a plain context.
func mgrSleep(ctx context.Context, d time.Duration) {
	SleepSim(ctx, d)
}

func TestRemoteCacheOverSimCluster(t *testing.T) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 3, RecvPoolBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Attach the cache to node 0's fabric endpoint; nodes 1-2 are donors.
	cache, err := NewRemoteCache(RemoteCacheConfig{
		LocalBytes: 4096,
		Verbs:      c.Node(0).Endpoint(),
		Peers:      []NodeID{c.Node(1).ID(), c.Node(2).ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		big := bytes.Repeat([]byte{3}, 4096)
		if err := cache.Put(ctx, "hot", big); err != nil {
			return err
		}
		if err := cache.Put(ctx, "hotter", big); err != nil {
			return err
		}
		got, ok, err := cache.Get(ctx, "hot") // parked on a donor
		if err != nil || !ok || !bytes.Equal(got, big) {
			t.Errorf("Get = %v %v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.RemoteHits != 1 {
		t.Fatalf("RemoteHits = %d", st.RemoteHits)
	}
}
