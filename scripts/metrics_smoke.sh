#!/usr/bin/env bash
# Metrics smoke test: boot a real 3-node dmnode cluster, scrape one node's
# /metrics endpoint, and assert the exported Prometheus text carries the
# swap, replication, and transport families. CI runs this after the unit
# suites; it also works locally (`./scripts/metrics_smoke.sh`).
set -euo pipefail

cd "$(dirname "$0")/.."
bin=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/dmnode" ./cmd/dmnode
go build -o "$bin/dmctl" ./cmd/dmctl

"$bin/dmnode" -id 1 -listen 127.0.0.1:7461 -http 127.0.0.1:9461 -recv-mib 16 -shared-mib 16 -tick 500ms \
  -peers "2=127.0.0.1:7462,3=127.0.0.1:7463" &
"$bin/dmnode" -id 2 -listen 127.0.0.1:7462 -recv-mib 16 -shared-mib 16 -tick 500ms \
  -peers "1=127.0.0.1:7461,3=127.0.0.1:7463" &
"$bin/dmnode" -id 3 -listen 127.0.0.1:7463 -recv-mib 16 -shared-mib 16 -tick 500ms \
  -peers "1=127.0.0.1:7461,2=127.0.0.1:7462" &

# Wait for the scrape endpoint, then let a couple of heartbeat ticks land.
for i in $(seq 1 50); do
  curl -fsS -o /dev/null http://127.0.0.1:9461/metrics 2>/dev/null && break
  sleep 0.2
  [ "$i" = 50 ] && { echo "dmnode /metrics never came up" >&2; exit 1; }
done
sleep 1.5

# Drive some data-plane traffic so transport counters move.
"$bin/dmctl" -node 1=127.0.0.1:7461 getput 42
"$bin/dmctl" -node 1=127.0.0.1:7461 stats

out=$(curl -fsS http://127.0.0.1:9461/metrics)
for family in \
  godm_node_swap_faults \
  godm_node_swap_fault_latency_bucket \
  godm_node_replication_writes \
  godm_node_replication_write_latency_bucket \
  godm_node_transport_rpc_rtt_bucket \
  godm_node_core_remote_puts \
; do
  if ! grep -q "^$family" <<<"$out"; then
    echo "missing metric family $family in /metrics output:" >&2
    echo "$out" | head -50 >&2
    exit 1
  fi
done

# The trace surface answers too.
curl -fsS -o /dev/null http://127.0.0.1:9461/trace
curl -fsS -o /dev/null http://127.0.0.1:9461/debug/pprof/

echo "metrics smoke OK"
