#!/usr/bin/env bash
# Allocation budget for the zero-copy data plane.
#
# Runs the hot transport benchmark with -benchmem and fails if its heap
# traffic regresses above the checked-in thresholds. The budget guards the
# vectored-write/scatter-read rewrite (see BENCH_zerocopy.json for how the
# numbers were established):
#
#   BenchmarkTCPNetParallelRead sits at 4097 B/op, 1 alloc/op — the one
#   residual allocation is the result buffer the legacy ReadRegion API hands
#   the caller. Before the rewrite it ran at 4272 B/op, 7 allocs/op, so the
#   thresholds below are chosen to fail on any return of per-frame staging
#   copies or header/pool boxing while leaving room for counter noise.
#
# Must run WITHOUT the race detector: its instrumentation allocates and would
# drown the signal (the zero-alloc AllocsPerRun tests skip under -race for
# the same reason).
set -eu

MAX_B_PER_OP=4224
MAX_ALLOCS_PER_OP=2

out=$(go test -run '^$' -bench 'BenchmarkTCPNetParallelRead$' -benchmem -benchtime 2000x ./internal/tcpnet/)
echo "$out"

line=$(printf '%s\n' "$out" | grep '^BenchmarkTCPNetParallelRead')
b_per_op=$(printf '%s\n' "$line" | awk '{for (i = 2; i <= NF; i++) if ($i == "B/op") print $(i - 1)}')
allocs_per_op=$(printf '%s\n' "$line" | awk '{for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i - 1)}')

if [ -z "$b_per_op" ] || [ -z "$allocs_per_op" ]; then
    echo "alloc_budget: could not parse -benchmem output" >&2
    exit 1
fi

status=0
if [ "$b_per_op" -gt "$MAX_B_PER_OP" ]; then
    echo "alloc_budget: BenchmarkTCPNetParallelRead allocates $b_per_op B/op, budget is $MAX_B_PER_OP" >&2
    status=1
fi
if [ "$allocs_per_op" -gt "$MAX_ALLOCS_PER_OP" ]; then
    echo "alloc_budget: BenchmarkTCPNetParallelRead makes $allocs_per_op allocs/op, budget is $MAX_ALLOCS_PER_OP" >&2
    status=1
fi
if [ "$status" -eq 0 ]; then
    echo "alloc_budget: OK ($b_per_op B/op <= $MAX_B_PER_OP, $allocs_per_op allocs/op <= $MAX_ALLOCS_PER_OP)"
fi
exit "$status"
