#!/usr/bin/env bash
# Observability-plane smoke test: boot a real 3-node dmnode cluster on the
# tree control plane, let the metrics digests ride two heartbeat rounds to
# the root, then assert the root's /cluster aggregate equals the sum of the
# per-node /metrics counters — the end-to-end contract of the tree-aggregated
# observability plane. Also exercises /healthz, /debug/flight, dmctl top, and
# the scriptable dmctl stats -q figures. CI runs this after the unit suites;
# it also works locally (`./scripts/obs_smoke.sh`).
set -euo pipefail

cd "$(dirname "$0")/.."
bin=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/dmnode" ./cmd/dmnode
go build -o "$bin/dmctl" ./cmd/dmctl

"$bin/dmnode" -id 1 -listen 127.0.0.1:7471 -http 127.0.0.1:9471 -recv-mib 16 -shared-mib 16 -tick 500ms \
  -heartbeat tree -peers "2=127.0.0.1:7472,3=127.0.0.1:7473" &
"$bin/dmnode" -id 2 -listen 127.0.0.1:7472 -http 127.0.0.1:9472 -recv-mib 16 -shared-mib 16 -tick 500ms \
  -heartbeat tree -peers "1=127.0.0.1:7471,3=127.0.0.1:7473" &
"$bin/dmnode" -id 3 -listen 127.0.0.1:7473 -http 127.0.0.1:9473 -recv-mib 16 -shared-mib 16 -tick 500ms \
  -heartbeat tree -peers "1=127.0.0.1:7471,2=127.0.0.1:7472" &

for port in 9471 9472 9473; do
  for i in $(seq 1 50); do
    curl -fsS -o /dev/null "http://127.0.0.1:$port/metrics" 2>/dev/null && break
    sleep 0.2
    [ "$i" = 50 ] && { echo "dmnode :$port /metrics never came up" >&2; exit 1; }
  done
done

# Park entries on every node so each one's remote_allocs counter moves, then
# stop driving traffic and let >=2 tree rounds relay the final digests to the
# root. Counters are quiescent after that, so the comparison can be exact.
"$bin/dmctl" -node 1=127.0.0.1:7471 put 101 "alpha"
"$bin/dmctl" -node 2=127.0.0.1:7472 put 202 "beta"
"$bin/dmctl" -node 3=127.0.0.1:7473 put 303 "gamma"
sleep 2.5

# The root is not statically known: it is whichever node's folded store
# covers all 3 contributors.
root_port=""
for port in 9471 9472 9473; do
  if curl -fsS "http://127.0.0.1:$port/cluster" | grep -q "cluster view: 3 contributors"; then
    root_port=$port
    break
  fi
done
[ -n "$root_port" ] || { echo "no node's /cluster covers all 3 contributors" >&2; exit 1; }
echo "root digest store found on :$root_port"

cluster_out=$(curl -fsS "http://127.0.0.1:$root_port/cluster")
agg=$(awk '/^core\/remote_allocs /{print $2}' <<<"$cluster_out")
[ -n "$agg" ] || { echo "aggregate core/remote_allocs missing from /cluster:" >&2; echo "$cluster_out" >&2; exit 1; }

want=0
for port in 9471 9472 9473; do
  per_node=$(curl -fsS "http://127.0.0.1:$port/metrics" | awk '/^godm_node_core_remote_allocs /{print $2}')
  want=$((want + per_node))
done
if [ "$agg" -ne "$want" ] || [ "$want" -eq 0 ]; then
  echo "aggregate remote_allocs $agg != per-node sum $want (or no traffic):" >&2
  echo "$cluster_out" >&2
  exit 1
fi
echo "aggregate remote_allocs $agg == per-node sum $want"

# Liveness and the flight recorder answer on every node.
for port in 9471 9472 9473; do
  curl -fsS "http://127.0.0.1:$port/healthz" | grep -q "state serving" || { echo ":$port /healthz not serving" >&2; exit 1; }
  curl -fsS "http://127.0.0.1:$port/debug/flight" | grep -q "flight recorder:" || { echo ":$port /debug/flight missing" >&2; exit 1; }
done

# dmctl rides the same digests over the fabric (no HTTP needed).
"$bin/dmctl" -node 1=127.0.0.1:7471 top | grep -q "cluster view:" || { echo "dmctl top gave no cluster view" >&2; exit 1; }
count=$("$bin/dmctl" -node 1=127.0.0.1:7471 -q count -op get stats)
p99=$("$bin/dmctl" -node 1=127.0.0.1:7471 -q p99 -op get stats)
case "$count" in ''|*[!0-9]*) echo "dmctl stats -q count gave non-number: $count" >&2; exit 1;; esac
[ -n "$p99" ] || { echo "dmctl stats -q p99 gave nothing" >&2; exit 1; }
echo "dmctl digest figures: get count=$count p99=$p99"

echo "obs smoke OK"
