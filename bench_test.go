package godm

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment end to end on the simulated testbed and
// reports the figure's headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's rows/series. Wall-clock ns/op measures simulator
// cost, not system performance — the shape lives in the custom metrics.

import (
	"context"
	"testing"

	"godm/internal/exp"
)

// benchScale keeps every figure benchmark in the hundreds of milliseconds.
func benchScale() exp.Scale {
	return exp.Scale{
		Pages:      1024,
		Iters:      2,
		KVOps:      8000,
		Fig9Window: 0, // auto
		Seed:       1,
	}
}

func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Table1()
		if len(res.Profiles) != 10 {
			b.Fatal("catalog size")
		}
	}
}

func BenchmarkFig3CompressionRatio(b *testing.B) {
	var last *exp.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var four, zswap float64
	for _, row := range last.Rows {
		four += row.FourGran
		zswap += row.Zswap
	}
	n := float64(len(last.Rows))
	b.ReportMetric(four/n, "avg_ratio_fs4gran")
	b.ReportMetric(zswap/n, "avg_ratio_zswap")
}

func BenchmarkFig4CompressibilityImpact(b *testing.B) {
	var last *exp.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	first, final := last.Rows[0], last.Rows[len(last.Rows)-1]
	b.ReportMetric(float64(first.DiskTime)/float64(final.DiskTime), "disk_speedup_1.3x_to_4x")
	b.ReportMetric(float64(first.RemoteTime)/float64(final.RemoteTime), "remote_speedup_1.3x_to_4x")
}

func BenchmarkFig5CompressionOnOff(b *testing.B) {
	var last *exp.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var sum float64
	for _, row := range last.Rows {
		sum += row.Improvement
	}
	b.ReportMetric(sum/float64(len(last.Rows)), "avg_compression_speedup")
}

func BenchmarkFig6BatchSwapIn(b *testing.B) {
	var last *exp.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	row := last.Rows[len(last.Rows)-1] // largest workload
	b.ReportMetric(float64(row.FastSwapNoPBS)/float64(row.FastSwapPBS), "pbs_speedup_largest")
	b.ReportMetric(float64(row.Linux)/float64(row.FastSwapPBS), "vs_linux_largest")
}

func BenchmarkFig7MLWorkloads(b *testing.B) {
	var last *exp.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AvgOverLinux["50%"], "avg_vs_linux_50")
	b.ReportMetric(last.MaxOverLinux["50%"], "max_vs_linux_50")
	b.ReportMetric(last.AvgOverLinux["75%"], "avg_vs_linux_75")
	b.ReportMetric(last.AvgOverInfiniswap["50%"], "avg_vs_infiniswap_50")
	b.ReportMetric(last.AvgOverInfiniswap["75%"], "avg_vs_infiniswap_75")
}

func BenchmarkFig8DistributionRatio(b *testing.B) {
	var last *exp.Fig8Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		switch row.Workload {
		case "Redis":
			b.ReportMetric(row.OpsPerSec["FS-SM"]/row.OpsPerSec["Linux"], "redis_fssm_vs_linux")
			b.ReportMetric(row.OpsPerSec["FS-RDMA"]/row.OpsPerSec["Infiniswap"], "redis_fsrdma_vs_infiniswap")
		case "Memcached":
			b.ReportMetric(row.OpsPerSec["FS-SM"]/row.OpsPerSec["Linux"], "memcached_fssm_vs_linux")
		case "VoltDB":
			b.ReportMetric(row.OpsPerSec["FS-SM"]/row.OpsPerSec["Linux"], "voltdb_fssm_vs_linux")
		}
	}
}

func BenchmarkFig9RecoveryCurve(b *testing.B) {
	var last *exp.Fig9Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, s := range last.Series {
		switch s.System {
		case "FastSwap+PBS":
			b.ReportMetric(s.RecoverySeconds*1000, "pbs_recovery_ms")
		case "FastSwap-noPBS":
			b.ReportMetric(s.RecoverySeconds*1000, "nopbs_recovery_ms")
		case "Infiniswap":
			b.ReportMetric(s.RecoverySeconds*1000, "infiniswap_recovery_ms")
			b.ReportMetric(s.PeakFraction*100, "infiniswap_final_pct_of_peak")
		}
	}
}

func BenchmarkFig10DAHI(b *testing.B) {
	var last *exp.Fig10Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	agg := map[string][]float64{}
	for _, row := range last.Rows {
		agg[row.Dataset] = append(agg[row.Dataset], row.Speedup)
	}
	for _, ds := range []string{"small", "medium", "large"} {
		var sum float64
		for _, v := range agg[ds] {
			sum += v
		}
		b.ReportMetric(sum/float64(len(agg[ds])), "dahi_speedup_"+ds)
	}
}

func BenchmarkMapScalability(b *testing.B) {
	var last *exp.MapScaleResult
	for i := 0; i < b.N; i++ {
		last = exp.MapScale()
	}
	b.ReportMetric(float64(last.Rows[1].FlatBytes)/float64(1<<30), "flat_10tb_gib")
	b.ReportMetric(float64(last.Rows[1].GroupedBytes[8])/float64(1<<30), "grouped8_10tb_gib")
}

func BenchmarkPlacementBalance(b *testing.B) {
	var last *exp.BalanceResult
	for i := 0; i < b.N; i++ {
		last = exp.Balance(benchScale())
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Imbalance, "imbalance_"+row.Policy)
	}
}

func BenchmarkFailover(b *testing.B) {
	var last *exp.FailoverResult
	for i := 0; i < b.N; i++ {
		res, err := exp.Failover(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.ElectionTicks), "election_ticks")
}

func BenchmarkAblationWindow(b *testing.B) {
	var last *exp.WindowResult
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationWindow(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Rows[0].Completion)/float64(last.Rows[2].Completion), "d16_speedup_over_d1")
}

func BenchmarkAblationReplication(b *testing.B) {
	var last *exp.ReplicationResult
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationReplication(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Rows[1].Completion)/float64(last.Rows[0].Completion), "r3_cost_over_r1")
}

// BenchmarkSimClusterPut measures the real (wall-clock) cost of the public
// put path on the simulated fabric — the library's own overhead.
func BenchmarkSimClusterPut(b *testing.B) {
	c, err := NewSimCluster(SimClusterConfig{Nodes: 4, ReplicationFactor: 1, SharedPoolBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	vs, err := c.Node(0).AddServer("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	err = c.Run(func(ctx context.Context) error {
		// Rotate through a bounded ID window: puts overwrite (and free) old
		// versions, so memory use stays flat however large b.N grows.
		for i := 0; i < b.N; i++ {
			if _, err := vs.Put(ctx, EntryID(i%4096), data, 4096, 4096); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkExtensionXMemPod(b *testing.B) {
	var last *exp.XMemPodResult
	for i := 0; i < b.N; i++ {
		res, err := exp.XMemPod(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].Speedup, "ssd_speedup_exhausted")
}
