package godm_test

import (
	"context"
	"fmt"
	"log"

	"godm"
)

// Example builds a four-node simulated cluster, overflows a virtual
// server's entries from its node's shared pool into replicated remote
// memory, and reads one back after partitioning its primary replica away.
func Example() {
	c, err := godm.NewSimCluster(godm.SimClusterConfig{
		Nodes:             4,
		SharedPoolBytes:   1 << 20,
		RecvPoolBytes:     16 << 20,
		ReplicationFactor: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	vm, err := c.Node(0).AddServer("vm0", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		page := make([]byte, 4096)
		var remote godm.EntryID
		for id := godm.EntryID(0); id < 300; id++ {
			tier, err := vm.Put(ctx, id, page, 4096, 4096)
			if err != nil {
				return err
			}
			if tier == godm.TierRemote {
				remote = id
			}
		}
		loc, err := vm.Location(remote)
		if err != nil {
			return err
		}
		c.Partition(0, int(loc.Primary)-1) // cut off the primary replica
		data, _, err := vm.Get(ctx, remote)
		if err != nil {
			return err
		}
		fmt.Printf("read %d bytes after primary failure\n", len(data))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: read 4096 bytes after primary failure
}

// ExampleSimCluster_NewSwapManager pages an iterative job through FastSwap:
// the working set is twice the resident budget, yet the job never touches
// the disk because overflow lands in disaggregated memory.
func ExampleSimCluster_NewSwapManager() {
	c, err := godm.NewSimCluster(godm.SimClusterConfig{Nodes: 4, ReplicationFactor: 1})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := c.NewSwapManager("vm0", godm.FastSwapConfig(128, 9, true,
		func(page int) float64 { return 2.5 }))
	if err != nil {
		log.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		for iter := 0; iter < 3; iter++ {
			for page := 0; page < 256; page++ {
				if err := mgr.Touch(ctx, page, 0, true); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := mgr.Stats()
	fmt.Printf("disk I/Os: %d\n", st.DiskOuts+st.DiskIns)
	// Output: disk I/Os: 0
}
