package main

import (
	"testing"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

// startNode brings up a real dmnode-equivalent on loopback for dmctl to
// talk to.
func startNode(t *testing.T, id transport.NodeID) *tcpnet.Endpoint {
	t.Helper()
	ep, err := tcpnet.Listen(id, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewNode(core.Config{
		ID:                id,
		SharedPoolBytes:   1 << 20,
		SendPoolBytes:     1 << 20,
		RecvPoolBytes:     2 << 20,
		SlabSize:          1 << 20,
		ReplicationFactor: 1,
	}, ep, dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	return ep
}

func TestUsageErrors(t *testing.T) {
	tests := [][]string{
		{},                                    // no command
		{"stats"},                             // no -node
		{"-node", "garbage", "stats"},         // malformed node
		{"-node", "x=host:1", "stats"},        // bad id
		{"-node", "1=127.0.0.1:1", "explode"}, // unknown command
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestShardAgainstLiveNode(t *testing.T) {
	ep := startNode(t, 9)
	// The node hosts no stripes, so the probe reports not-hosted; the RPC
	// round trip and argument plumbing are what is under test here.
	if err := run([]string{"-node", "9=" + ep.Addr(), "shard", "1", "42"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "shard", "1"}); err == nil {
		t.Error("shard without KEY succeeded, want usage error")
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "shard", "x", "42"}); err == nil {
		t.Error("shard with bad owner succeeded, want error")
	}
}

func TestStatsAgainstLiveNode(t *testing.T) {
	ep := startNode(t, 9)
	if err := run([]string{"-node", "9=" + ep.Addr(), "stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestPutAndGetPutAgainstLiveNode(t *testing.T) {
	ep := startNode(t, 9)
	if err := run([]string{"-node", "9=" + ep.Addr(), "put", "7", "hello"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "getput", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchPutAndGetPutAgainstLiveNode(t *testing.T) {
	ep := startNode(t, 9)
	if err := run([]string{"-node", "9=" + ep.Addr(), "-batch", "put",
		"1=alpha", "2=beta", "3=gamma"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "-batch", "-compress", "getput",
		"11", "12", "13"}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchArgValidation(t *testing.T) {
	ep := startNode(t, 9)
	if err := run([]string{"-node", "9=" + ep.Addr(), "-batch", "put", "noequals"}); err == nil {
		t.Fatal("expected error for entry without KEY=DATA form")
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "-batch", "put", "x=data"}); err == nil {
		t.Fatal("expected error for non-numeric key")
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "-batch", "getput", "notanumber"}); err == nil {
		t.Fatal("expected error for non-numeric key")
	}
}

func TestPutArgValidation(t *testing.T) {
	ep := startNode(t, 9)
	if err := run([]string{"-node", "9=" + ep.Addr(), "put", "notanumber", "x"}); err == nil {
		t.Fatal("expected error for bad key")
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "put", "1"}); err == nil {
		t.Fatal("expected error for missing data")
	}
	if err := run([]string{"-node", "9=" + ep.Addr(), "getput"}); err == nil {
		t.Fatal("expected error for missing key")
	}
}

func TestEpochAgainstLiveNode(t *testing.T) {
	ep := startNode(t, 9)
	if err := run([]string{"-node", "9=" + ep.Addr(), "epoch"}); err != nil {
		t.Fatal(err)
	}
}

func TestDecommissionAgainstLiveNode(t *testing.T) {
	ep := startNode(t, 9)
	// A lone empty node drains zero blocks but must still answer cleanly.
	if err := run([]string{"-node", "9=" + ep.Addr(), "decommission"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnreachableNode(t *testing.T) {
	// Port 1 on loopback: nothing listens there.
	if err := run([]string{"-node", "5=127.0.0.1:1", "stats"}); err == nil {
		t.Fatal("expected error for unreachable node")
	}
}
