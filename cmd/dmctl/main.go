// Command dmctl talks to running dmnode daemons: it queries free
// disaggregated memory, and parks/retrieves data entries in a node's
// donated receive pool over the verbs protocol.
//
//	dmctl -node 1=localhost:7401 stats
//	dmctl -node 1=localhost:7401 top           # cluster-wide digest view
//	dmctl -node 1=localhost:7401 -q p99 -op get stats
//	dmctl -node 1=localhost:7401 put 42 "hello disaggregated world"
//	dmctl -node 1=localhost:7401 getput 42    # put then read back
//	dmctl -node 1=localhost:7401 -batch put 1=alpha 2=beta 3=gamma
//	dmctl -node 1=localhost:7401 -batch getput 1 2 3
//	dmctl -node 1=localhost:7401 epoch        # epoch-versioned memory map
//	dmctl -node 3=localhost:7403 shard 1 42   # which stripe shard does node 3 host?
//	dmctl -node 2=localhost:7402 decommission # drain node 2 gracefully
//	dmctl -node 2=localhost:7402 harvest 1048576 # claw back 1 MiB of donated pool
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"godm/internal/core"
	"godm/internal/metrics"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dmctl", flag.ContinueOnError)
	var (
		nodeFlag = fs.String("node", "", "target node as id=host:port")
		myID     = fs.Int("id", 1000, "this client's node id")
		timeout  = fs.Duration("timeout", 10*time.Second, "overall deadline for the command (0 = none)")
		batch    = fs.Bool("batch", false, "windowed data plane: put takes KEY=DATA pairs, getput takes keys; one alloc RPC, coalesced writes")
		compress = fs.Bool("compress", false, "compress entries at or above the default threshold before they hit the wire")
		quantQ   = fs.String("q", "", "with stats: print one figure of the cluster latency digest (p50|p90|p99|p999|mean|max|count)")
		opFam    = fs.String("op", "get", "with stats -q: op family the figure is computed for (e.g. get, put)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodeFlag == "" || fs.NArg() < 1 {
		return fmt.Errorf("usage: dmctl -node id=host:port [-batch] [-compress] <stats|top|put KEY DATA|getput KEY|shard OWNER KEY|epoch|decommission|harvest BYTES>")
	}
	idStr, addr, ok := strings.Cut(*nodeFlag, "=")
	if !ok {
		return fmt.Errorf("bad -node %q, want id=host:port", *nodeFlag)
	}
	targetID, err := strconv.Atoi(idStr)
	if err != nil {
		return fmt.Errorf("bad node id: %v", err)
	}
	target := transport.NodeID(targetID)

	ep, err := tcpnet.Listen(transport.NodeID(*myID), "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ep.Close()
	ep.AddPeer(target, addr)
	var copts []core.ClientOption
	if *compress {
		copts = append(copts, core.WithCompression(0))
	}
	client := core.NewClient(ep, copts...)
	ctx := context.Background()
	if *timeout > 0 {
		// The transport honors deadlines mid-RPC, so a hung daemon fails the
		// command promptly instead of wedging it.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch fs.Arg(0) {
	case "top":
		// One control-plane RPC returns the queried node's folded digest
		// store; asked of the tree root, that is the whole cluster.
		view, err := client.ClusterView(ctx, target)
		if err != nil {
			return err
		}
		return metrics.RenderClusterView(os.Stdout, view)
	case "stats":
		if *quantQ != "" {
			// Scriptable single-figure mode, riding the same digest decoding
			// as top: aggregate the view, pick the op family, print one value.
			view, err := client.ClusterView(ctx, target)
			if err != nil {
				return err
			}
			agg, err := metrics.Aggregate(view)
			if err != nil {
				return err
			}
			h, ok := agg.OpFamilyHistogram(*opFam)
			if !ok {
				return fmt.Errorf("no latency digest for op family %q (known: %v)", *opFam, agg.OpFamilies())
			}
			fig, err := digestFigure(h, *quantQ)
			if err != nil {
				return err
			}
			fmt.Println(fig)
			return nil
		}
		free, err := client.Stats(ctx, target)
		if err != nil {
			return err
		}
		fmt.Printf("node %d free receive-pool bytes: %d (%.1f MiB)\n", target, free, float64(free)/(1<<20))
		// The instrumentation tree rides a separate control-plane op; a
		// daemon predating it still answers the free-memory query above.
		tree, err := client.Metrics(ctx, target)
		if err != nil {
			fmt.Printf("(metrics tree unavailable: %v)\n", err)
			return nil
		}
		fmt.Print(tree)
		return nil
	case "put":
		if *batch {
			if fs.NArg() < 2 {
				return fmt.Errorf("usage: -batch put KEY=DATA [KEY=DATA ...]")
			}
			entries := make([]core.Entry, 0, fs.NArg()-1)
			total := 0
			for _, arg := range fs.Args()[1:] {
				keyStr, data, ok := strings.Cut(arg, "=")
				if !ok {
					return fmt.Errorf("bad entry %q, want KEY=DATA", arg)
				}
				key, err := strconv.ParseUint(keyStr, 10, 64)
				if err != nil {
					return fmt.Errorf("bad key in %q: %v", arg, err)
				}
				entries = append(entries, core.Entry{Key: key, Data: []byte(data)})
				total += len(data)
			}
			if err := client.PutAll(ctx, target, entries); err != nil {
				return err
			}
			fmt.Printf("parked %d entries (%d bytes) on node %d in one batch\n", len(entries), total, target)
			return nil
		}
		if fs.NArg() < 3 {
			return fmt.Errorf("usage: put KEY DATA")
		}
		key, err := strconv.ParseUint(fs.Arg(1), 10, 64)
		if err != nil {
			return fmt.Errorf("bad key: %v", err)
		}
		if err := client.Put(ctx, target, key, []byte(fs.Arg(2))); err != nil {
			return err
		}
		fmt.Printf("parked %d bytes under key %d on node %d\n", len(fs.Arg(2)), key, target)
		return nil
	case "getput":
		if fs.NArg() < 2 {
			return fmt.Errorf("usage: getput KEY [KEY ...]")
		}
		if *batch {
			keys := make([]uint64, 0, fs.NArg()-1)
			entries := make([]core.Entry, 0, fs.NArg()-1)
			for _, arg := range fs.Args()[1:] {
				key, err := strconv.ParseUint(arg, 10, 64)
				if err != nil {
					return fmt.Errorf("bad key %q: %v", arg, err)
				}
				keys = append(keys, key)
				entries = append(entries, core.Entry{Key: key, Data: []byte(fmt.Sprintf("probe-entry-%d", key))})
			}
			if err := client.PutAll(ctx, target, entries); err != nil {
				return err
			}
			got, err := client.GetAll(ctx, target, keys)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if string(got[e.Key]) != string(e.Data) {
					return fmt.Errorf("key %d: read back %q, wrote %q", e.Key, got[e.Key], e.Data)
				}
			}
			fmt.Printf("batched round trip ok: %d entries\n", len(entries))
			return client.DeleteAll(ctx, target, keys)
		}
		key, err := strconv.ParseUint(fs.Arg(1), 10, 64)
		if err != nil {
			return fmt.Errorf("bad key: %v", err)
		}
		payload := []byte(fmt.Sprintf("probe-entry-%d", key))
		if err := client.Put(ctx, target, key, payload); err != nil {
			return err
		}
		got, err := client.Get(ctx, target, key)
		if err != nil {
			return err
		}
		fmt.Printf("round trip ok: %q\n", got)
		return client.Delete(ctx, target, key)
	case "epoch":
		// Two syncs prove the delta path end to end: the first is a cold
		// snapshot, the second asks for deltas past the received epoch.
		if err := client.SyncMap(ctx, target); err != nil {
			return err
		}
		if err := client.SyncMap(ctx, target); err != nil {
			return err
		}
		m := client.Map()
		fmt.Println(m)
		snap := m.Snapshot()
		for _, s := range snap.Nodes {
			state := "down"
			if s.Alive {
				state = "alive"
			}
			fmt.Printf("  node %d: %s group=%d free=%d\n", s.ID, state, s.Group, s.FreeBytes)
		}
		for _, gl := range snap.Leaders {
			fmt.Printf("  group %d leader: node %d\n", gl.Group, gl.Leader)
		}
		if snap.RootOK {
			fmt.Printf("  root: node %d\n", snap.Root)
		}
		return nil
	case "shard":
		// Stripe-placement probe for erasure-coded entries: asks the target
		// donor which shard of OWNER's stripe under KEY it hosts.
		if fs.NArg() < 3 {
			return fmt.Errorf("usage: shard OWNER KEY")
		}
		ownerID, err := strconv.Atoi(fs.Arg(1))
		if err != nil {
			return fmt.Errorf("bad owner id: %v", err)
		}
		key, err := strconv.ParseUint(fs.Arg(2), 10, 64)
		if err != nil {
			return fmt.Errorf("bad key: %v", err)
		}
		hosted, idx, k, m, err := client.ShardStat(ctx, target, transport.NodeID(ownerID), key)
		if err != nil {
			return err
		}
		if !hosted {
			fmt.Printf("node %d hosts no shard of owner %d key %d\n", target, ownerID, key)
			return nil
		}
		kind := "data"
		if idx >= k {
			kind = "parity"
		}
		fmt.Printf("node %d hosts shard %d/%d (%s) of owner %d key %d under rs%d.%d\n",
			target, idx, k+m, kind, ownerID, key, k, m)
		return nil
	case "decommission":
		moved, err := client.Decommission(ctx, target)
		if err != nil {
			return err
		}
		fmt.Printf("node %d drained: %d blocks migrated; stale readers get redirects\n", target, moved)
		return nil
	case "harvest":
		if fs.NArg() < 2 {
			return fmt.Errorf("usage: harvest BYTES")
		}
		want, err := strconv.ParseInt(fs.Arg(1), 10, 64)
		if err != nil {
			return fmt.Errorf("bad byte count: %v", err)
		}
		reclaimed, moved, err := client.Harvest(ctx, target, want)
		if err != nil {
			return err
		}
		fmt.Printf("node %d harvested %d of %d bytes (%d blocks migrated); node stays in service\n",
			target, reclaimed, want, moved)
		return nil
	default:
		return fmt.Errorf("unknown command %q", fs.Arg(0))
	}
}

// digestFigure extracts one named figure from an op family's merged latency
// histogram.
func digestFigure(h metrics.HistogramSnapshot, q string) (string, error) {
	switch q {
	case "p50":
		return h.Quantile(0.50).String(), nil
	case "p90":
		return h.Quantile(0.90).String(), nil
	case "p99":
		return h.Quantile(0.99).String(), nil
	case "p999":
		return h.Quantile(0.999).String(), nil
	case "mean":
		if h.Count == 0 {
			return time.Duration(0).String(), nil
		}
		return (h.Sum / time.Duration(h.Count)).String(), nil
	case "max":
		return h.Max.String(), nil
	case "count":
		return strconv.FormatInt(h.Count, 10), nil
	default:
		return "", fmt.Errorf("unknown figure %q, want p50|p90|p99|p999|mean|max|count", q)
	}
}
