// Command dmsim reproduces the paper's evaluation on the simulated testbed.
//
// Usage:
//
//	dmsim -list                  # list every experiment
//	dmsim -exp fig7              # run one experiment
//	dmsim -exp all               # run the whole suite
//	dmsim -exp fig7 -pages 4096  # higher-fidelity run
//	dmsim -exp prefetch -json BENCH_prefetch.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"godm/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dmsim", flag.ContinueOnError)
	var (
		expID    = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = fs.Bool("list", false, "list experiments and exit")
		pages    = fs.Int("pages", 0, "working-set pages per VM (0 = default)")
		iters    = fs.Int("iters", 0, "ML iterations (0 = default)")
		kvOps    = fs.Int("kvops", 0, "KV operations (0 = default)")
		window   = fs.Duration("fig9window", 0, "recovery window (0 = auto)")
		seed     = fs.Int64("seed", 1, "random seed")
		jsonPath = fs.String("json", "", "write the (single) experiment's result as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Paper)
		}
		return 0
	}
	scale := exp.DefaultScale()
	if *pages > 0 {
		scale.Pages = *pages
	}
	if *iters > 0 {
		scale.Iters = *iters
	}
	if *kvOps > 0 {
		scale.KVOps = *kvOps
	}
	if *window > 0 {
		scale.Fig9Window = *window
	}
	scale.Seed = *seed

	var toRun []exp.Experiment
	if *expID == "all" {
		toRun = exp.Registry()
	} else {
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		toRun = []exp.Experiment{e}
	}
	if *jsonPath != "" && len(toRun) != 1 {
		fmt.Fprintln(os.Stderr, "-json requires a single -exp id")
		return 2
	}
	for _, e := range toRun {
		start := time.Now()
		res, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			return 1
		}
		fmt.Printf("== %s — %s (ran in %v)\n%s\n", e.ID, e.Paper, time.Since(start).Round(time.Millisecond), res)
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: marshal: %v\n", e.ID, err)
				return 1
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				return 1
			}
		}
	}
	return 0
}
