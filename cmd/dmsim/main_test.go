package main

import "testing"

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d", code)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if code := run([]string{"-exp", "mapscale"}); code != 0 {
		t.Fatalf("run(mapscale) = %d", code)
	}
}

func TestRunWithScaleFlags(t *testing.T) {
	if code := run([]string{"-exp", "balance", "-kvops", "1000", "-seed", "7"}); code != 0 {
		t.Fatalf("run(balance) = %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-exp", "fig99"}); code != 2 {
		t.Fatalf("run(fig99) = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}
