package main

import (
	"testing"

	"godm/internal/transport"
)

func TestParsePeers(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    map[transport.NodeID]string
		wantErr bool
	}{
		{name: "empty", in: "", want: map[transport.NodeID]string{}},
		{name: "single", in: "2=localhost:7402",
			want: map[transport.NodeID]string{2: "localhost:7402"}},
		{name: "multiple", in: "2=h2:7402,3=h3:7403",
			want: map[transport.NodeID]string{2: "h2:7402", 3: "h3:7403"}},
		{name: "missing equals", in: "2localhost", wantErr: true},
		{name: "bad id", in: "x=localhost:1", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := parsePeers(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for id, addr := range tt.want {
				if got[id] != addr {
					t.Fatalf("got[%d] = %q, want %q", id, got[id], addr)
				}
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-peers", "garbage"}); err == nil {
		t.Fatal("expected error for malformed peers")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("expected error for unknown flag")
	}
}
