package main

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/faulty"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

func TestParsePeers(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    map[transport.NodeID]string
		wantErr bool
	}{
		{name: "empty", in: "", want: map[transport.NodeID]string{}},
		{name: "single", in: "2=localhost:7402",
			want: map[transport.NodeID]string{2: "localhost:7402"}},
		{name: "multiple", in: "2=h2:7402,3=h3:7403",
			want: map[transport.NodeID]string{2: "h2:7402", 3: "h3:7403"}},
		{name: "missing equals", in: "2localhost", wantErr: true},
		{name: "bad id", in: "x=localhost:1", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := parsePeers(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for id, addr := range tt.want {
				if got[id] != addr {
					t.Fatalf("got[%d] = %q, want %q", id, got[id], addr)
				}
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-peers", "garbage"}); err == nil {
		t.Fatal("expected error for malformed peers")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("expected error for unknown flag")
	}
	if err := run([]string{"-heartbeat", "gossip"}); err == nil {
		t.Fatal("expected error for unknown heartbeat mode")
	}
	if err := run([]string{"-durability", "raid5"}); err == nil {
		t.Fatal("expected error for unknown durability policy")
	}
	// rs4.2 stripes across 6 distinct donors; one peer cannot host it.
	err := run([]string{"-durability", "rs4.2", "-peers", "2=localhost:7402"})
	if err == nil || !strings.Contains(err.Error(), "needs 6 peers") {
		t.Fatalf("expected peer-count refusal for rs4.2 with 1 peer, got %v", err)
	}
}

// TestTickOnceTreeMode drives the daemon's tick in tree mode: heartbeats and
// map deltas flow to tree targets only, the watch-scoped detector advances,
// and the tick survives an unreachable peer exactly like the mesh path.
func TestTickOnceTreeMode(t *testing.T) {
	tc := newTickCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tc.inj.SetEnabled(false)
	var lines []string
	logf := func(format string, v ...any) { lines = append(lines, fmt.Sprintf(format, v...)) }
	before := tc.dir.Epoch()
	for i := 0; i < 3; i++ {
		if err := tickOnce(ctx, tc.node, tc.dir, true, logf); err != nil {
			t.Fatalf("tree tickOnce %d: %v", i, err)
		}
	}
	if !tc.dir.Alive(cluster.NodeID(tc.node.ID())) {
		t.Fatal("node not alive in its own directory after tree ticks")
	}
	if tc.dir.Epoch() < before {
		t.Fatalf("directory epoch went backwards: %d -> %d", before, tc.dir.Epoch())
	}
	// A wedged fabric must not kill the tick loop in tree mode either.
	tc.inj.SetEnabled(true)
	tc.inj.AddRules([]faulty.Rule{{
		Kind: faulty.KindDrop, Verb: faulty.VerbAny,
		From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100,
	}})
	if err := tickOnce(ctx, tc.node, tc.dir, true, logf); err != nil {
		t.Fatalf("tree tickOnce during outage: %v, want nil", err)
	}
}

// tickCluster is a four-node in-process cluster whose first node speaks
// through a fault injector — the regression fixture for the daemon's tick
// loop.
type tickCluster struct {
	inj  *faulty.Injector
	node *core.Node // node 1, faulty endpoint
	dir  *cluster.Directory
	vs   *core.VirtualServer
}

func newTickCluster(t *testing.T) *tickCluster {
	t.Helper()
	const n = 4
	inj := faulty.New(1)
	addrs := map[transport.NodeID]string{}
	var eps []*tcpnet.Endpoint
	for i := 1; i <= n; i++ {
		ep, err := tcpnet.Listen(transport.NodeID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
		addrs[ep.ID()] = ep.Addr()
		t.Cleanup(func() { _ = ep.Close() })
	}
	tc := &tickCluster{inj: inj}
	for i, ep := range eps {
		for id, addr := range addrs {
			if id != ep.ID() {
				ep.AddPeer(id, addr)
			}
		}
		dir, err := cluster.NewDirectory(cluster.Config{GroupSize: n, HeartbeatTimeout: 3})
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j <= n; j++ {
			if j != i+1 {
				dir.Join(cluster.NodeID(j), 1<<20)
			}
		}
		fabric := transport.Endpoint(ep)
		if i == 0 {
			fabric = inj.Wrap(ep)
		}
		node, err := core.NewNode(core.Config{
			ID:                ep.ID(),
			SharedPoolBytes:   8192,
			SendPoolBytes:     8192,
			RecvPoolBytes:     1 << 20,
			SlabSize:          4096,
			ReplicationFactor: 2,
		}, fabric, dir)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			tc.node, tc.dir = node, dir
			vs, err := node.AddServer("tick-test", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			tc.vs = vs
		}
	}
	return tc
}

// TestTickOnceRetriesUnreachablePeer reproduces the mid-tick peer loss: a
// replica holder becomes unreachable while a repair is pending, so Maintain
// fails with transport.ErrUnreachable. The tick must log and carry on — not
// kill the daemon — and the next tick, with the peer back, must complete the
// repair it kept queued.
func TestTickOnceRetriesUnreachablePeer(t *testing.T) {
	tc := newTickCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	payload := []byte("tick-loop-regression-payload")
	if err := tc.vs.PutRemote(ctx, 1, payload, 4096, 4096); err != nil {
		t.Fatalf("PutRemote: %v", err)
	}
	loc, err := tc.vs.Location(1)
	if err != nil {
		t.Fatal(err)
	}
	lost := transport.NodeID(loc.Replicas[0])
	if queued := tc.node.RepairLost(lost); queued != 1 {
		t.Fatalf("RepairLost queued %d repairs, want 1", queued)
	}

	// Every fabric operation from node 1 now fails as unreachable.
	tc.inj.AddRules([]faulty.Rule{{
		Kind: faulty.KindDrop, Verb: faulty.VerbAny,
		From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100,
	}})
	var lines []string
	logf := func(format string, v ...any) { lines = append(lines, fmt.Sprintf(format, v...)) }
	if err := tickOnce(ctx, tc.node, tc.dir, false, logf); err != nil {
		t.Fatalf("tickOnce during outage: %v, want nil (logged retry)", err)
	}
	retried := false
	for _, l := range lines {
		if strings.Contains(l, "retrying next tick") {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("no retry log line during outage; got %q", lines)
	}

	// Fabric heals; the queued repair completes and the lost holder is
	// replaced.
	tc.inj.SetEnabled(false)
	lines = nil
	if err := tickOnce(ctx, tc.node, tc.dir, false, logf); err != nil {
		t.Fatalf("tickOnce after heal: %v", err)
	}
	repaired := false
	for _, l := range lines {
		if strings.Contains(l, "re-replicated 1 entries") {
			repaired = true
		}
	}
	if !repaired {
		t.Fatalf("repair did not complete after heal; got %q", lines)
	}
	loc, err = tc.vs.Location(1)
	if err != nil {
		t.Fatal(err)
	}
	holders := []transport.NodeID{transport.NodeID(loc.Primary)}
	for _, r := range loc.Replicas {
		holders = append(holders, transport.NodeID(r))
	}
	for _, h := range holders {
		if h == lost {
			t.Fatalf("lost node %d still in replica set after repair", lost)
		}
	}
	got, _, err := tc.vs.Get(ctx, 1)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("entry unreadable after repair: %q, %v", got, err)
	}
}
