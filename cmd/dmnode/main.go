// Command dmnode runs one disaggregated memory node as a real process: it
// listens for verbs traffic over TCP, donates a receive pool to the cluster,
// serves control-plane allocations, and periodically heartbeats its peers
// and repairs lost replicas.
//
// A three-node cluster on one machine:
//
//	dmnode -id 1 -listen :7401 -peers 2=localhost:7402,3=localhost:7403
//	dmnode -id 2 -listen :7402 -peers 1=localhost:7401,3=localhost:7403
//	dmnode -id 3 -listen :7403 -peers 1=localhost:7401,2=localhost:7402
//
// Then park data in a node's pool with dmctl.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/metrics"
	"godm/internal/obs"
	"godm/internal/placement"
	"godm/internal/swap"
	"godm/internal/tcpnet"
	"godm/internal/trace"
	"godm/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dmnode", flag.ContinueOnError)
	var (
		id        = fs.Int("id", 1, "node id (unique per cluster)")
		listen    = fs.String("listen", ":7401", "listen address")
		peersFlag = fs.String("peers", "", "comma-separated id=host:port peer list")
		recvMiB   = fs.Int64("recv-mib", 256, "receive pool donated to the cluster (MiB)")
		sharedMiB = fs.Int64("shared-mib", 256, "node-coordinated shared pool (MiB)")
		replicas  = fs.Int("replicas", 3, "replication factor for remote entries")
		durable   = fs.String("durability", "", "remote durability policy: rf<N> full copies or rs<K>.<M> erasure coding (empty = -replicas full copies)")
		tick      = fs.Duration("tick", 2*time.Second, "heartbeat/maintenance interval")
		workers   = fs.Int("call-workers", tcpnet.DefaultCallConcurrency, "max concurrent control-plane handlers")
		lanes     = fs.Int("conns-per-peer", 0, "pooled TCP connections per peer (0 = auto)")
		shards    = fs.Int("pool-shards", 0, "lock shards per memory pool (0 = auto, 1 = single-lock)")
		httpAddr  = fs.String("http", "", "serve /metrics, /stats, /trace, and /debug/pprof on this address (empty = disabled)")
		hbMode    = fs.String("heartbeat", "mesh", "control-plane scheme: mesh (all-to-all) or tree (members<->group leader<->root, O(group) per tick)")
		groupSize = fs.Int("group-size", 0, "directory group size for the heartbeat tree (0 = one flat group)")
		drain     = fs.Bool("drain", false, "on shutdown, decommission first: migrate hosted blocks to peers and announce departure")
		balancer  = fs.String("balancer", "power-of-two", "remote-placement policy: power-of-two, load-aware, weighted-rr, round-robin, or random")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *hbMode != "mesh" && *hbMode != "tree" {
		return fmt.Errorf("bad -heartbeat %q, want mesh or tree", *hbMode)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}

	opts := []tcpnet.Option{tcpnet.WithCallConcurrency(*workers)}
	if *lanes > 0 {
		opts = append(opts, tcpnet.WithConnsPerPeer(*lanes))
	}
	ep, err := tcpnet.Listen(transport.NodeID(*id), *listen, opts...)
	if err != nil {
		return err
	}
	defer ep.Close()
	for peerID, addr := range peers {
		ep.AddPeer(peerID, addr)
	}

	gs := *groupSize
	if gs <= 0 {
		gs = len(peers) + 1
	}
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: gs, HeartbeatTimeout: 3})
	if err != nil {
		return err
	}
	// Seed the full roster — self included — in ID order, so every daemon
	// computes identical group assignments for the heartbeat tree. (Map
	// iteration order or joining self last would skew placement per node.)
	roster := make([]int, 0, len(peers)+1)
	roster = append(roster, *id)
	for peerID := range peers {
		roster = append(roster, int(peerID))
	}
	sort.Ints(roster)
	for _, member := range roster {
		dir.Join(cluster.NodeID(member), 0)
	}

	factor := *replicas
	if len(peers) < factor {
		factor = len(peers)
	}
	if factor < 1 {
		factor = 1
	}
	// An explicit durability policy is refused up front if the roster cannot
	// host it: unlike -replicas (clamped above), an RS stripe needs all k+m
	// shards on distinct donors or every put would fail.
	if *durable != "" {
		width, err := core.DurabilityWidth(*durable, factor)
		if err != nil {
			return err
		}
		if width > len(peers) {
			return fmt.Errorf("-durability %s needs %d peers for its shards, have %d", *durable, width, len(peers))
		}
	}
	// One tracer, one flight recorder, and one metrics tree per process. The
	// node's fabric traffic runs through the trace middleware so a remote
	// op's spans reassemble under its caller's trace; the raw endpoint keeps
	// serving Addr/AddPeer/transport metrics. The flight recorder is always
	// on: it retains recent completed timelines and every slow-op, dumpable
	// via /debug/flight or SIGQUIT without restarting the daemon.
	flight := trace.NewFlight()
	tracer := trace.New(trace.WithFlight(flight))
	tree := metrics.NewTree()
	tree.Attach("node/transport", ep.Metrics())
	// Pre-declare the swap families: dmnode hosts no swap engine itself, but
	// scrapers want the full schema (zero-valued) from every node.
	swap.NewMetrics(tree.Registry("node/swap"))

	bal, err := buildBalancer(*balancer, int64(*id)+1)
	if err != nil {
		return err
	}
	node, err := core.NewNode(core.Config{
		ID:                transport.NodeID(*id),
		SharedPoolBytes:   *sharedMiB << 20,
		SendPoolBytes:     64 << 20,
		RecvPoolBytes:     *recvMiB << 20,
		SlabSize:          1 << 20,
		ReplicationFactor: factor,
		Durability:        *durable,
		PoolShards:        *shards,
		Balancer:          bal,
	}, transport.Chain(ep, trace.Middleware(tracer)), dir)
	if err != nil {
		return err
	}
	tree.Attach("node/core", node.Metrics())
	tree.Attach("node/replication", node.ReplicationMetrics())
	node.SetMetricsTree(tree)

	if *httpAddr != "" {
		srv, bound, err := obs.Serve(*httpAddr, obs.Options{
			Tree:    tree,
			Tracer:  tracer,
			Flight:  flight,
			Cluster: node.ClusterStore(),
			Health: func() obs.Health {
				return obs.Health{Node: int64(*id), Epoch: uint64(dir.Epoch()), Draining: node.Draining()}
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("observability on http://%s (/metrics /stats /cluster /trace /debug/flight /healthz /debug/pprof)", bound)
	}
	policy := fmt.Sprintf("replication %d", factor)
	if *durable != "" {
		policy = "durability " + *durable
	}
	log.Printf("dmnode %d listening on %s, donating %d MiB, %d peers, %s",
		*id, ep.Addr(), *recvMiB, len(peers), policy)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	// SIGQUIT dumps the flight recorder to the log and keeps serving — the
	// operator's "what just happened" lever on a live daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	rpcRTT := ep.Metrics().Histogram("rpc_rtt")
	bytesTx := ep.Metrics().Counter("bytes_tx")
	bytesRx := ep.Metrics().Counter("bytes_rx")
	reconnects := ep.Metrics().Counter("reconnect_attempts")
	for {
		select {
		case <-ticker.C:
			// Bound each maintenance round by the tick so a wedged peer can
			// never stall the loop past one interval: the transport honors
			// cancellation mid-RPC.
			ctx, cancel := context.WithTimeout(context.Background(), *tick)
			ctx = trace.WithTracer(ctx, tracer)
			err := tickOnce(ctx, node, dir, *hbMode == "tree", log.Printf)
			cancel()
			if err != nil {
				return fmt.Errorf("maintenance tick: %w", err)
			}
			st := node.Stats()
			log.Printf("stats: remote-allocs=%d shared-puts=%d remote-puts=%d evicted=%d free-recv=%d",
				st.RemoteAllocs, st.SharedPuts, st.RemotePuts, st.EvictedBlocks, node.RecvPool().FreeBytes())
			log.Printf("transport: rpcs=%d rtt-mean=%s rtt-p99=%s tx=%d rx=%d reconnects=%d",
				rpcRTT.Count(), rpcRTT.Mean(), rpcRTT.Quantile(0.99),
				bytesTx.Value(), bytesRx.Value(), reconnects.Value())
		case <-quit:
			log.Printf("SIGQUIT: flight recorder dump:\n%s", flight.Dump())
		case <-stop:
			if *drain {
				// Graceful decommission: migrate every hosted block to a
				// peer, announce the departure, and leave a redirect window
				// so stale clients chase moved blocks instead of erroring.
				ctx, cancel := context.WithTimeout(context.Background(), 2**tick)
				ctx = trace.WithTracer(ctx, tracer)
				moved, err := node.Decommission(ctx)
				cancel()
				if err != nil {
					log.Printf("drain: %v (%d blocks migrated)", err, moved)
				} else {
					log.Printf("drained: %d blocks migrated to peers", moved)
				}
			}
			log.Printf("dmnode %d shutting down", *id)
			return nil
		}
	}
}

// tickOnce runs one heartbeat/maintenance round — all-to-all mesh by
// default, or the hierarchical tree exchange (heartbeats plus epoch-tagged
// map deltas with this node's tree targets only) when tree is set. Transient
// cluster conditions — a peer vanishing mid-tick (transport.ErrUnreachable),
// the round's deadline expiring, or the cluster momentarily lacking
// replacement capacity — are logged and left for the next tick to retry:
// Maintain keeps failed repairs queued. Any other error is returned and
// terminates the daemon.
func tickOnce(ctx context.Context, node *core.Node, dir *cluster.Directory, tree bool, logf func(format string, v ...any)) error {
	if tree {
		node.TreeHeartbeat(ctx)
		for _, e := range node.TickWatched() {
			if e.Kind == cluster.EventNodeDown {
				if queued := node.RepairLost(transport.NodeID(e.Node)); queued > 0 {
					logf("node %d down: queued %d repairs", e.Node, queued)
				}
			}
		}
	} else {
		node.BroadcastHeartbeat(ctx)
		if err := node.Heartbeat(); err != nil {
			return fmt.Errorf("heartbeat: %w", err)
		}
		dir.Tick()
	}
	repaired, err := node.Maintain(ctx)
	if repaired > 0 {
		logf("re-replicated %d entries", repaired)
	}
	switch {
	case err == nil:
		return nil
	case errors.Is(err, transport.ErrUnreachable),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, core.ErrNoCandidates):
		logf("maintain: %v (retrying next tick)", err)
		return nil
	default:
		return fmt.Errorf("maintain: %w", err)
	}
}

// buildBalancer maps the -balancer flag to a placement policy, seeded per
// node so a cluster of daemons does not stampede the same peers.
func buildBalancer(name string, seed int64) (placement.Balancer, error) {
	switch name {
	case "power-of-two":
		return placement.NewPowerOfTwo(seed), nil
	case "load-aware":
		return placement.NewLoadAware(seed, 0), nil
	case "weighted-rr":
		return placement.NewWeightedRoundRobin(seed), nil
	case "round-robin":
		return placement.NewRoundRobin(), nil
	case "random":
		return placement.NewRandom(seed), nil
	default:
		return nil, fmt.Errorf("bad -balancer %q, want power-of-two, load-aware, weighted-rr, round-robin, or random", name)
	}
}

func parsePeers(s string) (map[transport.NodeID]string, error) {
	peers := map[transport.NodeID]string{}
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q, want id=host:port", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", id, err)
		}
		peers[transport.NodeID(n)] = addr
	}
	return peers, nil
}
