// tcpcluster runs a real three-node disaggregated memory cluster over TCP —
// all in one process for demonstration, but each node is a full daemon
// (cmd/dmnode runs the same stack across machines). A client parks entries
// in whichever node advertises the most idle memory, the §III "use the idle
// memory of remote nodes" scenario, over actual sockets.
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"

	"godm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three nodes on loopback, each donating a different amount of memory.
	donations := []int64{4 << 20, 16 << 20, 8 << 20}
	addrs := map[godm.NodeID]string{}
	var eps []interface{ Close() error }
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	for i, donation := range donations {
		id := godm.NodeID(i + 1)
		cfg := godm.NodeConfig{
			ID:                id,
			SharedPoolBytes:   1 << 20,
			SendPoolBytes:     1 << 20,
			RecvPoolBytes:     donation,
			SlabSize:          1 << 20,
			ReplicationFactor: 1,
		}
		_, ep, err := godm.ListenNode(cfg, "127.0.0.1:0", nil)
		if err != nil {
			return err
		}
		eps = append(eps, ep)
		addrs[id] = ep.Addr()
		fmt.Printf("node %d up on %s donating %d MiB\n", id, ep.Addr(), donation>>20)
	}

	client, clientEP, err := godm.DialClient(100, "127.0.0.1:0", addrs)
	if err != nil {
		return err
	}
	eps = append(eps, clientEP)
	ctx := context.Background()

	// Survey the cluster's idle memory and pick the roomiest donor.
	var best godm.NodeID
	var bestFree int64
	for id := range addrs {
		free, err := client.Stats(ctx, id)
		if err != nil {
			return err
		}
		fmt.Printf("node %d advertises %5.1f MiB free\n", id, float64(free)/(1<<20))
		if free > bestFree {
			best, bestFree = id, free
		}
	}
	fmt.Printf("parking 256 entries on node %d\n", best)

	payload := make([]byte, 4096)
	for key := uint64(0); key < 256; key++ {
		payload[0] = byte(key)
		if err := client.Put(ctx, best, key, payload); err != nil {
			return fmt.Errorf("put %d: %w", key, err)
		}
	}
	got, err := client.Get(ctx, best, 123)
	if err != nil {
		return err
	}
	fmt.Printf("read back key 123: first byte %d, %d bytes\n", got[0], len(got))

	free, err := client.Stats(ctx, best)
	if err != nil {
		return err
	}
	fmt.Printf("node %d now has %.1f MiB free (1 MiB slab registered for our pages)\n",
		best, float64(free)/(1<<20))
	for key := uint64(0); key < 256; key++ {
		if err := client.Delete(ctx, best, key); err != nil {
			return fmt.Errorf("delete %d: %w", key, err)
		}
	}
	fmt.Println("entries released")
	return nil
}
