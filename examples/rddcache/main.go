// rddcache runs the paper's Figure 10 scenario: an iterative Spark-style
// logistic regression whose cached RDD only half-fits in executor memory,
// with and without DAHI's disaggregated off-heap caching.
//
//	go run ./examples/rddcache
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"godm"
)

const (
	partitions = 16
	pagesPer   = 32  // 128 KiB partitions
	memPages   = 256 // executor memory: half the 512-page dataset
	iters      = 4
)

func main() {
	prof, err := godm.WorkloadByName("LogisticRegression")
	if err != nil {
		log.Fatal(err)
	}
	var base time.Duration
	for _, dahi := range []bool{false, true} {
		elapsed, stats, err := run(prof, dahi)
		if err != nil {
			log.Fatal(err)
		}
		label := "vanilla Spark"
		if dahi {
			label = "DAHI"
		}
		if base == 0 {
			base = elapsed
		}
		fmt.Printf("%-14s completion %12v (%.2fx speedup)  source-reads=%d mem-hits=%d disagg-hits=%d\n",
			label, elapsed.Round(time.Microsecond), float64(base)/float64(elapsed),
			stats.SourceReads, stats.MemHits, stats.DisaggHits)
	}
}

func run(prof godm.WorkloadProfile, dahi bool) (time.Duration, RDDStats, error) {
	c, err := godm.NewSimCluster(godm.SimClusterConfig{
		Nodes:             4,
		SharedPoolBytes:   2 << 20,
		RecvPoolBytes:     8 << 20,
		ReplicationFactor: 1,
	})
	if err != nil {
		return 0, RDDStats{}, err
	}
	exec, err := c.NewRDDExecutor("exec0", memPages, dahi)
	if err != nil {
		return 0, RDDStats{}, err
	}
	eng := godm.NewRDDEngine(exec)
	err = c.Run(func(ctx context.Context) error {
		src, err := eng.TextFile(partitions, pagesPer)
		if err != nil {
			return err
		}
		// Parse once, cache, then iterate: the classic ML loop.
		data := src.Map(prof.ComputePerPage).Cache()
		for i := 0; i < iters; i++ {
			if _, err := data.Map(prof.ComputePerPage).Count(ctx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, RDDStats{}, err
	}
	st := exec.Stats()
	return c.Elapsed(), RDDStats{SourceReads: st.SourceReads, MemHits: st.MemHits, DisaggHits: st.DisaggHits}, nil
}

// RDDStats is the subset of executor counters the example prints.
type RDDStats struct {
	SourceReads int64
	MemHits     int64
	DisaggHits  int64
}
