// kvrecovery runs the paper's Figure 9 scenario: a Memcached-style server
// whose heap was fully paged out recovers to peak throughput, with and
// without FastSwap's proactive batch swap-in (PBS) pump.
//
//	go run ./examples/kvrecovery
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"godm"
)

const (
	pages    = 4096
	resident = 2048 // 50% configuration
)

func main() {
	for _, pbs := range []bool{true, false} {
		if err := run(pbs); err != nil {
			log.Fatal(err)
		}
	}
}

func run(pbs bool) error {
	c, err := godm.NewSimCluster(godm.SimClusterConfig{
		Nodes:             4,
		SharedPoolBytes:   int64(pages) * 4096 * 2,
		RecvPoolBytes:     int64(pages) * 4096 * 2,
		ReplicationFactor: 1,
	})
	if err != nil {
		return err
	}
	prof, err := godm.WorkloadByName("Memcached")
	if err != nil {
		return err
	}
	cfg := godm.FastSwapConfig(resident, 5, false, func(pg int) float64 { return prof.PageRatio(1, pg) })
	srv, err := c.NewKVServer("mc0", prof, cfg, pages, 2*time.Millisecond)
	if err != nil {
		return err
	}
	mgr := srv.Manager()

	done := false
	restarted := false
	if pbs {
		c.Go("pbs-pump", func(ctx context.Context) {
			for !done {
				if !restarted {
					godm.SleepSim(ctx, time.Millisecond)
					continue
				}
				if mgr.ProactiveSwapIn(ctx, 256) == 0 {
					godm.SleepSim(ctx, time.Millisecond)
				}
			}
		})
	}

	var measureStart time.Duration
	err = c.Run(func(ctx context.Context) error {
		defer func() { done = true }()
		if err := srv.Populate(ctx, 64); err != nil {
			return err
		}
		// Serve real traffic so the LRU reflects key hotness, then page the
		// whole heap out (the aftermath of a memory-pressure storm).
		if err := srv.RunOps(ctx, pages*2, 7); err != nil {
			return err
		}
		srv.ColdRestart(ctx)
		restarted = true
		measureStart = c.Elapsed()
		_, err := srv.RunFor(ctx, 60*time.Millisecond, 1)
		return err
	})
	if err != nil {
		return err
	}

	label := "FastSwap w/o PBS"
	if pbs {
		label = "FastSwap + PBS "
	}
	fmt.Printf("%s recovery curve (ops/sec per 2ms window):\n  ", label)
	for _, pt := range srv.Throughput() {
		if pt.Start >= measureStart {
			fmt.Printf("%7.0fk", pt.Rate/1000)
		}
	}
	fmt.Println()
	return nil
}
