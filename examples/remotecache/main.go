// remotecache demonstrates the paper's second killer application for
// partial memory disaggregation (§III): a key-value cache whose working set
// spills into the idle memory of remote nodes instead of being dropped.
// A 64 KiB local cache serves a 1 MiB working set with cluster memory
// absorbing the other 95% — every "miss" in the local tier comes back over
// a one-sided read at microsecond cost instead of a trip to the database.
//
//	go run ./examples/remotecache
package main

import (
	"context"
	"fmt"
	"log"

	"godm"
)

func main() {
	c, err := godm.NewSimCluster(godm.SimClusterConfig{
		Nodes:         4,
		RecvPoolBytes: 8 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	cache, err := godm.NewRemoteCache(godm.RemoteCacheConfig{
		LocalBytes: 64 << 10,
		Verbs:      c.Node(0).Endpoint(),
		Peers:      []godm.NodeID{c.Node(1).ID(), c.Node(2).ID(), c.Node(3).ID()},
	})
	if err != nil {
		log.Fatal(err)
	}
	err = c.Run(func(ctx context.Context) error {
		// A 1 MiB working set of 4 KiB values: 16x the local budget.
		val := make([]byte, 4096)
		for i := 0; i < 256; i++ {
			val[0] = byte(i)
			if err := cache.Put(ctx, fmt.Sprintf("user:%d", i), val); err != nil {
				return err
			}
		}
		// Read the whole working set back: cold entries come from remote
		// memory, then a hot loop hits the local tier.
		for i := 0; i < 256; i++ {
			got, ok, err := cache.Get(ctx, fmt.Sprintf("user:%d", i))
			if err != nil {
				return err
			}
			if !ok || got[0] != byte(i) {
				return fmt.Errorf("user:%d lost or corrupted", i)
			}
		}
		for rep := 0; rep < 10; rep++ {
			for i := 246; i < 256; i++ {
				if _, ok, err := cache.Get(ctx, fmt.Sprintf("user:%d", i)); err != nil || !ok {
					return fmt.Errorf("hot user:%d: %v", i, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := cache.Stats()
	fmt.Printf("working set 1 MiB over a 64 KiB local cache:\n")
	fmt.Printf("  local hits  %4d\n", st.LocalHits)
	fmt.Printf("  remote hits %4d (served from peers' idle memory)\n", st.RemoteHits)
	fmt.Printf("  misses      %4d\n", st.Misses)
	fmt.Printf("  parked      %4.1f KiB across 3 donors\n", float64(st.RemoteBytes)/1024)
	fmt.Printf("  elapsed     %v simulated\n", c.Elapsed())
}
