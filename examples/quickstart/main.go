// Quickstart: build a simulated 4-node disaggregated memory cluster, let one
// virtual server's data overflow from its node's shared memory pool into
// remote memory, and watch reads survive a primary failure.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"godm"
)

func main() {
	// A cluster whose nodes each donate a 1 MiB shared pool (so it fills
	// after ~250 pages) and a 16 MiB receive pool, with the paper's
	// triple-replica fault tolerance.
	c, err := godm.NewSimCluster(godm.SimClusterConfig{
		Nodes:             4,
		SharedPoolBytes:   1 << 20,
		RecvPoolBytes:     16 << 20,
		ReplicationFactor: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// vm0 is a virtual server (VM/container/executor) on node 0.
	vm0, err := c.Node(0).AddServer("vm0", 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	err = c.Run(func(ctx context.Context) error {
		page := bytes.Repeat([]byte{0x42}, 4096)

		// Park 400 pages: the first ~256 land in the node's shared memory
		// pool at DRAM speed; the rest transparently overflow to remote
		// memory over the (simulated) RDMA fabric.
		tiers := map[godm.Tier]int{}
		for id := godm.EntryID(0); id < 400; id++ {
			tier, err := vm0.Put(ctx, id, page, 4096, 4096)
			if err != nil {
				return err
			}
			tiers[tier]++
		}
		fmt.Printf("placement: %d pages in shared memory, %d pages remote\n",
			tiers[godm.TierSharedMemory], tiers[godm.TierRemote])

		// Find a remote entry and inspect its replica set.
		var remote godm.EntryID
		for id := godm.EntryID(0); id < 400; id++ {
			if loc, err := vm0.Location(id); err == nil && loc.Tier == godm.TierRemote {
				remote = id
				break
			}
		}
		loc, err := vm0.Location(remote)
		if err != nil {
			return err
		}
		fmt.Printf("entry %d lives on node %d with replicas on %v\n",
			remote, loc.Primary, loc.Replicas)

		// Cut the primary off; the read fails over to a replica.
		c.Partition(0, int(loc.Primary)-1)
		got, _, err := vm0.Get(ctx, remote)
		if err != nil {
			return err
		}
		fmt.Printf("read after partitioning node %d: %d bytes, first byte %#x (took %v simulated)\n",
			loc.Primary, len(got), got[0], c.Elapsed())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
