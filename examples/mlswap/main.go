// mlswap runs the paper's Figure 7 scenario: an iterative machine-learning
// job whose working set only half-fits in its VM's memory, swapped by
// FastSwap, Infiniswap, and Linux disk swap.
//
//	go run ./examples/mlswap
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"godm"
)

const (
	pages    = 2048 // working set (4 KiB pages)
	resident = 1024 // the 50% configuration
	iters    = 3
)

func main() {
	prof, err := godm.WorkloadByName("LogisticRegression")
	if err != nil {
		log.Fatal(err)
	}
	ratio := func(pg int) float64 { return prof.PageRatio(1, pg) }

	systems := []godm.SwapConfig{
		godm.FastSwapConfig(resident, 9, true, ratio),
		godm.InfiniswapConfig(resident),
		godm.LinuxConfig(resident),
	}
	var fastest time.Duration
	for _, cfg := range systems {
		elapsed, stats, err := run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if fastest == 0 {
			fastest = elapsed
		}
		fmt.Printf("%-12s completion %12v (%.1fx vs FastSwap)  faults=%d shared=%d remote=%d disk=%d\n",
			cfg.Name, elapsed.Round(time.Microsecond), float64(elapsed)/float64(fastest),
			stats.Faults, stats.SharedIns, stats.RemoteIns, stats.DiskIns)
	}
}

func run(cfg godm.SwapConfig) (time.Duration, godm.SwapStats, error) {
	c, err := godm.NewSimCluster(godm.SimClusterConfig{
		Nodes:             4,
		SharedPoolBytes:   int64(pages) * 4096 * 4,
		RecvPoolBytes:     int64(pages) * 4096 * 4,
		ReplicationFactor: 1,
	})
	if err != nil {
		return 0, godm.SwapStats{}, err
	}
	prof, err := godm.WorkloadByName("LogisticRegression")
	if err != nil {
		return 0, godm.SwapStats{}, err
	}
	mgr, err := c.NewSwapManager("vm-"+cfg.Name, cfg)
	if err != nil {
		return 0, godm.SwapStats{}, err
	}
	err = c.Run(func(ctx context.Context) error {
		// Iterate the working set the way the Spark-style job would.
		for it := 0; it < iters; it++ {
			for pg := 0; pg < pages; pg++ {
				if err := mgr.Touch(ctx, pg, prof.ComputePerPage, true); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, godm.SwapStats{}, err
	}
	return c.Elapsed(), mgr.Stats(), nil
}
