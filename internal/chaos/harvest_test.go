// Balloon-harvesting chaos scenario: a donor node hosting both replicated
// virtual-server entries and window-batched client blocks is harvested for
// its entire donated pool while it stays a live cluster member. Every hosted
// block must migrate, every byte must stay readable through the repointed
// owner maps and redirect tombstones, and deleting through the repointed
// maps must leave zero stranded copies. Runs on both fabrics and replays
// deterministically per seed.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/pagetable"
)

const (
	harvestEntries = 8
	// donorPoolBytes mirrors the harness's RecvPoolBytes: harvesting this
	// much can only be satisfied by migrating every hosted block away.
	donorPoolBytes = 1 << 20
)

func runHarvestScenario(t *testing.T, kind FabricKind, seed int64) (outcomes []string) {
	t.Helper()
	cl := New(t, kind, seed, Config{Nodes: 4, ReplicationFactor: 2, HeartbeatTimeout: 3})
	defer cl.Close()
	cl.DumpOnFailure(t)

	vs, err := cl.Nodes[0].AddServer("harvest", 0)
	if err != nil {
		t.Fatal(err)
	}
	owner := cl.Nodes[0].ID()
	client := core.NewClient(cl.Eps[0])

	cl.Run(t, func(ctx context.Context) {
		// The scenario is fault-free: determinism comes from the seeded
		// payloads and placement, and the invariants assert the harvest's
		// migration machinery, not fault handling (the atomicity scenarios
		// cover that).
		cl.Inj.SetEnabled(false)
		cl.HeartbeatRound(ctx)

		// Replicated writes through the owner's page table.
		for i := 0; i < harvestEntries; i++ {
			werr := vs.PutRemote(ctx, pagetable.EntryID(i), cl.Payload(i, 4096), 4096, 4096)
			outcomes = append(outcomes, fmt.Sprintf("put %d: %s", i, Classify(werr)))
		}

		// The donor: lowest-ID peer hosting at least one replicated copy.
		var donor *core.Node
		for _, n := range cl.Nodes[1:] {
			for i := 0; i < harvestEntries && donor == nil; i++ {
				if n.HostsRemoteKey(owner, vs.WireKey(pagetable.EntryID(i))) {
					donor = n
				}
			}
			if donor != nil {
				break
			}
		}
		if donor == nil {
			t.Error("no peer hosts a replicated copy; scenario exercised nothing")
			return
		}
		outcomes = append(outcomes, fmt.Sprintf("donor %d", donor.ID()))

		// Window-batched client blocks landing directly on the donor.
		batch := make([]core.Entry, 6)
		keys := make([]uint64, len(batch))
		for i := range batch {
			keys[i] = uint64(5000 + i)
			batch[i] = core.Entry{Key: keys[i], Data: cl.Payload(1000+i, 1024)}
		}
		werr := client.PutAll(ctx, donor.ID(), batch)
		outcomes = append(outcomes, "batch: "+Classify(werr))
		RequireBatchAtomicity(ctx, t, cl.Inj, client, donor, owner, batch, map[uint64][]byte{}, werr)
		cl.Inj.SetEnabled(false) // RequireBatchAtomicity re-enables on return

		// Claw back the donor's entire donation over the wire.
		reclaimed, movedN, herr := client.Harvest(ctx, donor.ID(), donorPoolBytes)
		outcomes = append(outcomes, fmt.Sprintf("harvest: %s reclaimed=%d moved=%d", Classify(herr), reclaimed, movedN))
		if herr != nil {
			return
		}
		if movedN == 0 {
			t.Error("full-pool harvest migrated no blocks; scenario exercised nothing")
		}
		if donor.Draining() {
			t.Errorf("harvested donor %d reports draining", donor.ID())
		}
		for i, dir := range cl.Dirs {
			if !dir.Alive(cluster.NodeID(donor.ID())) {
				t.Errorf("node %d's map dropped harvested donor %d", i+1, donor.ID())
			}
		}

		// Every replicated entry left the donor and reads back byte-exact
		// through the repointed owner page table.
		for i := 0; i < harvestEntries; i++ {
			id := pagetable.EntryID(i)
			if donor.HostsRemoteKey(owner, vs.WireKey(id)) {
				t.Errorf("donor %d still hosts entry %d after full harvest", donor.ID(), i)
			}
			got, _, gerr := vs.Get(ctx, id)
			if gerr != nil || !bytes.Equal(got, cl.Payload(i, 4096)) {
				t.Errorf("entry %d after harvest: %d bytes, %v", i, len(got), gerr)
			}
		}

		// Every batched block left the donor and stays readable through the
		// client's redirect-chasing read path.
		for i, k := range keys {
			if donor.HostsRemoteKey(owner, k) {
				t.Errorf("donor %d still hosts batch key %d after full harvest", donor.ID(), k)
			}
			got, gerr := client.Get(ctx, donor.ID(), k)
			if gerr != nil || !bytes.Equal(got, batch[i].Data) {
				t.Errorf("batch key %d after harvest: %d bytes, %v", k, len(got), gerr)
			}
		}

		// Deleting through the repointed maps must leave zero copies
		// anywhere: a missed notifyMoved would aim the delete at the stale
		// home and strand the migrated copy.
		for i := 0; i < harvestEntries; i++ {
			id := pagetable.EntryID(i)
			derr := vs.Delete(ctx, id)
			outcomes = append(outcomes, fmt.Sprintf("delete %d: %s", i, Classify(derr)))
			RequireNoStrandedCopies(t, cl.Nodes, owner, vs.WireKey(id))
		}
	})
	return outcomes
}

func TestChaosHarvest(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	for _, kind := range []FabricKind{FabricSim, FabricTCP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			out1 := runHarvestScenario(t, kind, seed)
			out2 := runHarvestScenario(t, kind, seed)
			if !reflect.DeepEqual(out1, out2) {
				t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
			}
		})
	}
}
