// Package chaos is the seeded cluster chaos test harness: it wires a full
// disaggregated-memory cluster — per-node directories, heartbeat failure
// detection, triple-replica remote writes — over either fabric (the
// discrete-event simulated RDMA network or real TCP sockets), with every
// endpoint wrapped by one shared faulty.Injector. Scenarios drive workloads
// under a seeded fault schedule and assert the §IV.D invariants with the
// checkers in invariants.go.
//
// Determinism contract: a scenario that issues its fabric operations serially
// from one goroutine while the injector is enabled produces the same
// faulty.Trace and the same outcome sequence on every run with the same seed,
// on both fabrics. The replicator's parallel fan-out is safe under this
// contract: it always attempts every replica, each replica stream issues its
// operations in order, and faulty.Trace is canonically sorted, so the
// per-stream decision counters see the same sequence regardless of how the
// concurrent streams interleave. Setup traffic that is inherently concurrent
// under TCP (heartbeat fan-out) must run with the injector disabled so it
// does not advance the decision counters.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/faulty"
	"godm/internal/metrics"
	"godm/internal/simnet"
	"godm/internal/tcpnet"
	"godm/internal/trace"
	"godm/internal/transport"
)

// FabricKind selects the transport under test.
type FabricKind string

// The two interchangeable fabrics.
const (
	FabricSim FabricKind = "sim"
	FabricTCP FabricKind = "tcp"
)

// Config shapes a chaos cluster.
type Config struct {
	// Nodes is the cluster size (IDs 1..Nodes).
	Nodes int
	// GroupSize caps members per directory group; 0 means one flat group of
	// all Nodes. Smaller groups give the heartbeat tree real depth (members →
	// group leader → root).
	GroupSize int
	// ReplicationFactor for remote entries.
	ReplicationFactor int
	// HeartbeatTimeout in failure-detector ticks.
	HeartbeatTimeout int64
	// Durability selects the remote durability policy per node ("rf3",
	// "rs4.2"); empty keeps ReplicationFactor full copies.
	Durability string
}

// DefaultConfig is a six-node cluster with the paper's triple replicas —
// large enough that losing one replica holder leaves a repair candidate.
func DefaultConfig() Config {
	return Config{Nodes: 6, ReplicationFactor: 3, HeartbeatTimeout: 3}
}

// Cluster is a fault-injected test cluster. Every node runs its own
// directory (as real dmnode processes do) fed by control-plane heartbeats,
// so leader views can genuinely diverge and re-converge.
type Cluster struct {
	Kind FabricKind
	Seed int64
	Inj  *faulty.Injector
	// Nodes[i] has fabric ID i+1.
	Nodes []*core.Node
	// Eps[i] is node i+1's fault-injected fabric attachment. Scenarios that
	// drive a core.Client (the batch data plane) ride these, so client
	// traffic passes the same injector and tracer as node traffic.
	Eps []transport.Endpoint
	// Dirs[i] is node i+1's private membership view.
	Dirs []*cluster.Directory
	// Tracer records every node's spans in one ring; under FabricSim it runs
	// on simulated time, so serial scenarios reassemble into byte-identical
	// timelines across runs with the same seed.
	Tracer *trace.Tracer
	// Flight is the always-on flight recorder fed by Tracer. Every invariant
	// violation flags the most recently completed trace in it, so a failed
	// seed's dump carries the offending op's full span timeline.
	Flight *trace.Flight
	// Tree mounts every node's instrumentation plus the invariant counters,
	// for failure dumps.
	Tree *metrics.Tree

	env     *des.Env
	closers []func()
}

// New builds a chaos cluster of the given kind. The injector starts enabled
// with no rules; load a schedule with cl.Inj.AddRules or Load.
func New(t *testing.T, kind FabricKind, seed int64, cfg Config) *Cluster {
	t.Helper()
	if cfg.Nodes < 2 {
		t.Fatalf("chaos: cluster needs at least 2 nodes, got %d", cfg.Nodes)
	}
	cl := &Cluster{Kind: kind, Seed: seed, Inj: faulty.New(seed), Tree: metrics.NewTree()}

	var raw []transport.Endpoint
	switch kind {
	case FabricSim:
		cl.env = des.NewEnv()
		fabric := simnet.New(cl.env, simnet.DefaultParams())
		for i := 1; i <= cfg.Nodes; i++ {
			ep, err := fabric.Attach(transport.NodeID(i))
			if err != nil {
				t.Fatal(err)
			}
			raw = append(raw, ep)
		}
	case FabricTCP:
		addrs := map[transport.NodeID]string{}
		var eps []*tcpnet.Endpoint
		for i := 1; i <= cfg.Nodes; i++ {
			ep, err := tcpnet.Listen(transport.NodeID(i), "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			eps = append(eps, ep)
			addrs[transport.NodeID(i)] = ep.Addr()
			cl.closers = append(cl.closers, func() { _ = ep.Close() })
		}
		for _, ep := range eps {
			for id, addr := range addrs {
				if id != ep.ID() {
					ep.AddPeer(id, addr)
				}
			}
			raw = append(raw, ep)
		}
	default:
		t.Fatalf("chaos: unknown fabric %q", kind)
	}

	cl.Flight = trace.NewFlight()
	if cl.env != nil {
		cl.Tracer = trace.New(trace.WithClock(cl.env.Now), trace.WithFlight(cl.Flight))
	} else {
		cl.Tracer = trace.New(trace.WithFlight(cl.Flight))
	}
	// Flag the newest trace on every invariant violation: invariants are
	// checked right after the op they verify, so the newest trace is the
	// offending op's timeline. Restored on cleanup — the hook, like the
	// invariant registry, is process-wide.
	prevHook := SetViolationHook(func(invariant string) {
		ids := cl.Tracer.TraceIDs()
		if len(ids) == 0 {
			return
		}
		cl.Flight.Flag(ids[len(ids)-1], "invariant "+invariant)
	})
	t.Cleanup(func() { SetViolationHook(prevHook) })
	cl.Tree.Attach("chaos/invariants", InvariantMetrics())

	groupSize := cfg.GroupSize
	if groupSize == 0 {
		groupSize = cfg.Nodes
	}
	for i := 1; i <= cfg.Nodes; i++ {
		dir, err := cluster.NewDirectory(cluster.Config{
			GroupSize:        groupSize,
			HeartbeatTimeout: cfg.HeartbeatTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Pre-seed the full roster in ID order — self included, so every
		// directory computes identical group assignments (joining self last
		// would skew its own placement). NewNode's self-join below is then a
		// revival no-op that keeps the group. Real free-byte figures arrive
		// with the first heartbeat round.
		for j := 1; j <= cfg.Nodes; j++ {
			dir.Join(cluster.NodeID(j), 0)
		}
		wrapped := transport.Chain(raw[i-1], trace.Middleware(cl.Tracer), cl.Inj.Wrap)
		node, err := core.NewNode(core.Config{
			ID:                transport.NodeID(i),
			SharedPoolBytes:   8192, // two 4 KiB blocks: puts overflow to remote
			SendPoolBytes:     8192,
			RecvPoolBytes:     1 << 20,
			SlabSize:          4096,
			ReplicationFactor: cfg.ReplicationFactor,
			Durability:        cfg.Durability,
			// Exercise the sharded pools and striped owner bookkeeping under
			// fault injection (shard count never changes outcomes, only lock
			// granularity, so the seeded runs stay deterministic).
			PoolShards: 4,
		}, wrapped, dir)
		if err != nil {
			t.Fatal(err)
		}
		cl.Eps = append(cl.Eps, wrapped)
		cl.Tree.Attach(fmt.Sprintf("node-%d/core", i), node.Metrics())
		cl.Tree.Attach(fmt.Sprintf("node-%d/replication", i), node.ReplicationMetrics())
		cl.Nodes = append(cl.Nodes, node)
		cl.Dirs = append(cl.Dirs, dir)
	}
	return cl
}

// Close releases listeners (TCP) — a no-op under simulation.
func (cl *Cluster) Close() {
	for _, fn := range cl.closers {
		fn()
	}
}

// Run executes body with a fabric-appropriate context: a simulation process
// under FabricSim (driving the event loop to completion), a plain background
// context under FabricTCP.
func (cl *Cluster) Run(t *testing.T, body func(ctx context.Context)) {
	t.Helper()
	base := trace.WithTracer(context.Background(), cl.Tracer)
	if cl.Kind == FabricSim {
		cl.env.Go("chaos", func(p *des.Proc) {
			body(des.NewContext(base, p))
		})
		if err := cl.env.Run(); err != nil {
			t.Fatal(err)
		}
		return
	}
	body(base)
}

// maxDumpTraces bounds how many timelines a failure dump prints.
const maxDumpTraces = 8

// DumpOnFailure registers a cleanup that, if the test failed, logs the
// cluster's metrics tree (including per-invariant check/violation counters)
// and the most recent trace timelines — the bundle a failed seed leaves
// behind for diagnosis.
func (cl *Cluster) DumpOnFailure(t *testing.T) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		t.Logf("chaos: metrics tree at failure (seed %d, fabric %s):\n%s", cl.Seed, cl.Kind, cl.Tree.String())
		t.Logf("chaos: flight recorder at failure:\n%s", cl.Flight.Dump())
		ids := cl.Tracer.TraceIDs()
		if len(ids) > maxDumpTraces {
			ids = ids[len(ids)-maxDumpTraces:]
		}
		for _, id := range ids {
			t.Logf("chaos: trace %d:\n%s", uint64(id), cl.Tracer.Timeline(id))
		}
	})
}

// HeartbeatRound performs one failure-detector interval: every node that the
// injector has not crashed broadcasts its heartbeat, records its own, and
// advances its directory tick. It returns the membership events each node
// observed, indexed like Nodes.
func (cl *Cluster) HeartbeatRound(ctx context.Context) [][]cluster.Event {
	events := make([][]cluster.Event, len(cl.Nodes))
	for _, n := range cl.Nodes {
		if cl.Inj.Crashed(ctx, n.ID()) {
			continue // a dead process sends nothing and does not tick
		}
		n.BroadcastHeartbeat(ctx)
		_ = n.Heartbeat()
	}
	for i, n := range cl.Nodes {
		if cl.Inj.Crashed(ctx, n.ID()) {
			continue
		}
		events[i] = cl.Dirs[i].Tick()
	}
	return events
}

// TreeHeartbeatRound performs one interval of the hierarchical control
// plane: every node the injector has not crashed exchanges heartbeats and
// epoch-tagged map deltas with its tree targets only (members with their
// group leader, leaders with the root and their members), then advances its
// watch-scoped failure detector. It returns the membership events each node
// observed, indexed like Nodes. Per-node traffic is O(group size), so this
// is the round to drive at 24-node-and-up scale.
func (cl *Cluster) TreeHeartbeatRound(ctx context.Context) [][]cluster.Event {
	events := make([][]cluster.Event, len(cl.Nodes))
	for _, n := range cl.Nodes {
		if cl.Inj.Crashed(ctx, n.ID()) {
			continue
		}
		n.TreeHeartbeat(ctx)
	}
	for i, n := range cl.Nodes {
		if cl.Inj.Crashed(ctx, n.ID()) {
			continue
		}
		events[i] = n.TickWatched()
	}
	return events
}

// Payload derives the deterministic test payload for entry i under this
// cluster's seed: size bytes, content a function of (seed, i) only.
func (cl *Cluster) Payload(i, size int) []byte {
	out := make([]byte, size)
	x := uint64(cl.Seed)*0x9E3779B97F4A7C15 + uint64(i)
	for j := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[j] = byte(x)
	}
	return out
}

// Classify maps a put/get error to a stable label for outcome traces: error
// strings can embed run-specific details (addresses, offsets), labels cannot.
func Classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrRemoteFull):
		return "aborted"
	case errors.Is(err, core.ErrNoCandidates):
		return "no-candidates"
	case errors.Is(err, faulty.ErrInjected):
		return "injected"
	case errors.Is(err, transport.ErrUnreachable):
		return "unreachable"
	default:
		return fmt.Sprintf("error:%T", err)
	}
}
