// Chaos suite: seeded, replayable fault-injection scenarios driving the full
// stack (cluster membership + replication + core node managers) over both
// fabrics. Run with:
//
//	go test -run Chaos ./internal/chaos/ -chaos.seed=1337
//
// Every scenario prints its seed; re-running with that seed replays the
// identical fault schedule byte for byte.
package chaos

import (
	"context"
	"flag"
	"fmt"
	"reflect"
	"testing"

	"godm/internal/cluster"
	"godm/internal/faulty"
	"godm/internal/pagetable"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

var chaosSeed = flag.Int64("chaos.seed", 1, "seed for the chaos fault schedules")

func logSeed(t *testing.T, seed int64) {
	t.Helper()
	t.Logf("chaos seed %d (replay: go test -run Chaos ./internal/chaos/ -chaos.seed=%d)", seed, seed)
}

// runAtomicityScenario drives writes writes through a seeded fault schedule —
// low-probability drops, delays, duplicate calls, truncated (torn) writes,
// plus one op-triggered crash/restart of a replica-holding victim — and
// checks the §IV.D atomicity invariant after every write. It returns the
// outcome labels and the injector's decision trace; both are functions of
// (seed, fabric-independent op order) only.
func runAtomicityScenario(t *testing.T, kind FabricKind, seed int64, writes int) (outcomes, trace []string) {
	t.Helper()
	cl := New(t, kind, seed, DefaultConfig())
	defer cl.Close()

	// Victims exclude node 1, the owner driving the workload: crashing the
	// writer models a different failure class than losing a replica holder.
	var victims []transport.NodeID
	for _, n := range cl.Nodes[1:] {
		victims = append(victims, n.ID())
	}
	cl.Inj.AddRules(faulty.RandomSchedule(seed, victims))

	vs, err := cl.Nodes[0].AddServer("chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(t, func(ctx context.Context) {
		// Membership setup is concurrent under TCP, so it runs fault-free and
		// uncounted; the scenario proper is serial and deterministic.
		cl.Inj.SetEnabled(false)
		cl.HeartbeatRound(ctx)
		cl.Inj.SetEnabled(true)

		for i := 0; i < writes; i++ {
			id := pagetable.EntryID(i)
			payload := cl.Payload(i, 4096)
			werr := vs.PutRemote(ctx, id, payload, 4096, 4096)
			outcomes = append(outcomes, fmt.Sprintf("put %d: %s", i, Classify(werr)))
			RequireWriteAtomicity(ctx, t, cl.Inj, vs, id, payload, werr)
		}
	})
	return outcomes, cl.Inj.Trace()
}

// TestChaosAtomicitySim: a replica holder crashes mid-commit (op-count
// trigger lands between the fan-out's operations) under the simulated
// fabric; every write is all-or-nothing, and the same seed replays the
// identical outcome and fault sequence.
func TestChaosAtomicitySim(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	out1, tr1 := runAtomicityScenario(t, FabricSim, seed, 60)
	if len(tr1) == 0 {
		t.Fatal("schedule injected no faults; scenario exercised nothing")
	}
	mustContainAborts(t, out1)
	out2, tr2 := runAtomicityScenario(t, FabricSim, seed, 60)
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Errorf("fault trace replay differs:\n run1: %v\n run2: %v", tr1, tr2)
	}
}

// TestChaosAtomicityTCP runs the same scenario over real sockets: the serial
// driver keeps the per-stream decision order identical, so the replay
// guarantee holds on this fabric too.
func TestChaosAtomicityTCP(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	out1, tr1 := runAtomicityScenario(t, FabricTCP, seed, 60)
	if len(tr1) == 0 {
		t.Fatal("schedule injected no faults; scenario exercised nothing")
	}
	mustContainAborts(t, out1)
	out2, tr2 := runAtomicityScenario(t, FabricTCP, seed, 60)
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Errorf("fault trace replay differs:\n run1: %v\n run2: %v", tr1, tr2)
	}
}

// TestChaosCrossFabricReplay asserts the strongest form of determinism: the
// simulated and the TCP fabric produce byte-identical outcome and fault
// traces for the same seed, because every injector decision is a pure
// function of (seed, rule, per-stream op index) and the scenario issues its
// operations in the same order on both.
func TestChaosCrossFabricReplay(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	simOut, simTr := runAtomicityScenario(t, FabricSim, seed, 40)
	tcpOut, tcpTr := runAtomicityScenario(t, FabricTCP, seed, 40)
	if !reflect.DeepEqual(simOut, tcpOut) {
		t.Errorf("outcomes diverge across fabrics:\n sim: %v\n tcp: %v", simOut, tcpOut)
	}
	if !reflect.DeepEqual(simTr, tcpTr) {
		t.Errorf("fault traces diverge across fabrics:\n sim: %v\n tcp: %v", simTr, tcpTr)
	}
}

// mustContainAborts requires that the schedule actually produced both
// committed and aborted writes — otherwise the atomicity check is vacuous.
func mustContainAborts(t *testing.T, outcomes []string) {
	t.Helper()
	var ok, aborted int
	for _, o := range outcomes {
		switch {
		case len(o) > 3 && o[len(o)-2:] == "ok":
			ok++
		case containsLabel(o, "aborted"), containsLabel(o, "injected"), containsLabel(o, "unreachable"):
			aborted++
		}
	}
	if ok == 0 {
		t.Errorf("no write committed under the schedule: %v", outcomes)
	}
	if aborted == 0 {
		t.Errorf("no write aborted under the schedule; crash/faults never hit the commit path: %v", outcomes)
	}
}

func containsLabel(outcome, label string) bool {
	return len(outcome) >= len(label) && outcome[len(outcome)-len(label):] == label
}

// TestChaosLeaderFailover drives the heartbeat failure detector on per-node
// directories: crash the agreed leader, survivors converge on exactly one
// new leader; restart it, the cluster re-converges again. Runs on both
// fabrics.
func TestChaosLeaderFailover(t *testing.T) {
	for _, kind := range []FabricKind{FabricSim, FabricTCP} {
		t.Run(string(kind), func(t *testing.T) {
			seed := *chaosSeed
			logSeed(t, seed)
			cl := New(t, kind, seed, DefaultConfig())
			defer cl.Close()
			cl.Run(t, func(ctx context.Context) {
				for i := 0; i < 2; i++ {
					cl.HeartbeatRound(ctx)
				}
				RequireSingleLeader(t, cl.Dirs)
				leader := RequireLeaderAgreement(t, cl.Dirs, 0)
				if t.Failed() {
					return
				}

				cl.Inj.Crash(transport.NodeID(leader))
				var survivors []*cluster.Directory
				for i, d := range cl.Dirs {
					if cl.Nodes[i].ID() != transport.NodeID(leader) {
						survivors = append(survivors, d)
					}
				}
				// Timeout is 3 ticks; run enough rounds for detection + election.
				for i := 0; i < 6; i++ {
					cl.HeartbeatRound(ctx)
				}
				RequireSingleLeader(t, survivors)
				newLeader := RequireLeaderAgreement(t, survivors, 0)
				if newLeader == leader {
					t.Errorf("crashed node %d still leads", leader)
				}
				for _, d := range survivors {
					if d.Alive(leader) {
						t.Errorf("crashed leader %d still marked alive", leader)
					}
				}

				cl.Inj.Restart(transport.NodeID(leader))
				for i := 0; i < 4; i++ {
					cl.HeartbeatRound(ctx)
				}
				RequireSingleLeader(t, cl.Dirs)
				RequireLeaderAgreement(t, cl.Dirs, 0)
			})
		})
	}
}

// TestChaosRepairRestoresFactor crashes a replica holder and verifies the
// failure-detector-driven repair path: the owner notices the node going
// down, enqueues re-replication for every entry the dead node held, and the
// next maintenance pass restores the full replication factor on survivors.
func TestChaosRepairRestoresFactor(t *testing.T) {
	for _, kind := range []FabricKind{FabricSim, FabricTCP} {
		t.Run(string(kind), func(t *testing.T) {
			seed := *chaosSeed
			logSeed(t, seed)
			cl := New(t, kind, seed, DefaultConfig())
			defer cl.Close()
			vs, err := cl.Nodes[0].AddServer("chaos", 0)
			if err != nil {
				t.Fatal(err)
			}
			cl.Run(t, func(ctx context.Context) {
				cl.HeartbeatRound(ctx)
				const entries = 5
				for i := 0; i < entries; i++ {
					if err := vs.PutRemote(ctx, pagetable.EntryID(i), cl.Payload(i, 4096), 4096, 4096); err != nil {
						t.Fatalf("put %d: %v", i, err)
					}
				}
				loc, err := vs.Location(0)
				if err != nil {
					t.Fatal(err)
				}
				victim := transport.NodeID(loc.Primary)
				cl.Inj.Crash(victim)

				// Heartbeat rounds until the owner's failure detector reports
				// the victim down, then repair what it held.
				detected := false
				for i := 0; i < 8 && !detected; i++ {
					for _, ev := range cl.HeartbeatRound(ctx)[0] {
						if ev.Kind == cluster.EventNodeDown && ev.Node == cluster.NodeID(victim) {
							detected = true
						}
					}
				}
				if !detected {
					t.Fatalf("owner never detected victim %d going down", victim)
				}
				queued := cl.Nodes[0].RepairLost(victim)
				if queued == 0 {
					t.Fatalf("victim %d held nothing; bad scenario setup", victim)
				}
				repaired, err := cl.Nodes[0].Maintain(ctx)
				if err != nil {
					t.Fatalf("maintain: %v (repaired %d)", err, repaired)
				}
				if repaired != queued {
					t.Errorf("repaired %d of %d queued entries", repaired, queued)
				}

				for i := 0; i < entries; i++ {
					id := pagetable.EntryID(i)
					RequireReplicationFactor(t, vs, id, 3, victim)
					payload := cl.Payload(i, 4096)
					RequireWriteAtomicity(ctx, t, cl.Inj, vs, id, payload, nil)
				}
			})
		})
	}
}

// TestChaosAtMostOnceAcrossReconnect verifies the TCP transport's retry
// machinery never double-delivers a control-plane call even when the server
// endpoint dies and comes back between requests: retries happen only for
// requests that provably never left the client, so each unique request is
// executed at most once.
func TestChaosAtMostOnceAcrossReconnect(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	rec := NewCallRecorder()
	echo := func(_ context.Context, from transport.NodeID, payload []byte) ([]byte, error) {
		return payload, nil
	}

	server, err := tcpnet.Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := server.Addr()
	server.SetHandler(rec.Wrap(echo))
	client, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.AddPeer(2, addr)

	ctx := context.Background()
	delivered := 0
	for i := 0; i < 20; i++ {
		if i == 10 {
			// Kill the server between requests and bring it back on the same
			// address: the client's pooled connections are now dead, so the
			// next call must reconnect and retry.
			if err := server.Close(); err != nil {
				t.Fatal(err)
			}
			server, err = tcpnet.Listen(2, addr)
			if err != nil {
				t.Fatalf("re-listen on %s: %v", addr, err)
			}
			server.SetHandler(rec.Wrap(echo))
		}
		req := fmt.Sprintf("req-%d-%d", seed, i)
		resp, err := client.Call(ctx, 2, []byte(req))
		if err != nil {
			// A lost-response failure is allowed (the request may or may not
			// have executed); a double execution is not.
			continue
		}
		if string(resp) != req {
			t.Errorf("call %d: response %q, want %q", i, resp, req)
		}
		delivered++
	}
	defer server.Close()

	rec.RequireAtMostOnce(t)
	if delivered < 15 {
		t.Errorf("only %d/20 calls succeeded across the restart", delivered)
	}
	// The client must have re-established connectivity to the restarted
	// server: at least one post-restart request was delivered. (Whether the
	// dead-connection failure surfaced as a retryable send error or a
	// non-retryable lost response is a kernel timing race; either way
	// at-most-once must hold, which RequireAtMostOnce checked above.)
	recovered := false
	for i := 10; i < 20; i++ {
		if rec.Deliveries(fmt.Sprintf("req-%d-%d", seed, i)) == 1 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("no post-restart request was delivered; reconnect never happened")
	}

	// Positive control: the recorder does detect duplicate deliveries when
	// the injector forces at-least-once behaviour.
	inj := faulty.New(seed)
	inj.AddRule(faulty.Rule{Kind: faulty.KindDuplicate, Verb: faulty.VerbCall,
		From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100})
	dup := inj.Wrap(client)
	if _, err := dup.Call(ctx, 2, []byte("dup-probe")); err != nil {
		t.Fatalf("dup probe: %v", err)
	}
	if got := rec.Deliveries("dup-probe"); got != 2 {
		t.Errorf("duplicate-injected call delivered %d times, want 2", got)
	}
}
