package chaos

import (
	"context"
	"strings"
	"testing"

	"godm/internal/pagetable"
)

// swallowTB wraps the real test handle but absorbs Errorf calls, so a
// deliberately-broken invariant can fire without failing the test. Fatals
// still pass through — setup errors must abort.
type swallowTB struct {
	testing.TB
	errs []string
}

func (s *swallowTB) Errorf(format string, args ...any) {
	s.errs = append(s.errs, format)
}

// TestInvariantFailureFlagsFlight is the flight-recorder acceptance check: an
// invariant violation right after a traced op flags that op in the always-on
// flight recorder, and the dump carries its full span timeline.
func TestInvariantFailureFlagsFlight(t *testing.T) {
	cl := New(t, FabricSim, 1, DefaultConfig())
	defer cl.Close()

	vs, err := cl.Nodes[0].AddServer("flight", 0)
	if err != nil {
		t.Fatal(err)
	}
	fake := &swallowTB{TB: t}
	cl.Run(t, func(ctx context.Context) {
		cl.HeartbeatRound(ctx)
		payload := cl.Payload(0, 4096)
		if werr := vs.PutRemote(ctx, 1, payload, 4096, 4096); werr != nil {
			t.Errorf("PutRemote: %v", werr)
			return
		}
		// The write replicated at the configured factor 3; demanding 5 is a
		// guaranteed violation — the hook must flag the put's trace.
		RequireReplicationFactor(fake, vs, pagetable.EntryID(1), 5, 0)
	})
	if len(fake.errs) == 0 {
		t.Fatal("deliberately-broken invariant did not report a violation")
	}

	flagged := cl.Flight.Flagged()
	if len(flagged) == 0 {
		t.Fatal("invariant violation did not flag any trace in the flight recorder")
	}
	entry := flagged[len(flagged)-1]
	if !strings.Contains(entry.Reason, "invariant replication_factor") {
		t.Fatalf("flagged reason = %q, want invariant replication_factor", entry.Reason)
	}
	dump := cl.Flight.Dump()
	for _, want := range []string{
		"invariant replication_factor",
		"core.put_remote", // the offending op's root span...
		"placement.pick",  // ...and its children: the full timeline survived
		"repl.write",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("flight dump missing %q:\n%s", want, dump)
		}
	}
}

// TestViolationHookRestored ensures the harness unhooks its flight flagging on
// cleanup, so later clusters in the process never flag a stale recorder.
func TestViolationHookRestored(t *testing.T) {
	var got []string
	prev := SetViolationHook(func(inv string) { got = append(got, inv) })
	defer SetViolationHook(prev)

	t.Run("scoped", func(t *testing.T) {
		cl := New(t, FabricSim, 1, DefaultConfig())
		defer cl.Close()
		_ = cl // New swapped the hook in; subtest cleanup must swap it back.
	})
	notifyViolation("probe")
	if len(got) != 1 || got[0] != "probe" {
		t.Fatalf("outer hook not restored after cluster cleanup: %v", got)
	}
}
