package chaos

import (
	"context"
	"strings"
	"testing"

	"godm/internal/pagetable"
	"godm/internal/trace"
)

// runTracedOp drives one replicated put and one read of the same entry under
// a single root span on the simulated fabric, and returns the reassembled
// timeline. Simulated time plus sequential span IDs make the rendering a
// pure function of the seed.
func runTracedOp(t *testing.T, seed int64) string {
	t.Helper()
	cl := New(t, FabricSim, seed, DefaultConfig())
	defer cl.Close()
	cl.DumpOnFailure(t)

	vs, err := cl.Nodes[0].AddServer("traced", 0)
	if err != nil {
		t.Fatal(err)
	}
	var timeline string
	cl.Run(t, func(ctx context.Context) {
		cl.HeartbeatRound(ctx)

		ctx, root := trace.Start(ctx, "scenario.swap_read")
		payload := cl.Payload(1, 4096)
		if err := vs.PutRemote(ctx, pagetable.EntryID(1), payload, 4096, 4096); err != nil {
			t.Errorf("put: %v", err)
		}
		if _, _, err := vs.Get(ctx, pagetable.EntryID(1)); err != nil {
			t.Errorf("get: %v", err)
		}
		root.End()
		timeline = cl.Tracer.Timeline(root.TraceID())
	})
	return timeline
}

// TestTracedOpTimelineDeterministic is the acceptance check for end-to-end
// tracing: one traced put+read reassembles into a timeline that crosses
// every layer (placement, replication, transport, remote serve) and is
// byte-identical across two runs at the same seed.
func TestTracedOpTimelineDeterministic(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	a := runTracedOp(t, seed)
	b := runTracedOp(t, seed)
	if a != b {
		t.Errorf("same seed, different timelines:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	for _, span := range []string{
		"scenario.swap_read",
		"core.put_remote",
		"placement.pick",
		"repl.write",
		"net.call",
		"net.serve",
		"core.get",
		"repl.read",
		"net.read",
	} {
		if !strings.Contains(a, span) {
			t.Errorf("timeline missing %s span:\n%s", span, a)
		}
	}
	// The multi-layer structure must be visible: replication work indented
	// under the root, transport work indented deeper.
	if !strings.Contains(a, "\n  ") || !strings.Contains(a, "\n    ") {
		t.Errorf("timeline is flat, expected nested spans:\n%s", a)
	}
}

// TestInvariantMetricsCount asserts the per-invariant counters advance with
// each check, so a failure dump can say which invariants actually ran.
func TestInvariantMetricsCount(t *testing.T) {
	cl := New(t, FabricSim, 7, DefaultConfig())
	defer cl.Close()

	vs, err := cl.Nodes[0].AddServer("inv", 0)
	if err != nil {
		t.Fatal(err)
	}
	before := InvariantMetrics().Counter("write_atomicity_checks").Value()
	cl.Run(t, func(ctx context.Context) {
		cl.HeartbeatRound(ctx)
		payload := cl.Payload(1, 4096)
		werr := vs.PutRemote(ctx, pagetable.EntryID(1), payload, 4096, 4096)
		RequireWriteAtomicity(ctx, t, cl.Inj, vs, pagetable.EntryID(1), payload, werr)
	})
	after := InvariantMetrics().Counter("write_atomicity_checks").Value()
	if after != before+1 {
		t.Errorf("write_atomicity_checks went %d -> %d, want +1", before, after)
	}
	if v := InvariantMetrics().Counter("write_atomicity_violations").Value(); v != 0 {
		t.Errorf("fault-free run recorded %d violations", v)
	}
	if !strings.Contains(cl.Tree.String(), "chaos/invariants") {
		t.Errorf("cluster tree does not mount the invariant registry:\n%s", cl.Tree.String())
	}
}
