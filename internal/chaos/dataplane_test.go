// Data-plane chaos scenarios: a replica holder whose one-sided writes all
// fail mid-fan-out, and batched client writes that must stay atomic while
// their target's data plane is down. Both run on the simulated and the TCP
// fabric and replay deterministically per seed.
package chaos

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"godm/internal/core"
	"godm/internal/faulty"
	"godm/internal/pagetable"
)

// runFanoutVictimScenario makes every one-sided write to one replica holder
// fail while the control plane stays healthy — the worst case for the
// parallel fan-out, because allocations succeed everywhere and then exactly
// one stream of the fan-out dies. Every failed write must roll back to
// zero stranded copies on every node; every committed write must be intact
// on all holders.
func runFanoutVictimScenario(t *testing.T, kind FabricKind, seed int64, writes int) (outcomes []string) {
	t.Helper()
	cl := New(t, kind, seed, DefaultConfig())
	defer cl.Close()
	victim := cl.Nodes[len(cl.Nodes)-1].ID()
	cl.Inj.AddRule(faulty.Rule{Kind: faulty.KindDrop, Verb: faulty.VerbWrite,
		From: faulty.AnyNode, To: victim, Pct: 100})

	vs, err := cl.Nodes[0].AddServer("fanout", 0)
	if err != nil {
		t.Fatal(err)
	}
	owner := cl.Nodes[0].ID()
	failed := 0
	cl.Run(t, func(ctx context.Context) {
		cl.Inj.SetEnabled(false)
		cl.HeartbeatRound(ctx)
		cl.Inj.SetEnabled(true)

		for i := 0; i < writes; i++ {
			id := pagetable.EntryID(i)
			payload := cl.Payload(i, 4096)
			werr := vs.PutRemote(ctx, id, payload, 4096, 4096)
			outcomes = append(outcomes, fmt.Sprintf("put %d: %s", i, Classify(werr)))
			RequireWriteAtomicity(ctx, t, cl.Inj, vs, id, payload, werr)
			if werr != nil {
				failed++
				// The decisive check: the aborted fan-out released every
				// reservation it made on every node, including the ones
				// whose writes succeeded before the victim's stream died.
				RequireNoStrandedCopies(t, cl.Nodes, owner, vs.WireKey(id))
			}
		}
	})
	if failed == 0 {
		t.Errorf("no write ever picked victim %d as a replica; scenario exercised nothing", victim)
	}
	return outcomes
}

func TestChaosFanoutVictimSim(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	out1 := runFanoutVictimScenario(t, FabricSim, seed, 20)
	out2 := runFanoutVictimScenario(t, FabricSim, seed, 20)
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
	}
}

func TestChaosFanoutVictimTCP(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	out1 := runFanoutVictimScenario(t, FabricTCP, seed, 20)
	out2 := runFanoutVictimScenario(t, FabricTCP, seed, 20)
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
	}
}

// runBatchAtomicityScenario drives window-batched client writes (PutAll)
// against a donor whose data plane goes dark halfway through: batches
// issued while writes are dropped must abort as a unit — previous versions
// intact, no blocks left from the abort — and batches after recovery must
// commit as a unit.
func runBatchAtomicityScenario(t *testing.T, kind FabricKind, seed int64) (outcomes []string) {
	t.Helper()
	cl := New(t, kind, seed, Config{Nodes: 2, ReplicationFactor: 1, HeartbeatTimeout: 3})
	defer cl.Close()
	client := core.NewClient(cl.Eps[0])
	target := cl.Nodes[1]
	owner := cl.Nodes[0].ID()
	const window = 6

	cl.Run(t, func(ctx context.Context) {
		prev := map[uint64][]byte{}
		round := 0
		putRound := func(keys []uint64) {
			entries := make([]core.Entry, len(keys))
			for i, k := range keys {
				entries[i] = core.Entry{Key: k, Data: cl.Payload(round*100+int(k), 1024)}
			}
			werr := client.PutAll(ctx, target.ID(), entries)
			outcomes = append(outcomes, fmt.Sprintf("batch %d: %s", round, Classify(werr)))
			RequireBatchAtomicity(ctx, t, cl.Inj, client, target, owner, entries, prev, werr)
			if werr == nil {
				for _, e := range entries {
					prev[e.Key] = e.Data
				}
			}
			round++
		}
		keys := make([]uint64, window)
		for i := range keys {
			keys[i] = uint64(i + 1)
		}
		// Seed versions land fault-free.
		cl.Inj.SetEnabled(false)
		putRound(keys)
		cl.Inj.SetEnabled(true)

		// Dark phase: every one-sided write to the donor is dropped, so each
		// batch allocates successfully and then fails mid-flight. Half the
		// keys already exist (overwrites), half are fresh per round.
		cl.Inj.AddRule(faulty.Rule{Kind: faulty.KindDrop, Verb: faulty.VerbWrite,
			From: faulty.AnyNode, To: target.ID(), Pct: 100})
		for r := 0; r < 3; r++ {
			mixed := append([]uint64{}, keys[:window/2]...)
			for i := window / 2; i < window; i++ {
				mixed = append(mixed, uint64(100+round*10+i))
			}
			putRound(mixed)
		}

		// Recovery: the same keys commit wholesale.
		cl.Inj.SetEnabled(false)
		putRound(keys)
	})
	return outcomes
}

func TestChaosBatchAtomicity(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	for _, kind := range []FabricKind{FabricSim, FabricTCP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			out1 := runBatchAtomicityScenario(t, kind, seed)
			out2 := runBatchAtomicityScenario(t, kind, seed)
			if !reflect.DeepEqual(out1, out2) {
				t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
			}
			want := []string{"batch 0: ok", "batch 1: injected", "batch 2: injected", "batch 3: injected", "batch 4: ok"}
			if !reflect.DeepEqual(out1, want) {
				t.Errorf("outcomes = %v, want %v", out1, want)
			}
		})
	}
}
