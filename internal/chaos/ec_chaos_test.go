package chaos

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"godm/internal/cluster"
	"godm/internal/pagetable"
	"godm/internal/transport"
)

// stripeConfig is an eight-node cluster under RS(4,2): six donors per
// stripe, one spare for repair, plus the owner.
func stripeConfig() Config {
	return Config{Nodes: 8, ReplicationFactor: 3, HeartbeatTimeout: 3, Durability: "rs4.2"}
}

// runStripeScenario is the seeded donor-crash / degraded-read scenario:
// stripe several entries across the cluster, crash the donor holding entry
// 0's first data shard, read every entry back while the donor is dark (reads
// must reconstruct from parity without a single wrong byte), then let the
// failure detector and maintenance loop rebuild the lost shards on the spare
// and verify full stripe durability. Outcome labels are a function of the
// seed only; the injector trace additionally of the fabric's op interleaving
// (serial under sim, so the sim trace also replays byte for byte).
func runStripeScenario(t *testing.T, kind FabricKind, seed int64) (outcomes, trace []string) {
	t.Helper()
	cl := New(t, kind, seed, stripeConfig())
	defer cl.Close()
	cl.DumpOnFailure(t)
	vs, err := cl.Nodes[0].AddServer("chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	owner := cl.Nodes[0].ID()
	const entries = 4
	cl.Run(t, func(ctx context.Context) {
		// Membership setup is concurrent under TCP: fault-free and uncounted.
		cl.Inj.SetEnabled(false)
		cl.HeartbeatRound(ctx)
		cl.Inj.SetEnabled(true)

		for i := 0; i < entries; i++ {
			id := pagetable.EntryID(i)
			werr := vs.PutRemote(ctx, id, cl.Payload(i, 4096), 4096, 4096)
			outcomes = append(outcomes, fmt.Sprintf("put %d: %s", i, Classify(werr)))
			if werr != nil {
				continue
			}
			RequireStripeDurable(t, cl.Nodes, vs, owner, id, 4, 2)
		}

		// Crash the donor of entry 0's first data shard (seed-deterministic
		// through the balancer).
		loc, err := vs.Location(0)
		if err != nil {
			t.Errorf("location of entry 0: %v", err)
			return
		}
		victim := transport.NodeID(loc.Primary)
		cl.Inj.Crash(victim)
		outcomes = append(outcomes, fmt.Sprintf("crash donor %d", victim))

		// Degraded reads: every striped entry must still read back
		// byte-identical, reconstructing where the victim held a shard.
		for i := 0; i < entries; i++ {
			id := pagetable.EntryID(i)
			got, _, gerr := vs.Get(ctx, id)
			label := Classify(gerr)
			if gerr == nil && !bytes.Equal(got, cl.Payload(i, 4096)) {
				label = "corrupt"
			}
			outcomes = append(outcomes, fmt.Sprintf("degraded get %d: %s", i, label))
			RequireStripeDurable(t, cl.Nodes, vs, owner, id, 4, 2, victim)
		}

		// Failure detection, then repair-by-reconstruction onto the spare.
		detected := false
		for r := 0; r < 8 && !detected; r++ {
			for _, ev := range cl.HeartbeatRound(ctx)[0] {
				if ev.Kind == cluster.EventNodeDown && ev.Node == cluster.NodeID(victim) {
					detected = true
				}
			}
		}
		if !detected {
			t.Errorf("owner never detected victim %d going down", victim)
			return
		}
		queued := cl.Nodes[0].RepairLost(victim)
		repaired, merr := cl.Nodes[0].Maintain(ctx)
		outcomes = append(outcomes, fmt.Sprintf("repair: queued %d repaired %d err %s", queued, repaired, Classify(merr)))
		if queued == 0 {
			t.Error("victim held no shard; bad scenario setup")
		}
		if merr != nil || repaired != queued {
			t.Errorf("maintain repaired %d of %d queued: %v", repaired, queued, merr)
		}

		// Post-repair: full k+m durability with the victim out of every set.
		for i := 0; i < entries; i++ {
			id := pagetable.EntryID(i)
			loc, err := vs.Location(id)
			if err != nil {
				t.Errorf("entry %d lost its location after repair: %v", i, err)
				continue
			}
			for _, h := range append([]pagetable.NodeID{loc.Primary}, loc.Replicas...) {
				if transport.NodeID(h) == victim {
					t.Errorf("entry %d: crashed donor %d still in stripe set after repair", i, victim)
				}
			}
			RequireStripeDurable(t, cl.Nodes, vs, owner, id, 4, 2)
			got, _, gerr := vs.Get(ctx, id)
			label := Classify(gerr)
			if gerr == nil && !bytes.Equal(got, cl.Payload(i, 4096)) {
				label = "corrupt"
			}
			outcomes = append(outcomes, fmt.Sprintf("healed get %d: %s", i, label))
		}
	})
	return outcomes, cl.Inj.Trace()
}

// TestChaosStripeDegradedReadSim: the scenario under the simulated fabric
// replays byte-for-byte — outcome labels and fault trace both — because the
// striped read plan is serial under the discrete-event simulation.
func TestChaosStripeDegradedReadSim(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	out1, tr1 := runStripeScenario(t, FabricSim, seed)
	if len(tr1) == 0 {
		t.Fatal("crash injected no faults; the degraded path was never exercised")
	}
	mustContainDegraded(t, out1)
	out2, tr2 := runStripeScenario(t, FabricSim, seed)
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Errorf("fault trace replay differs:\n run1: %v\n run2: %v", tr1, tr2)
	}
}

// TestChaosStripeDegradedReadTCP: the same scenario over real sockets. The
// outcome sequence replays exactly; the injector trace is not compared
// because the concurrent scatter read cancels straggler fetches, so the
// per-stream op counts legitimately vary with socket timing.
func TestChaosStripeDegradedReadTCP(t *testing.T) {
	seed := *chaosSeed
	logSeed(t, seed)
	out1, tr1 := runStripeScenario(t, FabricTCP, seed)
	if len(tr1) == 0 {
		t.Fatal("crash injected no faults; the degraded path was never exercised")
	}
	mustContainDegraded(t, out1)
	out2, _ := runStripeScenario(t, FabricTCP, seed)
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcome replay differs:\n run1: %v\n run2: %v", out1, out2)
	}
}

// mustContainDegraded requires every read (degraded and healed) to have
// completed with the right bytes — the scenario is vacuous otherwise.
func mustContainDegraded(t *testing.T, outcomes []string) {
	t.Helper()
	degraded, healed := 0, 0
	for _, o := range outcomes {
		if containsLabel(o, "ok") {
			switch {
			case len(o) > 8 && o[:8] == "degraded":
				degraded++
			case len(o) > 6 && o[:6] == "healed":
				healed++
			}
		}
	}
	if degraded == 0 || healed == 0 {
		t.Errorf("scenario produced %d degraded and %d healed reads: %v", degraded, healed, outcomes)
	}
}
