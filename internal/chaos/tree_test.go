// Tree-topology chaos scenarios: the hierarchical control plane (tree-scoped
// heartbeats + epoch-versioned map deltas) under crashes, at sizes where
// all-to-all heartbeating would be the bottleneck. The cluster size is
// tunable with -chaos.nodes; the headline scale test pins 24 nodes over real
// TCP sockets.
package chaos

import (
	"context"
	"flag"
	"testing"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/transport"
)

var chaosNodes = flag.Int("chaos.nodes", 6, "cluster size for the tree chaos scenarios")

// treeConfig shapes an n-node cluster with real tree depth: groups of up to
// 6, so leaders and the root do strictly less than O(n) work per round.
func treeConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = n
	cfg.GroupSize = 6
	if n < 6 {
		cfg.GroupSize = n
	}
	return cfg
}

// runTreeFailover converges a tree-heartbeat cluster, crashes the root, and
// verifies failover plus epoch convergence of both directories and a client
// map. It returns the election latency in rounds.
func runTreeFailover(t *testing.T, kind FabricKind, seed int64, nodes int) int {
	t.Helper()
	cl := New(t, kind, seed, treeConfig(nodes))
	defer cl.Close()
	cl.DumpOnFailure(t)
	latency := 0
	cl.Run(t, func(ctx context.Context) {
		// Setup convergence runs with the injector disabled per the serial-
		// driver contract — and it MUST come back on before the crash: a
		// disabled injector reports Crashed()==false, so the "dead" root
		// would keep heartbeating and no failover would ever happen.
		cl.Inj.SetEnabled(false)
		for i := 0; i < 3; i++ {
			cl.TreeHeartbeatRound(ctx)
		}
		root, ok := cl.Dirs[0].RootLeader()
		if !ok {
			cl.Inj.SetEnabled(true)
			t.Error("no root before crash")
			return
		}
		// The client rides a survivor's endpoint: once the root crashes the
		// injector drops all its traffic, including client calls made
		// through its fabric attachment.
		clientID := transport.NodeID(nodes)
		if clientID == transport.NodeID(root) {
			clientID--
		}
		client := core.NewClient(cl.Eps[clientID-1])
		if err := client.SyncMap(ctx, clientID); err != nil {
			cl.Inj.SetEnabled(true)
			t.Errorf("SyncMap: %v", err)
			return
		}
		cl.RequireEpochConvergence(t, cl.Dirs, []*core.Client{client}, 0)
		RequireSingleLeader(t, cl.Dirs)
		cl.Inj.SetEnabled(true)
		if t.Failed() {
			return
		}

		cl.Inj.Crash(transport.NodeID(root))
		// Detection takes HeartbeatTimeout ticks at the watcher, then the
		// delta must ride the tree to every other directory.
		latency = cl.RequireFailoverWithin(ctx, t, transport.NodeID(root), 10)

		var survivors []*cluster.Directory
		for i, d := range cl.Dirs {
			if cl.Nodes[i].ID() != transport.NodeID(root) {
				survivors = append(survivors, d)
			}
		}
		// The stale client follows the map deltas to the new view.
		if err := client.SyncMap(ctx, clientID); err != nil {
			t.Errorf("SyncMap after crash: %v", err)
			return
		}
		cl.RequireEpochConvergence(t, survivors, []*core.Client{client}, 0)
		if client.Map().Alive(cluster.NodeID(root)) {
			t.Errorf("client map still shows crashed root %d alive", root)
		}
	})
	return latency
}

// TestChaosTreeFailover runs the tree failover scenario at -chaos.nodes
// (default 6) on both fabrics and checks the election latency is within the
// detection-plus-propagation budget.
func TestChaosTreeFailover(t *testing.T) {
	for _, kind := range []FabricKind{FabricSim, FabricTCP} {
		t.Run(string(kind), func(t *testing.T) {
			seed := *chaosSeed
			logSeed(t, seed)
			latency := runTreeFailover(t, kind, seed, *chaosNodes)
			if t.Failed() {
				return
			}
			t.Logf("chaos: root failover converged in %d tree rounds (%d nodes, %s)", latency, *chaosNodes, kind)
		})
	}
}

// TestChaosScaleTCPTree is the 24-node headline: real sockets, groups of 6,
// root crash, failover, and client epoch convergence — the configuration the
// CI scale job runs under -race. Election latency and client epoch lag land
// in BENCH_cluster.json.
func TestChaosScaleTCPTree(t *testing.T) {
	nodes := *chaosNodes
	if nodes < 24 {
		nodes = 24
	}
	seed := *chaosSeed
	logSeed(t, seed)
	latency := runTreeFailover(t, FabricTCP, seed, nodes)
	if t.Failed() {
		return
	}
	t.Logf("chaos: scale failover converged in %d tree rounds (%d nodes, tcp)", latency, nodes)
}
