package chaos

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/faulty"
	"godm/internal/metrics"
	"godm/internal/pagetable"
	"godm/internal/transport"
)

// invReg counts invariant checks and violations per invariant, so a failed
// seed's dump shows which contract broke and how often. It is process-wide:
// every cluster mounts it at chaos/invariants in its tree.
var invReg = metrics.NewRegistry("chaos/invariants")

// InvariantMetrics exposes the per-invariant check/violation counters.
func InvariantMetrics() *metrics.Registry { return invReg }

// violationHook, when installed, observes every counted violation with its
// invariant name. Like invReg it is process-wide: the chaos cluster points it
// at its flight recorder so the offending op's timeline is flagged the moment
// the invariant trips, before any test teardown can evict it.
var (
	violationHookMu sync.Mutex
	violationHook   func(invariant string)
)

// SetViolationHook installs fn as the process-wide violation observer and
// returns the previous hook so callers can restore it (pass nil to clear).
func SetViolationHook(fn func(invariant string)) (prev func(invariant string)) {
	violationHookMu.Lock()
	defer violationHookMu.Unlock()
	prev, violationHook = violationHook, fn
	return prev
}

func notifyViolation(invariant string) {
	violationHookMu.Lock()
	fn := violationHook
	violationHookMu.Unlock()
	if fn != nil {
		fn(invariant)
	}
}

// countingTB wraps the test handle so every invariant failure is also
// counted in invReg and reported to the violation hook before reaching the
// real reporter.
type countingTB struct {
	testing.TB
	name       string
	violations *metrics.Counter
}

func (c countingTB) Errorf(format string, args ...any) {
	c.violations.Inc()
	notifyViolation(c.name)
	c.TB.Errorf(format, args...)
}

// checked counts one run of the named invariant and returns a reporter that
// counts its violations.
func checked(t testing.TB, name string) countingTB {
	invReg.Counter(name + "_checks").Inc()
	return countingTB{TB: t, name: name, violations: invReg.Counter(name + "_violations")}
}

// RequireWriteAtomicity asserts the §IV.D all-or-nothing contract for one
// replicated write that returned werr: on success, the owner's Get and a
// direct read from every node in the recorded replica set all return exactly
// payload (no torn quorum); on failure, the memory map has no entry — a
// rolled-back write left nothing visible. The injector is paused during the
// checks so verification traffic is not itself faulted and does not advance
// the decision counters.
func RequireWriteAtomicity(ctx context.Context, t testing.TB, inj *faulty.Injector, vs *core.VirtualServer, id pagetable.EntryID, payload []byte, werr error) {
	t.Helper()
	tb := checked(t, "write_atomicity")
	inj.SetEnabled(false)
	defer inj.SetEnabled(true)

	if werr != nil {
		if _, err := vs.Location(id); !errors.Is(err, pagetable.ErrNotFound) {
			tb.Errorf("entry %d: write failed (%v) but memory map still has a location (err=%v): torn write visible", id, werr, err)
		}
		return
	}
	got, loc, err := vs.Get(ctx, id)
	if err != nil {
		tb.Errorf("entry %d: committed write not readable: %v", id, err)
		return
	}
	if !bytes.Equal(got, payload) {
		tb.Errorf("entry %d: Get returned wrong bytes after committed write", id)
	}
	holders := append([]pagetable.NodeID{loc.Primary}, loc.Replicas...)
	for _, h := range holders {
		data, err := vs.ReadFrom(ctx, id, transport.NodeID(h))
		if err != nil {
			tb.Errorf("entry %d: holder %d unreadable after committed write: %v", id, h, err)
			continue
		}
		if !bytes.Equal(data, payload) {
			tb.Errorf("entry %d: holder %d serves torn/wrong bytes", id, h)
		}
	}
}

// RequireReplicationFactor asserts that id's replica set holds factor
// distinct nodes, none of them lost.
func RequireReplicationFactor(t testing.TB, vs *core.VirtualServer, id pagetable.EntryID, factor int, lost transport.NodeID) {
	t.Helper()
	tb := checked(t, "replication_factor")
	loc, err := vs.Location(id)
	if err != nil {
		tb.Errorf("entry %d: no location: %v", id, err)
		return
	}
	holders := append([]pagetable.NodeID{loc.Primary}, loc.Replicas...)
	seen := map[pagetable.NodeID]bool{}
	for _, h := range holders {
		if h == pagetable.NodeID(lost) {
			tb.Errorf("entry %d: lost node %d still in replica set %v", id, lost, holders)
		}
		if seen[h] {
			tb.Errorf("entry %d: duplicate holder %d in replica set %v", id, h, holders)
		}
		seen[h] = true
	}
	if len(holders) != factor {
		tb.Errorf("entry %d: replica set %v has %d holders, want %d", id, holders, len(holders), factor)
	}
}

// RequireStripeDurable generalizes the replication-factor invariant to
// erasure-coded shard sets: entry id is durable iff its location records
// k+m distinct donors (none the owner itself), every donor outside the lost
// set actually hosts the shard for its stripe position with the right (k, m)
// coordinates, and at least k such live shards remain — the §IV.D durability
// floor below which the stripe is unrecoverable. Donors listed in lost are
// expected casualties: they may still appear in the set (repair pending) but
// must not be counted toward the k live shards.
func RequireStripeDurable(t testing.TB, nodes []*core.Node, vs *core.VirtualServer, owner transport.NodeID, id pagetable.EntryID, k, m int, lost ...transport.NodeID) {
	t.Helper()
	tb := checked(t, "stripe_durable")
	loc, err := vs.Location(id)
	if err != nil {
		tb.Errorf("entry %d: no location: %v", id, err)
		return
	}
	down := map[transport.NodeID]bool{}
	for _, l := range lost {
		down[l] = true
	}
	holders := append([]pagetable.NodeID{loc.Primary}, loc.Replicas...)
	if len(holders) != k+m {
		tb.Errorf("entry %d: stripe set %v has %d donors, want k+m=%d", id, holders, len(holders), k+m)
	}
	key := vs.WireKey(id)
	seen := map[pagetable.NodeID]bool{}
	live := 0
	for pos, h := range holders {
		if h == pagetable.NodeID(owner) {
			tb.Errorf("entry %d: owner %d placed its own shard locally in set %v", id, owner, holders)
		}
		if seen[h] {
			tb.Errorf("entry %d: donor %d holds two shards of one stripe (set %v)", id, h, holders)
			continue
		}
		seen[h] = true
		if down[transport.NodeID(h)] {
			continue
		}
		host := nodes[h-1]
		if !host.HostsRemoteKey(owner, key) {
			tb.Errorf("entry %d: donor %d records no shard block", id, h)
			continue
		}
		idx, gotK, gotM, ok := host.ShardInfo(owner, key)
		if !ok || idx != pos || gotK != k || gotM != m {
			tb.Errorf("entry %d: donor %d shard coords = (%d,%d,%d,%v), want (%d,%d,%d,true)",
				id, h, idx, gotK, gotM, ok, pos, k, m)
			continue
		}
		live++
	}
	if live < k {
		tb.Errorf("entry %d: only %d live shards of k=%d survive; stripe unrecoverable", id, live, k)
	}
}

// RequireSingleLeader asserts that, in every listed directory, each group
// with alive members has exactly one leader and that leader is an alive
// member of the group. Directories of crashed nodes should be excluded by
// the caller — a dead process's stale view is not an invariant violation.
func RequireSingleLeader(t testing.TB, dirs []*cluster.Directory) {
	t.Helper()
	tb := checked(t, "single_leader")
	for i, dir := range dirs {
		groups := dir.Groups()
		if groups == 0 {
			groups = 1
		}
		for g := 0; g < groups; g++ {
			members := dir.GroupMembers(g)
			if len(members) == 0 {
				continue
			}
			leader, ok := dir.Leader(g)
			if !ok {
				tb.Errorf("dir %d: group %d has %d alive members but no leader", i, g, len(members))
				continue
			}
			if !dir.Alive(leader) {
				tb.Errorf("dir %d: group %d leader %d is not alive", i, g, leader)
			}
			found := false
			for _, m := range members {
				if m.ID == leader {
					found = true
				}
			}
			if !found {
				tb.Errorf("dir %d: group %d leader %d is not a group member %v", i, g, leader, members)
			}
		}
	}
}

// RequireLeaderAgreement asserts every listed directory names the same
// leader for group g. Call it after equal membership views have propagated
// (a heartbeat round with forced re-election, i.e. §IV.C dynamic
// regrouping); under the stable-incumbent election rule, views may
// legitimately disagree before that.
func RequireLeaderAgreement(t testing.TB, dirs []*cluster.Directory, g int) cluster.NodeID {
	t.Helper()
	tb := checked(t, "leader_agreement")
	var agreed cluster.NodeID
	have := false
	for i, dir := range dirs {
		leader, ok := dir.Leader(g)
		if !ok {
			tb.Errorf("dir %d: no leader for group %d", i, g)
			continue
		}
		if !have {
			agreed, have = leader, true
			continue
		}
		if leader != agreed {
			tb.Errorf("dir %d: leader %d for group %d, others say %d", i, leader, g, agreed)
		}
	}
	return agreed
}

// RequireEpochConvergence asserts the listed directories have converged on
// one cluster map: identical alive sets and group assignments, the same
// leader per group, and the same root. It also bounds client staleness:
// every listed client map must be within maxLag epochs of its origin
// directory's current epoch (a client that has never synced fails). Call it
// after enough tree heartbeat rounds for deltas to propagate; before that,
// views may legitimately differ.
func (cl *Cluster) RequireEpochConvergence(t testing.TB, dirs []*cluster.Directory, clients []*core.Client, maxLag int) {
	t.Helper()
	tb := checked(t, "epoch_convergence")
	if len(dirs) == 0 {
		tb.Errorf("no directories to compare")
		return
	}
	type view struct {
		alive bool
		group int
	}
	ref := map[cluster.NodeID]view{}
	for _, st := range dirs[0].Snapshot() {
		ref[st.ID] = view{alive: st.Alive, group: st.Group}
	}
	refRoot, refRootOK := dirs[0].RootLeader()
	for i, dir := range dirs[1:] {
		got := map[cluster.NodeID]view{}
		for _, st := range dir.Snapshot() {
			got[st.ID] = view{alive: st.Alive, group: st.Group}
		}
		if len(got) != len(ref) {
			tb.Errorf("dir %d tracks %d members, dir 0 tracks %d", i+1, len(got), len(ref))
		}
		for id, v := range ref {
			if gv, ok := got[id]; !ok || gv != v {
				tb.Errorf("dir %d view of node %d = %+v, dir 0 says %+v", i+1, id, got[id], v)
			}
		}
		root, ok := dir.RootLeader()
		if ok != refRootOK || root != refRoot {
			tb.Errorf("dir %d root = %d (ok=%v), dir 0 says %d (ok=%v)", i+1, root, ok, refRoot, refRootOK)
		}
		for g := 0; g < dir.Groups(); g++ {
			l, lok := dir.Leader(g)
			rl, rlok := dirs[0].Leader(g)
			if lok != rlok || l != rl {
				tb.Errorf("dir %d leader of group %d = %d (ok=%v), dir 0 says %d (ok=%v)", i+1, g, l, lok, rl, rlok)
			}
		}
	}
	for i, c := range clients {
		if !c.Map().Synced() {
			tb.Errorf("client %d never synced its map", i)
			continue
		}
		origin, epoch := c.Map().Epoch()
		if origin < 1 || int(origin) > len(cl.Dirs) {
			tb.Errorf("client %d synced from unknown origin %d", i, origin)
			continue
		}
		if lag := int64(cl.Dirs[origin-1].Epoch()) - int64(epoch); lag < 0 || lag > int64(maxLag) {
			tb.Errorf("client %d epoch lag %d from origin %d exceeds bound %d", i, lag, origin, maxLag)
		}
	}
}

// RequireFailoverWithin drives tree heartbeat rounds until every surviving
// directory has marked victim down (or gone) and agrees on a live root and
// a live leader for every group with members, failing the test if
// convergence takes more than within rounds. It returns the number of rounds
// actually taken — the election latency the scale benchmarks record.
func (cl *Cluster) RequireFailoverWithin(ctx context.Context, t testing.TB, victim transport.NodeID, within int) int {
	t.Helper()
	tb := checked(t, "failover_within")
	converged := func() bool {
		for i, dir := range cl.Dirs {
			if cl.Nodes[i].ID() == victim {
				continue
			}
			if dir.Alive(cluster.NodeID(victim)) {
				return false
			}
			root, ok := dir.RootLeader()
			if !ok || root == cluster.NodeID(victim) {
				return false
			}
			for g := 0; g < dir.Groups(); g++ {
				if len(dir.GroupMembers(g)) == 0 {
					continue
				}
				l, lok := dir.Leader(g)
				if !lok || l == cluster.NodeID(victim) || !dir.Alive(l) {
					return false
				}
			}
		}
		return true
	}
	for round := 1; round <= within; round++ {
		cl.TreeHeartbeatRound(ctx)
		if converged() {
			return round
		}
	}
	tb.Errorf("survivors did not converge on a post-crash view of node %d within %d rounds", victim, within)
	return within
}

// CallRecorder counts control-plane deliveries per request payload. Wrap a
// node's handler with it and send each logical request with a unique payload:
// if any payload is delivered more than once, the transport's retry machinery
// has broken its at-most-once contract (it retried a request that may have
// already executed).
type CallRecorder struct {
	mu   sync.Mutex
	seen map[string]int
}

// NewCallRecorder returns an empty recorder.
func NewCallRecorder() *CallRecorder {
	return &CallRecorder{seen: map[string]int{}}
}

// Wrap returns a handler that counts each delivery, then invokes h.
func (r *CallRecorder) Wrap(h transport.Handler) transport.Handler {
	return func(ctx context.Context, from transport.NodeID, payload []byte) ([]byte, error) {
		r.mu.Lock()
		r.seen[string(payload)]++
		r.mu.Unlock()
		return h(ctx, from, payload)
	}
}

// Deliveries returns how many times the given request payload arrived.
func (r *CallRecorder) Deliveries(payload string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[payload]
}

// RequireAtMostOnce asserts no recorded request was delivered twice.
func (r *CallRecorder) RequireAtMostOnce(t testing.TB) {
	t.Helper()
	tb := checked(t, "at_most_once")
	r.mu.Lock()
	defer r.mu.Unlock()
	for payload, n := range r.seen {
		if n > 1 {
			tb.Errorf("request %q delivered %d times: at-most-once violated", payload, n)
		}
	}
}

// RequireNoStrandedCopies asserts the memory-safety half of the §IV.D
// rollback contract: after a failed (rolled-back) replicated or batched
// write of key owned by owner, no node still hosts a receive-pool block
// recorded for that (owner, key) pair. A violation means an abort path
// forgot to release a reservation, leaking one donor block per failure.
func RequireNoStrandedCopies(t testing.TB, nodes []*core.Node, owner transport.NodeID, key uint64) {
	t.Helper()
	tb := checked(t, "no_stranded_copies")
	for _, n := range nodes {
		if n.ID() == owner {
			continue
		}
		if n.HostsRemoteKey(owner, key) {
			tb.Errorf("node %d still hosts a block for key %d owned by node %d: rolled-back write stranded a copy", n.ID(), key, owner)
		}
	}
}

// RequireBatchAtomicity extends the write-atomicity invariant to the §IV.H
// batched data plane: one PutAll that returned werr is all-or-nothing. On
// success every entry reads back exactly as written (in one batched read).
// On failure the target hosts no block for any key the batch introduced,
// and keys that existed before the batch still serve their previous value
// (prev maps key to it; keys absent from prev did not exist). The injector
// is paused so verification traffic is unfaulted and does not advance
// decision counters.
func RequireBatchAtomicity(ctx context.Context, t testing.TB, inj *faulty.Injector, client *core.Client, target *core.Node, owner transport.NodeID, entries []core.Entry, prev map[uint64][]byte, werr error) {
	t.Helper()
	tb := checked(t, "batch_atomicity")
	inj.SetEnabled(false)
	defer inj.SetEnabled(true)

	if werr != nil {
		for _, e := range entries {
			old, existed := prev[e.Key]
			if !existed {
				if target.HostsRemoteKey(owner, e.Key) {
					tb.Errorf("key %d: aborted batch (%v) left a block on node %d", e.Key, werr, target.ID())
				}
				continue
			}
			got, err := client.Get(ctx, target.ID(), e.Key)
			if err != nil {
				tb.Errorf("key %d: previous version unreadable after aborted batch: %v", e.Key, err)
				continue
			}
			if !bytes.Equal(got, old) {
				tb.Errorf("key %d: aborted batch clobbered the previous version", e.Key)
			}
		}
		return
	}
	keys := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	got, err := client.GetAll(ctx, target.ID(), keys)
	if err != nil {
		tb.Errorf("committed batch unreadable: %v", err)
		return
	}
	for _, e := range entries {
		if !bytes.Equal(got[e.Key], e.Data) {
			tb.Errorf("key %d: committed batch serves wrong bytes", e.Key)
		}
	}
}
