// Package memdev models the latency of every tier in the disaggregated
// memory hierarchy (§III and §VI of the paper): local DRAM, the
// node-coordinated shared memory pool, and the external swap disk. Remote
// memory latency lives in the simulated fabric (internal/simnet) because it
// depends on the interconnect.
//
// All devices charge their latency to the calling discrete-event simulation
// process, so application "completion times" in the experiments are the sum
// of compute time plus the modelled memory-hierarchy time — the same
// accounting the paper's testbed produces with real hardware.
package memdev

import (
	"time"

	"godm/internal/des"
)

// Params holds the latency/bandwidth constants of one node's hardware. The
// defaults mirror the paper's testbed (§V): DDR3-class DRAM, a 2 TB SATA
// 7.2k-rpm disk, and §VI's latency hierarchy.
type Params struct {
	// DRAMLatency is the fixed cost of a local memory access.
	DRAMLatency time.Duration
	// DRAMBandwidth is local memory bandwidth in bytes/second.
	DRAMBandwidth float64
	// SharedMemLatency is the fixed cost of a page move between a virtual
	// server and the node-coordinated shared memory pool (a same-host copy
	// plus map update — DRAM speed, no network).
	SharedMemLatency time.Duration
	// SharedMemBandwidth is the shared-memory copy bandwidth in bytes/second.
	SharedMemBandwidth float64
	// SSDLatency is the fixed access cost of a flash/NVM tier (§VI places
	// SSDs between remote memory and the spinning swap device).
	SSDLatency time.Duration
	// SSDBandwidth is SSD transfer bandwidth in bytes/second.
	SSDBandwidth float64
	// DiskSeek is the average positioning cost of the swap disk.
	DiskSeek time.Duration
	// DiskSequentialSeek is the reduced positioning cost when an access hits
	// the block right after the previous one (swap devices lay batches out
	// contiguously).
	DiskSequentialSeek time.Duration
	// DiskBandwidth is disk transfer bandwidth in bytes/second.
	DiskBandwidth float64
}

// DefaultParams returns the testbed-calibrated constants.
func DefaultParams() Params {
	return Params{
		DRAMLatency:        100 * time.Nanosecond,
		DRAMBandwidth:      25e9,
		SharedMemLatency:   1 * time.Microsecond,
		SharedMemBandwidth: 12e9,
		SSDLatency:         80 * time.Microsecond,
		SSDBandwidth:       500e6,
		DiskSeek:           4 * time.Millisecond,
		DiskSequentialSeek: 200 * time.Microsecond,
		DiskBandwidth:      150e6,
	}
}

// DRAM models local memory accesses.
type DRAM struct {
	latency   time.Duration
	bandwidth float64
}

// NewDRAM returns a DRAM device with the given parameters.
func NewDRAM(p Params) *DRAM {
	return &DRAM{latency: p.DRAMLatency, bandwidth: p.DRAMBandwidth}
}

// Access charges one access of n bytes to proc.
func (d *DRAM) Access(proc *des.Proc, n int64) {
	proc.Sleep(d.latency + transfer(n, d.bandwidth))
}

// AccessTime returns the modelled latency without charging it.
func (d *DRAM) AccessTime(n int64) time.Duration {
	return d.latency + transfer(n, d.bandwidth)
}

// SharedMem models page moves into and out of the node-coordinated shared
// memory pool. Per the paper's core argument, this runs at DRAM speed — not
// network speed — because the pool lives on the same physical host.
type SharedMem struct {
	latency   time.Duration
	bandwidth float64
	engines   *des.Resource // nil = uncontended
}

// NewSharedMem returns an uncontended shared-memory device.
func NewSharedMem(p Params) *SharedMem {
	return &SharedMem{latency: p.SharedMemLatency, bandwidth: p.SharedMemBandwidth}
}

// NewSharedMemContended returns a shared-memory device whose copies
// serialize on a fixed number of copy engines — concurrent tenants moving
// pages through the same node's pool contend for memory bandwidth.
func NewSharedMemContended(env *des.Env, name string, p Params, engines int) *SharedMem {
	return &SharedMem{
		latency:   p.SharedMemLatency,
		bandwidth: p.SharedMemBandwidth,
		engines:   des.NewResource(env, name+".copy", int64(engines)),
	}
}

// Move charges a copy of n bytes between a virtual server and the pool.
func (s *SharedMem) Move(proc *des.Proc, n int64) {
	if s.engines != nil {
		s.engines.Acquire(proc, 1)
		defer s.engines.Release(1)
	}
	proc.Sleep(s.latency + transfer(n, s.bandwidth))
}

// MoveTime returns the modelled latency without charging it.
func (s *SharedMem) MoveTime(n int64) time.Duration {
	return s.latency + transfer(n, s.bandwidth)
}

// SSD models a flash or NVM tier: fixed access latency, no seek penalty,
// modest internal parallelism.
type SSD struct {
	latency   time.Duration
	bandwidth float64
	channels  *des.Resource
}

// NewSSD returns an SSD bound to the simulation environment with 4 internal
// channels.
func NewSSD(env *des.Env, name string, p Params) *SSD {
	return &SSD{
		latency:   p.SSDLatency,
		bandwidth: p.SSDBandwidth,
		channels:  des.NewResource(env, name+".chan", 4),
	}
}

// Transfer charges one I/O of n bytes.
func (s *SSD) Transfer(proc *des.Proc, n int64) {
	s.channels.Acquire(proc, 1)
	proc.Sleep(s.latency + transfer(n, s.bandwidth))
	s.channels.Release(1)
}

// AccessTime returns the uncontended latency of an n-byte I/O.
func (s *SSD) AccessTime(n int64) time.Duration {
	return s.latency + transfer(n, s.bandwidth)
}

// Disk models the swap device: a single head (concurrent requests serialize,
// which is what makes disk-swap thrashing catastrophic under memory
// pressure), seek-dominated random access, and cheap sequential access.
type Disk struct {
	params  Params
	head    *des.Resource
	nextOff int64 // offset immediately after the previous access
}

// NewDisk returns a disk bound to the simulation environment.
func NewDisk(env *des.Env, name string, p Params) *Disk {
	return &Disk{params: p, head: des.NewResource(env, name+".head", 1), nextOff: -1}
}

// Transfer charges one I/O of n bytes at byte offset off, serializing on the
// disk head and applying the sequential-seek discount when the access
// continues where the previous one ended.
func (d *Disk) Transfer(proc *des.Proc, off, n int64) {
	d.head.Acquire(proc, 1)
	seek := d.params.DiskSeek
	if off == d.nextOff {
		seek = d.params.DiskSequentialSeek
	}
	d.nextOff = off + n
	proc.Sleep(seek + transfer(n, d.params.DiskBandwidth))
	d.head.Release(1)
}

// QueueLen reports the number of requests waiting for the head.
func (d *Disk) QueueLen() int { return d.head.QueueLen() }

func transfer(n int64, bytesPerSec float64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}
