package memdev

import (
	"testing"
	"time"

	"godm/internal/des"
)

func TestHierarchyOrdering(t *testing.T) {
	// The paper's whole premise: DRAM << shared memory << disk per 4 KB page.
	p := DefaultParams()
	dram := NewDRAM(p).AccessTime(4096)
	shared := NewSharedMem(p).MoveTime(4096)
	if dram >= shared {
		t.Fatalf("DRAM %v not faster than shared memory %v", dram, shared)
	}
	// Disk random access is at least 1000x slower than shared memory.
	diskTime := p.DiskSeek + time.Duration(4096/p.DiskBandwidth*float64(time.Second))
	if diskTime < 1000*shared {
		t.Fatalf("disk %v not >=1000x shared memory %v", diskTime, shared)
	}
}

func TestDRAMAccessCharges(t *testing.T) {
	env := des.NewEnv()
	dram := NewDRAM(DefaultParams())
	var elapsed time.Duration
	env.Go("reader", func(p *des.Proc) {
		dram.Access(p, 4096)
		elapsed = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := dram.AccessTime(4096)
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if elapsed < 100*time.Nanosecond || elapsed > time.Microsecond {
		t.Fatalf("4KB DRAM access = %v, want ~100-400ns", elapsed)
	}
}

func TestSharedMemMoveCharges(t *testing.T) {
	env := des.NewEnv()
	sm := NewSharedMem(DefaultParams())
	var elapsed time.Duration
	env.Go("mover", func(p *des.Proc) {
		sm.Move(p, 4096)
		elapsed = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < time.Microsecond || elapsed > 10*time.Microsecond {
		t.Fatalf("4KB shared-memory move = %v, want ~1-2µs", elapsed)
	}
}

func TestDiskRandomVsSequential(t *testing.T) {
	env := des.NewEnv()
	disk := NewDisk(env, "sda", DefaultParams())
	var randomTime, seqTime time.Duration
	env.Go("io", func(p *des.Proc) {
		start := p.Now()
		disk.Transfer(p, 0, 4096) // first access: random seek
		randomTime = p.Now() - start
		start = p.Now()
		disk.Transfer(p, 4096, 4096) // continues previous: sequential
		seqTime = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if randomTime < 4*time.Millisecond {
		t.Fatalf("random access = %v, want >= 4ms seek", randomTime)
	}
	if seqTime >= randomTime/2 {
		t.Fatalf("sequential %v not much cheaper than random %v", seqTime, randomTime)
	}
}

func TestDiskHeadSerializes(t *testing.T) {
	env := des.NewEnv()
	disk := NewDisk(env, "sda", DefaultParams())
	var finishes []time.Duration
	for i := 0; i < 3; i++ {
		i := i
		env.Go("io", func(p *des.Proc) {
			disk.Transfer(p, int64(i)*1e6, 4096) // far-apart offsets: all random
			finishes = append(finishes, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Three random 4KB I/Os on one head: each waits for the previous.
	if finishes[2] < 12*time.Millisecond {
		t.Fatalf("third I/O finished at %v, want >= 3 seeks (12ms)", finishes[2])
	}
	if finishes[0] >= finishes[1] || finishes[1] >= finishes[2] {
		t.Fatalf("finishes not serialized: %v", finishes)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	env := des.NewEnv()
	dram := NewDRAM(DefaultParams())
	env.Go("z", func(p *des.Proc) {
		dram.Access(p, 0)
		if p.Now() != dram.AccessTime(0) {
			t.Errorf("zero-byte access mismatch")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
