package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveAboveTopBound(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(250 * time.Second) // well above the ~110s top bound
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Min() != 250*time.Second || h.Max() != 250*time.Second {
		t.Fatalf("Min/Max = %v/%v, want 250s/250s", h.Min(), h.Max())
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 250*time.Second {
			t.Fatalf("Quantile(%v) = %v, want 250s (overflow bucket reports max)", q, got)
		}
	}
}

func TestHistogramObserveZero(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("Count/Sum = %d/%v, want 1/0", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("Min/Max = %v/%v, want 0/0", h.Min(), h.Max())
	}
	// The first bucket's upper bound is 100ns; a raw bound would overstate an
	// all-zero population, so the estimate must clamp to the observed max.
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile(0.5) = %v, want 0 (clamped to max)", got)
	}
}

func TestHistogramObserveNegativeClampsToZero(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-5 * time.Millisecond)
	h.Observe(-time.Nanosecond)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != 0 {
		t.Fatalf("Sum = %v, want 0 (negatives clamp, never subtract)", h.Sum())
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("Min/Max = %v/%v, want 0/0", h.Min(), h.Max())
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("Quantile(0.99) = %v, want 0", got)
	}
}

func TestHistogramMixedExtremes(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-time.Second)      // clamps to 0
	h.Observe(50 * time.Nanosecond)
	h.Observe(300 * time.Second) // overflow
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0", h.Min())
	}
	if h.Max() != 300*time.Second {
		t.Fatalf("Max = %v, want 300s", h.Max())
	}
	if got := h.Quantile(1); got != 300*time.Second {
		t.Fatalf("Quantile(1) = %v, want 300s", got)
	}
	// Two of three observations sit in the first bucket: its 100ns bound is a
	// valid upper estimate for the low quantiles.
	if got := h.Quantile(0.5); got != 100*time.Nanosecond {
		t.Fatalf("Quantile(0.5) = %v, want 100ns", got)
	}
}

func TestHistogramSnapshotConsistency(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(time.Millisecond)
	h.Observe(400 * time.Second)
	s := h.Snapshot()
	if s.Count != 2 || s.Max != 400*time.Second {
		t.Fatalf("snapshot Count/Max = %d/%v, want 2/400s", s.Count, s.Max)
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("snapshot has %d counts for %d bounds, want bounds+1", len(s.Counts), len(s.Bounds))
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
}

func TestTreeRegistryAndAttach(t *testing.T) {
	tree := NewTree()
	tree.Registry("node/swap").Counter("faults").Inc()

	// Attaching a free-floating registry folds it into the tree namespace.
	free := NewRegistry("tcpnet/node-7")
	free.Counter("rpcs").Add(3)
	tree.Attach("node/transport", free)
	if free.Name() != "node/transport" {
		t.Fatalf("attached registry name = %q, want node/transport", free.Name())
	}
	if tree.Registry("node/transport") != free {
		t.Fatal("Registry after Attach did not return the attached instance")
	}

	paths := tree.Paths()
	if len(paths) != 2 || paths[0] != "node/swap" || paths[1] != "node/transport" {
		t.Fatalf("Paths = %v", paths)
	}
	out := tree.String()
	for _, want := range []string{"[node/swap]", "[node/transport]", "faults", "rpcs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree String missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "tcpnet/node-7") {
		t.Fatalf("tree String still shows free-floating name:\n%s", out)
	}
}

func TestTreeWritePrometheus(t *testing.T) {
	tree := NewTree()
	reg := tree.Registry("node/swap")
	reg.Counter("faults").Add(7)
	reg.Gauge("resident_pages").Set(42)
	reg.Histogram("fault_latency").Observe(3 * time.Microsecond)
	tree.Registry("node/replication") // empty registry: no output, no error

	var b strings.Builder
	if err := tree.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE godm_node_swap_faults counter",
		"godm_node_swap_faults 7",
		"# TYPE godm_node_swap_resident_pages gauge",
		"godm_node_swap_resident_pages 42",
		"# TYPE godm_node_swap_fault_latency histogram",
		"godm_node_swap_fault_latency_bucket{le=\"+Inf\"} 1",
		"godm_node_swap_fault_latency_count 1",
		"godm_node_swap_fault_latency_sum 3e-06",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the 3µs observation is inside the 3.2µs
	// bound (100ns * 2^5), so every bucket from there on reports 1.
	if !strings.Contains(out, "godm_node_swap_fault_latency_bucket{le=\"3.2e-06\"} 1") {
		t.Fatalf("missing cumulative 3.2e-06 bucket:\n%s", out)
	}
	if !strings.Contains(out, "godm_node_swap_fault_latency_bucket{le=\"1.6e-06\"} 0") {
		t.Fatalf("missing empty 1.6e-06 bucket:\n%s", out)
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestZeroCountHistogramStillExported(t *testing.T) {
	tree := NewTree()
	tree.Registry("node/swap").Histogram("fault_latency") // declared, never observed
	var b strings.Builder
	if err := tree.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "godm_node_swap_fault_latency_count 0") {
		t.Fatalf("zero-count histogram not exported:\n%s", out)
	}
	if !strings.Contains(out, "godm_node_swap_fault_latency_bucket{le=\"+Inf\"} 0") {
		t.Fatalf("zero-count histogram missing +Inf bucket:\n%s", out)
	}
}
