// Per-op-family latency objectives (SLOs) with tail attribution: every
// observation lands in the family's histogram and in a good/bad counter pair
// depending on whether it met the family's objective, so "what fraction of
// gets blew the SLO" is a counter ratio, not a histogram estimate. Observe
// reports whether the op was slow; callers use that verdict to mark the
// offending span for the flight recorder.
package metrics

import (
	"sort"
	"time"
)

// Objectives maps op-family names ("get", "put") to their latency objective.
type Objectives map[string]time.Duration

// DefaultObjectives derives per-family objectives as multiples of the
// fabric's round-trip time: a remote get is one RTT plus slack, a replicated
// put pays an alloc round trip then a fan-out write per replica.
func DefaultObjectives(rtt time.Duration) Objectives {
	if rtt <= 0 {
		rtt = time.Millisecond
	}
	return Objectives{
		"get": 4 * rtt,
		"put": 8 * rtt,
	}
}

// SLO is one op family's objective with its attribution instruments:
// op_<fam>_latency histogram beside op_<fam>_good / op_<fam>_bad counters.
type SLO struct {
	Objective time.Duration
	hist      *Histogram
	good      *Counter
	bad       *Counter
}

// Observe records one op latency and reports whether it exceeded the
// objective (a "slow op" in flight-recorder terms). A zero objective never
// marks ops slow — the family is then histogram-only.
func (s *SLO) Observe(d time.Duration) bool {
	s.hist.Observe(d)
	slow := s.Objective > 0 && d > s.Objective
	if slow {
		s.bad.Inc()
	} else {
		s.good.Inc()
	}
	return slow
}

// Histogram exposes the family's latency histogram.
func (s *SLO) Histogram() *Histogram { return s.hist }

// SLOSet holds one SLO per op family, instrumented into a shared registry.
// The set is immutable after construction, so Observe takes no lock.
type SLOSet struct {
	slos map[string]*SLO
}

// NewSLOSet registers the instruments for every family in obj on reg and
// returns the set.
func NewSLOSet(reg *Registry, obj Objectives) *SLOSet {
	set := &SLOSet{slos: make(map[string]*SLO, len(obj))}
	for fam, o := range obj {
		set.slos[fam] = &SLO{
			Objective: o,
			hist:      reg.Histogram("op_" + fam + "_latency"),
			good:      reg.Counter("op_" + fam + "_good"),
			bad:       reg.Counter("op_" + fam + "_bad"),
		}
	}
	return set
}

// Observe records one op of the named family and reports whether it was
// slow. Unknown families are dropped (false): instrumentation never panics
// the data path.
func (ss *SLOSet) Observe(fam string, d time.Duration) bool {
	if ss == nil {
		return false
	}
	s, ok := ss.slos[fam]
	if !ok {
		return false
	}
	return s.Observe(d)
}

// Get returns the named family's SLO.
func (ss *SLOSet) Get(fam string) (*SLO, bool) {
	if ss == nil {
		return nil, false
	}
	s, ok := ss.slos[fam]
	return s, ok
}

// Families lists the instrumented op families, sorted.
func (ss *SLOSet) Families() []string {
	if ss == nil {
		return nil
	}
	fams := make([]string, 0, len(ss.slos))
	for fam := range ss.slos {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	return fams
}
