// Mergeable metric digests: the wire-compact, fold-friendly form of a node's
// instrumentation that the cluster observability plane ships up the heartbeat
// tree (members → group leader → root). A Digest is a flat map of
// family-named counters, gauges, and histogram snapshots; digests from
// different nodes merge by name, so the names must be node-neutral ("core/
// remote_puts", not "core/node-3/remote_puts"). The ClusterStore at each
// node keeps the freshest digest per contributor with a staleness age in
// heartbeat rounds; the root's store covers the whole cluster after one
// member→leader round plus one leader→root round.
//
// Everything here is deterministic: encoding walks names in sorted order,
// ages advance only on explicit Tick calls, and no wall clock is read — DES
// scale sims assert byte-identical aggregates across runs.
package metrics

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Digest is a mergeable point-in-time copy of one node's instrumentation,
// keyed by node-neutral metric names (conventionally "<family>/<metric>").
type Digest struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistogramSnapshot
}

// NewDigest returns an empty digest.
func NewDigest() Digest {
	return Digest{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistogramSnapshot{},
	}
}

// Merge folds other into d: counters and gauges sum by name (gauges sum
// because the cluster-level reading of "free bytes per node" is total free
// bytes), histograms merge bucket-wise. A histogram bound mismatch aborts
// with ErrBoundsMismatch; d may then hold a partial merge and should be
// discarded.
func (d *Digest) Merge(other Digest) error {
	if d.Counters == nil {
		d.Counters = map[string]int64{}
	}
	if d.Gauges == nil {
		d.Gauges = map[string]int64{}
	}
	if d.Hists == nil {
		d.Hists = map[string]HistogramSnapshot{}
	}
	for k, v := range other.Counters {
		d.Counters[k] += v
	}
	for k, v := range other.Gauges {
		d.Gauges[k] += v
	}
	for k, hs := range other.Hists {
		merged := d.Hists[k]
		if err := merged.Merge(hs); err != nil {
			return fmt.Errorf("%w: histogram %q", err, k)
		}
		d.Hists[k] = merged
	}
	return nil
}

// digestInto snapshots the registry's instruments into d under prefix
// ("<prefix>/<metric>"). Histograms are snapshotted outside the registry
// lock, same discipline as WritePrometheus.
func (r *Registry) digestInto(d Digest, prefix string) {
	r.mu.Lock()
	for k, c := range r.counters {
		d.Counters[prefix+"/"+k] = c.Value()
	}
	for k, g := range r.gauges {
		d.Gauges[prefix+"/"+k] = g.Value()
	}
	histRefs := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		histRefs[k] = h
	}
	r.mu.Unlock()
	for k, h := range histRefs {
		d.Hists[prefix+"/"+k] = h.Snapshot()
	}
}

// DigestRegistries builds a digest from named registries. The map keys are
// the node-neutral family prefixes under which each registry's metrics
// appear ("core", "replication"), NOT the registries' own (often per-node)
// labels — digests from different nodes must merge by name.
func DigestRegistries(regs map[string]*Registry) Digest {
	d := NewDigest()
	for prefix, r := range regs {
		if r != nil {
			r.digestInto(d, prefix)
		}
	}
	return d
}

// NodeDigest is one contributor's digest as held in a ClusterStore: the
// origin node, the origin's own monotonic sequence number (so stale or
// duplicate relays never regress a fresher copy), and the holder's staleness
// age in heartbeat rounds since the digest was last refreshed.
type NodeDigest struct {
	Node int64
	Seq  uint64
	Age  uint32
	D    Digest
}

// ClusterStore is the per-node fold point of the observability plane: the
// freshest digest heard from each contributor. Members hold their own digest
// plus whatever their leader beats back; a group leader holds its members;
// the root holds everyone.
type ClusterStore struct {
	mu     sync.Mutex
	self   int64
	byNode map[int64]*NodeDigest
}

// NewClusterStore returns an empty store owned by node self.
func NewClusterStore(self int64) *ClusterStore {
	return &ClusterStore{self: self, byNode: map[int64]*NodeDigest{}}
}

// Self reports the owning node.
func (s *ClusterStore) Self() int64 { return s.self }

// Update adopts nd if it is strictly newer (higher Seq) than the stored copy
// for its origin, reporting whether it was adopted. Duplicate and
// out-of-order relays are dropped, so relay paths need no dedup of their own.
func (s *ClusterStore) Update(nd NodeDigest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.byNode[nd.Node]; ok && cur.Seq >= nd.Seq {
		return false
	}
	cp := nd
	s.byNode[nd.Node] = &cp
	return true
}

// Tick advances every non-self contributor's staleness age by one heartbeat
// round. The owner calls it once per round; a contributor whose digest keeps
// refreshing stays near age 0, a silent one ages visibly.
func (s *ClusterStore) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, nd := range s.byNode {
		if id != s.self {
			nd.Age++
		}
	}
}

// Drop forgets a contributor (a decommissioned node must leave the
// aggregate, not linger at ever-growing age).
func (s *ClusterStore) Drop(node int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byNode, node)
}

// Len reports how many contributors the store tracks.
func (s *ClusterStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byNode)
}

// Snapshot returns the stored digests sorted by node ID. The digests are
// shared references: callers render or merge them, never mutate.
func (s *ClusterStore) Snapshot() []NodeDigest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeDigest, 0, len(s.byNode))
	for _, nd := range s.byNode {
		out = append(out, *nd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Get returns the stored digest for node, if any.
func (s *ClusterStore) Get(node int64) (NodeDigest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.byNode[node]
	if !ok {
		return NodeDigest{}, false
	}
	return *nd, true
}

// Aggregate merges every stored digest into one cluster-level digest and
// reports the contributor count.
func Aggregate(set []NodeDigest) (Digest, error) {
	agg := NewDigest()
	for _, nd := range set {
		if err := agg.Merge(nd.D); err != nil {
			return Digest{}, fmt.Errorf("metrics: aggregate node %d: %w", nd.Node, err)
		}
	}
	return agg, nil
}

// ---- wire encoding ----
//
// Compact fixed-width big-endian framing in the style of the cluster map
// sync codec. Histogram bucket counts ship sparsely (index, count) pairs —
// a latency histogram has ~31 buckets of which a handful are occupied — and
// the standard latency bounds ship as a one-byte schema tag instead of 31
// explicit bounds.

// ErrBadDigest is returned when a digest wire payload is malformed.
var ErrBadDigest = errors.New("metrics: malformed digest payload")

// maxDigestEntries bounds names per section and nodes per set against
// corrupt length prefixes.
const maxDigestEntries = 1 << 12

// Histogram bound schemas on the wire.
const (
	histSchemaDefault  = 0 // the NewLatencyHistogram bounds, omitted from the wire
	histSchemaExplicit = 1 // bounds follow explicitly
)

// defaultLatencyBounds is the schema shared by every NewLatencyHistogram.
var defaultLatencyBounds = NewLatencyHistogram().bounds

func isDefaultBounds(bounds []time.Duration) bool {
	if len(bounds) != len(defaultLatencyBounds) {
		return false
	}
	for i, b := range bounds {
		if defaultLatencyBounds[i] != b {
			return false
		}
	}
	return true
}

func appendName(b []byte, name string) []byte {
	if len(name) > 255 {
		name = name[:255]
	}
	b = append(b, byte(len(name)))
	return append(b, name...)
}

func decodeName(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, ErrBadDigest
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", nil, ErrBadDigest
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}

func appendNamedInts(b []byte, m map[string]int64) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(m)))
	for _, k := range sortedKeys(m) {
		b = appendName(b, k)
		b = binary.BigEndian.AppendUint64(b, uint64(m[k]))
	}
	return b
}

func decodeNamedInts(b []byte) (map[string]int64, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrBadDigest
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > maxDigestEntries {
		return nil, nil, ErrBadDigest
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		var (
			k   string
			err error
		)
		if k, b, err = decodeName(b); err != nil {
			return nil, nil, err
		}
		if len(b) < 8 {
			return nil, nil, ErrBadDigest
		}
		m[k] = int64(binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	return m, b, nil
}

// appendHistogram encodes one snapshot: [schema][bounds?][count][sum][min]
// [max][u16 nonzero]{[u16 idx][i64 cnt]}…
func appendHistogram(b []byte, s HistogramSnapshot) []byte {
	if isDefaultBounds(s.Bounds) {
		b = append(b, histSchemaDefault)
	} else {
		b = append(b, histSchemaExplicit)
		b = binary.BigEndian.AppendUint16(b, uint16(len(s.Bounds)))
		for _, bound := range s.Bounds {
			b = binary.BigEndian.AppendUint64(b, uint64(bound))
		}
	}
	b = binary.BigEndian.AppendUint64(b, uint64(s.Count))
	b = binary.BigEndian.AppendUint64(b, uint64(s.Sum))
	b = binary.BigEndian.AppendUint64(b, uint64(s.Min))
	b = binary.BigEndian.AppendUint64(b, uint64(s.Max))
	nonzero := 0
	for _, c := range s.Counts {
		if c != 0 {
			nonzero++
		}
	}
	b = binary.BigEndian.AppendUint16(b, uint16(nonzero))
	for i, c := range s.Counts {
		if c != 0 {
			b = binary.BigEndian.AppendUint16(b, uint16(i))
			b = binary.BigEndian.AppendUint64(b, uint64(c))
		}
	}
	return b
}

func decodeHistogram(b []byte) (HistogramSnapshot, []byte, error) {
	var s HistogramSnapshot
	if len(b) < 1 {
		return s, nil, ErrBadDigest
	}
	schema := b[0]
	b = b[1:]
	switch schema {
	case histSchemaDefault:
		s.Bounds = append([]time.Duration(nil), defaultLatencyBounds...)
	case histSchemaExplicit:
		if len(b) < 2 {
			return s, nil, ErrBadDigest
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if n > maxDigestEntries || len(b) < 8*n {
			return s, nil, ErrBadDigest
		}
		s.Bounds = make([]time.Duration, n)
		for i := range s.Bounds {
			s.Bounds[i] = time.Duration(binary.BigEndian.Uint64(b))
			b = b[8:]
		}
	default:
		return s, nil, ErrBadDigest
	}
	if len(b) < 8*4+2 {
		return s, nil, ErrBadDigest
	}
	s.Count = int64(binary.BigEndian.Uint64(b))
	s.Sum = time.Duration(binary.BigEndian.Uint64(b[8:]))
	s.Min = time.Duration(binary.BigEndian.Uint64(b[16:]))
	s.Max = time.Duration(binary.BigEndian.Uint64(b[24:]))
	nonzero := int(binary.BigEndian.Uint16(b[32:]))
	b = b[34:]
	s.Counts = make([]int64, len(s.Bounds)+1)
	if nonzero > len(s.Counts) || len(b) < 10*nonzero {
		return s, nil, ErrBadDigest
	}
	for i := 0; i < nonzero; i++ {
		idx := int(binary.BigEndian.Uint16(b))
		if idx >= len(s.Counts) {
			return s, nil, ErrBadDigest
		}
		s.Counts[idx] = int64(binary.BigEndian.Uint64(b[2:]))
		b = b[10:]
	}
	return s, b, nil
}

// AppendDigest appends d's wire form to b.
func AppendDigest(b []byte, d Digest) []byte {
	b = appendNamedInts(b, d.Counters)
	b = appendNamedInts(b, d.Gauges)
	b = binary.BigEndian.AppendUint16(b, uint16(len(d.Hists)))
	for _, k := range sortedKeys(d.Hists) {
		b = appendName(b, k)
		b = appendHistogram(b, d.Hists[k])
	}
	return b
}

// DecodeDigest decodes one digest, returning the remaining bytes.
func DecodeDigest(b []byte) (Digest, []byte, error) {
	var (
		d   Digest
		err error
	)
	if d.Counters, b, err = decodeNamedInts(b); err != nil {
		return d, nil, err
	}
	if d.Gauges, b, err = decodeNamedInts(b); err != nil {
		return d, nil, err
	}
	if len(b) < 2 {
		return d, nil, ErrBadDigest
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > maxDigestEntries {
		return d, nil, ErrBadDigest
	}
	d.Hists = make(map[string]HistogramSnapshot, n)
	for i := 0; i < n; i++ {
		var k string
		if k, b, err = decodeName(b); err != nil {
			return d, nil, err
		}
		var hs HistogramSnapshot
		if hs, b, err = decodeHistogram(b); err != nil {
			return d, nil, err
		}
		d.Hists[k] = hs
	}
	return d, b, nil
}

// AppendNodeDigest appends one contributor record: origin, sequence,
// staleness age, then the digest.
func AppendNodeDigest(b []byte, nd NodeDigest) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(nd.Node))
	b = binary.BigEndian.AppendUint64(b, nd.Seq)
	b = binary.BigEndian.AppendUint32(b, nd.Age)
	return AppendDigest(b, nd.D)
}

// DecodeNodeDigest decodes one contributor record, returning the remainder.
func DecodeNodeDigest(b []byte) (NodeDigest, []byte, error) {
	var nd NodeDigest
	if len(b) < 20 {
		return nd, nil, ErrBadDigest
	}
	nd.Node = int64(binary.BigEndian.Uint64(b))
	nd.Seq = binary.BigEndian.Uint64(b[8:])
	nd.Age = binary.BigEndian.Uint32(b[16:])
	var err error
	nd.D, b, err = DecodeDigest(b[20:])
	if err != nil {
		return nd, nil, err
	}
	return nd, b, nil
}

// AppendDigestSet appends a contributor set ([u16 n] then records).
func AppendDigestSet(b []byte, set []NodeDigest) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(set)))
	for _, nd := range set {
		b = AppendNodeDigest(b, nd)
	}
	return b
}

// DecodeDigestSet decodes a contributor set, returning the remainder.
func DecodeDigestSet(b []byte) ([]NodeDigest, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrBadDigest
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > maxDigestEntries {
		return nil, nil, ErrBadDigest
	}
	set := make([]NodeDigest, 0, n)
	for i := 0; i < n; i++ {
		nd, rest, err := DecodeNodeDigest(b)
		if err != nil {
			return nil, nil, err
		}
		set = append(set, nd)
		b = rest
	}
	return set, b, nil
}

// ---- rendering ----

// opFamily extracts the op family from a histogram name of the form
// "<prefix>/op_<family>_latency" (the SLOSet naming convention).
func opFamily(name string) (string, bool) {
	slash := strings.LastIndexByte(name, '/')
	base := name[slash+1:]
	if !strings.HasPrefix(base, "op_") || !strings.HasSuffix(base, "_latency") {
		return "", false
	}
	fam := base[len("op_") : len(base)-len("_latency")]
	if fam == "" {
		return "", false
	}
	return fam, true
}

// OpFamilyHistogram returns the snapshot of the op family's latency
// histogram (named "<prefix>/op_<fam>_latency" under any prefix).
func (d Digest) OpFamilyHistogram(fam string) (HistogramSnapshot, bool) {
	for name, hs := range d.Hists {
		if f, ok := opFamily(name); ok && f == fam {
			return hs, true
		}
	}
	return HistogramSnapshot{}, false
}

// OpFamilies lists the op families present in d, sorted.
func (d Digest) OpFamilies() []string {
	var fams []string
	for name := range d.Hists {
		if f, ok := opFamily(name); ok {
			fams = append(fams, f)
		}
	}
	sort.Strings(fams)
	return fams
}

// freeBytesGauge is the digest name of the free receive-pool gauge shown in
// the cluster view's FREE_MIB column.
const freeBytesGauge = "core/recv_free_bytes"

// RenderClusterView writes the deterministic text form of a contributor set:
// one row per node (staleness age, free receive-pool MiB, op count, per-op-
// family p50/p99/p999, SLO good/bad), an aggregate row, then the aggregate's
// raw counters — the machine-greppable section smoke tests sum against.
func RenderClusterView(w io.Writer, set []NodeDigest) error {
	agg, err := Aggregate(set)
	if err != nil {
		return err
	}
	fams := agg.OpFamilies()
	fmt.Fprintf(w, "cluster view: %d contributors\n", len(set))
	fmt.Fprintf(w, "%-6s %4s %9s %8s %7s %5s", "NODE", "AGE", "FREE_MIB", "OPS", "GOOD", "BAD")
	for _, fam := range fams {
		fmt.Fprintf(w, " %9s %9s %9s", fam+"_p50", fam+"_p99", fam+"_p999")
	}
	fmt.Fprintln(w)
	row := func(label, age string, d Digest) {
		fmt.Fprintf(w, "%-6s %4s %9.1f %8d %7d %5d",
			label, age,
			float64(d.Gauges[freeBytesGauge])/(1<<20),
			opCount(d), sumSuffix(d.Counters, "_good"), sumSuffix(d.Counters, "_bad"))
		for _, fam := range fams {
			hs, ok := d.OpFamilyHistogram(fam)
			if !ok || hs.Count == 0 {
				fmt.Fprintf(w, " %9s %9s %9s", "-", "-", "-")
				continue
			}
			fmt.Fprintf(w, " %9s %9s %9s",
				shortDur(hs.Quantile(0.5)), shortDur(hs.Quantile(0.99)), shortDur(hs.Quantile(0.999)))
		}
		fmt.Fprintln(w)
	}
	for _, nd := range set {
		row(fmt.Sprintf("%d", nd.Node), fmt.Sprintf("%d", nd.Age), nd.D)
	}
	row("AGG", "-", agg)
	renderTierBalance(w, set, agg)
	fmt.Fprintln(w, "\naggregate counters:")
	for _, k := range sortedKeys(agg.Counters) {
		fmt.Fprintf(w, "%s %d\n", k, agg.Counters[k])
	}
	return nil
}

// renderTierBalance prints the swap-tier occupancy section — one row per
// node with pages resident on each placement tier, plus the cluster
// aggregate and demotion/promotion totals. Contributors without tier gauges
// (no tiering swap engine) render nothing, so the section only appears when
// the ladder is in play.
func renderTierBalance(w io.Writer, set []NodeDigest, agg Digest) {
	tiers := tierNames(agg)
	if len(tiers) == 0 {
		return
	}
	fmt.Fprintln(w, "\ntier balance (pages):")
	fmt.Fprintf(w, "%-6s", "NODE")
	for _, t := range tiers {
		fmt.Fprintf(w, " %15s", t)
	}
	fmt.Fprintln(w)
	row := func(label string, d Digest) {
		fmt.Fprintf(w, "%-6s", label)
		for _, t := range tiers {
			fmt.Fprintf(w, " %15d", sumTierGauge(d, t))
		}
		fmt.Fprintln(w)
	}
	for _, nd := range set {
		if len(tierNames(nd.D)) == 0 {
			continue
		}
		row(fmt.Sprintf("%d", nd.Node), nd.D)
	}
	row("AGG", agg)
	fmt.Fprintf(w, "demotions %d  promotions %d\n",
		sumBase(agg.Counters, "tier_demotions"), sumBase(agg.Counters, "tier_promotions"))
}

// tierNames lists the tier labels present in a digest's occupancy gauges
// (named "<prefix>/tier_<name>_pages"), sorted.
func tierNames(d Digest) []string {
	seen := map[string]bool{}
	for name := range d.Gauges {
		base := name[strings.LastIndexByte(name, '/')+1:]
		if strings.HasPrefix(base, "tier_") && strings.HasSuffix(base, "_pages") {
			seen[base[len("tier_"):len(base)-len("_pages")]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// sumTierGauge sums one tier's occupancy gauge across every prefix in d.
func sumTierGauge(d Digest, tier string) int64 {
	var total int64
	for name, v := range d.Gauges {
		base := name[strings.LastIndexByte(name, '/')+1:]
		if base == "tier_"+tier+"_pages" {
			total += v
		}
	}
	return total
}

// sumBase sums counters whose base name (after any prefix) equals base.
func sumBase(counters map[string]int64, base string) int64 {
	var total int64
	for name, v := range counters {
		if name[strings.LastIndexByte(name, '/')+1:] == base {
			total += v
		}
	}
	return total
}

// opCount sums the op-family histogram counts — the "total instrumented ops"
// figure in the cluster view.
func opCount(d Digest) int64 {
	var total int64
	for name, hs := range d.Hists {
		if _, ok := opFamily(name); ok {
			total += hs.Count
		}
	}
	return total
}

// sumSuffix sums counters whose base name starts with "op_" and ends with
// suffix — the SLO good/bad totals.
func sumSuffix(counters map[string]int64, suffix string) int64 {
	var total int64
	for name, v := range counters {
		slash := strings.LastIndexByte(name, '/')
		base := name[slash+1:]
		if strings.HasPrefix(base, "op_") && strings.HasSuffix(base, suffix) {
			total += v
		}
	}
	return total
}

// shortDur renders a duration rounded to three significant units for
// fixed-width table cells.
func shortDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
