package metrics

import (
	"testing"
	"time"
)

func TestDefaultObjectives(t *testing.T) {
	obj := DefaultObjectives(2 * time.Millisecond)
	if obj["get"] != 8*time.Millisecond || obj["put"] != 16*time.Millisecond {
		t.Fatalf("objectives = %v, want get=8ms put=16ms", obj)
	}
	// Non-positive RTT falls back to 1ms.
	obj = DefaultObjectives(0)
	if obj["get"] != 4*time.Millisecond {
		t.Fatalf("zero-RTT get objective = %v, want 4ms", obj["get"])
	}
}

func TestSLOSetAttribution(t *testing.T) {
	reg := NewRegistry("core")
	ss := NewSLOSet(reg, Objectives{"get": 4 * time.Millisecond})
	if slow := ss.Observe("get", time.Millisecond); slow {
		t.Fatal("1ms against a 4ms objective marked slow")
	}
	if slow := ss.Observe("get", 4*time.Millisecond); slow {
		t.Fatal("exactly-at-objective marked slow (objective is inclusive)")
	}
	if slow := ss.Observe("get", 5*time.Millisecond); !slow {
		t.Fatal("5ms against a 4ms objective not marked slow")
	}
	slo, ok := ss.Get("get")
	if !ok {
		t.Fatal("get family missing")
	}
	if g := slo.good.Value(); g != 2 {
		t.Fatalf("good = %d, want 2", g)
	}
	if b := slo.bad.Value(); b != 1 {
		t.Fatalf("bad = %d, want 1", b)
	}
	if c := slo.Histogram().Count(); c != 3 {
		t.Fatalf("hist count = %d, want 3 (every op lands in the histogram)", c)
	}
	// The instruments follow the op_<fam>_* naming convention on the registry.
	if reg.Counter("op_get_good").Value() != 2 || reg.Counter("op_get_bad").Value() != 1 {
		t.Fatal("registry instruments not shared with the SLO set")
	}
}

func TestSLOSetUnknownFamilyAndNil(t *testing.T) {
	reg := NewRegistry("core")
	ss := NewSLOSet(reg, DefaultObjectives(time.Millisecond))
	if ss.Observe("scan", time.Hour) {
		t.Fatal("unknown family marked slow")
	}
	var nilSet *SLOSet
	if nilSet.Observe("get", time.Hour) {
		t.Fatal("nil set marked slow")
	}
	if fams := ss.Families(); len(fams) != 2 || fams[0] != "get" || fams[1] != "put" {
		t.Fatalf("Families = %v, want [get put]", fams)
	}
}

func TestSLOZeroObjectiveNeverSlow(t *testing.T) {
	reg := NewRegistry("core")
	ss := NewSLOSet(reg, Objectives{"scan": 0})
	if ss.Observe("scan", time.Hour) {
		t.Fatal("zero objective marked slow")
	}
	slo, _ := ss.Get("scan")
	if slo.good.Value() != 1 {
		t.Fatalf("good = %d, want 1", slo.good.Value())
	}
}
