package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative Add")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Sum() != 6*time.Microsecond {
		t.Fatalf("Sum = %v, want 6µs", h.Sum())
	}
	if h.Mean() != 2*time.Microsecond {
		t.Fatalf("Mean = %v, want 2µs", h.Mean())
	}
	if h.Min() != time.Microsecond {
		t.Fatalf("Min = %v, want 1µs", h.Min())
	}
	if h.Max() != 3*time.Microsecond {
		t.Fatalf("Max = %v, want 3µs", h.Max())
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// Linear interpolation within the (409.6µs, 819.2µs] bucket puts p50 of a
	// uniform 1..1000µs population near the true 500µs, not at the bucket's
	// 819.2µs upper bound.
	if p50 < 490*time.Microsecond || p50 > 520*time.Microsecond {
		t.Fatalf("p50 = %v, want within [490µs, 520µs] (interpolated)", p50)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewLatencyHistogram()
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramQuantilePanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q=0")
		}
	}()
	NewLatencyHistogram().Quantile(0)
}

func TestHistogramExtremeTail(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(500 * time.Second) // beyond last bound -> overflow bucket
	if got := h.Quantile(1); got != 500*time.Second {
		t.Fatalf("Quantile(1) = %v, want max 500s", got)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Record(0, 100)
	ts.Record(500*time.Millisecond, 100)
	ts.Record(2*time.Second, 50)
	pts := ts.Series()
	if len(pts) != 3 {
		t.Fatalf("len(pts) = %d, want 3 (gap filled)", len(pts))
	}
	if pts[0].Rate != 200 {
		t.Fatalf("window 0 rate = %v, want 200", pts[0].Rate)
	}
	if pts[1].Rate != 0 {
		t.Fatalf("window 1 rate = %v, want 0 (gap)", pts[1].Rate)
	}
	if pts[2].Rate != 50 {
		t.Fatalf("window 2 rate = %v, want 50", pts[2].Rate)
	}
}

func TestTimeSeriesSubSecondWindowScalesToPerSecond(t *testing.T) {
	ts := NewTimeSeries(100 * time.Millisecond)
	ts.Record(0, 10)
	pts := ts.Series()
	if pts[0].Rate != 100 {
		t.Fatalf("rate = %v, want 100/s (10 events in 100ms)", pts[0].Rate)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if pts := ts.Series(); pts != nil {
		t.Fatalf("empty series = %v, want nil", pts)
	}
}

func TestRegistryCreatesAndReuses(t *testing.T) {
	r := NewRegistry("node0")
	c1 := r.Counter("faults")
	c1.Inc()
	c2 := r.Counter("faults")
	if c2.Value() != 1 {
		t.Fatal("Counter did not return the same instance")
	}
	r.Gauge("free_pages").Set(42)
	r.Histogram("swap_latency").Observe(time.Millisecond)
	out := r.String()
	for _, want := range []string{"node0", "faults", "free_pages", "swap_latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 800 {
		t.Fatalf("c = %d, want 800", got)
	}
}
