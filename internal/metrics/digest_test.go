package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func sampleDigest(scale int64) Digest {
	d := NewDigest()
	d.Counters["core/remote_allocs"] = 3 * scale
	d.Counters["core/op_get_good"] = 9 * scale
	d.Counters["core/op_get_bad"] = scale
	d.Gauges["core/recv_free_bytes"] = 64 << 20
	h := NewLatencyHistogram()
	for i := int64(0); i < 10*scale; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	d.Hists["core/op_get_latency"] = h.Snapshot()
	return d
}

func TestDigestWireRoundTrip(t *testing.T) {
	d := sampleDigest(2)
	b := AppendDigest(nil, d)
	got, rest, err := DecodeDigest(b)
	if err != nil {
		t.Fatalf("DecodeDigest: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if len(got.Counters) != len(d.Counters) || len(got.Gauges) != len(d.Gauges) || len(got.Hists) != len(d.Hists) {
		t.Fatalf("section sizes changed: %d/%d/%d", len(got.Counters), len(got.Gauges), len(got.Hists))
	}
	for k, v := range d.Counters {
		if got.Counters[k] != v {
			t.Fatalf("counter %q = %d, want %d", k, got.Counters[k], v)
		}
	}
	hs, want := got.Hists["core/op_get_latency"], d.Hists["core/op_get_latency"]
	if hs.Count != want.Count || hs.Sum != want.Sum || hs.Min != want.Min || hs.Max != want.Max {
		t.Fatalf("hist summary mismatch: %+v vs %+v", hs, want)
	}
	for i, c := range want.Counts {
		if hs.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d", i, hs.Counts[i], c)
		}
	}
	if !isDefaultBounds(hs.Bounds) {
		t.Fatal("decoded bounds are not the default latency schema")
	}
	// The default-bounds schema ships one tag byte, not 31 explicit bounds.
	withDefault := len(appendHistogram(nil, want))
	explicit := want
	explicit.Bounds = append([]time.Duration(nil), want.Bounds...)
	explicit.Bounds[0]++ // any deviation forces the explicit schema
	if grew := len(appendHistogram(nil, explicit)) - withDefault; grew < 8*len(want.Bounds)-16 {
		t.Fatalf("explicit schema only %d bytes larger; default schema is not compact", grew)
	}
}

func TestDigestExplicitBoundsSchema(t *testing.T) {
	custom := HistogramSnapshot{
		Bounds: []time.Duration{time.Millisecond, 10 * time.Millisecond},
		Counts: []int64{2, 0, 1},
		Count:  3, Sum: 30 * time.Millisecond, Min: time.Millisecond, Max: 20 * time.Millisecond,
	}
	d := NewDigest()
	d.Hists["x/custom"] = custom
	got, rest, err := DecodeDigest(AppendDigest(nil, d))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	hs := got.Hists["x/custom"]
	if len(hs.Bounds) != 2 || hs.Bounds[1] != 10*time.Millisecond {
		t.Fatalf("explicit bounds lost: %v", hs.Bounds)
	}
	if hs.Counts[2] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", hs.Counts[2])
	}
}

func TestDigestSetRoundTripAndOrdering(t *testing.T) {
	set := []NodeDigest{
		{Node: 2, Seq: 7, Age: 1, D: sampleDigest(1)},
		{Node: 5, Seq: 3, Age: 0, D: sampleDigest(3)},
	}
	b := AppendDigestSet(nil, set)
	// Deterministic encoding: same input, same bytes.
	b2 := AppendDigestSet(nil, set)
	if string(b) != string(b2) {
		t.Fatal("digest-set encoding is not deterministic")
	}
	got, rest, err := DecodeDigestSet(b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	if len(got) != 2 || got[0].Node != 2 || got[0].Seq != 7 || got[0].Age != 1 || got[1].Node != 5 {
		t.Fatalf("records mismatch: %+v", got)
	}
	if got[1].D.Counters["core/remote_allocs"] != 9 {
		t.Fatalf("relayed counter = %d, want 9", got[1].D.Counters["core/remote_allocs"])
	}
}

func TestDecodeDigestRejectsTruncation(t *testing.T) {
	b := AppendDigestSet(nil, []NodeDigest{{Node: 1, Seq: 1, D: sampleDigest(1)}})
	for _, n := range []int{0, 1, 5, len(b) / 2, len(b) - 1} {
		if _, _, err := DecodeDigestSet(b[:n]); !errors.Is(err, ErrBadDigest) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadDigest", n, err)
		}
	}
}

func TestDigestMergeSums(t *testing.T) {
	a, b := sampleDigest(1), sampleDigest(2)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Counters["core/remote_allocs"] != 9 {
		t.Fatalf("merged counter = %d, want 9", a.Counters["core/remote_allocs"])
	}
	if a.Gauges["core/recv_free_bytes"] != 128<<20 {
		t.Fatalf("merged gauge = %d, want 128MiB (gauges sum)", a.Gauges["core/recv_free_bytes"])
	}
	hs := a.Hists["core/op_get_latency"]
	if hs.Count != 30 {
		t.Fatalf("merged hist count = %d, want 30", hs.Count)
	}
	if hs.Max != 20*time.Microsecond || hs.Min != time.Microsecond {
		t.Fatalf("merged min/max = %v/%v, want 1µs/20µs", hs.Min, hs.Max)
	}
}

// Satellite: Merge under bound mismatch must error, not silently misbucket.
func TestHistogramSnapshotMergeBoundMismatch(t *testing.T) {
	a := HistogramSnapshot{
		Bounds: []time.Duration{time.Millisecond},
		Counts: []int64{1, 0}, Count: 1,
	}
	b := HistogramSnapshot{
		Bounds: []time.Duration{2 * time.Millisecond},
		Counts: []int64{1, 0}, Count: 1,
	}
	if err := a.Merge(b); !errors.Is(err, ErrBoundsMismatch) {
		t.Fatalf("bound-value mismatch: err = %v, want ErrBoundsMismatch", err)
	}
	c := HistogramSnapshot{
		Bounds: []time.Duration{time.Millisecond, 2 * time.Millisecond},
		Counts: []int64{1, 0, 0}, Count: 1,
	}
	if err := a.Merge(c); !errors.Is(err, ErrBoundsMismatch) {
		t.Fatalf("bound-count mismatch: err = %v, want ErrBoundsMismatch", err)
	}
	// The counts must be untouched after a rejected merge.
	if a.Counts[0] != 1 || a.Count != 1 {
		t.Fatalf("rejected merge mutated target: %+v", a)
	}
	// Digest.Merge surfaces the same sentinel.
	da, db := NewDigest(), NewDigest()
	da.Hists["h"], db.Hists["h"] = a, b
	if err := da.Merge(db); !errors.Is(err, ErrBoundsMismatch) {
		t.Fatalf("digest merge: err = %v, want ErrBoundsMismatch", err)
	}
}

func TestHistogramSnapshotMergeAdoptsIntoEmpty(t *testing.T) {
	var empty HistogramSnapshot
	src := sampleDigest(1).Hists["core/op_get_latency"]
	if err := empty.Merge(src); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if empty.Count != src.Count || empty.Min != src.Min || empty.Max != src.Max {
		t.Fatalf("adopt lost summary: %+v", empty)
	}
	// Adoption copies, never aliases: mutating the adopted copy must not
	// write through to the source.
	empty.Counts[0] += 100
	if src.Counts[0] == empty.Counts[0] {
		t.Fatal("adopted counts alias the source")
	}
}

func TestClusterStoreSemantics(t *testing.T) {
	s := NewClusterStore(1)
	if !s.Update(NodeDigest{Node: 2, Seq: 5, D: sampleDigest(1)}) {
		t.Fatal("fresh digest rejected")
	}
	if s.Update(NodeDigest{Node: 2, Seq: 5, D: sampleDigest(2)}) {
		t.Fatal("duplicate Seq adopted")
	}
	if s.Update(NodeDigest{Node: 2, Seq: 4, D: sampleDigest(2)}) {
		t.Fatal("stale Seq adopted")
	}
	if !s.Update(NodeDigest{Node: 2, Seq: 6, D: sampleDigest(2)}) {
		t.Fatal("newer Seq rejected")
	}
	s.Update(NodeDigest{Node: 1, Seq: 1, D: sampleDigest(1)})
	s.Tick()
	s.Tick()
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Node != 1 || snap[1].Node != 2 {
		t.Fatalf("snapshot not sorted by node: %+v", snap)
	}
	if snap[0].Age != 0 {
		t.Fatalf("self aged: %d", snap[0].Age)
	}
	if snap[1].Age != 2 {
		t.Fatalf("peer age = %d, want 2", snap[1].Age)
	}
	s.Drop(2)
	if s.Len() != 1 {
		t.Fatalf("Len after Drop = %d, want 1", s.Len())
	}
	if _, ok := s.Get(2); ok {
		t.Fatal("dropped node still present")
	}
}

func TestDigestRegistriesUsesNeutralPrefixes(t *testing.T) {
	reg := NewRegistry("core/node-7") // per-node label must NOT leak
	reg.Counter("remote_allocs").Add(4)
	reg.Gauge("recv_free_bytes").Set(42)
	reg.Histogram("op_put_latency").Observe(3 * time.Millisecond)
	d := DigestRegistries(map[string]*Registry{"core": reg})
	if d.Counters["core/remote_allocs"] != 4 {
		t.Fatalf("counter keys = %v, want core/remote_allocs", d.Counters)
	}
	if _, ok := d.Hists["core/op_put_latency"]; !ok {
		t.Fatalf("hist keys = %v, want core/op_put_latency", d.Hists)
	}
	for k := range d.Counters {
		if strings.Contains(k, "node-7") {
			t.Fatalf("per-node label leaked into digest key %q", k)
		}
	}
}

func TestOpFamilyHelpers(t *testing.T) {
	d := sampleDigest(1)
	fams := d.OpFamilies()
	if len(fams) != 1 || fams[0] != "get" {
		t.Fatalf("OpFamilies = %v, want [get]", fams)
	}
	if _, ok := d.OpFamilyHistogram("get"); !ok {
		t.Fatal("get family histogram missing")
	}
	if _, ok := d.OpFamilyHistogram("put"); ok {
		t.Fatal("phantom put family")
	}
	if fam, ok := opFamily("core/op__latency"); ok {
		t.Fatalf("empty family accepted: %q", fam)
	}
	if _, ok := opFamily("core/remote_allocs"); ok {
		t.Fatal("non-op name accepted")
	}
}

func TestRenderClusterView(t *testing.T) {
	set := []NodeDigest{
		{Node: 1, Seq: 1, Age: 0, D: sampleDigest(1)},
		{Node: 2, Seq: 4, Age: 1, D: sampleDigest(2)},
	}
	var sb strings.Builder
	if err := RenderClusterView(&sb, set); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"cluster view: 2 contributors",
		"get_p50", "get_p99", "get_p999",
		"AGG",
		"aggregate counters:",
		"core/remote_allocs 9",
		"core/op_get_good 27",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Determinism: a second render is byte-identical.
	var sb2 strings.Builder
	if err := RenderClusterView(&sb2, set); err != nil {
		t.Fatalf("render2: %v", err)
	}
	if sb2.String() != out {
		t.Fatal("render not deterministic")
	}
}

// The tier-balance section appears only when contributors export swap-tier
// occupancy gauges, sums them per tier across nodes, and totals the ladder
// movement counters.
func TestRenderClusterViewTierSection(t *testing.T) {
	plain := []NodeDigest{{Node: 1, Seq: 1, D: sampleDigest(1)}}
	var sb strings.Builder
	if err := RenderClusterView(&sb, plain); err != nil {
		t.Fatalf("render: %v", err)
	}
	if strings.Contains(sb.String(), "tier balance") {
		t.Fatal("tier section rendered with no tier gauges present")
	}

	tiered := sampleDigest(1)
	tiered.Gauges["swap/tier_shared_pages"] = 40
	tiered.Gauges["swap/tier_disk_pages"] = 2
	tiered.Counters["swap/tier_demotions"] = 5
	tiered.Counters["swap/tier_promotions"] = 1
	set := []NodeDigest{
		{Node: 1, Seq: 1, D: tiered},
		{Node: 2, Seq: 1, D: sampleDigest(2)}, // no swap engine on this node
	}
	sb.Reset()
	if err := RenderClusterView(&sb, set); err != nil {
		t.Fatalf("render tiered: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"tier balance (pages):",
		"shared", "disk",
		"demotions 5  promotions 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The gauge-less contributor contributes no tier row; the aggregate
	// equals node 1's occupancy.
	if strings.Count(out, "\n2 ") > strings.Count(sb.String(), "\n2 ") {
		t.Fatal("unexpected row accounting")
	}
	if !strings.Contains(out, "40") || !strings.Contains(out, "2") {
		t.Fatalf("occupancy figures missing:\n%s", out)
	}
}
