// Package metrics provides lightweight, concurrency-safe instrumentation
// primitives used across the disaggregated-memory stack: counters, gauges,
// latency histograms, and windowed throughput time series.
//
// Simulated-time components pass explicit timestamps; nothing in this package
// reads the wall clock, which keeps simulation results deterministic.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records duration observations into exponential buckets and keeps
// enough state to answer count, sum, mean, and approximate quantiles.
type Histogram struct {
	mu      sync.Mutex
	bounds  []time.Duration
	buckets []int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewLatencyHistogram returns a histogram with exponential bucket bounds
// from 100 ns to ~100 s (factor 2 per bucket), suitable for the full memory
// hierarchy from DRAM hits to disk thrashing.
func NewLatencyHistogram() *Histogram {
	var bounds []time.Duration
	for b := 100 * time.Nanosecond; b < 200*time.Second; b *= 2 {
		bounds = append(bounds, b)
	}
	return &Histogram{bounds: bounds, buckets: make([]int64, len(bounds)+1)}
}

// Observe records one duration. Durations above the top bucket bound land in
// the overflow bucket; negative durations (possible when a caller diffs two
// clock readings across a clock step) are clamped to zero so they can never
// drag the sum or the quantile estimates below the observable range.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[idx]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the target bucket, assuming observations are uniformly spread
// between the bucket's bounds. It returns zero when the histogram is empty.
// Interpolating (rather than returning the bucket's upper bound) keeps p99
// estimates from being systematically pessimistic on exponential buckets,
// where an upper bound can be 2x the true quantile.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantile(h.bounds, h.buckets, h.count, h.min, h.max, q)
}

// Quantile estimates the q-quantile of a snapshot with the same linear
// interpolation as Histogram.Quantile — the digest consumers (dmctl top,
// /cluster) compute cluster-level percentiles from merged snapshots.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	return quantile(s.Bounds, s.Counts, s.Count, s.Min, s.Max, q)
}

func quantile(bounds []time.Duration, buckets []int64, count int64, min, max time.Duration, q float64) time.Duration {
	if q <= 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("metrics: quantile %v out of (0,1]", q))
	}
	if count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(count)))
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			if i >= len(bounds) {
				// Overflow bucket: everything here is above the top bound,
				// and the true maximum is the tightest upper bound we have.
				return max
			}
			// Interpolate within [lower, upper] by the target's rank among
			// this bucket's c observations: rank pos of c puts the estimate
			// pos/c of the way across the bucket.
			var lower time.Duration
			if i > 0 {
				lower = bounds[i-1]
			}
			pos := target - (cum - c)
			v := lower + time.Duration(float64(bounds[i]-lower)*float64(pos)/float64(c))
			// Clamp into the observed [min, max] range: an interpolated value
			// can overshoot the max (all observations sit low in a wide
			// bucket) or undershoot the min.
			if v > max {
				v = max
			}
			if v < min {
				v = min
			}
			return v
		}
	}
	return max
}

// HistogramSnapshot is a point-in-time copy of a histogram's state, used by
// the Prometheus exposition writer so rendering never holds the hot-path lock
// across I/O.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// overflow bucket for observations above the top bound.
	Bounds []time.Duration
	Counts []int64
	Count  int64
	Sum    time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Snapshot returns a consistent copy of the histogram's buckets and summary
// statistics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: make([]time.Duration, len(h.bounds)),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	copy(s.Bounds, h.bounds)
	copy(s.Counts, h.buckets)
	return s
}

// ErrBoundsMismatch is returned by HistogramSnapshot.Merge when the two
// snapshots were bucketed against different bounds: summing counts across
// incompatible schemas would silently misbucket every observation.
var ErrBoundsMismatch = errors.New("metrics: histogram bounds mismatch")

// Merge folds other into s: bucket counts, count, and sum add; min/max widen.
// Both snapshots must share identical bucket bounds — Merge returns
// ErrBoundsMismatch otherwise and leaves s unchanged. Merging an empty
// snapshot is a no-op; merging into an empty snapshot adopts other's bounds.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if other.Count == 0 && len(other.Bounds) == 0 {
		return nil
	}
	if len(s.Bounds) == 0 && s.Count == 0 {
		s.Bounds = append([]time.Duration(nil), other.Bounds...)
		s.Counts = append([]int64(nil), other.Counts...)
		s.Count, s.Sum, s.Min, s.Max = other.Count, other.Sum, other.Min, other.Max
		return nil
	}
	if len(s.Bounds) != len(other.Bounds) || len(s.Counts) != len(other.Counts) {
		return ErrBoundsMismatch
	}
	for i, b := range s.Bounds {
		if other.Bounds[i] != b {
			return ErrBoundsMismatch
		}
	}
	if other.Count == 0 {
		return nil
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	if s.Count == 0 || other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// String summarizes the histogram for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("count=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// TimeSeries accumulates per-window event counts keyed by explicit
// timestamps, producing throughput curves such as Figure 9's ops/sec series.
type TimeSeries struct {
	mu     sync.Mutex
	window time.Duration
	counts map[int64]int64
}

// NewTimeSeries returns a series that buckets events into windows of width w.
func NewTimeSeries(w time.Duration) *TimeSeries {
	if w <= 0 {
		panic("metrics: TimeSeries window must be positive")
	}
	return &TimeSeries{window: w, counts: map[int64]int64{}}
}

// Record adds n events at timestamp at.
func (ts *TimeSeries) Record(at time.Duration, n int64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.counts[int64(at/ts.window)] += n
}

// Point is one window of a throughput series.
type Point struct {
	Start time.Duration // window start time
	Rate  float64       // events per second within the window
}

// Series returns the ordered sequence of points from time zero through the
// last recorded window, filling empty windows with zero rates.
func (ts *TimeSeries) Series() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.counts) == 0 {
		return nil
	}
	var maxWin int64
	for w := range ts.counts {
		if w > maxWin {
			maxWin = w
		}
	}
	pts := make([]Point, 0, maxWin+1)
	perSec := float64(time.Second) / float64(ts.window)
	for w := int64(0); w <= maxWin; w++ {
		pts = append(pts, Point{
			Start: time.Duration(w) * ts.window,
			Rate:  float64(ts.counts[w]) * perSec,
		})
	}
	return pts
}

// Registry is a named collection of metrics for one component, rendered as a
// stable, sorted text block (useful in CLI stats output).
type Registry struct {
	mu       sync.Mutex
	name     string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry labelled name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Name returns the registry's label.
func (r *Registry) Name() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.name
}

// setName relabels the registry; Tree.Attach uses it to fold free-floating
// registries into one namespace.
func (r *Registry) setName(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.name = name
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewLatencyHistogram()
		r.hists[name] = h
	}
	return h
}

// String renders all metrics sorted by kind then name.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", r.name)
	for _, k := range sortedKeys(r.counters) {
		fmt.Fprintf(&b, "  counter %-32s %d\n", k, r.counters[k].Value())
	}
	for _, k := range sortedKeys(r.gauges) {
		fmt.Fprintf(&b, "  gauge   %-32s %d\n", k, r.gauges[k].Value())
	}
	for _, k := range sortedKeys(r.hists) {
		fmt.Fprintf(&b, "  hist    %-32s %s\n", k, r.hists[k].String())
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
