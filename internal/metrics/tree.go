package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Tree is the unified per-process metrics namespace: a hierarchy of
// registries addressed by slash-separated paths ("node/swap",
// "node/transport", "chaos/invariants"). Every component keeps its own
// Registry; the tree only names and aggregates them, so attaching a registry
// costs nothing on the hot path.
type Tree struct {
	mu   sync.Mutex
	regs map[string]*Registry
}

// NewTree returns an empty metrics tree.
func NewTree() *Tree {
	return &Tree{regs: map[string]*Registry{}}
}

// Registry returns the registry mounted at path, creating an empty one on
// first use.
func (t *Tree) Registry(path string) *Registry {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.regs[path]
	if !ok {
		r = NewRegistry(path)
		t.regs[path] = r
	}
	return r
}

// Attach mounts an existing registry at path, relabelling it to the path so
// every export surface shows one namespace. Attaching over an occupied path
// replaces the previous registry.
func (t *Tree) Attach(path string, r *Registry) {
	if r == nil {
		return
	}
	r.setName(path)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.regs[path] = r
}

// Paths returns the mounted paths in sorted order.
func (t *Tree) Paths() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sortedKeys(t.regs)
}

// snapshot returns the mounted registries in path order without holding the
// tree lock during rendering.
func (t *Tree) snapshot() []*Registry {
	t.mu.Lock()
	defer t.mu.Unlock()
	regs := make([]*Registry, 0, len(t.regs))
	for _, p := range sortedKeys(t.regs) {
		regs = append(regs, t.regs[p])
	}
	return regs
}

// String renders every mounted registry in path order — the pretty-printed
// form served to `dmctl stats`.
func (t *Tree) String() string {
	var b strings.Builder
	for _, r := range t.snapshot() {
		b.WriteString(r.String())
	}
	return b.String()
}

// WritePrometheus writes the whole tree in Prometheus text exposition format.
// Metric families are named godm_<path>_<metric> with path separators folded
// to underscores; histograms become cumulative le-bucket families in seconds.
func (t *Tree) WritePrometheus(w io.Writer) error {
	for _, r := range t.snapshot() {
		if err := r.WritePrometheus(w, "godm_"+sanitizeMetricName(r.Name())); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the registry's metrics as Prometheus text, each
// family named prefix_<metric>.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	histRefs := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		histRefs[k] = h
	}
	r.mu.Unlock()
	// Snapshot histograms outside the registry lock: Observe holds the
	// histogram lock, never the registry's.
	for k, h := range histRefs {
		hists[k] = h.Snapshot()
	}

	for _, k := range sortedKeys(counters) {
		name := prefix + "_" + sanitizeMetricName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(gauges) {
		name := prefix + "_" + sanitizeMetricName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(hists) {
		if err := writePromHistogram(w, prefix+"_"+sanitizeMetricName(k), hists[k]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(b.Seconds()), cum); err != nil {
			return err
		}
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(s.Sum.Seconds()), name, s.Count); err != nil {
		return err
	}
	return nil
}

// promFloat renders a float the way Prometheus clients expect: shortest
// round-trippable decimal form.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// sanitizeMetricName folds every character outside [a-zA-Z0-9_] — path
// separators, dashes, dots — to an underscore so tree paths become legal
// Prometheus metric name segments.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
