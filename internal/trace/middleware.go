package trace

import (
	"context"

	"godm/internal/transport"
)

// Middleware returns a transport middleware that spans every fabric operation
// against tr and carries trace identity across the wire on two-sided calls:
// the client side prepends the envelope, the server side strips it and runs
// the handler under a context that carries the caller's span as parent (and
// tr itself, so handler-side instrumentation keeps recording into the same
// ring). One-sided reads and writes land without involving the remote CPU —
// true to RDMA semantics they get client-side spans only.
//
// A nil tracer yields the identity middleware.
func Middleware(tr *Tracer) transport.Middleware {
	return func(ep transport.Endpoint) transport.Endpoint {
		if tr == nil {
			return ep
		}
		return &traced{ep: ep, tr: tr}
	}
}

type traced struct {
	ep transport.Endpoint
	tr *Tracer
}

var _ transport.Endpoint = (*traced)(nil)

func (t *traced) ID() transport.NodeID { return t.ep.ID() }

func (t *traced) RegisterRegion(id transport.RegionID, size int) ([]byte, error) {
	return t.ep.RegisterRegion(id, size)
}

func (t *traced) DeregisterRegion(id transport.RegionID) error {
	return t.ep.DeregisterRegion(id)
}

func (t *traced) Close() error { return t.ep.Close() }

func (t *traced) WriteRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, data []byte) error {
	ctx, sp := t.tr.Start(ctx, "net.write")
	sp.Annotate("to", int(to))
	sp.Annotate("bytes", len(data))
	err := t.ep.WriteRegion(ctx, to, region, offset, data)
	sp.EndErr(err)
	return err
}

func (t *traced) ReadRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, n int) ([]byte, error) {
	ctx, sp := t.tr.Start(ctx, "net.read")
	sp.Annotate("to", int(to))
	sp.Annotate("bytes", n)
	data, err := t.ep.ReadRegion(ctx, to, region, offset, n)
	sp.EndErr(err)
	return data, err
}

func (t *traced) WriteRegionV(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, bufs [][]byte) error {
	ctx, sp := t.tr.Start(ctx, "net.write")
	sp.Annotate("to", int(to))
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	sp.Annotate("bytes", total)
	err := transport.WriteRegionV(ctx, t.ep, to, region, offset, bufs)
	sp.EndErr(err)
	return err
}

func (t *traced) ReadRegionInto(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, dst []byte) error {
	ctx, sp := t.tr.Start(ctx, "net.read")
	sp.Annotate("to", int(to))
	sp.Annotate("bytes", len(dst))
	err := transport.ReadRegionInto(ctx, t.ep, to, region, offset, dst)
	sp.EndErr(err)
	return err
}

func (t *traced) Call(ctx context.Context, to transport.NodeID, payload []byte) ([]byte, error) {
	ctx, sp := t.tr.Start(ctx, "net.call")
	sp.Annotate("to", int(to))
	sp.Annotate("bytes", len(payload))
	resp, err := t.ep.Call(ctx, to, injectWire(sp.Context(), payload))
	sp.EndErr(err)
	return resp, err
}

// SetHandler wraps h so inbound calls run under a context carrying the
// remote caller's span (reassembling one cross-node trace) and this tracer.
func (t *traced) SetHandler(h transport.Handler) {
	if h == nil {
		t.ep.SetHandler(nil)
		return
	}
	t.ep.SetHandler(func(ctx context.Context, from transport.NodeID, payload []byte) ([]byte, error) {
		ctx = WithTracer(ctx, t.tr)
		if sc, bare, ok := extractWire(payload); ok {
			ctx = withRemoteSpanContext(ctx, sc)
			payload = bare
		}
		ctx, sp := t.tr.Start(ctx, "net.serve")
		sp.Annotate("from", int(from))
		resp, err := h(ctx, from, payload)
		sp.EndErr(err)
		return resp, err
	})
}
