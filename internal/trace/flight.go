// The always-on flight recorder: a bounded ring of recently *completed* span
// timelines, kept per node so that when something goes wrong — a chaos
// invariant fails, a slow op blows its SLO, an operator sends SIGQUIT — the
// recent history is already there to dump, instead of "rerun with tracing".
//
// The tracer feeds every finished span in; the recorder groups spans by trace
// and considers a trace complete each time a local root span ends (a span
// with no parent, or whose parent arrived over the wire — the serve span of a
// remote call). Completed timelines land in the main ring; timelines carrying
// a "slow=" annotation, plus any trace explicitly Flagged by an invariant
// checker, land in a separate flagged ring that survives longer under churn.
//
// Determinism: entries are appended in span-end order, which under a serial
// DES run is itself deterministic, and rendering is a pure function of the
// entries — scale sims may assert on Dump output byte-for-byte.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Flight ring defaults: how many completed timelines, flagged timelines, and
// in-progress traces the recorder retains.
const (
	DefaultFlightCompleted = 64
	DefaultFlightFlagged   = 32
	DefaultFlightActive    = 256
)

// FlightEntry is one captured trace timeline.
type FlightEntry struct {
	Trace  TraceID
	Reason string // "" for plain completion; "slow-op", invariant name, "sigquit"…
	Spans  []SpanRecord
}

// Flight is the per-node flight recorder. The zero value is not usable; use
// NewFlight. A nil *Flight swallows all calls, so wiring is optional
// everywhere.
type Flight struct {
	mu        sync.Mutex
	maxActive int

	active map[TraceID]*flightTrace
	order  []TraceID // insertion order, for bounded eviction of stale traces

	completed ring[FlightEntry]
	flagged   ring[FlightEntry]
}

type flightTrace struct {
	spans  []SpanRecord
	reason string // first flag reason, "" if unflagged
}

// ring is a minimal bounded FIFO over a fixed slice.
type ring[T any] struct {
	buf  []T
	head int // next write
	n    int
}

func (r *ring[T]) push(v T) {
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *ring[T]) items() []T { // oldest first
	out := make([]T, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// FlightOption configures a Flight.
type FlightOption func(*Flight)

// WithFlightCapacity sets the completed- and flagged-ring sizes (minimum 1
// each).
func WithFlightCapacity(completed, flagged int) FlightOption {
	return func(f *Flight) {
		if completed < 1 {
			completed = 1
		}
		if flagged < 1 {
			flagged = 1
		}
		f.completed.buf = make([]FlightEntry, completed)
		f.flagged.buf = make([]FlightEntry, flagged)
	}
}

// NewFlight returns an empty flight recorder.
func NewFlight(opts ...FlightOption) *Flight {
	f := &Flight{
		maxActive: DefaultFlightActive,
		active:    map[TraceID]*flightTrace{},
		completed: ring[FlightEntry]{buf: make([]FlightEntry, DefaultFlightCompleted)},
		flagged:   ring[FlightEntry]{buf: make([]FlightEntry, DefaultFlightFlagged)},
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// observe accepts one finished span from the tracer. completes marks the span
// as a local root: its end means the trace's timeline (as seen from this
// node) is ready to capture. Spans may keep arriving for a completed trace —
// late captures of the same trace replace nothing and simply append a fuller
// entry.
func (f *Flight) observe(r SpanRecord, completes bool) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ft, ok := f.active[r.Trace]
	if !ok {
		ft = &flightTrace{}
		f.active[r.Trace] = ft
		f.order = append(f.order, r.Trace)
		f.evictLocked()
	}
	ft.spans = append(ft.spans, r)
	if ft.reason == "" && slowAttr(r.Attrs) {
		ft.reason = "slow-op"
	}
	if completes {
		f.captureLocked(r.Trace, ft, ft.reason)
	}
}

// slowAttr reports whether a span carries the slow-op watchdog's annotation.
func slowAttr(attrs []string) bool {
	for _, a := range attrs {
		if strings.HasPrefix(a, "slow=") {
			return true
		}
	}
	return false
}

// captureLocked snapshots ft into the completed ring and, when flagged, the
// flagged ring. The active buffer is retained so stragglers keep accruing.
func (f *Flight) captureLocked(id TraceID, ft *flightTrace, reason string) {
	e := FlightEntry{
		Trace:  id,
		Reason: reason,
		Spans:  append([]SpanRecord(nil), ft.spans...),
	}
	f.completed.push(e)
	if reason != "" {
		f.flagged.push(e)
	}
}

// evictLocked drops the oldest active traces beyond maxActive — traces that
// never completed (lost spans, crashed peers) must not pin memory forever.
func (f *Flight) evictLocked() {
	for len(f.order) > f.maxActive {
		delete(f.active, f.order[0])
		f.order = f.order[1:]
	}
}

// Flag captures the trace's current timeline into the flagged ring under
// reason, regardless of completion state — the chaos harness calls this when
// an invariant fails so the offending op's spans are in the dump even if the
// op never finished. Unknown traces (already evicted, never seen) are
// captured from the completed ring when possible, else ignored.
func (f *Flight) Flag(id TraceID, reason string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ft, ok := f.active[id]; ok {
		if ft.reason == "" {
			ft.reason = reason
		}
		f.flagged.push(FlightEntry{
			Trace:  id,
			Reason: reason,
			Spans:  append([]SpanRecord(nil), ft.spans...),
		})
		return
	}
	for _, e := range f.completed.items() {
		if e.Trace == id {
			e.Reason = reason
			f.flagged.push(e)
			return
		}
	}
}

// Completed returns the completed-timeline ring, oldest first.
func (f *Flight) Completed() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.completed.items()
}

// Flagged returns the flagged-timeline ring, oldest first.
func (f *Flight) Flagged() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flagged.items()
}

// Dump renders the recorder's state as deterministic text: flagged timelines
// first (they are why anyone is reading a dump), then the completed ring.
func (f *Flight) Dump() string {
	if f == nil {
		return "flight recorder: disabled\n"
	}
	flagged, completed := f.Flagged(), f.Completed()
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d flagged, %d completed\n", len(flagged), len(completed))
	for _, e := range flagged {
		fmt.Fprintf(&b, "== flagged trace %d (%s) ==\n%s", e.Trace, e.Reason, Timeline(e.Spans))
	}
	for _, e := range completed {
		fmt.Fprintf(&b, "== trace %d ==\n%s", e.Trace, Timeline(e.Spans))
	}
	return b.String()
}
