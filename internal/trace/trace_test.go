package trace

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// tick returns a deterministic clock that advances 1ms per reading.
func tick() func() time.Duration {
	var t time.Duration
	return func() time.Duration {
		t += time.Millisecond
		return t
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "orphan")
	if sp != nil {
		t.Fatalf("Start without a tracer returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a tracer changed the context")
	}
	// All of these must not panic.
	sp.Annotate("k", 1)
	sp.End()
	sp.EndErr(errors.New("x"))
	if sp.TraceID() != 0 {
		t.Fatalf("nil span has trace ID %d", sp.TraceID())
	}
	var tr *Tracer
	if _, sp := tr.Start(ctx, "x"); sp != nil {
		t.Fatalf("nil tracer returned a live span")
	}
}

func TestSpanParentingAndIDs(t *testing.T) {
	tr := New(WithClock(tick()))
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "root" || spans[0].Parent != 0 {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[1].Name != "child" || spans[1].Parent != spans[0].ID {
		t.Fatalf("child not parented to root: %+v", spans[1])
	}
	if spans[2].Name != "grandchild" || spans[2].Parent != spans[1].ID {
		t.Fatalf("grandchild not parented to child: %+v", spans[2])
	}
	for _, s := range spans {
		if s.Trace != root.TraceID() {
			t.Fatalf("span %q escaped the trace: %+v", s.Name, s)
		}
	}
}

func TestSeparateRootsGetSeparateTraces(t *testing.T) {
	tr := New(WithClock(tick()))
	ctx := WithTracer(context.Background(), tr)
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	a.End()
	b.End()
	if a.TraceID() == b.TraceID() {
		t.Fatalf("independent roots share trace ID %d", a.TraceID())
	}
	ids := tr.TraceIDs()
	if len(ids) != 2 {
		t.Fatalf("TraceIDs = %v, want 2 entries", ids)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(WithClock(tick()), WithCapacity(2))
	ctx := WithTracer(context.Background(), tr)
	var ids []TraceID
	for _, name := range []string{"one", "two", "three"} {
		_, sp := Start(ctx, name)
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	if got := tr.Spans(ids[0]); len(got) != 0 {
		t.Fatalf("evicted trace still present: %v", got)
	}
	if got := tr.Spans(ids[2]); len(got) != 1 || got[0].Name != "three" {
		t.Fatalf("newest trace missing: %v", got)
	}
	if got := tr.TraceIDs(); len(got) != 2 {
		t.Fatalf("TraceIDs after eviction = %v, want 2", got)
	}
}

func TestAnnotationsAndErrors(t *testing.T) {
	tr := New(WithClock(tick()))
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "op")
	sp.Annotate("entry", 42)
	sp.EndErr(errors.New("boom"))
	spans := tr.Spans(sp.TraceID())
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	attrs := strings.Join(spans[0].Attrs, " ")
	if !strings.Contains(attrs, "entry=42") || !strings.Contains(attrs, "err=boom") {
		t.Fatalf("attrs = %q", attrs)
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := New(WithClock(tick()))
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "swap.fault")
	_, child := Start(ctx, "net.call")
	child.Annotate("to", 2)
	child.End()
	root.End()

	tl := tr.Timeline(root.TraceID())
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline has %d lines:\n%s", len(lines), tl)
	}
	if !strings.Contains(lines[0], "swap.fault") || strings.HasPrefix(lines[0], " ") {
		t.Fatalf("root line wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.Contains(lines[1], "net.call to=2") {
		t.Fatalf("child line not indented under root: %q", lines[1])
	}
}

func TestTimelineOrphanParentRendersAsRoot(t *testing.T) {
	// A span whose parent lives in another process's ring (remote parent)
	// must still render, as a root.
	spans := []SpanRecord{
		{Trace: 1, ID: 9, Parent: 5, Name: "net.serve", Start: time.Millisecond, End: 2 * time.Millisecond},
	}
	tl := Timeline(spans)
	if !strings.Contains(tl, "net.serve") || strings.HasPrefix(tl, " ") {
		t.Fatalf("orphan did not render as root:\n%s", tl)
	}
	if Timeline(nil) != "" {
		t.Fatalf("empty span set rendered non-empty timeline")
	}
}

func TestTimelineDeterministic(t *testing.T) {
	run := func() string {
		tr := New(WithClock(tick()))
		ctx := WithTracer(context.Background(), tr)
		ctx, root := Start(ctx, "core.put_remote")
		_, pick := Start(ctx, "placement.pick")
		pick.End()
		wctx, w := Start(ctx, "repl.write")
		_, c := Start(wctx, "net.call")
		c.Annotate("to", 3)
		c.End()
		w.End()
		root.End()
		return tr.Timeline(root.TraceID())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same run, different timelines:\n--- a\n%s--- b\n%s", a, b)
	}
	if a == "" {
		t.Fatalf("empty timeline")
	}
}

func TestWireRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xDEADBEEF, Span: 77}
	payload := []byte{1, 2, 3}
	enveloped := injectWire(sc, payload)
	if len(enveloped) != WireHeaderSize+len(payload) {
		t.Fatalf("envelope length %d", len(enveloped))
	}
	got, bare, ok := extractWire(enveloped)
	if !ok || got != sc || string(bare) != string(payload) {
		t.Fatalf("round trip: ok=%v sc=%+v bare=%v", ok, got, bare)
	}
}

func TestWirePassesBarePayloadThrough(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {1}, []byte("short"), make([]byte, WireHeaderSize)} {
		sc, bare, ok := extractWire(payload)
		if ok {
			t.Fatalf("payload %v claimed an envelope: %+v", payload, sc)
		}
		if string(bare) != string(payload) {
			t.Fatalf("bare payload mutated: %v != %v", bare, payload)
		}
	}
}

func TestNowPrefersTracerClock(t *testing.T) {
	tr := New(WithClock(func() time.Duration { return 42 * time.Second }))
	ctx := WithTracer(context.Background(), tr)
	if got := Now(ctx); got != 42*time.Second {
		t.Fatalf("Now = %v, want tracer clock", got)
	}
	// Without a tracer it falls back to wall time since process start —
	// monotone, non-negative.
	if got := Now(context.Background()); got < 0 {
		t.Fatalf("wall fallback negative: %v", got)
	}
}
