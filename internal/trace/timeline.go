package trace

import (
	"fmt"
	"sort"
	"strings"
)

// sortSpans orders spans by start time, breaking ties by span ID so the
// rendering is total and deterministic.
func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
}

// Timeline renders the spans of one trace as an indented tree, children under
// their parents, times relative to the trace's earliest span. Spans whose
// parent is not in the slice (a remote parent recorded in another process's
// ring, or one evicted from this ring) render as roots. The output is a pure
// function of the span records, so deterministic runs yield byte-identical
// timelines.
func Timeline(spans []SpanRecord) string {
	if len(spans) == 0 {
		return ""
	}
	ordered := make([]SpanRecord, len(spans))
	copy(ordered, spans)
	sortSpans(ordered)

	// Deduplicate span IDs: relays and flight-recorder recaptures can hand the
	// same span in twice. Keep the record with the later End (the fuller one).
	best := make(map[SpanID]int, len(ordered))
	dedup := ordered[:0]
	for _, s := range ordered {
		if i, ok := best[s.ID]; ok {
			if s.End > dedup[i].End {
				dedup[i] = s
			}
			continue
		}
		best[s.ID] = len(dedup)
		dedup = append(dedup, s)
	}
	ordered = dedup
	sortSpans(ordered) // a kept duplicate may carry a different Start

	base := ordered[0].Start
	for _, s := range ordered {
		if s.Start < base {
			base = s.Start
		}
	}
	present := make(map[SpanID]bool, len(ordered))
	for _, s := range ordered {
		present[s.ID] = true
	}
	children := map[SpanID][]SpanRecord{}
	var roots []SpanRecord
	for _, s := range ordered {
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}

	var b strings.Builder
	var walk func(s SpanRecord, depth int)
	walk = func(s SpanRecord, depth int) {
		fmt.Fprintf(&b, "%*s[+%-10v %10v] %s", depth*2, "", s.Start-base, s.End-s.Start, s.Name)
		for _, a := range s.Attrs {
			b.WriteByte(' ')
			b.WriteString(a)
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// Timeline renders one retained trace; the empty string means the ring holds
// no spans for id.
func (t *Tracer) Timeline(id TraceID) string {
	return Timeline(t.Spans(id))
}
