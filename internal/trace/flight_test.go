package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func simClock() func() time.Duration {
	var t time.Duration
	return func() time.Duration {
		t += time.Millisecond
		return t
	}
}

func TestFlightCapturesCompletedTrace(t *testing.T) {
	f := NewFlight()
	tr := New(WithClock(simClock()), WithFlight(f))
	ctx := WithTracer(context.Background(), tr)

	ctx2, root := tr.Start(ctx, "op.root")
	_, child := tr.Start(ctx2, "op.child")
	child.End()
	if got := len(f.Completed()); got != 0 {
		t.Fatalf("child end captured %d entries, want 0 (trace not complete)", got)
	}
	root.End()
	done := f.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d, want 1", len(done))
	}
	e := done[0]
	if e.Trace != root.TraceID() || e.Reason != "" || len(e.Spans) != 2 {
		t.Fatalf("entry = %+v, want 2-span unflagged capture of trace %d", e, root.TraceID())
	}
	if tl := Timeline(e.Spans); !strings.Contains(tl, "op.root") || !strings.Contains(tl, "op.child") {
		t.Fatalf("timeline missing spans:\n%s", tl)
	}
	if len(f.Flagged()) != 0 {
		t.Fatal("unflagged trace reached the flagged ring")
	}
}

func TestFlightSlowOpFlagging(t *testing.T) {
	f := NewFlight()
	tr := New(WithClock(simClock()), WithFlight(f))
	ctx := WithTracer(context.Background(), tr)

	_, sp := tr.Start(ctx, "core.get")
	sp.Annotate("slow", "get") // the SLO watchdog's marking
	sp.End()
	flagged := f.Flagged()
	if len(flagged) != 1 || flagged[0].Reason != "slow-op" {
		t.Fatalf("flagged = %+v, want one slow-op entry", flagged)
	}
	if dump := f.Dump(); !strings.Contains(dump, "flagged trace") || !strings.Contains(dump, "slow-op") {
		t.Fatalf("dump missing slow-op section:\n%s", dump)
	}
}

func TestFlightRemoteParentCompletesServeSpan(t *testing.T) {
	// A serve span whose parent arrived over the wire is a local root: its
	// end must capture the trace even though Parent != 0.
	f := NewFlight()
	tr := New(WithClock(simClock()), WithFlight(f))
	ctx := WithTracer(context.Background(), tr)
	ctx = withRemoteSpanContext(ctx, SpanContext{Trace: 99, Span: 7})

	ctx2, serve := tr.Start(ctx, "net.serve")
	_, inner := tr.Start(ctx2, "core.put_remote")
	inner.End()
	serve.End()
	done := f.Completed()
	if len(done) != 1 || done[0].Trace != 99 {
		t.Fatalf("completed = %+v, want one capture of remote trace 99", done)
	}
	if len(done[0].Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(done[0].Spans))
	}
	// But a local child (non-remote parent) must NOT complete the trace.
	f2 := NewFlight()
	tr2 := New(WithClock(simClock()), WithFlight(f2))
	cctx := WithTracer(context.Background(), tr2)
	cctx2, root := tr2.Start(cctx, "root")
	_, child := tr2.Start(cctx2, "child")
	child.End()
	if len(f2.Completed()) != 0 {
		t.Fatal("local child end completed the trace")
	}
	root.End()
	if len(f2.Completed()) != 1 {
		t.Fatal("root end did not complete the trace")
	}
}

func TestFlightFlagUncompletedTrace(t *testing.T) {
	f := NewFlight()
	tr := New(WithClock(simClock()), WithFlight(f))
	ctx := WithTracer(context.Background(), tr)

	ctx2, root := tr.Start(ctx, "core.put_remote")
	_, child := tr.Start(ctx2, "net.write")
	child.End() // root still open — the op is in flight when the invariant trips
	f.Flag(root.TraceID(), "replication_factor")
	flagged := f.Flagged()
	if len(flagged) != 1 || flagged[0].Reason != "replication_factor" {
		t.Fatalf("flagged = %+v, want replication_factor capture", flagged)
	}
	if len(flagged[0].Spans) != 1 || flagged[0].Spans[0].Name != "net.write" {
		t.Fatalf("flag captured %+v, want the finished net.write span", flagged[0].Spans)
	}
	// Flagging an unknown trace is a no-op, not a panic.
	f.Flag(12345, "whatever")
	if len(f.Flagged()) != 1 {
		t.Fatal("unknown-trace flag pushed an entry")
	}
	root.End()
}

func TestFlightFlagFromCompletedRing(t *testing.T) {
	f := NewFlight()
	tr := New(WithClock(simClock()), WithFlight(f))
	ctx := WithTracer(context.Background(), tr)
	_, sp := tr.Start(ctx, "op")
	id := sp.TraceID()
	sp.End()
	// Evict the active entry to force the completed-ring lookup path.
	f.mu.Lock()
	delete(f.active, id)
	f.order = nil
	f.mu.Unlock()
	f.Flag(id, "late-invariant")
	flagged := f.Flagged()
	if len(flagged) != 1 || flagged[0].Reason != "late-invariant" || len(flagged[0].Spans) != 1 {
		t.Fatalf("flagged = %+v, want capture recovered from completed ring", flagged)
	}
}

func TestFlightRingsBounded(t *testing.T) {
	f := NewFlight(WithFlightCapacity(4, 2))
	tr := New(WithClock(simClock()), WithFlight(f))
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(ctx, "op")
		if i%2 == 0 {
			sp.Annotate("slow", "op")
		}
		sp.End()
	}
	if got := len(f.Completed()); got != 4 {
		t.Fatalf("completed ring = %d, want 4", got)
	}
	if got := len(f.Flagged()); got != 2 {
		t.Fatalf("flagged ring = %d, want 2", got)
	}
	// Oldest-first: the last completions are the ones retained.
	done := f.Completed()
	for i := 1; i < len(done); i++ {
		if done[i].Trace <= done[i-1].Trace {
			t.Fatalf("completed ring out of order: %+v", done)
		}
	}
}

func TestFlightActiveEviction(t *testing.T) {
	f := NewFlight()
	f.maxActive = 3
	tr := New(WithClock(simClock()), WithFlight(f))
	ctx := WithTracer(context.Background(), tr)
	// Start+end child spans of distinct traces without ever completing them:
	// each trace stays active until evicted.
	var roots []*Span
	for i := 0; i < 6; i++ {
		c2, root := tr.Start(ctx, "root")
		_, child := tr.Start(c2, "child")
		child.End()
		roots = append(roots, root)
	}
	f.mu.Lock()
	n := len(f.active)
	f.mu.Unlock()
	if n != 3 {
		t.Fatalf("active traces = %d, want 3 (bounded)", n)
	}
	for _, r := range roots {
		r.End()
	}
}

func TestNilFlightAndNilTracerSafe(t *testing.T) {
	var f *Flight
	f.observe(SpanRecord{}, true)
	f.Flag(1, "x")
	if f.Completed() != nil || f.Flagged() != nil {
		t.Fatal("nil flight returned entries")
	}
	if !strings.Contains(f.Dump(), "disabled") {
		t.Fatal("nil flight dump")
	}
	// A tracer without a flight recorder still records spans.
	tr := New(WithClock(simClock()))
	ctx := WithTracer(context.Background(), tr)
	_, sp := tr.Start(ctx, "op")
	sp.End()
	if tr.Flight() != nil {
		t.Fatal("phantom flight recorder")
	}
	if len(tr.Spans(sp.TraceID())) != 1 {
		t.Fatal("span not recorded without flight")
	}
}
