package trace

import (
	"testing"
	"time"
)

// Reassembly must be arrival-order independent: relays and ring snapshots
// hand Timeline spans in whatever order they finished, not tree order.
func TestTimelineOutOfOrderArrival(t *testing.T) {
	spans := []SpanRecord{
		{Trace: 1, ID: 1, Parent: 0, Name: "root", Start: 0, End: 10 * time.Millisecond},
		{Trace: 1, ID: 2, Parent: 1, Name: "mid", Start: time.Millisecond, End: 9 * time.Millisecond},
		{Trace: 1, ID: 3, Parent: 2, Name: "leaf", Start: 2 * time.Millisecond, End: 3 * time.Millisecond},
		{Trace: 1, ID: 4, Parent: 1, Name: "sibling", Start: 4 * time.Millisecond, End: 5 * time.Millisecond},
	}
	want := Timeline(spans)
	perms := [][]int{
		{3, 2, 1, 0},
		{2, 0, 3, 1},
		{1, 3, 0, 2},
	}
	for _, p := range perms {
		shuffled := make([]SpanRecord, len(spans))
		for i, j := range p {
			shuffled[i] = spans[j]
		}
		if got := Timeline(shuffled); got != want {
			t.Fatalf("order %v changed rendering:\n got:\n%s\nwant:\n%s", p, got, want)
		}
	}
}

// Duplicate span IDs (a span relayed twice, or recaptured by the flight
// recorder) must render once, keeping the fuller record (larger End).
func TestTimelineDuplicateSpansDeduped(t *testing.T) {
	root := SpanRecord{Trace: 1, ID: 1, Name: "root", Start: 0, End: 10 * time.Millisecond}
	childPartial := SpanRecord{Trace: 1, ID: 2, Parent: 1, Name: "child", Start: time.Millisecond, End: 2 * time.Millisecond}
	childFull := childPartial
	childFull.End = 8 * time.Millisecond
	childFull.Attrs = []string{"bytes=64"}

	got := Timeline([]SpanRecord{root, childPartial, root, childFull})
	want := Timeline([]SpanRecord{root, childFull})
	if got != want {
		t.Fatalf("dedup failed:\n got:\n%s\nwant:\n%s", got, want)
	}
	// The kept duplicate is the one with the larger End, regardless of order.
	if got2 := Timeline([]SpanRecord{childFull, root, childPartial}); got2 != want {
		t.Fatalf("dedup kept the partial record:\n%s", got2)
	}
}

// A kept duplicate carrying a different (later) Start must not corrupt the
// sort order of the rendered tree.
func TestTimelineDuplicateDifferentStart(t *testing.T) {
	root := SpanRecord{Trace: 1, ID: 1, Name: "root", Start: 0, End: 20 * time.Millisecond}
	a := SpanRecord{Trace: 1, ID: 2, Parent: 1, Name: "a", Start: time.Millisecond, End: 2 * time.Millisecond}
	bEarly := SpanRecord{Trace: 1, ID: 3, Parent: 1, Name: "b", Start: 0, End: time.Millisecond}
	bLate := bEarly
	bLate.Start = 5 * time.Millisecond
	bLate.End = 6 * time.Millisecond

	got := Timeline([]SpanRecord{bEarly, a, root, bLate})
	want := Timeline([]SpanRecord{root, a, bLate})
	if got != want {
		t.Fatalf("re-sort after dedup failed:\n got:\n%s\nwant:\n%s", got, want)
	}
}
