package trace

import "encoding/binary"

// The wire envelope prepends 20 bytes to every two-sided Call payload:
//
//	[0:4)   magic 0x9D 0x7C 0x01 0x67 ("godm trace v1")
//	[4:12)  trace ID, big endian
//	[12:20) parent span ID, big endian
//
// The server-side middleware strips the envelope before the application
// handler runs, so handlers and at-most-once recorders always see the bare
// payload. A peer without the middleware sees an unknown first opcode byte
// (0x9D collides with no control-plane op) and rejects the call cleanly.
var wireMagic = [4]byte{0x9D, 0x7C, 0x01, 0x67}

// WireHeaderSize is the envelope length in bytes.
const WireHeaderSize = 20

// injectWire prepends the envelope carrying sc to payload.
func injectWire(sc SpanContext, payload []byte) []byte {
	out := make([]byte, WireHeaderSize+len(payload))
	copy(out, wireMagic[:])
	binary.BigEndian.PutUint64(out[4:], uint64(sc.Trace))
	binary.BigEndian.PutUint64(out[12:], uint64(sc.Span))
	copy(out[WireHeaderSize:], payload)
	return out
}

// extractWire splits an enveloped payload into the carried span context and
// the bare payload. ok is false when payload carries no envelope.
func extractWire(payload []byte) (SpanContext, []byte, bool) {
	if len(payload) < WireHeaderSize || [4]byte(payload[:4]) != wireMagic {
		return SpanContext{}, payload, false
	}
	sc := SpanContext{
		Trace: TraceID(binary.BigEndian.Uint64(payload[4:])),
		Span:  SpanID(binary.BigEndian.Uint64(payload[12:])),
	}
	return sc, payload[WireHeaderSize:], true
}
