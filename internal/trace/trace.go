// Package trace provides end-to-end operation tracing for the
// disaggregated-memory stack: spans propagated through context.Context inside
// a process and carried across the fabric by a transport middleware, so one
// page fault can be followed swap → placement → replication → transport and
// reassembled into a single timeline.
//
// Determinism contract: span and trace IDs are sequential counters, and every
// timestamp comes from a pluggable clock — simulated time when the context
// carries a des.Proc, the tracer's clock otherwise. A serial DES run
// therefore produces byte-identical traces for the same seed; nothing in this
// package reads the wall clock unless the default clock is left in place.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"godm/internal/des"
)

// TraceID names one end-to-end operation.
type TraceID uint64

// SpanID names one timed step within a trace.
type SpanID uint64

// SpanContext is the propagated (trace, span) pair: the identity a child span
// inherits, locally via context and remotely via the wire envelope.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// SpanRecord is one finished span in the tracer's ring buffer.
type SpanRecord struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for root spans and remote parents from another process's ring
	Name   string
	Start  time.Duration
	End    time.Duration
	Attrs  []string // "key=value", in annotation order
}

// DefaultCapacity is the default size of the finished-span ring buffer.
const DefaultCapacity = 4096

// Tracer allocates span IDs and retains the most recent finished spans in a
// bounded ring buffer for the /trace export surface.
type Tracer struct {
	clock  func() time.Duration
	cap    int
	flight *Flight

	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	head int // next write position
	n    int // filled entries
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock replaces the tracer's clock. Deterministic runs pass the DES
// environment's Now; contexts carrying a des.Proc override this per-span
// anyway, so the tracer clock only matters for spans started outside any
// simulation process.
func WithClock(fn func() time.Duration) Option {
	return func(t *Tracer) {
		if fn != nil {
			t.clock = fn
		}
	}
}

// WithFlight attaches a flight recorder: every finished span is forwarded to
// f, and the end of a local root span (no parent, or a remote parent from
// across the wire) captures the trace's timeline into f's completed ring.
func WithFlight(f *Flight) Option {
	return func(t *Tracer) { t.flight = f }
}

// WithCapacity sets how many finished spans the ring retains (minimum 1).
func WithCapacity(n int) Option {
	return func(t *Tracer) {
		if n < 1 {
			n = 1
		}
		t.cap = n
	}
}

// New returns a tracer. The default clock is wall time since the tracer was
// created.
func New(opts ...Option) *Tracer {
	start := time.Now()
	t := &Tracer{
		clock: func() time.Duration { return time.Since(start) },
		cap:   DefaultCapacity,
	}
	for _, o := range opts {
		o(t)
	}
	t.ring = make([]SpanRecord, t.cap)
	return t
}

type tracerKey struct{}
type spanKey struct{}

// spanCtxVal is the context payload for the active span: its identity plus
// whether it arrived over the wire (a remote parent). The first span started
// under a remote parent is a local root — its end completes the trace as seen
// from this node, which is what the flight recorder captures on.
type spanCtxVal struct {
	sc     SpanContext
	remote bool
}

// WithTracer returns a context that carries tr; Start on that context (and on
// every context derived from it) records spans against tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// SpanContextFrom returns the active span identity carried by ctx.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	v, ok := ctx.Value(spanKey{}).(spanCtxVal)
	return v.sc, ok
}

// withSpanContext marks sc as the active span (the parent of future children).
func withSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanKey{}, spanCtxVal{sc: sc})
}

// withRemoteSpanContext marks sc as the active span and remembers that it
// came from another process — the transport middleware uses this on inbound
// calls so the serve span registers as a local root for the flight recorder.
func withRemoteSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanKey{}, spanCtxVal{sc: sc, remote: true})
}

// clockFor picks the observability clock for ctx: the simulated clock when a
// des.Proc rides the context, the tracer clock otherwise.
func (t *Tracer) clockFor(ctx context.Context) func() time.Duration {
	if p, ok := des.FromContext(ctx); ok {
		return p.Now
	}
	return t.clock
}

// processStart anchors Now's wall-clock fallback; only latency differences
// are ever observed, so the base is irrelevant.
var processStart = time.Now()

// Now returns the observability clock reading for ctx: simulated time when
// ctx carries a des.Proc, otherwise the ctx tracer's clock, otherwise wall
// time since process start. Use it to timestamp latency observations so
// simulated components stay deterministic.
func Now(ctx context.Context) time.Duration {
	if p, ok := des.FromContext(ctx); ok {
		return p.Now()
	}
	if tr := TracerFrom(ctx); tr != nil {
		return tr.clock()
	}
	return time.Since(processStart)
}

// Span is an active (unfinished) span. A nil *Span is a valid no-op, so
// instrumented code never branches on whether tracing is enabled. A span is
// owned by the goroutine that started it.
type Span struct {
	tracer    *Tracer
	now       func() time.Duration
	sc        SpanContext
	parent    SpanID
	localRoot bool // no parent, or the parent is remote: ending completes the trace locally
	name      string
	start     time.Duration
	attrs     []string
}

// Start begins a span named name. When ctx carries no tracer it returns
// (ctx, nil) and the nil span swallows all further calls. The returned
// context carries the new span as the parent for children started from it.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return TracerFrom(ctx).Start(ctx, name)
}

// Start begins a span against this tracer regardless of whether ctx carries
// one — the transport middleware uses this so every fabric operation is
// spanned. A nil tracer returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, now: t.clockFor(ctx), name: name}
	if v, ok := ctx.Value(spanKey{}).(spanCtxVal); ok {
		s.sc.Trace = v.sc.Trace
		s.parent = v.sc.Span
		s.localRoot = v.remote
	} else {
		s.sc.Trace = TraceID(t.nextTrace.Add(1))
		s.localRoot = true
	}
	s.sc.Span = SpanID(t.nextSpan.Add(1))
	s.start = s.now()
	return withSpanContext(ctx, s.sc), s
}

// TraceID returns the span's trace, or zero for a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.sc.Trace
}

// Context returns the span's propagated identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Annotate attaches a key=value attribute to the span.
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, fmt.Sprintf("%s=%v", key, value))
}

// End finishes the span and records it in the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.record(SpanRecord{
		Trace:  s.sc.Trace,
		ID:     s.sc.Span,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    s.now(),
		Attrs:  s.attrs,
	}, s.localRoot)
}

// EndErr annotates the span with err (when non-nil) and finishes it.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Annotate("err", err)
	}
	s.End()
}

func (t *Tracer) record(r SpanRecord, completes bool) {
	t.mu.Lock()
	t.ring[t.head] = r
	t.head = (t.head + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	// Outside the ring lock: the flight recorder takes its own lock and may
	// copy whole timelines.
	t.flight.observe(r, completes)
}

// Flight returns the attached flight recorder; nil for a nil tracer or one
// without a recorder.
func (t *Tracer) Flight() *Flight {
	if t == nil {
		return nil
	}
	return t.flight
}

// records returns the retained spans, oldest first.
func (t *Tracer) records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Spans returns the retained spans of one trace ordered by (Start, ID) —
// the reassembled multi-layer view of a single operation.
func (t *Tracer) Spans(id TraceID) []SpanRecord {
	var out []SpanRecord
	for _, r := range t.records() {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	sortSpans(out)
	return out
}

// TraceIDs returns the distinct trace IDs present in the ring, in order of
// first appearance (oldest trace first).
func (t *Tracer) TraceIDs() []TraceID {
	seen := map[TraceID]bool{}
	var out []TraceID
	for _, r := range t.records() {
		if !seen[r.Trace] {
			seen[r.Trace] = true
			out = append(out, r.Trace)
		}
	}
	return out
}
