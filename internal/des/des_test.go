package des

import (
	"errors"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke time.Duration
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if env.Now() != 5*time.Millisecond {
		t.Fatalf("env.Now() = %v, want 5ms", env.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			env.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Millisecond)
					order = append(order, name)
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}
	first := run()
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i, v := range want {
		if first[i] != v {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, first[i], v, first)
		}
	}
	for trial := 0; trial < 10; trial++ {
		got := run()
		for i := range want {
			if got[i] != first[i] {
				t.Fatalf("trial %d diverged at %d: %v vs %v", trial, i, got, first)
			}
		}
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv()
	var at time.Duration
	env.After(7*time.Second, func() { at = env.Now() })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 7*time.Second {
		t.Fatalf("callback at %v, want 7s", at)
	}
}

func TestGoAfter(t *testing.T) {
	env := NewEnv()
	var started time.Duration
	env.GoAfter(3*time.Second, "late", func(p *Proc) { started = p.Now() })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if started != 3*time.Second {
		t.Fatalf("started at %v, want 3s", started)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
			fired++
		}
	})
	if err := env.RunUntil(4500 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
	if env.Now() != 4500*time.Millisecond {
		t.Fatalf("Now = %v, want 4.5s", env.Now())
	}
	// Resuming runs the rest.
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 10 {
		t.Fatalf("fired = %d after resume, want 10", fired)
	}
}

func TestGateSignalFIFO(t *testing.T) {
	env := NewEnv()
	g := NewGate(env, "g")
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		env.Go(name, func(p *Proc) {
			g.Wait(p)
			order = append(order, name)
		})
	}
	env.Go("signaler", func(p *Proc) {
		p.Sleep(time.Millisecond)
		g.Signal()
		p.Sleep(time.Millisecond)
		g.Broadcast()
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestGateWaitTimeout(t *testing.T) {
	env := NewEnv()
	g := NewGate(env, "g")
	var timedOut, signaled bool
	env.Go("timeout", func(p *Proc) {
		if !g.WaitTimeout(p, 10*time.Millisecond) {
			timedOut = true
		}
	})
	env.Go("lucky", func(p *Proc) {
		p.Sleep(time.Millisecond) // join queue after "timeout" proc
		if g.WaitTimeout(p, time.Hour) {
			signaled = true
		}
	})
	env.Go("signaler", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		g.Signal()
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if !signaled {
		t.Fatal("second waiter should have been signaled")
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	g := NewGate(env, "never")
	env.Go("stuck", func(p *Proc) { g.Wait(p) })
	err := env.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestProcPanicSurfaces(t *testing.T) {
	env := NewEnv()
	env.Go("bomb", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	err := env.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, "disk", 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		env.Go("io", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(10 * time.Millisecond)
			r.Release(1)
			finish = append(finish, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, "nic", 2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		env.Go("io", func(p *Proc) {
			r.Use(p, 1, func() { p.Sleep(10 * time.Millisecond) })
			finish = append(finish, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceAcquireBeyondCapacityPanics(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, "small", 1)
	env.Go("greedy", func(p *Proc) { r.Acquire(p, 2) })
	if err := env.Run(); err == nil {
		t.Fatal("expected panic error for over-capacity acquire")
	}
}

func TestStoreBlocksAndCarriesValues(t *testing.T) {
	env := NewEnv()
	s := NewStore(env, "q", 2)
	var got []int
	env.Go("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			s.Put(p, i)
			p.Sleep(time.Millisecond)
		}
	})
	env.Go("consumer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 5; i++ {
			got = append(got, s.Get(p).(int))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range []int{1, 2, 3, 4, 5} {
		if got[i] != v {
			t.Fatalf("got = %v, want 1..5 in order", got)
		}
	}
}

func TestStoreTryGet(t *testing.T) {
	env := NewEnv()
	s := NewStore(env, "q", 0)
	if _, ok := s.TryGet(); ok {
		t.Fatal("TryGet on empty store should report false")
	}
	env.Go("producer", func(p *Proc) { s.Put(p, "x") })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v, ok := s.TryGet()
	if !ok || v.(string) != "x" {
		t.Fatalf("TryGet = %v, %v; want x, true", v, ok)
	}
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	env := NewEnv()
	// 1 MB/s, 5 ms propagation: a 1000-byte transfer takes 1 ms on the wire
	// plus 5 ms in flight.
	l := NewLink(env, "wire", 5*time.Millisecond, 1e6)
	var finish []time.Duration
	for i := 0; i < 2; i++ {
		env.Go("xfer", func(p *Proc) {
			l.Transfer(p, 1000)
			finish = append(finish, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// First: 1ms serialize + 5ms propagate = 6ms. Second serializes behind the
	// first (starts at 1ms): 2ms + 5ms = 7ms.
	want := []time.Duration{6 * time.Millisecond, 7 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestLinkTransmitDelay(t *testing.T) {
	env := NewEnv()
	l := NewLink(env, "wire", 0, 7e9) // 7 GB/s, RDMA-class
	d := l.TransmitDelay(4096)
	if d <= 0 || d > time.Microsecond {
		t.Fatalf("4KB at 7GB/s = %v, want sub-microsecond positive", d)
	}
}

func TestNestedSpawn(t *testing.T) {
	env := NewEnv()
	var childRan bool
	env.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Env().Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = true
		})
		p.Sleep(5 * time.Millisecond)
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("child process did not run")
	}
}

func TestManyProcessesStress(t *testing.T) {
	env := NewEnv()
	const n = 500
	count := 0
	for i := 0; i < n; i++ {
		i := i
		env.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(i%17) * time.Millisecond)
			count++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestSignalToFinishedWaiterIsSafe(t *testing.T) {
	env := NewEnv()
	g := NewGate(env, "g")
	env.Go("w", func(p *Proc) {
		g.WaitTimeout(p, time.Millisecond)
	})
	env.Go("s", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		g.Signal() // waiter already timed out and exited
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// BenchmarkProcessSwitch measures the scheduler's coroutine handoff cost —
// the simulator's fundamental overhead per charged latency.
func BenchmarkProcessSwitch(b *testing.B) {
	env := NewEnv()
	env.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeap measures raw event scheduling throughput.
func BenchmarkEventHeap(b *testing.B) {
	env := NewEnv()
	for i := 0; i < b.N; i++ {
		env.After(time.Duration(i%1000)*time.Microsecond, func() {})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}
