package des

import "context"

type procKey struct{}

// NewContext returns a context carrying the simulation process p. The
// simulated transport fabric extracts it to charge transfer time to the
// calling process; real transports never look for it.
func NewContext(parent context.Context, p *Proc) context.Context {
	return context.WithValue(parent, procKey{}, p)
}

// FromContext extracts the simulation process from ctx, if present.
func FromContext(ctx context.Context) (*Proc, bool) {
	p, ok := ctx.Value(procKey{}).(*Proc)
	return p, ok
}
