// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel provides a virtual clock, lightweight process coroutines, and
// simulation-time synchronization primitives (gates, FIFO resources, stores,
// and bandwidth links). Every benchmark in this repository that reports a
// "completion time" runs on this kernel, so results are reproducible across
// machines: simulated time advances only through explicit event scheduling,
// and simultaneous events are ordered by a monotonically increasing sequence
// number.
//
// Processes are ordinary goroutines synchronized with the scheduler through a
// single run token: exactly one process (or the scheduler) executes at any
// moment, which means process bodies may touch shared simulation state
// without locks.
package des

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrDeadlock is returned by Run when no events remain but one or more
// processes are still blocked on a Gate, Resource, or Store.
var ErrDeadlock = errors.New("des: deadlock: blocked processes remain")

// event is one scheduled occurrence. Most events carry a closure in fn;
// wake events (the Sleep fast path) instead carry the process to dispatch in
// proc, so the busiest event in the kernel — a process sleeping — costs no
// allocation: the event rides by value in the heap's backing array.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	proc *Proc
}

type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // drop fn/proc references so the vacated slot pins nothing
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Env is a simulation environment. The zero value is not usable; construct
// with NewEnv.
type Env struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	live    int
	blocked map[*Proc]string
	failure error
	running bool
}

// NewEnv returns an empty simulation environment positioned at time zero.
func NewEnv() *Env {
	return &Env{
		yield:   make(chan struct{}),
		blocked: map[*Proc]string{},
	}
}

// Now reports the current simulated time.
func (e *Env) Now() time.Duration { return e.now }

// schedule enqueues fn to run at absolute simulated time at.
func (e *Env) schedule(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// scheduleWake enqueues a closure-free wake of p at absolute time at; the
// scheduler dispatches p directly when the event fires.
func (e *Env) scheduleWake(at time.Duration, p *Proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p})
}

// After schedules fn to run after delay d of simulated time. fn executes in
// scheduler context and must not block; use Go for blocking work.
func (e *Env) After(d time.Duration, fn func()) {
	e.schedule(e.now+d, fn)
}

// Proc is a simulation process. A Proc's methods must only be called from
// within the process's own body function.
type Proc struct {
	env  *Env
	name string
	wake chan struct{}
	done bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulated time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Go spawns a new process at the current simulated time.
func (e *Env) Go(name string, body func(p *Proc)) {
	e.GoAfter(0, name, body)
}

// GoAfter spawns a new process after delay d of simulated time.
func (e *Env) GoAfter(d time.Duration, name string, body func(p *Proc)) {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.live++
	e.schedule(e.now+d, func() {
		go p.run(body)
		<-e.yield
	})
}

func (p *Proc) run(body func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if p.env.failure == nil {
				p.env.failure = fmt.Errorf("des: process %q panicked: %v", p.name, r)
			}
		}
		p.done = true
		p.env.live--
		p.env.yield <- struct{}{}
	}()
	body(p)
}

// pause hands the run token back to the scheduler and blocks until the
// scheduler wakes this process again.
func (p *Proc) pause() {
	p.env.yield <- struct{}{}
	<-p.wake
}

// dispatch wakes proc p and blocks the scheduler until p yields again.
func (e *Env) dispatch(p *Proc) {
	p.wake <- struct{}{}
	<-e.yield
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	e.scheduleWake(e.now+d, p)
	p.pause()
}

// Yield suspends the process until all other events scheduled for the current
// instant have run.
func (p *Proc) Yield() { p.Sleep(0) }

// Run drives the simulation until the event queue drains or a process
// panics. It returns ErrDeadlock (wrapped with the blocked process names) if
// blocked processes remain, or the panic error if a process panicked.
func (e *Env) Run() error { return e.RunUntil(-1) }

// RunUntil drives the simulation until the event queue drains or the clock
// would pass horizon (exclusive). A negative horizon means no limit. Events
// scheduled beyond the horizon remain queued.
func (e *Env) RunUntil(horizon time.Duration) error {
	if e.running {
		return errors.New("des: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		if e.failure != nil {
			return e.failure
		}
		next := e.events[0]
		if horizon >= 0 && next.at > horizon {
			e.now = horizon
			return nil
		}
		e.events.pop()
		e.now = next.at
		if next.proc != nil {
			if !next.proc.done {
				e.dispatch(next.proc)
			}
			continue
		}
		next.fn()
	}
	if e.failure != nil {
		return e.failure
	}
	if e.live > 0 {
		names := make([]string, 0, len(e.blocked))
		for _, n := range e.blocked {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("%w: %d live, blocked: %v", ErrDeadlock, e.live, names)
	}
	return nil
}

// Gate is a simulation-time condition variable: processes Wait on it and are
// released in FIFO order by Signal or Broadcast. The zero value is unusable;
// construct with NewGate.
type Gate struct {
	env     *Env
	name    string
	waiters []*gateWaiter
}

type gateWaiter struct {
	p        *Proc
	signaled bool
	timedOut bool
}

// NewGate returns a named gate bound to env.
func NewGate(env *Env, name string) *Gate {
	return &Gate{env: env, name: name}
}

// Wait blocks the process until Signal or Broadcast releases it.
func (g *Gate) Wait(p *Proc) {
	w := &gateWaiter{p: p}
	g.waiters = append(g.waiters, w)
	g.env.blocked[p] = p.name + "@" + g.name
	p.pause()
	delete(g.env.blocked, p)
}

// WaitTimeout blocks the process until released or until d elapses. It
// reports whether the process was released by a signal (true) as opposed to
// timing out (false).
func (g *Gate) WaitTimeout(p *Proc, d time.Duration) bool {
	w := &gateWaiter{p: p}
	g.waiters = append(g.waiters, w)
	g.env.blocked[p] = p.name + "@" + g.name
	g.env.schedule(g.env.now+d, func() {
		if w.signaled || w.timedOut {
			return
		}
		w.timedOut = true
		g.remove(w)
		g.env.dispatch(p)
	})
	p.pause()
	delete(g.env.blocked, p)
	return w.signaled
}

func (g *Gate) remove(target *gateWaiter) {
	for i, w := range g.waiters {
		if w == target {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// Signal releases the oldest waiter, if any. It may be called from process or
// scheduler context.
func (g *Gate) Signal() {
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		if w.timedOut {
			continue
		}
		w.signaled = true
		g.env.schedule(g.env.now, func() {
			if w.p.done {
				return
			}
			g.env.dispatch(w.p)
		})
		return
	}
}

// Broadcast releases all current waiters in FIFO order.
func (g *Gate) Broadcast() {
	n := len(g.waiters)
	for i := 0; i < n; i++ {
		g.Signal()
	}
}

// Len reports the number of processes currently waiting.
func (g *Gate) Len() int { return len(g.waiters) }

// Resource is a counting resource with FIFO admission, modelling contended
// hardware such as a disk head or a NIC engine.
type Resource struct {
	env      *Env
	name     string
	capacity int64
	avail    int64
	waiters  []*resWaiter
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource returns a resource with the given capacity (must be positive).
func NewResource(env *Env, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{env: env, name: name, capacity: capacity, avail: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Available returns the currently unclaimed capacity.
func (r *Resource) Available() int64 { return r.avail }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire claims n units, blocking in FIFO order until they are available.
// n must not exceed capacity.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n > r.capacity {
		panic(fmt.Sprintf("des: acquire %d exceeds capacity %d of %s", n, r.capacity, r.name))
	}
	if len(r.waiters) == 0 && r.avail >= n {
		r.avail -= n
		return
	}
	r.waiters = append(r.waiters, &resWaiter{p: p, n: n})
	r.env.blocked[p] = p.name + "@" + r.name
	p.pause()
	delete(r.env.blocked, p)
}

// Release returns n units and grants queued acquirers in FIFO order.
func (r *Resource) Release(n int64) {
	r.avail += n
	if r.avail > r.capacity {
		r.avail = r.capacity
	}
	for len(r.waiters) > 0 && r.avail >= r.waiters[0].n {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.avail -= w.n
		r.env.schedule(r.env.now, func() {
			if w.p.done {
				return
			}
			r.env.dispatch(w.p)
		})
	}
}

// Use acquires n units, runs fn, and releases, charging fn's simulated
// duration to the caller.
func (r *Resource) Use(p *Proc, n int64, fn func()) {
	r.Acquire(p, n)
	defer r.Release(n)
	fn()
}

// Store is a bounded FIFO queue carrying values between processes in
// simulated time (a simulation-time channel).
type Store struct {
	env      *Env
	name     string
	capacity int
	items    []any
	putGate  *Gate
	getGate  *Gate
}

// NewStore returns a store with the given capacity; capacity <= 0 means
// unbounded.
func NewStore(env *Env, name string, capacity int) *Store {
	return &Store{
		env:      env,
		name:     name,
		capacity: capacity,
		putGate:  NewGate(env, name+".put"),
		getGate:  NewGate(env, name+".get"),
	}
}

// Len reports the number of queued items.
func (s *Store) Len() int { return len(s.items) }

// Put appends v, blocking while the store is full.
func (s *Store) Put(p *Proc, v any) {
	for s.capacity > 0 && len(s.items) >= s.capacity {
		s.putGate.Wait(p)
	}
	s.items = append(s.items, v)
	s.getGate.Signal()
}

// Get removes and returns the oldest item, blocking while the store is empty.
func (s *Store) Get(p *Proc) any {
	for len(s.items) == 0 {
		s.getGate.Wait(p)
	}
	v := s.items[0]
	s.items = s.items[1:]
	s.putGate.Signal()
	return v
}

// TryGet removes and returns the oldest item without blocking. The second
// result reports whether an item was available.
func (s *Store) TryGet() (any, bool) {
	if len(s.items) == 0 {
		return nil, false
	}
	v := s.items[0]
	s.items = s.items[1:]
	s.putGate.Signal()
	return v, true
}

// Link models a serialized transmission medium with fixed propagation latency
// and finite bandwidth. Transfers serialize on the medium (FIFO) for their
// transmission delay; propagation overlaps with subsequent transfers.
type Link struct {
	env         *Env
	name        string
	latency     time.Duration
	bytesPerSec float64
	medium      *Resource
}

// NewLink returns a link with the given one-way propagation latency and
// bandwidth in bytes per second (must be positive).
func NewLink(env *Env, name string, latency time.Duration, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic("des: link bandwidth must be positive")
	}
	return &Link{
		env:         env,
		name:        name,
		latency:     latency,
		bytesPerSec: bytesPerSec,
		medium:      NewResource(env, name+".medium", 1),
	}
}

// TransmitDelay returns the serialization delay for a payload of n bytes.
func (l *Link) TransmitDelay(n int64) time.Duration {
	return time.Duration(float64(n) / l.bytesPerSec * float64(time.Second))
}

// Transfer moves n bytes across the link, charging serialization plus
// propagation to the calling process.
func (l *Link) Transfer(p *Proc, n int64) {
	l.medium.Acquire(p, 1)
	p.Sleep(l.TransmitDelay(n))
	l.medium.Release(1)
	p.Sleep(l.latency)
}

// Latency returns the configured one-way propagation latency.
func (l *Link) Latency() time.Duration { return l.latency }
