package des

import (
	"fmt"
	"testing"
	"time"
)

// TestLinkSaturationAtBandwidth drives a link with more offered load than it
// can carry and checks it behaves like a token bucket draining at exactly the
// configured rate: transfers serialize FIFO, the wire never idles while work
// is queued, and the makespan is total-bytes-over-bandwidth plus one final
// propagation delay.
func TestLinkSaturationAtBandwidth(t *testing.T) {
	env := NewEnv()
	const (
		bandwidth = 1e6 // 1 MB/s
		latency   = 5 * time.Millisecond
	)
	l := NewLink(env, "wire", latency, bandwidth)
	sizes := []int64{1000, 4000, 2000, 8000, 500, 16000, 1000, 3500}
	var total int64
	finish := make([]time.Duration, len(sizes))
	for i, n := range sizes {
		i, n := i, n
		total += n
		env.Go(fmt.Sprintf("xfer%d", i), func(p *Proc) {
			l.Transfer(p, n)
			finish[i] = p.Now()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	// FIFO service: all transfers start at t=0, so transfer i finishes after
	// the serialization of sizes[0..i] plus its own propagation.
	var onWire time.Duration
	for i, n := range sizes {
		onWire += l.TransmitDelay(n)
		if want := onWire + latency; finish[i] != want {
			t.Errorf("transfer %d (%d B) finished at %v, want %v", i, n, finish[i], want)
		}
	}
	// Saturation: the last delivery pins aggregate goodput to the configured
	// bandwidth — the wire had no idle gaps.
	makespan := finish[len(finish)-1] - latency
	if want := l.TransmitDelay(total); makespan != want {
		t.Errorf("wire busy for %v moving %d bytes, want exactly %v (no idle, no overdraft)",
			makespan, total, want)
	}
	if got := float64(total) / makespan.Seconds(); got < bandwidth*0.999 || got > bandwidth*1.001 {
		t.Errorf("goodput %.0f B/s, want the configured %.0f B/s", got, bandwidth)
	}
}

// TestLinkBacklogDrainsAfterBurst staggers arrivals so a burst builds a queue,
// then checks the backlog drains at line rate: a transfer arriving at a busy
// wire waits exactly for the residual work ahead of it, and one arriving at an
// idle wire starts immediately.
func TestLinkBacklogDrainsAfterBurst(t *testing.T) {
	env := NewEnv()
	l := NewLink(env, "wire", 0, 1000) // 1000 B/s: n bytes = n milliseconds
	var finish []time.Duration
	xfer := func(start time.Duration, n int64) {
		env.GoAfter(start, "xfer", func(p *Proc) {
			l.Transfer(p, n)
			finish = append(finish, p.Now())
		})
	}
	// Burst at t=0 totalling 3s of wire time, then a latecomer at t=1s (queued
	// behind 2s of residual work) and a straggler at t=10s (idle wire).
	xfer(0, 1000)
	xfer(0, 2000)
	xfer(time.Second, 500)
	xfer(10*time.Second, 250)
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{
		1 * time.Second,                       // burst head
		3 * time.Second,                       // 2000 B behind 1000 B
		3500 * time.Millisecond,               // latecomer drains right behind the burst
		10*time.Second + 250*time.Millisecond, // straggler finds the wire idle
	}
	if len(finish) != len(want) {
		t.Fatalf("finish = %v, want %d entries", finish, len(want))
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("completion %d at %v, want %v (full: %v)", i, finish[i], want[i], finish)
		}
	}
}

// TestEqualTimestampTieBreakIsScheduleOrder pins the scheduler's tie rule:
// events with the same simulated timestamp run in the order they were
// scheduled, regardless of source (callback or process wake-up), and the
// order is identical on every run. Higher layers — simnet delivery, the chaos
// trace — inherit their determinism from exactly this property.
func TestEqualTimestampTieBreakIsScheduleOrder(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		// Interleave the two event sources while scheduling, all for t=1ms.
		for i := 0; i < 5; i++ {
			i := i
			env.After(time.Millisecond, func() {
				order = append(order, fmt.Sprintf("after%d", i))
			})
			env.Go(fmt.Sprintf("proc%d", i), func(p *Proc) {
				p.Sleep(time.Millisecond)
				order = append(order, fmt.Sprintf("proc%d", i))
			})
		}
		if err := env.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}

	first := run()
	// The After callbacks were pushed at t=1ms during scheduling; the procs
	// start at t=0 (spawn order) and re-enter the heap at t=1ms only when
	// their Sleep begins — so every callback precedes every wake-up, and each
	// group preserves its own schedule order.
	want := []string{
		"after0", "after1", "after2", "after3", "after4",
		"proc0", "proc1", "proc2", "proc3", "proc4",
	}
	if len(first) != len(want) {
		t.Fatalf("order = %v, want %d entries", first, len(want))
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, first[i], want[i], first)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d diverged at %d: %v vs %v", trial, i, got, first)
			}
		}
	}
}

// TestEqualTimestampResourceHandoffIsFIFO checks the tie rule through a
// contended resource: waiters released at the same instant acquire in arrival
// order, never by accident of map or goroutine scheduling.
func TestEqualTimestampResourceHandoffIsFIFO(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "slot", 1)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			res.Acquire(p, 1)
			order = append(order, i)
			// Zero-duration hold: every release and the next acquisition land
			// on the same timestamp.
			p.Yield()
			res.Release(1)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("acquisition order %v not FIFO", order)
		}
	}
}
