package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/metrics"
	"godm/internal/simnet"
	"godm/internal/transport"
)

func TestHeartbeatDigestWireBackCompat(t *testing.T) {
	// A digest-free heartbeat decodes from both the legacy 9-byte frame and
	// the new frame with an empty digest set.
	legacy := make([]byte, 9)
	legacy[0] = opHeartbeat
	legacy[8] = 42
	r, err := decodeHeartbeatReq(legacy)
	if err != nil || r.FreeBytes != 42 || r.Digests != nil {
		t.Fatalf("legacy decode = %+v, %v", r, err)
	}
	reg := metrics.NewRegistry("core/node-3")
	reg.Counter("remote_allocs").Add(7)
	nd := metrics.NodeDigest{Node: 3, Seq: 9, D: metrics.DigestRegistries(map[string]*metrics.Registry{"core": reg})}
	b := encodeHeartbeatReq(heartbeatReq{FreeBytes: 5, Digests: []metrics.NodeDigest{nd}})
	got, err := decodeHeartbeatReq(b)
	if err != nil || got.FreeBytes != 5 || len(got.Digests) != 1 {
		t.Fatalf("decode = %+v, %v", got, err)
	}
	if got.Digests[0].Node != 3 || got.Digests[0].Seq != 9 ||
		got.Digests[0].D.Counters["core/remote_allocs"] != 7 {
		t.Fatalf("digest lost in transit: %+v", got.Digests[0])
	}
	// A legacy decoder reading only the fixed header still sees the frame.
	if b[0] != opHeartbeat || len(b) < 9 {
		t.Fatalf("frame header changed: % x", b[:9])
	}
}

func TestClusterRespRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry("core/node-1")
	reg.Counter("remote_puts").Add(2)
	set := []metrics.NodeDigest{
		{Node: 1, Seq: 4, D: metrics.DigestRegistries(map[string]*metrics.Registry{"core": reg})},
	}
	got, err := decodeClusterResp(encodeClusterResp(set))
	if err != nil || len(got) != 1 || got[0].D.Counters["core/remote_puts"] != 2 {
		t.Fatalf("cluster resp round trip = %+v, %v", got, err)
	}
	if _, err := decodeClusterResp(errorResp(ErrNoSpace)); err == nil {
		t.Fatal("error response decoded as success")
	}
}

// TestTreeHeartbeatDigestAggregation runs per-node directories connected only
// by the heartbeat tree and asserts the observability plane converges: after
// two rounds (member→leader, leader→root) the root's store covers every
// node, and its aggregated op counters exactly equal the sum over members.
func TestTreeHeartbeatDigestAggregation(t *testing.T) {
	const n = 6
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	nodes := make([]*Node, 0, n)
	for i := 1; i <= n; i++ {
		id := transport.NodeID(i)
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 3, HeartbeatTimeout: 3})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(smallConfig(id), ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for _, node := range nodes {
		for j := 1; j <= n; j++ {
			node.dir.Join(cluster.NodeID(j), 1<<20)
		}
	}
	client := NewClient(nodes[0].ep)
	env.Go("sim", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		// Spread traffic so every node past the first hosts blocks.
		data := bytes.Repeat([]byte{0xAB}, 1024)
		for i := 2; i <= n; i++ {
			for k := 0; k < i; k++ {
				if err := client.Put(ctx, transport.NodeID(i), uint64(100*i+k), data); err != nil {
					t.Errorf("Put to node %d: %v", i, err)
					return
				}
			}
		}
		// Two full tree rounds propagate member digests to the root (plus one
		// slack round for leader stores folding before their root beat).
		for round := 0; round < 3; round++ {
			for _, node := range nodes {
				node.TreeHeartbeat(ctx)
				node.TickWatched()
			}
		}
		root, ok := nodes[0].dir.RootLeader()
		if !ok {
			t.Error("no root leader")
			return
		}
		rootNode := nodes[int(root)-1]
		view := rootNode.ClusterView()
		if len(view) != n {
			t.Errorf("root view has %d contributors, want %d", len(view), n)
			return
		}
		agg, err := metrics.Aggregate(view)
		if err != nil {
			t.Errorf("aggregate: %v", err)
			return
		}
		var wantAllocs int64
		for _, node := range nodes {
			wantAllocs += node.reg.Counter("remote_allocs").Value()
		}
		if got := agg.Counters["core/remote_allocs"]; got != wantAllocs {
			t.Errorf("aggregated remote_allocs = %d, want %d (sum over members)", got, wantAllocs)
		}
		// Staleness: every relayed digest is at most a couple of rounds old.
		for _, nd := range view {
			if nd.Age > 3 {
				t.Errorf("node %d digest age %d, want <= 3", nd.Node, nd.Age)
			}
		}
		// Piggyback sets stay O(group): a member sends 1 digest, a group
		// leader at most 1+groupSize to the root.
		self := cluster.NodeID(nodes[0].cfg.ID)
		selfDigest := nodes[0].refreshDigest()
		for _, target := range nodes[0].dir.TreeTargets(self) {
			if got := len(nodes[0].digestsFor(target, selfDigest)); got > 4 {
				t.Errorf("digest set to %d has %d entries, want <= 1+groupSize", target, got)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSLOWiring drives a remote put/get through a vserver and checks the SLO
// instruments attribute the ops, so the digest plane has op-family figures.
func TestSLOWiring(t *testing.T) {
	tc := newTestCluster(t, 3, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.ReplicationFactor = 2
		// Zero-RTT objectives under simnet latency: every op blows its SLO,
		// proving the bad counters and slow-span marking fire.
		cfg.Objectives = metrics.Objectives{"get": time.Nanosecond, "put": time.Nanosecond}
		return cfg
	})
	vs, err := tc.nodes[0].AddServer("vm0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x7F}, 2048)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := vs.PutRemote(ctx, 5, data, 2048, len(data)); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		if _, _, err := vs.Get(ctx, 5); err != nil {
			t.Errorf("Get: %v", err)
			return
		}
	})
	reg := tc.nodes[0].Metrics()
	if bad := reg.Counter("op_put_bad").Value(); bad != 1 {
		t.Errorf("op_put_bad = %d, want 1", bad)
	}
	if bad := reg.Counter("op_get_bad").Value(); bad != 1 {
		t.Errorf("op_get_bad = %d, want 1", bad)
	}
	if c := reg.Histogram("op_put_latency").Count(); c != 1 {
		t.Errorf("op_put_latency count = %d, want 1", c)
	}
	// The default-objective path counts fast ops as good.
	tc2 := newTestCluster(t, 3, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.ReplicationFactor = 2
		return cfg
	})
	vs2, err := tc2.nodes[0].AddServer("vm0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	tc2.run(t, func(ctx context.Context, p *des.Proc) {
		if err := vs2.PutRemote(ctx, 6, data, 2048, len(data)); err != nil {
			t.Errorf("PutRemote: %v", err)
		}
	})
	reg2 := tc2.nodes[0].Metrics()
	if good := reg2.Counter("op_put_good").Value(); good != 1 {
		t.Errorf("op_put_good = %d, want 1 (default objective covers simnet RTT)", good)
	}
}

// An attached registry (a co-located swap engine's, here) rides the node's
// digest to the tree root, so `dmctl top` at the root renders its tier
// balance next to the core instruments.
func TestAttachedRegistryReachesRootDigest(t *testing.T) {
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	nodes := make([]*Node, 0, 3)
	for i := 1; i <= 3; i++ {
		id := transport.NodeID(i)
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 3, HeartbeatTimeout: 3})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(smallConfig(id), ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for _, node := range nodes {
		for j := 1; j <= 3; j++ {
			node.dir.Join(cluster.NodeID(j), 1<<20)
		}
	}
	swapReg := metrics.NewRegistry("swap/node-2")
	swapReg.Gauge("tier_shared_pages").Set(12)
	swapReg.Gauge("tier_disk_pages").Set(3)
	swapReg.Counter("tier_demotions").Add(4)
	nodes[1].AttachDigestRegistry("swap", swapReg)

	env.Go("sim", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		for round := 0; round < 3; round++ {
			for _, node := range nodes {
				node.TreeHeartbeat(ctx)
				node.TickWatched()
			}
		}
		root, ok := nodes[0].dir.RootLeader()
		if !ok {
			t.Error("no root leader")
			return
		}
		view := nodes[root-1].ClusterView()
		var found bool
		for _, nd := range view {
			if nd.Node != 2 {
				continue
			}
			found = true
			if nd.D.Gauges["swap/tier_shared_pages"] != 12 {
				t.Errorf("tier gauge lost: %+v", nd.D.Gauges)
			}
			if nd.D.Counters["swap/tier_demotions"] != 4 {
				t.Errorf("tier counter lost: %+v", nd.D.Counters)
			}
		}
		if !found {
			t.Error("node 2's digest never reached the root")
		}
		var sb bytes.Buffer
		if err := metrics.RenderClusterView(&sb, view); err != nil {
			t.Errorf("render: %v", err)
			return
		}
		out := sb.String()
		if !bytes.Contains([]byte(out), []byte("tier balance (pages):")) {
			t.Errorf("rendered view missing tier section:\n%s", out)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
