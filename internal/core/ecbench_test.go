package core

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/faulty"
	"godm/internal/metrics"
	"godm/internal/placement"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

// ecBenchPayload is the per-entry payload for the striped-read/write
// benchmarks: large enough that RS(4,2)'s 16 KiB shards carry real data, the
// same size the codec benchmarks in internal/ec use.
const ecBenchPayload = 64 << 10

// ecBenchRig is one owner node plus seven donor peers over loopback TCP,
// with every owner-issued verb delayed by the emulated 1 ms fabric RTT (the
// same middleware and figure as the data-plane benchmarks — loopback has no
// propagation delay, and RTT is exactly what the scatter fan-out and the
// hedge timer exist to hide). The owner runs the durability policy under
// test; the injector doubles as the donor-crash/slow-donor lever.
type ecBenchRig struct {
	owner *Node
	vs    *VirtualServer
	inj   *faulty.Injector
}

func newECBenchRig(b *testing.B, durability string, obj metrics.Objectives) *ecBenchRig {
	b.Helper()
	const n = 8
	inj := faulty.New(1)
	inj.AddRule(faulty.Rule{Kind: faulty.KindDelay, Verb: faulty.VerbAny,
		From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100, Delay: time.Millisecond})

	addrs := map[transport.NodeID]string{}
	var eps []*tcpnet.Endpoint
	for i := 1; i <= n; i++ {
		ep, err := tcpnet.Listen(transport.NodeID(i), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		eps = append(eps, ep)
		addrs[ep.ID()] = ep.Addr()
		b.Cleanup(func() { _ = ep.Close() })
	}
	rig := &ecBenchRig{inj: inj}
	for i, ep := range eps {
		for id, addr := range addrs {
			if id != ep.ID() {
				ep.AddPeer(id, addr)
			}
		}
		dir, err := cluster.NewDirectory(cluster.Config{GroupSize: n, HeartbeatTimeout: 3})
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j <= n; j++ {
			dir.Join(cluster.NodeID(j), 64<<20)
		}
		cfg := Config{
			ID: ep.ID(), SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
			RecvPoolBytes: 64 << 20, SlabSize: 1 << 20, ReplicationFactor: 3,
		}
		var fabric transport.Endpoint = ep
		if i == 0 {
			cfg.Durability = durability
			cfg.Balancer = placement.NewRoundRobin() // deterministic stripe sets
			cfg.Objectives = obj
			fabric = inj.Wrap(ep)
		}
		node, err := NewNode(cfg, fabric, dir)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rig.owner = node
			vs, err := node.AddServer("ec-bench", 0)
			if err != nil {
				b.Fatal(err)
			}
			rig.vs = vs
		}
	}
	return rig
}

// seedEntry stripes one payload and returns it with the holder set.
func (rig *ecBenchRig) seedEntry(b *testing.B, ctx context.Context) ([]byte, []transport.NodeID) {
	b.Helper()
	payload := make([]byte, ecBenchPayload)
	rand.New(rand.NewSource(7)).Read(payload)
	if err := rig.vs.PutRemote(ctx, 1, payload, ecBenchPayload, ecBenchPayload); err != nil {
		b.Fatal(err)
	}
	loc, err := rig.vs.Location(1)
	if err != nil {
		b.Fatal(err)
	}
	holders := []transport.NodeID{transport.NodeID(loc.Primary)}
	for _, r := range loc.Replicas {
		holders = append(holders, transport.NodeID(r))
	}
	return payload, holders
}

// benchECRead times remote reads of one striped entry, optionally with the
// first holder (shard 0 for rs, the primary copy for rf) crashed so every
// read takes the degraded path: replica failover under rf, parity
// reconstruction under rs.
func benchECRead(b *testing.B, durability string, degraded bool) {
	rig := newECBenchRig(b, durability, nil)
	ctx := context.Background()
	payload, holders := rig.seedEntry(b, ctx)
	if degraded {
		rig.inj.Crash(holders[0])
	}
	got, _, err := rig.vs.Get(ctx, 1)
	if err != nil {
		b.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		b.Fatal("read returned wrong bytes")
	}
	b.SetBytes(ecBenchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rig.vs.Get(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECReadRTT is the striped-read comparison in BENCH_ec.json:
// healthy and degraded remote reads under RS(4,2) versus triple replication,
// 64 KiB entries, 1 ms emulated fabric RTT. Acceptance: the rs degraded
// (reconstruct-on-read) figure stays within 2x the rs healthy figure.
func BenchmarkECReadRTT(b *testing.B) {
	for _, tc := range []struct {
		name       string
		durability string
		degraded   bool
	}{
		{"policy=rf3/healthy", "rf3", false},
		{"policy=rf3/degraded", "rf3", true},
		{"policy=rs4.2/healthy", "rs4.2", false},
		{"policy=rs4.2/degraded", "rs4.2", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchECRead(b, tc.durability, tc.degraded)
		})
	}
}

// BenchmarkECWriteRTT times steady-state remote writes (in-place overwrites
// after the first put reserves the blocks): a 6-shard encode + scatter under
// RS(4,2) against a 3-copy fan-out under rf3, same payload, same fabric.
func BenchmarkECWriteRTT(b *testing.B) {
	for _, durability := range []string{"rf3", "rs4.2"} {
		b.Run("policy="+durability, func(b *testing.B) {
			rig := newECBenchRig(b, durability, nil)
			ctx := context.Background()
			payload, _ := rig.seedEntry(b, ctx)
			b.SetBytes(ecBenchPayload)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rig.vs.PutRemote(ctx, 1, payload, ecBenchPayload, ecBenchPayload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkECReadHedgedTailRTT measures what the SLO-derived hedge timer
// buys: one data-shard donor turns slow (+20 ms per verb on top of the 1 ms
// RTT), and every read must either wait it out (hedge=off: the empty
// objective set disables the timer) or cut over to parity when the timer —
// derived from the get SLO, 4x the 1 ms RTT — fires (hedge=on). The p99 is
// reported per run; acceptance is hedge=on p99 well under the slow donor's
// 21 ms floor.
func BenchmarkECReadHedgedTailRTT(b *testing.B) {
	for _, tc := range []struct {
		name string
		obj  metrics.Objectives
	}{
		{"hedge=off", metrics.Objectives{}},
		{"hedge=on", nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rig := newECBenchRig(b, "rs4.2", tc.obj)
			ctx := context.Background()
			payload, holders := rig.seedEntry(b, ctx)
			// Slow, not dead: the fetch succeeds if waited on, so only the
			// hedge timer (never an error) can trigger the parity path.
			rig.inj.AddRule(faulty.Rule{Kind: faulty.KindDelay, Verb: faulty.VerbAny,
				From: faulty.AnyNode, To: holders[0], Pct: 100, Delay: 20 * time.Millisecond})
			got, _, err := rig.vs.Get(ctx, 1)
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				b.Fatal("read returned wrong bytes")
			}
			b.SetBytes(ecBenchPayload)
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, _, err := rig.vs.Get(ctx, 1); err != nil {
					b.Fatal(err)
				}
				lats = append(lats, time.Since(start))
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p99 := lats[len(lats)*99/100]
			b.ReportMetric(float64(p99)/1e6, "p99-ms")
		})
	}
}
