package core

import (
	"context"
	"fmt"

	"godm/internal/cluster"
	"godm/internal/transport"
)

// maxRedirects caps how many stRedirect hops one read will chase. Two is
// enough for the worst sanctioned chain — a block migrated in a drain whose
// successor then drained itself — and the scale suite asserts the cluster
// never produces a longer one.
const maxRedirects = 2

// Map exposes the client's epoch-versioned snapshot of the cluster memory
// map (leaders, groups, liveness). It starts empty; SyncMap fills it.
func (c *Client) Map() *cluster.ClientMap { return c.cm }

// Redirects reports how many redirect hops this client's reads have followed
// since creation.
func (c *Client) Redirects() int64 { return c.redirects.Load() }

// SyncMap refreshes the client's memory-map snapshot from node: the client
// states the origin and epoch it already holds, and the node answers with
// just the deltas recorded since — O(churn) bytes, not O(cluster) — or a
// full snapshot when the client is cold, behind by too much, or switching
// origins.
func (c *Client) SyncMap(ctx context.Context, node transport.NodeID) error {
	resp, err := c.ep.Call(ctx, node, encodeMapSyncReq(c.cm.Request()))
	if err != nil {
		return fmt.Errorf("core: map sync from node %d: %w", node, err)
	}
	sr, err := decodeMapSyncResp(resp)
	if err != nil {
		return err
	}
	return c.cm.Apply(sr)
}

// homeOf resolves where the block behind h actually lives: the node the
// entry was put to, unless a followed redirect recorded a newer home.
func homeOf(ck clientKey, h clientHandle) transport.NodeID {
	if h.home != 0 {
		return h.home
	}
	return ck.node
}

// readEntry is the redirect-aware read path behind Get and GetInto. The
// common case is one optimistic one-sided read straight from the recorded
// home — a draining host keeps migrated bytes intact (it refuses new
// allocations), so even a stale-epoch read returns correct data. The client
// probes opLocate only when its synced map says the home is gone, or when
// the optimistic read fails; a redirect answer rewrites the handle so later
// reads go straight to the new home.
func (c *Client) readEntry(ctx context.Context, ck clientKey, h clientHandle, dst []byte) (int, error) {
	node := homeOf(ck, h)
	if c.cm.Synced() && !c.cm.Alive(cluster.NodeID(node)) {
		if nn, noff, moved := c.chase(ctx, node, ck.key, h.offset); moved {
			node, h.offset = nn, noff
			c.rememberHome(ck, node, h.offset)
		}
	}
	n, err := c.getInto(ctx, node, h, dst)
	if err == nil {
		return n, nil
	}
	nn, noff, moved := c.chase(ctx, node, ck.key, h.offset)
	if !moved {
		return 0, err
	}
	node, h.offset = nn, noff
	c.rememberHome(ck, node, h.offset)
	return c.getInto(ctx, node, h, dst)
}

// chase asks node where the block for key at offset lives, following up to
// maxRedirects stRedirect hops, and reports the final location and whether
// it differs from the starting one.
func (c *Client) chase(ctx context.Context, node transport.NodeID, key uint64, offset int64) (transport.NodeID, int64, bool) {
	moved := false
	for hop := 0; hop < maxRedirects; hop++ {
		resp, err := c.ep.Call(ctx, node, encodeLocateReq(locateReq{Key: key, Offset: offset}))
		if err != nil {
			return 0, 0, false
		}
		rd, inPlace, err := decodeLocateResp(resp)
		if err != nil {
			return 0, 0, false
		}
		if inPlace {
			return node, offset, moved
		}
		c.redirects.Add(1)
		node, offset, moved = rd.Node, rd.Offset, true
	}
	return node, offset, moved
}

// rememberHome rewrites the stored handle after a followed redirect so the
// next read skips the locate round trip.
func (c *Client) rememberHome(ck clientKey, node transport.NodeID, offset int64) {
	c.mu.Lock()
	if h, ok := c.handles[ck]; ok {
		h.home = node
		h.offset = offset
		c.handles[ck] = h
	}
	c.mu.Unlock()
}

// Decommission asks node to drain: migrate every hosted block to alive group
// peers, notify owners, install redirect tombstones, and leave the cluster
// map. It returns the number of blocks migrated. The node keeps answering
// reads, locates, and map syncs until its process exits, so stale clients
// have a window to catch up.
func (c *Client) Decommission(ctx context.Context, node transport.NodeID) (int, error) {
	resp, err := c.ep.Call(ctx, node, encodeDecommissionReq())
	if err != nil {
		return 0, fmt.Errorf("core: decommission node %d: %w", node, err)
	}
	dr, err := decodeDecommissionResp(resp)
	if err != nil {
		return 0, err
	}
	return int(dr.Moved), nil
}

// Harvest asks node to claw back wantBytes of its donated receive pool for
// local use (balloon harvesting): already-empty slabs are dropped first,
// then hosted blocks migrate away — cheapest slabs first — until the target
// is met. The node stays in the cluster with a smaller advertised pool. It
// returns the bytes reclaimed and the number of blocks migrated.
func (c *Client) Harvest(ctx context.Context, node transport.NodeID, wantBytes int64) (int64, int, error) {
	resp, err := c.ep.Call(ctx, node, encodeHarvestReq(harvestReq{WantBytes: wantBytes}))
	if err != nil {
		return 0, 0, fmt.Errorf("core: harvest node %d: %w", node, err)
	}
	hr, err := decodeHarvestResp(resp)
	if err != nil {
		return 0, 0, err
	}
	return hr.Reclaimed, int(hr.Moved), nil
}
