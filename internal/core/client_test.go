package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/faulty"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

func TestClientPutGetDeleteOverSimFabric(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	// A client rides node 1's endpoint to use node 2's donated pool.
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		free, err := client.Stats(ctx, 2)
		if err != nil {
			t.Errorf("Stats: %v", err)
			return
		}
		if free != 1<<20 {
			t.Errorf("free = %d, want 1 MiB", free)
		}
		data := bytes.Repeat([]byte{0x77}, 2048)
		if err := client.Put(ctx, 2, 5, data); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 5)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get = %v, %v", len(got), err)
			return
		}
		if err := client.Delete(ctx, 2, 5); err != nil {
			t.Errorf("Delete: %v", err)
			return
		}
		// Idempotent delete and missing-key get.
		if err := client.Delete(ctx, 2, 5); err != nil {
			t.Errorf("second Delete: %v", err)
		}
		if _, err := client.Get(ctx, 2, 5); err == nil {
			t.Error("Get after delete should fail")
		}
	})
}

func TestClientTinyPayloadUsesMinimumClass(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, []byte("x")); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 1)
		if err != nil || string(got) != "x" {
			t.Errorf("Get = %q, %v", got, err)
		}
	})
	// The host stored it in a 512-byte minimum class.
	if st := tc.nodes[1].RecvPool().Stats(); st.LiveBytes != 512 {
		t.Fatalf("LiveBytes = %d, want 512", st.LiveBytes)
	}
}

func TestClientPutToFullNode(t *testing.T) {
	tc := newTestCluster(t, 2, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.RecvPoolBytes = 4096
		return cfg
	})
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, make([]byte, 4096)); err != nil {
			t.Errorf("first Put: %v", err)
			return
		}
		if err := client.Put(ctx, 2, 2, make([]byte, 4096)); err == nil {
			t.Error("expected error for full node")
		}
	})
}

// TestClientOverwriteFreesDisplacedBlock is the regression test for the
// overwrite leak: re-putting a key used to strand the old block forever.
func TestClientOverwriteFreesDisplacedBlock(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, make([]byte, 2048)); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		// Larger payload: forces a fresh allocation and must free the old
		// 2048-byte block.
		big := bytes.Repeat([]byte{0xAB}, 4096)
		if err := client.Put(ctx, 2, 1, big); err != nil {
			t.Errorf("re-Put: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 1)
		if err != nil || !bytes.Equal(got, big) {
			t.Errorf("Get after grow = %d bytes, %v", len(got), err)
		}
	})
	if st := tc.nodes[1].RecvPool().Stats(); st.LiveBytes != 4096 {
		t.Fatalf("LiveBytes = %d, want 4096 (displaced block leaked)", st.LiveBytes)
	}
}

// TestClientOverwriteReusesBlockInPlace checks that a re-put whose payload
// still fits the reserved class rewrites the block with zero control-plane
// round trips and no new allocation.
func TestClientOverwriteReusesBlockInPlace(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, bytes.Repeat([]byte{1}, 4096)); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		small := bytes.Repeat([]byte{2}, 100)
		if err := client.Put(ctx, 2, 1, small); err != nil {
			t.Errorf("re-Put: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 1)
		if err != nil || !bytes.Equal(got, small) {
			t.Errorf("Get after shrink = %d bytes, %v", len(got), err)
		}
	})
	// Still the original 4096-byte block: no alloc, no free happened.
	if st := tc.nodes[1].RecvPool().Stats(); st.LiveBytes != 4096 {
		t.Fatalf("LiveBytes = %d, want 4096 (in-place reuse)", st.LiveBytes)
	}
}

// xorshift fills buf with deterministic incompressible bytes.
func xorshift(seed uint64, buf []byte) {
	s := seed
	for i := range buf {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		buf[i] = byte(s)
	}
}

func TestClientCompressionRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep, WithCompression(0))
	compressible := bytes.Repeat([]byte("memory disaggregation "), 200) // ~4.4 KiB
	incompressible := make([]byte, 4096)
	xorshift(42, incompressible)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, compressible); err != nil {
			t.Errorf("Put compressible: %v", err)
			return
		}
		if err := client.Put(ctx, 2, 2, incompressible); err != nil {
			t.Errorf("Put incompressible: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 1)
		if err != nil || !bytes.Equal(got, compressible) {
			t.Errorf("Get compressible = %d bytes, %v", len(got), err)
		}
		got, err = client.Get(ctx, 2, 2)
		if err != nil || !bytes.Equal(got, incompressible) {
			t.Errorf("Get incompressible = %d bytes, %v", len(got), err)
		}
	})
	// The compressible entry rests in a class strictly below its raw size;
	// the incompressible one rests raw at exactly 4096.
	st := tc.nodes[1].RecvPool().Stats()
	if st.LiveBytes >= int64(len(compressible))+4096 {
		t.Fatalf("LiveBytes = %d: compression never engaged", st.LiveBytes)
	}
	if st.LiveBytes < 4096+512 {
		t.Fatalf("LiveBytes = %d: suspiciously small", st.LiveBytes)
	}
}

func TestClientBatchRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	const n = 16
	entries := make([]Entry, n)
	for i := range entries {
		data := make([]byte, 1024)
		xorshift(uint64(i+1), data)
		entries[i] = Entry{Key: uint64(i + 1), Data: data}
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.PutAll(ctx, 2, entries); err != nil {
			t.Errorf("PutAll: %v", err)
			return
		}
		got, err := client.GetAll(ctx, 2, keys)
		if err != nil {
			t.Errorf("GetAll: %v", err)
			return
		}
		for _, e := range entries {
			if !bytes.Equal(got[e.Key], e.Data) {
				t.Errorf("key %d: round trip mismatch", e.Key)
			}
		}
		// Single-key Get sees batch-parked entries too.
		one, err := client.Get(ctx, 2, 3)
		if err != nil || !bytes.Equal(one, entries[2].Data) {
			t.Errorf("Get(3) = %d bytes, %v", len(one), err)
		}
		// Overwrite the whole window: displaced blocks must be freed.
		for i := range entries {
			fresh := make([]byte, 1024)
			xorshift(uint64(100+i), fresh)
			entries[i].Data = fresh
		}
		if err := client.PutAll(ctx, 2, entries); err != nil {
			t.Errorf("second PutAll: %v", err)
			return
		}
		got, err = client.GetAll(ctx, 2, keys)
		if err != nil {
			t.Errorf("GetAll after overwrite: %v", err)
			return
		}
		for _, e := range entries {
			if !bytes.Equal(got[e.Key], e.Data) {
				t.Errorf("key %d: overwrite mismatch", e.Key)
			}
		}
		if err := client.DeleteAll(ctx, 2, keys); err != nil {
			t.Errorf("DeleteAll: %v", err)
		}
	})
	if st := tc.nodes[1].RecvPool().Stats(); st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after DeleteAll, want 0", st.LiveBytes)
	}
}

func TestPutAllRejectsDuplicateKeys(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		err := client.PutAll(ctx, 2, []Entry{{Key: 1, Data: []byte("a")}, {Key: 1, Data: []byte("b")}})
		if err == nil {
			t.Error("duplicate keys should fail")
		}
	})
}

// TestPutAllNoSpaceIsAtomic asks for a window bigger than the pool: the
// batch alloc must fail as a unit and reserve nothing.
func TestPutAllNoSpaceIsAtomic(t *testing.T) {
	tc := newTestCluster(t, 2, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.RecvPoolBytes = 8192
		return cfg
	})
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		entries := make([]Entry, 4)
		for i := range entries {
			entries[i] = Entry{Key: uint64(i + 1), Data: make([]byte, 4096)}
		}
		if err := client.PutAll(ctx, 2, entries); !errors.Is(err, ErrRemoteFull) {
			t.Errorf("PutAll err = %v, want ErrRemoteFull", err)
		}
	})
	if st := tc.nodes[1].RecvPool().Stats(); st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after failed batch alloc, want 0", st.LiveBytes)
	}
}

// TestPutAllWriteFailureRollsBack drops every one-sided write so the batch
// fails after its allocation succeeded: the client must release the whole
// reservation and keep the previous version of every key readable.
func TestPutAllWriteFailureRollsBack(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	inj := faulty.New(7)
	inj.AddRule(faulty.Rule{Kind: faulty.KindDrop, Verb: faulty.VerbWrite,
		From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100})
	inj.SetEnabled(false)
	client := NewClient(inj.Wrap(tc.nodes[0].ep))
	old := bytes.Repeat([]byte{0x55}, 1024)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, old); err != nil {
			t.Errorf("seed Put: %v", err)
			return
		}
		inj.SetEnabled(true)
		entries := []Entry{
			{Key: 1, Data: bytes.Repeat([]byte{0x66}, 1024)},
			{Key: 2, Data: bytes.Repeat([]byte{0x77}, 1024)},
		}
		if err := client.PutAll(ctx, 2, entries); err == nil {
			t.Error("PutAll should fail when writes are dropped")
			return
		}
		inj.SetEnabled(false)
		// The old version of key 1 survived; key 2 never appeared.
		got, err := client.Get(ctx, 2, 1)
		if err != nil || !bytes.Equal(got, old) {
			t.Errorf("Get(1) after failed batch = %d bytes, %v", len(got), err)
		}
		if _, err := client.Get(ctx, 2, 2); err == nil {
			t.Error("Get(2) should fail: key 2 was never committed")
		}
	})
	// Only key 1's original block remains; the aborted batch reserved nothing.
	if st := tc.nodes[1].RecvPool().Stats(); st.LiveBytes != 1024 {
		t.Fatalf("LiveBytes = %d after rolled-back batch, want 1024", st.LiveBytes)
	}
}

func TestWindowFlushesWhenFull(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		w, err := client.NewWindow(2, 4, 0)
		if err != nil {
			t.Errorf("NewWindow: %v", err)
			return
		}
		for i := uint64(1); i <= 3; i++ {
			if err := w.Put(ctx, i, []byte{byte(i)}); err != nil {
				t.Errorf("stage %d: %v", i, err)
				return
			}
		}
		if w.Len() != 3 {
			t.Errorf("Len = %d, want 3 (window not yet full)", w.Len())
		}
		if _, err := client.Get(ctx, 2, 1); err == nil {
			t.Error("staged entry should not be remotely readable before flush")
		}
		// Fourth entry fills the window and flushes synchronously.
		if err := w.Put(ctx, 4, []byte{4}); err != nil {
			t.Errorf("filling Put: %v", err)
			return
		}
		if w.Len() != 0 {
			t.Errorf("Len = %d after flush, want 0", w.Len())
		}
		for i := uint64(1); i <= 4; i++ {
			got, err := client.Get(ctx, 2, i)
			if err != nil || len(got) != 1 || got[0] != byte(i) {
				t.Errorf("Get(%d) = %v, %v", i, got, err)
			}
		}
		// Explicit flush of a partial window.
		if err := w.Put(ctx, 5, []byte{5}); err != nil {
			t.Errorf("stage 5: %v", err)
			return
		}
		if err := w.Flush(ctx); err != nil {
			t.Errorf("Flush: %v", err)
			return
		}
		if got, err := client.Get(ctx, 2, 5); err != nil || got[0] != 5 {
			t.Errorf("Get(5) = %v, %v", got, err)
		}
	})
}

// TestWindowTimerFlushOverTCP exercises the wall-clock flush timer against a
// real loopback node (the timer cannot run on simulated time).
func TestWindowTimerFlushOverTCP(t *testing.T) {
	server, err := tcpnet.Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(Config{
		ID: 2, SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
		RecvPoolBytes: 1 << 20, SlabSize: 1 << 20, ReplicationFactor: 1,
	}, server, dir); err != nil {
		t.Fatal(err)
	}
	clientEP, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = clientEP.Close() })
	clientEP.AddPeer(2, server.Addr())

	ctx := context.Background()
	client := NewClient(clientEP)
	w, err := client.NewWindow(2, 100, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(ctx, 1, []byte("timer")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer flush never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := client.Get(ctx, 2, 1)
	if err != nil || string(got) != "timer" {
		t.Fatalf("Get after timer flush = %q, %v", got, err)
	}
}

// cancelOnWrite cancels a caller-side context the moment a one-sided write
// is attempted, modelling a caller that dies exactly as the data plane
// breaks, then delegates to the (fault-injected) inner verbs.
type cancelOnWrite struct {
	transport.Verbs
	cancel context.CancelFunc
}

func (c *cancelOnWrite) WriteRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, off int64, data []byte) error {
	c.cancel()
	return c.Verbs.WriteRegion(ctx, to, region, off, data)
}

// TestPutRollbackSurvivesCancellationOverTCP is the regression test for
// cleanup riding a dying context: the injected fault kills the one-sided
// write at the same instant the caller's context is cancelled, and the
// rollback free must still reach the donor (it runs detached) so nothing
// stays reserved.
func TestPutRollbackSurvivesCancellationOverTCP(t *testing.T) {
	server, err := tcpnet.Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(Config{
		ID: 2, SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
		RecvPoolBytes: 1 << 20, SlabSize: 1 << 20, ReplicationFactor: 1,
	}, server, dir)
	if err != nil {
		t.Fatal(err)
	}
	clientEP, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = clientEP.Close() })
	clientEP.AddPeer(2, server.Addr())

	inj := faulty.New(1)
	inj.AddRule(faulty.Rule{Kind: faulty.KindDrop, Verb: faulty.VerbWrite,
		From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	client := NewClient(&cancelOnWrite{Verbs: inj.Wrap(clientEP), cancel: cancel})

	if err := client.Put(ctx, 2, 1, make([]byte, 4096)); err == nil {
		t.Fatal("Put should fail: write dropped and context cancelled")
	}
	if ctx.Err() == nil {
		t.Fatal("test wiring broken: context was never cancelled")
	}
	if st := node.RecvPool().Stats(); st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d, want 0: rollback free never reached the donor", st.LiveBytes)
	}
}
