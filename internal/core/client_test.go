package core

import (
	"bytes"
	"context"
	"testing"

	"godm/internal/des"
	"godm/internal/transport"
)

func TestClientPutGetDeleteOverSimFabric(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	// A client rides node 1's endpoint to use node 2's donated pool.
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		free, err := client.Stats(ctx, 2)
		if err != nil {
			t.Errorf("Stats: %v", err)
			return
		}
		if free != 1<<20 {
			t.Errorf("free = %d, want 1 MiB", free)
		}
		data := bytes.Repeat([]byte{0x77}, 2048)
		if err := client.Put(ctx, 2, 5, data); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 5)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get = %v, %v", len(got), err)
			return
		}
		if err := client.Delete(ctx, 2, 5); err != nil {
			t.Errorf("Delete: %v", err)
			return
		}
		// Idempotent delete and missing-key get.
		if err := client.Delete(ctx, 2, 5); err != nil {
			t.Errorf("second Delete: %v", err)
		}
		if _, err := client.Get(ctx, 2, 5); err == nil {
			t.Error("Get after delete should fail")
		}
	})
}

func TestClientTinyPayloadUsesMinimumClass(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, []byte("x")); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 1)
		if err != nil || string(got) != "x" {
			t.Errorf("Get = %q, %v", got, err)
		}
	})
	// The host stored it in a 512-byte minimum class.
	if st := tc.nodes[1].RecvPool().Stats(); st.LiveBytes != 512 {
		t.Fatalf("LiveBytes = %d, want 512", st.LiveBytes)
	}
}

func TestClientPutToFullNode(t *testing.T) {
	tc := newTestCluster(t, 2, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.RecvPoolBytes = 4096
		return cfg
	})
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 1, make([]byte, 4096)); err != nil {
			t.Errorf("first Put: %v", err)
			return
		}
		if err := client.Put(ctx, 2, 2, make([]byte, 4096)); err == nil {
			t.Error("expected error for full node")
		}
	})
}
