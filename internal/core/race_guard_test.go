//go:build race

package core

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so zero-alloc contracts are checked only in
// normal builds.
const raceEnabled = true
