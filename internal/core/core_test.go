package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/pagetable"
	"godm/internal/simnet"
	"godm/internal/transport"
)

// testCluster wires n nodes over a simulated fabric sharing one directory.
type testCluster struct {
	env    *des.Env
	fabric *simnet.Fabric
	dir    *cluster.Directory
	nodes  []*Node
}

func newTestCluster(t *testing.T, n int, shape func(id transport.NodeID) Config) *testCluster {
	return newTestClusterGrouped(t, n, n, shape)
}

// newTestClusterGrouped wires n nodes partitioned into groups of groupSize.
func newTestClusterGrouped(t *testing.T, n, groupSize int, shape func(id transport.NodeID) Config) *testCluster {
	t.Helper()
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: groupSize, HeartbeatTimeout: 3})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{env: env, fabric: fabric, dir: dir}
	for i := 1; i <= n; i++ {
		id := transport.NodeID(i)
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := shape(id)
		node, err := NewNode(cfg, ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, node)
	}
	return tc
}

// run executes body as one simulation process.
func (tc *testCluster) run(t *testing.T, body func(ctx context.Context, p *des.Proc)) {
	t.Helper()
	tc.env.Go("test", func(p *des.Proc) {
		body(des.NewContext(context.Background(), p), p)
	})
	if err := tc.env.Run(); err != nil {
		t.Fatal(err)
	}
}

// smallConfig returns a node with a tiny shared pool (2 slabs of 4 KiB) and
// a roomy receive pool, so tests can exercise the overflow path.
func smallConfig(id transport.NodeID) Config {
	return Config{
		ID:                id,
		SharedPoolBytes:   8192,
		SendPoolBytes:     8192,
		RecvPoolBytes:     1 << 20,
		SlabSize:          4096,
		ReplicationFactor: 3,
	}
}

func TestConfigValidation(t *testing.T) {
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, _ := cluster.NewDirectory(cluster.DefaultConfig())
	ep, _ := fabric.Attach(1)
	bad := smallConfig(1)
	bad.RecvPoolBytes = 1000 // not a slab multiple
	if _, err := NewNode(bad, ep, dir); err == nil {
		t.Fatal("expected error for bad recv pool size")
	}
	bad = smallConfig(1)
	bad.ReplicationFactor = 0
	if _, err := NewNode(bad, ep, dir); err == nil {
		t.Fatal("expected error for zero replication factor")
	}
	if _, err := NewNode(smallConfig(1), nil, dir); err == nil {
		t.Fatal("expected error for nil endpoint")
	}
}

func TestAddServerDuplicate(t *testing.T) {
	tc := newTestCluster(t, 1, smallConfig)
	if _, err := tc.nodes[0].AddServer("vm0", 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[0].AddServer("vm0", 1024); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := tc.nodes[0].Server("vm0"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[0].Server("missing"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v, want ErrUnknownServer", err)
	}
}

func TestPutSharedGetRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 1, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{0xAB}, 2000)
		if err := vs.PutShared(7, data, 2048, 4096); err != nil {
			t.Errorf("PutShared: %v", err)
			return
		}
		got, loc, err := vs.Get(ctx, 7)
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		if loc.Tier != pagetable.TierSharedMemory {
			t.Errorf("tier = %v, want shared", loc.Tier)
		}
		if !bytes.Equal(got[:2000], data) {
			t.Error("data mismatch")
		}
	})
}

func TestPutOverflowsToRemote(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		// Shared pool holds 2 blocks of 4096; the third Put must go remote.
		var tiers []pagetable.Tier
		for id := pagetable.EntryID(0); id < 3; id++ {
			data := bytes.Repeat([]byte{byte(id)}, 4096)
			tier, err := vs.Put(ctx, id, data, 4096, 4096)
			if err != nil {
				t.Errorf("Put(%d): %v", id, err)
				return
			}
			tiers = append(tiers, tier)
		}
		if tiers[0] != pagetable.TierSharedMemory || tiers[1] != pagetable.TierSharedMemory {
			t.Errorf("tiers = %v, want first two shared", tiers)
		}
		if tiers[2] != pagetable.TierRemote {
			t.Errorf("third tier = %v, want remote", tiers[2])
		}
		// Remote entry readable, replicated to 3 distinct nodes != self.
		got, loc, err := vs.Get(ctx, 2)
		if err != nil {
			t.Errorf("Get remote: %v", err)
			return
		}
		if got[0] != 2 {
			t.Error("remote data mismatch")
		}
		if len(loc.Replicas) != 2 {
			t.Errorf("replicas = %v, want 2", loc.Replicas)
		}
		seen := map[pagetable.NodeID]bool{loc.Primary: true}
		for _, r := range loc.Replicas {
			if seen[r] {
				t.Errorf("duplicate replica %d", r)
			}
			seen[r] = true
		}
		if seen[pagetable.NodeID(1)] {
			t.Error("self selected as replica")
		}
	})
	st := tc.nodes[0].Stats()
	if st.SharedPuts != 2 || st.RemotePuts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetFailsOverWhenPrimaryPartitioned(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{9}, 4096)
		if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		loc, _ := vs.Location(1)
		tc.fabric.Partition(1, transport.NodeID(loc.Primary))
		got, _, err := vs.Get(ctx, 1)
		if err != nil {
			t.Errorf("Get after partition: %v", err)
			return
		}
		if got[0] != 9 {
			t.Error("data mismatch after failover")
		}
	})
}

func TestPutRemoteAllNodesFullFallsThrough(t *testing.T) {
	tc := newTestCluster(t, 4, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.RecvPoolBytes = 4096 // one block per node
		return cfg
	})
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{1}, 4096)
		// First remote put consumes the single block on all 3 peers.
		if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
			t.Errorf("first PutRemote: %v", err)
			return
		}
		err := vs.PutRemote(ctx, 2, data, 4096, 4096)
		if !errors.Is(err, ErrRemoteFull) {
			t.Errorf("err = %v, want ErrRemoteFull", err)
		}
	})
}

func TestDeleteReleasesRemoteBlocks(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{5}, 4096)
		if err := vs.PutRemote(ctx, 3, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		if tc.nodes[0].remote.handleCount() != 3 {
			t.Errorf("handleCount = %d, want 3", tc.nodes[0].remote.handleCount())
		}
		if err := vs.Delete(ctx, 3); err != nil {
			t.Errorf("Delete: %v", err)
			return
		}
		if tc.nodes[0].remote.handleCount() != 0 {
			t.Errorf("handleCount after delete = %d, want 0", tc.nodes[0].remote.handleCount())
		}
		if _, _, err := vs.Get(ctx, 3); !errors.Is(err, pagetable.ErrNotFound) {
			t.Errorf("Get after delete err = %v, want ErrNotFound", err)
		}
		// Idempotent delete.
		if err := vs.Delete(ctx, 3); err != nil {
			t.Errorf("second Delete: %v", err)
		}
	})
	// The remote blocks were actually freed on the hosts.
	for _, n := range tc.nodes[1:] {
		if st := n.RecvPool().Stats(); st.LiveBlocks != 0 {
			t.Fatalf("node %d recv pool has %d live blocks", n.ID(), st.LiveBlocks)
		}
	}
}

func TestEvictionTriggersRepair(t *testing.T) {
	tc := newTestCluster(t, 5, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{7}, 4096)
		if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		before, _ := vs.Location(1)
		victim := before.Primary
		// The node hosting the primary evicts everything.
		victimNode := tc.nodes[victim-1]
		reclaimed, err := victimNode.EvictRecvSlabs(ctx, 1<<20)
		if err != nil {
			t.Errorf("EvictRecvSlabs: %v", err)
			return
		}
		if reclaimed == 0 {
			t.Error("nothing reclaimed")
			return
		}
		// Owner repairs on next maintenance pass.
		repaired, err := tc.nodes[0].Maintain(ctx)
		if err != nil {
			t.Errorf("Maintain: %v", err)
			return
		}
		if repaired != 1 {
			t.Errorf("repaired = %d, want 1", repaired)
		}
		after, _ := vs.Location(1)
		all := append([]pagetable.NodeID{after.Primary}, after.Replicas...)
		for _, n := range all {
			if n == victim {
				t.Errorf("victim %d still in replica set %v", victim, all)
			}
		}
		if len(all) != 3 {
			t.Errorf("replica set %v, want 3 nodes", all)
		}
		got, _, err := vs.Get(ctx, 1)
		if err != nil || got[0] != 7 {
			t.Errorf("Get after repair = %v, %v", got, err)
		}
	})
	if tc.nodes[0].Stats().RepairsDone != 1 {
		t.Fatalf("RepairsDone = %d, want 1", tc.nodes[0].Stats().RepairsDone)
	}
}

func TestHeartbeatUpdatesCandidates(t *testing.T) {
	tc := newTestCluster(t, 3, smallConfig)
	for _, n := range tc.nodes {
		if err := n.Heartbeat(); err != nil {
			t.Fatal(err)
		}
	}
	cands, err := tc.nodes[0].candidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want 2 (self excluded)", cands)
	}
	for _, c := range cands {
		if c.FreeBytes <= 0 {
			t.Fatalf("candidate %d advertises no memory", c.Node)
		}
	}
}

func TestBroadcastHeartbeat(t *testing.T) {
	tc := newTestCluster(t, 3, smallConfig)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		tc.nodes[0].BroadcastHeartbeat(ctx)
	})
	// Node 0's heartbeat landed in the shared directory via node 1's and
	// node 2's handlers (Join).
	if !tc.dir.Alive(cluster.NodeID(1)) {
		t.Fatal("node 1 not alive after broadcast")
	}
}

func TestBalloonToServer(t *testing.T) {
	tc := newTestCluster(t, 1, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	var granted int64
	vs.SetBalloonCallback(func(b int64) { granted += b })
	// Shared pool is empty (all slabs unregistered): budget moves freely.
	moved, err := tc.nodes[0].BalloonToServer("vm0", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		// No registered slabs yet: ShrinkEmpty releases only registered free
		// slabs, so nothing moves.
		t.Fatalf("moved = %d, want 0 with empty pool", moved)
	}
	// Register slabs by allocating and freeing.
	h, err := tc.nodes[0].SharedPool().Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.nodes[0].SharedPool().Free(h); err != nil {
		t.Fatal(err)
	}
	moved, err = tc.nodes[0].BalloonToServer("vm0", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4096 {
		t.Fatalf("moved = %d, want 4096", moved)
	}
	if granted != 4096 {
		t.Fatalf("callback granted = %d, want 4096", granted)
	}
	if tc.nodes[0].Stats().BalloonedBytes != 4096 {
		t.Fatalf("BalloonedBytes = %d", tc.nodes[0].Stats().BalloonedBytes)
	}
}

func TestPutUpdatesReplaceOldVersion(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		v1 := bytes.Repeat([]byte{1}, 4096)
		v2 := bytes.Repeat([]byte{2}, 4096)
		if err := vs.PutShared(1, v1, 4096, 4096); err != nil {
			t.Errorf("v1: %v", err)
			return
		}
		if err := vs.PutShared(1, v2, 4096, 4096); err != nil {
			t.Errorf("v2: %v", err)
			return
		}
		got, _, err := vs.Get(ctx, 1)
		if err != nil || got[0] != 2 {
			t.Errorf("Get = %v, %v; want v2", got, err)
		}
		// Only one block live: the old version was freed.
		if st := tc.nodes[0].SharedPool().Stats(); st.LiveBlocks != 1 {
			t.Errorf("LiveBlocks = %d, want 1", st.LiveBlocks)
		}
	})
}

func TestCrossServerIsolation(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	vs1, _ := tc.nodes[0].AddServer("vm1", 4096)
	vs2, _ := tc.nodes[0].AddServer("vm2", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		d1 := bytes.Repeat([]byte{0x11}, 4096)
		d2 := bytes.Repeat([]byte{0x22}, 4096)
		if err := vs1.PutRemote(ctx, 42, d1, 4096, 4096); err != nil {
			t.Errorf("vs1 put: %v", err)
			return
		}
		if err := vs2.PutRemote(ctx, 42, d2, 4096, 4096); err != nil {
			t.Errorf("vs2 put: %v", err)
			return
		}
		g1, _, err := vs1.Get(ctx, 42)
		if err != nil || g1[0] != 0x11 {
			t.Errorf("vs1 get = %v, %v", g1, err)
		}
		g2, _, err := vs2.Get(ctx, 42)
		if err != nil || g2[0] != 0x22 {
			t.Errorf("vs2 get = %v, %v", g2, err)
		}
	})
}

// TestFig2AccessPath reproduces the Figure 2 walk-through: a virtual server
// on node A parks a data entry on node B through the RDMC/RDMS path, then
// reads it back with a one-sided RDMA read.
func TestFig2AccessPath(t *testing.T) {
	tc := newTestCluster(t, 2, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.ReplicationFactor = 1 // two-node scenario: single copy on B
		return cfg
	})
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{0x42}, 4096)
		if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		loc, _ := vs.Location(1)
		if loc.Primary != 2 {
			t.Errorf("primary = %d, want node B (2)", loc.Primary)
		}
		got, _, err := vs.Get(ctx, 1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get = %v", err)
		}
	})
	// Node B hosts exactly one remote block on behalf of node A.
	if st := tc.nodes[1].Stats(); st.RemoteAllocs != 1 {
		t.Fatalf("node B RemoteAllocs = %d, want 1", st.RemoteAllocs)
	}
}
