package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"testing/quick"

	"godm/internal/des"
	"godm/internal/pagetable"
	"godm/internal/transport"
)

func TestAllocReqRoundTrip(t *testing.T) {
	f := func(key uint64, class int32) bool {
		got, err := decodeAllocReq(encodeAllocReq(allocReq{Key: key, Class: class}))
		return err == nil && got.Key == key && got.Class == class
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReqRoundTrip(t *testing.T) {
	f := func(key uint64, offset int64) bool {
		got, err := decodeFreeReq(encodeFreeReq(freeReq{Key: key, Offset: offset}))
		return err == nil && got.Key == key && got.Offset == offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBatchRoundTrip(t *testing.T) {
	entries := []batchAllocEntry{
		{Key: 1, Class: 512, Flags: 0},
		{Key: 1<<63 | 42, Class: 4096, Flags: flagDeflate},
		{Key: 7, Class: 2048, Flags: 0xFF},
	}
	got, err := decodeAllocBatchReq(encodeAllocBatchReq(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
	offsets := []int64{0, 4096, 1 << 40}
	back, err := decodeAllocBatchResp(encodeAllocBatchResp(offsets), len(offsets))
	if err != nil {
		t.Fatal(err)
	}
	for i := range offsets {
		if back[i] != offsets[i] {
			t.Fatalf("offset %d = %d, want %d", i, back[i], offsets[i])
		}
	}
	if _, err := decodeAllocBatchResp(noSpaceResp(), 3); !errors.Is(err, ErrRemoteFull) {
		t.Fatalf("no-space batch resp err = %v", err)
	}
	if _, err := decodeAllocBatchResp(errorResp(errors.New("boom")), 3); err == nil {
		t.Fatal("error batch resp should fail")
	}
}

func TestFreeBatchRoundTrip(t *testing.T) {
	entries := []batchFreeEntry{{Key: 3, Offset: 8192}, {Key: 9, Offset: 0}}
	got, err := decodeFreeBatchReq(encodeFreeBatchReq(entries))
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestBatchDecodeRejectsMalformed(t *testing.T) {
	if _, err := decodeAllocBatchReq([]byte{opAllocBatch}); err == nil {
		t.Fatal("short batch alloc header should fail")
	}
	// A count that promises more entries than the payload carries.
	req := encodeAllocBatchReq([]batchAllocEntry{{Key: 1, Class: 512}})
	if _, err := decodeAllocBatchReq(req[:len(req)-1]); err == nil {
		t.Fatal("truncated batch alloc should fail")
	}
	huge := []byte{opAllocBatch, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := decodeAllocBatchReq(huge); err == nil {
		t.Fatal("oversized batch count should fail")
	}
	if _, err := decodeFreeBatchReq([]byte{opFreeBatch, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated batch free should fail")
	}
	// A short OK response (fewer offsets than requested entries).
	if _, err := decodeAllocBatchResp(encodeAllocBatchResp([]int64{1}), 2); err == nil {
		t.Fatal("short batch alloc resp should fail")
	}
}

func TestHeartbeatAndStatsRoundTrip(t *testing.T) {
	hb, err := decodeHeartbeatReq(encodeHeartbeatReq(heartbeatReq{FreeBytes: 12345}))
	if err != nil || hb.FreeBytes != 12345 {
		t.Fatalf("heartbeat round trip: %+v, %v", hb, err)
	}
	st, err := decodeStatsResp(encodeStatsResp(statsResp{FreeBytes: 777}))
	if err != nil || st.FreeBytes != 777 {
		t.Fatalf("stats round trip: %+v, %v", st, err)
	}
	ev, err := decodeEvictedReq(encodeEvictedReq(evictedReq{Key: 99}))
	if err != nil || ev.Key != 99 {
		t.Fatalf("evicted round trip: %+v, %v", ev, err)
	}
}

func TestAllocRespStatuses(t *testing.T) {
	got, err := decodeAllocResp(encodeAllocResp(allocResp{Offset: 4096}))
	if err != nil || got.Offset != 4096 {
		t.Fatalf("ok resp: %+v, %v", got, err)
	}
	if _, err := decodeAllocResp(noSpaceResp()); !errors.Is(err, ErrRemoteFull) {
		t.Fatalf("no-space resp err = %v", err)
	}
	if _, err := decodeAllocResp(errorResp(errors.New("boom"))); err == nil {
		t.Fatal("error resp should fail")
	}
	if _, err := decodeAllocResp(nil); err == nil {
		t.Fatal("empty resp should fail")
	}
}

func TestCheckOKResp(t *testing.T) {
	if err := checkOKResp(okResp()); err != nil {
		t.Fatal(err)
	}
	if err := checkOKResp(noSpaceResp()); !errors.Is(err, ErrRemoteFull) {
		t.Fatalf("err = %v", err)
	}
	if err := checkOKResp(errorResp(errors.New("x"))); err == nil {
		t.Fatal("expected error")
	}
	if err := checkOKResp(nil); err == nil {
		t.Fatal("expected error for empty")
	}
}

func TestDecodersRejectShortMessages(t *testing.T) {
	short := []byte{opAlloc}
	if _, err := decodeAllocReq(short); err == nil {
		t.Fatal("alloc")
	}
	if _, err := decodeFreeReq(short); err == nil {
		t.Fatal("free")
	}
	if _, err := decodeHeartbeatReq(short); err == nil {
		t.Fatal("heartbeat")
	}
	if _, err := decodeEvictedReq(short); err == nil {
		t.Fatal("evicted")
	}
	if _, err := decodeStatsResp(short); err == nil {
		t.Fatal("stats")
	}
}

// TestHandleCallNeverPanicsOnGarbage fuzzes the control-plane dispatcher —
// a malicious or corrupt peer must get an error response, not a crash.
func TestHandleCallNeverPanicsOnGarbage(t *testing.T) {
	tc := newTestCluster(t, 1, smallConfig)
	node := tc.nodes[0]
	// Dispatch inside a sim proc: valid-but-unlucky frames (e.g. a bare
	// opDecommission byte) legitimately issue nested fabric calls, which
	// the simulated network only allows from a des process.
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		f := func(payload []byte) bool {
			resp, err := node.handleCall(ctx, 2, payload)
			// The handler reports protocol errors in-band.
			return err == nil && len(resp) >= 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
	})
}

func TestGetAtBoundsChecks(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 0)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{7}, 4096)
		if err := vs.PutShared(1, data, 4096, 4096); err != nil {
			t.Errorf("PutShared: %v", err)
			return
		}
		if _, err := vs.GetAt(ctx, 1, 4000, 200); err == nil {
			t.Error("expected error for out-of-range read")
		}
		if _, err := vs.GetAt(ctx, 1, -1, 10); err == nil {
			t.Error("expected error for negative offset")
		}
		got, err := vs.GetAt(ctx, 1, 100, 50)
		if err != nil || len(got) != 50 || got[0] != 7 {
			t.Errorf("GetAt = %v, %v", got, err)
		}
		if _, err := vs.GetAt(ctx, 99, 0, 1); !errors.Is(err, pagetable.ErrNotFound) {
			t.Errorf("missing entry err = %v", err)
		}
	})
}

func TestGetAtRemoteFailsOver(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	vs, _ := tc.nodes[0].AddServer("vm0", 0)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{9}, 4096)
		if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		loc, _ := vs.Location(1)
		tc.fabric.Partition(1, transport.NodeID(loc.Primary))
		got, err := vs.GetAt(ctx, 1, 8, 16)
		if err != nil {
			t.Errorf("GetAt after partition: %v", err)
			return
		}
		if got[0] != 9 {
			t.Error("failover data mismatch")
		}
	})
}
