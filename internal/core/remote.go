package core

import (
	"context"
	"fmt"
	"sync"

	"godm/internal/ec"
	"godm/internal/replication"
	"godm/internal/transport"
)

// remoteStore adapts the transport verbs to replication.Store: the control
// plane (two-sided Call) reserves and releases blocks in remote receive
// pools, while the data plane moves payloads with one-sided RDMA writes and
// reads (§IV.G: "one-sided RDMA write/read operations for data plane
// activities and RDMA send/receive operations for control plane
// activities").
type remoteStore struct {
	node *Node

	mu sync.Mutex
	// handles is the client half of the disaggregated memory map: where each
	// of our keys lives inside each remote node's receive region.
	handles map[remoteKey]remoteHandle
	// classes records the size class to request per key (set by the caller
	// before a replicated write fans out).
	classes sync.Map // uint64 -> int
}

type remoteKey struct {
	node transport.NodeID
	key  uint64
}

type remoteHandle struct {
	offset  int64
	class   int
	dataLen int
}

// setClass records the allocation class for key before a Write fans out.
func (s *remoteStore) setClass(key uint64, class int) {
	s.classes.Store(key, class)
}

func (s *remoteStore) classFor(key uint64, dataLen int) int {
	if v, ok := s.classes.Load(key); ok {
		return v.(int)
	}
	return dataLen
}

var _ replication.Store = (*remoteStore)(nil)

// Put implements replication.Store: reserve remotely, then one-sided write.
func (s *remoteStore) Put(ctx context.Context, node replication.NodeID, id replication.EntryID, data []byte) error {
	to := transport.NodeID(node)
	key := uint64(id)
	class := s.classFor(key, len(data))
	resp, err := s.node.ep.Call(ctx, to, encodeAllocReq(allocReq{Key: key, Class: int32(class)}))
	if err != nil {
		return fmt.Errorf("core: alloc on node %d: %w", to, err)
	}
	alloc, err := decodeAllocResp(resp)
	if err != nil {
		return err
	}
	if err := s.node.ep.WriteRegion(ctx, to, RecvRegionID, alloc.Offset, data); err != nil {
		// Release the reservation so a half-finished put strands no remote
		// bytes; best-effort on a detached context (the write failure may be
		// the caller's context dying), and the remote's eviction path is the
		// backstop if the free itself is lost.
		fctx, cancel := detached(ctx)
		defer cancel()
		_, _ = s.node.ep.Call(fctx, to, encodeFreeReq(freeReq{Key: key, Offset: alloc.Offset}))
		return fmt.Errorf("core: one-sided write to node %d: %w", to, err)
	}
	s.mu.Lock()
	s.handles[remoteKey{node: to, key: key}] = remoteHandle{
		offset:  alloc.Offset,
		class:   class,
		dataLen: len(data),
	}
	s.mu.Unlock()
	return nil
}

// Get implements replication.Store: one-sided read at the recorded offset.
func (s *remoteStore) Get(ctx context.Context, node replication.NodeID, id replication.EntryID) ([]byte, error) {
	to := transport.NodeID(node)
	s.mu.Lock()
	h, ok := s.handles[remoteKey{node: to, key: uint64(id)}]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no handle for entry %d on node %d", id, to)
	}
	data := make([]byte, h.dataLen)
	if err := transport.ReadRegionInto(ctx, s.node.ep, to, RecvRegionID, h.offset, data); err != nil {
		return nil, fmt.Errorf("core: one-sided read from node %d: %w", to, err)
	}
	return data, nil
}

// Delete implements replication.Store: release the remote reservation.
func (s *remoteStore) Delete(ctx context.Context, node replication.NodeID, id replication.EntryID) error {
	to := transport.NodeID(node)
	key := uint64(id)
	s.mu.Lock()
	h, ok := s.handles[remoteKey{node: to, key: key}]
	if ok {
		delete(s.handles, remoteKey{node: to, key: key})
	}
	s.mu.Unlock()
	if !ok {
		return nil // absent: idempotent
	}
	resp, err := s.node.ep.Call(ctx, to, encodeFreeReq(freeReq{Key: key, Offset: h.offset}))
	if err != nil {
		// The remote is unreachable; its eviction path reclaims the block.
		return nil
	}
	return checkOKResp(resp)
}

var (
	_ replication.RangeStore   = (*remoteStore)(nil)
	_ replication.ScatterStore = (*remoteStore)(nil)
	_ ec.ShardStore            = (*remoteStore)(nil)
)

// GetAt implements replication.RangeStore: a one-sided read of n bytes at
// offset off within the payload stored on one node. Failover across the
// replica or shard set is the policy's job.
func (s *remoteStore) GetAt(ctx context.Context, node replication.NodeID, id replication.EntryID, off, n int) ([]byte, error) {
	to := transport.NodeID(node)
	s.mu.Lock()
	h, ok := s.handles[remoteKey{node: to, key: uint64(id)}]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no handle for entry %d on node %d", id, to)
	}
	if off < 0 || n < 0 || off+n > h.dataLen {
		return nil, fmt.Errorf("core: range [%d,%d) exceeds payload %d", off, off+n, h.dataLen)
	}
	data := make([]byte, n)
	if err := transport.ReadRegionInto(ctx, s.node.ep, to, RecvRegionID, h.offset+int64(off), data); err != nil {
		return nil, fmt.Errorf("core: one-sided read from node %d: %w", to, err)
	}
	return data, nil
}

// GetInto implements replication.ScatterStore: a one-sided read of the whole
// payload directly into dst — the striped read path lands each shard in its
// slice of the result buffer with no copy in between.
func (s *remoteStore) GetInto(ctx context.Context, node replication.NodeID, id replication.EntryID, dst []byte) error {
	to := transport.NodeID(node)
	s.mu.Lock()
	h, ok := s.handles[remoteKey{node: to, key: uint64(id)}]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no handle for entry %d on node %d", id, to)
	}
	if len(dst) != h.dataLen {
		return fmt.Errorf("core: dst is %d bytes, entry %d stores %d", len(dst), id, h.dataLen)
	}
	if err := transport.ReadRegionInto(ctx, s.node.ep, to, RecvRegionID, h.offset, dst); err != nil {
		return fmt.Errorf("core: one-sided read from node %d: %w", to, err)
	}
	return nil
}

// PutShard implements ec.ShardStore: reserve a shard block remotely —
// carrying the stripe coordinates so the donor can refuse a sibling shard
// and answer opShardStat — then one-sided write, mirroring Put.
func (s *remoteStore) PutShard(ctx context.Context, node replication.NodeID, id replication.EntryID, idx, k, m int, data []byte) error {
	to := transport.NodeID(node)
	key := uint64(id)
	class := s.classFor(key, len(data))
	resp, err := s.node.ep.Call(ctx, to, encodeAllocShardReq(allocShardReq{
		Key: key, Class: int32(class), Idx: uint8(idx), K: uint8(k), M: uint8(m),
	}))
	if err != nil {
		return fmt.Errorf("core: shard alloc on node %d: %w", to, err)
	}
	alloc, err := decodeAllocResp(resp)
	if err != nil {
		return err
	}
	if err := s.node.ep.WriteRegion(ctx, to, RecvRegionID, alloc.Offset, data); err != nil {
		fctx, cancel := detached(ctx)
		defer cancel()
		_, _ = s.node.ep.Call(fctx, to, encodeFreeReq(freeReq{Key: key, Offset: alloc.Offset}))
		return fmt.Errorf("core: one-sided shard write to node %d: %w", to, err)
	}
	s.mu.Lock()
	s.handles[remoteKey{node: to, key: key}] = remoteHandle{
		offset:  alloc.Offset,
		class:   class,
		dataLen: len(data),
	}
	s.mu.Unlock()
	return nil
}

// rehome repoints the handle for key from old to new after a decommission
// migration (opMoved): the payload bytes now live at newOffset inside new's
// receive region. Returns false when no handle for (old, key) was tracked.
func (s *remoteStore) rehome(old, new transport.NodeID, key uint64, newOffset int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handles[remoteKey{node: old, key: key}]
	if !ok {
		return false
	}
	delete(s.handles, remoteKey{node: old, key: key})
	h.offset = newOffset
	s.handles[remoteKey{node: new, key: key}] = h
	return true
}

// drop forgets the local handle for key on node (used when the remote tells
// us it evicted the block).
func (s *remoteStore) drop(node transport.NodeID, key uint64) {
	s.mu.Lock()
	delete(s.handles, remoteKey{node: node, key: key})
	s.mu.Unlock()
}

// handleCount reports how many remote blocks this node tracks (tests).
func (s *remoteStore) handleCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.handles)
}
