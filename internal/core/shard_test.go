package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"godm/internal/cluster"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

// TestEvictSelfOwnedQueuesRepairOnce pins the regression the striped owner
// index must not reintroduce: a node under memory pressure evicting its own
// parked blocks queues exactly one repair per key, even when several blocks
// carry the same (owner,key) — within one slab or across slabs evicted on
// successive LRU passes. Duplicate pendingRepairs would make later Maintain
// passes re-repair entries that are already whole.
func TestEvictSelfOwnedQueuesRepairOnce(t *testing.T) {
	tc := newTestCluster(t, 1, smallConfig)
	n := tc.nodes[0]
	const key = uint64(42)
	ref := ownerRef{owner: n.cfg.ID, key: key}
	// Two full-slab blocks (distinct slabs, evicted on separate passes) plus
	// two half-slab blocks sharing a third slab, all under the same key.
	for _, class := range []int{4096, 4096, 2048, 2048} {
		h, err := n.recv.Alloc(class)
		if err != nil {
			t.Fatal(err)
		}
		n.addOwner(h, ref)
	}
	if !n.HostsRemoteKey(n.cfg.ID, key) {
		t.Fatal("HostsRemoteKey = false before eviction")
	}
	reclaimed, err := n.EvictRecvSlabs(context.Background(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed == 0 {
		t.Fatal("nothing reclaimed")
	}
	if n.HostsRemoteKey(n.cfg.ID, key) {
		t.Fatal("HostsRemoteKey = true after evicting everything")
	}
	n.repairMu.Lock()
	pending := append([]pendingRepair(nil), n.pendingRepairs...)
	n.repairMu.Unlock()
	if len(pending) != 1 {
		t.Fatalf("pendingRepairs = %v, want exactly one entry for key %d", pending, key)
	}
	if pending[0].key != key || pending[0].lost != n.cfg.ID {
		t.Fatalf("pendingRepairs[0] = %+v, want {key:%d lost:%d}", pending[0], key, n.cfg.ID)
	}
}

// TestFreeBatchFreesAllAndCountsOnce covers the batched free path: duplicate
// offsets collapse, already-gone offsets are skipped without error, every
// live entry is freed, the batchFrees counter moves once per batch, and the
// owner index is left clean.
func TestFreeBatchFreesAllAndCountsOnce(t *testing.T) {
	tc := newTestCluster(t, 1, smallConfig)
	n := tc.nodes[0]
	owner := transport.NodeID(9)
	var offs []int64
	for i := 0; i < 3; i++ {
		h, err := n.recv.Alloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		n.addOwner(h, ownerRef{owner: owner, key: uint64(i)})
		off, err := n.recv.GlobalOffset(h)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free block 0 out of band so its offset is a stale miss in the batch.
	h0, err := n.recv.HandleAt(offs[0])
	if err != nil {
		t.Fatal(err)
	}
	n.takeOwner(h0)
	if err := n.recv.Free(h0); err != nil {
		t.Fatal(err)
	}
	before := n.met.batchFrees.Value()
	entries := []batchFreeEntry{
		{Key: 0, Offset: offs[0]}, // stale: already freed
		{Key: 1, Offset: offs[1]},
		{Key: 1, Offset: offs[1]}, // duplicate of the same block
		{Key: 2, Offset: offs[2]},
	}
	resp := n.handleFreeBatch(entries)
	if err := checkOKResp(resp); err != nil {
		t.Fatalf("handleFreeBatch: %v", err)
	}
	if got := n.met.batchFrees.Value() - before; got != 1 {
		t.Fatalf("batchFrees moved by %d, want 1", got)
	}
	if st := n.recv.Stats(); st.LiveBlocks != 0 {
		t.Fatalf("recv pool still has %d live blocks", st.LiveBlocks)
	}
	for k := uint64(0); k < 3; k++ {
		if n.HostsRemoteKey(owner, k) {
			t.Fatalf("owner index still lists key %d after batch free", k)
		}
	}
}

// parallelRig wires one donor node and a client endpoint over loopback TCP —
// the smallest real-concurrency host-path rig (simnet is a discrete-event
// simulation and serializes everything, so it cannot exercise the sharded
// locks).
func parallelRig(t *testing.T, shards int) *Client {
	t.Helper()
	donorEP, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = donorEP.Close() })
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(Config{
		ID: 1, SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
		RecvPoolBytes: 16 << 20, SlabSize: 1 << 20, ReplicationFactor: 1,
		PoolShards: shards,
	}, donorEP, dir); err != nil {
		t.Fatal(err)
	}
	clientEP, err := tcpnet.Listen(100, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = clientEP.Close() })
	clientEP.AddPeer(1, donorEP.Addr())
	return NewClient(clientEP)
}

// TestParallelClientsOneHost drives several concurrent clients through the
// full host path — alloc, write, read, free — against one donor node over
// real TCP, with the race detector as the referee (the CI stress job runs it
// under -race with -count=3). Each worker owns a disjoint key space, so all
// interleavings must be linearizable per key.
func TestParallelClientsOneHost(t *testing.T) {
	c := parallelRig(t, DefaultPoolShards)
	const workers, rounds = 4, 40
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := uint64(w)<<32 | uint64(i)
				data := bytes.Repeat([]byte{byte(w + 1)}, 512+257*((w+i)%6))
				if err := c.Put(ctx, 1, key, data); err != nil {
					t.Errorf("worker %d: Put(%d): %v", w, key, err)
					return
				}
				got, err := c.Get(ctx, 1, key)
				if err != nil {
					t.Errorf("worker %d: Get(%d): %v", w, key, err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("worker %d: Get(%d) returned %d bytes, want %d", w, key, len(got), len(data))
					return
				}
				if i%2 == 0 {
					if err := c.Delete(ctx, 1, key); err != nil {
						t.Errorf("worker %d: Delete(%d): %v", w, key, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParallelBatchClientsOneHost is the batched flavor: concurrent PutAll /
// GetAll / DeleteAll windows against one host exercise the batched owner
// bookkeeping (one stripe lock per batch) and the sharded allocator's
// contiguous window placement.
func TestParallelBatchClientsOneHost(t *testing.T) {
	c := parallelRig(t, DefaultPoolShards)
	const workers, rounds, window = 4, 10, 8
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				entries := make([]Entry, window)
				keys := make([]uint64, window)
				for j := range entries {
					key := uint64(w)<<32 | uint64(i*window+j)
					keys[j] = key
					entries[j] = Entry{Key: key, Data: bytes.Repeat([]byte{byte(j + 1)}, 600)}
				}
				if err := c.PutAll(ctx, 1, entries); err != nil {
					t.Errorf("worker %d: PutAll: %v", w, err)
					return
				}
				got, err := c.GetAll(ctx, 1, keys)
				if err != nil {
					t.Errorf("worker %d: GetAll: %v", w, err)
					return
				}
				for j, key := range keys {
					if want := entries[j].Data; !bytes.Equal(got[key], want) {
						t.Errorf("worker %d: GetAll[%d] mismatch", w, key)
						return
					}
				}
				if err := c.DeleteAll(ctx, 1, keys); err != nil {
					t.Errorf("worker %d: DeleteAll: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPoolShardsConfig checks the config plumbing: zero selects the default,
// negatives are rejected, and the pools report the configured shard count.
func TestPoolShardsConfig(t *testing.T) {
	tc := newTestCluster(t, 1, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.PoolShards = 4
		return cfg
	})
	if got := tc.nodes[0].recv.Shards(); got != 4 {
		t.Fatalf("recv pool shards = %d, want 4", got)
	}
	tc = newTestCluster(t, 1, smallConfig)
	if got := tc.nodes[0].shared.Shards(); got != DefaultPoolShards {
		t.Fatalf("shared pool shards = %d, want DefaultPoolShards (%d)", got, DefaultPoolShards)
	}
	bad := smallConfig(1)
	bad.PoolShards = -1
	if err := bad.validate(); err == nil {
		t.Fatal("expected validation error for negative PoolShards")
	}
}
