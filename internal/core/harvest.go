package core

import (
	"context"
	"fmt"
	"sort"

	"godm/internal/cluster"
	"godm/internal/transport"
)

// Balloon harvesting (§IV.F): a donor node under local memory pressure claws
// back part of its donated receive pool without leaving the cluster. Where
// Decommission is a full drain — every hosted block migrated, the node gone
// from the map — Harvest is a partial one: only as many slabs as the
// requested byte count demands are emptied, the node keeps serving
// allocations out of whatever budget remains, and the same redirect
// tombstones keep stale readers correct for the blocks that did move.

// Harvest reclaims up to wantBytes of receive-pool budget for local use. It
// first drops slabs that are already empty; if that falls short it migrates
// hosted blocks away — cheapest slabs first, in a deterministic order — and
// shrinks again, until the target is met or no hosted blocks remain. Owners
// of migrated blocks are told the new home (opMoved) and a redirect
// tombstone answers stale locates, exactly as in a decommission drain.
//
// It returns the bytes actually reclaimed and the number of blocks migrated.
// Blocks with no reachable successor fall back to an eviction notice to the
// owner, whose repair path restores the replication factor.
func (n *Node) Harvest(ctx context.Context, wantBytes int64) (int64, int, error) {
	if wantBytes <= 0 {
		return 0, 0, fmt.Errorf("core: harvest wantBytes = %d must be positive", wantBytes)
	}
	// The migration path shares the decommission tombstone map; it must
	// exist before the first migrateBlock records into it.
	n.drainMu.Lock()
	if n.movedTo == nil {
		n.movedTo = map[uint64]movedBlock{}
	}
	n.drainMu.Unlock()

	// Cheapest first: unbacked headroom costs nothing to surrender, and
	// slabs with no live blocks release budget without a single network
	// round trip.
	reclaimed := n.recv.ShrinkBudget(wantBytes)
	if reclaimed < wantBytes {
		reclaimed += n.recv.ShrinkEmpty(wantBytes - reclaimed)
	}
	moved := 0
	var firstErr error
	if reclaimed < wantBytes {
		var blocks []hostedBlock
		for i := range n.owners {
			sh := &n.owners[i]
			sh.mu.Lock()
			for h, ref := range sh.refs {
				blocks = append(blocks, hostedBlock{h: h, ref: ref})
			}
			sh.mu.Unlock()
		}
		// Group blocks by slab: budget only comes back a whole slab at a
		// time, so partially emptying two slabs is strictly worse than fully
		// emptying one. Evict the cheapest slabs (fewest live blocks) first,
		// with slab ID as the tiebreak so simulated harvests replay
		// identically.
		bySlab := map[int][]hostedBlock{}
		for _, b := range blocks {
			bySlab[b.h.SlabID] = append(bySlab[b.h.SlabID], b)
		}
		slabs := make([]int, 0, len(bySlab))
		for id := range bySlab {
			slabs = append(slabs, id)
		}
		sort.Slice(slabs, func(i, j int) bool {
			a, b := slabs[i], slabs[j]
			if len(bySlab[a]) != len(bySlab[b]) {
				return len(bySlab[a]) < len(bySlab[b])
			}
			return a < b
		})
		for _, id := range slabs {
			if reclaimed >= wantBytes {
				break
			}
			group := bySlab[id]
			sort.Slice(group, func(i, j int) bool {
				a, b := group[i], group[j]
				if a.ref.key != b.ref.key {
					return a.ref.key < b.ref.key
				}
				return a.h.Offset < b.h.Offset
			})
			for _, b := range group {
				err := n.migrateBlock(ctx, b)
				if err == nil {
					moved++
					continue
				}
				if firstErr == nil {
					firstErr = err
				}
				n.notifyEvicted(ctx, b.ref)
				n.takeOwner(b.h)
				_ = n.recv.Free(b.h)
			}
			reclaimed += n.recv.ShrinkEmpty(wantBytes - reclaimed)
		}
	}
	n.counters.harvestedBytes.Add(reclaimed)
	n.met.harvestedBytes.Add(reclaimed)
	n.met.harvestMoved.Add(int64(moved))
	free := n.recv.FreeBytes()
	n.met.recvFreeBytes.Set(free)
	// Re-advertise the shrunken pool immediately so balancers stop routing
	// new blocks at capacity this node no longer donates.
	_ = n.dir.Heartbeat(cluster.NodeID(n.cfg.ID), free)
	return reclaimed, moved, firstErr
}

// HarvestRemote asks another node to harvest wantBytes from its donated
// pool; the donor side is Node.Harvest.
func (n *Node) HarvestRemote(ctx context.Context, node transport.NodeID, wantBytes int64) (int64, int, error) {
	resp, err := n.ep.Call(ctx, node, encodeHarvestReq(harvestReq{WantBytes: wantBytes}))
	if err != nil {
		return 0, 0, fmt.Errorf("core: harvest node %d: %w", node, err)
	}
	hr, err := decodeHarvestResp(resp)
	if err != nil {
		return 0, 0, err
	}
	return hr.Reclaimed, int(hr.Moved), nil
}
