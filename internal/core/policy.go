package core

import (
	"context"
	"fmt"
	"sync"

	"godm/internal/cluster"
)

// PolicyConfig tunes the §IV.F memory-management policies:
//
//	(1) "If there are frequent requests to remote disaggregated memory in
//	    the cluster, then ... evict some memory slabs from the RDMA receive
//	    buffer pool" — a node whose own tenants keep overflowing to the
//	    cluster should stop donating so much of its DRAM to others.
//	(2) "If a virtual server ... is observed to request disaggregated memory
//	    frequently over a period, then ... balloon more DRAM memory to this
//	    virtual server" — a persistently overflowing tenant should get real
//	    memory back.
type PolicyConfig struct {
	// RemotePutThreshold is the number of remote puts within one evaluation
	// period after which policy (1) fires.
	RemotePutThreshold int64
	// EvictBytes is how much receive-pool memory policy (1) reclaims per
	// firing.
	EvictBytes int64
	// ServerOverflowThreshold is the number of disaggregated-memory puts by
	// a single virtual server within one period after which policy (2)
	// balloons memory to it.
	ServerOverflowThreshold int64
	// BalloonBytes is how much shared-pool budget policy (2) moves per
	// firing.
	BalloonBytes int64
	// GroupLowWater triggers dynamic regrouping (§IV.C) when this node is
	// its group's leader and the group's aggregate free memory falls below
	// the threshold. Zero disables the check.
	GroupLowWater int64
}

// DefaultPolicyConfig returns thresholds suitable for the simulated testbed.
func DefaultPolicyConfig() PolicyConfig {
	return PolicyConfig{
		RemotePutThreshold:      256,
		EvictBytes:              4 << 20,
		ServerOverflowThreshold: 512,
		BalloonBytes:            4 << 20,
	}
}

// PolicyEngine periodically applies the §IV.F policies to one node. Create
// it with NewPolicyEngine and call Evaluate from the node's tick loop.
type PolicyEngine struct {
	cfg  PolicyConfig
	node *Node

	mu             sync.Mutex
	lastRemotePuts int64
	lastServerPuts map[string]int64
}

// NewPolicyEngine binds a policy engine to a node.
func NewPolicyEngine(node *Node, cfg PolicyConfig) (*PolicyEngine, error) {
	if node == nil {
		return nil, fmt.Errorf("core: nil node")
	}
	if cfg.RemotePutThreshold <= 0 || cfg.ServerOverflowThreshold <= 0 {
		return nil, fmt.Errorf("core: policy thresholds must be positive")
	}
	return &PolicyEngine{
		cfg:            cfg,
		node:           node,
		lastServerPuts: map[string]int64{},
	}, nil
}

// PolicyActions reports what one Evaluate pass did.
type PolicyActions struct {
	// EvictedBytes is the receive-pool memory reclaimed by policy (1).
	EvictedBytes int64
	// Ballooned maps virtual-server names to bytes granted by policy (2).
	Ballooned map[string]int64
	// Regrouped reports that this node, as group leader, requested dynamic
	// regrouping because the group ran short of disaggregated memory.
	Regrouped bool
}

// Evaluate inspects the activity since the previous call and applies the
// policies. It is intended to run on the same cadence as heartbeats.
func (e *PolicyEngine) Evaluate(ctx context.Context) (PolicyActions, error) {
	actions := PolicyActions{Ballooned: map[string]int64{}}
	st := e.node.Stats()

	e.mu.Lock()
	remoteDelta := st.RemotePuts - e.lastRemotePuts
	e.lastRemotePuts = st.RemotePuts
	e.node.vsMu.RLock()
	type serverPuts struct {
		name string
		puts int64
	}
	var servers []serverPuts
	for name, vs := range e.node.vservers {
		servers = append(servers, serverPuts{name: name, puts: vs.putCount.Load()})
	}
	e.node.vsMu.RUnlock()
	deltas := map[string]int64{}
	for _, s := range servers {
		deltas[s.name] = s.puts - e.lastServerPuts[s.name]
		e.lastServerPuts[s.name] = s.puts
	}
	e.mu.Unlock()

	// Policy (1): heavy cluster-bound traffic means this node is short of
	// memory for its own tenants — stop donating so much.
	if remoteDelta >= e.cfg.RemotePutThreshold {
		reclaimed, err := e.node.EvictRecvSlabs(ctx, e.cfg.EvictBytes)
		if err != nil {
			return actions, fmt.Errorf("core: policy(1) eviction: %w", err)
		}
		actions.EvictedBytes = reclaimed
	}

	// Policy (2): a persistently overflowing tenant gets memory ballooned
	// back from the shared pool.
	for name, delta := range deltas {
		if delta < e.cfg.ServerOverflowThreshold {
			continue
		}
		moved, err := e.node.BalloonToServer(name, e.cfg.BalloonBytes)
		if err != nil {
			return actions, fmt.Errorf("core: policy(2) balloon to %s: %w", name, err)
		}
		if moved > 0 {
			actions.Ballooned[name] = moved
		}
	}

	// §IV.C: a group leader whose group is short of disaggregated memory
	// requests dynamic regrouping so the directory rebalances membership.
	if e.cfg.GroupLowWater > 0 {
		group, err := e.node.dir.GroupOf(cluster.NodeID(e.node.cfg.ID))
		if err == nil {
			leader, ok := e.node.dir.Leader(group)
			if ok && leader == cluster.NodeID(e.node.cfg.ID) &&
				e.node.dir.GroupFreeBytes(group) < e.cfg.GroupLowWater {
				e.node.dir.Regroup()
				actions.Regrouped = true
			}
		}
	}
	return actions, nil
}
