package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/pagetable"
	"godm/internal/simnet"
	"godm/internal/transport"
)

// findHost returns the node (other than exclude) hosting a block parked
// under (owner, key), or 0.
func findHost(tc *testCluster, owner transport.NodeID, key uint64, exclude transport.NodeID) transport.NodeID {
	for _, n := range tc.nodes {
		if n.cfg.ID == exclude {
			continue
		}
		if n.HostsRemoteKey(owner, key) {
			return n.cfg.ID
		}
	}
	return 0
}

func TestDecommissionMigratesAndRedirects(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	data := bytes.Repeat([]byte{0x5A}, 2048)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 9, data); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		if err := client.SyncMap(ctx, 1); err != nil {
			t.Errorf("SyncMap: %v", err)
			return
		}
		moved, err := client.Decommission(ctx, 2)
		if err != nil {
			t.Errorf("Decommission: %v", err)
			return
		}
		if moved != 1 {
			t.Errorf("moved = %d, want 1", moved)
		}
		if !tc.nodes[1].Draining() {
			t.Error("node 2 should report draining")
		}
		// The block now lives on another node, still recorded under its true
		// owner (node 1, the putter) even though the drainer issued the
		// migration alloc on its behalf.
		host := findHost(tc, 1, 9, 2)
		if host == 0 {
			t.Error("migrated block not found on any peer")
			return
		}
		// Refresh the map: the delta stream records node 2's departure.
		if err := client.SyncMap(ctx, 1); err != nil {
			t.Errorf("SyncMap after drain: %v", err)
			return
		}
		if client.Map().Alive(2) {
			t.Error("client map should show node 2 gone")
		}
		// Read through the stale handle: one redirect, then correct bytes.
		got, err := client.Get(ctx, 2, 9)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get after drain = %d bytes, %v", len(got), err)
			return
		}
		if r := client.Redirects(); r != 1 {
			t.Errorf("redirects = %d, want 1", r)
		}
		// The handle was rewritten: the next read goes straight to the new
		// home with no further locate hops.
		if _, err := client.Get(ctx, 2, 9); err != nil {
			t.Errorf("second Get: %v", err)
			return
		}
		if r := client.Redirects(); r != 1 {
			t.Errorf("redirects after rewrite = %d, want still 1", r)
		}
		// Delete follows the rewritten home and frees the migrated block.
		if err := client.Delete(ctx, 2, 9); err != nil {
			t.Errorf("Delete: %v", err)
			return
		}
		if h := findHost(tc, 1, 9, 2); h != 0 {
			t.Errorf("block still hosted on node %d after delete", h)
		}
	})
}

func TestDecommissionTwoHopChain(t *testing.T) {
	tc := newTestCluster(t, 5, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	data := bytes.Repeat([]byte{0xC3}, 1024)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 11, data); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		if err := client.SyncMap(ctx, 1); err != nil {
			t.Errorf("SyncMap: %v", err)
			return
		}
		if _, err := client.Decommission(ctx, 2); err != nil {
			t.Errorf("Decommission 2: %v", err)
			return
		}
		// The successor holds the block under its true owner.
		first := findHost(tc, 1, 11, 2)
		if first == 0 {
			t.Error("no first successor hosts the block")
			return
		}
		// Drain the successor too: the worst sanctioned chain.
		if _, err := client.Decommission(ctx, first); err != nil {
			t.Errorf("Decommission %d: %v", first, err)
			return
		}
		if err := client.SyncMap(ctx, 1); err != nil {
			t.Errorf("SyncMap: %v", err)
			return
		}
		got, err := client.Get(ctx, 2, 11)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get after two drains = %d bytes, %v", len(got), err)
			return
		}
		if r := client.Redirects(); r != 2 {
			t.Errorf("redirects = %d, want 2", r)
		}
	})
}

func TestDrainingNodeRefusesAllocs(t *testing.T) {
	tc := newTestCluster(t, 3, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if _, err := client.Decommission(ctx, 2); err != nil {
			t.Errorf("Decommission: %v", err)
			return
		}
		err := client.Put(ctx, 2, 3, bytes.Repeat([]byte{1}, 600))
		if !errors.Is(err, ErrRemoteFull) {
			t.Errorf("Put to draining node = %v, want ErrRemoteFull", err)
		}
		// Idempotent: a second drain request migrates nothing and succeeds.
		moved, err := client.Decommission(ctx, 2)
		if err != nil || moved != 0 {
			t.Errorf("second Decommission = %d, %v; want 0, nil", moved, err)
		}
	})
}

// TestDecommissionRepointsOwnerPageTable drains a node hosting a replicated
// virtual-server entry and checks the owner's remote map and page table
// follow the moved copy (opMoved), so remote gets need no redirect at all.
func TestDecommissionRepointsOwnerPageTable(t *testing.T) {
	tc := newTestCluster(t, 4, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.ReplicationFactor = 2
		return cfg
	})
	vs, err := tc.nodes[0].AddServer("vm0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, 3000)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := vs.PutRemote(ctx, 21, data, 4096, len(data)); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		key := vs.WireKey(21)
		var host *Node
		for _, n := range tc.nodes[1:] {
			if n.HostsRemoteKey(1, key) {
				host = n
				break
			}
		}
		if host == nil {
			t.Error("no node hosts the replicated entry")
			return
		}
		if _, err := host.Decommission(ctx); err != nil {
			t.Errorf("Decommission node %d: %v", host.cfg.ID, err)
			return
		}
		// The owner's page table must no longer reference the drained node.
		loc, err := vs.Location(21)
		if err != nil {
			t.Errorf("Location: %v", err)
			return
		}
		drained := pagetable.NodeID(host.cfg.ID)
		if loc.Primary == drained {
			t.Errorf("primary still points at drained node %d", host.cfg.ID)
		}
		for _, r := range loc.Replicas {
			if r == drained {
				t.Errorf("replica set still references drained node %d", host.cfg.ID)
			}
		}
		got, _, err := vs.Get(ctx, 21)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get after drain = %d bytes, %v", len(got), err)
		}
	})
}

// TestTreeHeartbeatConvergence runs per-node directories connected only by
// the heartbeat tree and asserts second-hand liveness: when a member goes
// silent, its watcher detects the death first-hand and every other directory
// learns it through epoch-tagged map deltas within a few rounds.
func TestTreeHeartbeatConvergence(t *testing.T) {
	const n = 6
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	nodes := make([]*Node, 0, n)
	for i := 1; i <= n; i++ {
		id := transport.NodeID(i)
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 3, HeartbeatTimeout: 3})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(smallConfig(id), ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	// Static seed membership: every directory starts knowing all nodes (the
	// deployment bootstrap); the tree keeps the views alive from here on.
	for _, node := range nodes {
		for j := 1; j <= n; j++ {
			node.dir.Join(cluster.NodeID(j), 1<<20)
		}
	}
	env.Go("sim", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		const deadFrom = 4 // node 6 goes silent starting this round
		for round := 1; round <= 12; round++ {
			for i, node := range nodes {
				if i == n-1 && round >= deadFrom {
					continue
				}
				node.TreeHeartbeat(ctx)
				node.TickWatched()
			}
		}
		for i, node := range nodes[:n-1] {
			if node.dir.Alive(cluster.NodeID(n)) {
				t.Errorf("node %d still sees node %d alive", i+1, n)
			}
			root, ok := node.dir.RootLeader()
			if !ok || root == cluster.NodeID(n) {
				t.Errorf("node %d root = %d, ok=%v", i+1, root, ok)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
