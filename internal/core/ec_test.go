package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/faulty"
	"godm/internal/placement"
	"godm/internal/simnet"
	"godm/internal/transport"
)

// ecConfig is smallConfig with the RS(4,2) coding policy and a round-robin
// balancer on the owner so donor positions are deterministic.
func ecConfig(id transport.NodeID) Config {
	cfg := smallConfig(id)
	cfg.Durability = "rs4.2"
	if id == 1 {
		cfg.Balancer = placement.NewRoundRobin()
	}
	return cfg
}

func ecPayload(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestDurabilityConfigParsing(t *testing.T) {
	cases := []struct {
		in     string
		coding bool
		rf, k  int
		bad    bool
	}{
		{in: "", rf: 3},
		{in: "rf2", rf: 2},
		{in: "rs4.2", coding: true, k: 4},
		{in: "rs2.1", coding: true, k: 2},
		{in: "rf0", bad: true},
		{in: "rs0.2", bad: true},
		{in: "rs4.0", bad: true},
		{in: "raid5", bad: true},
	}
	for _, c := range cases {
		spec, err := parseDurability(c.in, 3)
		if c.bad {
			if err == nil {
				t.Errorf("parseDurability(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDurability(%q): %v", c.in, err)
			continue
		}
		if spec.coding != c.coding || (!c.coding && spec.rf != c.rf) || (c.coding && spec.k != c.k) {
			t.Errorf("parseDurability(%q) = %+v", c.in, spec)
		}
	}
	// A bad spec is rejected at node construction, not first use.
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, _ := cluster.NewDirectory(cluster.DefaultConfig())
	ep, _ := fabric.Attach(1)
	bad := smallConfig(1)
	bad.Durability = "rs.2"
	if _, err := NewNode(bad, ep, dir); err == nil {
		t.Fatal("NewNode accepted malformed durability spec")
	}
}

// TestECStripedPutGetDelete drives the full striped remote path over the
// simulated fabric: a PutRemote under rs4.2 must land one shard on each of 6
// distinct donors (with stripe coordinates queryable host-side), cost half
// the remote bytes of 3-way replication, read back byte-identical — whole and
// in sub-ranges crossing shard boundaries — and delete without stranding a
// single remote block.
func TestECStripedPutGetDelete(t *testing.T) {
	tc := newTestCluster(t, 7, ecConfig)
	owner := tc.nodes[0]
	vs, _ := owner.AddServer("vm0", 4096)
	data := ecPayload(4096, 21)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		loc, _ := vs.Location(1)
		set := locationNodes(loc)
		if len(set) != 6 {
			t.Errorf("stripe set %v, want 6 donors", set)
			return
		}
		key := vs.key(1)
		seen := map[transport.NodeID]bool{}
		var stripedBytes int64
		for pos, member := range set {
			donor := transport.NodeID(member)
			if donor == owner.ID() || seen[donor] {
				t.Errorf("stripe set %v: donor %d repeated or self", set, donor)
			}
			seen[donor] = true
			host := tc.nodes[donor-1]
			if !host.HostsRemoteKey(owner.ID(), key) {
				t.Errorf("donor %d hosts no shard", donor)
				continue
			}
			idx, k, m, ok := host.ShardInfo(owner.ID(), key)
			if !ok || idx != pos || k != 4 || m != 2 {
				t.Errorf("donor %d shard coords = (%d,%d,%d,%v), want (%d,4,2,true)",
					donor, idx, k, m, ok, pos)
			}
			stripedBytes += host.RecvPool().Stats().LiveBytes
		}
		// The acceptance bar: RS(4,2) must beat RF=3 by >= 1.8x remote bytes
		// per durable byte. 6 shards of class 1024 = 1.5x the payload, vs 3
		// full copies = 3.0x.
		rf3Bytes := int64(3 * 4096)
		if float64(rf3Bytes)/float64(stripedBytes) < 1.8 {
			t.Errorf("capacity ratio %.2f (rf3 %d / rs4.2 %d) below 1.8",
				float64(rf3Bytes)/float64(stripedBytes), rf3Bytes, stripedBytes)
		}
		got, _, err := vs.Get(ctx, 1)
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("striped read differs from payload")
		}
		// Sub-range reads, including ranges that straddle shard boundaries
		// (shard length 1024).
		for _, r := range [][2]int{{0, 16}, {1000, 100}, {1023, 2}, {3072, 1024}, {4095, 1}} {
			part, err := vs.GetAt(ctx, 1, r[0], r[1])
			if err != nil {
				t.Errorf("GetAt(%d,%d): %v", r[0], r[1], err)
				continue
			}
			if !bytes.Equal(part, data[r[0]:r[0]+r[1]]) {
				t.Errorf("GetAt(%d,%d) differs", r[0], r[1])
			}
		}
		if err := vs.Delete(ctx, 1); err != nil {
			t.Errorf("Delete: %v", err)
		}
		if n := owner.remote.handleCount(); n != 0 {
			t.Errorf("owner tracks %d handles after delete, want 0", n)
		}
	})
	// Every shard block and its host-side coordinates are gone.
	key := vs.key(1)
	for _, n := range tc.nodes[1:] {
		if st := n.RecvPool().Stats(); st.LiveBlocks != 0 {
			t.Errorf("node %d recv pool has %d live blocks after delete", n.ID(), st.LiveBlocks)
		}
		if _, _, _, ok := n.ShardInfo(owner.ID(), key); ok {
			t.Errorf("node %d still advertises shard coords after delete", n.ID())
		}
	}
}

// TestECDegradedReadAndRepair kills one data-shard donor: the very next read
// must reconstruct from the survivors, and the next Maintain pass must
// rebuild the lost shard onto the spare node at the original stripe position.
func TestECDegradedReadAndRepair(t *testing.T) {
	tc := newTestCluster(t, 8, ecConfig) // owner + 6 stripe donors + 1 spare
	owner := tc.nodes[0]
	vs, _ := owner.AddServer("vm0", 4096)
	data := ecPayload(4000, 22)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := vs.PutRemote(ctx, 2, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		loc, _ := vs.Location(2)
		set := locationNodes(loc)
		lost := transport.NodeID(set[0]) // position 0: a data shard
		tc.dir.Leave(cluster.NodeID(lost))
		if queued := owner.RepairLost(lost); queued != 1 {
			t.Errorf("RepairLost queued %d entries, want 1", queued)
		}
		got, _, err := vs.Get(ctx, 2)
		if err != nil {
			t.Errorf("degraded Get: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("degraded read differs from payload")
		}
		repaired, err := owner.Maintain(ctx)
		if err != nil || repaired != 1 {
			t.Errorf("Maintain = (%d, %v), want (1, nil)", repaired, err)
			return
		}
		after, _ := vs.Location(2)
		newSet := locationNodes(after)
		replacement := transport.NodeID(newSet[0])
		if replacement == lost {
			t.Errorf("lost donor %d still at stripe position 0", lost)
		}
		for i := 1; i < len(newSet); i++ {
			if newSet[i] != set[i] {
				t.Errorf("surviving position %d moved: %v -> %v", i, set, newSet)
			}
		}
		idx, k, m, ok := tc.nodes[replacement-1].ShardInfo(owner.ID(), vs.key(2))
		if !ok || idx != 0 || k != 4 || m != 2 {
			t.Errorf("replacement %d coords = (%d,%d,%d,%v), want (0,4,2,true)",
				replacement, idx, k, m, ok)
		}
		got2, _, err := vs.Get(ctx, 2)
		if err != nil || !bytes.Equal(got2, data) {
			t.Errorf("read after repair: %v", err)
		}
	})
	if owner.Stats().RepairsDone != 1 {
		t.Fatalf("RepairsDone = %d, want 1", owner.Stats().RepairsDone)
	}
}

// TestECOverwriteReleasesOldStripe is the striped-overwrite regression test:
// donors refuse a second block under the same (owner, key) — the
// distinct-donor invariant — so PutRemote must release the old stripe before
// writing the new one. With 7 nodes and 6-donor stripes the new pick always
// overlaps the old set, which is exactly the case the write-new-then-drop-old
// order could never satisfy. After the overwrite the entry must read back as
// the new payload with no stranded blocks from the old generation.
func TestECOverwriteReleasesOldStripe(t *testing.T) {
	tc := newTestCluster(t, 7, ecConfig)
	owner := tc.nodes[0]
	vs, _ := owner.AddServer("vm0", 4096)
	first := ecPayload(4096, 31)
	second := ecPayload(4096, 32)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		for i, data := range [][]byte{first, second} {
			if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
				t.Errorf("PutRemote #%d: %v", i, err)
				return
			}
		}
		got, _, err := vs.Get(ctx, 1)
		if err != nil {
			t.Errorf("Get after overwrite: %v", err)
			return
		}
		if !bytes.Equal(got, second) {
			t.Error("overwritten entry reads back stale or torn bytes")
		}
		live := 0
		for _, n := range tc.nodes[1:] {
			live += n.RecvPool().Stats().LiveBlocks
		}
		if live != 6 {
			t.Errorf("%d live donor blocks after overwrite, want 6 (old stripe leaked)", live)
		}
		if err := vs.Delete(ctx, 1); err != nil {
			t.Errorf("Delete: %v", err)
		}
	})
	for _, n := range tc.nodes[1:] {
		if st := n.RecvPool().Stats(); st.LiveBlocks != 0 {
			t.Errorf("node %d recv pool has %d live blocks after delete", n.ID(), st.LiveBlocks)
		}
	}
}

// TestECWidthExceedsPeersFails: a stripe needs k+m distinct donors; a cluster
// with fewer peers refuses the put instead of doubling shards up.
func TestECWidthExceedsPeersFails(t *testing.T) {
	tc := newTestCluster(t, 4, ecConfig) // 3 peers < 6 shards
	vs, _ := tc.nodes[0].AddServer("vm0", 4096)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		err := vs.PutRemote(ctx, 1, ecPayload(4096, 23), 4096, 4096)
		if err == nil {
			t.Error("PutRemote with too few donors succeeded")
		}
	})
}

// TestMaintainPartialShardRepairRequeues is the requeue-accounting
// regression test: when a repair pass restores only some of a stripe's lost
// shards (here: one of two replacement writes is dropped by the fault
// injector), Maintain must requeue exactly the still-missing donors — not
// count the entry repaired, and not forget the remainder. A later pass over
// a healed fabric finishes the job.
func TestMaintainPartialShardRepairRequeues(t *testing.T) {
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 7, HeartbeatTimeout: 3})
	if err != nil {
		t.Fatal(err)
	}
	inj := faulty.New(7)
	inj.SetEnabled(false)
	var nodes []*Node
	for i := 1; i <= 7; i++ {
		id := transport.NodeID(i)
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		var v transport.Endpoint = ep
		if i == 1 {
			// Repair traffic originates at the owner; wrap its endpoint so
			// the injector sees the replacement writes.
			v = inj.Wrap(ep)
		}
		cfg := smallConfig(id)
		cfg.Durability = "rs2.2"
		if i == 1 {
			cfg.Balancer = placement.NewRoundRobin()
		}
		n, err := NewNode(cfg, v, dir)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	owner := nodes[0]
	vs, _ := owner.AddServer("vm0", 4096)
	data := ecPayload(4096, 24)
	env.Go("test", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		if err := vs.PutRemote(ctx, 1, data, 4096, 4096); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		loc, _ := vs.Location(1)
		set := locationNodes(loc) // 4 donors of the rs2.2 stripe
		inSet := map[transport.NodeID]bool{}
		for _, m := range set {
			inSet[transport.NodeID(m)] = true
		}
		var spares []transport.NodeID
		for i := transport.NodeID(2); i <= 7; i++ {
			if !inSet[i] {
				spares = append(spares, i)
			}
		}
		if len(spares) != 2 {
			t.Errorf("spares = %v, want 2", spares)
			return
		}
		// Both data-shard donors die.
		lost1, lost2 := transport.NodeID(set[0]), transport.NodeID(set[1])
		dir.Leave(cluster.NodeID(lost1))
		dir.Leave(cluster.NodeID(lost2))
		owner.RepairLost(lost1)
		owner.RepairLost(lost2)
		// One of the two spares refuses the replacement shard write.
		blocked := spares[1]
		inj.AddRule(faulty.Rule{
			Kind: faulty.KindDrop, Verb: faulty.VerbWrite,
			From: faulty.AnyNode, To: blocked, Pct: 100,
		})
		inj.SetEnabled(true)
		repaired, err := owner.Maintain(ctx)
		if err != nil {
			t.Errorf("first Maintain: %v", err)
			return
		}
		if repaired != 0 {
			t.Errorf("first Maintain counted %d entries repaired; the stripe is still short a shard", repaired)
		}
		// Exactly the unrestored donor is queued again — no duplicates, no
		// forgotten remainder, no re-repair of the shard that did land.
		owner.repairMu.Lock()
		pend := append([]pendingRepair(nil), owner.pendingRepairs...)
		owner.repairMu.Unlock()
		if len(pend) != 1 || pend[0].key != vs.key(1) {
			t.Errorf("pendingRepairs = %+v, want one record for key %d", pend, vs.key(1))
			return
		}
		if pend[0].lost != lost1 && pend[0].lost != lost2 {
			t.Errorf("requeued donor %d is not one of the lost donors %d/%d", pend[0].lost, lost1, lost2)
		}
		// The pass made real progress: one lost position now points at the
		// reachable spare, and the stripe stays readable (degraded).
		mid, _ := vs.Location(1)
		midSet := locationNodes(mid)
		healedSpare := 0
		for _, m := range midSet {
			if transport.NodeID(m) == spares[0] {
				healedSpare++
			}
			if transport.NodeID(m) == blocked {
				t.Errorf("blocked spare %d entered the stripe set %v", blocked, midSet)
			}
		}
		if healedSpare != 1 {
			t.Errorf("stripe set %v does not include the reachable spare %d", midSet, spares[0])
		}
		if got, _, err := vs.Get(ctx, 1); err != nil || !bytes.Equal(got, data) {
			t.Errorf("degraded read after partial repair: %v", err)
		}
		// Fabric heals; the requeued remainder completes.
		inj.SetEnabled(false)
		repaired, err = owner.Maintain(ctx)
		if err != nil || repaired != 1 {
			t.Errorf("second Maintain = (%d, %v), want (1, nil)", repaired, err)
			return
		}
		owner.repairMu.Lock()
		left := len(owner.pendingRepairs)
		owner.repairMu.Unlock()
		if left != 0 {
			t.Errorf("%d repairs still queued after full restore", left)
		}
		final, _ := vs.Location(1)
		for _, m := range locationNodes(final) {
			if transport.NodeID(m) == lost1 || transport.NodeID(m) == lost2 {
				t.Errorf("dead donor %d still in final stripe set", m)
			}
		}
		if got, _, err := vs.Get(ctx, 1); err != nil || !bytes.Equal(got, data) {
			t.Errorf("read after staged repair: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
