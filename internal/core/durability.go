package core

import (
	"fmt"
	"strconv"
	"strings"
)

// durabilitySpec is the parsed form of Config.Durability: either plain
// replication (rf copies) or RS(k, m) erasure coding.
type durabilitySpec struct {
	coding bool
	rf     int
	k, m   int
}

// parseDurability parses a durability policy selector: "" (fall back to
// fallbackRF full copies), "rf<N>" (N full copies), or "rs<K>.<M>" (RS(K, M)
// striping). The same grammar backs `dmnode -durability` and the dmctl
// passthrough.
// DurabilityWidth reports how many distinct donor nodes the durability spec
// places shards on per entry — N for "rf<N>", K+M for "rs<K>.<M>" — after
// validating the spec. Daemons use it to refuse a policy the cluster cannot
// host before taking traffic.
func DurabilityWidth(s string, fallbackRF int) (int, error) {
	spec, err := parseDurability(s, fallbackRF)
	if err != nil {
		return 0, err
	}
	if spec.coding {
		return spec.k + spec.m, nil
	}
	return spec.rf, nil
}

func parseDurability(s string, fallbackRF int) (durabilitySpec, error) {
	switch {
	case s == "":
		return durabilitySpec{rf: fallbackRF}, nil
	case strings.HasPrefix(s, "rf"):
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < 1 {
			return durabilitySpec{}, fmt.Errorf("core: durability %q: want rf<N> with N >= 1", s)
		}
		return durabilitySpec{rf: n}, nil
	case strings.HasPrefix(s, "rs"):
		k, m, ok := strings.Cut(s[2:], ".")
		if !ok {
			return durabilitySpec{}, fmt.Errorf("core: durability %q: want rs<K>.<M>", s)
		}
		ki, err1 := strconv.Atoi(k)
		mi, err2 := strconv.Atoi(m)
		if err1 != nil || err2 != nil || ki < 1 || mi < 1 {
			return durabilitySpec{}, fmt.Errorf("core: durability %q: want rs<K>.<M> with K, M >= 1", s)
		}
		return durabilitySpec{coding: true, k: ki, m: mi}, nil
	default:
		return durabilitySpec{}, fmt.Errorf("core: durability %q: want rf<N> or rs<K>.<M>", s)
	}
}
