package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"godm/internal/cluster"
	"godm/internal/pagetable"
	"godm/internal/slab"
	"godm/internal/transport"
)

// This file is the node side of the cluster-scale control plane (§IV.C-D):
// tree-scoped heartbeats with epoch-versioned map sync, graceful
// decommission with block migration, and the redirect protocol that lets
// stale-epoch readers chase a moved block instead of failing.

// TreeHeartbeat runs one heartbeat-tree exchange: beat every tree target
// (members beat their group leader, leaders beat the root and their members,
// the root beats all leaders), then pull each target's map deltas and fold
// them in. Liveness adopted this way is watch-scoped — only the targets this
// node exchanges beats with can be declared down first-hand — so the
// per-round fan-out is O(group size), not O(cluster size), and so is the
// delta traffic. Unreachable targets are skipped; the failure detector
// (TickWatched) turns their silence into a down verdict.
func (n *Node) TreeHeartbeat(ctx context.Context) {
	self := cluster.NodeID(n.cfg.ID)
	free := n.recv.FreeBytes()
	n.met.recvFreeBytes.Set(free)
	_ = n.dir.Heartbeat(self, free)
	watched := n.dir.WatchSet(self)
	// One digest refresh per round; the piggyback set varies per target (a
	// group leader relays its members' digests on its beat to the root), so
	// the heartbeat payload is encoded per target.
	selfDigest := n.refreshDigest()
	n.obsStore.Tick()
	for _, target := range n.dir.TreeTargets(self) {
		to := transport.NodeID(target)
		hb := encodeHeartbeatReq(heartbeatReq{
			FreeBytes: free,
			Digests:   n.digestsFor(target, selfDigest),
		})
		if _, err := n.ep.Call(ctx, to, hb); err != nil {
			continue
		}
		n.syncMu.Lock()
		after := n.lastSync[target]
		n.syncMu.Unlock()
		resp, err := n.ep.Call(ctx, to, encodeMapSyncReq(cluster.SyncRequest{Origin: target, Epoch: after}))
		if err != nil {
			continue
		}
		sr, err := decodeMapSyncResp(resp)
		if err != nil {
			continue
		}
		for _, ev := range n.dir.ApplySync(self, sr, watched) {
			if ev.Kind == cluster.EventNodeLeft {
				n.obsStore.Drop(int64(ev.Node))
			}
		}
		var seen cluster.Epoch
		switch {
		case sr.Snapshot != nil:
			seen = sr.Snapshot.Epoch
		case len(sr.Deltas) > 0:
			seen = sr.Deltas[len(sr.Deltas)-1].Epoch
		default:
			continue
		}
		n.syncMu.Lock()
		if n.lastSync == nil {
			n.lastSync = map[cluster.NodeID]cluster.Epoch{}
		}
		n.lastSync[target] = seen
		n.syncMu.Unlock()
	}
}

// TickWatched advances the node's failure detector over its tree watch set
// and returns the resulting events (the daemon feeds EventNodeDown into
// RepairLost, exactly as with the all-to-all Tick).
func (n *Node) TickWatched() []cluster.Event {
	return n.dir.TickWatched(n.dir.WatchSet(cluster.NodeID(n.cfg.ID)))
}

// Draining reports whether the node has begun a decommission drain (it
// refuses new allocations but keeps serving reads and redirects).
func (n *Node) Draining() bool {
	n.drainMu.Lock()
	defer n.drainMu.Unlock()
	return n.draining
}

// movedBlock is one drain tombstone: where a hosted block went.
type movedBlock struct {
	to     transport.NodeID
	offset int64
}

// hostedBlock pairs a receive-pool handle with its owner record for the
// drain walk.
type hostedBlock struct {
	h   slab.Handle
	ref ownerRef
}

// Decommission gracefully removes this node from the cluster (§IV.C dynamic
// grouping): every block parked in the receive pool is migrated to another
// alive group member, each block's owner is told the new home (opMoved), a
// redirect tombstone is kept so stale-epoch readers that still dereference
// this node get a cheap stRedirect instead of a failure, and finally the
// departure is announced (opLeave) so peers record a Left map delta rather
// than waiting out their failure detectors. The node keeps serving reads,
// locates, and map syncs for its drain window — the process should exit only
// after stale clients have had time to catch up.
//
// It returns the number of blocks migrated. Blocks with no reachable
// successor fall back to an eviction notice to the owner, whose repair path
// restores the replication factor.
func (n *Node) Decommission(ctx context.Context) (int, error) {
	n.drainMu.Lock()
	if n.draining {
		n.drainMu.Unlock()
		return 0, nil
	}
	n.draining = true
	if n.movedTo == nil {
		n.movedTo = map[uint64]movedBlock{}
	}
	n.drainMu.Unlock()

	var blocks []hostedBlock
	for i := range n.owners {
		sh := &n.owners[i]
		sh.mu.Lock()
		for h, ref := range sh.refs {
			blocks = append(blocks, hostedBlock{h: h, ref: ref})
		}
		sh.mu.Unlock()
	}
	// Map iteration order is random; migrate in a fixed order so simulated
	// drains are deterministic.
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i], blocks[j]
		if a.ref.key != b.ref.key {
			return a.ref.key < b.ref.key
		}
		if a.h.SlabID != b.h.SlabID {
			return a.h.SlabID < b.h.SlabID
		}
		return a.h.Offset < b.h.Offset
	})

	moved := 0
	var firstErr error
	for _, b := range blocks {
		err := n.migrateBlock(ctx, b)
		if err == nil {
			moved++
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// No new home: tell the owner the block is gone so its repair path
		// re-replicates from the surviving copies.
		n.notifyEvicted(ctx, b.ref)
		n.takeOwner(b.h)
		_ = n.recv.Free(b.h)
	}

	// Announce the departure so peers drop us via a Left delta immediately.
	self := cluster.NodeID(n.cfg.ID)
	leave := encodeLeaveReq(leaveReq{Node: n.cfg.ID})
	for _, st := range n.dir.Snapshot() {
		if st.ID == self || !st.Alive {
			continue
		}
		_, _ = n.ep.Call(ctx, transport.NodeID(st.ID), leave)
	}
	n.dir.Leave(self)
	return moved, firstErr
}

// migrateBlock copies one hosted block to an alive group peer, records the
// redirect tombstone, and notifies the owner of the new home. Successors
// that refuse the block — no space, or already hosting a sibling replica of
// the same key — are skipped for the next candidate; the block's owner is
// the last resort (its own remote copy beats an eviction notice).
func (n *Node) migrateBlock(ctx context.Context, b hostedBlock) error {
	data, err := n.recv.Read(b.h, b.h.Class)
	if err != nil {
		return err
	}
	exclude := []transport.NodeID{b.ref.owner}
	var lastErr error
	for {
		succs, perr := n.pickRemotes(1, exclude)
		if perr != nil {
			if errors.Is(perr, ErrNoCandidates) {
				break
			}
			return perr
		}
		to := transport.NodeID(succs[0])
		if err := n.migrateTo(ctx, b, to, data); err == nil {
			return nil
		} else {
			lastErr = err
			exclude = append(exclude, to)
		}
	}
	if b.ref.owner != n.cfg.ID {
		if err := n.migrateTo(ctx, b, b.ref.owner, data); err == nil {
			return nil
		} else if lastErr == nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = ErrNoCandidates
	}
	return lastErr
}

// migrateTo copies one hosted block to a specific successor, records the
// redirect tombstone, and notifies the owner of the new home.
func (n *Node) migrateTo(ctx context.Context, b hostedBlock, to transport.NodeID, data []byte) error {
	resp, err := n.ep.Call(ctx, to, encodeAllocReq(allocReq{
		Key: b.ref.key, Class: int32(b.h.Class), Owner: int32(b.ref.owner),
	}))
	if err != nil {
		return fmt.Errorf("core: drain alloc on node %d: %w", to, err)
	}
	alloc, err := decodeAllocResp(resp)
	if err != nil {
		return err
	}
	if err := n.ep.WriteRegion(ctx, to, RecvRegionID, alloc.Offset, data); err != nil {
		fctx, cancel := detached(ctx)
		defer cancel()
		_, _ = n.ep.Call(fctx, to, encodeFreeReq(freeReq{Key: b.ref.key, Offset: alloc.Offset}))
		return fmt.Errorf("core: drain copy to node %d: %w", to, err)
	}
	n.drainMu.Lock()
	n.movedTo[b.ref.key] = movedBlock{to: to, offset: alloc.Offset}
	n.drainMu.Unlock()
	n.notifyMoved(ctx, b.ref, to, alloc.Offset)
	n.takeOwner(b.h)
	_ = n.recv.Free(b.h)
	return nil
}

// notifyMoved tells a block's owner where its block went; a local owner is
// rehomed directly, a remote one best-effort over the control plane (a stale
// or departed owner discovers the move through opLocate redirects instead).
func (n *Node) notifyMoved(ctx context.Context, ref ownerRef, to transport.NodeID, offset int64) {
	if ref.owner == n.cfg.ID {
		n.applyMoved(n.cfg.ID, movedReq{Key: ref.key, NewNode: to, NewOffset: offset})
		return
	}
	_, _ = n.ep.Call(ctx, ref.owner, encodeMovedReq(movedReq{Key: ref.key, NewNode: to, NewOffset: offset}))
}

// notifyEvicted tells a block's owner the block is gone (drain fallback when
// no successor could take the copy).
func (n *Node) notifyEvicted(ctx context.Context, ref ownerRef) {
	if ref.owner == n.cfg.ID {
		n.handleEvicted(n.cfg.ID, evictedReq{Key: ref.key})
		return
	}
	_, _ = n.ep.Call(ctx, ref.owner, encodeEvictedReq(evictedReq{Key: ref.key}))
}

// applyMoved is the owner side of opMoved: rehome the replica handle and
// repoint the page-table location from the draining host to the new one.
func (n *Node) applyMoved(from transport.NodeID, req movedReq) {
	if !n.remote.rehome(from, req.NewNode, req.Key, req.NewOffset) {
		return
	}
	vs, id, err := n.resolveKey(req.Key)
	if err != nil {
		return
	}
	loc, err := vs.table.Get(id)
	if err != nil {
		return
	}
	if loc.Primary == pagetable.NodeID(from) {
		loc.Primary = pagetable.NodeID(req.NewNode)
	}
	for i, r := range loc.Replicas {
		if r == pagetable.NodeID(from) {
			loc.Replicas[i] = pagetable.NodeID(req.NewNode)
		}
	}
	vs.table.Put(id, loc)
}

// handleLocate answers a block-location probe: stOK when the block for key
// is still at the stated offset, stRedirect with the new home when the
// block migrated in a drain, an error otherwise.
func (n *Node) handleLocate(req locateReq) []byte {
	n.drainMu.Lock()
	mv, movedOK := n.movedTo[req.Key]
	n.drainMu.Unlock()
	if movedOK {
		return encodeRedirectResp(redirect{Node: mv.to, Offset: mv.offset})
	}
	h, err := n.recv.HandleAt(req.Offset)
	if err != nil {
		return errorResp(fmt.Errorf("core: no block at offset %d", req.Offset))
	}
	sh := &n.owners[ownerShardIdx(h)]
	sh.mu.Lock()
	ref, ok := sh.refs[h]
	sh.mu.Unlock()
	if !ok || ref.key != req.Key {
		return errorResp(fmt.Errorf("core: offset %d does not hold key %d", req.Offset, req.Key))
	}
	return okResp()
}
