package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/faulty"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

// hostRig is one donor node plus several independent clients, each with its
// own loopback TCP endpoint and its own emulated fabric RTT. It is the
// host-path mirror of benchFabric: there the client side fans out to many
// donors; here many clients converge on one host, so the donor's sharded
// pools and striped owner index are what the numbers measure.
type hostRig struct {
	clients []*Client
}

// hostBenchRTT is the nominal per-verb fabric round trip. 1 ms for the same
// reason as the dataplane benchmarks: this host's sleep granularity floors
// sub-ms delays there anyway, and the quantity under test is how much of
// that latency concurrent clients can overlap, not its absolute size.
const hostBenchRTT = time.Millisecond

func newHostRig(b *testing.B, clients, shards int, rtt time.Duration) *hostRig {
	b.Helper()
	donorEP, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = donorEP.Close() })
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := NewNode(Config{
		ID: 1, SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
		RecvPoolBytes: 64 << 20, SlabSize: 1 << 20, ReplicationFactor: 1,
		PoolShards: shards,
	}, donorEP, dir); err != nil {
		b.Fatal(err)
	}
	rig := &hostRig{}
	for i := 0; i < clients; i++ {
		ep, err := tcpnet.Listen(transport.NodeID(100+i), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = ep.Close() })
		ep.AddPeer(1, donorEP.Addr())
		var verbs transport.Endpoint = ep
		if rtt > 0 {
			inj := faulty.New(int64(i) + 1)
			inj.AddRule(faulty.Rule{Kind: faulty.KindDelay, Verb: faulty.VerbAny,
				From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100, Delay: rtt})
			verbs = inj.Wrap(ep)
		}
		rig.clients = append(rig.clients, NewClient(verbs))
	}
	return rig
}

// runHostMixed drives b.N mixed host-path rounds — Put (alloc+write), Get
// (read), Delete every other round (free) — split across the rig's clients.
// Classes are mixed (600–3648 bytes rounds to 1 KiB–4 KiB slab classes) and
// every client works a disjoint key space, so all contention is on the
// host's shards, not on the keys themselves.
func runHostMixed(b *testing.B, rig *hostRig) {
	b.Helper()
	ctx := context.Background()
	clients := len(rig.clients)
	perClient := b.N / clients
	if b.N%clients != 0 {
		perClient++
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w, c := range rig.clients {
		wg.Add(1)
		go func(w int, c *Client) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := uint64(w)<<32 | uint64(i)
				data := bytes.Repeat([]byte{byte(w + 1)}, 600+1016*((w+i)%4))
				if err := c.Put(ctx, 1, key, data); err != nil {
					b.Errorf("client %d: Put: %v", w, err)
					return
				}
				if _, err := c.Get(ctx, 1, key); err != nil {
					b.Errorf("client %d: Get: %v", w, err)
					return
				}
				if i%2 == 0 {
					if err := c.Delete(ctx, 1, key); err != nil {
						b.Errorf("client %d: Delete: %v", w, err)
						return
					}
				}
			}
		}(w, c)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkHostParallelMixed is the tentpole's acceptance benchmark: N
// concurrent clients, one host, 1 ms emulated RTT, mixed
// alloc/write/read/free. clients=1 is the serial baseline; clients=4 must
// clear 2x its throughput. On this single-CPU rig the scaling comes from
// overlapping round trips that the host can now admit concurrently instead
// of serializing behind one node lock and one pool lock.
func BenchmarkHostParallelMixed(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			rig := newHostRig(b, clients, DefaultPoolShards, hostBenchRTT)
			runHostMixed(b, rig)
		})
	}
}

// BenchmarkHostParallelSingleLock is the same 4-client load against a host
// configured with one shard per pool (the seed's lock layout), so the
// sharded/unsharded comparison is a flag flip rather than a checkout.
func BenchmarkHostParallelSingleLock(b *testing.B) {
	rig := newHostRig(b, 4, 1, hostBenchRTT)
	runHostMixed(b, rig)
}

// BenchmarkHostParallelBatch measures the batched host path under the same
// convergence: each round is an 8-entry PutAll + GetAll + DeleteAll window,
// exercising batch alloc, span-coalesced writes, and the
// one-lock-per-stripe batched free.
func BenchmarkHostParallelBatch(b *testing.B) {
	for _, clients := range []int{1, 4} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			rig := newHostRig(b, clients, DefaultPoolShards, hostBenchRTT)
			ctx := context.Background()
			const window = 8
			perClient := b.N / clients
			if b.N%clients != 0 {
				perClient++
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w, c := range rig.clients {
				wg.Add(1)
				go func(w int, c *Client) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						entries := make([]Entry, window)
						keys := make([]uint64, window)
						for j := range entries {
							key := uint64(w)<<32 | uint64(i*window+j)
							keys[j] = key
							entries[j] = Entry{Key: key, Data: bytes.Repeat([]byte{byte(j + 1)}, 1024)}
						}
						if err := c.PutAll(ctx, 1, entries); err != nil {
							b.Errorf("client %d: PutAll: %v", w, err)
							return
						}
						if _, err := c.GetAll(ctx, 1, keys); err != nil {
							b.Errorf("client %d: GetAll: %v", w, err)
							return
						}
						if err := c.DeleteAll(ctx, 1, keys); err != nil {
							b.Errorf("client %d: DeleteAll: %v", w, err)
							return
						}
					}
				}(w, c)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}
