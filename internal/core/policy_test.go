package core

import (
	"bytes"
	"context"
	"testing"

	"godm/internal/des"
	"godm/internal/pagetable"
	"godm/internal/transport"
)

func TestPolicyEngineValidation(t *testing.T) {
	tc := newTestCluster(t, 1, smallConfig)
	if _, err := NewPolicyEngine(nil, DefaultPolicyConfig()); err == nil {
		t.Fatal("expected error for nil node")
	}
	if _, err := NewPolicyEngine(tc.nodes[0], PolicyConfig{}); err == nil {
		t.Fatal("expected error for zero thresholds")
	}
	if _, err := NewPolicyEngine(tc.nodes[0], DefaultPolicyConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyOneEvictsRecvPoolUnderRemotePressure(t *testing.T) {
	tc := newTestCluster(t, 4, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.SharedPoolBytes = 4096 // almost no shared pool: puts go remote
		cfg.RecvPoolBytes = 1 << 20
		cfg.SlabSize = 4096
		cfg.ReplicationFactor = 1
		return cfg
	})
	vs, _ := tc.nodes[0].AddServer("vm0", 0)
	engine, err := NewPolicyEngine(tc.nodes[0], PolicyConfig{
		RemotePutThreshold:      8,
		EvictBytes:              8192,
		ServerOverflowThreshold: 1 << 30, // policy (2) disabled
		BalloonBytes:            4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give node 0's own recv pool some hosted blocks so eviction has
	// something to reclaim: another node parks entries here.
	vsPeer, _ := tc.nodes[1].AddServer("peer", 0)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{1}, 4096)
		for i := 0; i < 32; i++ {
			if err := vsPeer.PutRemote(ctx, EntryIDt(i), data, 4096, 4096); err != nil {
				t.Errorf("peer put: %v", err)
				return
			}
		}
		// Node 0's tenants hammer remote memory.
		for i := 0; i < 16; i++ {
			if err := vs.PutRemote(ctx, EntryIDt(i), data, 4096, 4096); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		actions, err := engine.Evaluate(ctx)
		if err != nil {
			t.Errorf("Evaluate: %v", err)
			return
		}
		if actions.EvictedBytes == 0 {
			t.Error("policy (1) did not evict despite remote pressure")
		}
		// A second pass with no new activity stays quiet.
		actions, err = engine.Evaluate(ctx)
		if err != nil {
			t.Errorf("second Evaluate: %v", err)
			return
		}
		if actions.EvictedBytes != 0 {
			t.Errorf("policy (1) fired without new pressure: %+v", actions)
		}
	})
}

func TestPolicyTwoBalloonsToOverflowingServer(t *testing.T) {
	tc := newTestCluster(t, 4, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.SharedPoolBytes = 64 << 10 // room for the churn below
		return cfg
	})
	vs, _ := tc.nodes[0].AddServer("hungry", 0)
	var granted int64
	vs.SetBalloonCallback(func(b int64) { granted += b })
	engine, err := NewPolicyEngine(tc.nodes[0], PolicyConfig{
		RemotePutThreshold:      1 << 30, // policy (1) disabled
		EvictBytes:              4096,
		ServerOverflowThreshold: 4,
		BalloonBytes:            8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{2}, 4096)
		// The server churns puts; also free them so the shared pool has
		// empty slabs the balloon can reclaim.
		for i := 0; i < 8; i++ {
			if err := vs.PutShared(EntryIDt(i), data, 4096, 4096); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		for i := 0; i < 8; i++ {
			if err := vs.Delete(ctx, EntryIDt(i)); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
		actions, err := engine.Evaluate(ctx)
		if err != nil {
			t.Errorf("Evaluate: %v", err)
			return
		}
		if actions.Ballooned["hungry"] == 0 {
			t.Errorf("policy (2) did not balloon: %+v", actions)
		}
	})
	if granted == 0 {
		t.Fatal("balloon callback never invoked")
	}
}

// EntryIDt converts test loop indices to entry IDs.
func EntryIDt(i int) pagetable.EntryID { return pagetable.EntryID(i) }

func TestGroupLowWaterRequestsRegroup(t *testing.T) {
	// Six nodes in groups of three; the leader of node 1's group sees its
	// group short of memory and requests regrouping.
	tc := newTestClusterGrouped(t, 6, 3, smallConfig)
	// Make node 1 its group's leader by advertising the most memory.
	_ = tc.dir.Heartbeat(1, 1<<30)
	tc.dir.Regroup()
	group, err := tc.dir.GroupOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if leader, _ := tc.dir.Leader(group); leader != 1 {
		t.Skipf("node 1 not leader of its group (leader=%d)", leader)
	}
	engine, err := NewPolicyEngine(tc.nodes[0], PolicyConfig{
		RemotePutThreshold:      1 << 30,
		EvictBytes:              4096,
		ServerOverflowThreshold: 1 << 30,
		BalloonBytes:            4096,
		GroupLowWater:           1 << 40, // absurdly high: always short
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		actions, err := engine.Evaluate(ctx)
		if err != nil {
			t.Errorf("Evaluate: %v", err)
			return
		}
		if !actions.Regrouped {
			t.Error("leader did not request regrouping under low water")
		}
	})
}
