package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Control-plane message opcodes (two-sided send/recv traffic, §IV.G: "RDMA
// send/receive operations for control plane activities").
const (
	opAlloc     = 1 // reserve a block in the target's receive pool
	opFree      = 2 // release a previously reserved block
	opHeartbeat = 3 // advertise liveness + free receive-pool bytes
	opEvicted   = 4 // notify an owner that its block was evicted
	opStats     = 5 // query free receive-pool bytes
	opMetrics   = 6 // fetch the node's rendered metrics tree
)

// Response status codes.
const (
	stOK      = 0
	stNoSpace = 1
	stError   = 2
)

var errShortMessage = errors.New("core: short control message")

// allocReq asks the remote node to reserve a class-sized block for entry key.
type allocReq struct {
	Key   uint64
	Class int32
}

// allocResp returns the block's global offset within the receive region.
type allocResp struct {
	Offset int64
}

// freeReq releases the block at the given global offset.
type freeReq struct {
	Key    uint64
	Offset int64
}

// heartbeatReq advertises the sender's free receive-pool bytes.
type heartbeatReq struct {
	FreeBytes int64
}

// evictedReq tells the owner that its block for Key on the sender is gone.
type evictedReq struct {
	Key uint64
}

// statsResp reports free receive-pool bytes.
type statsResp struct {
	FreeBytes int64
}

func encodeAllocReq(r allocReq) []byte {
	buf := make([]byte, 1+8+4)
	buf[0] = opAlloc
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint32(buf[9:13], uint32(r.Class))
	return buf
}

func decodeAllocReq(b []byte) (allocReq, error) {
	if len(b) < 13 {
		return allocReq{}, errShortMessage
	}
	return allocReq{
		Key:   binary.BigEndian.Uint64(b[1:9]),
		Class: int32(binary.BigEndian.Uint32(b[9:13])),
	}, nil
}

func encodeAllocResp(r allocResp) []byte {
	buf := make([]byte, 1+8)
	buf[0] = stOK
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.Offset))
	return buf
}

func decodeAllocResp(b []byte) (allocResp, error) {
	if len(b) < 1 {
		return allocResp{}, errShortMessage
	}
	switch b[0] {
	case stOK:
		if len(b) < 9 {
			return allocResp{}, errShortMessage
		}
		return allocResp{Offset: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
	case stNoSpace:
		return allocResp{}, ErrRemoteFull
	default:
		return allocResp{}, fmt.Errorf("core: remote alloc failed: %s", b[1:])
	}
}

func encodeFreeReq(r freeReq) []byte {
	buf := make([]byte, 1+8+8)
	buf[0] = opFree
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint64(buf[9:17], uint64(r.Offset))
	return buf
}

func decodeFreeReq(b []byte) (freeReq, error) {
	if len(b) < 17 {
		return freeReq{}, errShortMessage
	}
	return freeReq{
		Key:    binary.BigEndian.Uint64(b[1:9]),
		Offset: int64(binary.BigEndian.Uint64(b[9:17])),
	}, nil
}

func encodeHeartbeatReq(r heartbeatReq) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opHeartbeat
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.FreeBytes))
	return buf
}

func decodeHeartbeatReq(b []byte) (heartbeatReq, error) {
	if len(b) < 9 {
		return heartbeatReq{}, errShortMessage
	}
	return heartbeatReq{FreeBytes: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
}

func encodeEvictedReq(r evictedReq) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opEvicted
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	return buf
}

func decodeEvictedReq(b []byte) (evictedReq, error) {
	if len(b) < 9 {
		return evictedReq{}, errShortMessage
	}
	return evictedReq{Key: binary.BigEndian.Uint64(b[1:9])}, nil
}

func encodeStatsReq() []byte { return []byte{opStats} }

func encodeMetricsReq() []byte { return []byte{opMetrics} }

func encodeMetricsResp(text string) []byte {
	return append([]byte{stOK}, text...)
}

func decodeMetricsResp(b []byte) (string, error) {
	if len(b) < 1 || b[0] != stOK {
		return "", errShortMessage
	}
	return string(b[1:]), nil
}

func encodeStatsResp(r statsResp) []byte {
	buf := make([]byte, 1+8)
	buf[0] = stOK
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.FreeBytes))
	return buf
}

func decodeStatsResp(b []byte) (statsResp, error) {
	if len(b) < 9 || b[0] != stOK {
		return statsResp{}, errShortMessage
	}
	return statsResp{FreeBytes: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
}

func okResp() []byte { return []byte{stOK} }

func noSpaceResp() []byte { return []byte{stNoSpace} }

func errorResp(err error) []byte {
	return append([]byte{stError}, err.Error()...)
}

func checkOKResp(b []byte) error {
	if len(b) < 1 {
		return errShortMessage
	}
	switch b[0] {
	case stOK:
		return nil
	case stNoSpace:
		return ErrRemoteFull
	default:
		return fmt.Errorf("core: remote error: %s", b[1:])
	}
}
