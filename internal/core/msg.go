package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"godm/internal/cluster"
	"godm/internal/metrics"
	"godm/internal/transport"
)

// Control-plane message opcodes (two-sided send/recv traffic, §IV.G: "RDMA
// send/receive operations for control plane activities").
const (
	opAlloc      = 1 // reserve a block in the target's receive pool
	opFree       = 2 // release a previously reserved block
	opHeartbeat  = 3 // advertise liveness + free receive-pool bytes
	opEvicted    = 4 // notify an owner that its block was evicted
	opStats      = 5 // query free receive-pool bytes
	opMetrics    = 6 // fetch the node's rendered metrics tree
	opAllocBatch = 7 // reserve N blocks in one round trip (all or nothing)
	opFreeBatch  = 8 // release N blocks in one round trip
	// Cluster-scale control plane (§IV.C-D dynamic membership).
	opMapSync      = 9  // epoch-versioned map catch-up: deltas or snapshot
	opLocate       = 10 // confirm a block's location; a moved block redirects
	opMoved        = 11 // tell an owner its block migrated to a new host
	opLeave        = 12 // announce a graceful departure to a peer's directory
	opDecommission = 13 // instruct a node to drain its blocks and leave
	// Cluster-wide observability plane (tree-aggregated metric digests).
	opCluster = 14 // fetch the node's ClusterStore: per-contributor metric digests
	// Balloon harvesting (§IV.F adaptive donation).
	opHarvest = 15 // ask a donor to reclaim part of its donated pool
	// Erasure-coded remote memory (DESIGN.md §16).
	opAllocShard = 16 // reserve a block for one shard of an RS(k,m) stripe
	opShardStat  = 17 // ask which shard of a stripe this node hosts
)

// Response status codes.
const (
	stOK      = 0
	stNoSpace = 1
	stError   = 2
	// stRedirect answers opLocate for a block that migrated during a
	// decommission drain: the response carries the new host and offset, so a
	// stale-epoch reader pays one cheap extra hop instead of failing.
	stRedirect = 3
)

var errShortMessage = errors.New("core: short control message")

// allocReq asks the remote node to reserve a class-sized block for entry key.
// Owner names the block's true owner when the requester allocates on its
// behalf — migration allocs (drain, harvest) are issued by the departing
// host, not the owner. Zero means the caller is the owner. The target
// refuses an on-behalf alloc when it already hosts a copy of (owner, key):
// landing a replica next to its sibling would collapse both onto one slot of
// the owner's replica map and strand a block.
type allocReq struct {
	Key   uint64
	Class int32
	Owner int32
}

// allocResp returns the block's global offset within the receive region.
type allocResp struct {
	Offset int64
}

// freeReq releases the block at the given global offset.
type freeReq struct {
	Key    uint64
	Offset int64
}

// heartbeatReq advertises the sender's free receive-pool bytes, plus any
// metric digests piggybacking up the observability tree: the sender's own
// digest on every beat and, on a group leader's beat to the root, its
// members' stored digests.
type heartbeatReq struct {
	FreeBytes int64
	Digests   []metrics.NodeDigest
}

// evictedReq tells the owner that its block for Key on the sender is gone.
type evictedReq struct {
	Key uint64
}

// statsResp reports free receive-pool bytes.
type statsResp struct {
	FreeBytes int64
}

func encodeAllocReq(r allocReq) []byte {
	buf := make([]byte, 1+8+4+4)
	buf[0] = opAlloc
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint32(buf[9:13], uint32(r.Class))
	binary.BigEndian.PutUint32(buf[13:17], uint32(r.Owner))
	return buf
}

func decodeAllocReq(b []byte) (allocReq, error) {
	if len(b) < 17 {
		return allocReq{}, errShortMessage
	}
	return allocReq{
		Key:   binary.BigEndian.Uint64(b[1:9]),
		Class: int32(binary.BigEndian.Uint32(b[9:13])),
		Owner: int32(binary.BigEndian.Uint32(b[13:17])),
	}, nil
}

func encodeAllocResp(r allocResp) []byte {
	buf := make([]byte, 1+8)
	buf[0] = stOK
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.Offset))
	return buf
}

func decodeAllocResp(b []byte) (allocResp, error) {
	if len(b) < 1 {
		return allocResp{}, errShortMessage
	}
	switch b[0] {
	case stOK:
		if len(b) < 9 {
			return allocResp{}, errShortMessage
		}
		return allocResp{Offset: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
	case stNoSpace:
		return allocResp{}, ErrRemoteFull
	default:
		return allocResp{}, fmt.Errorf("core: remote alloc failed: %s", b[1:])
	}
}

func encodeFreeReq(r freeReq) []byte {
	buf := make([]byte, 1+8+8)
	buf[0] = opFree
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint64(buf[9:17], uint64(r.Offset))
	return buf
}

func decodeFreeReq(b []byte) (freeReq, error) {
	if len(b) < 17 {
		return freeReq{}, errShortMessage
	}
	return freeReq{
		Key:    binary.BigEndian.Uint64(b[1:9]),
		Offset: int64(binary.BigEndian.Uint64(b[9:17])),
	}, nil
}

func encodeHeartbeatReq(r heartbeatReq) []byte {
	buf := make([]byte, 1+8, 1+8+2)
	buf[0] = opHeartbeat
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.FreeBytes))
	// The digest set rides after the fixed header; pre-digest decoders ignore
	// trailing bytes, so mixed-version clusters interoperate.
	return metrics.AppendDigestSet(buf, r.Digests)
}

func decodeHeartbeatReq(b []byte) (heartbeatReq, error) {
	if len(b) < 9 {
		return heartbeatReq{}, errShortMessage
	}
	r := heartbeatReq{FreeBytes: int64(binary.BigEndian.Uint64(b[1:9]))}
	if len(b) > 9 {
		set, _, err := metrics.DecodeDigestSet(b[9:])
		if err != nil {
			return heartbeatReq{}, err
		}
		r.Digests = set
	}
	return r, nil
}

func encodeEvictedReq(r evictedReq) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opEvicted
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	return buf
}

func decodeEvictedReq(b []byte) (evictedReq, error) {
	if len(b) < 9 {
		return evictedReq{}, errShortMessage
	}
	return evictedReq{Key: binary.BigEndian.Uint64(b[1:9])}, nil
}

// Entry-handle flag bits carried in batch alloc requests and recorded in
// client handles. The hosting node treats payloads as opaque; the flags tell
// the *owner's* read path how to decode what it parked.
const (
	// flagDeflate marks a payload stored deflate-compressed (§IV.H); Get
	// inflates it back to the entry's raw length.
	flagDeflate = 1 << 0
)

// batchAllocEntry is one slot of a batch allocation: the entry key, its size
// class, and the handle flags byte.
type batchAllocEntry struct {
	Key   uint64
	Class int32
	Flags byte
}

// batchFreeEntry is one slot of a batch free.
type batchFreeEntry struct {
	Key    uint64
	Offset int64
}

// maxBatchEntries bounds one batch request (a 64 Ki-entry batch of minimum
// 512 B classes already exceeds any receive pool this repo configures).
const maxBatchEntries = 1 << 16

// encodeAllocBatchReq encodes [opAllocBatch][u32 count] followed by count
// fixed-width entries of [u64 key][u32 class][u8 flags].
func encodeAllocBatchReq(entries []batchAllocEntry) []byte {
	buf := make([]byte, 5+13*len(entries))
	buf[0] = opAllocBatch
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(entries)))
	off := 5
	for _, e := range entries {
		binary.BigEndian.PutUint64(buf[off:off+8], e.Key)
		binary.BigEndian.PutUint32(buf[off+8:off+12], uint32(e.Class))
		buf[off+12] = e.Flags
		off += 13
	}
	return buf
}

func decodeAllocBatchReq(b []byte) ([]batchAllocEntry, error) {
	if len(b) < 5 {
		return nil, errShortMessage
	}
	count := int(binary.BigEndian.Uint32(b[1:5]))
	if count <= 0 || count > maxBatchEntries {
		return nil, fmt.Errorf("core: batch alloc count %d out of range", count)
	}
	if len(b) < 5+13*count {
		return nil, errShortMessage
	}
	entries := make([]batchAllocEntry, count)
	off := 5
	for i := range entries {
		entries[i] = batchAllocEntry{
			Key:   binary.BigEndian.Uint64(b[off : off+8]),
			Class: int32(binary.BigEndian.Uint32(b[off+8 : off+12])),
			Flags: b[off+12],
		}
		off += 13
	}
	return entries, nil
}

// encodeAllocBatchResp encodes [stOK] followed by one u64 global offset per
// requested entry, in request order.
func encodeAllocBatchResp(offsets []int64) []byte {
	buf := make([]byte, 1+8*len(offsets))
	buf[0] = stOK
	off := 1
	for _, o := range offsets {
		binary.BigEndian.PutUint64(buf[off:off+8], uint64(o))
		off += 8
	}
	return buf
}

func decodeAllocBatchResp(b []byte, count int) ([]int64, error) {
	if len(b) < 1 {
		return nil, errShortMessage
	}
	switch b[0] {
	case stOK:
		if len(b) < 1+8*count {
			return nil, errShortMessage
		}
		offsets := make([]int64, count)
		off := 1
		for i := range offsets {
			offsets[i] = int64(binary.BigEndian.Uint64(b[off : off+8]))
			off += 8
		}
		return offsets, nil
	case stNoSpace:
		return nil, ErrRemoteFull
	default:
		return nil, fmt.Errorf("core: remote batch alloc failed: %s", b[1:])
	}
}

// encodeFreeBatchReq encodes [opFreeBatch][u32 count] followed by count
// fixed-width entries of [u64 key][u64 offset].
func encodeFreeBatchReq(entries []batchFreeEntry) []byte {
	buf := make([]byte, 5+16*len(entries))
	buf[0] = opFreeBatch
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(entries)))
	off := 5
	for _, e := range entries {
		binary.BigEndian.PutUint64(buf[off:off+8], e.Key)
		binary.BigEndian.PutUint64(buf[off+8:off+16], uint64(e.Offset))
		off += 16
	}
	return buf
}

func decodeFreeBatchReq(b []byte) ([]batchFreeEntry, error) {
	if len(b) < 5 {
		return nil, errShortMessage
	}
	count := int(binary.BigEndian.Uint32(b[1:5]))
	if count <= 0 || count > maxBatchEntries {
		return nil, fmt.Errorf("core: batch free count %d out of range", count)
	}
	if len(b) < 5+16*count {
		return nil, errShortMessage
	}
	entries := make([]batchFreeEntry, count)
	off := 5
	for i := range entries {
		entries[i] = batchFreeEntry{
			Key:    binary.BigEndian.Uint64(b[off : off+8]),
			Offset: int64(binary.BigEndian.Uint64(b[off+8 : off+16])),
		}
		off += 16
	}
	return entries, nil
}

func encodeStatsReq() []byte { return []byte{opStats} }

func encodeMetricsReq() []byte { return []byte{opMetrics} }

func encodeClusterReq() []byte { return []byte{opCluster} }

// encodeClusterResp ships the responding node's ClusterStore contents —
// every contributor digest it has heard — for dmctl top / stats filtering.
func encodeClusterResp(set []metrics.NodeDigest) []byte {
	return metrics.AppendDigestSet([]byte{stOK}, set)
}

func decodeClusterResp(b []byte) ([]metrics.NodeDigest, error) {
	if len(b) < 1 {
		return nil, errShortMessage
	}
	if b[0] != stOK {
		return nil, fmt.Errorf("core: cluster view failed: %s", b[1:])
	}
	set, _, err := metrics.DecodeDigestSet(b[1:])
	return set, err
}

func encodeMetricsResp(text string) []byte {
	return append([]byte{stOK}, text...)
}

func decodeMetricsResp(b []byte) (string, error) {
	if len(b) < 1 || b[0] != stOK {
		return "", errShortMessage
	}
	return string(b[1:]), nil
}

func encodeStatsResp(r statsResp) []byte {
	buf := make([]byte, 1+8)
	buf[0] = stOK
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.FreeBytes))
	return buf
}

func decodeStatsResp(b []byte) (statsResp, error) {
	if len(b) < 9 || b[0] != stOK {
		return statsResp{}, errShortMessage
	}
	return statsResp{FreeBytes: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
}

func okResp() []byte { return []byte{stOK} }

func noSpaceResp() []byte { return []byte{stNoSpace} }

func errorResp(err error) []byte {
	return append([]byte{stError}, err.Error()...)
}

func checkOKResp(b []byte) error {
	if len(b) < 1 {
		return errShortMessage
	}
	switch b[0] {
	case stOK:
		return nil
	case stNoSpace:
		return ErrRemoteFull
	default:
		return fmt.Errorf("core: remote error: %s", b[1:])
	}
}

// mapSyncReq wraps a cluster sync request: the requester names the origin
// directory its cached map came from and the epoch it holds.
func encodeMapSyncReq(req cluster.SyncRequest) []byte {
	return cluster.AppendSyncRequest([]byte{opMapSync}, req)
}

func decodeMapSyncReq(b []byte) (cluster.SyncRequest, error) {
	if len(b) < 1 {
		return cluster.SyncRequest{}, errShortMessage
	}
	req, _, err := cluster.DecodeSyncRequest(b[1:])
	return req, err
}

func encodeMapSyncResp(resp cluster.SyncResponse) []byte {
	return cluster.AppendSyncResponse([]byte{stOK}, resp)
}

func decodeMapSyncResp(b []byte) (cluster.SyncResponse, error) {
	if len(b) < 1 {
		return cluster.SyncResponse{}, errShortMessage
	}
	if b[0] != stOK {
		return cluster.SyncResponse{}, fmt.Errorf("core: remote map sync failed: %s", b[1:])
	}
	resp, _, err := cluster.DecodeSyncResponse(b[1:])
	return resp, err
}

// locateReq asks whether the block parked under key is still at offset on
// the receiving node. stOK confirms it; a drained block answers stRedirect
// with its new home.
type locateReq struct {
	Key    uint64
	Offset int64
}

// redirect is the payload of an stRedirect response: the block's new home.
type redirect struct {
	Node   transport.NodeID
	Offset int64
}

func encodeLocateReq(r locateReq) []byte {
	buf := make([]byte, 1+8+8)
	buf[0] = opLocate
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint64(buf[9:17], uint64(r.Offset))
	return buf
}

func decodeLocateReq(b []byte) (locateReq, error) {
	if len(b) < 17 {
		return locateReq{}, errShortMessage
	}
	return locateReq{
		Key:    binary.BigEndian.Uint64(b[1:9]),
		Offset: int64(binary.BigEndian.Uint64(b[9:17])),
	}, nil
}

func encodeRedirectResp(r redirect) []byte {
	buf := make([]byte, 1+8+8)
	buf[0] = stRedirect
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.Node))
	binary.BigEndian.PutUint64(buf[9:17], uint64(r.Offset))
	return buf
}

// decodeLocateResp returns (redirect, false, nil) when the block moved,
// (zero, true, nil) when it is confirmed in place, and an error otherwise.
func decodeLocateResp(b []byte) (redirect, bool, error) {
	if len(b) < 1 {
		return redirect{}, false, errShortMessage
	}
	switch b[0] {
	case stOK:
		return redirect{}, true, nil
	case stRedirect:
		if len(b) < 17 {
			return redirect{}, false, errShortMessage
		}
		return redirect{
			Node:   transport.NodeID(binary.BigEndian.Uint64(b[1:9])),
			Offset: int64(binary.BigEndian.Uint64(b[9:17])),
		}, false, nil
	default:
		return redirect{}, false, fmt.Errorf("core: locate failed: %s", b[1:])
	}
}

// movedReq tells a block's owner that the block for Key now lives on NewNode
// at NewOffset (sent by a decommissioning host as it drains).
type movedReq struct {
	Key       uint64
	NewNode   transport.NodeID
	NewOffset int64
}

func encodeMovedReq(r movedReq) []byte {
	buf := make([]byte, 1+8+8+8)
	buf[0] = opMoved
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint64(buf[9:17], uint64(r.NewNode))
	binary.BigEndian.PutUint64(buf[17:25], uint64(r.NewOffset))
	return buf
}

func decodeMovedReq(b []byte) (movedReq, error) {
	if len(b) < 25 {
		return movedReq{}, errShortMessage
	}
	return movedReq{
		Key:       binary.BigEndian.Uint64(b[1:9]),
		NewNode:   transport.NodeID(binary.BigEndian.Uint64(b[9:17])),
		NewOffset: int64(binary.BigEndian.Uint64(b[17:25])),
	}, nil
}

// leaveReq announces Node's graceful departure; the receiver records it as a
// Left map delta instead of waiting out the failure detector.
type leaveReq struct {
	Node transport.NodeID
}

func encodeLeaveReq(r leaveReq) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opLeave
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.Node))
	return buf
}

func decodeLeaveReq(b []byte) (leaveReq, error) {
	if len(b) < 9 {
		return leaveReq{}, errShortMessage
	}
	return leaveReq{Node: transport.NodeID(binary.BigEndian.Uint64(b[1:9]))}, nil
}

func encodeDecommissionReq() []byte { return []byte{opDecommission} }

// decommissionResp reports how many hosted blocks the drain migrated.
type decommissionResp struct {
	Moved int32
}

func encodeDecommissionResp(r decommissionResp) []byte {
	buf := make([]byte, 1+4)
	buf[0] = stOK
	binary.BigEndian.PutUint32(buf[1:5], uint32(r.Moved))
	return buf
}

func decodeDecommissionResp(b []byte) (decommissionResp, error) {
	if len(b) < 1 {
		return decommissionResp{}, errShortMessage
	}
	if b[0] != stOK {
		return decommissionResp{}, fmt.Errorf("core: remote decommission failed: %s", b[1:])
	}
	if len(b) < 5 {
		return decommissionResp{}, errShortMessage
	}
	return decommissionResp{Moved: int32(binary.BigEndian.Uint32(b[1:5]))}, nil
}

// harvestReq asks a donor node to reclaim wantBytes from its receive pool.
type harvestReq struct {
	WantBytes int64
}

func encodeHarvestReq(r harvestReq) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opHarvest
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.WantBytes))
	return buf
}

func decodeHarvestReq(b []byte) (harvestReq, error) {
	if len(b) < 9 {
		return harvestReq{}, errShortMessage
	}
	return harvestReq{WantBytes: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
}

// harvestResp reports how much budget came back and how many hosted blocks
// had to migrate to get it.
type harvestResp struct {
	Reclaimed int64
	Moved     int32
}

func encodeHarvestResp(r harvestResp) []byte {
	buf := make([]byte, 1+8+4)
	buf[0] = stOK
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.Reclaimed))
	binary.BigEndian.PutUint32(buf[9:13], uint32(r.Moved))
	return buf
}

func decodeHarvestResp(b []byte) (harvestResp, error) {
	if len(b) < 1 {
		return harvestResp{}, errShortMessage
	}
	if b[0] != stOK {
		return harvestResp{}, fmt.Errorf("core: remote harvest failed: %s", b[1:])
	}
	if len(b) < 13 {
		return harvestResp{}, errShortMessage
	}
	return harvestResp{
		Reclaimed: int64(binary.BigEndian.Uint64(b[1:9])),
		Moved:     int32(binary.BigEndian.Uint32(b[9:13])),
	}, nil
}

// allocShardReq asks the remote node to reserve a class-sized block for shard
// Idx of owner's RS(K, M) stripe under key. Unlike opAlloc, the target always
// refuses when it already hosts any block under (owner, key) — two shards of
// one stripe on one donor would halve the stripe's erasure tolerance — and it
// records the shard coordinates so invariant checkers and repair tooling can
// ask which shard lives where (opShardStat).
type allocShardReq struct {
	Key   uint64
	Class int32
	Owner int32
	Idx   uint8
	K     uint8
	M     uint8
}

func encodeAllocShardReq(r allocShardReq) []byte {
	buf := make([]byte, 1+8+4+4+3)
	buf[0] = opAllocShard
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint32(buf[9:13], uint32(r.Class))
	binary.BigEndian.PutUint32(buf[13:17], uint32(r.Owner))
	buf[17] = r.Idx
	buf[18] = r.K
	buf[19] = r.M
	return buf
}

func decodeAllocShardReq(b []byte) (allocShardReq, error) {
	if len(b) < 20 {
		return allocShardReq{}, errShortMessage
	}
	return allocShardReq{
		Key:   binary.BigEndian.Uint64(b[1:9]),
		Class: int32(binary.BigEndian.Uint32(b[9:13])),
		Owner: int32(binary.BigEndian.Uint32(b[13:17])),
		Idx:   b[17],
		K:     b[18],
		M:     b[19],
	}, nil
}

// shardStatReq asks which shard of owner's stripe under Key the target hosts.
type shardStatReq struct {
	Key   uint64
	Owner int32
}

// shardStatResp carries the hosted shard's coordinates; Hosted false means
// the target holds no shard of that stripe.
type shardStatResp struct {
	Hosted bool
	Idx    uint8
	K      uint8
	M      uint8
}

func encodeShardStatReq(r shardStatReq) []byte {
	buf := make([]byte, 1+8+4)
	buf[0] = opShardStat
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint32(buf[9:13], uint32(r.Owner))
	return buf
}

func decodeShardStatReq(b []byte) (shardStatReq, error) {
	if len(b) < 13 {
		return shardStatReq{}, errShortMessage
	}
	return shardStatReq{
		Key:   binary.BigEndian.Uint64(b[1:9]),
		Owner: int32(binary.BigEndian.Uint32(b[9:13])),
	}, nil
}

func encodeShardStatResp(r shardStatResp) []byte {
	buf := make([]byte, 1+4)
	buf[0] = stOK
	if r.Hosted {
		buf[1] = 1
	}
	buf[2] = r.Idx
	buf[3] = r.K
	buf[4] = r.M
	return buf
}

func decodeShardStatResp(b []byte) (shardStatResp, error) {
	if len(b) < 1 {
		return shardStatResp{}, errShortMessage
	}
	if b[0] != stOK {
		return shardStatResp{}, fmt.Errorf("core: remote shard stat failed: %s", b[1:])
	}
	if len(b) < 5 {
		return shardStatResp{}, errShortMessage
	}
	return shardStatResp{Hosted: b[1] == 1, Idx: b[2], K: b[3], M: b[4]}, nil
}
