package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Control-plane message opcodes (two-sided send/recv traffic, §IV.G: "RDMA
// send/receive operations for control plane activities").
const (
	opAlloc      = 1 // reserve a block in the target's receive pool
	opFree       = 2 // release a previously reserved block
	opHeartbeat  = 3 // advertise liveness + free receive-pool bytes
	opEvicted    = 4 // notify an owner that its block was evicted
	opStats      = 5 // query free receive-pool bytes
	opMetrics    = 6 // fetch the node's rendered metrics tree
	opAllocBatch = 7 // reserve N blocks in one round trip (all or nothing)
	opFreeBatch  = 8 // release N blocks in one round trip
)

// Response status codes.
const (
	stOK      = 0
	stNoSpace = 1
	stError   = 2
)

var errShortMessage = errors.New("core: short control message")

// allocReq asks the remote node to reserve a class-sized block for entry key.
type allocReq struct {
	Key   uint64
	Class int32
}

// allocResp returns the block's global offset within the receive region.
type allocResp struct {
	Offset int64
}

// freeReq releases the block at the given global offset.
type freeReq struct {
	Key    uint64
	Offset int64
}

// heartbeatReq advertises the sender's free receive-pool bytes.
type heartbeatReq struct {
	FreeBytes int64
}

// evictedReq tells the owner that its block for Key on the sender is gone.
type evictedReq struct {
	Key uint64
}

// statsResp reports free receive-pool bytes.
type statsResp struct {
	FreeBytes int64
}

func encodeAllocReq(r allocReq) []byte {
	buf := make([]byte, 1+8+4)
	buf[0] = opAlloc
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint32(buf[9:13], uint32(r.Class))
	return buf
}

func decodeAllocReq(b []byte) (allocReq, error) {
	if len(b) < 13 {
		return allocReq{}, errShortMessage
	}
	return allocReq{
		Key:   binary.BigEndian.Uint64(b[1:9]),
		Class: int32(binary.BigEndian.Uint32(b[9:13])),
	}, nil
}

func encodeAllocResp(r allocResp) []byte {
	buf := make([]byte, 1+8)
	buf[0] = stOK
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.Offset))
	return buf
}

func decodeAllocResp(b []byte) (allocResp, error) {
	if len(b) < 1 {
		return allocResp{}, errShortMessage
	}
	switch b[0] {
	case stOK:
		if len(b) < 9 {
			return allocResp{}, errShortMessage
		}
		return allocResp{Offset: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
	case stNoSpace:
		return allocResp{}, ErrRemoteFull
	default:
		return allocResp{}, fmt.Errorf("core: remote alloc failed: %s", b[1:])
	}
}

func encodeFreeReq(r freeReq) []byte {
	buf := make([]byte, 1+8+8)
	buf[0] = opFree
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	binary.BigEndian.PutUint64(buf[9:17], uint64(r.Offset))
	return buf
}

func decodeFreeReq(b []byte) (freeReq, error) {
	if len(b) < 17 {
		return freeReq{}, errShortMessage
	}
	return freeReq{
		Key:    binary.BigEndian.Uint64(b[1:9]),
		Offset: int64(binary.BigEndian.Uint64(b[9:17])),
	}, nil
}

func encodeHeartbeatReq(r heartbeatReq) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opHeartbeat
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.FreeBytes))
	return buf
}

func decodeHeartbeatReq(b []byte) (heartbeatReq, error) {
	if len(b) < 9 {
		return heartbeatReq{}, errShortMessage
	}
	return heartbeatReq{FreeBytes: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
}

func encodeEvictedReq(r evictedReq) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opEvicted
	binary.BigEndian.PutUint64(buf[1:9], r.Key)
	return buf
}

func decodeEvictedReq(b []byte) (evictedReq, error) {
	if len(b) < 9 {
		return evictedReq{}, errShortMessage
	}
	return evictedReq{Key: binary.BigEndian.Uint64(b[1:9])}, nil
}

// Entry-handle flag bits carried in batch alloc requests and recorded in
// client handles. The hosting node treats payloads as opaque; the flags tell
// the *owner's* read path how to decode what it parked.
const (
	// flagDeflate marks a payload stored deflate-compressed (§IV.H); Get
	// inflates it back to the entry's raw length.
	flagDeflate = 1 << 0
)

// batchAllocEntry is one slot of a batch allocation: the entry key, its size
// class, and the handle flags byte.
type batchAllocEntry struct {
	Key   uint64
	Class int32
	Flags byte
}

// batchFreeEntry is one slot of a batch free.
type batchFreeEntry struct {
	Key    uint64
	Offset int64
}

// maxBatchEntries bounds one batch request (a 64 Ki-entry batch of minimum
// 512 B classes already exceeds any receive pool this repo configures).
const maxBatchEntries = 1 << 16

// encodeAllocBatchReq encodes [opAllocBatch][u32 count] followed by count
// fixed-width entries of [u64 key][u32 class][u8 flags].
func encodeAllocBatchReq(entries []batchAllocEntry) []byte {
	buf := make([]byte, 5+13*len(entries))
	buf[0] = opAllocBatch
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(entries)))
	off := 5
	for _, e := range entries {
		binary.BigEndian.PutUint64(buf[off:off+8], e.Key)
		binary.BigEndian.PutUint32(buf[off+8:off+12], uint32(e.Class))
		buf[off+12] = e.Flags
		off += 13
	}
	return buf
}

func decodeAllocBatchReq(b []byte) ([]batchAllocEntry, error) {
	if len(b) < 5 {
		return nil, errShortMessage
	}
	count := int(binary.BigEndian.Uint32(b[1:5]))
	if count <= 0 || count > maxBatchEntries {
		return nil, fmt.Errorf("core: batch alloc count %d out of range", count)
	}
	if len(b) < 5+13*count {
		return nil, errShortMessage
	}
	entries := make([]batchAllocEntry, count)
	off := 5
	for i := range entries {
		entries[i] = batchAllocEntry{
			Key:   binary.BigEndian.Uint64(b[off : off+8]),
			Class: int32(binary.BigEndian.Uint32(b[off+8 : off+12])),
			Flags: b[off+12],
		}
		off += 13
	}
	return entries, nil
}

// encodeAllocBatchResp encodes [stOK] followed by one u64 global offset per
// requested entry, in request order.
func encodeAllocBatchResp(offsets []int64) []byte {
	buf := make([]byte, 1+8*len(offsets))
	buf[0] = stOK
	off := 1
	for _, o := range offsets {
		binary.BigEndian.PutUint64(buf[off:off+8], uint64(o))
		off += 8
	}
	return buf
}

func decodeAllocBatchResp(b []byte, count int) ([]int64, error) {
	if len(b) < 1 {
		return nil, errShortMessage
	}
	switch b[0] {
	case stOK:
		if len(b) < 1+8*count {
			return nil, errShortMessage
		}
		offsets := make([]int64, count)
		off := 1
		for i := range offsets {
			offsets[i] = int64(binary.BigEndian.Uint64(b[off : off+8]))
			off += 8
		}
		return offsets, nil
	case stNoSpace:
		return nil, ErrRemoteFull
	default:
		return nil, fmt.Errorf("core: remote batch alloc failed: %s", b[1:])
	}
}

// encodeFreeBatchReq encodes [opFreeBatch][u32 count] followed by count
// fixed-width entries of [u64 key][u64 offset].
func encodeFreeBatchReq(entries []batchFreeEntry) []byte {
	buf := make([]byte, 5+16*len(entries))
	buf[0] = opFreeBatch
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(entries)))
	off := 5
	for _, e := range entries {
		binary.BigEndian.PutUint64(buf[off:off+8], e.Key)
		binary.BigEndian.PutUint64(buf[off+8:off+16], uint64(e.Offset))
		off += 16
	}
	return buf
}

func decodeFreeBatchReq(b []byte) ([]batchFreeEntry, error) {
	if len(b) < 5 {
		return nil, errShortMessage
	}
	count := int(binary.BigEndian.Uint32(b[1:5]))
	if count <= 0 || count > maxBatchEntries {
		return nil, fmt.Errorf("core: batch free count %d out of range", count)
	}
	if len(b) < 5+16*count {
		return nil, errShortMessage
	}
	entries := make([]batchFreeEntry, count)
	off := 5
	for i := range entries {
		entries[i] = batchFreeEntry{
			Key:    binary.BigEndian.Uint64(b[off : off+8]),
			Offset: int64(binary.BigEndian.Uint64(b[off+8 : off+16])),
		}
		off += 16
	}
	return entries, nil
}

func encodeStatsReq() []byte { return []byte{opStats} }

func encodeMetricsReq() []byte { return []byte{opMetrics} }

func encodeMetricsResp(text string) []byte {
	return append([]byte{stOK}, text...)
}

func decodeMetricsResp(b []byte) (string, error) {
	if len(b) < 1 || b[0] != stOK {
		return "", errShortMessage
	}
	return string(b[1:]), nil
}

func encodeStatsResp(r statsResp) []byte {
	buf := make([]byte, 1+8)
	buf[0] = stOK
	binary.BigEndian.PutUint64(buf[1:9], uint64(r.FreeBytes))
	return buf
}

func decodeStatsResp(b []byte) (statsResp, error) {
	if len(b) < 9 || b[0] != stOK {
		return statsResp{}, errShortMessage
	}
	return statsResp{FreeBytes: int64(binary.BigEndian.Uint64(b[1:9]))}, nil
}

func okResp() []byte { return []byte{stOK} }

func noSpaceResp() []byte { return []byte{stNoSpace} }

func errorResp(err error) []byte {
	return append([]byte{stError}, err.Error()...)
}

func checkOKResp(b []byte) error {
	if len(b) < 1 {
		return errShortMessage
	}
	switch b[0] {
	case stOK:
		return nil
	case stNoSpace:
		return ErrRemoteFull
	default:
		return fmt.Errorf("core: remote error: %s", b[1:])
	}
}
