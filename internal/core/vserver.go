package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"godm/internal/pagetable"
	"godm/internal/replication"
	"godm/internal/slab"
	"godm/internal/trace"
	"godm/internal/transport"
)

// keyEntryMask keeps the low 48 bits of an entry ID; the top 16 bits carry
// the virtual-server index, making wire keys unique per node.
const keyEntryMask = (uint64(1) << 48) - 1

// VirtualServer is one VM, container, or JVM executor registered with the
// node manager. Its methods are the LDMC interface: transparent puts and
// gets against disaggregated memory, with the memory map recording where
// each entry lives (§IV.B).
type VirtualServer struct {
	name     string
	index    uint16
	node     *Node
	donation int64
	table    *pagetable.Table

	// putCount counts disaggregated-memory puts, the signal §IV.F's
	// ballooning policy watches.
	putCount atomic.Int64

	onBalloon func(bytes int64)
}

// Name returns the virtual server's name.
func (vs *VirtualServer) Name() string { return vs.name }

// Donation returns the bytes this server donated to the shared pool.
func (vs *VirtualServer) Donation() int64 { return vs.donation }

// Table exposes the server's disaggregated memory map (read-mostly use:
// experiments inspect tier distributions).
func (vs *VirtualServer) Table() *pagetable.Table { return vs.table }

// SetBalloonCallback installs the function invoked when the node manager
// balloons memory back to this server.
func (vs *VirtualServer) SetBalloonCallback(fn func(bytes int64)) {
	vs.node.vsMu.Lock()
	vs.onBalloon = fn
	vs.node.vsMu.Unlock()
}

func (vs *VirtualServer) key(id pagetable.EntryID) uint64 {
	return uint64(vs.index)<<48 | (uint64(id) & keyEntryMask)
}

// WireKey returns the cluster-wide key id travels under — the key remote
// hosts record against this owner. Invariant checkers use it to ask donor
// nodes whether they still hold copies of a rolled-back entry.
func (vs *VirtualServer) WireKey(id pagetable.EntryID) uint64 { return vs.key(id) }

// PutShared parks an entry in the node-coordinated shared memory pool.
// data is the (possibly compressed) payload, class its size class, and
// rawSize the uncompressed size. It returns ErrNoSpace when the pool is
// full, in which case the caller should try PutRemote.
func (vs *VirtualServer) PutShared(id pagetable.EntryID, data []byte, class, rawSize int) error {
	if len(data) > class {
		return fmt.Errorf("core: payload %d exceeds class %d", len(data), class)
	}
	h, err := vs.node.shared.Alloc(class)
	if err != nil {
		if errors.Is(err, slab.ErrNoSpace) {
			return fmt.Errorf("%w: entry %d", ErrNoSpace, id)
		}
		return err
	}
	if err := vs.node.shared.Write(h, data); err != nil {
		_ = vs.node.shared.Free(h)
		return err
	}
	vs.dropOld(context.Background(), id)
	vs.table.Put(id, pagetable.Location{
		Tier:       pagetable.TierSharedMemory,
		Primary:    pagetable.NodeID(vs.node.cfg.ID),
		Ref:        pagetable.SlabRef{SlabID: h.SlabID, Offset: h.Offset},
		StoredSize: class,
		RawSize:    rawSize,
	})
	vs.node.counters.sharedPuts.Add(1)
	vs.node.met.sharedPuts.Inc()
	vs.putCount.Add(1)
	return nil
}

// PutRemote replicates an entry into the receive pools of remote group
// members (the RDMC path). It returns ErrRemoteFull or ErrNoCandidates when
// cluster memory cannot hold the entry, in which case the caller should fall
// through to disk.
func (vs *VirtualServer) PutRemote(ctx context.Context, id pagetable.EntryID, data []byte, class, rawSize int) error {
	if len(data) > class {
		return fmt.Errorf("core: payload %d exceeds class %d", len(data), class)
	}
	ctx, sp := trace.Start(ctx, "core.put_remote")
	sp.Annotate("entry", uint64(id))
	sp.Annotate("class", class)
	defer sp.End()
	start := trace.Now(ctx)
	// A striped overwrite must release the old stripe before the new write:
	// donors refuse a second block under the same (owner, key) — the
	// distinct-donor invariant — so the replication path's write-new-then-
	// drop-old order cannot land a fresh stripe on any donor of the old one.
	// The caller still holds the payload, so the only durability gap is the
	// write itself; an aborted write leaves the entry absent, never torn
	// across stripe generations.
	if vs.node.ecReg != nil {
		if old, err := vs.table.Get(id); err == nil && old.Tier == pagetable.TierRemote {
			vs.table.Delete(id)
			if err := vs.releaseLocation(ctx, id, old); err != nil {
				sp.Annotate("stale_release_err", err)
			}
		}
	}
	_, pick := trace.Start(ctx, "placement.pick")
	nodes, err := vs.node.pickRemotes(vs.node.policy.Width(), nil)
	pick.EndErr(err)
	if err != nil {
		sp.Annotate("err", err)
		return err
	}
	key := vs.key(id)
	// Each donor allocates the per-shard class: the full class under
	// replication, ceil(class/k) under RS(k, m) — coding's capacity win.
	vs.node.remote.setClass(key, vs.node.policy.ShardClass(class))
	if err := vs.node.policy.Write(ctx, nodes, replication.EntryID(key), data); err != nil {
		if errors.Is(err, replication.ErrAborted) {
			err = fmt.Errorf("%w: %v", ErrRemoteFull, err)
		}
		sp.Annotate("err", err)
		return err
	}
	vs.dropOld(ctx, id)
	loc := pagetable.Location{
		Tier:       pagetable.TierRemote,
		Primary:    pagetable.NodeID(nodes[0]),
		StoredSize: class,
		RawSize:    rawSize,
	}
	for _, n := range nodes[1:] {
		loc.Replicas = append(loc.Replicas, pagetable.NodeID(n))
	}
	vs.table.Put(id, loc)
	vs.node.counters.remotePuts.Add(1)
	vs.node.met.remotePuts.Inc()
	elapsed := trace.Now(ctx) - start
	vs.node.met.remotePutLatency.Observe(elapsed)
	if vs.node.slos.Observe("put", elapsed) {
		// The slow-op watchdog: the annotation flags this span's trace into
		// the flight recorder's flagged ring.
		sp.Annotate("slow", "put")
	}
	vs.putCount.Add(1)
	return nil
}

// Put stores an entry in the fastest tier with room: shared memory first,
// then remote memory. This is the transparent LDMS path of Figure 1.
func (vs *VirtualServer) Put(ctx context.Context, id pagetable.EntryID, data []byte, class, rawSize int) (pagetable.Tier, error) {
	err := vs.PutShared(id, data, class, rawSize)
	if err == nil {
		return pagetable.TierSharedMemory, nil
	}
	if !errors.Is(err, ErrNoSpace) {
		return 0, err
	}
	if err := vs.PutRemote(ctx, id, data, class, rawSize); err != nil {
		return 0, err
	}
	return pagetable.TierRemote, nil
}

// Get fetches an entry from wherever it lives, returning the stored payload
// and its location. Remote reads go one-sided to the primary and fail over
// through the replicas.
func (vs *VirtualServer) Get(ctx context.Context, id pagetable.EntryID) ([]byte, pagetable.Location, error) {
	loc, err := vs.table.Get(id)
	if err != nil {
		return nil, loc, err
	}
	ctx, sp := trace.Start(ctx, "core.get")
	sp.Annotate("entry", uint64(id))
	sp.Annotate("tier", loc.Tier)
	defer sp.End()
	switch loc.Tier {
	case pagetable.TierSharedMemory:
		h := slab.Handle{SlabID: loc.Ref.SlabID, Offset: loc.Ref.Offset, Class: loc.StoredSize}
		data, err := vs.node.shared.Read(h, loc.StoredSize)
		if err != nil {
			sp.Annotate("err", err)
			return nil, loc, err
		}
		vs.node.counters.sharedGets.Add(1)
		vs.node.met.sharedGets.Inc()
		return data, loc, nil
	case pagetable.TierRemote:
		start := trace.Now(ctx)
		data, _, err := vs.node.policy.Read(ctx, locationNodes(loc), replication.EntryID(vs.key(id)))
		if err != nil {
			sp.Annotate("err", err)
			return nil, loc, err
		}
		vs.node.counters.remoteGets.Add(1)
		vs.node.met.remoteGets.Inc()
		elapsed := trace.Now(ctx) - start
		vs.node.met.remoteGetLatency.Observe(elapsed)
		if vs.node.slos.Observe("get", elapsed) {
			sp.Annotate("slow", "get")
		}
		return data, loc, nil
	default:
		return nil, loc, fmt.Errorf("core: entry %d is on tier %v, not managed here", id, loc.Tier)
	}
}

// GetAt fetches n bytes starting at off within a stored entry, without
// moving the rest — the window-based batch layout relies on this to fault a
// single page out of a parked batch (one message, one slot). Remote reads go
// one-sided at the recorded region offset plus off.
func (vs *VirtualServer) GetAt(ctx context.Context, id pagetable.EntryID, off, n int) ([]byte, error) {
	loc, err := vs.table.Get(id)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || off+n > loc.StoredSize {
		return nil, fmt.Errorf("core: range [%d,%d) exceeds stored size %d", off, off+n, loc.StoredSize)
	}
	switch loc.Tier {
	case pagetable.TierSharedMemory:
		h := slab.Handle{SlabID: loc.Ref.SlabID, Offset: loc.Ref.Offset, Class: loc.StoredSize}
		data, err := vs.node.shared.ReadAt(h, off, n)
		if err != nil {
			return nil, err
		}
		vs.node.counters.sharedGets.Add(1)
		return data, nil
	case pagetable.TierRemote:
		data, err := vs.node.policy.ReadAt(ctx, locationNodes(loc), replication.EntryID(vs.key(id)), off, n)
		if err != nil {
			return nil, err
		}
		vs.node.counters.remoteGets.Add(1)
		return data, nil
	default:
		return nil, fmt.Errorf("core: entry %d is on tier %v, not managed here", id, loc.Tier)
	}
}

// Delete removes an entry from disaggregated memory. Deleting an absent
// entry is not an error (idempotent, matching swap-slot semantics).
func (vs *VirtualServer) Delete(ctx context.Context, id pagetable.EntryID) error {
	loc, err := vs.table.Get(id)
	if err != nil {
		if errors.Is(err, pagetable.ErrNotFound) {
			return nil
		}
		return err
	}
	vs.table.Delete(id)
	return vs.releaseLocation(ctx, id, loc)
}

// dropOld releases storage held by a previous version of id, if any.
func (vs *VirtualServer) dropOld(ctx context.Context, id pagetable.EntryID) {
	loc, err := vs.table.Get(id)
	if err != nil {
		return
	}
	_ = vs.releaseLocation(ctx, id, loc)
}

func (vs *VirtualServer) releaseLocation(ctx context.Context, id pagetable.EntryID, loc pagetable.Location) error {
	switch loc.Tier {
	case pagetable.TierSharedMemory:
		h := slab.Handle{SlabID: loc.Ref.SlabID, Offset: loc.Ref.Offset, Class: loc.StoredSize}
		return vs.node.shared.Free(h)
	case pagetable.TierRemote:
		return vs.node.policy.Delete(ctx, locationNodes(loc), replication.EntryID(vs.key(id)))
	default:
		return nil
	}
}

// Location reports where an entry currently lives.
func (vs *VirtualServer) Location(id pagetable.EntryID) (pagetable.Location, error) {
	return vs.table.Get(id)
}

// ReadFrom fetches a remote entry's payload directly from one specific member
// of its replica set, bypassing the usual primary-then-replicas failover. The
// chaos invariant checkers use it to verify replicated-write atomicity: after
// a committed write, every holder must serve the same bytes.
func (vs *VirtualServer) ReadFrom(ctx context.Context, id pagetable.EntryID, node transport.NodeID) ([]byte, error) {
	loc, err := vs.table.Get(id)
	if err != nil {
		return nil, err
	}
	if loc.Tier != pagetable.TierRemote {
		return nil, fmt.Errorf("core: entry %d is on tier %v, not remote", id, loc.Tier)
	}
	member := false
	for _, n := range locationNodes(loc) {
		if transport.NodeID(n) == node {
			member = true
			break
		}
	}
	if !member {
		return nil, fmt.Errorf("core: node %d is not in the replica set of entry %d", node, id)
	}
	return vs.node.remote.Get(ctx, replication.NodeID(node), replication.EntryID(vs.key(id)))
}
