// Package core implements the per-node disaggregated memory orchestrator of
// §IV.B (Figure 1): the node manager with its node-coordinated shared memory
// pool, the cluster-wide send and receive buffer pools carved from
// RDMA-registered regions, and the four request paths — local disaggregated
// memory client and server (LDMC/LDMS) between virtual servers and their
// host, and remote disaggregated memory client and server (RDMC/RDMS)
// between nodes.
//
// A virtual server that outgrows its allocation Puts data entries through
// its LDMC; the LDMS first tries the node's shared memory pool and, when the
// node is out of idle memory, the RDMC replicates the entry into the receive
// pools of remote nodes selected by the group leader's candidate list and a
// pluggable balancing policy. The memory map tracking each entry's location
// lives in the owning virtual server (internal/pagetable).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/ec"
	"godm/internal/metrics"
	"godm/internal/pagetable"
	"godm/internal/placement"
	"godm/internal/replication"
	"godm/internal/slab"
	"godm/internal/trace"
	"godm/internal/transport"
)

// RecvRegionID is the well-known region every node exposes as its
// cluster-wide receive buffer pool.
const RecvRegionID transport.RegionID = 1

// Sentinel errors.
var (
	// ErrNoSpace is returned when the node-level shared memory pool cannot
	// hold the entry; the caller should fall through to remote memory.
	ErrNoSpace = errors.New("core: shared memory pool full")
	// ErrRemoteFull is returned when the chosen remote nodes cannot hold the
	// entry; the caller should fall through to disk.
	ErrRemoteFull = errors.New("core: remote memory full")
	// ErrNoCandidates is returned when no alive group member can be chosen.
	ErrNoCandidates = errors.New("core: no candidate remote nodes")
	// ErrUnknownServer is returned for operations on unregistered virtual
	// servers.
	ErrUnknownServer = errors.New("core: unknown virtual server")
)

// DefaultPoolShards is the lock-shard count used for the node's slab pools
// when Config.PoolShards is zero. It is a constant (not derived from the
// machine's core count) so simulated runs produce identical slab layouts on
// every host.
const DefaultPoolShards = 8

// DefaultFabricRTT is the round-trip time the default SLO objectives assume:
// the 1 ms emulated fabric latency this repo benchmarks against. Deployments
// on faster fabrics tighten it via Config.Objectives.
const DefaultFabricRTT = time.Millisecond

// Config shapes one node.
type Config struct {
	// ID is this node's identity on the fabric and in the directory.
	ID transport.NodeID
	// SharedPoolBytes is the capacity of the node-coordinated shared memory
	// pool (the aggregated x% donations of the node's virtual servers).
	SharedPoolBytes int64
	// SendPoolBytes is the capacity of the RDMA send buffer pool used to
	// stage outgoing batches.
	SendPoolBytes int64
	// RecvPoolBytes is the capacity of the receive buffer pool this node
	// donates to the cluster (must be a multiple of SlabSize).
	RecvPoolBytes int64
	// SlabSize is the registration granularity of all pools.
	SlabSize int
	// PoolShards is the lock-shard count for the node's slab pools: ops on
	// blocks in different shards never contend. 0 selects DefaultPoolShards;
	// 1 reproduces the single-lock allocator.
	PoolShards int
	// ReplicationFactor is the number of copies for each remote entry.
	ReplicationFactor int
	// Durability selects the remote durability policy: "" or "rf<N>" for N
	// full copies (N defaulting to ReplicationFactor), "rs<K>.<M>" for
	// RS(K, M) erasure coding — K data + M parity shards on K+M distinct
	// donors, any K of which recover the entry (DESIGN.md §16).
	Durability string
	// Balancer selects remote nodes; defaults to power-of-two-choices
	// seeded by the node ID.
	Balancer placement.Balancer
	// Objectives are the per-op-family latency SLOs driving good/bad tail
	// attribution and the slow-op watchdog. Nil selects
	// metrics.DefaultObjectives(DefaultFabricRTT).
	Objectives metrics.Objectives
}

// DefaultConfig returns a node shaped like the paper's testbed servers
// scaled down: 256 MiB shared pool, 64 MiB send pool, 256 MiB receive pool.
func DefaultConfig(id transport.NodeID) Config {
	return Config{
		ID:                id,
		SharedPoolBytes:   256 << 20,
		SendPoolBytes:     64 << 20,
		RecvPoolBytes:     256 << 20,
		SlabSize:          slab.DefaultSlabSize,
		ReplicationFactor: replication.DefaultFactor,
	}
}

func (c Config) validate() error {
	if c.SlabSize <= 0 {
		return fmt.Errorf("core: slab size %d must be positive", c.SlabSize)
	}
	if c.PoolShards < 0 {
		return fmt.Errorf("core: pool shards %d must be non-negative", c.PoolShards)
	}
	if c.RecvPoolBytes <= 0 || c.RecvPoolBytes%int64(c.SlabSize) != 0 {
		return fmt.Errorf("core: recv pool %d must be a positive multiple of slab size %d",
			c.RecvPoolBytes, c.SlabSize)
	}
	if c.ReplicationFactor < 1 {
		return fmt.Errorf("core: replication factor %d < 1", c.ReplicationFactor)
	}
	if _, err := parseDurability(c.Durability, c.ReplicationFactor); err != nil {
		return err
	}
	return nil
}

// ownerRef records who parked a block in our receive pool.
type ownerRef struct {
	owner transport.NodeID
	key   uint64
}

// shardInfo records which shard of an RS(k, m) stripe a hosted block carries.
type shardInfo struct {
	idx, k, m uint8
}

// ownerShardCount is the number of lock stripes over the receive pool's
// owner bookkeeping. Independent control-plane ops on distinct blocks hash
// to distinct stripes and never contend.
const ownerShardCount = 16

// ownerShard is one stripe of the recvOwners map. byKey is the reverse
// (owner,key)→handle-count index that makes HostsRemoteKey O(shards) instead
// of O(blocks) under the old single big lock.
type ownerShard struct {
	mu    sync.Mutex
	refs  map[slab.Handle]ownerRef
	byKey map[ownerRef]int
}

// ownerShardIdx stripes a handle to its owner shard.
func ownerShardIdx(h slab.Handle) int {
	x := uint64(uint32(h.SlabID))<<32 | uint64(uint32(h.Offset))
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 32
	return int(x % ownerShardCount)
}

// nodeCounters holds the node's activity counters as atomics, so hot paths
// bump them without any lock.
type nodeCounters struct {
	sharedPuts     atomic.Int64
	remotePuts     atomic.Int64
	sharedGets     atomic.Int64
	remoteGets     atomic.Int64
	remoteAllocs   atomic.Int64
	evictedBlocks  atomic.Int64
	repairsDone    atomic.Int64
	balloonedBytes atomic.Int64
	harvestedBytes atomic.Int64
}

// Node is one physical machine's disaggregated memory manager.
//
// Locking is decomposed so independent ops on distinct blocks proceed in
// parallel end to end (see DESIGN.md §11): the slab pools shard internally,
// owner bookkeeping is striped across ownerShardCount stripes, the
// rarely-written virtual-server registry sits behind an RWMutex, the repair
// queue behind its own mutex, and counters are atomics. No lock here is ever
// held across a transport call.
type Node struct {
	cfg Config
	ep  transport.Endpoint
	dir *cluster.Directory

	shared   *slab.Pool // node-coordinated shared memory pool
	send     *slab.Pool // cluster-wide DM send buffer pool
	recv     *slab.Pool // cluster-wide DM receive buffer pool (registered)
	recvBuf  []byte
	repl     *replication.Replicator
	policy   replication.Policy // the active durability policy (repl or ec)
	remote   *remoteStore
	balancer placement.Balancer

	// vsMu guards the virtual-server registry (written only by AddServer and
	// SetBalloonCallback; read on every key resolution).
	vsMu      sync.RWMutex
	vservers  map[string]*VirtualServer
	vsByIndex []*VirtualServer

	owners [ownerShardCount]ownerShard

	// shardMu guards shardMeta: the coordinates (idx, k, m) of each
	// erasure-coded shard parked in our receive pool, keyed like the owner
	// bookkeeping. Entries die with the last block under their (owner, key).
	shardMu   sync.Mutex
	shardMeta map[ownerRef]shardInfo

	repairMu       sync.Mutex
	pendingRepairs []pendingRepair

	counters nodeCounters

	reg     *metrics.Registry // core request-path instrumentation
	replReg *metrics.Registry // replication protocol instrumentation
	ecReg   *metrics.Registry // coding policy instrumentation (nil unless rs<K>.<M>)
	met     coreMetrics       // pre-bound hot-path instruments from reg
	slos    *metrics.SLOSet   // per-op-family latency objectives (tail attribution)

	// obsStore is this node's fold point of the cluster observability plane:
	// the freshest metric digest heard per contributor (self always included).
	// obsSeq stamps the node's own digest so stale relays never regress it.
	obsStore *metrics.ClusterStore
	obsSeq   atomic.Uint64
	// digestRegs are extra named registries folded into the node's digest
	// (co-located engines attached via AttachDigestRegistry).
	digestMu   sync.Mutex
	digestRegs map[string]*metrics.Registry

	treeMu sync.Mutex
	tree   *metrics.Tree // optional: the process-wide tree served over opMetrics

	// drainMu guards the decommission state: once draining, the node refuses
	// new allocations and answers opLocate for migrated blocks with a
	// redirect tombstone from movedTo.
	drainMu  sync.Mutex
	draining bool
	movedTo  map[uint64]movedBlock

	// syncMu guards the per-peer map-sync cursors used by TreeHeartbeat to
	// ask each tree target only for deltas it has not yet seen.
	syncMu   sync.Mutex
	lastSync map[cluster.NodeID]cluster.Epoch
}

// addOwner records who parked h in the receive pool.
func (n *Node) addOwner(h slab.Handle, ref ownerRef) {
	sh := &n.owners[ownerShardIdx(h)]
	sh.mu.Lock()
	sh.refs[h] = ref
	sh.byKey[ref]++
	sh.mu.Unlock()
}

// takeOwner removes and returns the owner record for h, if any.
func (n *Node) takeOwner(h slab.Handle) (ownerRef, bool) {
	sh := &n.owners[ownerShardIdx(h)]
	sh.mu.Lock()
	ref, ok := sh.refs[h]
	if !ok {
		sh.mu.Unlock()
		return ownerRef{}, false
	}
	delete(sh.refs, h)
	gone := false
	if sh.byKey[ref]--; sh.byKey[ref] <= 0 {
		delete(sh.byKey, ref)
		gone = true
	}
	sh.mu.Unlock()
	if gone {
		n.dropShardMeta(ref)
	}
	return ref, true
}

// takeOwners removes the owner records for a batch of handles, taking each
// stripe's lock at most once, and returns the refs that were present.
func (n *Node) takeOwners(handles []slab.Handle) []ownerRef {
	var byShard [ownerShardCount][]slab.Handle
	for _, h := range handles {
		i := ownerShardIdx(h)
		byShard[i] = append(byShard[i], h)
	}
	refs := make([]ownerRef, 0, len(handles))
	var gone []ownerRef
	for i := range byShard {
		if len(byShard[i]) == 0 {
			continue
		}
		sh := &n.owners[i]
		sh.mu.Lock()
		for _, h := range byShard[i] {
			ref, ok := sh.refs[h]
			if !ok {
				continue
			}
			delete(sh.refs, h)
			if sh.byKey[ref]--; sh.byKey[ref] <= 0 {
				delete(sh.byKey, ref)
				gone = append(gone, ref)
			}
			refs = append(refs, ref)
		}
		sh.mu.Unlock()
	}
	for _, ref := range gone {
		n.dropShardMeta(ref)
	}
	return refs
}

// dropShardMeta forgets a shard's coordinates once its last block is gone.
func (n *Node) dropShardMeta(ref ownerRef) {
	n.shardMu.Lock()
	if n.shardMeta != nil {
		delete(n.shardMeta, ref)
	}
	n.shardMu.Unlock()
}

// ShardInfo reports which shard of owner's stripe under key this node hosts.
// Chaos invariant checkers use it to prove each shard of a stripe landed on
// its own donor at the position the stripe map records.
func (n *Node) ShardInfo(owner transport.NodeID, key uint64) (idx, k, m int, ok bool) {
	n.shardMu.Lock()
	si, hosted := n.shardMeta[ownerRef{owner: owner, key: key}]
	n.shardMu.Unlock()
	if !hosted {
		return 0, 0, 0, false
	}
	return int(si.idx), int(si.k), int(si.m), true
}

// coreMetrics pre-binds the request-path instruments so hot paths never take
// the registry's name-lookup lock.
type coreMetrics struct {
	sharedPuts        *metrics.Counter
	remotePuts        *metrics.Counter
	sharedGets        *metrics.Counter
	remoteGets        *metrics.Counter
	remoteAllocs      *metrics.Counter
	batchAllocs       *metrics.Counter
	batchAllocEntries *metrics.Counter
	batchAllocAborts  *metrics.Counter
	batchFrees        *metrics.Counter
	evictedBlocks     *metrics.Counter
	repairsDone       *metrics.Counter
	harvestedBytes    *metrics.Counter
	harvestMoved      *metrics.Counter
	recvFreeBytes     *metrics.Gauge
	remotePutLatency  *metrics.Histogram
	remoteGetLatency  *metrics.Histogram
}

func newCoreMetrics(reg *metrics.Registry) coreMetrics {
	return coreMetrics{
		sharedPuts:        reg.Counter("shared_puts"),
		remotePuts:        reg.Counter("remote_puts"),
		sharedGets:        reg.Counter("shared_gets"),
		remoteGets:        reg.Counter("remote_gets"),
		remoteAllocs:      reg.Counter("remote_allocs"),
		batchAllocs:       reg.Counter("batch_allocs"),
		batchAllocEntries: reg.Counter("batch_alloc_entries"),
		batchAllocAborts:  reg.Counter("batch_alloc_aborts"),
		batchFrees:        reg.Counter("batch_frees"),
		evictedBlocks:     reg.Counter("evicted_blocks"),
		repairsDone:       reg.Counter("repairs_done"),
		harvestedBytes:    reg.Counter("harvested_bytes"),
		harvestMoved:      reg.Counter("harvest_moved_blocks"),
		recvFreeBytes:     reg.Gauge("recv_free_bytes"),
		remotePutLatency:  reg.Histogram("remote_put_latency"),
		remoteGetLatency:  reg.Histogram("remote_get_latency"),
	}
}

type pendingRepair struct {
	key  uint64
	lost transport.NodeID
}

// NodeStats counts node-level activity.
type NodeStats struct {
	SharedPuts     int64
	RemotePuts     int64
	SharedGets     int64
	RemoteGets     int64
	RemoteAllocs   int64 // blocks we host for others
	EvictedBlocks  int64 // blocks we evicted from the recv pool
	RepairsDone    int64
	BalloonedBytes int64
	HarvestedBytes int64 // receive-pool budget clawed back for local use
}

// NewNode wires a node from its endpoint and the shared cluster directory.
// The endpoint must be exclusively owned by this node; NewNode installs the
// control-plane handler and registers the receive region.
func NewNode(cfg Config, ep transport.Endpoint, dir *cluster.Directory) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ep == nil || dir == nil {
		return nil, errors.New("core: nil endpoint or directory")
	}
	recvBuf, err := ep.RegisterRegion(RecvRegionID, int(cfg.RecvPoolBytes))
	if err != nil {
		return nil, fmt.Errorf("core: register receive region: %w", err)
	}
	shards := cfg.PoolShards
	if shards == 0 {
		shards = DefaultPoolShards
	}
	poolOpts := []slab.Option{slab.WithSlabSize(cfg.SlabSize), slab.WithShards(shards)}
	recv, err := slab.NewPoolOver(fmt.Sprintf("node%d.recv", cfg.ID), recvBuf, poolOpts...)
	if err != nil {
		return nil, err
	}
	shared, err := slab.NewPool(fmt.Sprintf("node%d.shared", cfg.ID), cfg.SharedPoolBytes, poolOpts...)
	if err != nil {
		return nil, err
	}
	send, err := slab.NewPool(fmt.Sprintf("node%d.send", cfg.ID), cfg.SendPoolBytes, poolOpts...)
	if err != nil {
		return nil, err
	}
	balancer := cfg.Balancer
	if balancer == nil {
		balancer = placement.NewPowerOfTwo(int64(cfg.ID) + 1)
	}
	n := &Node{
		cfg:      cfg,
		ep:       ep,
		dir:      dir,
		shared:   shared,
		send:     send,
		recv:     recv,
		recvBuf:  recvBuf,
		balancer: balancer,
		vservers: map[string]*VirtualServer{},
		reg:      metrics.NewRegistry(fmt.Sprintf("core/node-%d", cfg.ID)),
		replReg:  metrics.NewRegistry(fmt.Sprintf("replication/node-%d", cfg.ID)),
	}
	for i := range n.owners {
		n.owners[i].refs = map[slab.Handle]ownerRef{}
		n.owners[i].byKey = map[ownerRef]int{}
	}
	n.met = newCoreMetrics(n.reg)
	n.met.recvFreeBytes.Set(recv.FreeBytes())
	obj := cfg.Objectives
	if obj == nil {
		obj = metrics.DefaultObjectives(DefaultFabricRTT)
	}
	n.slos = metrics.NewSLOSet(n.reg, obj)
	n.obsStore = metrics.NewClusterStore(int64(cfg.ID))
	n.remote = &remoteStore{node: n, handles: map[remoteKey]remoteHandle{}}
	spec, err := parseDurability(cfg.Durability, cfg.ReplicationFactor)
	if err != nil {
		return nil, err
	}
	factor := cfg.ReplicationFactor
	if !spec.coding {
		factor = spec.rf
	}
	repl, err := replication.New(n.remote,
		replication.WithFactor(factor),
		replication.WithMetrics(n.replReg))
	if err != nil {
		return nil, err
	}
	n.repl = repl
	n.policy = repl
	if spec.coding {
		n.ecReg = metrics.NewRegistry(fmt.Sprintf("ec/node-%d", cfg.ID))
		coding, err := ec.NewPolicy(spec.k, spec.m, n.remote,
			ec.WithPolicyMetrics(n.ecReg),
			ec.WithHedge(n.hedgeFor))
		if err != nil {
			return nil, err
		}
		n.policy = coding
		// Stripes must land on distinct failure domains when candidates carry
		// domain tags; plain balancers already guarantee distinct donors.
		n.balancer = placement.SpreadDomains(n.balancer)
	}
	n.shardMeta = map[ownerRef]shardInfo{}
	ep.SetHandler(n.handleCall)
	dir.Join(cluster.NodeID(cfg.ID), n.recv.FreeBytes())
	return n, nil
}

// ID returns the node's fabric identity.
func (n *Node) ID() transport.NodeID { return n.cfg.ID }

// Endpoint returns the node's fabric attachment, for components (clients,
// caches) that ride the same connection.
func (n *Node) Endpoint() transport.Endpoint { return n.ep }

// SharedPool exposes the node-coordinated shared memory pool.
func (n *Node) SharedPool() *slab.Pool { return n.shared }

// SendPool exposes the RDMA send buffer pool used for staging batches.
func (n *Node) SendPool() *slab.Pool { return n.send }

// RecvPool exposes the receive buffer pool donated to the cluster.
func (n *Node) RecvPool() *slab.Pool { return n.recv }

// Stats returns a snapshot of the node's counters. The counters are atomics;
// the snapshot is a racy-but-monotonic composite under concurrent traffic.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		SharedPuts:     n.counters.sharedPuts.Load(),
		RemotePuts:     n.counters.remotePuts.Load(),
		SharedGets:     n.counters.sharedGets.Load(),
		RemoteGets:     n.counters.remoteGets.Load(),
		RemoteAllocs:   n.counters.remoteAllocs.Load(),
		EvictedBlocks:  n.counters.evictedBlocks.Load(),
		RepairsDone:    n.counters.repairsDone.Load(),
		BalloonedBytes: n.counters.balloonedBytes.Load(),
		HarvestedBytes: n.counters.harvestedBytes.Load(),
	}
}

// Metrics exposes the node's request-path instrumentation (puts, gets,
// latency histograms), for mounting under a process-wide metrics tree.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// ReplicationMetrics exposes the replication protocol's instrumentation.
func (n *Node) ReplicationMetrics() *metrics.Registry { return n.replReg }

// CodingMetrics exposes the coding policy's instrumentation; nil when the
// node runs plain replication.
func (n *Node) CodingMetrics() *metrics.Registry { return n.ecReg }

// DurabilityPolicy exposes the active durability policy ("rf3", "rs4.2").
func (n *Node) DurabilityPolicy() replication.Policy { return n.policy }

// hedgeFor derives the read hedge delay for one donor from the digest
// plane: twice the donor's served-get p99 (a healthy donor virtually never
// exceeds it, a struggling one will), falling back to the node's own get SLO
// objective before any digest for the donor has arrived.
func (n *Node) hedgeFor(peer replication.NodeID) time.Duration {
	if nd, ok := n.obsStore.Get(int64(peer)); ok {
		if hs, ok := nd.D.OpFamilyHistogram("get"); ok && hs.Count > 0 {
			if p99 := hs.Quantile(0.99); p99 > 0 {
				return 2 * p99
			}
		}
	}
	if slo, ok := n.slos.Get("get"); ok {
		return slo.Objective
	}
	return 0
}

// SetMetricsTree installs the process-wide metrics tree the node serves to
// remote stats clients over the control plane (dmctl stats).
func (n *Node) SetMetricsTree(t *metrics.Tree) {
	n.treeMu.Lock()
	n.tree = t
	n.treeMu.Unlock()
}

// metricsText renders what this node knows about its own instrumentation:
// the full tree when the daemon installed one, otherwise the node's own
// registries.
func (n *Node) metricsText() string {
	n.treeMu.Lock()
	t := n.tree
	n.treeMu.Unlock()
	if t != nil {
		return t.String()
	}
	out := n.reg.String() + n.replReg.String()
	if n.ecReg != nil {
		out += n.ecReg.String()
	}
	return out
}

// SLOs exposes the node's per-op-family latency objectives.
func (n *Node) SLOs() *metrics.SLOSet { return n.slos }

// ClusterStore exposes the node's observability fold point (the freshest
// digest per contributor), for the obs HTTP surface and tests.
func (n *Node) ClusterStore() *metrics.ClusterStore { return n.obsStore }

// AttachDigestRegistry folds an additional named registry into this node's
// digests, so co-located engines (a VM host's swap engine, say) surface in
// `dmctl top` and the `/cluster` fold alongside the core instruments.
// Re-attaching a name replaces the previous registry.
func (n *Node) AttachDigestRegistry(name string, reg *metrics.Registry) {
	n.digestMu.Lock()
	if n.digestRegs == nil {
		n.digestRegs = map[string]*metrics.Registry{}
	}
	n.digestRegs[name] = reg
	n.digestMu.Unlock()
}

// refreshDigest snapshots this node's registries into a freshly-sequenced
// digest, stores it as the self contribution, and returns it for piggyback.
func (n *Node) refreshDigest() metrics.NodeDigest {
	regs := map[string]*metrics.Registry{
		"core":        n.reg,
		"replication": n.replReg,
	}
	if n.ecReg != nil {
		regs["ec"] = n.ecReg
	}
	n.digestMu.Lock()
	for name, reg := range n.digestRegs {
		regs[name] = reg
	}
	n.digestMu.Unlock()
	nd := metrics.NodeDigest{
		Node: int64(n.cfg.ID),
		Seq:  n.obsSeq.Add(1),
		D:    metrics.DigestRegistries(regs),
	}
	n.obsStore.Update(nd)
	return nd
}

// ClusterView refreshes the self digest and returns everything this node's
// store has heard — at the tree root, the whole cluster.
func (n *Node) ClusterView() []metrics.NodeDigest {
	n.refreshDigest()
	return n.obsStore.Snapshot()
}

// digestsFor assembles the piggyback set for one heartbeat target: always the
// node's own digest (already refreshed this round), plus — when this node
// leads its group and is beating the root — the stored digests of its group
// members, so the root's store covers the cluster after two rounds. The set
// stays O(group size), matching the heartbeat fan-out itself.
func (n *Node) digestsFor(target cluster.NodeID, self metrics.NodeDigest) []metrics.NodeDigest {
	out := []metrics.NodeDigest{self}
	selfID := cluster.NodeID(n.cfg.ID)
	g, err := n.dir.GroupOf(selfID)
	if err != nil {
		return out
	}
	leader, ok := n.dir.Leader(g)
	if !ok || leader != selfID {
		return out
	}
	root, ok := n.dir.RootLeader()
	if !ok || target != root || root == selfID {
		return out
	}
	for _, nd := range n.obsStore.Snapshot() {
		if nd.Node == self.Node {
			continue
		}
		out = append(out, nd)
	}
	return out
}

// foldDigests adopts piggybacked digests from a heartbeat or relay, ignoring
// echoes of our own (we are the authority on our own instruments).
func (n *Node) foldDigests(set []metrics.NodeDigest) {
	for _, nd := range set {
		if nd.Node == int64(n.cfg.ID) {
			continue
		}
		n.obsStore.Update(nd)
	}
}

// AddServer registers a virtual server with the node manager. The donation
// is informational (the shared pool was sized from the aggregate donations
// at cluster initialization, §IV.F).
func (n *Node) AddServer(name string, donationBytes int64) (*VirtualServer, error) {
	n.vsMu.Lock()
	defer n.vsMu.Unlock()
	if _, ok := n.vservers[name]; ok {
		return nil, fmt.Errorf("core: virtual server %q already registered", name)
	}
	if len(n.vsByIndex) >= 1<<16 {
		return nil, errors.New("core: too many virtual servers")
	}
	vs := &VirtualServer{
		name:     name,
		index:    uint16(len(n.vsByIndex)),
		node:     n,
		donation: donationBytes,
		table:    pagetable.New(),
	}
	n.vservers[name] = vs
	n.vsByIndex = append(n.vsByIndex, vs)
	return vs, nil
}

// Server returns the named virtual server.
func (n *Node) Server(name string) (*VirtualServer, error) {
	n.vsMu.RLock()
	defer n.vsMu.RUnlock()
	vs, ok := n.vservers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownServer, name)
	}
	return vs, nil
}

// candidates lists alive members of this node's sharing group, excluding
// itself, as placement candidates weighted by advertised free memory. When
// the observability plane has a digest for a member, its served-get p99
// rides along as the candidate's latency figure, so a load-aware balancer
// can discount a roomy-but-saturated peer.
func (n *Node) candidates() ([]placement.Candidate, error) {
	group, err := n.dir.GroupOf(cluster.NodeID(n.cfg.ID))
	if err != nil {
		return nil, err
	}
	members := n.dir.GroupMembers(group)
	cands := make([]placement.Candidate, 0, len(members))
	for _, m := range members {
		if m.ID == cluster.NodeID(n.cfg.ID) {
			continue
		}
		c := placement.Candidate{Node: placement.NodeID(m.ID), FreeBytes: m.FreeBytes}
		if nd, ok := n.obsStore.Get(int64(m.ID)); ok {
			if hs, ok := nd.D.OpFamilyHistogram("get"); ok && hs.Count > 0 {
				c.Latency = hs.Quantile(0.99)
			}
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	return cands, nil
}

// pickRemotes selects count distinct remote nodes, excluding those listed.
func (n *Node) pickRemotes(count int, exclude []transport.NodeID) ([]replication.NodeID, error) {
	cands, err := n.candidates()
	if err != nil {
		return nil, err
	}
	if len(exclude) > 0 {
		skip := make(map[placement.NodeID]bool, len(exclude))
		for _, e := range exclude {
			skip[placement.NodeID(e)] = true
		}
		filtered := cands[:0]
		for _, c := range cands {
			if !skip[c.Node] {
				filtered = append(filtered, c)
			}
		}
		cands = filtered
	}
	picked, err := n.balancer.Pick(cands, count)
	if err != nil {
		if errors.Is(err, placement.ErrInsufficientCandidates) {
			return nil, fmt.Errorf("%w: %v", ErrNoCandidates, err)
		}
		return nil, err
	}
	out := make([]replication.NodeID, len(picked))
	for i, p := range picked {
		out[i] = replication.NodeID(p)
	}
	return out, nil
}

// Heartbeat advertises this node's free receive-pool bytes to the directory
// (in-process) — the cluster-wide equivalent is BroadcastHeartbeat.
func (n *Node) Heartbeat() error {
	free := n.recv.FreeBytes()
	n.met.recvFreeBytes.Set(free)
	return n.dir.Heartbeat(cluster.NodeID(n.cfg.ID), free)
}

// BroadcastHeartbeat sends a heartbeat to every other known node over the
// control plane, for deployments where each node runs its own directory.
// Over a real fabric the calls fan out concurrently — the multiplexed
// transport pipelines them over pooled connections — so one slow or dead
// peer no longer delays the heartbeats of the rest past its round-trip (or
// context) timeout. Under the discrete-event simulation the fan-out stays
// serial: a simulated process is cooperative and must issue its fabric
// operations from its own goroutine.
func (n *Node) BroadcastHeartbeat(ctx context.Context) {
	msg := encodeHeartbeatReq(heartbeatReq{FreeBytes: n.recv.FreeBytes()})
	if _, simulated := des.FromContext(ctx); simulated {
		for _, st := range n.dir.Snapshot() {
			if st.ID == cluster.NodeID(n.cfg.ID) || !st.Alive {
				continue
			}
			// Best-effort: the failure detector handles unreachable peers.
			_, _ = n.ep.Call(ctx, transport.NodeID(st.ID), msg)
		}
		return
	}
	var wg sync.WaitGroup
	for _, st := range n.dir.Snapshot() {
		if st.ID == cluster.NodeID(n.cfg.ID) || !st.Alive {
			continue
		}
		wg.Add(1)
		go func(to transport.NodeID) {
			defer wg.Done()
			_, _ = n.ep.Call(ctx, to, msg)
		}(transport.NodeID(st.ID))
	}
	wg.Wait()
}

// handleCall is the control-plane dispatcher (RDMS side).
func (n *Node) handleCall(ctx context.Context, from transport.NodeID, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return errorResp(errShortMessage), nil
	}
	_, sp := trace.Start(ctx, "core.handle")
	sp.Annotate("op", int(payload[0]))
	defer sp.End()
	switch payload[0] {
	case opAlloc:
		req, err := decodeAllocReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		return n.handleAlloc(from, req), nil
	case opFree:
		req, err := decodeFreeReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		return n.handleFree(req), nil
	case opAllocBatch:
		entries, err := decodeAllocBatchReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		return n.handleAllocBatch(from, entries), nil
	case opFreeBatch:
		entries, err := decodeFreeBatchReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		return n.handleFreeBatch(entries), nil
	case opHeartbeat:
		req, err := decodeHeartbeatReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		n.dir.Join(cluster.NodeID(from), req.FreeBytes)
		n.foldDigests(req.Digests)
		return okResp(), nil
	case opEvicted:
		req, err := decodeEvictedReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		n.handleEvicted(from, req)
		return okResp(), nil
	case opStats:
		return encodeStatsResp(statsResp{FreeBytes: n.recv.FreeBytes()}), nil
	case opMetrics:
		return encodeMetricsResp(n.metricsText()), nil
	case opCluster:
		return encodeClusterResp(n.ClusterView()), nil
	case opMapSync:
		req, err := decodeMapSyncReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		return encodeMapSyncResp(n.dir.Sync(cluster.NodeID(n.cfg.ID), req)), nil
	case opLocate:
		req, err := decodeLocateReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		return n.handleLocate(req), nil
	case opMoved:
		req, err := decodeMovedReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		n.applyMoved(from, req)
		return okResp(), nil
	case opLeave:
		req, err := decodeLeaveReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		n.dir.Leave(cluster.NodeID(req.Node))
		n.obsStore.Drop(int64(req.Node))
		return okResp(), nil
	case opDecommission:
		moved, err := n.Decommission(ctx)
		if err != nil {
			return errorResp(err), nil
		}
		return encodeDecommissionResp(decommissionResp{Moved: int32(moved)}), nil
	case opHarvest:
		req, err := decodeHarvestReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		reclaimed, moved, err := n.Harvest(ctx, req.WantBytes)
		if err != nil {
			return errorResp(err), nil
		}
		return encodeHarvestResp(harvestResp{Reclaimed: reclaimed, Moved: int32(moved)}), nil
	case opAllocShard:
		req, err := decodeAllocShardReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		return n.handleAllocShard(from, req), nil
	case opShardStat:
		req, err := decodeShardStatReq(payload)
		if err != nil {
			return errorResp(err), nil
		}
		owner := from
		if req.Owner != 0 {
			owner = transport.NodeID(req.Owner)
		}
		idx, k, m, hosted := n.ShardInfo(owner, req.Key)
		return encodeShardStatResp(shardStatResp{
			Hosted: hosted, Idx: uint8(idx), K: uint8(k), M: uint8(m),
		}), nil
	default:
		return errorResp(fmt.Errorf("core: unknown op %d", payload[0])), nil
	}
}

// handleAlloc reserves a receive-pool block for a remote owner (RDMS). The
// entry key stripes the allocation across pool shards, so concurrent allocs
// for distinct keys take distinct locks even within one size class.
func (n *Node) handleAlloc(from transport.NodeID, req allocReq) []byte {
	if n.Draining() {
		// A draining node must not hand out blocks: freed space staying
		// unreused is what keeps optimistic stale-epoch reads byte-correct
		// during the drain window.
		return noSpaceResp()
	}
	owner := from
	if req.Owner != 0 {
		owner = transport.NodeID(req.Owner)
		if owner != from && n.HostsRemoteKey(owner, req.Key) {
			// An on-behalf (migration) alloc for a key we already host: a
			// sibling replica lives here, and two copies under one
			// (owner, key) would alias in the owner's replica map.
			return noSpaceResp()
		}
	}
	h, err := n.recv.AllocHint(int(req.Class), req.Key)
	if err != nil {
		if errors.Is(err, slab.ErrNoSpace) {
			return noSpaceResp()
		}
		return errorResp(err)
	}
	off, err := n.recv.GlobalOffset(h)
	if err != nil {
		_ = n.recv.Free(h)
		return errorResp(err)
	}
	n.addOwner(h, ownerRef{owner: owner, key: req.Key})
	n.counters.remoteAllocs.Add(1)
	n.met.remoteAllocs.Inc()
	n.met.recvFreeBytes.Set(n.recv.FreeBytes())
	return encodeAllocResp(allocResp{Offset: off})
}

// handleAllocShard reserves a receive-pool block for one shard of an
// RS(k, m) stripe. It refuses whenever this node already hosts any block
// under (owner, key) — whoever the requester is — because two shards of one
// stripe on one donor would shrink the set of losses the stripe survives,
// and records the shard's coordinates for opShardStat and the invariant
// checkers.
func (n *Node) handleAllocShard(from transport.NodeID, req allocShardReq) []byte {
	if n.Draining() {
		return noSpaceResp()
	}
	owner := from
	if req.Owner != 0 {
		owner = transport.NodeID(req.Owner)
	}
	ref := ownerRef{owner: owner, key: req.Key}
	if n.HostsRemoteKey(owner, req.Key) {
		return noSpaceResp()
	}
	h, err := n.recv.AllocHint(int(req.Class), req.Key)
	if err != nil {
		if errors.Is(err, slab.ErrNoSpace) {
			return noSpaceResp()
		}
		return errorResp(err)
	}
	off, err := n.recv.GlobalOffset(h)
	if err != nil {
		_ = n.recv.Free(h)
		return errorResp(err)
	}
	n.addOwner(h, ref)
	n.shardMu.Lock()
	n.shardMeta[ref] = shardInfo{idx: req.Idx, k: req.K, m: req.M}
	n.shardMu.Unlock()
	n.counters.remoteAllocs.Add(1)
	n.met.remoteAllocs.Inc()
	n.met.recvFreeBytes.Set(n.recv.FreeBytes())
	return encodeAllocResp(allocResp{Offset: off})
}

// handleAllocBatch reserves a run of receive-pool blocks for a remote owner
// in one control-plane round trip (the §IV.H window batch path). The batch
// is all-or-nothing: if any slot cannot be reserved, every slot already
// reserved is released and the whole batch fails, so the owner never has to
// track a partially-allocated window.
func (n *Node) handleAllocBatch(from transport.NodeID, entries []batchAllocEntry) []byte {
	if n.Draining() {
		return noSpaceResp()
	}
	handles := make([]slab.Handle, 0, len(entries))
	offsets := make([]int64, 0, len(entries))
	rollback := func() {
		for _, h := range handles {
			_ = n.recv.Free(h)
		}
	}
	// The whole window stripes to the first entry's shard so a fresh batch
	// allocation stays contiguous in the region — the layout span coalescing
	// on the client data plane relies on.
	hint := entries[0].Key
	for _, e := range entries {
		h, err := n.recv.AllocHint(int(e.Class), hint)
		if err != nil {
			rollback()
			n.met.batchAllocAborts.Inc()
			if errors.Is(err, slab.ErrNoSpace) {
				return noSpaceResp()
			}
			return errorResp(err)
		}
		off, err := n.recv.GlobalOffset(h)
		if err != nil {
			_ = n.recv.Free(h)
			rollback()
			n.met.batchAllocAborts.Inc()
			return errorResp(err)
		}
		handles = append(handles, h)
		offsets = append(offsets, off)
	}
	for i, h := range handles {
		n.addOwner(h, ownerRef{owner: from, key: entries[i].Key})
	}
	n.counters.remoteAllocs.Add(int64(len(handles)))
	n.met.batchAllocs.Inc()
	n.met.batchAllocEntries.Add(int64(len(handles)))
	n.met.remoteAllocs.Add(int64(len(handles)))
	n.met.recvFreeBytes.Set(n.recv.FreeBytes())
	return encodeAllocBatchResp(offsets)
}

// handleFreeBatch releases a run of receive-pool blocks in one round trip.
// Like opFree, freeing an already-evicted block is not an error, and
// duplicate offsets within one batch collapse to a single free. Every entry
// is processed even if one fails mid-batch — the first error is reported
// after the rest have been freed, so a partial failure can never strand the
// remaining blocks — and the owner bookkeeping takes each stripe's lock at
// most once per batch instead of once per entry.
func (n *Node) handleFreeBatch(entries []batchFreeEntry) []byte {
	handles := make([]slab.Handle, 0, len(entries))
	seen := make(map[slab.Handle]bool, len(entries))
	for _, e := range entries {
		h, err := n.recv.HandleAt(e.Offset)
		if err != nil || seen[h] {
			// Already evicted (or repeated in this batch): not an error.
			continue
		}
		seen[h] = true
		handles = append(handles, h)
	}
	n.takeOwners(handles)
	var firstErr error
	for _, h := range handles {
		if err := n.recv.Free(h); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.met.batchFrees.Inc()
	n.met.recvFreeBytes.Set(n.recv.FreeBytes())
	if firstErr != nil {
		return errorResp(firstErr)
	}
	return okResp()
}

// HostsRemoteKey reports whether this node currently hosts a receive-pool
// block that owner parked under key. The chaos invariant checkers use it to
// prove that aborted writes and batches leave no stranded copies behind. The
// reverse (owner,key) index makes this O(stripes), not O(blocks).
func (n *Node) HostsRemoteKey(owner transport.NodeID, key uint64) bool {
	ref := ownerRef{owner: owner, key: key}
	for i := range n.owners {
		sh := &n.owners[i]
		sh.mu.Lock()
		hosted := sh.byKey[ref] > 0
		sh.mu.Unlock()
		if hosted {
			return true
		}
	}
	return false
}

// handleFree releases a receive-pool block (RDMS).
func (n *Node) handleFree(req freeReq) []byte {
	h, err := n.recv.HandleAt(req.Offset)
	if err != nil {
		// Already evicted: freeing an absent entry is not an error (§IV.D
		// failure semantics match local free of a gone page).
		return okResp()
	}
	n.takeOwner(h)
	if err := n.recv.Free(h); err != nil {
		return errorResp(err)
	}
	return okResp()
}

// handleEvicted records that a remote host dropped one of our blocks; the
// next Maintain pass re-establishes the replication factor.
func (n *Node) handleEvicted(from transport.NodeID, req evictedReq) {
	n.remote.drop(from, req.Key)
	n.repairMu.Lock()
	n.pendingRepairs = append(n.pendingRepairs, pendingRepair{key: req.Key, lost: from})
	n.repairMu.Unlock()
}

// EvictRecvSlabs preemptively deregisters receive-pool slabs until at least
// wantBytes are reclaimed (policy (1) of §IV.F: a node under local memory
// pressure reduces the DRAM it donates as remote memory). Owners of evicted
// blocks are notified over the control plane so they can re-replicate.
func (n *Node) EvictRecvSlabs(ctx context.Context, wantBytes int64) (int64, error) {
	var reclaimed int64
	// Several evicted blocks — within one slab or across slabs evicted by
	// successive LRU passes — can be parked under the same (owner,key):
	// replicated windows and re-replication both land that way. Dedup across
	// the whole call so each owner hears about a key once, and a node
	// evicting its own parked blocks queues exactly one repair per key.
	notified := map[ownerRef]bool{}
	for reclaimed < wantBytes {
		victims, err := n.recv.EvictLRU()
		if err != nil {
			if errors.Is(err, slab.ErrEmpty) {
				break
			}
			return reclaimed, err
		}
		reclaimed += int64(n.cfg.SlabSize)
		owners := n.takeOwners(victims)
		n.counters.evictedBlocks.Add(int64(len(victims)))
		n.met.evictedBlocks.Add(int64(len(victims)))
		for _, ref := range owners {
			if notified[ref] {
				continue
			}
			notified[ref] = true
			if ref.owner == n.cfg.ID {
				n.handleEvicted(n.cfg.ID, evictedReq{Key: ref.key})
				continue
			}
			// Best-effort notification; if the owner is unreachable its own
			// read path will discover the loss and fail over to replicas.
			_, _ = n.ep.Call(ctx, ref.owner, encodeEvictedReq(evictedReq{Key: ref.key}))
		}
	}
	// Shrink the registered budget so the memory actually returns to the OS.
	n.recv.ShrinkEmpty(reclaimed)
	return reclaimed, nil
}

// RepairLost enqueues re-replication for every remote entry whose replica set
// includes lost, as if the node had managed to send eviction notices before
// dying. A crashed host cannot notify anyone, so the failure detector is the
// only signal: call this when the directory reports EventNodeDown (the chaos
// harness and a production tick loop both do), then let the next Maintain
// pass restore the replication factor. It returns the number of entries
// queued.
func (n *Node) RepairLost(lost transport.NodeID) int {
	n.vsMu.RLock()
	servers := append([]*VirtualServer(nil), n.vsByIndex...)
	n.vsMu.RUnlock()
	queued := 0
	for _, vs := range servers {
		for _, id := range vs.table.EntriesOnNode(pagetable.NodeID(lost)) {
			key := vs.key(id)
			n.remote.drop(lost, key)
			n.repairMu.Lock()
			n.pendingRepairs = append(n.pendingRepairs, pendingRepair{key: key, lost: lost})
			n.repairMu.Unlock()
			queued++
		}
	}
	return queued
}

// maxParallelRepairs bounds how many deferred repairs one Maintain pass runs
// concurrently over a real fabric.
const maxParallelRepairs = 8

// repairJob is one Maintain unit of work: every lost donor queued for one
// entry, folded into a single Restore call so the policy sees the full
// damage at once (an RS stripe reconstructs all its missing shards from one
// survivor read; replication repairs each copy independently).
type repairJob struct {
	key  uint64
	lost []transport.NodeID
}

// Maintain performs deferred re-replication for blocks lost to remote
// evictions or failures. Call it periodically (the daemon does so from its
// tick loop; simulations from a maintenance process). Queued records are
// grouped by entry — all of an entry's lost donors repair in one policy
// Restore call — and a pass that restores only some of an entry's missing
// shards requeues exactly the remainder rather than collapsing into a
// binary repaired/failed verdict. Repairs that fail outright — typically
// because a source or replacement peer is unreachable right now — stay
// queued and are retried on the next call.
//
// Independent entries fan out concurrently over a real fabric (bounded by
// maxParallelRepairs); under the discrete-event simulation they stay serial,
// like every other fabric fan-out.
func (n *Node) Maintain(ctx context.Context) (repaired int, firstErr error) {
	n.repairMu.Lock()
	pending := n.pendingRepairs
	n.pendingRepairs = nil
	n.repairMu.Unlock()
	var jobs []repairJob
	byKey := map[uint64]int{}
	for _, p := range pending {
		i, ok := byKey[p.key]
		if !ok {
			i = len(jobs)
			byKey[p.key] = i
			jobs = append(jobs, repairJob{key: p.key})
		}
		dup := false
		for _, l := range jobs[i].lost {
			if l == p.lost {
				dup = true
				break
			}
		}
		if !dup {
			jobs[i].lost = append(jobs[i].lost, p.lost)
		}
	}
	errs := make([]error, len(jobs))
	stills := make([][]transport.NodeID, len(jobs))
	if _, simulated := des.FromContext(ctx); simulated || len(jobs) <= 1 {
		for i, j := range jobs {
			stills[i], errs[i] = n.repairEntry(ctx, j)
		}
	} else {
		sem := make(chan struct{}, maxParallelRepairs)
		var wg sync.WaitGroup
		for i, j := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, j repairJob) {
				defer wg.Done()
				stills[i], errs[i] = n.repairEntry(ctx, j)
				<-sem
			}(i, j)
		}
		wg.Wait()
	}
	var requeue []pendingRepair
	for i, err := range errs {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			for _, l := range jobs[i].lost {
				requeue = append(requeue, pendingRepair{key: jobs[i].key, lost: l})
			}
			continue
		}
		for _, l := range stills[i] {
			requeue = append(requeue, pendingRepair{key: jobs[i].key, lost: l})
		}
		if len(stills[i]) == 0 {
			repaired++
		}
	}
	n.repairMu.Lock()
	n.pendingRepairs = append(n.pendingRepairs, requeue...)
	n.repairMu.Unlock()
	n.counters.repairsDone.Add(int64(repaired))
	n.met.repairsDone.Add(int64(repaired))
	return repaired, firstErr
}

// repairEntry re-establishes one entry's durability via the active policy,
// returning the lost donors whose share could not be restored this pass.
func (n *Node) repairEntry(ctx context.Context, job repairJob) ([]transport.NodeID, error) {
	vs, id, err := n.resolveKey(job.key)
	if err != nil {
		return nil, err
	}
	loc, err := vs.table.Get(id)
	if err != nil || loc.Tier != pagetable.TierRemote {
		return nil, nil // entry gone or moved since the eviction: nothing to do
	}
	nodes := locationNodes(loc)
	lost := make([]replication.NodeID, len(job.lost))
	for i, l := range job.lost {
		lost[i] = replication.NodeID(l)
	}
	pick := func(count int, exclude []replication.NodeID) ([]replication.NodeID, error) {
		ex := make([]transport.NodeID, 0, len(exclude)+len(job.lost))
		for _, e := range exclude {
			ex = append(ex, transport.NodeID(e))
		}
		ex = append(ex, job.lost...)
		return n.pickRemotes(count, ex)
	}
	newSet, still, err := n.policy.Restore(ctx, nodes, replication.EntryID(job.key), lost, pick)
	if err != nil {
		return nil, fmt.Errorf("core: restore entry %d: %w", id, err)
	}
	loc.Primary = pagetable.NodeID(newSet[0])
	loc.Replicas = loc.Replicas[:0]
	for _, m := range newSet[1:] {
		loc.Replicas = append(loc.Replicas, pagetable.NodeID(m))
	}
	vs.table.Put(id, loc)
	out := make([]transport.NodeID, len(still))
	for i, s := range still {
		out[i] = transport.NodeID(s)
	}
	return out, nil
}

// resolveKey splits a wire key into its virtual server and entry ID.
func (n *Node) resolveKey(key uint64) (*VirtualServer, pagetable.EntryID, error) {
	idx := int(key >> 48)
	n.vsMu.RLock()
	defer n.vsMu.RUnlock()
	if idx >= len(n.vsByIndex) {
		return nil, 0, fmt.Errorf("%w: index %d", ErrUnknownServer, idx)
	}
	return n.vsByIndex[idx], pagetable.EntryID(key & keyEntryMask), nil
}

// BalloonToServer moves up to wantBytes of budget from the shared memory
// pool to the named virtual server (policy (2) of §IV.F). It returns the
// bytes actually moved; the virtual server's balloon callback, if set,
// receives them (a swap manager grows its resident-set budget).
func (n *Node) BalloonToServer(name string, wantBytes int64) (int64, error) {
	vs, err := n.Server(name)
	if err != nil {
		return 0, err
	}
	moved := n.shared.ShrinkEmpty(wantBytes)
	if moved == 0 {
		return 0, nil
	}
	n.counters.balloonedBytes.Add(moved)
	n.vsMu.RLock()
	cb := vs.onBalloon
	n.vsMu.RUnlock()
	if cb != nil {
		cb(moved)
	}
	return moved, nil
}

func locationNodes(loc pagetable.Location) []replication.NodeID {
	nodes := make([]replication.NodeID, 0, 1+len(loc.Replicas))
	nodes = append(nodes, replication.NodeID(loc.Primary))
	for _, r := range loc.Replicas {
		nodes = append(nodes, replication.NodeID(r))
	}
	return nodes
}
