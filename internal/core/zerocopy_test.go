package core

import (
	"bytes"
	"context"
	"testing"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/tcpnet"
)

// TestGetIntoAndGetAllIntoOverSimFabric checks the caller-buffer read path
// end to end on the simulated fabric: GetInto and GetAllInto return the same
// bytes Put parked, for raw and compressed entries alike, and reslice the
// destination buffers to the decoded lengths.
func TestGetIntoAndGetAllIntoOverSimFabric(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep, WithCompression(1024))
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		raw := bytes.Repeat([]byte{0xAB, 0xCD}, 300) // 600 B: below threshold, stays raw
		compressible := bytes.Repeat([]byte("compress me "), 400)
		entries := []Entry{{Key: 1, Data: raw}, {Key: 2, Data: compressible}}
		if err := client.PutAll(ctx, 2, entries); err != nil {
			t.Errorf("PutAll: %v", err)
			return
		}
		dst := make([]byte, 8192)
		n, err := client.GetInto(ctx, 2, 1, dst)
		if err != nil || !bytes.Equal(dst[:n], raw) {
			t.Errorf("GetInto raw = %d bytes, %v", n, err)
		}
		n, err = client.GetInto(ctx, 2, 2, dst)
		if err != nil || !bytes.Equal(dst[:n], compressible) {
			t.Errorf("GetInto compressed = %d bytes, %v", n, err)
		}
		if _, err := client.GetInto(ctx, 2, 2, make([]byte, 16)); err == nil {
			t.Error("GetInto with a short dst should fail")
		}
		dsts := [][]byte{make([]byte, 8192), make([]byte, 8192)}
		if err := client.GetAllInto(ctx, 2, []uint64{1, 2}, dsts); err != nil {
			t.Errorf("GetAllInto: %v", err)
			return
		}
		if !bytes.Equal(dsts[0], raw) {
			t.Errorf("GetAllInto[0] = %d bytes, want the raw entry", len(dsts[0]))
		}
		if !bytes.Equal(dsts[1], compressible) {
			t.Errorf("GetAllInto[1] = %d bytes, want the compressed entry", len(dsts[1]))
		}
	})
}

// TestWindowPutOwnedSkipsCopy checks the ownership-handoff staging path: the
// window stages the caller's slice itself (no defensive copy), and the batch
// that flushes carries exactly those bytes.
func TestWindowPutOwnedSkipsCopy(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		w, err := client.NewWindow(2, 4, 0)
		if err != nil {
			t.Error(err)
			return
		}
		owned := bytes.Repeat([]byte{0x11}, 2048)
		if err := w.PutOwned(ctx, 1, owned); err != nil {
			t.Error(err)
			return
		}
		// The staged entry aliases the caller's slice — that is the contract.
		w.mu.Lock()
		aliased := len(w.staged) == 1 && &w.staged[0].Data[0] == &owned[0]
		w.mu.Unlock()
		if !aliased {
			t.Error("PutOwned copied its input; it must stage the caller's slice")
		}
		copied := bytes.Repeat([]byte{0x22}, 2048)
		if err := w.Put(ctx, 2, copied); err != nil {
			t.Error(err)
			return
		}
		w.mu.Lock()
		unaliased := len(w.staged) == 2 && &w.staged[1].Data[0] != &copied[0]
		w.mu.Unlock()
		if !unaliased {
			t.Error("Put must defensively copy its input")
		}
		if err := w.Flush(ctx); err != nil {
			t.Errorf("Flush: %v", err)
			return
		}
		for key, want := range map[uint64][]byte{1: owned, 2: copied} {
			got, err := client.Get(ctx, 2, key)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("Get(%d) = %d bytes, %v", key, len(got), err)
			}
		}
	})
}

// TestGetIntoZeroAllocOverSim pins the allocation contract on the simulated
// fabric: a steady-state GetInto of an uncompressed entry performs zero
// allocations — the handle lookup, the simulated one-sided read, and the
// discrete-event bookkeeping all run allocation-free.
func TestGetIntoZeroAllocOverSim(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{0x5A}, 4096)
		if err := client.Put(ctx, 2, 1, data); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		dst := make([]byte, 4096)
		for i := 0; i < 8; i++ {
			if _, err := client.GetInto(ctx, 2, 1, dst); err != nil {
				t.Errorf("warm GetInto: %v", err)
				return
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := client.GetInto(ctx, 2, 1, dst); err != nil {
				t.Errorf("GetInto: %v", err)
			}
		})
		if allocs > 0 {
			t.Errorf("GetInto allocates %.1f objects/op over simnet, want 0", allocs)
		}
		if !bytes.Equal(dst, data) {
			t.Error("GetInto returned wrong bytes")
		}
	})
}

// TestGetIntoZeroAllocOverTCP pins the same contract on the real transport:
// steady-state GetInto scatters the response off the socket into dst with
// zero allocations on the whole client path (and the loopback donor's serve
// path, which the global counter also sees).
func TestGetIntoZeroAllocOverTCP(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	server, err := tcpnet.Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(Config{
		ID: 2, SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
		RecvPoolBytes: 1 << 20, SlabSize: 1 << 20, ReplicationFactor: 1,
	}, server, dir); err != nil {
		t.Fatal(err)
	}
	clientEP, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = clientEP.Close() })
	clientEP.AddPeer(2, server.Addr())

	ctx := context.Background()
	client := NewClient(clientEP)
	data := bytes.Repeat([]byte{0x5A}, 4096)
	if err := client.Put(ctx, 2, 1, data); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4096)
	for i := 0; i < 16; i++ {
		if _, err := client.GetInto(ctx, 2, 1, dst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := client.GetInto(ctx, 2, 1, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("GetInto allocates %.1f objects/op over tcpnet, want 0", allocs)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("GetInto returned wrong bytes")
	}
}

// BenchmarkClientGetInto measures steady-state single-entry scatter reads
// into a reused caller buffer over loopback TCP — the zero-alloc counterpart
// of a Get loop.
func BenchmarkClientGetInto(b *testing.B) {
	bf := newBenchFabric(b, 1)
	ctx := context.Background()
	data := bytes.Repeat([]byte{0x5A}, 4096)
	if err := bf.client.Put(ctx, 1, 1, data); err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bf.client.GetInto(ctx, 1, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientGetAllIntoBatched measures the batched scatter-read data
// plane: one window of entries coming back through span-coalesced reads into
// reused caller buffers.
func BenchmarkClientGetAllIntoBatched(b *testing.B) {
	bf := newBenchFabric(b, 1)
	ctx := context.Background()
	entries := benchEntries(0, benchWindow, 4096, false)
	if err := bf.client.PutAll(ctx, 1, entries); err != nil {
		b.Fatal(err)
	}
	keys := make([]uint64, len(entries))
	dsts := make([][]byte, len(entries))
	for i := range entries {
		keys[i] = entries[i].Key
		dsts[i] = make([]byte, 4096)
	}
	b.SetBytes(benchWindow * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dsts {
			dsts[j] = dsts[j][:4096]
		}
		if err := bf.client.GetAllInto(ctx, 1, keys, dsts); err != nil {
			b.Fatal(err)
		}
	}
}
