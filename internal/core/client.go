package core

import (
	"context"
	"fmt"
	"sync"

	"godm/internal/transport"
)

// Client is a lightweight handle for using a disaggregated memory node's
// donated receive pool from outside the node manager — the interface a CLI
// tool or an application-level cache uses to park data entries in a peer's
// idle memory (alloc over the control plane, one-sided writes and reads for
// data).
type Client struct {
	ep transport.Verbs

	mu      sync.Mutex
	handles map[clientKey]clientHandle
}

type clientKey struct {
	node transport.NodeID
	key  uint64
}

type clientHandle struct {
	offset  int64
	class   int
	dataLen int
}

// NewClient wraps a transport attachment.
func NewClient(ep transport.Verbs) *Client {
	return &Client{ep: ep, handles: map[clientKey]clientHandle{}}
}

// Stats returns the free receive-pool bytes node advertises.
func (c *Client) Stats(ctx context.Context, node transport.NodeID) (int64, error) {
	resp, err := c.ep.Call(ctx, node, encodeStatsReq())
	if err != nil {
		return 0, fmt.Errorf("core: stats from node %d: %w", node, err)
	}
	st, err := decodeStatsResp(resp)
	if err != nil {
		return 0, err
	}
	return st.FreeBytes, nil
}

// Metrics fetches node's rendered metrics tree over the control plane — the
// transport behind `dmctl stats`.
func (c *Client) Metrics(ctx context.Context, node transport.NodeID) (string, error) {
	resp, err := c.ep.Call(ctx, node, encodeMetricsReq())
	if err != nil {
		return "", fmt.Errorf("core: metrics from node %d: %w", node, err)
	}
	return decodeMetricsResp(resp)
}

// Put parks data under key in node's receive pool.
func (c *Client) Put(ctx context.Context, node transport.NodeID, key uint64, data []byte) error {
	class := len(data)
	if class < 512 {
		class = 512
	}
	resp, err := c.ep.Call(ctx, node, encodeAllocReq(allocReq{Key: key, Class: int32(class)}))
	if err != nil {
		return fmt.Errorf("core: alloc on node %d: %w", node, err)
	}
	alloc, err := decodeAllocResp(resp)
	if err != nil {
		return err
	}
	if err := c.ep.WriteRegion(ctx, node, RecvRegionID, alloc.Offset, data); err != nil {
		return fmt.Errorf("core: write to node %d: %w", node, err)
	}
	c.mu.Lock()
	c.handles[clientKey{node: node, key: key}] = clientHandle{
		offset:  alloc.Offset,
		class:   class,
		dataLen: len(data),
	}
	c.mu.Unlock()
	return nil
}

// Get reads back the entry parked under key on node.
func (c *Client) Get(ctx context.Context, node transport.NodeID, key uint64) ([]byte, error) {
	c.mu.Lock()
	h, ok := c.handles[clientKey{node: node, key: key}]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no handle for key %d on node %d", key, node)
	}
	data, err := c.ep.ReadRegion(ctx, node, RecvRegionID, h.offset, h.dataLen)
	if err != nil {
		return nil, fmt.Errorf("core: read from node %d: %w", node, err)
	}
	return data, nil
}

// Delete releases the entry parked under key on node.
func (c *Client) Delete(ctx context.Context, node transport.NodeID, key uint64) error {
	c.mu.Lock()
	h, ok := c.handles[clientKey{node: node, key: key}]
	if ok {
		delete(c.handles, clientKey{node: node, key: key})
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	resp, err := c.ep.Call(ctx, node, encodeFreeReq(freeReq{Key: key, Offset: h.offset}))
	if err != nil {
		return fmt.Errorf("core: free on node %d: %w", node, err)
	}
	return checkOKResp(resp)
}
