package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"godm/internal/bufpool"
	"godm/internal/cluster"
	"godm/internal/compress"
	"godm/internal/metrics"
	"godm/internal/transport"
)

// Client is a lightweight handle for using a disaggregated memory node's
// donated receive pool from outside the node manager — the interface a CLI
// tool or an application-level cache uses to park data entries in a peer's
// idle memory (alloc over the control plane, one-sided writes and reads for
// data).
//
// Beyond per-entry Put/Get/Delete it offers the §IV.H batch data plane:
// PutAll/GetAll/DeleteAll move whole windows of entries with one
// control-plane round trip and span-coalesced one-sided transfers, and
// NewWindow stages entries client-side until the window fills or times out.
// With WithCompression, entries at or above a threshold travel and rest
// deflate-compressed, negotiated per entry via a flags byte in the handle.
type Client struct {
	ep transport.Verbs

	codec       *compress.Codec
	gran        compress.Granularity
	minCompress int

	// cm is the client's compact snapshot of the cluster memory map,
	// refreshed with epoch-tagged deltas via SyncMap. Reads consult it to
	// decide between an optimistic one-sided read and a locate-first probe.
	cm *cluster.ClientMap
	// redirects counts stRedirect hops followed by reads (observability; the
	// scale suite asserts no single read needs more than maxRedirects).
	redirects atomic.Int64

	mu      sync.Mutex
	handles map[clientKey]clientHandle
}

type clientKey struct {
	node transport.NodeID
	key  uint64
}

// clientHandle is the client half of the memory map for one parked entry:
// where it lives, how many bytes rest there (storedLen, possibly
// compressed), how many bytes it decodes back to (rawLen), and the flags
// byte saying how to decode it.
type clientHandle struct {
	offset    int64
	class     int
	storedLen int
	rawLen    int
	flags     byte
	// home, when non-zero, is where the block actually lives after a
	// decommission redirect was followed; zero means the clientKey's node.
	home transport.NodeID
}

// minEntryClass is the smallest allocation requested for an entry, matching
// the smallest §IV.H size class.
const minEntryClass = 512

// defaultCompressMin is the compression threshold when WithCompression is
// given a non-positive one: entries below it stay raw (small entries cannot
// drop below the minimum class, so deflating them buys nothing).
const defaultCompressMin = 1024

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithCompression makes the client deflate entries of at least minSize bytes
// before parking them, binning compressed payloads into the §IV.H
// 4-granularity size classes (smaller class ⇒ smaller slab and fewer bytes
// on the fabric). Entries that do not shrink below their raw size class are
// stored raw. minSize <= 0 selects a default threshold.
func WithCompression(minSize int) ClientOption {
	return func(c *Client) {
		if minSize <= 0 {
			minSize = defaultCompressMin
		}
		codec, err := compress.NewCodec(compress.Four)
		if err != nil {
			panic(err) // compress.Four is a package constant; cannot fail
		}
		c.codec = codec
		c.gran = compress.Four
		c.minCompress = minSize
	}
}

// NewClient wraps a transport attachment.
func NewClient(ep transport.Verbs, opts ...ClientOption) *Client {
	c := &Client{ep: ep, cm: cluster.NewClientMap(), handles: map[clientKey]clientHandle{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// encodeEntry prepares one entry for the wire: the payload to store, the
// size class to reserve, and the handle flags byte. Compression is applied
// only when it moves the entry into a strictly smaller size class.
func (c *Client) encodeEntry(data []byte) (payload []byte, class int, flags byte) {
	rawClass := len(data)
	if rawClass < minEntryClass {
		rawClass = minEntryClass
	}
	if c.codec == nil || len(data) < c.minCompress {
		return data, rawClass, 0
	}
	deflated, ok := c.codec.CompressEntry(data)
	if !ok {
		return data, rawClass, 0
	}
	compClass := c.gran.EntryClassFor(len(deflated))
	if compClass >= rawClass {
		return data, rawClass, 0
	}
	return deflated, compClass, flagDeflate
}

// decodeEntryInto reverses encodeEntry into dst, which must hold exactly
// h.rawLen bytes; data may be a view into a staging buffer (it is never
// retained).
func decodeEntryInto(dst, data []byte, h clientHandle) error {
	if h.flags&flagDeflate == 0 {
		copy(dst, data)
		return nil
	}
	if err := compress.DecompressEntryInto(dst, data); err != nil {
		return fmt.Errorf("core: entry decompress: %w", err)
	}
	return nil
}

// cleanupTimeout bounds best-effort frees that must not ride the caller's
// (possibly dying) context. The simulated fabric ignores deadlines, so the
// wall-clock timer is inert under DES.
const cleanupTimeout = 2 * time.Second

func detached(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithoutCancel(ctx), cleanupTimeout)
}

// freeBlock releases one remote block, best-effort: a failed free strands
// the block only until the host's eviction path reclaims it.
func (c *Client) freeBlock(ctx context.Context, node transport.NodeID, key uint64, offset int64) {
	_, _ = c.ep.Call(ctx, node, encodeFreeReq(freeReq{Key: key, Offset: offset}))
}

// Stats returns the free receive-pool bytes node advertises.
func (c *Client) Stats(ctx context.Context, node transport.NodeID) (int64, error) {
	resp, err := c.ep.Call(ctx, node, encodeStatsReq())
	if err != nil {
		return 0, fmt.Errorf("core: stats from node %d: %w", node, err)
	}
	st, err := decodeStatsResp(resp)
	if err != nil {
		return 0, err
	}
	return st.FreeBytes, nil
}

// Metrics fetches node's rendered metrics tree over the control plane — the
// transport behind `dmctl stats`.
func (c *Client) Metrics(ctx context.Context, node transport.NodeID) (string, error) {
	resp, err := c.ep.Call(ctx, node, encodeMetricsReq())
	if err != nil {
		return "", fmt.Errorf("core: metrics from node %d: %w", node, err)
	}
	return decodeMetricsResp(resp)
}

// ClusterView fetches node's observability store — every contributor metric
// digest it has heard. Ask the tree root for the whole cluster; this is the
// transport behind `dmctl top` and the digest-filtered `dmctl stats`.
func (c *Client) ClusterView(ctx context.Context, node transport.NodeID) ([]metrics.NodeDigest, error) {
	resp, err := c.ep.Call(ctx, node, encodeClusterReq())
	if err != nil {
		return nil, fmt.Errorf("core: cluster view from node %d: %w", node, err)
	}
	return decodeClusterResp(resp)
}

// ShardStat asks node which shard (if any) of owner's erasure-coded stripe
// under key it hosts, returning the shard's (index, k, m) coordinates. This
// is the operator-facing passthrough behind `dmctl shard`: it lets repair
// tooling map a stripe's placement donor by donor.
func (c *Client) ShardStat(ctx context.Context, node, owner transport.NodeID, key uint64) (hosted bool, idx, k, m int, err error) {
	resp, err := c.ep.Call(ctx, node, encodeShardStatReq(shardStatReq{Key: key, Owner: int32(owner)}))
	if err != nil {
		return false, 0, 0, 0, fmt.Errorf("core: shard stat from node %d: %w", node, err)
	}
	st, err := decodeShardStatResp(resp)
	if err != nil {
		return false, 0, 0, 0, err
	}
	return st.Hosted, int(st.Idx), int(st.K), int(st.M), nil
}

// Put parks data under key in node's receive pool. Re-putting a key whose
// new payload still fits the previously reserved class overwrites the block
// in place with a single one-sided write (no alloc round trip); otherwise a
// fresh block is reserved and the displaced one is freed, so overwrites
// never leak remote memory.
func (c *Client) Put(ctx context.Context, node transport.NodeID, key uint64, data []byte) error {
	payload, class, flags := c.encodeEntry(data)
	ck := clientKey{node: node, key: key}
	c.mu.Lock()
	old, hadOld := c.handles[ck]
	c.mu.Unlock()
	if hadOld && len(payload) <= old.class {
		home := homeOf(ck, old)
		if err := c.ep.WriteRegion(ctx, home, RecvRegionID, old.offset, payload); err != nil {
			return fmt.Errorf("core: write to node %d: %w", home, err)
		}
		c.mu.Lock()
		c.handles[ck] = clientHandle{
			offset:    old.offset,
			class:     old.class,
			storedLen: len(payload),
			rawLen:    len(data),
			flags:     flags,
			home:      old.home,
		}
		c.mu.Unlock()
		return nil
	}
	resp, err := c.ep.Call(ctx, node, encodeAllocReq(allocReq{Key: key, Class: int32(class)}))
	if err != nil {
		return fmt.Errorf("core: alloc on node %d: %w", node, err)
	}
	alloc, err := decodeAllocResp(resp)
	if err != nil {
		return err
	}
	if err := c.ep.WriteRegion(ctx, node, RecvRegionID, alloc.Offset, payload); err != nil {
		// Release the fresh reservation so a failed put strands nothing; the
		// failure may be the caller's context dying, so detach.
		fctx, cancel := detached(ctx)
		defer cancel()
		c.freeBlock(fctx, node, key, alloc.Offset)
		return fmt.Errorf("core: write to node %d: %w", node, err)
	}
	c.mu.Lock()
	c.handles[ck] = clientHandle{
		offset:    alloc.Offset,
		class:     class,
		storedLen: len(payload),
		rawLen:    len(data),
		flags:     flags,
	}
	c.mu.Unlock()
	if hadOld {
		// The displaced block is no longer reachable through any handle;
		// free it now rather than leaking it until eviction.
		c.freeBlock(ctx, homeOf(ck, old), key, old.offset)
	}
	return nil
}

// Get reads back the entry parked under key on node. The result buffer is
// freshly allocated and owned by the caller; loops that can reuse a buffer
// should prefer GetInto, which is allocation-free for uncompressed entries.
func (c *Client) Get(ctx context.Context, node transport.NodeID, key uint64) ([]byte, error) {
	c.mu.Lock()
	h, ok := c.handles[clientKey{node: node, key: key}]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no handle for key %d on node %d", key, node)
	}
	out := make([]byte, h.rawLen)
	if _, err := c.readEntry(ctx, clientKey{node: node, key: key}, h, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetInto reads the entry parked under key on node directly into dst and
// returns the entry's decoded length. dst must be at least that long (an
// entry put as n bytes reads back as n bytes). For uncompressed entries the
// payload scatters from the fabric straight into dst — no intermediate
// buffer, no allocation; compressed entries stage the deflate payload in a
// pooled buffer and inflate into dst. dst is lent to the transport for the
// duration of the call and released by return, per the
// transport.ScatterReader contract.
func (c *Client) GetInto(ctx context.Context, node transport.NodeID, key uint64, dst []byte) (int, error) {
	c.mu.Lock()
	h, ok := c.handles[clientKey{node: node, key: key}]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("core: no handle for key %d on node %d", key, node)
	}
	if len(dst) < h.rawLen {
		return 0, fmt.Errorf("core: dst holds %d bytes, entry is %d", len(dst), h.rawLen)
	}
	return c.readEntry(ctx, clientKey{node: node, key: key}, h, dst)
}

// getInto scatters the entry behind h into dst (which must hold rawLen
// bytes) and returns the decoded length.
func (c *Client) getInto(ctx context.Context, node transport.NodeID, h clientHandle, dst []byte) (int, error) {
	if h.flags&flagDeflate == 0 {
		if err := transport.ReadRegionInto(ctx, c.ep, node, RecvRegionID, h.offset, dst[:h.storedLen]); err != nil {
			return 0, fmt.Errorf("core: read from node %d: %w", node, err)
		}
		return h.storedLen, nil
	}
	buf := bufpool.Get(h.storedLen)
	if err := transport.ReadRegionInto(ctx, c.ep, node, RecvRegionID, h.offset, buf); err != nil {
		bufpool.Put(buf)
		return 0, fmt.Errorf("core: read from node %d: %w", node, err)
	}
	derr := compress.DecompressEntryInto(dst[:h.rawLen], buf)
	bufpool.Put(buf)
	if derr != nil {
		return 0, fmt.Errorf("core: entry decompress: %w", derr)
	}
	return h.rawLen, nil
}

// Delete releases the entry parked under key on node.
func (c *Client) Delete(ctx context.Context, node transport.NodeID, key uint64) error {
	c.mu.Lock()
	h, ok := c.handles[clientKey{node: node, key: key}]
	if ok {
		delete(c.handles, clientKey{node: node, key: key})
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	home := homeOf(clientKey{node: node, key: key}, h)
	resp, err := c.ep.Call(ctx, home, encodeFreeReq(freeReq{Key: key, Offset: h.offset}))
	if err != nil {
		return fmt.Errorf("core: free on node %d: %w", home, err)
	}
	return checkOKResp(resp)
}
