package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"godm/internal/trace"
	"godm/internal/transport"
)

// Entry is one key/payload pair moved by the batch data plane.
type Entry struct {
	Key  uint64
	Data []byte
}

// blockRef locates one entry's block for span coalescing: idx indexes the
// caller's slice, payloadLen is the meaningful byte count (storedLen), class
// the block stride.
type blockRef struct {
	idx        int
	off        int64
	class      int
	payloadLen int
}

// coalesceSpans sorts refs by offset and groups blocks into maximal runs
// where each block starts exactly at the previous block's end
// (off == prev.off + prev.class) — the layout a fresh batch allocation
// produces — capping each span's wire size at transport.MaxFrameSize. Each
// span becomes one one-sided transfer instead of len(span) transfers.
func coalesceSpans(refs []blockRef) [][]blockRef {
	sort.Slice(refs, func(i, j int) bool { return refs[i].off < refs[j].off })
	var spans [][]blockRef
	for i := 0; i < len(refs); {
		j := i + 1
		for j < len(refs) {
			prev := refs[j-1]
			size := refs[j].off + int64(refs[j].payloadLen) - refs[i].off
			if refs[j].off != prev.off+int64(prev.class) || size > int64(transport.MaxFrameSize) {
				break
			}
			j++
		}
		spans = append(spans, refs[i:j])
		i = j
	}
	return spans
}

// spanBufPool recycles the contiguous staging buffers scatter-gathered
// writes ride in, mirroring the send buffer pool role of §IV.B.
var spanBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getSpanBuf(n int) (*[]byte, []byte) {
	bp := spanBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return bp, (*bp)[:n]
}

// PutAll parks a window of entries in node's receive pool: one opAllocBatch
// round trip reserves every block all-or-nothing, then the payloads are
// scatter-gathered into contiguous spans and written with as few one-sided
// writes as the allocation layout allows (§IV.H window-based batching).
//
// The batch is atomic: on any failure every block reserved for it is
// released and no handle changes, so previously parked versions of the keys
// remain readable. On success, displaced blocks from overwritten keys are
// freed in one batch round trip. Keys must be unique within one call.
func (c *Client) PutAll(ctx context.Context, node transport.NodeID, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if len(entries) > maxBatchEntries {
		return fmt.Errorf("core: batch of %d entries exceeds %d", len(entries), maxBatchEntries)
	}
	ctx, sp := trace.Start(ctx, "client.put_all")
	sp.Annotate("entries", len(entries))
	defer sp.End()

	reqs := make([]batchAllocEntry, len(entries))
	payloads := make([][]byte, len(entries))
	seen := make(map[uint64]bool, len(entries))
	for i, e := range entries {
		if seen[e.Key] {
			return fmt.Errorf("core: duplicate key %d in batch", e.Key)
		}
		seen[e.Key] = true
		payload, class, flags := c.encodeEntry(e.Data)
		payloads[i] = payload
		reqs[i] = batchAllocEntry{Key: e.Key, Class: int32(class), Flags: flags}
	}

	resp, err := c.ep.Call(ctx, node, encodeAllocBatchReq(reqs))
	if err != nil {
		return fmt.Errorf("core: batch alloc on node %d: %w", node, err)
	}
	offsets, err := decodeAllocBatchResp(resp, len(entries))
	if err != nil {
		return err
	}

	refs := make([]blockRef, len(entries))
	for i := range entries {
		refs[i] = blockRef{idx: i, off: offsets[i], class: int(reqs[i].Class), payloadLen: len(payloads[i])}
	}
	spans := coalesceSpans(refs)
	sp.Annotate("spans", len(spans))
	if err := c.writeSpans(ctx, node, spans, payloads); err != nil {
		// Atomic batch: release every block we reserved, on a detached
		// context (the write failure may be the caller's context dying).
		fctx, cancel := detached(ctx)
		defer cancel()
		frees := make([]batchFreeEntry, len(entries))
		for i := range entries {
			frees[i] = batchFreeEntry{Key: entries[i].Key, Offset: offsets[i]}
		}
		_, _ = c.ep.Call(fctx, node, encodeFreeBatchReq(frees))
		return err
	}

	// Commit: install the new handles, then free displaced blocks in one
	// round trip.
	var displaced []batchFreeEntry
	c.mu.Lock()
	for i, e := range entries {
		ck := clientKey{node: node, key: e.Key}
		if old, ok := c.handles[ck]; ok {
			displaced = append(displaced, batchFreeEntry{Key: e.Key, Offset: old.offset})
		}
		c.handles[ck] = clientHandle{
			offset:    offsets[i],
			class:     int(reqs[i].Class),
			storedLen: len(payloads[i]),
			rawLen:    len(e.Data),
			flags:     reqs[i].Flags,
		}
	}
	c.mu.Unlock()
	if len(displaced) > 0 {
		// Best-effort like freeBlock: a failure strands the old blocks only
		// until the host evicts them.
		_, _ = c.ep.Call(ctx, node, encodeFreeBatchReq(displaced))
	}
	return nil
}

// writeSpans gathers each span's payloads into one pooled contiguous buffer
// and issues one one-sided write per span. Gaps between a payload's end and
// its block's class boundary are padding the receiver never reads.
func (c *Client) writeSpans(ctx context.Context, node transport.NodeID, spans [][]blockRef, payloads [][]byte) error {
	for _, span := range spans {
		if len(span) == 1 {
			r := span[0]
			if err := c.ep.WriteRegion(ctx, node, RecvRegionID, r.off, payloads[r.idx]); err != nil {
				return fmt.Errorf("core: batch write to node %d: %w", node, err)
			}
			continue
		}
		first := span[0].off
		last := span[len(span)-1]
		bp, buf := getSpanBuf(int(last.off + int64(last.payloadLen) - first))
		for _, r := range span {
			copy(buf[r.off-first:], payloads[r.idx])
		}
		err := c.ep.WriteRegion(ctx, node, RecvRegionID, first, buf)
		spanBufPool.Put(bp)
		if err != nil {
			return fmt.Errorf("core: batch write to node %d: %w", node, err)
		}
	}
	return nil
}

// GetAll reads back a batch of entries parked on node. Handles whose blocks
// sit contiguously in the remote region are coalesced into single
// one-sided span reads (the PBS-style batched read-ahead of §IV.H), so a
// window parked by PutAll typically comes back in one transfer. Every key
// must have been parked through this client.
func (c *Client) GetAll(ctx context.Context, node transport.NodeID, keys []uint64) (map[uint64][]byte, error) {
	if len(keys) == 0 {
		return map[uint64][]byte{}, nil
	}
	ctx, sp := trace.Start(ctx, "client.get_all")
	sp.Annotate("entries", len(keys))
	defer sp.End()
	handles := make([]clientHandle, len(keys))
	refs := make([]blockRef, len(keys))
	c.mu.Lock()
	for i, k := range keys {
		h, ok := c.handles[clientKey{node: node, key: k}]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("core: no handle for key %d on node %d", k, node)
		}
		handles[i] = h
		refs[i] = blockRef{idx: i, off: h.offset, class: h.class, payloadLen: h.storedLen}
	}
	c.mu.Unlock()
	spans := coalesceSpans(refs)
	sp.Annotate("spans", len(spans))
	out := make(map[uint64][]byte, len(keys))
	for _, span := range spans {
		first := span[0].off
		last := span[len(span)-1]
		data, err := c.ep.ReadRegion(ctx, node, RecvRegionID, first, int(last.off+int64(last.payloadLen)-first))
		if err != nil {
			return nil, fmt.Errorf("core: batch read from node %d: %w", node, err)
		}
		for _, r := range span {
			rel := r.off - first
			decoded, err := decodeEntry(data[rel:rel+int64(r.payloadLen)], handles[r.idx])
			if err != nil {
				return nil, err
			}
			out[keys[r.idx]] = decoded
		}
	}
	return out, nil
}

// DeleteAll releases a batch of entries on node in one control-plane round
// trip. Keys without a handle are skipped, like Delete.
func (c *Client) DeleteAll(ctx context.Context, node transport.NodeID, keys []uint64) error {
	var frees []batchFreeEntry
	c.mu.Lock()
	for _, k := range keys {
		ck := clientKey{node: node, key: k}
		if h, ok := c.handles[ck]; ok {
			frees = append(frees, batchFreeEntry{Key: k, Offset: h.offset})
			delete(c.handles, ck)
		}
	}
	c.mu.Unlock()
	if len(frees) == 0 {
		return nil
	}
	resp, err := c.ep.Call(ctx, node, encodeFreeBatchReq(frees))
	if err != nil {
		return fmt.Errorf("core: batch free on node %d: %w", node, err)
	}
	return checkOKResp(resp)
}

// Window is a client-side staging window for writes (§IV.H "window-based
// batching"): entries accumulate until the window holds size of them, its
// flush timer fires, or Flush is called, then the whole window moves to the
// target node as one atomic PutAll batch.
//
// The timer flush runs on a background goroutine with a wall clock; inside
// the discrete-event simulation use explicit Flush calls instead. A timer
// flush that fails keeps the staged entries and surfaces the error on the
// next Put or Flush.
type Window struct {
	c          *Client
	node       transport.NodeID
	size       int
	flushAfter time.Duration

	mu       sync.Mutex
	staged   []Entry
	inflight int
	timer    *time.Timer
	lastErr  error
}

// NewWindow returns a staging window of the given size (entries) toward
// node. flushAfter > 0 arms a timer on the first staged entry that flushes
// whatever is in the window when it fires.
func (c *Client) NewWindow(node transport.NodeID, size int, flushAfter time.Duration) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: window size %d must be positive", size)
	}
	return &Window{c: c, node: node, size: size, flushAfter: flushAfter}, nil
}

// Put stages one entry (the data is copied). When the window reaches its
// configured size it flushes synchronously; the returned error is that
// flush's (or a previous timer flush's) outcome.
func (w *Window) Put(ctx context.Context, key uint64, data []byte) error {
	w.mu.Lock()
	if err := w.lastErr; err != nil {
		w.lastErr = nil
		w.mu.Unlock()
		return err
	}
	w.staged = append(w.staged, Entry{Key: key, Data: append([]byte(nil), data...)})
	if len(w.staged) >= w.size {
		return w.flushLocked(ctx)
	}
	if w.flushAfter > 0 && w.timer == nil {
		w.timer = time.AfterFunc(w.flushAfter, func() {
			w.mu.Lock()
			if err := w.flushLocked(context.Background()); err != nil {
				w.mu.Lock()
				w.lastErr = err
				w.mu.Unlock()
			}
		})
	}
	w.mu.Unlock()
	return nil
}

// Len reports the number of entries not yet parked remotely: staged plus
// mid-flush. Zero means every Put so far has landed (a failed flush re-stages
// its batch, so failures keep Len nonzero until retried).
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.staged) + w.inflight
}

// Flush sends every staged entry now, as one atomic batch. On failure the
// entries stay staged (PutAll released its reservations), so a retry is
// safe.
func (w *Window) Flush(ctx context.Context) error {
	w.mu.Lock()
	if err := w.lastErr; err != nil {
		w.lastErr = nil
		w.mu.Unlock()
		return err
	}
	return w.flushLocked(ctx)
}

// flushLocked is called with w.mu held and releases it.
func (w *Window) flushLocked(ctx context.Context) error {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	batch := w.staged
	w.staged = nil
	w.inflight += len(batch)
	w.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	err := w.c.PutAll(ctx, w.node, batch)
	w.mu.Lock()
	w.inflight -= len(batch)
	if err != nil {
		w.staged = append(batch, w.staged...)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return nil
}

// Close flushes any staged entries and stops the flush timer.
func (w *Window) Close(ctx context.Context) error {
	return w.Flush(ctx)
}
