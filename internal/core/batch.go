package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"godm/internal/bufpool"
	"godm/internal/trace"
	"godm/internal/transport"
)

// Entry is one key/payload pair moved by the batch data plane.
type Entry struct {
	Key  uint64
	Data []byte
}

// blockRef locates one entry's block for span coalescing: idx indexes the
// caller's slice, payloadLen is the meaningful byte count (storedLen), class
// the block stride.
type blockRef struct {
	idx        int
	off        int64
	class      int
	payloadLen int
}

// coalesceSpans sorts refs by offset and groups blocks into maximal runs
// where each block starts exactly at the previous block's end
// (off == prev.off + prev.class) — the layout a fresh batch allocation
// produces — capping each span's wire size at transport.MaxFrameSize. Each
// span becomes one one-sided transfer instead of len(span) transfers.
func coalesceSpans(refs []blockRef) [][]blockRef {
	sort.Slice(refs, func(i, j int) bool { return refs[i].off < refs[j].off })
	var spans [][]blockRef
	for i := 0; i < len(refs); {
		j := i + 1
		for j < len(refs) {
			prev := refs[j-1]
			size := refs[j].off + int64(refs[j].payloadLen) - refs[i].off
			if refs[j].off != prev.off+int64(prev.class) || size > int64(transport.MaxFrameSize) {
				break
			}
			j++
		}
		spans = append(spans, refs[i:j])
		i = j
	}
	return spans
}

// vecPool recycles the iovec lists multi-block spans are described with; the
// payload bytes themselves are never staged — the gather list references the
// caller's encoded payloads directly (zero-copy until the fabric).
var vecPool = sync.Pool{New: func() any { return new([][]byte) }}

// zeroPad is the shared padding source for the gap between a payload's end
// and its block's class boundary inside a coalesced span. Gaps are always
// smaller than one size class (≤ 4 KiB for granularity classes, and exact-fit
// classes above that), so one page of zeros covers any single gap; the
// writer still loops for safety.
var zeroPad [4096]byte

// PutAll parks a window of entries in node's receive pool: one opAllocBatch
// round trip reserves every block all-or-nothing, then the payloads are
// scatter-gathered into contiguous spans and written with as few one-sided
// writes as the allocation layout allows (§IV.H window-based batching).
//
// The batch is atomic: on any failure every block reserved for it is
// released and no handle changes, so previously parked versions of the keys
// remain readable. On success, displaced blocks from overwritten keys are
// freed in one batch round trip. Keys must be unique within one call.
func (c *Client) PutAll(ctx context.Context, node transport.NodeID, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if len(entries) > maxBatchEntries {
		return fmt.Errorf("core: batch of %d entries exceeds %d", len(entries), maxBatchEntries)
	}
	ctx, sp := trace.Start(ctx, "client.put_all")
	sp.Annotate("entries", len(entries))
	defer sp.End()

	reqs := make([]batchAllocEntry, len(entries))
	payloads := make([][]byte, len(entries))
	seen := make(map[uint64]bool, len(entries))
	for i, e := range entries {
		if seen[e.Key] {
			return fmt.Errorf("core: duplicate key %d in batch", e.Key)
		}
		seen[e.Key] = true
		payload, class, flags := c.encodeEntry(e.Data)
		payloads[i] = payload
		reqs[i] = batchAllocEntry{Key: e.Key, Class: int32(class), Flags: flags}
	}

	resp, err := c.ep.Call(ctx, node, encodeAllocBatchReq(reqs))
	if err != nil {
		return fmt.Errorf("core: batch alloc on node %d: %w", node, err)
	}
	offsets, err := decodeAllocBatchResp(resp, len(entries))
	if err != nil {
		return err
	}

	refs := make([]blockRef, len(entries))
	for i := range entries {
		refs[i] = blockRef{idx: i, off: offsets[i], class: int(reqs[i].Class), payloadLen: len(payloads[i])}
	}
	spans := coalesceSpans(refs)
	sp.Annotate("spans", len(spans))
	if err := c.writeSpans(ctx, node, spans, payloads); err != nil {
		// Atomic batch: release every block we reserved, on a detached
		// context (the write failure may be the caller's context dying).
		fctx, cancel := detached(ctx)
		defer cancel()
		frees := make([]batchFreeEntry, len(entries))
		for i := range entries {
			frees[i] = batchFreeEntry{Key: entries[i].Key, Offset: offsets[i]}
		}
		_, _ = c.ep.Call(fctx, node, encodeFreeBatchReq(frees))
		return err
	}

	// Commit: install the new handles, then free displaced blocks in one
	// round trip.
	var displaced []batchFreeEntry
	c.mu.Lock()
	for i, e := range entries {
		ck := clientKey{node: node, key: e.Key}
		if old, ok := c.handles[ck]; ok {
			displaced = append(displaced, batchFreeEntry{Key: e.Key, Offset: old.offset})
		}
		c.handles[ck] = clientHandle{
			offset:    offsets[i],
			class:     int(reqs[i].Class),
			storedLen: len(payloads[i]),
			rawLen:    len(e.Data),
			flags:     reqs[i].Flags,
		}
	}
	c.mu.Unlock()
	if len(displaced) > 0 {
		// Best-effort like freeBlock: a failure strands the old blocks only
		// until the host evicts them.
		_, _ = c.ep.Call(ctx, node, encodeFreeBatchReq(displaced))
	}
	return nil
}

// writeSpans describes each span as an iovec list — the payload slices in
// offset order, with shared zero-padding slices filling the gap between a
// payload's end and its block's class boundary — and hands the list to one
// gather write per span. No assembly copy happens on this side: a vectored
// fabric (tcpnet, simnet) carries the list as-is, and transport.WriteRegionV
// falls back to a single pooled gather only for fabrics without the
// capability. Padding bytes are zeros the receiver never reads.
func (c *Client) writeSpans(ctx context.Context, node transport.NodeID, spans [][]blockRef, payloads [][]byte) error {
	vp := vecPool.Get().(*[][]byte)
	defer func() {
		// Drop payload references before pooling so the list doesn't pin
		// caller buffers across uses.
		full := (*vp)[:cap(*vp)]
		for i := range full {
			full[i] = nil
		}
		vecPool.Put(vp)
	}()
	for _, span := range spans {
		if len(span) == 1 {
			r := span[0]
			if err := c.ep.WriteRegion(ctx, node, RecvRegionID, r.off, payloads[r.idx]); err != nil {
				return fmt.Errorf("core: batch write to node %d: %w", node, err)
			}
			continue
		}
		vec := (*vp)[:0]
		pos := span[0].off
		for _, r := range span {
			for gap := r.off - pos; gap > 0; gap -= int64(len(zeroPad)) {
				pad := gap
				if pad > int64(len(zeroPad)) {
					pad = int64(len(zeroPad))
				}
				vec = append(vec, zeroPad[:pad])
			}
			vec = append(vec, payloads[r.idx])
			pos = r.off + int64(r.payloadLen)
		}
		err := transport.WriteRegionV(ctx, c.ep, node, RecvRegionID, span[0].off, vec)
		*vp = vec[:0]
		if err != nil {
			return fmt.Errorf("core: batch write to node %d: %w", node, err)
		}
	}
	return nil
}

// GetAll reads back a batch of entries parked on node. Handles whose blocks
// sit contiguously in the remote region are coalesced into single
// one-sided span reads (the PBS-style batched read-ahead of §IV.H), so a
// window parked by PutAll typically comes back in one transfer. Every key
// must have been parked through this client.
func (c *Client) GetAll(ctx context.Context, node transport.NodeID, keys []uint64) (map[uint64][]byte, error) {
	if len(keys) == 0 {
		return map[uint64][]byte{}, nil
	}
	ctx, sp := trace.Start(ctx, "client.get_all")
	sp.Annotate("entries", len(keys))
	defer sp.End()
	handles := make([]clientHandle, len(keys))
	refs := make([]blockRef, len(keys))
	c.mu.Lock()
	for i, k := range keys {
		h, ok := c.handles[clientKey{node: node, key: k}]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("core: no handle for key %d on node %d", k, node)
		}
		handles[i] = h
		refs[i] = blockRef{idx: i, off: h.offset, class: h.class, payloadLen: h.storedLen}
	}
	c.mu.Unlock()
	spans := coalesceSpans(refs)
	sp.Annotate("spans", len(spans))
	out := make(map[uint64][]byte, len(keys))
	for _, span := range spans {
		first := span[0].off
		last := span[len(span)-1]
		// One fresh buffer per span, scattered into straight off the fabric.
		// Uncompressed results alias subranges of it (the caller owns the map,
		// so handing out views of a buffer nothing else retains is safe and
		// saves a per-entry copy); only compressed entries decode into their
		// own allocation. The buffer is therefore NOT pooled — entries pin it.
		buf := make([]byte, int(last.off+int64(last.payloadLen)-first))
		if err := transport.ReadRegionInto(ctx, c.ep, node, RecvRegionID, first, buf); err != nil {
			return nil, fmt.Errorf("core: batch read from node %d: %w", node, err)
		}
		for _, r := range span {
			rel := r.off - first
			h := handles[r.idx]
			view := buf[rel : rel+int64(r.payloadLen)]
			if h.flags&flagDeflate == 0 {
				out[keys[r.idx]] = view[:h.rawLen]
				continue
			}
			decoded := make([]byte, h.rawLen)
			if err := decodeEntryInto(decoded, view, h); err != nil {
				return nil, err
			}
			out[keys[r.idx]] = decoded
		}
	}
	return out, nil
}

// GetAllInto is GetAll with caller-owned result buffers: dsts[i] receives
// the entry parked under keys[i] and must hold at least its decoded length;
// on return dsts[i] is resliced to exactly that length. Reads are
// span-coalesced like GetAll. A span holding a single uncompressed entry
// scatters from the fabric straight into the caller's buffer; multi-entry
// spans stage one pooled buffer per span (the span read is one contiguous
// transfer — splitting it across destination buffers requires one copy), and
// compressed entries inflate into dsts[i] from pooled staging. Steady state
// allocates only the span bookkeeping, never payload-sized buffers.
func (c *Client) GetAllInto(ctx context.Context, node transport.NodeID, keys []uint64, dsts [][]byte) error {
	if len(keys) != len(dsts) {
		return fmt.Errorf("core: %d keys but %d destination buffers", len(keys), len(dsts))
	}
	if len(keys) == 0 {
		return nil
	}
	ctx, sp := trace.Start(ctx, "client.get_all")
	sp.Annotate("entries", len(keys))
	defer sp.End()
	handles := make([]clientHandle, len(keys))
	refs := make([]blockRef, len(keys))
	c.mu.Lock()
	for i, k := range keys {
		h, ok := c.handles[clientKey{node: node, key: k}]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("core: no handle for key %d on node %d", k, node)
		}
		if len(dsts[i]) < h.rawLen {
			c.mu.Unlock()
			return fmt.Errorf("core: dst for key %d holds %d bytes, entry is %d", k, len(dsts[i]), h.rawLen)
		}
		handles[i] = h
		refs[i] = blockRef{idx: i, off: h.offset, class: h.class, payloadLen: h.storedLen}
	}
	c.mu.Unlock()
	spans := coalesceSpans(refs)
	sp.Annotate("spans", len(spans))
	for _, span := range spans {
		if len(span) == 1 && handles[span[0].idx].flags&flagDeflate == 0 {
			i := span[0].idx
			n, err := c.getInto(ctx, node, handles[i], dsts[i])
			if err != nil {
				return err
			}
			dsts[i] = dsts[i][:n]
			continue
		}
		first := span[0].off
		last := span[len(span)-1]
		buf := bufpool.Get(int(last.off + int64(last.payloadLen) - first))
		if err := transport.ReadRegionInto(ctx, c.ep, node, RecvRegionID, first, buf); err != nil {
			bufpool.Put(buf)
			return fmt.Errorf("core: batch read from node %d: %w", node, err)
		}
		for _, r := range span {
			rel := r.off - first
			h := handles[r.idx]
			if err := decodeEntryInto(dsts[r.idx][:h.rawLen], buf[rel:rel+int64(r.payloadLen)], h); err != nil {
				bufpool.Put(buf)
				return err
			}
			dsts[r.idx] = dsts[r.idx][:h.rawLen]
		}
		bufpool.Put(buf)
	}
	return nil
}

// DeleteAll releases a batch of entries on node in one control-plane round
// trip. Keys without a handle are skipped, like Delete.
func (c *Client) DeleteAll(ctx context.Context, node transport.NodeID, keys []uint64) error {
	var frees []batchFreeEntry
	c.mu.Lock()
	for _, k := range keys {
		ck := clientKey{node: node, key: k}
		if h, ok := c.handles[ck]; ok {
			frees = append(frees, batchFreeEntry{Key: k, Offset: h.offset})
			delete(c.handles, ck)
		}
	}
	c.mu.Unlock()
	if len(frees) == 0 {
		return nil
	}
	resp, err := c.ep.Call(ctx, node, encodeFreeBatchReq(frees))
	if err != nil {
		return fmt.Errorf("core: batch free on node %d: %w", node, err)
	}
	return checkOKResp(resp)
}

// Window is a client-side staging window for writes (§IV.H "window-based
// batching"): entries accumulate until the window holds size of them, its
// flush timer fires, or Flush is called, then the whole window moves to the
// target node as one atomic PutAll batch.
//
// The timer flush runs on a background goroutine with a wall clock; inside
// the discrete-event simulation use explicit Flush calls instead. A timer
// flush that fails keeps the staged entries and surfaces the error on the
// next Put or Flush.
type Window struct {
	c          *Client
	node       transport.NodeID
	size       int
	flushAfter time.Duration

	mu       sync.Mutex
	staged   []Entry
	inflight int
	timer    *time.Timer
	lastErr  error
}

// NewWindow returns a staging window of the given size (entries) toward
// node. flushAfter > 0 arms a timer on the first staged entry that flushes
// whatever is in the window when it fires.
func (c *Client) NewWindow(node transport.NodeID, size int, flushAfter time.Duration) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: window size %d must be positive", size)
	}
	return &Window{c: c, node: node, size: size, flushAfter: flushAfter}, nil
}

// Put stages one entry (the data is copied, so the caller may reuse its
// buffer immediately). When the window reaches its configured size it
// flushes synchronously; the returned error is that flush's (or a previous
// timer flush's) outcome.
func (w *Window) Put(ctx context.Context, key uint64, data []byte) error {
	return w.put(ctx, key, data, true)
}

// PutOwned stages one entry without copying: the window takes ownership of
// data. The caller must not modify (or reuse) the slice until the entry has
// been flushed — i.e. until the Put/PutOwned or Flush call that drains it
// returns successfully; with a flushAfter timer, until Len reports it
// drained. The staged slice is also what rides the gather write, so mutating
// it mid-flush would tear the bytes on the wire. Use Put when in doubt; use
// PutOwned when the producer already hands over dedicated buffers and the
// defensive copy is pure overhead.
func (w *Window) PutOwned(ctx context.Context, key uint64, data []byte) error {
	return w.put(ctx, key, data, false)
}

func (w *Window) put(ctx context.Context, key uint64, data []byte, copyData bool) error {
	w.mu.Lock()
	if err := w.lastErr; err != nil {
		w.lastErr = nil
		w.mu.Unlock()
		return err
	}
	if copyData {
		data = append([]byte(nil), data...)
	}
	w.staged = append(w.staged, Entry{Key: key, Data: data})
	if len(w.staged) >= w.size {
		return w.flushLocked(ctx)
	}
	if w.flushAfter > 0 && w.timer == nil {
		w.timer = time.AfterFunc(w.flushAfter, func() {
			w.mu.Lock()
			if err := w.flushLocked(context.Background()); err != nil {
				w.mu.Lock()
				w.lastErr = err
				w.mu.Unlock()
			}
		})
	}
	w.mu.Unlock()
	return nil
}

// Len reports the number of entries not yet parked remotely: staged plus
// mid-flush. Zero means every Put so far has landed (a failed flush re-stages
// its batch, so failures keep Len nonzero until retried).
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.staged) + w.inflight
}

// Flush sends every staged entry now, as one atomic batch. On failure the
// entries stay staged (PutAll released its reservations), so a retry is
// safe.
func (w *Window) Flush(ctx context.Context) error {
	w.mu.Lock()
	if err := w.lastErr; err != nil {
		w.lastErr = nil
		w.mu.Unlock()
		return err
	}
	return w.flushLocked(ctx)
}

// flushLocked is called with w.mu held and releases it.
func (w *Window) flushLocked(ctx context.Context) error {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	batch := w.staged
	w.staged = nil
	w.inflight += len(batch)
	w.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	err := w.c.PutAll(ctx, w.node, batch)
	w.mu.Lock()
	w.inflight -= len(batch)
	if err != nil {
		w.staged = append(batch, w.staged...)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return nil
}

// Close flushes any staged entries and stops the flush timer.
func (w *Window) Close(ctx context.Context) error {
	return w.Flush(ctx)
}
