package core

import (
	"bytes"
	"context"
	"testing"

	"godm/internal/des"
	"godm/internal/pagetable"
	"godm/internal/transport"
)

// A harvest that fits inside unbacked headroom reclaims instantly: no block
// moves, the node stays in the cluster, and its advertised pool shrinks.
func TestHarvestHeadroomCostsNoMigration(t *testing.T) {
	tc := newTestCluster(t, 3, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		before := tc.nodes[1].RecvPool().FreeBytes()
		reclaimed, moved, err := client.Harvest(ctx, 2, 64<<10)
		if err != nil {
			t.Errorf("Harvest: %v", err)
			return
		}
		if reclaimed != 64<<10 || moved != 0 {
			t.Errorf("reclaimed %d, moved %d; want %d, 0", reclaimed, moved, 64<<10)
		}
		if tc.nodes[1].Draining() {
			t.Error("harvest must not put the node in a drain")
		}
		after := tc.nodes[1].RecvPool().FreeBytes()
		if before-after != 64<<10 {
			t.Errorf("free bytes dropped by %d, want %d", before-after, 64<<10)
		}
		// The smaller pool still serves: a put that fits must succeed.
		if err := client.Put(ctx, 2, 5, bytes.Repeat([]byte{7}, 1024)); err != nil {
			t.Errorf("Put after partial harvest: %v", err)
		}
	})
}

// Harvesting more than the free headroom forces hosted blocks to migrate;
// the data stays readable through the same redirect tombstones a
// decommission leaves, and the donor remains a live cluster member.
func TestHarvestMigratesAndRedirects(t *testing.T) {
	tc := newTestCluster(t, 4, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	data := bytes.Repeat([]byte{0x6B}, 2048)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := client.Put(ctx, 2, 9, data); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		want := smallConfig(2).RecvPoolBytes // the whole donated pool
		reclaimed, moved, err := client.Harvest(ctx, 2, want)
		if err != nil {
			t.Errorf("Harvest: %v", err)
			return
		}
		if reclaimed != want {
			t.Errorf("reclaimed %d, want %d", reclaimed, want)
		}
		if moved != 1 {
			t.Errorf("moved = %d, want 1", moved)
		}
		if tc.nodes[1].Draining() {
			t.Error("harvested node must not report draining")
		}
		if !tc.nodes[1].dir.Alive(2) {
			t.Error("harvested node left the cluster map")
		}
		// The migrated block keeps its true owner (node 1, the putter) on
		// the successor, not the harvested intermediary.
		if host := findHost(tc, 1, 9, 2); host == 0 {
			t.Error("migrated block not found on any peer")
			return
		}
		// A reader holding a stale handle that probes the old home gets a
		// redirect tombstone pointing at the new one, exactly as in a drain.
		client.mu.Lock()
		h := client.handles[clientKey{node: 2, key: 9}]
		client.mu.Unlock()
		nn, noff, movedTo := client.chase(ctx, 2, 9, h.offset)
		if !movedTo || nn == 2 {
			t.Errorf("locate after harvest: moved=%v node=%d, want redirect off node 2", movedTo, nn)
		}
		if r := client.Redirects(); r != 1 {
			t.Errorf("redirects = %d, want 1", r)
		}
		client.rememberHome(clientKey{node: 2, key: 9}, nn, noff)
		got, err := client.Get(ctx, 2, 9)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get after harvest = %d bytes, %v", len(got), err)
			return
		}
		st := tc.nodes[1].Stats()
		if st.HarvestedBytes != want {
			t.Errorf("HarvestedBytes = %d, want %d", st.HarvestedBytes, want)
		}
	})
}

// Harvesting a node that hosts a replicated virtual-server entry must
// repoint the owner's remote map and page table (opMoved), so the owner's
// reads keep working with no redirect hop at all.
func TestHarvestRepointsOwnerPageTable(t *testing.T) {
	tc := newTestCluster(t, 4, func(id transport.NodeID) Config {
		cfg := smallConfig(id)
		cfg.ReplicationFactor = 2
		return cfg
	})
	vs, err := tc.nodes[0].AddServer("vm0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, 3000)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if err := vs.PutRemote(ctx, 21, data, 4096, len(data)); err != nil {
			t.Errorf("PutRemote: %v", err)
			return
		}
		key := vs.WireKey(21)
		var host *Node
		for _, n := range tc.nodes[1:] {
			if n.HostsRemoteKey(1, key) {
				host = n
				break
			}
		}
		if host == nil {
			t.Error("no node hosts the replicated entry")
			return
		}
		want := smallConfig(host.cfg.ID).RecvPoolBytes
		if _, _, err := host.Harvest(ctx, want); err != nil {
			t.Errorf("Harvest node %d: %v", host.cfg.ID, err)
			return
		}
		loc, err := vs.Location(21)
		if err != nil {
			t.Errorf("Location: %v", err)
			return
		}
		harvested := pagetable.NodeID(host.cfg.ID)
		if loc.Primary == harvested {
			t.Errorf("primary still points at harvested node %d", host.cfg.ID)
		}
		for _, r := range loc.Replicas {
			if r == harvested {
				t.Errorf("replica set still references harvested node %d", host.cfg.ID)
			}
		}
		got, _, err := vs.Get(ctx, 21)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("Get after harvest = %d bytes, %v", len(got), err)
		}
	})
}

// Harvest rejects non-positive requests at the wire boundary.
func TestHarvestRejectsNonPositive(t *testing.T) {
	tc := newTestCluster(t, 2, smallConfig)
	client := NewClient(tc.nodes[0].ep)
	tc.run(t, func(ctx context.Context, p *des.Proc) {
		if _, _, err := client.Harvest(ctx, 2, 0); err == nil {
			t.Error("Harvest(0) should fail")
		}
	})
}
