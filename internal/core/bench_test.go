package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/faulty"
	"godm/internal/replication"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

// benchFabric wires one client endpoint plus donor nodes over loopback TCP —
// the real-fabric rig the data-plane numbers in BENCH_dataplane.json come
// from.
type benchFabric struct {
	client *Client
	ep     *tcpnet.Endpoint
	donors []transport.NodeID
}

func newBenchFabric(b *testing.B, donors int, opts ...ClientOption) *benchFabric {
	return newBenchFabricRTT(b, donors, 0, opts...)
}

// newBenchFabricRTT is newBenchFabric with an emulated per-operation fabric
// round trip: every client-side verb sleeps rtt before hitting the wire, via
// the faulty delay middleware. Loopback TCP has no propagation delay and this
// is an in-process single-address-space rig, so without it every byte of a
// "remote" op is CPU work and concurrent fan-out has nothing to overlap; rtt
// restores the latency component that dominates a real disaggregated fabric.
func newBenchFabricRTT(b *testing.B, donors int, rtt time.Duration, opts ...ClientOption) *benchFabric {
	b.Helper()
	clientEP, err := tcpnet.Listen(100, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = clientEP.Close() })
	var clientVerbs transport.Endpoint = clientEP
	if rtt > 0 {
		inj := faulty.New(1)
		inj.AddRule(faulty.Rule{Kind: faulty.KindDelay, Verb: faulty.VerbAny,
			From: faulty.AnyNode, To: faulty.AnyNode, Pct: 100, Delay: rtt})
		clientVerbs = inj.Wrap(clientEP)
	}
	bf := &benchFabric{ep: clientEP}
	for i := 1; i <= donors; i++ {
		id := transport.NodeID(i)
		ep, err := tcpnet.Listen(id, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = ep.Close() })
		dir, err := cluster.NewDirectory(cluster.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewNode(Config{
			ID: id, SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
			RecvPoolBytes: 64 << 20, SlabSize: 1 << 20, ReplicationFactor: 1,
		}, ep, dir); err != nil {
			b.Fatal(err)
		}
		clientEP.AddPeer(id, ep.Addr())
		bf.donors = append(bf.donors, id)
	}
	bf.client = NewClient(clientVerbs, opts...)
	return bf
}

// clientStore adapts Client to replication.Store so the fan-out benchmarks
// measure the same control+data planes the node manager uses.
type clientStore struct{ c *Client }

func (s clientStore) Put(ctx context.Context, node replication.NodeID, id replication.EntryID, data []byte) error {
	return s.c.Put(ctx, transport.NodeID(node), uint64(id), data)
}

func (s clientStore) Get(ctx context.Context, node replication.NodeID, id replication.EntryID) ([]byte, error) {
	return s.c.Get(ctx, transport.NodeID(node), uint64(id))
}

func (s clientStore) Delete(ctx context.Context, node replication.NodeID, id replication.EntryID) error {
	return s.c.Delete(ctx, transport.NodeID(node), uint64(id))
}

func benchReplicatedWrite(b *testing.B, rtt time.Duration, opts ...replication.Option) {
	bf := newBenchFabricRTT(b, 3, rtt)
	repl, err := replication.New(clientStore{bf.client}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]replication.NodeID, len(bf.donors))
	for i, d := range bf.donors {
		nodes[i] = replication.NodeID(d)
	}
	ctx := context.Background()
	data := bytes.Repeat([]byte{0x5A}, 4096)
	// Warm round reserves the blocks; timed rounds overwrite in place, so
	// every iteration is exactly one 3-way data-plane fan-out.
	if err := repl.Write(ctx, nodes, 1, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)) * int64(len(nodes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := repl.Write(ctx, nodes, 1, data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRTT is the emulated per-op fabric round trip for the *RTT variants —
// the latency the parallel fan-out exists to overlap. 1ms is the floor the
// runtime's sleep granularity enforces on this class of host anyway (sub-ms
// nominal delays round up to it), so the nominal figure matches what is
// actually emulated. The raw (no-RTT) variants measure pure loopback, where
// on a small host the fan-out's win is bounded by spare cores, not by the
// fabric.
const benchRTT = time.Millisecond

func BenchmarkReplicatedWriteSerial(b *testing.B) {
	benchReplicatedWrite(b, 0, replication.WithSerialFanout())
}

func BenchmarkReplicatedWriteParallel(b *testing.B) {
	benchReplicatedWrite(b, 0)
}

func BenchmarkReplicatedWriteSerialRTT(b *testing.B) {
	benchReplicatedWrite(b, benchRTT, replication.WithSerialFanout())
}

func BenchmarkReplicatedWriteParallelRTT(b *testing.B) {
	benchReplicatedWrite(b, benchRTT)
}

// benchEntries builds count fresh entries of size bytes for iteration i.
// Incompressible by default so compression benchmarks opt in explicitly.
func benchEntries(i, count, size int, compressible bool) []Entry {
	entries := make([]Entry, count)
	for j := range entries {
		data := make([]byte, size)
		if compressible {
			copy(data, bytes.Repeat([]byte(fmt.Sprintf("entry-%d-%d ", i, j)), size/12+1))
		} else {
			xorshift(uint64(i*count+j+1), data)
		}
		entries[j] = Entry{Key: uint64(j + 1), Data: data}
	}
	return entries
}

const benchWindow = 64

func BenchmarkClientPutSingle(b *testing.B) {
	bf := newBenchFabric(b, 1)
	ctx := context.Background()
	entries := benchEntries(0, benchWindow, 4096, false)
	for _, e := range entries { // warm: reserve once, overwrite in place after
		if err := bf.client.Put(ctx, 1, e.Key, e.Data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(benchWindow * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			if err := bf.client.Put(ctx, 1, e.Key, e.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkClientPutBatched(b *testing.B) {
	bf := newBenchFabric(b, 1)
	ctx := context.Background()
	entries := benchEntries(0, benchWindow, 4096, false)
	b.SetBytes(benchWindow * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bf.client.PutAll(ctx, 1, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientPutCompressed(b *testing.B) {
	bf := newBenchFabric(b, 1, WithCompression(0))
	ctx := context.Background()
	entries := benchEntries(0, benchWindow, 4096, true)
	b.SetBytes(benchWindow * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bf.client.PutAll(ctx, 1, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientGetBatched(b *testing.B) {
	bf := newBenchFabric(b, 1)
	ctx := context.Background()
	entries := benchEntries(0, benchWindow, 4096, false)
	if err := bf.client.PutAll(ctx, 1, entries); err != nil {
		b.Fatal(err)
	}
	keys := make([]uint64, len(entries))
	for i := range entries {
		keys[i] = entries[i].Key
	}
	b.SetBytes(benchWindow * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bf.client.GetAll(ctx, 1, keys); err != nil {
			b.Fatal(err)
		}
	}
}
