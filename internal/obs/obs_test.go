package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"godm/internal/metrics"
	"godm/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func testFixtures() (*metrics.Tree, *trace.Tracer, trace.TraceID) {
	tree := metrics.NewTree()
	reg := tree.Registry("node/swap")
	reg.Counter("faults").Add(3)
	reg.Histogram("fault_latency").Observe(5 * time.Microsecond)

	var now time.Duration
	tr := trace.New(trace.WithClock(func() time.Duration { now += time.Millisecond; return now }))
	ctx := trace.WithTracer(context.Background(), tr)
	ctx, root := trace.Start(ctx, "swap.fault")
	_, child := trace.Start(ctx, "net.call")
	child.End()
	root.End()
	return tree, tr, root.TraceID()
}

func TestMetricsEndpoint(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv := httptest.NewServer(Handler(tree, tr))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"godm_node_swap_faults 3",
		"# TYPE godm_node_swap_fault_latency histogram",
		`godm_node_swap_fault_latency_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv := httptest.NewServer(Handler(tree, tr))
	defer srv.Close()

	code, body, _ := get(t, srv, "/stats")
	if code != http.StatusOK || !strings.Contains(body, "node/swap") {
		t.Fatalf("/stats status %d body:\n%s", code, body)
	}
}

func TestTraceEndpoints(t *testing.T) {
	tree, tr, id := testFixtures()
	srv := httptest.NewServer(Handler(tree, tr))
	defer srv.Close()

	code, body, _ := get(t, srv, "/trace")
	if code != http.StatusOK || !strings.Contains(body, "retained traces") {
		t.Fatalf("/trace listing status %d body:\n%s", code, body)
	}

	code, body, _ = get(t, srv, "/trace?id="+strconv.FormatUint(uint64(id), 10))
	if code != http.StatusOK {
		t.Fatalf("/trace?id status %d body:\n%s", code, body)
	}
	if !strings.Contains(body, "swap.fault") || !strings.Contains(body, "net.call") {
		t.Fatalf("timeline incomplete:\n%s", body)
	}

	if code, _, _ = get(t, srv, "/trace?id=999999"); code != http.StatusNotFound {
		t.Fatalf("unknown trace returned %d", code)
	}
	if code, _, _ = get(t, srv, "/trace?id=junk"); code != http.StatusBadRequest {
		t.Fatalf("bad trace id returned %d", code)
	}
}

func TestPprofEndpoint(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv := httptest.NewServer(Handler(tree, tr))
	defer srv.Close()

	code, body, _ := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestNilSurfaces(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	if code, body, _ := get(t, srv, "/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("nil tree /metrics: %d %q", code, body)
	}
	if code, _, _ := get(t, srv, "/trace"); code != http.StatusNotFound {
		t.Fatalf("nil tracer /trace status %d", code)
	}
}

func TestServeBindsAndStops(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv, addr, err := Serve("127.0.0.1:0", tree, tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
