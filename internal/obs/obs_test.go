package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"godm/internal/metrics"
	"godm/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func testFixtures() (*metrics.Tree, *trace.Tracer, trace.TraceID) {
	tree := metrics.NewTree()
	reg := tree.Registry("node/swap")
	reg.Counter("faults").Add(3)
	reg.Histogram("fault_latency").Observe(5 * time.Microsecond)

	var now time.Duration
	tr := trace.New(trace.WithClock(func() time.Duration { now += time.Millisecond; return now }))
	ctx := trace.WithTracer(context.Background(), tr)
	ctx, root := trace.Start(ctx, "swap.fault")
	_, child := trace.Start(ctx, "net.call")
	child.End()
	root.End()
	return tree, tr, root.TraceID()
}

func TestMetricsEndpoint(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv := httptest.NewServer(Handler(Options{Tree: tree, Tracer: tr}))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"godm_node_swap_faults 3",
		"# TYPE godm_node_swap_fault_latency histogram",
		`godm_node_swap_fault_latency_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv := httptest.NewServer(Handler(Options{Tree: tree, Tracer: tr}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/stats")
	if code != http.StatusOK || !strings.Contains(body, "node/swap") {
		t.Fatalf("/stats status %d body:\n%s", code, body)
	}
}

func TestTraceEndpoints(t *testing.T) {
	tree, tr, id := testFixtures()
	srv := httptest.NewServer(Handler(Options{Tree: tree, Tracer: tr}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/trace")
	if code != http.StatusOK || !strings.Contains(body, "retained traces") {
		t.Fatalf("/trace listing status %d body:\n%s", code, body)
	}

	code, body, _ = get(t, srv, "/trace?id="+strconv.FormatUint(uint64(id), 10))
	if code != http.StatusOK {
		t.Fatalf("/trace?id status %d body:\n%s", code, body)
	}
	if !strings.Contains(body, "swap.fault") || !strings.Contains(body, "net.call") {
		t.Fatalf("timeline incomplete:\n%s", body)
	}

	if code, _, _ = get(t, srv, "/trace?id=999999"); code != http.StatusNotFound {
		t.Fatalf("unknown trace returned %d", code)
	}
	if code, _, _ = get(t, srv, "/trace?id=junk"); code != http.StatusBadRequest {
		t.Fatalf("bad trace id returned %d", code)
	}
}

func TestPprofEndpoint(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv := httptest.NewServer(Handler(Options{Tree: tree, Tracer: tr}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestNilSurfaces(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	defer srv.Close()
	if code, body, _ := get(t, srv, "/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("nil tree /metrics: %d %q", code, body)
	}
	if code, _, _ := get(t, srv, "/trace"); code != http.StatusNotFound {
		t.Fatalf("nil tracer /trace status %d", code)
	}
}

func TestServeBindsAndStops(t *testing.T) {
	tree, tr, _ := testFixtures()
	srv, addr, err := Serve("127.0.0.1:0", Options{Tree: tree, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if srv.ReadTimeout == 0 || srv.WriteTimeout == 0 {
		t.Fatalf("server timeouts unset: read=%v write=%v", srv.ReadTimeout, srv.WriteTimeout)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	tree, tr, _ := testFixtures()
	draining := false
	srv := httptest.NewServer(Handler(Options{Tree: tree, Tracer: tr, Health: func() Health {
		return Health{Node: 7, Epoch: 42, Draining: draining}
	}}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	for _, want := range []string{"ok", "node 7", "epoch 42", "state serving"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/healthz missing %q:\n%s", want, body)
		}
	}
	draining = true
	if _, body, _ := get(t, srv, "/healthz"); !strings.Contains(body, "state draining") {
		t.Fatalf("/healthz not live: %s", body)
	}
	// Without a probe the endpoint 404s.
	bare := httptest.NewServer(Handler(Options{}))
	defer bare.Close()
	if code, _, _ := get(t, bare, "/healthz"); code != http.StatusNotFound {
		t.Fatalf("probe-less /healthz status %d", code)
	}
}

func TestClusterEndpoint(t *testing.T) {
	store := metrics.NewClusterStore(1)
	reg := metrics.NewRegistry("core/node-1")
	reg.Counter("remote_allocs").Add(5)
	store.Update(metrics.NodeDigest{
		Node: 1, Seq: 1,
		D: metrics.DigestRegistries(map[string]*metrics.Registry{"core": reg}),
	})
	srv := httptest.NewServer(Handler(Options{Cluster: store}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/cluster")
	if code != http.StatusOK {
		t.Fatalf("/cluster status %d", code)
	}
	for _, want := range []string{"cluster view: 1 contributors", "aggregate counters:", "core/remote_allocs 5"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/cluster missing %q:\n%s", want, body)
		}
	}
	bare := httptest.NewServer(Handler(Options{}))
	defer bare.Close()
	if code, _, _ := get(t, bare, "/cluster"); code != http.StatusNotFound {
		t.Fatalf("store-less /cluster status %d", code)
	}
}

func TestFlightEndpoint(t *testing.T) {
	flight := trace.NewFlight()
	var now time.Duration
	tr := trace.New(
		trace.WithClock(func() time.Duration { now += time.Millisecond; return now }),
		trace.WithFlight(flight),
	)
	ctx := trace.WithTracer(context.Background(), tr)
	_, sp := trace.Start(ctx, "swap.fault")
	sp.Annotate("slow", "get")
	sp.End()

	// Flight falls back to the tracer's attached recorder.
	srv := httptest.NewServer(Handler(Options{Tracer: tr}))
	defer srv.Close()
	code, body, _ := get(t, srv, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight status %d", code)
	}
	for _, want := range []string{"flight recorder: 1 flagged, 1 completed", "slow-op", "swap.fault"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/flight missing %q:\n%s", want, body)
		}
	}
	bare := httptest.NewServer(Handler(Options{}))
	defer bare.Close()
	if code, _, _ := get(t, bare, "/debug/flight"); code != http.StatusNotFound {
		t.Fatalf("recorder-less /debug/flight status %d", code)
	}
}
