// Package obs serves a node's observability surfaces over HTTP: the metrics
// tree as Prometheus text on /metrics and as the human-readable tree on
// /stats, reassembled trace timelines on /trace, and the standard pprof
// profiles under /debug/pprof/. The listener is opt-in (dmnode -http); the
// data plane never depends on it.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"godm/internal/metrics"
	"godm/internal/trace"
)

// maxTraceList bounds how many recent trace IDs /trace enumerates.
const maxTraceList = 64

// Handler returns the observability mux over tree and tr. Either may be nil;
// its surfaces then report an empty document.
func Handler(tree *metrics.Tree, tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if tree != nil {
			_ = tree.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tree != nil {
			_, _ = fmt.Fprint(w, tree.String())
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tr == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			tl := tr.Timeline(trace.TraceID(id))
			if tl == "" {
				http.Error(w, "trace not found (evicted or never recorded)", http.StatusNotFound)
				return
			}
			_, _ = fmt.Fprintf(w, "trace %d\n%s", id, tl)
			return
		}
		ids := tr.TraceIDs()
		if len(ids) > maxTraceList {
			ids = ids[len(ids)-maxTraceList:] // newest traces are most useful
		}
		_, _ = fmt.Fprintf(w, "%d retained traces (newest last); fetch one with /trace?id=N\n", len(ids))
		for _, id := range ids {
			_, _ = fmt.Fprintf(w, "%d\n", uint64(id))
		}
	})
	// The default pprof handlers register on http.DefaultServeMux; bind them
	// explicitly so this mux works standalone.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability listener on addr and returns the running
// server plus its bound address (useful with ":0"). Close the server to stop
// it; serve errors after Close are swallowed.
func Serve(addr string, tree *metrics.Tree, tr *trace.Tracer) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(tree, tr)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
