// Package obs serves a node's observability surfaces over HTTP: the metrics
// tree as Prometheus text on /metrics and as the human-readable tree on
// /stats, reassembled trace timelines on /trace, the cluster-wide digest view
// on /cluster, the flight recorder on /debug/flight, liveness on /healthz,
// and the standard pprof profiles under /debug/pprof/. The listener is opt-in
// (dmnode -http); the data plane never depends on it.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"godm/internal/metrics"
	"godm/internal/trace"
)

// maxTraceList bounds how many recent trace IDs /trace enumerates.
const maxTraceList = 64

// Listener timeouts: a stuck or malicious scraper must not pin a connection
// forever. The write timeout leaves room for a default 30 s pprof profile.
const (
	readTimeout  = 10 * time.Second
	writeTimeout = 90 * time.Second
)

// Health is the /healthz payload: who this node is and whether it is on its
// way out.
type Health struct {
	Node     int64
	Epoch    uint64
	Draining bool
}

// Options wires the observability surfaces. Every field may be nil; the
// corresponding endpoint then reports an empty document or 404.
type Options struct {
	// Tree backs /metrics (Prometheus) and /stats (human-readable).
	Tree *metrics.Tree
	// Tracer backs /trace.
	Tracer *trace.Tracer
	// Flight backs /debug/flight. Nil falls back to Tracer's attached
	// recorder, so callers that wire the tracer need not repeat themselves.
	Flight *trace.Flight
	// Cluster backs /cluster: the node's fold point of the digest plane (at
	// the tree root, the whole cluster).
	Cluster *metrics.ClusterStore
	// Health backs /healthz; called per request for a live reading.
	Health func() Health
}

func (o Options) flight() *trace.Flight {
	if o.Flight != nil {
		return o.Flight
	}
	return o.Tracer.Flight() // nil-safe: a nil tracer has a nil recorder
}

// Handler returns the observability mux over o.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o.Tree != nil {
			_ = o.Tree.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Tree != nil {
			_, _ = fmt.Fprint(w, o.Tree.String())
		}
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Cluster == nil {
			http.Error(w, "cluster digests disabled", http.StatusNotFound)
			return
		}
		if err := metrics.RenderClusterView(w, o.Cluster.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f := o.flight()
		if f == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		_, _ = fmt.Fprint(w, f.Dump())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Health == nil {
			http.Error(w, "health probe disabled", http.StatusNotFound)
			return
		}
		h := o.Health()
		state := "serving"
		if h.Draining {
			state = "draining"
		}
		_, _ = fmt.Fprintf(w, "ok\nnode %d\nepoch %d\nstate %s\n", h.Node, h.Epoch, state)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Tracer == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			tl := o.Tracer.Timeline(trace.TraceID(id))
			if tl == "" {
				http.Error(w, "trace not found (evicted or never recorded)", http.StatusNotFound)
				return
			}
			_, _ = fmt.Fprintf(w, "trace %d\n%s", id, tl)
			return
		}
		ids := o.Tracer.TraceIDs()
		if len(ids) > maxTraceList {
			ids = ids[len(ids)-maxTraceList:] // newest traces are most useful
		}
		_, _ = fmt.Fprintf(w, "%d retained traces (newest last); fetch one with /trace?id=N\n", len(ids))
		for _, id := range ids {
			_, _ = fmt.Fprintf(w, "%d\n", uint64(id))
		}
	})
	// The default pprof handlers register on http.DefaultServeMux; bind them
	// explicitly so this mux works standalone.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability listener on addr and returns the running
// server plus its bound address (useful with ":0"). Close the server to stop
// it; serve errors after Close are swallowed.
func Serve(addr string, o Options) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:      Handler(o),
		ReadTimeout:  readTimeout,
		WriteTimeout: writeTimeout,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
