package prefetch

import (
	"fmt"
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Detector {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDetectorRequiresAddressSpace(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for zero address space")
	}
}

func TestSequentialStride(t *testing.T) {
	d := mustNew(t, Config{AddressSpace: 1 << 20})
	for pg := 0; pg < 64; pg++ {
		d.Record(pg)
	}
	got := d.Predict(63)
	if len(got) == 0 {
		t.Fatal("sequential scan produced no trend")
	}
	for i, pg := range got {
		if want := 64 + i; pg != want {
			t.Fatalf("prediction[%d] = %d, want %d", i, pg, want)
		}
	}
}

func TestNegativeStride(t *testing.T) {
	d := mustNew(t, Config{AddressSpace: 1 << 20})
	for pg := 1000; pg > 900; pg -= 3 {
		d.Record(pg)
	}
	got := d.Predict(903)
	if len(got) == 0 {
		t.Fatal("reverse scan produced no trend")
	}
	for i, pg := range got {
		if want := 903 - 3*(i+1); pg != want {
			t.Fatalf("prediction[%d] = %d, want %d", i, pg, want)
		}
	}
}

// A strided scan with interleaved noise still yields the majority trend via
// the shrinking window: the most recent half of the history is pure stride.
func TestShrinkingWindowRecovers(t *testing.T) {
	d := mustNew(t, Config{HistorySize: 16, AddressSpace: 1 << 20})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 16; i++ { // noise fills the whole ring
		d.Record(rng.Intn(1 << 20))
	}
	base := 5000
	for i := 0; i < 9; i++ { // stride of 2 dominates the recent window
		d.Record(base + 2*i)
	}
	got := d.Predict(base + 16)
	if len(got) == 0 {
		t.Fatal("stride after noise produced no trend")
	}
	if got[0] != base+18 {
		t.Fatalf("first prediction %d, want %d", got[0], base+18)
	}
}

func TestZeroDeltaIsNoTrend(t *testing.T) {
	d := mustNew(t, Config{AddressSpace: 1024})
	for i := 0; i < 32; i++ {
		d.Record(42)
	}
	if got := d.Predict(42); got != nil {
		t.Fatalf("repeated same-page accesses predicted %v, want none", got)
	}
	if d.Stats().NoTrend == 0 {
		t.Fatal("NoTrend counter not advanced")
	}
}

func TestAdversarialNoMajority(t *testing.T) {
	d := mustNew(t, Config{AddressSpace: 1 << 20})
	// Cycle through four distinct deltas — no strict majority at any window.
	deltas := []int{3, 17, -5, 101}
	pg := 1 << 10
	for i := 0; i < 128; i++ {
		pg += deltas[i%len(deltas)]
		d.Record(pg)
	}
	if got := d.Predict(pg); got != nil {
		t.Fatalf("adversarial stride predicted %v, want none", got)
	}
}

func TestDepthAIMD(t *testing.T) {
	d := NewDepth(4, 64, 2)
	if d.Get() != 4 {
		t.Fatalf("init depth %d, want 4", d.Get())
	}
	d.Hit()
	d.Hit() // streak complete -> double
	if d.Get() != 8 {
		t.Fatalf("after hit streak depth %d, want 8", d.Get())
	}
	d.Waste()
	if d.Get() != 4 {
		t.Fatalf("after waste depth %d, want 4", d.Get())
	}
	for i := 0; i < 100; i++ {
		d.Hit()
	}
	if d.Get() != 64 {
		t.Fatalf("depth cap %d, want 64", d.Get())
	}
	for i := 0; i < 100; i++ {
		d.Waste()
	}
	if d.Get() != 1 {
		t.Fatalf("depth floor %d, want 1", d.Get())
	}
}

// Property: no prediction ever leaves [0, AddressSpace), for any random
// access stream, any depth state, any address-space size.
func TestPropertyPredictionsWithinBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		space := 1 + rng.Intn(1<<16)
		d := mustNew(t, Config{
			HistorySize:  1 + rng.Intn(64),
			MinWindow:    1 + rng.Intn(8),
			AddressSpace: space,
		})
		for i := 0; i < 2000; i++ {
			pg := rng.Intn(space)
			if rng.Intn(3) == 0 {
				// Bias towards strides so trends actually form.
				pg = (d.last + 1 + rng.Intn(3)) % space
			}
			d.Record(pg)
			for _, pred := range d.Predict(pg) {
				if pred < 0 || pred >= space {
					t.Fatalf("seed %d: prediction %d outside [0,%d)", seed, pred, space)
				}
			}
			// Random feedback exercises every depth state.
			switch rng.Intn(3) {
			case 0:
				d.Hit()
			case 1:
				d.Waste()
			}
		}
	}
}

// Property: a fixed trace seed yields a byte-identical prediction transcript
// across runs — the detector has no hidden nondeterminism (map iteration,
// clocks), matching the repo's DES determinism contract.
func TestPropertyDeterministicTranscript(t *testing.T) {
	transcript := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		d := mustNew(t, Config{AddressSpace: 1 << 14})
		out := ""
		for i := 0; i < 1000; i++ {
			pg := rng.Intn(1 << 14)
			if rng.Intn(2) == 0 {
				pg = (d.last + 2) % (1 << 14)
			}
			d.Record(pg)
			preds := d.Predict(pg)
			out += fmt.Sprintf("%d:%v;", pg, preds)
			if len(preds) > 0 && rng.Intn(2) == 0 {
				d.Hit()
			} else if rng.Intn(4) == 0 {
				d.Waste()
			}
		}
		out += fmt.Sprintf("stats=%+v depth=%d", d.Stats(), d.Depth())
		return out
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := transcript(seed), transcript(seed)
		if a != b {
			t.Fatalf("seed %d: transcript differs between runs", seed)
		}
	}
}

func BenchmarkPrefetchDetector(b *testing.B) {
	d, err := New(Config{AddressSpace: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pg := (i * 3) % (1 << 20)
		d.Record(pg)
		if preds := d.Predict(pg); len(preds) > 0 {
			d.Hit()
		}
	}
}
