// Package prefetch implements a Leap-style majority-trend stride detector
// (Maruf & Chowdhury, "Effectively Prefetching Remote Memory with Leap",
// ATC'20, via the PAPERS.md surveys). The detector watches the stream of
// page accesses, keeps the last H inter-access deltas in a ring, and on a
// fault votes for a majority trend: a Boyer–Moore pass over the most recent
// w deltas, with w shrinking exponentially (H, H/2, H/4, …) until a
// majority emerges or the window bottoms out. A detected trend Δ yields a
// prediction list page+Δ, page+2Δ, …, clamped to the address-space bound.
//
// Prefetch depth is adaptive (AIMD): a streak of prefetch hits doubles the
// depth up to a cap, a wasted prefetch (evicted before use) halves it. The
// detector is pure bookkeeping — no clocks, no randomness — so a fixed
// access trace always produces the identical prediction sequence, matching
// the repo's DES determinism contract.
package prefetch

import "fmt"

// Defaults for Config fields left zero.
const (
	DefaultHistory   = 32
	DefaultMinWindow = 4
	DefaultInitDepth = 4
	DefaultMaxDepth  = 64
	DefaultHitStreak = 8
)

// Config tunes a Detector.
type Config struct {
	// HistorySize is H, the number of recent access deltas retained.
	HistorySize int
	// MinWindow is the smallest majority-vote window tried before the
	// detector gives up on the current history.
	MinWindow int
	// InitDepth is the starting prefetch depth (pages per prediction).
	InitDepth int
	// MaxDepth caps the adaptive depth.
	MaxDepth int
	// HitStreak is how many consecutive prefetch hits double the depth.
	HitStreak int
	// AddressSpace bounds predictions to pages in [0, AddressSpace). It is
	// the one required field: a detector that can predict beyond the address
	// space would fetch garbage.
	AddressSpace int
}

func (c Config) withDefaults() Config {
	if c.HistorySize <= 0 {
		c.HistorySize = DefaultHistory
	}
	if c.MinWindow <= 0 {
		c.MinWindow = DefaultMinWindow
	}
	if c.InitDepth <= 0 {
		c.InitDepth = DefaultInitDepth
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.HitStreak <= 0 {
		c.HitStreak = DefaultHitStreak
	}
	return c
}

// Stats counts detector activity.
type Stats struct {
	Records     int64 // accesses observed
	Predictions int64 // Predict calls that found a trend
	NoTrend     int64 // Predict calls with no majority at any window size
	Issued      int64 // pages predicted (across all Predict calls)
	Hits        int64 // prefetched pages later accessed
	Wastes      int64 // prefetched pages evicted unused
}

// Detector is one process's stride detector. It is not safe for concurrent
// use; the swap engine drives it from the simulation's event loop.
type Detector struct {
	cfg    Config
	deltas []int // ring buffer of recent deltas
	head   int   // next write position
	n      int   // filled entries
	last   int   // previous page accessed
	seen   bool  // last is valid
	depth  *Depth
	stats  Stats
}

// New builds a detector. AddressSpace must be positive.
func New(cfg Config) (*Detector, error) {
	if cfg.AddressSpace <= 0 {
		return nil, fmt.Errorf("prefetch: address space %d must be positive", cfg.AddressSpace)
	}
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:    cfg,
		deltas: make([]int, cfg.HistorySize),
		depth:  NewDepth(cfg.InitDepth, cfg.MaxDepth, cfg.HitStreak),
	}, nil
}

// Record observes one page access, pushing its delta from the previous
// access into the history ring. O(1).
func (d *Detector) Record(page int) {
	d.stats.Records++
	if d.seen {
		d.deltas[d.head] = page - d.last
		d.head = (d.head + 1) % len(d.deltas)
		if d.n < len(d.deltas) {
			d.n++
		}
	}
	d.last = page
	d.seen = true
}

// Predict votes for a majority trend over the recent history and, if one
// emerges, returns up to Depth() predicted pages page+Δ, page+2Δ, …, all
// within [0, AddressSpace). A zero delta majority (repeated same-page
// accesses) is no trend. Predictions are not deduplicated against resident
// state — that is the caller's business.
func (d *Detector) Predict(page int) []int {
	delta, ok := d.majority()
	if !ok || delta == 0 {
		d.stats.NoTrend++
		return nil
	}
	d.stats.Predictions++
	depth := d.depth.Get()
	out := make([]int, 0, depth)
	next := page
	for i := 0; i < depth; i++ {
		next += delta
		if next < 0 || next >= d.cfg.AddressSpace {
			break
		}
		out = append(out, next)
	}
	d.stats.Issued += int64(len(out))
	return out
}

// majority runs the exponentially shrinking Boyer–Moore vote: try the last
// w deltas with w = min(n, H), then w/2, w/4, … down to MinWindow. A
// candidate wins a window only if it holds a strict majority there.
func (d *Detector) majority() (int, bool) {
	for w := d.n; w >= d.cfg.MinWindow; w /= 2 {
		cand, count := 0, 0
		for i := 0; i < w; i++ {
			v := d.at(i)
			if count == 0 {
				cand, count = v, 1
			} else if v == cand {
				count++
			} else {
				count--
			}
		}
		if count == 0 {
			continue
		}
		// Verify the candidate truly holds a strict majority of the window.
		total := 0
		for i := 0; i < w; i++ {
			if d.at(i) == cand {
				total++
			}
		}
		if 2*total > w {
			return cand, true
		}
	}
	return 0, false
}

// at returns the i-th most recent delta (0 = newest).
func (d *Detector) at(i int) int {
	idx := d.head - 1 - i
	for idx < 0 {
		idx += len(d.deltas)
	}
	return d.deltas[idx]
}

// Hit records that a prefetched page was accessed before eviction.
func (d *Detector) Hit() {
	d.stats.Hits++
	d.depth.Hit()
}

// Waste records a prefetched page evicted unused.
func (d *Detector) Waste() {
	d.stats.Wastes++
	d.depth.Waste()
}

// Depth is the current adaptive prefetch depth.
func (d *Detector) Depth() int { return d.depth.Get() }

// Stats returns a copy of the counters.
func (d *Detector) Stats() Stats { return d.stats }

// Depth is an AIMD-style prefetch-depth controller, shared by the swap
// engine's stride detector and dmcache's sibling read-ahead: a streak of
// hits doubles the depth (up to max), one waste halves it (down to 1).
type Depth struct {
	depth  int
	max    int
	streak int
	need   int
}

// NewDepth builds a controller starting at init, capped at max, doubling
// after streak consecutive hits. Non-positive arguments take the package
// defaults.
func NewDepth(init, max, streak int) *Depth {
	if init <= 0 {
		init = DefaultInitDepth
	}
	if max <= 0 {
		max = DefaultMaxDepth
	}
	if streak <= 0 {
		streak = DefaultHitStreak
	}
	if init > max {
		init = max
	}
	return &Depth{depth: init, max: max, need: streak}
}

// Get returns the current depth.
func (d *Depth) Get() int { return d.depth }

// Hit advances the streak, doubling the depth when it completes.
func (d *Depth) Hit() {
	d.streak++
	if d.streak >= d.need {
		d.streak = 0
		d.depth *= 2
		if d.depth > d.max {
			d.depth = d.max
		}
	}
}

// Waste halves the depth and resets the streak.
func (d *Depth) Waste() {
	d.streak = 0
	d.depth /= 2
	if d.depth < 1 {
		d.depth = 1
	}
}
