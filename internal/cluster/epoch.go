// Epoch-versioned disaggregated memory map (§IV.C-D at cluster scale).
//
// Every membership or leadership change in a Directory bumps its epoch and
// appends one Delta to a bounded in-memory log. Peers and clients hold a
// compact snapshot of the map and catch up by pulling the deltas they have
// not seen — O(churn) bytes per sync, not O(cluster size) — falling back to
// a full snapshot only when they are so far behind that the log has been
// compacted past them. Epochs are scoped to their origin directory: an epoch
// from node A's directory is meaningless against node B's log, so every sync
// exchange carries the origin and a consumer that switches origins starts
// from a snapshot.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Epoch versions one directory's memory map. Epoch 0 is the empty map; each
// recorded change increments it by exactly one.
type Epoch uint64

// ErrMapStale is returned by ClientMap.ApplyDeltas when the deltas do not
// extend the cached epoch contiguously (or come from a different origin); the
// caller must resync from a snapshot.
var ErrMapStale = errors.New("cluster: map cache stale, snapshot required")

// GroupLeader names one group's current leader.
type GroupLeader struct {
	Group  int
	Leader NodeID
}

// Change is one node's state transition inside a Delta. Left marks a node
// that departed the cluster for good (decommission); otherwise State is the
// node's state after the change.
type Change struct {
	State NodeState
	Left  bool
}

// Delta is the epoch-versioned difference between two consecutive map
// versions: the node states that changed, plus — when leadership or grouping
// moved — the full (small, O(groups)) leader list and the derived root.
type Delta struct {
	Epoch   Epoch
	Groups  int
	Changes []Change
	// Leaders is the complete leader set after this delta when
	// LeadersChanged, nil otherwise.
	Leaders        []GroupLeader
	LeadersChanged bool
	Root           NodeID
	RootOK         bool
}

// MapSnapshot is a full copy of one directory's map at a single epoch.
type MapSnapshot struct {
	Epoch   Epoch
	Groups  int
	Nodes   []NodeState
	Leaders []GroupLeader
	Root    NodeID
	RootOK  bool
}

// SyncRequest asks a directory for everything after Epoch, as seen from
// Origin's log. Origin is the node whose directory the requester last synced
// from; a responder with a different identity answers with a snapshot.
type SyncRequest struct {
	Origin NodeID
	Epoch  Epoch
}

// SyncResponse carries either a contiguous run of deltas (the cheap path) or
// a full snapshot (the resync path). Exactly one of Deltas/Snapshot is set;
// an empty response (neither) means the requester is already current.
type SyncResponse struct {
	Origin   NodeID
	Deltas   []Delta
	Snapshot *MapSnapshot
}

// maxDeltaLog bounds the per-directory delta log. A consumer more than this
// many epochs behind resyncs from a snapshot; everyone else pays O(churn).
const maxDeltaLog = 512

// maxSyncDeltas bounds one Sync response's delta run. A requester further
// behind than this gets a snapshot instead: shipping a long history costs
// more bytes than the map itself and makes the receiver replay long-dead
// leadership changes (each adoption re-recorded as local churn).
const maxSyncDeltas = 32

// Epoch reports the directory's current map version.
func (d *Directory) Epoch() Epoch {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// SnapshotMap returns the full map at the current epoch.
func (d *Directory) SnapshotMap() MapSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *Directory) snapshotLocked() MapSnapshot {
	snap := MapSnapshot{
		Epoch:   d.epoch,
		Groups:  d.groups,
		Leaders: d.leaderListLocked(),
	}
	snap.Root, snap.RootOK = d.rootLocked()
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		snap.Nodes = append(snap.Nodes, NodeState{ID: m.id, FreeBytes: m.freeBytes, Alive: m.alive, Group: m.group, Gver: m.gver})
	}
	return snap
}

func (d *Directory) leaderListLocked() []GroupLeader {
	groups := make([]int, 0, len(d.leaders))
	for g := range d.leaders {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	out := make([]GroupLeader, 0, len(groups))
	for _, g := range groups {
		out = append(out, GroupLeader{Group: g, Leader: d.leaders[g]})
	}
	return out
}

// DeltasSince returns the deltas after epoch `after`, oldest first. ok is
// false when `after` predates the retained log (or exceeds the current
// epoch), in which case the caller must take a snapshot.
func (d *Directory) DeltasSince(after Epoch) ([]Delta, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if after > d.epoch {
		return nil, false
	}
	if after == d.epoch {
		return nil, true
	}
	// The log holds epochs (d.epoch-len(log), d.epoch].
	oldest := d.epoch - Epoch(len(d.deltaLog))
	if after < oldest {
		if d.met.snapshotsServed != nil {
			d.met.snapshotsServed.Inc()
		}
		return nil, false
	}
	start := int(after - oldest)
	out := make([]Delta, len(d.deltaLog)-start)
	copy(out, d.deltaLog[start:])
	return out, true
}

// Sync answers a peer or client catch-up request against this directory,
// identified as self on the fabric: deltas when the requester last synced
// from this same directory and the log still covers it, a snapshot
// otherwise, and an empty response when it is already current.
func (d *Directory) Sync(self NodeID, req SyncRequest) SyncResponse {
	if req.Origin == self {
		if deltas, ok := d.DeltasSince(req.Epoch); ok && len(deltas) <= maxSyncDeltas {
			if len(deltas) > 0 && d.met.deltasServed != nil {
				d.met.deltasServed.Add(int64(len(deltas)))
			}
			return SyncResponse{Origin: self, Deltas: deltas}
		}
	}
	snap := d.SnapshotMap()
	return SyncResponse{Origin: self, Snapshot: &snap}
}

// recordLocked turns the events of one mutating call into a Delta, bumps the
// epoch, and appends it to the bounded log. No-op for an empty event list.
func (d *Directory) recordLocked(events []Event) {
	if len(events) == 0 {
		return
	}
	delta := Delta{Groups: d.groups}
	seen := map[NodeID]bool{}
	for _, e := range events {
		switch e.Kind {
		case EventNodeUp, EventNodeDown, EventNodeMoved, EventFreeChanged:
			if seen[e.Node] {
				continue
			}
			seen[e.Node] = true
			if m, ok := d.members[e.Node]; ok {
				delta.Changes = append(delta.Changes, Change{State: NodeState{
					ID: m.id, FreeBytes: m.freeBytes, Alive: m.alive, Group: m.group, Gver: m.gver,
				}})
			}
		case EventNodeLeft:
			if seen[e.Node] {
				continue
			}
			seen[e.Node] = true
			delta.Changes = append(delta.Changes, Change{State: NodeState{ID: e.Node}, Left: true})
		case EventLeaderElected, EventRegrouped:
			delta.LeadersChanged = true
		}
	}
	if delta.LeadersChanged {
		delta.Leaders = d.leaderListLocked()
	}
	delta.Root, delta.RootOK = d.rootLocked()
	d.epoch++
	delta.Epoch = d.epoch
	d.deltaLog = append(d.deltaLog, delta)
	if len(d.deltaLog) > maxDeltaLog {
		d.deltaLog = d.deltaLog[len(d.deltaLog)-maxDeltaLog:]
		if d.met.logCompactions != nil {
			d.met.logCompactions.Inc()
		}
	}
	if d.met.epoch != nil {
		d.met.epoch.Set(int64(d.epoch))
	}
}

// ClientMap is the compact, epoch-versioned map cache a client (or any
// non-member consumer) holds: who is in the cluster, which group each node
// belongs to, who leads each group, and who the root is. It advances by
// applying deltas pushed or pulled from one origin directory, and resyncs
// from a snapshot when it falls behind the origin's log or switches origins.
// Safe for concurrent use.
type ClientMap struct {
	mu      sync.Mutex
	origin  NodeID
	hasOrig bool
	epoch   Epoch
	groups  int
	nodes   map[NodeID]NodeState
	leaders map[int]NodeID
	root    NodeID
	rootOK  bool
}

// NewClientMap returns an empty cache at epoch 0 with no origin.
func NewClientMap() *ClientMap {
	return &ClientMap{nodes: map[NodeID]NodeState{}, leaders: map[int]NodeID{}}
}

// Epoch reports the cached map version and its origin.
func (c *ClientMap) Epoch() (NodeID, Epoch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.origin, c.epoch
}

// Request builds the sync request that would bring this cache current.
func (c *ClientMap) Request() SyncRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SyncRequest{Origin: c.origin, Epoch: c.epoch}
}

// ApplySnapshot replaces the cache wholesale.
func (c *ClientMap) ApplySnapshot(origin NodeID, snap MapSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.origin, c.hasOrig = origin, true
	c.epoch = snap.Epoch
	c.groups = snap.Groups
	c.nodes = make(map[NodeID]NodeState, len(snap.Nodes))
	for _, s := range snap.Nodes {
		c.nodes[s.ID] = s
	}
	c.leaders = make(map[int]NodeID, len(snap.Leaders))
	for _, gl := range snap.Leaders {
		c.leaders[gl.Group] = gl.Leader
	}
	c.root, c.rootOK = snap.Root, snap.RootOK
}

// ApplyDeltas advances the cache by a contiguous run of deltas from origin.
// It returns ErrMapStale if the run does not start at the cached epoch+1 or
// comes from a different origin — the caller should resync via snapshot.
func (c *ClientMap) ApplyDeltas(origin NodeID, deltas []Delta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.hasOrig || origin != c.origin {
		return ErrMapStale
	}
	for _, delta := range deltas {
		if delta.Epoch != c.epoch+1 {
			return ErrMapStale
		}
		c.applyLocked(delta)
	}
	return nil
}

// Apply folds a full sync response into the cache: deltas when contiguous,
// the snapshot otherwise. An empty response is a no-op (already current).
func (c *ClientMap) Apply(resp SyncResponse) error {
	if resp.Snapshot != nil {
		c.ApplySnapshot(resp.Origin, *resp.Snapshot)
		return nil
	}
	if len(resp.Deltas) == 0 {
		return nil
	}
	return c.ApplyDeltas(resp.Origin, resp.Deltas)
}

func (c *ClientMap) applyLocked(delta Delta) {
	c.epoch = delta.Epoch
	c.groups = delta.Groups
	for _, ch := range delta.Changes {
		if ch.Left {
			delete(c.nodes, ch.State.ID)
			continue
		}
		c.nodes[ch.State.ID] = ch.State
	}
	if delta.LeadersChanged {
		c.leaders = make(map[int]NodeID, len(delta.Leaders))
		for _, gl := range delta.Leaders {
			c.leaders[gl.Group] = gl.Leader
		}
	}
	c.root, c.rootOK = delta.Root, delta.RootOK
}

// Leader reports the cached leader of group g.
func (c *ClientMap) Leader(g int) (NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.leaders[g]
	return id, ok
}

// Root reports the cached root coordinator.
func (c *ClientMap) Root() (NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.root, c.rootOK
}

// Alive reports whether the cache believes node id is up.
func (c *ClientMap) Alive(id NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.nodes[id]
	return ok && s.Alive
}

// Node returns the cached state of node id.
func (c *ClientMap) Node(id NodeID) (NodeState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.nodes[id]
	return s, ok
}

// Synced reports whether the cache has ever been filled from an origin.
func (c *ClientMap) Synced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hasOrig
}

// Groups reports the cached group count.
func (c *ClientMap) Groups() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups
}

// Len reports how many nodes the cache tracks (alive or not).
func (c *ClientMap) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Snapshot renders the cache as a MapSnapshot (nodes sorted by ID), e.g. for
// printing or for seeding another cache.
func (c *ClientMap) Snapshot() MapSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := MapSnapshot{Epoch: c.epoch, Groups: c.groups, Root: c.root, RootOK: c.rootOK}
	ids := make([]NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		snap.Nodes = append(snap.Nodes, c.nodes[id])
	}
	groups := make([]int, 0, len(c.leaders))
	for g := range c.leaders {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		snap.Leaders = append(snap.Leaders, GroupLeader{Group: g, Leader: c.leaders[g]})
	}
	return snap
}

// String renders a one-line summary for logs.
func (c *ClientMap) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := 0
	for _, s := range c.nodes {
		if s.Alive {
			alive++
		}
	}
	return fmt.Sprintf("map{origin=%d epoch=%d nodes=%d alive=%d groups=%d root=%d}",
		c.origin, c.epoch, len(c.nodes), alive, c.groups, c.root)
}
