package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"godm/internal/des"
	"godm/internal/metrics"
)

// The cluster-scale control-plane simulation: N per-node directories
// exchanging heartbeats along the tree (members -> leader, leaders -> root +
// members, root -> leaders), with the epoch-versioned map deltas riding the
// exchanges, driven from a discrete-event simulation process so every run of
// a seed replays tick-for-tick. Churn — crash, restart, decommission,
// regroup — is injected at scripted rounds with seed-chosen victims, and a
// set of clients holds ClientMap caches plus a modelled block map with
// decommission tombstones, so the ≤2-redirect read contract is checked
// end to end at the protocol level.
//
// This is a control-plane model, not a data-plane test: "reading a block"
// follows ownership and redirect tombstones, it does not move bytes. The
// data plane's redirect handling is covered by internal/core and
// internal/chaos over real fabrics.

// scaleCfg shapes one simulation run.
type scaleCfg struct {
	nodes     int
	groupSize int
	clients   int
	blocks    int
	rounds    int
	hbTimeout int64
	// drainRounds is how long a decommissioned node keeps serving redirect
	// tombstones before its process exits.
	drainRounds int
	// opRounds is the last round in which nodes issue modelled data-plane ops
	// into their metrics registries; the quiet tail lets the digest plane
	// drain so the root's aggregate can be checked for exact equality.
	opRounds int
}

// simNode is one simulated process: a directory plus per-peer sync cursors
// and the observability digest plane (registry, folded store, digest seq).
type simNode struct {
	id       NodeID
	dir      *Directory
	up       bool
	departed bool
	lastSeen map[NodeID]Epoch

	reg   *metrics.Registry
	store *metrics.ClusterStore
	seq   uint64
}

// simClient holds a ClientMap plus the modelled data-plane view: the node
// each block was last read from.
type simClient struct {
	id     int
	attach NodeID
	cm     *ClientMap
	view   map[int]NodeID
}

// scaleSim is the whole simulated cluster.
type scaleSim struct {
	cfg     scaleCfg
	rng     *rand.Rand
	nodes   map[NodeID]*simNode
	order   []NodeID
	clients []*simClient

	// Data-plane model: block -> owning node, plus per-departed-node
	// redirect tombstones block -> successor with a drain TTL.
	owner      map[int]NodeID
	tombstones map[NodeID]map[int]NodeID
	drainLeft  map[NodeID]int
	// repairAt delays crash repairs by the failure-detector timeout, like
	// RepairLost waiting on the detector.
	repairAt map[NodeID]int

	log strings.Builder

	// Measurements for the run report (and BENCH_cluster.json).
	maxRedirects   int
	unavailable    int
	reads          int
	deltaSyncs     int
	snapshotSyncs  int
	deltaBytes     int
	snapshotEquivs int // bytes a snapshot-per-sync scheme would have moved
	rootDownRound  int
	rootElectedIn  int
	maxClientLag   int
	digestBeats    int // heartbeats that carried a digest set
	digestBytes    int // encoded digest-set bytes across all beats
	maxDigestSet   int // largest piggyback set on any single beat
}

func free(id NodeID) int64 { return 1<<20 + int64(id)*16 }

func newScaleSim(t *testing.T, seed int64, cfg scaleCfg) *scaleSim {
	t.Helper()
	s := &scaleSim{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(seed)),
		nodes:         map[NodeID]*simNode{},
		owner:         map[int]NodeID{},
		tombstones:    map[NodeID]map[int]NodeID{},
		drainLeft:     map[NodeID]int{},
		repairAt:      map[NodeID]int{},
		rootElectedIn: -1,
	}
	dcfg := Config{GroupSize: cfg.groupSize, HeartbeatTimeout: cfg.hbTimeout}
	for i := 1; i <= cfg.nodes; i++ {
		id := NodeID(i)
		dir := newDir(t, dcfg)
		// Static peer list, as dmnode -peers seeds it: every directory
		// joins the full roster in ID order, so initial groups agree.
		for j := 1; j <= cfg.nodes; j++ {
			dir.Join(NodeID(j), free(NodeID(j)))
		}
		s.nodes[id] = &simNode{
			id: id, dir: dir, up: true, lastSeen: map[NodeID]Epoch{},
			reg:   metrics.NewRegistry(fmt.Sprintf("core/node-%d", i)),
			store: metrics.NewClusterStore(int64(i)),
		}
		s.order = append(s.order, id)
	}
	for c := 0; c < cfg.clients; c++ {
		attach := NodeID((c*17)%cfg.nodes + 1)
		cl := &simClient{id: c, attach: attach, cm: NewClientMap(), view: map[int]NodeID{}}
		cl.cm.ApplySnapshot(attach, s.nodes[attach].dir.SnapshotMap())
		s.clients = append(s.clients, cl)
	}
	for b := 0; b < cfg.blocks; b++ {
		s.owner[b] = NodeID(b%cfg.nodes + 1)
		for _, cl := range s.clients {
			cl.view[b] = s.owner[b]
		}
	}
	return s
}

func (s *scaleSim) logf(format string, args ...any) {
	fmt.Fprintf(&s.log, format+"\n", args...)
}

func (s *scaleSim) aliveIDs() []NodeID {
	var out []NodeID
	for _, id := range s.order {
		if s.nodes[id].up {
			out = append(out, id)
		}
	}
	return out
}

// heartbeatRound runs one tree heartbeat interval: each up node exchanges
// with its tree targets (the receiver processes the sender's beat, the
// sender pulls the receiver's map changes), then ticks its watch-scoped
// failure detector.
func (s *scaleSim) heartbeatRound(round int, now time.Duration) {
	for _, id := range s.order {
		n := s.nodes[id]
		if !n.up {
			continue
		}
		// Modelled data-plane work lands in the node's registry until the
		// quiesce point; the digest plane keeps beating regardless.
		if round <= s.cfg.opRounds {
			n.reg.Counter("remote_allocs").Add(int64(id)%3 + 1)
			n.reg.Counter("op_get_good").Inc()
			n.reg.Histogram("op_get_latency").Observe(time.Duration(id) * time.Microsecond)
		}
		self := s.refreshDigest(n)
		n.store.Tick()
		watched := n.dir.WatchSet(id)
		for _, target := range n.dir.TreeTargets(id) {
			peer := s.nodes[target]
			if peer == nil || !peer.up {
				continue // unreachable: the watcher's detector goes stale
			}
			// The peer hears our beat (receiver-side join, as core's
			// heartbeat handler does) with the digest set piggybacked...
			peer.dir.Join(id, free(id))
			set := s.digestsFor(n, target, self)
			s.digestBeats++
			s.digestBytes += len(metrics.AppendDigestSet(nil, set))
			if len(set) > s.maxDigestSet {
				s.maxDigestSet = len(set)
			}
			for _, nd := range set {
				if nd.Node != int64(target) {
					peer.store.Update(nd)
				}
			}
			// ...and its response vouches for the peer itself plus carries
			// the map changes we have not seen.
			n.dir.Join(target, free(target))
			resp := peer.dir.Sync(target, SyncRequest{Origin: target, Epoch: n.lastSeen[target]})
			s.countSync(resp)
			for _, e := range n.dir.ApplySync(id, resp, watched) {
				if e.Kind == EventNodeLeft {
					n.store.Drop(int64(e.Node))
				}
			}
			switch {
			case resp.Snapshot != nil:
				n.lastSeen[target] = resp.Snapshot.Epoch
			case len(resp.Deltas) > 0:
				n.lastSeen[target] = resp.Deltas[len(resp.Deltas)-1].Epoch
			}
		}
		_ = n.dir.Heartbeat(id, free(id))
		for _, e := range n.dir.TickWatched(watched) {
			if e.Kind == EventNodeLeft {
				n.store.Drop(int64(e.Node))
			}
			s.logf("t=%s r%d n%d: %s node=%d group=%d", now, round, id, e.Kind, e.Node, e.Group)
		}
	}
}

// refreshDigest re-snapshots a node's registry into its own store entry, as
// core.Node does at the top of every TreeHeartbeat.
func (s *scaleSim) refreshDigest(n *simNode) metrics.NodeDigest {
	n.seq++
	nd := metrics.NodeDigest{
		Node: int64(n.id),
		Seq:  n.seq,
		D:    metrics.DigestRegistries(map[string]*metrics.Registry{"core": n.reg}),
	}
	n.store.Update(nd)
	return nd
}

// digestsFor mirrors core.Node's piggyback rule: every beat carries the
// sender's own digest; a group leader beating the root additionally relays
// the stored digests of its members, so the root covers the cluster after
// two rounds while every set stays O(group size).
func (s *scaleSim) digestsFor(n *simNode, target NodeID, self metrics.NodeDigest) []metrics.NodeDigest {
	out := []metrics.NodeDigest{self}
	g, err := n.dir.GroupOf(n.id)
	if err != nil {
		return out
	}
	if leader, ok := n.dir.Leader(g); !ok || leader != n.id {
		return out
	}
	root, ok := n.dir.RootLeader()
	if !ok || target != root || root == n.id {
		return out
	}
	for _, nd := range n.store.Snapshot() {
		if nd.Node == self.Node {
			continue
		}
		out = append(out, nd)
	}
	return out
}

func (s *scaleSim) countSync(resp SyncResponse) {
	if resp.Snapshot != nil {
		s.snapshotSyncs++
		s.deltaBytes += len(AppendSnapshot(nil, *resp.Snapshot))
	} else if len(resp.Deltas) > 0 {
		s.deltaSyncs++
		for _, d := range resp.Deltas {
			s.deltaBytes += len(AppendDelta(nil, d))
		}
	}
	s.snapshotEquivs += 25 + 29*s.cfg.nodes // what full-map-per-sync would cost
}

// clientRound syncs every client's map from its attach node (re-attaching if
// it is gone) and performs the round's modelled reads.
func (s *scaleSim) clientRound(t *testing.T, round int) {
	t.Helper()
	for _, cl := range s.clients {
		if n := s.nodes[cl.attach]; n == nil || !n.up {
			// Re-attach to the lowest-ID up node: an origin switch, which
			// must resync the cache via snapshot.
			alive := s.aliveIDs()
			if len(alive) == 0 {
				t.Fatal("no nodes alive")
			}
			cl.attach = alive[0]
			s.logf("r%d c%d: reattach to n%d", round, cl.id, cl.attach)
		}
		dir := s.nodes[cl.attach].dir
		// Lag is only meaningful for a warm same-origin cache: a cold client
		// or one that just switched origin is at epoch 0 by definition and
		// recovers via a single snapshot, not by chasing deltas.
		if ce := s.clientEpoch(cl); ce > 0 {
			if lag := int(dir.Epoch()) - ce; lag > s.maxClientLag {
				s.maxClientLag = lag
			}
		}
		resp := dir.Sync(cl.attach, cl.cm.Request())
		s.countSync(resp)
		if err := cl.cm.Apply(resp); err != nil {
			// Stale (origin switch or compacted log): snapshot resync.
			cl.cm.ApplySnapshot(cl.attach, dir.SnapshotMap())
			s.logf("r%d c%d: snapshot resync from n%d", round, cl.id, cl.attach)
		}
		for _, b := range []int{(7*cl.id + round) % s.cfg.blocks, (13*cl.id + 3*round) % s.cfg.blocks} {
			s.read(t, round, cl, b)
		}
	}
}

func (s *scaleSim) clientEpoch(cl *simClient) int {
	origin, epoch := cl.cm.Epoch()
	if origin != cl.attach {
		return 0 // origin switch: the whole map is stale
	}
	return int(epoch)
}

// read models one data-plane block read: start at the client's last-known
// host, follow decommission redirect tombstones, and fall back to a map
// resync when the trail goes cold. The scale invariant: no read ever
// follows more than two redirect hops.
func (s *scaleSim) read(t *testing.T, round int, cl *simClient, b int) {
	t.Helper()
	s.reads++
	hops := 0
	cur := cl.view[b]
	for {
		n := s.nodes[cur]
		if n != nil && n.up && s.owner[b] == cur {
			break // landed
		}
		if ts, draining := s.tombstones[cur]; draining {
			if next, ok := ts[b]; ok {
				hops++
				if hops > 2 {
					t.Fatalf("r%d c%d block %d: redirected %d times (chain via %d)", round, cl.id, b, hops, cur)
				}
				s.logf("r%d c%d b%d: redirect n%d -> n%d (hop %d)", round, cl.id, b, cur, next, hops)
				cur = next
				continue
			}
		}
		// Unreachable or no trail: resync the map and go to the true owner.
		own := s.owner[b]
		if o := s.nodes[own]; o == nil || !o.up {
			s.unavailable++ // crashed owner, repair still pending
			return
		}
		cur = own
	}
	if hops > s.maxRedirects {
		s.maxRedirects = hops
	}
	cl.view[b] = cur
}

// trueRoot computes the root the converged cluster should agree on: every
// group's best member by the election order, then the best of those.
func (s *scaleSim) trueRoot() NodeID {
	groups := map[int]NodeID{}
	for _, id := range s.aliveIDs() {
		g, _ := s.nodes[id].dir.GroupOf(id)
		if cur, ok := groups[g]; !ok || free(id) > free(cur) || (free(id) == free(cur) && id < cur) {
			groups[g] = id
		}
	}
	var root NodeID
	first := true
	for _, id := range groups {
		if first || free(id) > free(root) || (free(id) == free(root) && id < root) {
			root, first = id, false
		}
	}
	return root
}

// converged reports whether every up node agrees on root and alive set.
func (s *scaleSim) converged() (NodeID, bool) {
	alive := s.aliveIDs()
	var root NodeID
	var rootSet bool
	for _, id := range alive {
		r, ok := s.nodes[id].dir.RootLeader()
		if !ok {
			return 0, false
		}
		if !rootSet {
			root, rootSet = r, true
		} else if r != root {
			return 0, false
		}
	}
	// Every view must also agree on who is up.
	want := fmt.Sprint(alive)
	for _, id := range alive {
		var view []NodeID
		for _, st := range s.nodes[id].dir.Snapshot() {
			if st.Alive {
				view = append(view, st.ID)
			}
		}
		if fmt.Sprint(view) != want {
			return 0, false
		}
	}
	return root, true
}

// crash kills a node's process without warning.
func (s *scaleSim) crash(round int, id NodeID) {
	s.nodes[id].up = false
	s.repairAt[id] = round + int(s.cfg.hbTimeout) + 1
	s.logf("r%d: crash n%d", round, id)
}

// restart brings a crashed node back with its (stale) directory state.
func (s *scaleSim) restart(round int, id NodeID) {
	n := s.nodes[id]
	if n.departed {
		return
	}
	n.up = true
	s.logf("r%d: restart n%d", round, id)
}

// decommission drains a node gracefully: blocks migrate to a successor with
// redirect tombstones left behind, the departure is announced to the node's
// leader (or the root), and the process exits after drainRounds.
func (s *scaleSim) decommission(t *testing.T, round int, id NodeID) {
	t.Helper()
	n := s.nodes[id]
	succ := s.successor(id)
	ts := map[int]NodeID{}
	for b, own := range s.owner {
		if own == id {
			s.owner[b] = succ
			ts[b] = succ
		}
	}
	s.tombstones[id] = ts
	s.drainLeft[id] = s.cfg.drainRounds
	// Announce to the first up tree target (leader/root), falling back to
	// any up node.
	announced := false
	for _, target := range n.dir.TreeTargets(id) {
		if p := s.nodes[target]; p != nil && p.up {
			p.dir.Leave(id)
			p.store.Drop(int64(id)) // as core's leave handler drops the digest
			announced = true
			break
		}
	}
	if !announced {
		for _, other := range s.aliveIDs() {
			if other != id {
				s.nodes[other].dir.Leave(id)
				s.nodes[other].store.Drop(int64(id))
				break
			}
		}
	}
	n.up = false
	n.departed = true
	s.logf("r%d: decommission n%d -> %d blocks to n%d", round, id, len(ts), succ)
}

// successor picks where a decommissioned node's blocks land: the lowest up
// node that is neither the departing node nor the current root (so the
// second scripted decommission can take the successor and exercise a
// two-hop redirect chain without beheading the tree).
func (s *scaleSim) successor(id NodeID) NodeID {
	root := s.trueRoot()
	for _, other := range s.aliveIDs() {
		if other != id && other != root {
			return other
		}
	}
	return s.aliveIDs()[0]
}

// step advances the per-round bookkeeping: drain TTLs and crash repairs.
func (s *scaleSim) step(round int) {
	for id, left := range s.drainLeft {
		if left <= 0 {
			delete(s.tombstones, id)
			delete(s.drainLeft, id)
			s.logf("r%d: n%d drain complete, process exits", round, id)
			continue
		}
		s.drainLeft[id] = left - 1
	}
	for id, at := range s.repairAt {
		if round >= at {
			// RepairLost: surviving replicas re-home the dead node's blocks.
			target := s.successor(id)
			moved := 0
			for b, own := range s.owner {
				if own == id {
					s.owner[b] = target
					moved++
				}
			}
			delete(s.repairAt, id)
			if moved > 0 {
				s.logf("r%d: repaired %d blocks of crashed n%d -> n%d", round, moved, id, target)
			}
		}
	}
}

// runScale executes the scripted churn scenario and returns the sim for
// inspection. All scheduling runs inside one DES process, so simulated time
// (and therefore the log) is identical run to run.
func runScale(t *testing.T, seed int64, cfg scaleCfg) *scaleSim {
	t.Helper()
	s := newScaleSim(t, seed, cfg)
	env := des.NewEnv()

	victims := s.pickVictims(t)
	var oldRoot NodeID

	env.Go("scale", func(p *des.Proc) {
		for round := 1; round <= cfg.rounds; round++ {
			switch round {
			case 6:
				s.crash(round, victims.member)
			case 10:
				oldRoot = s.trueRoot()
				s.rootDownRound = round
				s.crash(round, oldRoot)
			case 16:
				s.restart(round, victims.member)
			case 20:
				s.decommission(t, round, victims.decom1)
			case 23:
				// Take the first decommission's successor too, while its
				// predecessor is still draining: a client with a stale map
				// now follows a two-hop tombstone chain.
				s.decommission(t, round, victims.decom2)
			case 28:
				rootID := s.trueRoot()
				events := s.nodes[rootID].dir.Regroup()
				s.logf("r%d: root n%d regroups (%d events)", round, rootID, len(events))
			}
			s.heartbeatRound(round, p.Now())
			s.clientRound(t, round)
			s.step(round)
			if s.rootDownRound > 0 && s.rootElectedIn < 0 {
				if root, ok := s.converged(); ok && root != oldRoot {
					s.rootElectedIn = round - s.rootDownRound
					s.logf("r%d: new root n%d agreed, %d rounds after crash", round, root, s.rootElectedIn)
				}
			}
			p.Sleep(time.Second)
		}
		// Fold the digest-plane outcome into the replayable log so the
		// determinism test pins the observability figures byte for byte.
		root := s.trueRoot()
		alive, sum := s.aliveRootDigests(root)
		agg, err := metrics.Aggregate(alive)
		if err != nil {
			t.Errorf("aggregate root digests: %v", err)
			return
		}
		s.logf("digest plane: root=n%d contributors=%d alive=%d aggAllocs=%d memberSum=%d beats=%d bytes=%d maxSet=%d",
			root, len(s.nodes[root].store.Snapshot()), len(alive),
			agg.Counters["core/remote_allocs"], sum, s.digestBeats, s.digestBytes, s.maxDigestSet)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

type scaleVictims struct {
	member NodeID // crash + restart target
	decom1 NodeID // first decommission
	decom2 NodeID // second decommission = decom1's block successor
}

// pickVictims chooses churn targets from the seed: a plain member for the
// crash/restart cycle and a decommission victim whose successor is known in
// advance, so the two-hop redirect chain is guaranteed by the script.
func (s *scaleSim) pickVictims(t *testing.T) scaleVictims {
	t.Helper()
	root := s.trueRoot()
	isLeader := map[NodeID]bool{}
	for _, id := range s.order {
		d := s.nodes[id].dir
		for g := 0; g < d.Groups(); g++ {
			if l, ok := d.Leader(g); ok {
				isLeader[l] = true
			}
		}
		break // initial views agree; one directory suffices
	}
	var plain []NodeID
	for _, id := range s.order {
		if id != root && !isLeader[id] {
			plain = append(plain, id)
		}
	}
	if len(plain) < 3 {
		t.Fatalf("not enough plain members to pick victims from (%d)", len(plain))
	}
	s.rng.Shuffle(len(plain), func(i, j int) { plain[i], plain[j] = plain[j], plain[i] })
	v := scaleVictims{member: plain[0], decom1: plain[1]}
	// The successor rule picks the lowest up non-root node; after decom1
	// that will be node 1 unless it is the root or decom1 itself. Pre-move
	// decom1's blocks there and take that node second.
	v.decom2 = s.successor(v.decom1)
	if v.decom2 == v.member || v.decom2 == v.decom1 {
		// Extremely small clusters could collide; shift the crash victim.
		v.member = plain[2]
	}
	s.logf("victims: crash/restart n%d, decommission n%d then its successor n%d", v.member, v.decom1, v.decom2)
	return v
}

// assertScaleInvariants checks the run-wide contracts after the churn script
// has quiesced.
func assertScaleInvariants(t *testing.T, s *scaleSim) {
	t.Helper()
	// Exactly one root, agreed by every up node, in the final quiet epoch.
	root, ok := s.converged()
	if !ok {
		t.Fatal("cluster did not converge on a root + alive set by the end of the run")
	}
	if want := s.trueRoot(); root != want {
		t.Fatalf("converged root = n%d, want n%d (max-free leader)", root, want)
	}
	// Every group one leader, and that leader up, in every view.
	for _, id := range s.aliveIDs() {
		d := s.nodes[id].dir
		for g := 0; g < d.Groups(); g++ {
			if len(d.GroupMembers(g)) == 0 {
				continue
			}
			l, ok := d.Leader(g)
			if !ok {
				t.Fatalf("n%d view: group %d has members but no leader", id, g)
			}
			if !d.Alive(l) {
				t.Fatalf("n%d view: group %d leader n%d not alive", id, g, l)
			}
		}
	}
	// Every client is at its attach node's latest epoch.
	for _, cl := range s.clients {
		dir := s.nodes[cl.attach].dir
		if got, want := s.clientEpoch(cl), int(dir.Epoch()); got != want {
			t.Fatalf("client %d epoch %d, attach n%d at %d", cl.id, got, cl.attach, want)
		}
	}
	// Decommissioned nodes are gone from every view and every client map —
	// no ghosts resurrected by stale gossip.
	for _, n := range s.nodes {
		if !n.departed {
			continue
		}
		for _, id := range s.aliveIDs() {
			if s.nodes[id].dir.Alive(n.id) {
				t.Fatalf("n%d view: decommissioned n%d still alive", id, n.id)
			}
		}
		for _, cl := range s.clients {
			if cl.cm.Alive(n.id) {
				t.Fatalf("client %d map: decommissioned n%d still alive", cl.id, n.id)
			}
		}
	}
	// Read contract: ≤2 redirects (enforced per read), and the redirect
	// path was actually exercised.
	if s.maxRedirects < 1 {
		t.Fatal("script never exercised a redirect — the invariant is vacuous")
	}
	if s.rootElectedIn < 0 {
		t.Fatal("root crash never re-converged")
	}
	if bound := int(s.cfg.hbTimeout) + 8; s.rootElectedIn > bound {
		t.Fatalf("root re-election took %d rounds, bound %d", s.rootElectedIn, bound)
	}
	// Clients sync once per round, so the observed lag just before a sync
	// measures how many epochs their attach node moved in between: bounded
	// by per-round churn, not cluster size or history.
	if bound := s.cfg.nodes / 2; s.maxClientLag > bound {
		t.Fatalf("max client epoch lag %d exceeds churn bound %d", s.maxClientLag, bound)
	}
	// The O(churn) economics: delta syncs must dominate snapshot syncs and
	// move far fewer bytes than snapshot-per-sync would.
	if s.deltaSyncs <= s.snapshotSyncs {
		t.Fatalf("delta path not dominant: %d delta syncs vs %d snapshots", s.deltaSyncs, s.snapshotSyncs)
	}
	if s.deltaBytes*4 > s.snapshotEquivs {
		t.Fatalf("sync traffic not O(churn): %d bytes moved vs %d for snapshot-per-sync", s.deltaBytes, s.snapshotEquivs)
	}
	// Digest plane: the root's folded view covers every alive node, each
	// alive contributor's digest matches that node's registry exactly (ops
	// quiesced at opRounds, so the last relays drained the final values),
	// and the aggregate equals the member sum — not approximately, exactly.
	seen := map[NodeID]bool{}
	var aliveDigests []metrics.NodeDigest
	var wantSum int64
	for _, nd := range s.nodes[root].store.Snapshot() {
		id := NodeID(nd.Node)
		n := s.nodes[id]
		if n == nil {
			t.Fatalf("root digest view holds unknown node %d", nd.Node)
		}
		if n.departed {
			t.Fatalf("root digest view still holds decommissioned n%d", id)
		}
		if !n.up {
			continue // crashed: the stale entry ages, it is not wrong
		}
		seen[id] = true
		got, want := nd.D.Counters["core/remote_allocs"], n.reg.Counter("remote_allocs").Value()
		if got != want {
			t.Fatalf("root view of n%d remote_allocs = %d, node registry says %d", id, got, want)
		}
		aliveDigests = append(aliveDigests, nd)
		wantSum += want
	}
	for _, id := range s.aliveIDs() {
		if !seen[id] {
			t.Fatalf("alive n%d missing from root digest view", id)
		}
	}
	agg, err := metrics.Aggregate(aliveDigests)
	if err != nil {
		t.Fatalf("aggregate root digests: %v", err)
	}
	if got := agg.Counters["core/remote_allocs"]; got != wantSum || wantSum == 0 {
		t.Fatalf("root aggregate remote_allocs = %d, member sum = %d", got, wantSum)
	}
	// Piggyback stays O(group): the largest set any beat carried is bounded
	// by the sender's group fan-in (2x slack covers stale entries a leader
	// briefly retains across the scripted regroup).
	if s.digestBeats == 0 || s.digestBytes == 0 {
		t.Fatal("digest plane never rode a heartbeat — the invariant is vacuous")
	}
	if s.maxDigestSet > 2*s.cfg.groupSize {
		t.Fatalf("max digest set %d exceeds O(group) bound %d", s.maxDigestSet, 2*s.cfg.groupSize)
	}
}

// aliveRootDigests returns the root store's digests for still-up nodes plus
// the sum those nodes' registries hold right now.
func (s *scaleSim) aliveRootDigests(root NodeID) ([]metrics.NodeDigest, int64) {
	var alive []metrics.NodeDigest
	var sum int64
	for _, nd := range s.nodes[root].store.Snapshot() {
		n := s.nodes[NodeID(nd.Node)]
		if n == nil || !n.up {
			continue
		}
		alive = append(alive, nd)
		sum += n.reg.Counter("remote_allocs").Value()
	}
	return alive, sum
}

func (s *scaleSim) report(t *testing.T) {
	t.Helper()
	t.Logf("scale report: nodes=%d rounds=%d reads=%d maxRedirects=%d unavailable=%d "+
		"rootElectionRounds=%d maxClientLag=%d deltaSyncs=%d snapshotSyncs=%d syncBytes=%d snapshotEquivBytes=%d "+
		"digestBeats=%d digestBytes=%d avgDigestBytesPerBeat=%d maxDigestSet=%d",
		s.cfg.nodes, s.cfg.rounds, s.reads, s.maxRedirects, s.unavailable,
		s.rootElectedIn, s.maxClientLag, s.deltaSyncs, s.snapshotSyncs, s.deltaBytes, s.snapshotEquivs,
		s.digestBeats, s.digestBytes, s.digestBytes/s.digestBeats, s.maxDigestSet)
}

func scaleConfig(nodes, groupSize int) scaleCfg {
	return scaleCfg{
		nodes:       nodes,
		groupSize:   groupSize,
		clients:     8,
		blocks:      64,
		rounds:      40,
		hbTimeout:   3,
		drainRounds: 6,
		opRounds:    34, // quiet tail: 6 rounds for the last digests to drain
	}
}

func TestScale100Nodes(t *testing.T) {
	s := runScale(t, 1, scaleConfig(100, 10))
	assertScaleInvariants(t, s)
	s.report(t)
}

func TestScale250Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("250-node sim skipped in -short")
	}
	s := runScale(t, 1337, scaleConfig(250, 16))
	assertScaleInvariants(t, s)
	s.report(t)
}

// TestScaleDeterminism pins the replay contract: the same seed produces a
// byte-identical event log, and different seeds genuinely vary the schedule.
func TestScaleDeterminism(t *testing.T) {
	cfg := scaleConfig(100, 10)
	a := runScale(t, 7, cfg)
	b := runScale(t, 7, cfg)
	if a.log.String() != b.log.String() {
		t.Fatalf("same seed diverged:\nrun A:\n%s\nrun B:\n%s", diffHead(a.log.String(), b.log.String()), "")
	}
	c := runScale(t, 8, cfg)
	if a.log.String() == c.log.String() {
		t.Fatal("different seeds produced identical logs — the seed is not reaching the schedule")
	}
}

// diffHead returns the first diverging region of two logs for diagnosis.
func diffHead(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at line %d:\nA: %s\nB: %s (context %v)", i, al[i], bl[i], al[lo:i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(al), len(bl))
}

// TestScaleGroupSizes sanity-checks the stable-join layout at scale: groups
// never exceed GroupSize and only the newest runs partial.
func TestScaleGroupSizes(t *testing.T) {
	d := newDir(t, Config{GroupSize: 10, HeartbeatTimeout: 3})
	for i := 1; i <= 100; i++ {
		d.Join(NodeID(i), free(NodeID(i)))
	}
	if got := d.Groups(); got != 10 {
		t.Fatalf("Groups = %d, want 10", got)
	}
	counts := map[int]int{}
	for _, st := range d.Snapshot() {
		counts[st.Group]++
	}
	var sizes []int
	for g := 0; g < d.Groups(); g++ {
		sizes = append(sizes, counts[g])
	}
	sort.Ints(sizes)
	if sizes[0] != 10 || sizes[len(sizes)-1] != 10 {
		t.Fatalf("group sizes %v, want all 10", sizes)
	}
}
