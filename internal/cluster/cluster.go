// Package cluster implements membership, hierarchical sharing groups, and
// leader election for the disaggregated memory system (§IV.C–D of the paper).
//
// Nodes in a cluster are partitioned into sharing groups of similar size;
// disaggregated memory is only shared within a group. Each group elects a
// leader — the alive member with the most available memory, ties broken by
// lowest ID — which coordinates remote-node selection for its group. Among
// the leaders, the same rule picks a root coordinator. Heartbeats flow along
// that tree (members to their leader, leaders to the root and their members)
// rather than all-to-all, so per-node heartbeat load stays O(group size) and
// root load O(groups) as the cluster grows. Failure detection is scoped the
// same way: a node only declares down the peers it directly watches
// (TickWatched), and learns about everyone else by reconciling the
// epoch-versioned map deltas carried on heartbeat responses (see epoch.go).
//
// The directory is driven by explicit Tick calls rather than wall-clock
// timers, which keeps behaviour deterministic: a real daemon calls Tick from
// a timer loop, while the simulator calls it from simulated time.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"godm/internal/metrics"
)

// NodeID names a node.
type NodeID int

// ErrUnknownNode is returned for operations on nodes never joined.
var ErrUnknownNode = errors.New("cluster: unknown node")

// EventKind labels a membership event.
type EventKind int

// Membership event kinds.
const (
	// EventNodeUp fires when a node joins or recovers.
	EventNodeUp EventKind = iota + 1
	// EventNodeDown fires when a node misses enough heartbeats.
	EventNodeDown
	// EventLeaderElected fires when a group elects a new leader.
	EventLeaderElected
	// EventRegrouped fires when the number of groups changes.
	EventRegrouped
	// EventNodeLeft fires when a node departs for good (decommission).
	EventNodeLeft
	// EventNodeMoved fires when a node is reassigned to another group.
	EventNodeMoved
	// EventFreeChanged fires when a first-hand heartbeat reveals a node's
	// free memory moved by enough to matter (halved, doubled, or crossed
	// zero). Recording it in the delta log is what lets every directory
	// rank election candidates by free memory consistently: under the
	// heartbeat tree only the hub hears a candidate's beats first-hand, so
	// without these deltas the electors would vote on stale hearsay and
	// disagree.
	EventFreeChanged
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventNodeUp:
		return "node-up"
	case EventNodeDown:
		return "node-down"
	case EventLeaderElected:
		return "leader-elected"
	case EventRegrouped:
		return "regrouped"
	case EventNodeLeft:
		return "node-left"
	case EventNodeMoved:
		return "node-moved"
	case EventFreeChanged:
		return "free-changed"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one membership change.
type Event struct {
	Kind  EventKind
	Node  NodeID // the affected node (leader for EventLeaderElected)
	Group int    // the affected group (-1 when not applicable)
}

type member struct {
	id        NodeID
	freeBytes int64
	lastBeat  int64 // tick of last heartbeat
	alive     bool
	group     int
	// gver is the group-assignment incarnation: bumped by whichever
	// directory deliberately (re)places the node — initial placement or a
	// Regroup move. Gossip only adopts a group claim carrying a strictly
	// newer gver (ties broken by the higher group number), so a stale view
	// cannot revert a rebalance and assignment conflicts converge instead
	// of ping-ponging.
	gver uint64
}

// better reports whether a should lead over b: more free memory first, then
// lower NodeID. The order is total, so two equal-capacity members elect the
// same winner on every node regardless of map iteration or join order.
func better(a, b *member) bool {
	if a.freeBytes != b.freeBytes {
		return a.freeBytes > b.freeBytes
	}
	return a.id < b.id
}

// Config shapes a Directory.
type Config struct {
	// GroupSize is the target number of nodes per sharing group (>= 1).
	GroupSize int
	// HeartbeatTimeout is the number of ticks without a heartbeat after
	// which a node is declared down (>= 1).
	HeartbeatTimeout int64
}

// DefaultConfig matches a 32-node cluster split into groups of 8 with a
// 3-tick failure detector.
func DefaultConfig() Config {
	return Config{GroupSize: 8, HeartbeatTimeout: 3}
}

func (c Config) validate() error {
	if c.GroupSize < 1 {
		return fmt.Errorf("cluster: group size %d < 1", c.GroupSize)
	}
	if c.HeartbeatTimeout < 1 {
		return fmt.Errorf("cluster: heartbeat timeout %d < 1", c.HeartbeatTimeout)
	}
	return nil
}

// dirMetrics is the directory's optional instrumentation (SetMetrics).
type dirMetrics struct {
	epoch           *metrics.Gauge
	deltasServed    *metrics.Counter
	snapshotsServed *metrics.Counter
	logCompactions  *metrics.Counter
	elections       *metrics.Counter
}

// Directory tracks membership, groups, and leaders, and versions every
// change with an epoch (epoch.go). It is safe for concurrent use.
type Directory struct {
	mu      sync.Mutex
	cfg     Config
	tick    int64
	members map[NodeID]*member
	leaders map[int]NodeID // group -> leader
	groups  int

	// departed tombstones nodes removed by Leave (directly or via a Left
	// delta): stale "alive" gossip about them is refused, so a
	// decommissioned node cannot be resurrected as a ghost member by a
	// directory that had not yet heard of the departure. A direct Join
	// clears the tombstone (explicit re-admission).
	departed map[NodeID]bool

	epoch    Epoch
	deltaLog []Delta // epochs (epoch-len(deltaLog), epoch], oldest first
	met      dirMetrics
}

// NewDirectory returns an empty directory.
func NewDirectory(cfg Config) (*Directory, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Directory{
		cfg:      cfg,
		members:  map[NodeID]*member{},
		leaders:  map[int]NodeID{},
		departed: map[NodeID]bool{},
	}, nil
}

// SetMetrics attaches counters for epoch/election/sync activity to reg.
func (d *Directory) SetMetrics(reg *metrics.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met = dirMetrics{
		epoch:           reg.Gauge("epoch"),
		deltasServed:    reg.Counter("deltas_served"),
		snapshotsServed: reg.Counter("snapshots_served"),
		logCompactions:  reg.Counter("log_compactions"),
		elections:       reg.Counter("elections"),
	}
	d.met.epoch.Set(int64(d.epoch))
}

// Join adds (or revives) a node. A new node lands in the emptiest group —
// a fresh group if all are full — and a revived node keeps its old group,
// so joins cost O(churn) map-delta bytes instead of reshuffling everyone
// (explicit Regroup still rebalances globally).
func (d *Directory) Join(id NodeID, freeBytes int64) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.departed, id) // explicit Join re-admits a decommissioned node
	m, ok := d.members[id]
	if !ok {
		m = &member{id: id, group: -1}
		d.members[id] = m
	}
	wasAlive := m.alive
	significant := wasAlive && freeChangeSignificant(m.freeBytes, freeBytes)
	m.alive = true
	m.freeBytes = freeBytes
	m.lastBeat = d.tick
	var events []Event
	if significant {
		events = append(events, Event{Kind: EventFreeChanged, Node: id, Group: m.group})
	}
	if !wasAlive {
		if m.group < 0 || m.group >= d.groups {
			grew := d.groups
			m.group = d.placeLocked()
			m.gver++
			if d.groups != grew {
				events = append(events, Event{Kind: EventRegrouped, Node: -1, Group: d.groups})
			}
		}
		events = append(events, Event{Kind: EventNodeUp, Node: id, Group: m.group})
	}
	// Within the affected group the paper's rule wins immediately: the
	// member with the most free memory leads (forced, group-scoped — a
	// freeBytes update that overtakes the incumbent takes the group over,
	// and equal-view directories converge on the same winner).
	events = append(events, d.electGroupLocked(true, m.group)...)
	d.recordLocked(events)
	return events
}

// placeLocked picks the group for a new node: the one with the fewest alive
// members (ties to the lowest index), or a brand-new group when every
// existing group is at GroupSize.
func (d *Directory) placeLocked() int {
	if d.groups == 0 {
		d.groups = 1
		return 0
	}
	counts := make([]int, d.groups)
	for _, m := range d.members {
		if m.alive && m.group >= 0 && m.group < d.groups {
			counts[m.group]++
		}
	}
	bestG, bestC := 0, counts[0]
	for g := 1; g < d.groups; g++ {
		if counts[g] < bestC {
			bestG, bestC = g, counts[g]
		}
	}
	if bestC >= d.cfg.GroupSize {
		g := d.groups
		d.groups++
		return g
	}
	return bestG
}

// Leave removes a node for good (graceful decommission, §IV.C dynamic
// grouping): unlike a crash it does not wait out the failure detector, and
// the departure is recorded as a Left change in the map delta so peers and
// clients drop the node rather than mark it down.
func (d *Directory) Leave(id NodeID) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok {
		return nil
	}
	g := m.group
	delete(d.members, id)
	d.departed[id] = true
	if d.leaders[g] == id {
		delete(d.leaders, g)
	}
	events := []Event{{Kind: EventNodeLeft, Node: id, Group: g}}
	events = append(events, d.electLocked(false)...)
	d.recordLocked(events)
	return events
}

// Heartbeat records a node's liveness and advertised free memory.
func (d *Directory) Heartbeat(id NodeID, freeBytes int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	m.lastBeat = d.tick
	significant := freeChangeSignificant(m.freeBytes, freeBytes)
	m.freeBytes = freeBytes
	if !m.alive {
		// Recovery in place: keep the group assignment stable, but record
		// the revival in the delta log so map consumers see it.
		m.alive = true
		d.recordLocked([]Event{{Kind: EventNodeUp, Node: id, Group: m.group}})
	} else if significant {
		d.recordLocked([]Event{{Kind: EventFreeChanged, Node: id, Group: m.group}})
	}
	return nil
}

// freeChangeSignificant reports whether a node's free-byte figure moved
// enough to warrant a map delta: halved, doubled, or crossed zero. The
// hysteresis keeps steady-state heartbeats out of the delta log (preserving
// O(churn) sync traffic) while still propagating the order-of-magnitude
// shifts that election ranking and placement actually care about. Hearsay
// adoptions in Reconcile deliberately never re-record, so a change
// propagates exactly one hop from the directory that heard it first-hand —
// which is the hub every elector syncs from.
func freeChangeSignificant(old, new int64) bool {
	if old == new {
		return false
	}
	if old <= 0 || new <= 0 {
		return true
	}
	return new/old >= 2 || old/new >= 2
}

// Tick advances the failure detector one interval: nodes whose last
// heartbeat is older than the timeout are declared down, and affected groups
// re-elect leaders.
func (d *Directory) Tick() []Event {
	return d.TickWatched(nil)
}

// TickWatched is Tick with tree-scoped failure detection: only nodes in
// watched (nil = everyone) can be declared down. In the heartbeat tree a
// node hears directly from the handful of peers it exchanges beats with —
// everyone else's lastBeat is refreshed second-hand by Reconcile — so only
// the watched set is eligible for a first-hand down verdict.
func (d *Directory) TickWatched(watched map[NodeID]bool) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	var events []Event
	for _, id := range d.sortedIDs() {
		if watched != nil && !watched[id] {
			continue
		}
		m := d.members[id]
		if m.alive && d.tick-m.lastBeat > d.cfg.HeartbeatTimeout {
			m.alive = false
			events = append(events, Event{Kind: EventNodeDown, Node: m.id, Group: m.group})
		}
	}
	events = append(events, d.electLocked(false)...)
	d.recordLocked(events)
	return events
}

// Reconcile folds peer-reported node states (map-delta changes from a
// heartbeat exchange) into this directory. Left departures are adopted
// unconditionally; group reassignments are adopted only when they carry a
// newer group incarnation (a node even learns its own group move this way
// after a remote Regroup, while a stale view cannot revert one). Liveness
// is only hearsay for nodes the receiver watches first-hand or for itself,
// so alive/down transitions are skipped for the watched set; a non-watched
// node vouched alive gets its failure detector refreshed, which is what
// keeps unwatched lastBeats from going stale in the tree. Returns the local
// events the adoption produced.
func (d *Directory) Reconcile(self NodeID, changes []Change, watched map[NodeID]bool) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	var events []Event
	for _, ch := range changes {
		id := ch.State.ID
		if ch.Left {
			if id == self {
				continue // our own departure is handled by the caller
			}
			d.departed[id] = true
			if m, ok := d.members[id]; ok {
				delete(d.members, id)
				if d.leaders[m.group] == id {
					delete(d.leaders, m.group)
				}
				events = append(events, Event{Kind: EventNodeLeft, Node: id, Group: m.group})
			}
			continue
		}
		if d.departed[id] {
			continue // stale gossip cannot resurrect a decommissioned node
		}
		firsthand := id == self || (watched != nil && watched[id])
		m, ok := d.members[id]
		if !ok {
			if firsthand {
				continue // don't resurrect a peer we'd know about first-hand
			}
			m = &member{id: id, group: ch.State.Group, gver: ch.State.Gver, freeBytes: ch.State.FreeBytes}
			if m.group >= d.groups {
				d.groups = m.group + 1
			}
			d.members[id] = m
			if ch.State.Alive {
				m.alive = true
				m.lastBeat = d.tick
				events = append(events, Event{Kind: EventNodeUp, Node: id, Group: m.group})
			}
			continue
		}
		if st := ch.State; st.Group != m.group {
			// A group claim wins only with a strictly newer incarnation;
			// equal incarnations (two directories placing the same node
			// concurrently) tie-break to the higher group so every view
			// converges on one assignment instead of flip-flopping.
			if st.Gver > m.gver || (st.Gver == m.gver && st.Group > m.group) {
				m.group, m.gver = st.Group, st.Gver
				if m.group >= d.groups {
					d.groups = m.group + 1
				}
				events = append(events, Event{Kind: EventNodeMoved, Node: id, Group: m.group})
			}
		} else if ch.State.Gver > m.gver {
			m.gver = ch.State.Gver // same group, newer incarnation: keep the freshest
		}
		if firsthand {
			continue // liveness and freeBytes are direct observations
		}
		m.freeBytes = ch.State.FreeBytes
		if ch.State.Alive {
			if !m.alive {
				m.alive = true
				events = append(events, Event{Kind: EventNodeUp, Node: id, Group: m.group})
			}
			m.lastBeat = d.tick
		} else if m.alive {
			m.alive = false
			events = append(events, Event{Kind: EventNodeDown, Node: id, Group: m.group})
		}
	}
	if len(events) > 0 {
		events = append(events, d.electLocked(false)...)
	}
	d.recordLocked(events)
	return events
}

// AdoptLeaders overwrites local leadership with an upstream authority's
// choice (the root's election wins over a member's provisional one). Leaders
// this directory believes dead are not adopted — it will hear the
// replacement soon enough. Unknown groups grow the group count.
func (d *Directory) AdoptLeaders(leaders []GroupLeader, groups int) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	if groups > d.groups {
		d.groups = groups
	}
	var events []Event
	for _, gl := range leaders {
		m := d.members[gl.Leader]
		if m == nil || !m.alive {
			continue
		}
		if cur, had := d.leaders[gl.Group]; !had || cur != gl.Leader {
			d.leaders[gl.Group] = gl.Leader
			events = append(events, Event{Kind: EventLeaderElected, Node: gl.Leader, Group: gl.Group})
			if d.met.elections != nil {
				d.met.elections.Inc()
			}
		}
	}
	d.recordLocked(events)
	return events
}

// ApplySync folds a peer's SyncResponse into this directory: snapshot nodes
// (or delta changes) are reconciled, upstream leadership is adopted, and —
// snapshot only — members absent from the snapshot and not directly watched
// are dropped as departed.
func (d *Directory) ApplySync(self NodeID, resp SyncResponse, watched map[NodeID]bool) []Event {
	var events []Event
	if snap := resp.Snapshot; snap != nil {
		changes := make([]Change, 0, len(snap.Nodes))
		present := make(map[NodeID]bool, len(snap.Nodes))
		for _, s := range snap.Nodes {
			present[s.ID] = true
			changes = append(changes, Change{State: s})
		}
		for _, s := range d.Snapshot() {
			if !present[s.ID] && s.ID != self {
				changes = append(changes, Change{State: NodeState{ID: s.ID}, Left: true})
			}
		}
		events = d.Reconcile(self, changes, watched)
		events = append(events, d.AdoptLeaders(snap.Leaders, snap.Groups)...)
		return events
	}
	// Node-state changes apply in order, but leadership is only adopted
	// from the newest delta that carried it: replaying a history of
	// intermediate leader sets would re-record each long-dead flap as
	// fresh local churn and ripple it back out through the tree.
	var (
		lastLeaders []GroupLeader
		lastGroups  int
		haveLeaders bool
	)
	for _, delta := range resp.Deltas {
		events = append(events, d.Reconcile(self, delta.Changes, watched)...)
		if delta.LeadersChanged {
			lastLeaders, lastGroups, haveLeaders = delta.Leaders, delta.Groups, true
		}
	}
	if haveLeaders {
		events = append(events, d.AdoptLeaders(lastLeaders, lastGroups)...)
	}
	return events
}

// TreeTargets returns the peers node self exchanges heartbeats with in the
// hierarchical scheme, sorted by ID: members beat their group leader
// (falling back to the root, then the lowest-ID alive node, while leadership
// is unknown); leaders beat their group's members plus the root; the root
// beats every group leader plus its own group. The same set is the node's
// watch set for TickWatched — these are exactly the peers it has first-hand
// liveness evidence for.
func (d *Directory) TreeTargets(self NodeID) []NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	me, ok := d.members[self]
	if !ok {
		return nil
	}
	root, rootOK := d.rootLocked()
	myLeader, hasLeader := d.leaders[me.group]
	set := map[NodeID]bool{}
	addGroup := func(g int) {
		for id, m := range d.members {
			if m.alive && m.group == g && id != self {
				set[id] = true
			}
		}
	}
	switch {
	case rootOK && root == self:
		for g, id := range d.leaders {
			if m := d.members[id]; m != nil && m.alive && m.group == g && id != self {
				set[id] = true
			}
		}
		addGroup(me.group)
	case hasLeader && myLeader == self:
		addGroup(me.group)
		if rootOK {
			set[root] = true
		}
	default:
		switch {
		case hasLeader && myLeader != self && d.aliveLocked(myLeader):
			set[myLeader] = true
		case rootOK && root != self:
			set[root] = true
		default:
			for _, id := range d.sortedIDs() {
				if m := d.members[id]; m.alive && id != self {
					set[id] = true
					break
				}
			}
		}
	}
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WatchSet returns TreeTargets as a set, for TickWatched and Reconcile.
func (d *Directory) WatchSet(self NodeID) map[NodeID]bool {
	targets := d.TreeTargets(self)
	set := make(map[NodeID]bool, len(targets))
	for _, id := range targets {
		set[id] = true
	}
	return set
}

func (d *Directory) aliveLocked(id NodeID) bool {
	m, ok := d.members[id]
	return ok && m.alive
}

// Regroup rebuilds group assignments from the current alive set, e.g. after
// a leader observes its group running short of disaggregated memory.
func (d *Directory) Regroup() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.regroupLocked()
}

// regroupLocked partitions alive nodes (sorted by ID) into groups of roughly
// GroupSize and re-elects leaders. This is the global rebalance — it may
// move O(n) nodes, and every move lands in the map delta.
func (d *Directory) regroupLocked() []Event {
	alive := d.aliveSortedLocked()
	nGroups := (len(alive) + d.cfg.GroupSize - 1) / d.cfg.GroupSize
	if nGroups == 0 {
		nGroups = 1
	}
	var events []Event
	for i, m := range alive {
		// Deal nodes round-robin so group sizes differ by at most one.
		g := i % nGroups
		if m.group != g {
			m.group = g
			m.gver++
			events = append(events, Event{Kind: EventNodeMoved, Node: m.id, Group: g})
		}
	}
	changed := d.groups != nGroups
	d.groups = nGroups
	events = append(events, d.electLocked(true)...)
	if changed {
		events = append([]Event{{Kind: EventRegrouped, Node: -1, Group: nGroups}}, events...)
	}
	d.recordLocked(events)
	return events
}

// electLocked ensures every group with alive members has an alive leader,
// chosen by the total order better() — maximum free memory, ties broken by
// lowest ID. When force is false (periodic Tick), a healthy incumbent is
// kept to avoid leadership churn; when true (regroup), the best candidate
// always takes over.
func (d *Directory) electLocked(force bool) []Event {
	return d.electGroupLocked(force, -1)
}

// electGroupLocked is electLocked restricted to one group (only >= 0); the
// vanished-group cleanup runs only on full elections.
func (d *Directory) electGroupLocked(force bool, only int) []Event {
	var events []Event
	best := map[int]*member{}
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		if !m.alive {
			continue
		}
		if cur := best[m.group]; cur == nil || better(m, cur) {
			best[m.group] = m
		}
	}
	groups := make([]int, 0, len(best))
	for g := range best {
		if only >= 0 && g != only {
			continue
		}
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		winner := best[g]
		prev, had := d.leaders[g]
		prevAlive := had && d.members[prev] != nil && d.members[prev].alive && d.members[prev].group == g
		if prevAlive && !force {
			continue // stable leadership: only re-elect on failure/regroup
		}
		if had && prev == winner.id && prevAlive {
			continue // forced election confirmed the incumbent: no event
		}
		d.leaders[g] = winner.id
		events = append(events, Event{Kind: EventLeaderElected, Node: winner.id, Group: g})
		if d.met.elections != nil {
			d.met.elections.Inc()
		}
	}
	if only < 0 {
		// Drop leader records for vanished groups.
		for g := range d.leaders {
			if _, ok := best[g]; !ok {
				delete(d.leaders, g)
			}
		}
	}
	return events
}

func (d *Directory) sortedIDs() []NodeID {
	ids := make([]NodeID, 0, len(d.members))
	for id := range d.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (d *Directory) aliveSortedLocked() []*member {
	var alive []*member
	for _, id := range d.sortedIDs() {
		if m := d.members[id]; m.alive {
			alive = append(alive, m)
		}
	}
	return alive
}

// Leader returns the current leader of group g.
func (d *Directory) Leader(g int) (NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, ok := d.leaders[g]
	return id, ok
}

// RootLeader returns the root of the heartbeat tree — §IV.C's top-tier
// coordinator: among the alive group leaders, the best by the election
// order (max free memory, ties to lowest ID). Cross-group concerns —
// dynamic regrouping, group-to-group borrowing — are arbitrated by this
// node. The result is derived from the current leader set, so it changes
// only when group leadership does.
func (d *Directory) RootLeader() (NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rootLocked()
}

// SuperLeader is the historical name for RootLeader.
func (d *Directory) SuperLeader() (NodeID, bool) { return d.RootLeader() }

func (d *Directory) rootLocked() (NodeID, bool) {
	var best *member
	for g, id := range d.leaders {
		m := d.members[id]
		if m == nil || !m.alive || m.group != g {
			continue
		}
		if best == nil || better(m, best) {
			best = m
		}
	}
	if best == nil {
		return 0, false
	}
	return best.id, true
}

// GroupFreeBytes sums the advertised free memory of group g's alive
// members — the signal a leader uses to request dynamic regrouping when its
// group runs short of disaggregated memory (§IV.C).
func (d *Directory) GroupFreeBytes(g int) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, m := range d.members {
		if m.alive && m.group == g {
			total += m.freeBytes
		}
	}
	return total
}

// GroupOf returns the group of node id.
func (d *Directory) GroupOf(id NodeID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return m.group, nil
}

// Groups returns the current number of groups.
func (d *Directory) Groups() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.groups
}

// NodeState is a snapshot of one member.
type NodeState struct {
	ID        NodeID
	FreeBytes int64
	Alive     bool
	Group     int
	// Gver is the group-assignment incarnation the Group claim was made
	// under; Reconcile only adopts claims with a newer one.
	Gver uint64
}

// Alive reports whether node id is currently considered up.
func (d *Directory) Alive(id NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	return ok && m.alive
}

// GroupMembers returns the alive members of group g sorted by ID.
func (d *Directory) GroupMembers(g int) []NodeState {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []NodeState
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		if m.alive && m.group == g {
			out = append(out, NodeState{ID: m.id, FreeBytes: m.freeBytes, Alive: true, Group: g, Gver: m.gver})
		}
	}
	return out
}

// Snapshot returns all members sorted by ID.
func (d *Directory) Snapshot() []NodeState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeState, 0, len(d.members))
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		out = append(out, NodeState{ID: m.id, FreeBytes: m.freeBytes, Alive: m.alive, Group: m.group, Gver: m.gver})
	}
	return out
}
