// Package cluster implements membership, hierarchical sharing groups, and
// leader election for the disaggregated memory system (§IV.C–D of the paper).
//
// Nodes in a cluster are partitioned into sharing groups of similar size;
// disaggregated memory is only shared within a group. Each group elects a
// leader — the alive member with the most available memory — which
// coordinates remote-node selection for its group. A leader crash (heartbeat
// timeout) triggers re-election, and a group that runs short of disaggregated
// memory can request dynamic regrouping.
//
// The directory is driven by explicit Tick calls rather than wall-clock
// timers, which keeps behaviour deterministic: a real daemon calls Tick from
// a timer loop, while the simulator calls it from simulated time.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeID names a node.
type NodeID int

// ErrUnknownNode is returned for operations on nodes never joined.
var ErrUnknownNode = errors.New("cluster: unknown node")

// EventKind labels a membership event.
type EventKind int

// Membership event kinds.
const (
	// EventNodeUp fires when a node joins or recovers.
	EventNodeUp EventKind = iota + 1
	// EventNodeDown fires when a node misses enough heartbeats.
	EventNodeDown
	// EventLeaderElected fires when a group elects a new leader.
	EventLeaderElected
	// EventRegrouped fires when group assignments are rebuilt.
	EventRegrouped
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventNodeUp:
		return "node-up"
	case EventNodeDown:
		return "node-down"
	case EventLeaderElected:
		return "leader-elected"
	case EventRegrouped:
		return "regrouped"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one membership change.
type Event struct {
	Kind  EventKind
	Node  NodeID // the affected node (leader for EventLeaderElected)
	Group int    // the affected group (-1 when not applicable)
}

type member struct {
	id        NodeID
	freeBytes int64
	lastBeat  int64 // tick of last heartbeat
	alive     bool
	group     int
}

// Config shapes a Directory.
type Config struct {
	// GroupSize is the target number of nodes per sharing group (>= 1).
	GroupSize int
	// HeartbeatTimeout is the number of ticks without a heartbeat after
	// which a node is declared down (>= 1).
	HeartbeatTimeout int64
}

// DefaultConfig matches a 32-node cluster split into groups of 8 with a
// 3-tick failure detector.
func DefaultConfig() Config {
	return Config{GroupSize: 8, HeartbeatTimeout: 3}
}

func (c Config) validate() error {
	if c.GroupSize < 1 {
		return fmt.Errorf("cluster: group size %d < 1", c.GroupSize)
	}
	if c.HeartbeatTimeout < 1 {
		return fmt.Errorf("cluster: heartbeat timeout %d < 1", c.HeartbeatTimeout)
	}
	return nil
}

// Directory tracks membership, groups, and leaders. It is safe for
// concurrent use.
type Directory struct {
	mu      sync.Mutex
	cfg     Config
	tick    int64
	members map[NodeID]*member
	leaders map[int]NodeID // group -> leader
	groups  int
}

// NewDirectory returns an empty directory.
func NewDirectory(cfg Config) (*Directory, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Directory{
		cfg:     cfg,
		members: map[NodeID]*member{},
		leaders: map[int]NodeID{},
	}, nil
}

// Join adds (or revives) a node and triggers regrouping.
func (d *Directory) Join(id NodeID, freeBytes int64) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok {
		m = &member{id: id}
		d.members[id] = m
	}
	wasAlive := m.alive
	m.alive = true
	m.freeBytes = freeBytes
	m.lastBeat = d.tick
	var events []Event
	if !wasAlive {
		events = append(events, Event{Kind: EventNodeUp, Node: id, Group: -1})
	}
	events = append(events, d.regroupLocked()...)
	return events
}

// Heartbeat records a node's liveness and advertised free memory.
func (d *Directory) Heartbeat(id NodeID, freeBytes int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	m.lastBeat = d.tick
	m.freeBytes = freeBytes
	if !m.alive {
		// Recovery is handled by Tick/Join to keep group assignment stable;
		// a heartbeat from a down node revives it in place.
		m.alive = true
	}
	return nil
}

// Tick advances the failure detector one interval: nodes whose last
// heartbeat is older than the timeout are declared down, and affected groups
// re-elect leaders.
func (d *Directory) Tick() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	var events []Event
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		if m.alive && d.tick-m.lastBeat > d.cfg.HeartbeatTimeout {
			m.alive = false
			events = append(events, Event{Kind: EventNodeDown, Node: m.id, Group: m.group})
		}
	}
	events = append(events, d.electLocked(false)...)
	return events
}

// Regroup rebuilds group assignments from the current alive set, e.g. after
// a leader observes its group running short of disaggregated memory.
func (d *Directory) Regroup() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.regroupLocked()
}

// regroupLocked partitions alive nodes (sorted by ID) into contiguous groups
// of roughly GroupSize and re-elects leaders.
func (d *Directory) regroupLocked() []Event {
	alive := d.aliveSortedLocked()
	nGroups := (len(alive) + d.cfg.GroupSize - 1) / d.cfg.GroupSize
	if nGroups == 0 {
		nGroups = 1
	}
	for i, m := range alive {
		// Deal nodes round-robin so group sizes differ by at most one.
		m.group = i % nGroups
	}
	changed := d.groups != nGroups
	d.groups = nGroups
	events := d.electLocked(true)
	if changed {
		events = append([]Event{{Kind: EventRegrouped, Node: -1, Group: nGroups}}, events...)
	}
	return events
}

// electLocked ensures every group with alive members has an alive leader:
// the member with maximum free memory, ties broken by lowest ID. When force
// is false (periodic Tick), a healthy incumbent is kept to avoid leadership
// churn; when true (regroup), the max-free-memory winner always takes over.
func (d *Directory) electLocked(force bool) []Event {
	var events []Event
	best := map[int]*member{}
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		if !m.alive {
			continue
		}
		cur := best[m.group]
		if cur == nil || m.freeBytes > cur.freeBytes {
			best[m.group] = m
		}
	}
	groups := make([]int, 0, len(best))
	for g := range best {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		winner := best[g]
		prev, had := d.leaders[g]
		prevAlive := had && d.members[prev] != nil && d.members[prev].alive && d.members[prev].group == g
		if prevAlive && !force {
			continue // stable leadership: only re-elect on failure/regroup
		}
		if had && prev == winner.id && prevAlive {
			continue // forced election confirmed the incumbent: no event
		}
		d.leaders[g] = winner.id
		events = append(events, Event{Kind: EventLeaderElected, Node: winner.id, Group: g})
	}
	// Drop leader records for vanished groups.
	for g := range d.leaders {
		if _, ok := best[g]; !ok {
			delete(d.leaders, g)
		}
	}
	return events
}

func (d *Directory) sortedIDs() []NodeID {
	ids := make([]NodeID, 0, len(d.members))
	for id := range d.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (d *Directory) aliveSortedLocked() []*member {
	var alive []*member
	for _, id := range d.sortedIDs() {
		if m := d.members[id]; m.alive {
			alive = append(alive, m)
		}
	}
	return alive
}

// Leader returns the current leader of group g.
func (d *Directory) Leader(g int) (NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, ok := d.leaders[g]
	return id, ok
}

// SuperLeader returns the top-tier coordinator of §IV.C's multi-tier
// hierarchical grouping: among the alive group leaders, the one with the
// most available memory (ties broken by lowest ID). Cross-group concerns —
// dynamic regrouping, group-to-group borrowing — are arbitrated by this
// node. The result is derived from the current leader set, so it changes
// only when group leadership does.
func (d *Directory) SuperLeader() (NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var best *member
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		if !m.alive {
			continue
		}
		if leader, ok := d.leaders[m.group]; !ok || leader != m.id {
			continue
		}
		if best == nil || m.freeBytes > best.freeBytes {
			best = m
		}
	}
	if best == nil {
		return 0, false
	}
	return best.id, true
}

// GroupFreeBytes sums the advertised free memory of group g's alive
// members — the signal a leader uses to request dynamic regrouping when its
// group runs short of disaggregated memory (§IV.C).
func (d *Directory) GroupFreeBytes(g int) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, m := range d.members {
		if m.alive && m.group == g {
			total += m.freeBytes
		}
	}
	return total
}

// GroupOf returns the group of node id.
func (d *Directory) GroupOf(id NodeID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return m.group, nil
}

// Groups returns the current number of groups.
func (d *Directory) Groups() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.groups
}

// NodeState is a snapshot of one member.
type NodeState struct {
	ID        NodeID
	FreeBytes int64
	Alive     bool
	Group     int
}

// Alive reports whether node id is currently considered up.
func (d *Directory) Alive(id NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	return ok && m.alive
}

// GroupMembers returns the alive members of group g sorted by ID.
func (d *Directory) GroupMembers(g int) []NodeState {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []NodeState
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		if m.alive && m.group == g {
			out = append(out, NodeState{ID: m.id, FreeBytes: m.freeBytes, Alive: true, Group: g})
		}
	}
	return out
}

// Snapshot returns all members sorted by ID.
func (d *Directory) Snapshot() []NodeState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeState, 0, len(d.members))
	for _, id := range d.sortedIDs() {
		m := d.members[id]
		out = append(out, NodeState{ID: m.id, FreeBytes: m.freeBytes, Alive: m.alive, Group: m.group})
	}
	return out
}
