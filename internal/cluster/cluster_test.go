package cluster

import (
	"errors"
	"testing"
)

func newDir(t *testing.T, cfg Config) *Directory {
	t.Helper()
	d, err := NewDirectory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func hasEvent(events []Event, kind EventKind, node NodeID) bool {
	for _, e := range events {
		if e.Kind == kind && e.Node == node {
			return true
		}
	}
	return false
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDirectory(Config{GroupSize: 0, HeartbeatTimeout: 1}); err == nil {
		t.Fatal("expected error for group size 0")
	}
	if _, err := NewDirectory(Config{GroupSize: 1, HeartbeatTimeout: 0}); err == nil {
		t.Fatal("expected error for timeout 0")
	}
}

func TestJoinElectsLeaderWithMaxFreeMemory(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 3})
	d.Join(1, 100)
	d.Join(2, 300)
	events := d.Join(3, 200)
	_ = events
	leader, ok := d.Leader(0)
	if !ok {
		t.Fatal("no leader elected")
	}
	if leader != 2 {
		t.Fatalf("leader = %d, want 2 (max free memory)", leader)
	}
}

func TestLeaderStableAcrossHeartbeats(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 3})
	d.Join(1, 100)
	d.Join(2, 300)
	// Node 1 later advertises more memory, but a healthy leader is kept.
	if err := d.Heartbeat(1, 999); err != nil {
		t.Fatal(err)
	}
	if err := d.Heartbeat(2, 300); err != nil {
		t.Fatal(err)
	}
	events := d.Tick()
	if hasEvent(events, EventLeaderElected, 1) {
		t.Fatalf("leadership churned: %v", events)
	}
	if leader, _ := d.Leader(0); leader != 2 {
		t.Fatalf("leader = %d, want 2", leader)
	}
}

func TestHeartbeatTimeoutDeclaresDown(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 2})
	d.Join(1, 100)
	d.Join(2, 200)
	var downAt int
	for i := 1; i <= 5; i++ {
		_ = d.Heartbeat(2, 200) // node 1 goes silent
		events := d.Tick()
		if hasEvent(events, EventNodeDown, 1) {
			downAt = i
			break
		}
	}
	if downAt != 3 { // timeout 2 ticks -> declared down on tick 3
		t.Fatalf("node declared down at tick %d, want 3", downAt)
	}
	if d.Alive(1) {
		t.Fatal("node 1 still alive")
	}
	if !d.Alive(2) {
		t.Fatal("node 2 should be alive")
	}
}

func TestLeaderCrashTriggersReelection(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 1})
	d.Join(1, 100)
	d.Join(2, 300) // leader
	d.Join(3, 200)
	if leader, _ := d.Leader(0); leader != 2 {
		t.Fatalf("initial leader = %d, want 2", leader)
	}
	// Node 2 goes silent; 1 and 3 keep beating.
	var newLeader NodeID
	for i := 0; i < 4; i++ {
		_ = d.Heartbeat(1, 100)
		_ = d.Heartbeat(3, 200)
		events := d.Tick()
		for _, e := range events {
			if e.Kind == EventLeaderElected {
				newLeader = e.Node
			}
		}
	}
	if newLeader != 3 {
		t.Fatalf("re-elected leader = %d, want 3 (max free among alive)", newLeader)
	}
}

func TestHeartbeatRevivesDownNode(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 1})
	d.Join(1, 100)
	d.Join(2, 200)
	for i := 0; i < 3; i++ {
		_ = d.Heartbeat(2, 200)
		d.Tick()
	}
	if d.Alive(1) {
		t.Fatal("node 1 should be down")
	}
	if err := d.Heartbeat(1, 100); err != nil {
		t.Fatal(err)
	}
	if !d.Alive(1) {
		t.Fatal("heartbeat should revive node 1")
	}
}

func TestHeartbeatUnknownNode(t *testing.T) {
	d := newDir(t, DefaultConfig())
	if err := d.Heartbeat(99, 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if _, err := d.GroupOf(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestGroupingSplitsEvenly(t *testing.T) {
	d := newDir(t, Config{GroupSize: 4, HeartbeatTimeout: 3})
	for i := 1; i <= 10; i++ {
		d.Join(NodeID(i), int64(i))
	}
	if got := d.Groups(); got != 3 { // ceil(10/4)
		t.Fatalf("Groups = %d, want 3", got)
	}
	// Stable joins fill groups to GroupSize before opening a new one: no
	// group exceeds GroupSize and only the newest group runs partial.
	counts := map[int]int{}
	for _, s := range d.Snapshot() {
		if s.Alive {
			counts[s.Group]++
		}
	}
	for g, c := range counts {
		if c > 4 || c < 1 {
			t.Fatalf("group %d has %d members, want 1-4 (counts %v)", g, c, counts)
		}
		if c < 4 && g != 2 {
			t.Fatalf("non-newest group %d partial at %d members (counts %v)", g, c, counts)
		}
	}
	// Every group has a leader.
	for g := 0; g < 3; g++ {
		if _, ok := d.Leader(g); !ok {
			t.Fatalf("group %d has no leader", g)
		}
	}
	// An explicit Regroup rebalances to sizes differing by at most one.
	d.Regroup()
	counts = map[int]int{}
	for _, s := range d.Snapshot() {
		if s.Alive {
			counts[s.Group]++
		}
	}
	for g, c := range counts {
		if c < 3 || c > 4 {
			t.Fatalf("after Regroup group %d has %d members, want 3-4 (counts %v)", g, c, counts)
		}
	}
}

func TestGroupMembersSortedAndAliveOnly(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 1})
	d.Join(3, 30)
	d.Join(1, 10)
	d.Join(2, 20)
	members := d.GroupMembers(0)
	if len(members) != 3 || members[0].ID != 1 || members[2].ID != 3 {
		t.Fatalf("members = %+v, want sorted 1,2,3", members)
	}
	// Kill node 2.
	for i := 0; i < 3; i++ {
		_ = d.Heartbeat(1, 10)
		_ = d.Heartbeat(3, 30)
		d.Tick()
	}
	members = d.GroupMembers(0)
	if len(members) != 2 {
		t.Fatalf("alive members = %+v, want 2", members)
	}
}

func TestRegroupAfterGrowth(t *testing.T) {
	d := newDir(t, Config{GroupSize: 2, HeartbeatTimeout: 5})
	d.Join(1, 1)
	d.Join(2, 2)
	if d.Groups() != 1 {
		t.Fatalf("Groups = %d, want 1", d.Groups())
	}
	events := d.Join(3, 3)
	if d.Groups() != 2 {
		t.Fatalf("Groups after third join = %d, want 2", d.Groups())
	}
	found := false
	for _, e := range events {
		if e.Kind == EventRegrouped {
			found = true
		}
	}
	if !found {
		t.Fatalf("no regroup event in %v", events)
	}
}

func TestExplicitRegroupRebalances(t *testing.T) {
	d := newDir(t, Config{GroupSize: 2, HeartbeatTimeout: 1})
	for i := 1; i <= 4; i++ {
		d.Join(NodeID(i), int64(i))
	}
	// Kill nodes 3 and 4 (group members spread over groups 0 and 1).
	for i := 0; i < 3; i++ {
		_ = d.Heartbeat(1, 1)
		_ = d.Heartbeat(2, 2)
		d.Tick()
	}
	d.Regroup()
	if d.Groups() != 1 {
		t.Fatalf("Groups after shrink regroup = %d, want 1", d.Groups())
	}
	g1, _ := d.GroupOf(1)
	g2, _ := d.GroupOf(2)
	if g1 != g2 {
		t.Fatalf("survivors in different groups %d, %d", g1, g2)
	}
}

func TestEventKindString(t *testing.T) {
	tests := []struct {
		k    EventKind
		want string
	}{
		{EventNodeUp, "node-up"},
		{EventNodeDown, "node-down"},
		{EventLeaderElected, "leader-elected"},
		{EventRegrouped, "regrouped"},
		{EventKind(42), "event(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestJoinEmitsNodeUpOnce(t *testing.T) {
	d := newDir(t, DefaultConfig())
	events := d.Join(1, 10)
	if !hasEvent(events, EventNodeUp, 1) {
		t.Fatalf("first join events = %v, want node-up", events)
	}
	events = d.Join(1, 20) // rejoin while alive: no duplicate up event
	if hasEvent(events, EventNodeUp, 1) {
		t.Fatalf("second join events = %v, want no node-up", events)
	}
}

func BenchmarkTick100Nodes(b *testing.B) {
	d, _ := NewDirectory(Config{GroupSize: 8, HeartbeatTimeout: 3})
	for i := 0; i < 100; i++ {
		d.Join(NodeID(i), int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			_ = d.Heartbeat(NodeID(j), int64(j))
		}
		d.Tick()
	}
}

func TestSuperLeaderIsMaxFreeAmongLeaders(t *testing.T) {
	d := newDir(t, Config{GroupSize: 2, HeartbeatTimeout: 3})
	// Two groups after four joins; leaders are the max-free member of each.
	d.Join(1, 100)
	d.Join(2, 400)
	d.Join(3, 300)
	d.Join(4, 200)
	super, ok := d.SuperLeader()
	if !ok {
		t.Fatal("no super leader")
	}
	// Stable join grouping: group0 = {1,2}, group1 = {3,4}; leaders 2 and 3;
	// node 2 (400) has the most memory.
	if super != 2 {
		t.Fatalf("super leader = %d, want 2", super)
	}
}

func TestSuperLeaderSurvivesLeaderCrash(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 1})
	d.Join(1, 100)
	d.Join(2, 300)
	d.Join(3, 200)
	if super, _ := d.SuperLeader(); super != 2 {
		t.Fatalf("initial super = %d, want 2", super)
	}
	for i := 0; i < 4; i++ {
		_ = d.Heartbeat(1, 100)
		_ = d.Heartbeat(3, 200)
		d.Tick()
	}
	super, ok := d.SuperLeader()
	if !ok || super != 3 {
		t.Fatalf("super after crash = %d (%v), want 3", super, ok)
	}
}

func TestSuperLeaderEmptyCluster(t *testing.T) {
	d := newDir(t, DefaultConfig())
	if _, ok := d.SuperLeader(); ok {
		t.Fatal("empty cluster has no super leader")
	}
}

func TestGroupFreeBytes(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 1})
	d.Join(1, 100)
	d.Join(2, 250)
	if got := d.GroupFreeBytes(0); got != 350 {
		t.Fatalf("GroupFreeBytes = %d, want 350", got)
	}
	// A dead member stops counting.
	for i := 0; i < 3; i++ {
		_ = d.Heartbeat(2, 250)
		d.Tick()
	}
	if got := d.GroupFreeBytes(0); got != 250 {
		t.Fatalf("GroupFreeBytes after death = %d, want 250", got)
	}
}
