// Wire codec for the epoch-versioned map sync protocol. Fixed-width
// big-endian fields, in the style of internal/core's message codec, so the
// same bytes decode identically on every node and fabric. The codec is
// exported because both the core node ops (opMapSync) and the transport
// conformance suite need to round-trip these payloads.
package cluster

import (
	"encoding/binary"
	"errors"
)

// ErrBadSync is returned when a sync payload does not decode.
var ErrBadSync = errors.New("cluster: malformed sync payload")

// maxWireEntries caps decoded element counts so a corrupt length prefix
// cannot drive a huge allocation.
const maxWireEntries = 1 << 20

const (
	syncKindCurrent  = 0 // requester already current: no payload
	syncKindDeltas   = 1
	syncKindSnapshot = 2
)

// AppendSyncRequest appends the wire form of req to b.
func AppendSyncRequest(b []byte, req SyncRequest) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(req.Origin))
	b = binary.BigEndian.AppendUint64(b, uint64(req.Epoch))
	return b
}

// DecodeSyncRequest decodes a request and returns the remaining bytes.
func DecodeSyncRequest(b []byte) (SyncRequest, []byte, error) {
	if len(b) < 16 {
		return SyncRequest{}, nil, ErrBadSync
	}
	req := SyncRequest{
		Origin: NodeID(int64(binary.BigEndian.Uint64(b[0:8]))),
		Epoch:  Epoch(binary.BigEndian.Uint64(b[8:16])),
	}
	return req, b[16:], nil
}

func appendNodeState(b []byte, s NodeState) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(s.ID))
	b = binary.BigEndian.AppendUint64(b, uint64(s.FreeBytes))
	if s.Alive {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(s.Group))
	b = binary.BigEndian.AppendUint64(b, s.Gver)
	return b
}

func decodeNodeState(b []byte) (NodeState, []byte, error) {
	if len(b) < 29 {
		return NodeState{}, nil, ErrBadSync
	}
	s := NodeState{
		ID:        NodeID(int64(binary.BigEndian.Uint64(b[0:8]))),
		FreeBytes: int64(binary.BigEndian.Uint64(b[8:16])),
		Alive:     b[16] == 1,
		Group:     int(int32(binary.BigEndian.Uint32(b[17:21]))),
		Gver:      binary.BigEndian.Uint64(b[21:29]),
	}
	return s, b[29:], nil
}

func appendLeaders(b []byte, leaders []GroupLeader) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(leaders)))
	for _, gl := range leaders {
		b = binary.BigEndian.AppendUint32(b, uint32(gl.Group))
		b = binary.BigEndian.AppendUint64(b, uint64(gl.Leader))
	}
	return b
}

func decodeLeaders(b []byte) ([]GroupLeader, []byte, error) {
	if len(b) < 4 {
		return nil, nil, ErrBadSync
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n > maxWireEntries || len(b) < int(n)*12 {
		return nil, nil, ErrBadSync
	}
	var leaders []GroupLeader
	for i := uint32(0); i < n; i++ {
		leaders = append(leaders, GroupLeader{
			Group:  int(int32(binary.BigEndian.Uint32(b[0:4]))),
			Leader: NodeID(int64(binary.BigEndian.Uint64(b[4:12]))),
		})
		b = b[12:]
	}
	return leaders, b, nil
}

// AppendDelta appends the wire form of one delta to b.
func AppendDelta(b []byte, d Delta) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(d.Epoch))
	b = binary.BigEndian.AppendUint32(b, uint32(d.Groups))
	b = binary.BigEndian.AppendUint64(b, uint64(d.Root))
	var flags byte
	if d.RootOK {
		flags |= 1
	}
	if d.LeadersChanged {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint32(b, uint32(len(d.Changes)))
	for _, ch := range d.Changes {
		b = appendNodeState(b, ch.State)
		if ch.Left {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	if d.LeadersChanged {
		b = appendLeaders(b, d.Leaders)
	}
	return b
}

// DecodeDelta decodes one delta and returns the remaining bytes.
func DecodeDelta(b []byte) (Delta, []byte, error) {
	if len(b) < 25 {
		return Delta{}, nil, ErrBadSync
	}
	d := Delta{
		Epoch:  Epoch(binary.BigEndian.Uint64(b[0:8])),
		Groups: int(int32(binary.BigEndian.Uint32(b[8:12]))),
		Root:   NodeID(int64(binary.BigEndian.Uint64(b[12:20]))),
	}
	flags := b[20]
	d.RootOK = flags&1 != 0
	d.LeadersChanged = flags&2 != 0
	n := binary.BigEndian.Uint32(b[21:25])
	b = b[25:]
	if n > maxWireEntries {
		return Delta{}, nil, ErrBadSync
	}
	for i := uint32(0); i < n; i++ {
		s, rest, err := decodeNodeState(b)
		if err != nil {
			return Delta{}, nil, err
		}
		if len(rest) < 1 {
			return Delta{}, nil, ErrBadSync
		}
		d.Changes = append(d.Changes, Change{State: s, Left: rest[0] == 1})
		b = rest[1:]
	}
	if d.LeadersChanged {
		var err error
		d.Leaders, b, err = decodeLeaders(b)
		if err != nil {
			return Delta{}, nil, err
		}
	}
	return d, b, nil
}

// AppendSnapshot appends the wire form of a full map snapshot to b.
func AppendSnapshot(b []byte, s MapSnapshot) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(s.Epoch))
	b = binary.BigEndian.AppendUint32(b, uint32(s.Groups))
	b = binary.BigEndian.AppendUint64(b, uint64(s.Root))
	if s.RootOK {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Nodes)))
	for _, n := range s.Nodes {
		b = appendNodeState(b, n)
	}
	b = appendLeaders(b, s.Leaders)
	return b
}

// DecodeSnapshot decodes a snapshot and returns the remaining bytes.
func DecodeSnapshot(b []byte) (MapSnapshot, []byte, error) {
	if len(b) < 25 {
		return MapSnapshot{}, nil, ErrBadSync
	}
	s := MapSnapshot{
		Epoch:  Epoch(binary.BigEndian.Uint64(b[0:8])),
		Groups: int(int32(binary.BigEndian.Uint32(b[8:12]))),
		Root:   NodeID(int64(binary.BigEndian.Uint64(b[12:20]))),
		RootOK: b[20] == 1,
	}
	n := binary.BigEndian.Uint32(b[21:25])
	b = b[25:]
	if n > maxWireEntries {
		return MapSnapshot{}, nil, ErrBadSync
	}
	for i := uint32(0); i < n; i++ {
		var (
			ns  NodeState
			err error
		)
		ns, b, err = decodeNodeState(b)
		if err != nil {
			return MapSnapshot{}, nil, err
		}
		s.Nodes = append(s.Nodes, ns)
	}
	var err error
	s.Leaders, b, err = decodeLeaders(b)
	if err != nil {
		return MapSnapshot{}, nil, err
	}
	return s, b, nil
}

// AppendSyncResponse appends the wire form of resp to b.
func AppendSyncResponse(b []byte, resp SyncResponse) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(resp.Origin))
	switch {
	case resp.Snapshot != nil:
		b = append(b, syncKindSnapshot)
		b = AppendSnapshot(b, *resp.Snapshot)
	case len(resp.Deltas) > 0:
		b = append(b, syncKindDeltas)
		b = binary.BigEndian.AppendUint32(b, uint32(len(resp.Deltas)))
		for _, d := range resp.Deltas {
			b = AppendDelta(b, d)
		}
	default:
		b = append(b, syncKindCurrent)
	}
	return b
}

// DecodeSyncResponse decodes a response and returns the remaining bytes.
func DecodeSyncResponse(b []byte) (SyncResponse, []byte, error) {
	if len(b) < 9 {
		return SyncResponse{}, nil, ErrBadSync
	}
	resp := SyncResponse{Origin: NodeID(int64(binary.BigEndian.Uint64(b[0:8])))}
	kind := b[8]
	b = b[9:]
	switch kind {
	case syncKindCurrent:
		return resp, b, nil
	case syncKindDeltas:
		if len(b) < 4 {
			return SyncResponse{}, nil, ErrBadSync
		}
		n := binary.BigEndian.Uint32(b)
		b = b[4:]
		if n > maxWireEntries {
			return SyncResponse{}, nil, ErrBadSync
		}
		for i := uint32(0); i < n; i++ {
			var (
				d   Delta
				err error
			)
			d, b, err = DecodeDelta(b)
			if err != nil {
				return SyncResponse{}, nil, err
			}
			resp.Deltas = append(resp.Deltas, d)
		}
		return resp, b, nil
	case syncKindSnapshot:
		snap, rest, err := DecodeSnapshot(b)
		if err != nil {
			return SyncResponse{}, nil, err
		}
		resp.Snapshot = &snap
		return resp, rest, nil
	default:
		return SyncResponse{}, nil, ErrBadSync
	}
}
