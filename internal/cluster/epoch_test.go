package cluster

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// TestElectionTieBreakDeterministic is the regression test for the total
// election order: two (or more) same-capacity nodes must elect the same
// leader — the lowest ID — on every directory, for every join order, across
// seeds. Before the fix the tie-break depended on iteration order alone.
func TestElectionTieBreakDeterministic(t *testing.T) {
	const equalFree = 1 << 20
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ids := []NodeID{1, 2, 3, 4, 5}
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 3})
		for _, id := range ids {
			d.Join(id, equalFree)
		}
		leader, ok := d.Leader(0)
		if !ok || leader != 1 {
			t.Fatalf("seed %d join order %v: leader = %d,%v, want 1 (lowest ID on tie)", seed, ids, leader, ok)
		}
		// Crash the leader: the next-lowest equal-capacity node must win,
		// again identically for every join order.
		for i := 0; i < 4; i++ {
			for _, id := range ids {
				if id != 1 {
					if err := d.Heartbeat(id, equalFree); err != nil {
						t.Fatal(err)
					}
				}
			}
			d.Tick()
		}
		if d.Alive(1) {
			t.Fatalf("seed %d: node 1 should be down", seed)
		}
		leader, ok = d.Leader(0)
		if !ok || leader != 2 {
			t.Fatalf("seed %d: post-crash leader = %d,%v, want 2", seed, leader, ok)
		}
	}
}

// TestEpochBumpsOnMembershipNotHeartbeat pins the epoch semantics: joins,
// downs, leaves, and elections advance the map version; a plain freeBytes
// refresh does not.
func TestEpochBumpsOnMembershipNotHeartbeat(t *testing.T) {
	d := newDir(t, Config{GroupSize: 4, HeartbeatTimeout: 2})
	if got := d.Epoch(); got != 0 {
		t.Fatalf("initial epoch = %d, want 0", got)
	}
	d.Join(1, 100)
	e1 := d.Epoch()
	if e1 == 0 {
		t.Fatal("join did not bump epoch")
	}
	if err := d.Heartbeat(1, 90); err != nil {
		t.Fatal(err)
	}
	if got := d.Epoch(); got != e1 {
		t.Fatalf("heartbeat bumped epoch %d -> %d", e1, got)
	}
	d.Join(2, 200) // joins and takes leadership (more memory)
	e2 := d.Epoch()
	if e2 <= e1 {
		t.Fatalf("second join: epoch %d, want > %d", e2, e1)
	}
	d.Leave(2)
	if got := d.Epoch(); got <= e2 {
		t.Fatalf("leave: epoch %d, want > %d", got, e2)
	}
}

// TestLeaveRemovesAndReelects covers graceful decommission: the node is
// gone (not down), its leadership moves, and the delta records Left.
func TestLeaveRemovesAndReelects(t *testing.T) {
	d := newDir(t, Config{GroupSize: 4, HeartbeatTimeout: 3})
	d.Join(1, 100)
	d.Join(2, 300)
	before := d.Epoch()
	events := d.Leave(2)
	var left, elected bool
	for _, e := range events {
		if e.Kind == EventNodeLeft && e.Node == 2 {
			left = true
		}
		if e.Kind == EventLeaderElected && e.Node == 1 {
			elected = true
		}
	}
	if !left || !elected {
		t.Fatalf("events = %v, want node-left(2) and leader-elected(1)", events)
	}
	if _, err := d.GroupOf(2); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("node 2 still known after Leave: %v", err)
	}
	deltas, ok := d.DeltasSince(before)
	if !ok || len(deltas) == 0 {
		t.Fatalf("DeltasSince(%d) = %v,%v", before, deltas, ok)
	}
	var sawLeft bool
	for _, delta := range deltas {
		for _, ch := range delta.Changes {
			if ch.Left && ch.State.ID == 2 {
				sawLeft = true
			}
		}
	}
	if !sawLeft {
		t.Fatalf("delta log does not record the departure: %+v", deltas)
	}
}

// TestDeltasSinceCompaction pins the snapshot fallback: a consumer behind
// the bounded log gets ok=false and must resync from a snapshot.
func TestDeltasSinceCompaction(t *testing.T) {
	d := newDir(t, Config{GroupSize: 1 << 20, HeartbeatTimeout: 2})
	d.Join(1, 100)
	// Churn one node up/down well past the log bound.
	for i := 0; int(d.Epoch()) < maxDeltaLog+10; i++ {
		d.Join(2, 50)
		d.Leave(2)
	}
	if _, ok := d.DeltasSince(0); ok {
		t.Fatal("DeltasSince(0) should report compacted")
	}
	cur := d.Epoch()
	deltas, ok := d.DeltasSince(cur - 5)
	if !ok || len(deltas) != 5 {
		t.Fatalf("DeltasSince(cur-5) = %d deltas, %v; want 5, true", len(deltas), ok)
	}
	if deltas[0].Epoch != cur-4 || deltas[4].Epoch != cur {
		t.Fatalf("delta epochs [%d..%d], want [%d..%d]", deltas[0].Epoch, deltas[4].Epoch, cur-4, cur)
	}
	if _, ok := d.DeltasSince(cur + 1); ok {
		t.Fatal("DeltasSince(future) should not be ok")
	}
}

// TestClientMapConvergesViaDeltas drives a client cache through incremental
// syncs and checks it lands byte-identical to the directory's own snapshot.
func TestClientMapConvergesViaDeltas(t *testing.T) {
	const self = NodeID(1)
	d := newDir(t, Config{GroupSize: 2, HeartbeatTimeout: 3})
	cm := NewClientMap()

	sync := func() {
		resp := d.Sync(self, cm.Request())
		if err := cm.Apply(resp); err != nil {
			// Stale cache: resync via snapshot, as a real client would.
			snap := d.SnapshotMap()
			cm.ApplySnapshot(self, snap)
		}
	}

	d.Join(1, 100)
	sync()
	d.Join(2, 200)
	d.Join(3, 300)
	sync()
	d.Join(4, 400)
	d.Leave(3)
	sync()

	if got, want := cm.Snapshot(), d.SnapshotMap(); !reflect.DeepEqual(got, want) {
		t.Fatalf("client map diverged:\n got %+v\nwant %+v", got, want)
	}
	_, epoch := cm.Epoch()
	if epoch != d.Epoch() {
		t.Fatalf("client epoch %d != directory epoch %d", epoch, d.Epoch())
	}
	// Already-current sync is a no-op.
	resp := d.Sync(self, cm.Request())
	if resp.Snapshot != nil || len(resp.Deltas) != 0 {
		t.Fatalf("current client got non-empty sync: %+v", resp)
	}
}

// TestClientMapOriginSwitchForcesSnapshot pins that epochs are origin-scoped.
func TestClientMapOriginSwitchForcesSnapshot(t *testing.T) {
	d1 := newDir(t, Config{GroupSize: 4, HeartbeatTimeout: 3})
	d2 := newDir(t, Config{GroupSize: 4, HeartbeatTimeout: 3})
	d1.Join(1, 100)
	d2.Join(1, 100)
	d2.Join(2, 200)

	cm := NewClientMap()
	cm.ApplySnapshot(1, d1.SnapshotMap())

	// Deltas from a different origin must be rejected...
	deltas, ok := d2.DeltasSince(0)
	if !ok {
		t.Fatal("d2 deltas unavailable")
	}
	if err := cm.ApplyDeltas(2, deltas); !errors.Is(err, ErrMapStale) {
		t.Fatalf("cross-origin ApplyDeltas err = %v, want ErrMapStale", err)
	}
	// ...and a responder seeing a foreign origin answers with a snapshot.
	resp := d2.Sync(2, cm.Request())
	if resp.Snapshot == nil {
		t.Fatalf("cross-origin sync should snapshot, got %+v", resp)
	}
	if err := cm.Apply(resp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cm.Snapshot(), d2.SnapshotMap()) {
		t.Fatal("client map did not adopt the new origin's snapshot")
	}
}

// TestSyncWireRoundTrip pins the exported codec: request, delta, snapshot,
// and all three response kinds survive encode/decode bit-exactly.
func TestSyncWireRoundTrip(t *testing.T) {
	req := SyncRequest{Origin: 7, Epoch: 42}
	gotReq, rest, err := DecodeSyncRequest(AppendSyncRequest(nil, req))
	if err != nil || len(rest) != 0 || gotReq != req {
		t.Fatalf("request round trip = %+v, %d leftover, %v", gotReq, len(rest), err)
	}

	delta := Delta{
		Epoch:  9,
		Groups: 3,
		Changes: []Change{
			{State: NodeState{ID: 4, FreeBytes: 1 << 30, Alive: true, Group: 2}},
			{State: NodeState{ID: 5}, Left: true},
		},
		Leaders:        []GroupLeader{{Group: 0, Leader: 1}, {Group: 2, Leader: 4}},
		LeadersChanged: true,
		Root:           1,
		RootOK:         true,
	}
	gotDelta, rest, err := DecodeDelta(AppendDelta(nil, delta))
	if err != nil || len(rest) != 0 || !reflect.DeepEqual(gotDelta, delta) {
		t.Fatalf("delta round trip:\n got %+v\nwant %+v (err %v)", gotDelta, delta, err)
	}

	snap := MapSnapshot{
		Epoch:  11,
		Groups: 2,
		Nodes: []NodeState{
			{ID: 1, FreeBytes: 10, Alive: true, Group: 0},
			{ID: 2, FreeBytes: 20, Alive: false, Group: 1},
		},
		Leaders: []GroupLeader{{Group: 0, Leader: 1}},
		Root:    1,
		RootOK:  true,
	}
	gotSnap, rest, err := DecodeSnapshot(AppendSnapshot(nil, snap))
	if err != nil || len(rest) != 0 || !reflect.DeepEqual(gotSnap, snap) {
		t.Fatalf("snapshot round trip:\n got %+v\nwant %+v (err %v)", gotSnap, snap, err)
	}

	for _, resp := range []SyncResponse{
		{Origin: 3},
		{Origin: 3, Deltas: []Delta{delta}},
		{Origin: 3, Snapshot: &snap},
	} {
		got, rest, err := DecodeSyncResponse(AppendSyncResponse(nil, resp))
		if err != nil || len(rest) != 0 || !reflect.DeepEqual(got, resp) {
			t.Fatalf("response round trip:\n got %+v\nwant %+v (err %v)", got, resp, err)
		}
	}

	// Truncated payloads must error, never panic or misparse.
	full := AppendSyncResponse(nil, SyncResponse{Origin: 3, Snapshot: &snap})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeSyncResponse(full[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
}

// TestDeltaBytesOChurn is the wire-cost claim behind the design: one node
// joining a large cluster produces a delta whose encoding is a small
// constant, while the full snapshot grows with cluster size.
func TestDeltaBytesOChurn(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 3})
	const n = 200
	for i := 1; i <= n; i++ {
		d.Join(NodeID(i), 1<<20)
	}
	before := d.Epoch()
	d.Join(n+1, 1<<20) // lands in an existing partial group: pure churn
	deltas, ok := d.DeltasSince(before)
	if !ok {
		t.Fatal("delta log should cover one join")
	}
	var deltaBytes []byte
	for _, delta := range deltas {
		deltaBytes = AppendDelta(deltaBytes, delta)
	}
	snapBytes := AppendSnapshot(nil, d.SnapshotMap())
	if len(deltaBytes) == 0 {
		t.Fatal("join produced no delta bytes")
	}
	// A single join's delta: a handful of changes plus possibly the
	// O(groups) leader list — far below the O(nodes) snapshot.
	if len(deltaBytes)*4 > len(snapBytes) {
		t.Fatalf("delta not O(churn): %d bytes vs snapshot %d bytes", len(deltaBytes), len(snapBytes))
	}
	t.Logf("delta=%dB snapshot=%dB (%d nodes)", len(deltaBytes), len(snapBytes), n+1)
}

// TestTreeTargetsRoles pins the heartbeat-tree shape: members beat their
// leader, leaders beat their members plus the root, the root beats every
// leader plus its own group.
func TestTreeTargetsRoles(t *testing.T) {
	d := newDir(t, Config{GroupSize: 3, HeartbeatTimeout: 3})
	// Group 0: 1,2,3 (leader 1: most memory). Group 1: 4,5,6 (leader 4).
	frees := map[NodeID]int64{1: 600, 2: 100, 3: 100, 4: 500, 5: 100, 6: 100}
	for id := NodeID(1); id <= 6; id++ {
		d.Join(id, frees[id])
	}
	root, ok := d.RootLeader()
	if !ok || root != 1 {
		t.Fatalf("root = %d,%v, want 1", root, ok)
	}
	want := map[NodeID][]NodeID{
		1: {2, 3, 4}, // root: own group members + other leaders
		2: {1},       // member -> leader
		3: {1},       // member -> leader
		4: {1, 5, 6}, // leader: root + own members
		5: {4},       // member -> leader
		6: {4},       // member -> leader
	}
	for id, targets := range want {
		if got := d.TreeTargets(id); !reflect.DeepEqual(got, targets) {
			t.Errorf("TreeTargets(%d) = %v, want %v", id, got, targets)
		}
	}
	// Total heartbeat edges stay O(n), not O(n^2): 10 directed edges for 6
	// nodes here, versus 30 all-to-all.
	total := 0
	for id := NodeID(1); id <= 6; id++ {
		total += len(d.TreeTargets(id))
	}
	if total >= 6*5 {
		t.Fatalf("tree fan-out %d not below all-to-all %d", total, 6*5)
	}
}

// TestReconcileVouchingAndWatchScope covers second-hand state adoption: a
// reconcile refreshes vouched-alive nodes' failure detectors, adopts
// unknown nodes, honours Left, and never overrides the watched set.
func TestReconcileVouchingAndWatchScope(t *testing.T) {
	d := newDir(t, Config{GroupSize: 8, HeartbeatTimeout: 2})
	d.Join(1, 100)
	d.Join(2, 200)

	// Adopt an unknown node 3; a second-hand down-report about watched node
	// 2 must be ignored (liveness is first-hand there), but a group move
	// carrying a newer incarnation is authoritative and adopted — while a
	// stale-incarnation claim must not revert it.
	watched := map[NodeID]bool{2: true}
	events := d.Reconcile(1, []Change{
		{State: NodeState{ID: 3, FreeBytes: 50, Alive: true, Group: 0}},
		{State: NodeState{ID: 2, FreeBytes: 200, Alive: false, Group: 1, Gver: 2}},
	}, watched)
	if !d.Alive(3) {
		t.Fatalf("node 3 not adopted (events %v)", events)
	}
	if !d.Alive(2) {
		t.Fatal("watched node 2 marked down by second-hand gossip")
	}
	if g, _ := d.GroupOf(2); g != 1 {
		t.Fatalf("watched node 2 group = %d, want adopted group 1", g)
	}
	d.Reconcile(1, []Change{{State: NodeState{ID: 2, FreeBytes: 200, Alive: true, Group: 0, Gver: 1}}}, watched)
	if g, _ := d.GroupOf(2); g != 1 {
		t.Fatalf("stale group claim reverted node 2 to group %d", g)
	}
	// A Left departure is authoritative even for watched nodes...
	d.Reconcile(1, []Change{{State: NodeState{ID: 2}, Left: true}}, watched)
	if _, err := d.GroupOf(2); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("authoritative Left for watched node 2 not adopted")
	}
	// ...but gossip cannot resurrect a first-hand-watched departed peer.
	d.Reconcile(1, []Change{{State: NodeState{ID: 2, Alive: true, Group: 0}}}, watched)
	if _, err := d.GroupOf(2); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("second-hand gossip resurrected watched node 2")
	}
	d.Join(2, 200) // rejoin for the vouching phase below

	// Vouching: only node 1 (self) and 2 heartbeat directly; node 3 stays
	// alive as long as reconciles vouch for it...
	for i := 0; i < 4; i++ {
		_ = d.Heartbeat(2, 200)
		d.Reconcile(1, []Change{{State: NodeState{ID: 3, FreeBytes: 50, Alive: true, Group: 0}}}, watched)
		d.TickWatched(map[NodeID]bool{2: true, 3: true})
	}
	if !d.Alive(3) {
		t.Fatal("vouched node 3 went stale despite reconciles")
	}
	// ...and goes down once the vouching stops.
	for i := 0; i < 4; i++ {
		_ = d.Heartbeat(2, 200)
		d.TickWatched(map[NodeID]bool{2: true, 3: true})
	}
	if d.Alive(3) {
		t.Fatal("unvouched node 3 still alive")
	}
}

// TestAdoptLeadersAuthority pins the root-wins rule: upstream leadership
// overwrites a local provisional choice, but a leader the local view
// believes dead is not adopted.
func TestAdoptLeadersAuthority(t *testing.T) {
	d := newDir(t, Config{GroupSize: 4, HeartbeatTimeout: 2})
	d.Join(1, 100)
	d.Join(2, 200)
	if leader, _ := d.Leader(0); leader != 2 {
		t.Fatalf("leader = %d, want 2", leader)
	}
	// Upstream says node 1 leads group 0: adopt.
	d.AdoptLeaders([]GroupLeader{{Group: 0, Leader: 1}}, 1)
	if leader, _ := d.Leader(0); leader != 1 {
		t.Fatalf("adoption failed: leader = %d, want 1", leader)
	}
	// Kill node 2 locally; upstream naming it leader must be refused.
	for i := 0; i < 3; i++ {
		_ = d.Heartbeat(1, 100)
		d.Tick()
	}
	if d.Alive(2) {
		t.Fatal("node 2 should be down")
	}
	d.AdoptLeaders([]GroupLeader{{Group: 0, Leader: 2}}, 1)
	if leader, _ := d.Leader(0); leader == 2 {
		t.Fatal("adopted a leader the local view knows is dead")
	}
}
