package swap

import (
	"context"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/simnet"
	"godm/internal/transport"
)

// rig is a single-VM testbed: one simulation, four nodes (so remote puts
// have three peers), devices, and a manager factory.
type rig struct {
	env   *des.Env
	nodes []*core.Node
	deps  Deps
}

func newRig(t *testing.T, sharedBytes, recvBytes int64) *rig {
	t.Helper()
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 8, HeartbeatTimeout: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{env: env}
	for i := 1; i <= 4; i++ {
		ep, err := fabric.Attach(transport.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node, err := core.NewNode(core.Config{
			ID:                transport.NodeID(i),
			SharedPoolBytes:   sharedBytes,
			SendPoolBytes:     1 << 20,
			RecvPoolBytes:     recvBytes,
			SlabSize:          1 << 20,
			ReplicationFactor: 1,
			// Run the swap engine against sharded host pools so the paging
			// path is covered with the production lock layout.
			PoolShards: 4,
		}, ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
	}
	vs, err := r.nodes[0].AddServer("vm0", sharedBytes)
	if err != nil {
		t.Fatal(err)
	}
	params := memdev.DefaultParams()
	r.deps = Deps{
		VS:     vs,
		DRAM:   memdev.NewDRAM(params),
		Shared: memdev.NewSharedMem(params),
		Disk:   memdev.NewDisk(env, "swapdev", params),
	}
	return r
}

// drive runs a sequential scan trace through the manager and returns the
// simulated completion time.
func (r *rig) drive(t *testing.T, m *Manager, pages, iters int) time.Duration {
	t.Helper()
	var done time.Duration
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		for it := 0; it < iters; it++ {
			for pg := 0; pg < pages; pg++ {
				if err := m.Touch(ctx, pg, time.Microsecond, true); err != nil {
					t.Errorf("Touch(%d): %v", pg, err)
					return
				}
			}
		}
		done = p.Now()
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	return done
}

func flatRatio(float64) func(int) float64 {
	return func(int) float64 { return 2 }
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", ResidentPages: 0, Window: 1, Readahead: 1},
		{Name: "b", ResidentPages: 1, Window: 0, Readahead: 1},
		{Name: "c", ResidentPages: 1, Window: 1, Readahead: 0},
		{Name: "d", ResidentPages: 1, Window: 1, Readahead: 1, NodeRatio: 11},
		{Name: "e", ResidentPages: 1, Window: 1, Readahead: 1, Compression: true},
	}
	for _, cfg := range bad {
		if _, err := NewManager(cfg, Deps{}); err == nil {
			t.Errorf("config %q: expected error", cfg.Name)
		}
	}
}

func TestDepsValidation(t *testing.T) {
	cfg := Linux(10)
	if _, err := NewManager(cfg, Deps{}); err == nil {
		t.Fatal("expected error for missing devices")
	}
	params := memdev.DefaultParams()
	env := des.NewEnv()
	deps := Deps{DRAM: memdev.NewDRAM(params), Disk: memdev.NewDisk(env, "d", params)}
	if _, err := NewManager(cfg, deps); err != nil {
		t.Fatalf("Linux needs only DRAM+Disk: %v", err)
	}
	// Remote without VS rejected.
	if _, err := NewManager(Infiniswap(10), deps); err == nil {
		t.Fatal("expected error for remote tier without VS")
	}
}

func TestHitsStayInDRAM(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	m, err := NewManager(Linux(64), Deps{DRAM: r.deps.DRAM, Disk: r.deps.Disk})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := r.drive(t, m, 32, 4) // working set fits: all hits after cold fills
	st := m.Stats()
	if st.ColdFills != 32 {
		t.Fatalf("ColdFills = %d, want 32", st.ColdFills)
	}
	if st.SwapOuts != 0 || st.SwapIns != 0 {
		t.Fatalf("unexpected swap traffic: %+v", st)
	}
	if st.Hits != 32*3 {
		t.Fatalf("Hits = %d, want 96", st.Hits)
	}
	// 128 touches at ~1.3µs each: well under a millisecond.
	if elapsed > time.Millisecond {
		t.Fatalf("elapsed = %v, want < 1ms", elapsed)
	}
}

func TestLinuxThrashesOnDisk(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	m, err := NewManager(Linux(16), Deps{DRAM: r.deps.DRAM, Disk: r.deps.Disk})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := r.drive(t, m, 32, 3) // 50% fits
	st := m.Stats()
	if st.DiskOuts == 0 || st.DiskIns == 0 {
		t.Fatalf("expected disk traffic: %+v", st)
	}
	// Sequential scan beyond resident set: every batch read seeks, even
	// with kernel readahead coalescing most page faults.
	if st.Faults < 35 {
		t.Fatalf("Faults = %d, want heavy faulting", st.Faults)
	}
	if elapsed < 10*time.Millisecond {
		t.Fatalf("elapsed = %v, want disk-dominated time", elapsed)
	}
}

func TestFastSwapSMUsesSharedMemoryOnly(t *testing.T) {
	r := newRig(t, 8<<20, 1<<20)
	m, err := NewManager(FastSwap(16, 10, true, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := r.drive(t, m, 32, 3)
	st := m.Stats()
	if st.SharedOuts == 0 {
		t.Fatalf("no shared traffic: %+v", st)
	}
	if st.RemoteOuts != 0 || st.DiskOuts != 0 {
		t.Fatalf("FS-SM leaked to other tiers: %+v", st)
	}
	if elapsed > 5*time.Millisecond {
		t.Fatalf("elapsed = %v, want microsecond-class swapping", elapsed)
	}
}

func TestFastSwapRDMAUsesRemoteOnly(t *testing.T) {
	r := newRig(t, 8<<20, 8<<20)
	m, err := NewManager(FastSwap(16, 0, true, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, m, 32, 3)
	st := m.Stats()
	if st.RemoteOuts == 0 {
		t.Fatalf("no remote traffic: %+v", st)
	}
	if st.SharedOuts != 0 {
		t.Fatalf("FS-RDMA used shared pool: %+v", st)
	}
}

func TestDistributionRatioSplitsTraffic(t *testing.T) {
	r := newRig(t, 32<<20, 32<<20)
	m, err := NewManager(FastSwap(16, 7, false, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, m, 64, 4)
	st := m.Stats()
	if st.SharedOuts == 0 || st.RemoteOuts == 0 {
		t.Fatalf("FS-7:3 should use both tiers: %+v", st)
	}
	frac := float64(st.SharedOuts) / float64(st.SharedOuts+st.RemoteOuts)
	if frac < 0.5 || frac > 0.9 {
		t.Fatalf("shared fraction = %v, want ~0.7", frac)
	}
}

func TestSharedFullOverflowsToRemote(t *testing.T) {
	// Shared pool fits one slab (1 MiB); heavy swapping overflows remote.
	r := newRig(t, 1<<20, 32<<20)
	m, err := NewManager(FastSwap(16, 10, false, flatRatio(1)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, m, 1024, 2)
	st := m.Stats()
	if st.SharedOuts == 0 {
		t.Fatalf("no shared traffic: %+v", st)
	}
	if st.RemoteOuts == 0 {
		t.Fatalf("shared-full did not overflow to remote: %+v", st)
	}
	if st.DiskOuts != 0 {
		t.Fatalf("leaked to disk with remote available: %+v", st)
	}
}

func TestEverythingFullFallsToDisk(t *testing.T) {
	// 1 MiB shared + 1 MiB recv per node, no compression: 2K pages overflow.
	r := newRig(t, 1<<20, 1<<20)
	m, err := NewManager(FastSwap(16, 10, false, flatRatio(1)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, m, 2048, 2)
	if st := m.Stats(); st.DiskOuts == 0 {
		t.Fatalf("expected disk fallback: %+v", st)
	}
}

func TestPBSPrefetchesBatch(t *testing.T) {
	r := newRig(t, 8<<20, 8<<20)
	pbs, err := NewManager(FastSwap(16, 10, true, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, pbs, 48, 3)
	st := pbs.Stats()
	if st.Prefetched == 0 {
		t.Fatalf("PBS prefetched nothing: %+v", st)
	}
	// Prefetch satisfies later touches: swap-ins far fewer than faults on
	// swapped pages.
	if st.SwapIns*2 > st.Faults {
		t.Fatalf("SwapIns = %d vs Faults = %d: prefetch ineffective", st.SwapIns, st.Faults)
	}
}

func TestPBSBeatsNoPBSOnSequentialScan(t *testing.T) {
	mkRig := func() (*rig, Deps) {
		r := newRig(t, 32<<20, 32<<20)
		return r, r.deps
	}
	r1, d1 := mkRig()
	withPBS, err := NewManager(FastSwap(64, 0, true, flatRatio(2)), d1)
	if err != nil {
		t.Fatal(err)
	}
	tPBS := r1.drive(t, withPBS, 256, 3)
	r2, d2 := mkRig()
	noPBS, err := NewManager(FastSwap(64, 0, false, flatRatio(2)), d2)
	if err != nil {
		t.Fatal(err)
	}
	tNo := r2.drive(t, noPBS, 256, 3)
	if tPBS >= tNo {
		t.Fatalf("PBS %v not faster than no-PBS %v", tPBS, tNo)
	}
}

func TestCompressionReducesBytesOut(t *testing.T) {
	r1 := newRig(t, 32<<20, 32<<20)
	comp, err := NewManager(FastSwap(16, 10, false, flatRatio(4)), r1.deps)
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := FastSwap(16, 10, false, nil)
	cfgOff.Compression = false
	cfgOff.Name = "FastSwap-nocomp"
	r2 := newRig(t, 32<<20, 32<<20)
	plain, err := NewManager(cfgOff, r2.deps)
	if err != nil {
		t.Fatal(err)
	}
	r1.drive(t, comp, 128, 2)
	r2.drive(t, plain, 128, 2)
	cs, ps := comp.Stats(), plain.Stats()
	if cs.RawOut != ps.RawOut {
		t.Fatalf("raw bytes differ: %d vs %d", cs.RawOut, ps.RawOut)
	}
	if cs.BytesOut*2 > ps.BytesOut {
		t.Fatalf("compression saved too little: %d vs %d", cs.BytesOut, ps.BytesOut)
	}
}

func TestInfiniswapSlowerThanFastSwapRemote(t *testing.T) {
	r1 := newRig(t, 32<<20, 32<<20)
	fs, err := NewManager(FastSwap(64, 0, true, flatRatio(2)), r1.deps)
	if err != nil {
		t.Fatal(err)
	}
	tFS := r1.drive(t, fs, 256, 3)
	r2 := newRig(t, 32<<20, 32<<20)
	is, err := NewManager(Infiniswap(64), r2.deps)
	if err != nil {
		t.Fatal(err)
	}
	tIS := r2.drive(t, is, 256, 3)
	if tFS >= tIS {
		t.Fatalf("FastSwap %v not faster than Infiniswap %v", tFS, tIS)
	}
}

func TestSystemOrderingMatchesPaper(t *testing.T) {
	// Figure 7's ordering at 50% config: FastSwap < Infiniswap < Linux.
	const pages, iters, resident = 256, 2, 128
	run := func(cfg Config) time.Duration {
		r := newRig(t, 32<<20, 32<<20)
		deps := r.deps
		if cfg.NodeRatio < 0 && !cfg.RemoteEnabled {
			deps = Deps{DRAM: r.deps.DRAM, Disk: r.deps.Disk}
		}
		m, err := NewManager(cfg, deps)
		if err != nil {
			t.Fatal(err)
		}
		return r.drive(t, m, pages, iters)
	}
	tFS := run(FastSwap(resident, 10, true, flatRatio(2)))
	tIS := run(Infiniswap(resident))
	tLX := run(Linux(resident))
	if !(tFS < tIS && tIS < tLX) {
		t.Fatalf("ordering violated: FastSwap=%v Infiniswap=%v Linux=%v", tFS, tIS, tLX)
	}
	// Linux should be at least an order of magnitude behind FastSwap.
	if tLX < 10*tFS {
		t.Fatalf("Linux %v not >= 10x FastSwap %v", tLX, tFS)
	}
}

func TestTouchPendingPageCancelsSwapOut(t *testing.T) {
	r := newRig(t, 8<<20, 8<<20)
	m, err := NewManager(FastSwap(4, 10, false, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		// Fill resident set, overflow two pages into the window, touch one
		// of them again before the window flushes.
		for pg := 0; pg < 6; pg++ {
			if err := m.Touch(ctx, pg, 0, true); err != nil {
				t.Errorf("Touch: %v", err)
				return
			}
		}
		// Pages 0 and 1 are staged. Touching 0 must not be a fault.
		before := m.Stats().Faults
		if err := m.Touch(ctx, 0, 0, true); err != nil {
			t.Errorf("Touch staged: %v", err)
			return
		}
		if m.Stats().Faults != before {
			t.Error("touch of staged page counted as fault")
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushForcesWindowOut(t *testing.T) {
	r := newRig(t, 8<<20, 8<<20)
	m, err := NewManager(FastSwap(4, 10, false, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		for pg := 0; pg < 6; pg++ {
			if err := m.Touch(ctx, pg, 0, true); err != nil {
				t.Errorf("Touch: %v", err)
				return
			}
		}
		if m.Stats().SharedOuts != 0 {
			t.Error("window flushed early")
		}
		m.Flush(ctx)
		if m.Stats().SharedOuts == 0 {
			t.Error("Flush did not write the window")
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteReleasesOldSlot(t *testing.T) {
	r := newRig(t, 8<<20, 8<<20)
	m, err := NewManager(FastSwap(2, 10, false, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	// Thrash 4 pages through a 2-page resident set repeatedly; batches must
	// be garbage collected as their slots die.
	r.drive(t, m, 4, 20)
	if got := len(m.batches); got > 4 {
		t.Fatalf("%d live batches, want old batches released", got)
	}
	// All pages accounted: resident + pending + swapped = 4.
	total := m.ResidentLen() + len(m.swapped)
	if total != 4 {
		t.Fatalf("page accounting = %d, want 4", total)
	}
}

func TestZswapStoresCompressedInShared(t *testing.T) {
	r := newRig(t, 4<<20, 1<<20)
	m, err := NewManager(Zswap(16, flatRatio(3)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, m, 64, 2)
	st := m.Stats()
	if st.SharedOuts == 0 {
		t.Fatalf("zswap wrote nothing to pool: %+v", st)
	}
	if st.RemoteOuts != 0 {
		t.Fatalf("zswap used remote memory: %+v", st)
	}
	// zbud: ratio-3 pages store at half a page.
	if st.BytesOut >= st.RawOut {
		t.Fatalf("no compression benefit: %+v", st)
	}
}

func TestXMemPodUsesSSDBeforeDisk(t *testing.T) {
	// Tiny shared + remote pools: overflow lands on the SSD tier rather
	// than the spinning swap device.
	r := newRig(t, 1<<20, 1<<20)
	deps := r.deps
	deps.SSD = memdev.NewSSD(r.env, "flash", memdev.DefaultParams())
	m, err := NewManager(XMemPod(16, 10, false, flatRatio(1)), deps)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, m, 2048, 2)
	st := m.Stats()
	if st.SSDOuts == 0 || st.SSDIns == 0 {
		t.Fatalf("no SSD traffic: %+v", st)
	}
	if st.DiskOuts != 0 {
		t.Fatalf("XMemPod spilled to disk: %+v", st)
	}
}

func TestXMemPodNeedsSSDDevice(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	if _, err := NewManager(XMemPod(16, 10, false, flatRatio(1)), r.deps); err == nil {
		t.Fatal("expected error without SSD device")
	}
}

func TestXMemPodBeatsFastSwapUnderMemoryExhaustion(t *testing.T) {
	run := func(ssd bool) time.Duration {
		r := newRig(t, 1<<20, 1<<20) // pools far too small for the job
		deps := r.deps
		cfg := FastSwap(64, 10, false, flatRatio(1))
		if ssd {
			deps.SSD = memdev.NewSSD(r.env, "flash", memdev.DefaultParams())
			cfg = XMemPod(64, 10, false, flatRatio(1))
		}
		m, err := NewManager(cfg, deps)
		if err != nil {
			t.Fatal(err)
		}
		return r.drive(t, m, 2048, 2)
	}
	withSSD := run(true)
	withoutSSD := run(false)
	if withSSD >= withoutSSD {
		t.Fatalf("XMemPod %v not faster than disk-backed FastSwap %v", withSSD, withoutSSD)
	}
}
