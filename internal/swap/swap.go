// Package swap implements FastSwap — the paper's hybrid disaggregated-memory
// swapping system (§IV.H, §V.A) — together with every baseline the
// evaluation compares against, all as configurations of one page-fault
// engine:
//
//   - FastSwap: node-level shared memory + cluster-level remote memory with
//     a configurable distribution ratio (FS-SM, FS-9:1 … FS-RDMA), page
//     compression with size-class granularities, window-based batch swap-out
//     through the send buffer pool, and proactive batch swap-in (PBS).
//   - Infiniswap and NBDX: remote-only paging through an RDMA block device —
//     per-page requests, no compression, no shared memory, block-stack
//     overhead per request.
//   - Linux: disk swap with kernel-style swap clustering and readahead.
//   - Zswap: a compressed in-RAM cache (zbud size classes) in front of disk.
//
// The engine maintains a resident-set LRU. A Touch of a non-resident page is
// a fault: the page is fetched from wherever its batch is parked (shared
// pool, remote memory, or disk), and a victim overflows into the staging
// window, which flushes as one batch entry when full. All latencies are
// charged to the calling simulation process.
package swap

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"godm/internal/compress"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/metrics"
	"godm/internal/pagetable"
	"godm/internal/prefetch"
	"godm/internal/trace"
)

// PageSize is the swap unit.
const PageSize = compress.PageSize

// Adaptive-tiering defaults, used for Config fields left zero when Tiering
// is on: a batch untouched for DefaultDemoteAfter faults is cold, sweeps run
// every DefaultDemoteEvery faults, and two demand fetches re-promote.
const (
	DefaultDemoteAfter    = 256
	DefaultDemoteEvery    = 64
	DefaultPromoteTouches = 2
	// demotePerSweep bounds how many cold batches one sweep moves, so a
	// single fault never absorbs an unbounded migration backlog.
	demotePerSweep = 4
)

// ErrNoBacking is returned when a fault cannot be served from any tier.
var ErrNoBacking = errors.New("swap: page lost on every tier")

// Config selects a swapping system.
type Config struct {
	// Name labels the system in experiment output.
	Name string
	// ResidentPages is how many pages fit in the virtual server's memory
	// (the 50%/75% "configurations" of §V scale this against the working
	// set).
	ResidentPages int
	// Window is the swap-out batch size d (§IV.H window-based batching);
	// 1 disables batching.
	Window int
	// NodeRatio is the tenths of swap-out traffic directed to the
	// node-level shared memory pool: 10 = FS-SM, 9 = FS-9:1, 0 = FS-RDMA.
	// -1 disables the shared tier entirely (Linux, Infiniswap, NBDX).
	NodeRatio int
	// RemoteEnabled allows the cluster-level remote memory tier.
	RemoteEnabled bool
	// Readahead is how many pages of a parked batch a single fault brings
	// in (PBS when > 1). Kernel-style disk readahead is the same mechanism.
	Readahead int
	// Compression enables page compression with the given granularity.
	Compression bool
	Granularity compress.Granularity
	// PageRatio gives each page's compressibility (required when
	// Compression is on).
	PageRatio func(page int) float64
	// CompressCPU and DecompressCPU are charged per page (de)compressed.
	CompressCPU   time.Duration
	DecompressCPU time.Duration
	// RemoteOverhead is the block-I/O stack cost per remote request, the
	// penalty Infiniswap and NBDX pay for riding a block device (nbd queue,
	// bio handling) instead of FastSwap's direct path.
	RemoteOverhead time.Duration
	// MaxMessageBytes caps a single fabric message (§IV.H's message size m;
	// DAHI's RPC layer defaults to 8 KB messages with a 1 MB maximum). A
	// batch larger than m is split into multiple messages, each paying
	// MessageOverhead. Zero means unlimited.
	MaxMessageBytes int
	// MessageOverhead is the per-extra-message cost when a batch splits.
	MessageOverhead time.Duration
	// SSDEnabled inserts a local flash tier between remote memory and the
	// spinning swap device — the XMemPod hierarchy of the paper's [36]
	// (shared memory, then remote memory, then SSD, then disk).
	SSDEnabled bool

	// LeapPrefetch replaces the in-batch PBS readahead with the Leap
	// majority-trend stride detector: each access feeds the detector, each
	// fault asks it for a trend, and predicted pages are fetched from
	// whatever batches they are parked in — across batch boundaries, with
	// depth adapting to hit/waste feedback. Readahead is ignored while set.
	LeapPrefetch bool
	// AddressSpace is the workload's page count, bounding predictions.
	// Required when LeapPrefetch is on.
	AddressSpace int
	// PrefetchHistory, PrefetchMinWindow, PrefetchMaxDepth and
	// PrefetchHitStreak tune the detector; zero takes prefetch defaults.
	PrefetchHistory   int
	PrefetchMinWindow int
	PrefetchMaxDepth  int
	PrefetchHitStreak int

	// Tiering replaces the binary spill with a hotness-driven ladder:
	// batches idle for DemoteAfter faults are demoted one rung — shared →
	// remote → remote-deflated → disk — on a sweep every DemoteEvery
	// faults, and a batch demand-touched PromoteTouches times climbs one
	// rung back up. Requires PageRatio for the deflated rung's size model.
	Tiering bool
	// DemoteAfter is the idle age (in faults) before a batch turns cold.
	DemoteAfter int
	// DemoteEvery is the sweep period in faults.
	DemoteEvery int
	// PromoteTouches is the demand-fetch count that re-promotes a batch.
	PromoteTouches int
}

func (c Config) validate() error {
	if c.ResidentPages <= 0 {
		return fmt.Errorf("swap: resident pages %d must be positive", c.ResidentPages)
	}
	if c.Window < 1 {
		return fmt.Errorf("swap: window %d must be >= 1", c.Window)
	}
	if c.Readahead < 1 {
		return fmt.Errorf("swap: readahead %d must be >= 1", c.Readahead)
	}
	if c.NodeRatio < -1 || c.NodeRatio > 10 {
		return fmt.Errorf("swap: node ratio %d outside [-1,10]", c.NodeRatio)
	}
	if c.Compression && c.PageRatio == nil {
		return errors.New("swap: compression enabled without PageRatio")
	}
	if c.MaxMessageBytes < 0 {
		return fmt.Errorf("swap: max message bytes %d must be non-negative", c.MaxMessageBytes)
	}
	if c.LeapPrefetch && c.AddressSpace <= 0 {
		return errors.New("swap: Leap prefetch needs a positive AddressSpace bound")
	}
	if c.Tiering && c.PageRatio == nil {
		return errors.New("swap: tiering needs PageRatio for the deflated rung")
	}
	return nil
}

// Stats counts engine activity.
type Stats struct {
	Accesses   int64
	Hits       int64
	Faults     int64
	ColdFills  int64 // first-touch zero fills
	SwapOuts   int64 // pages written out
	SwapIns    int64 // pages read in on demand
	Prefetched int64 // pages brought in by PBS/readahead
	SharedOuts int64
	RemoteOuts int64
	DiskOuts   int64
	SharedIns  int64
	RemoteIns  int64
	SSDOuts    int64
	SSDIns     int64
	DiskIns    int64
	CleanDrops int64 // clean pages dropped without rewrite (swap-cache hit)
	BytesOut   int64 // stored (possibly compressed) bytes written
	BytesIn    int64
	RawOut     int64 // uncompressed bytes represented by BytesOut

	PrefetchHits  int64 // prefetched pages later hit while resident
	PrefetchWaste int64 // prefetched pages evicted before any hit
	Demotions     int64 // pages moved down the tier ladder
	Promotions    int64 // pages moved back up
}

// PrefetchAccuracy is the fraction of issued prefetches that were hit before
// eviction. Zero when nothing was prefetched.
func (s Stats) PrefetchAccuracy() float64 {
	if s.Prefetched == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(s.Prefetched)
}

// PrefetchCoverage is the fraction of backing-store reads that prefetching
// turned into hits: hits / (hits + demand swap-ins).
func (s Stats) PrefetchCoverage() float64 {
	den := s.PrefetchHits + s.SwapIns
	if den == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(den)
}

// Metrics is the engine's instrumentation, bound once at construction so the
// fault path never takes a registry lock. Constructing it on a tree-mounted
// registry pre-declares every family, so an exporter lists them (zeroed)
// before the first fault. All latency observations use simulated time.
type Metrics struct {
	accesses       *metrics.Counter
	hits           *metrics.Counter
	faults         *metrics.Counter
	swapIns        *metrics.Counter
	swapOuts       *metrics.Counter
	prefetched     *metrics.Counter
	prefetchHits   *metrics.Counter
	prefetchWasted *metrics.Counter
	demotions      *metrics.Counter
	promotions     *metrics.Counter
	prefetchDepth  *metrics.Gauge
	residentPages  *metrics.Gauge
	tierPages      [tierCount]*metrics.Gauge
	faultLatency   *metrics.Histogram
	swapOutLatency *metrics.Histogram
}

// NewMetrics binds the swap instrument families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		accesses:       reg.Counter("accesses"),
		hits:           reg.Counter("hits"),
		faults:         reg.Counter("faults"),
		swapIns:        reg.Counter("swap_ins"),
		swapOuts:       reg.Counter("swap_outs"),
		prefetched:     reg.Counter("prefetched"),
		prefetchHits:   reg.Counter("prefetch_hits"),
		prefetchWasted: reg.Counter("prefetch_wasted"),
		demotions:      reg.Counter("tier_demotions"),
		promotions:     reg.Counter("tier_promotions"),
		prefetchDepth:  reg.Gauge("prefetch_depth"),
		residentPages:  reg.Gauge("resident_pages"),
		faultLatency:   reg.Histogram("fault_latency"),
		swapOutLatency: reg.Histogram("swap_out_latency"),
	}
	for t := tierShared; t < tierCount; t++ {
		m.tierPages[t] = reg.Gauge("tier_" + tierNames[t] + "_pages")
	}
	return m
}

// Deps are the devices and disaggregated-memory attachment of one engine.
type Deps struct {
	// VS is the virtual server's LDMC; nil when the system uses neither
	// shared nor remote memory (Linux baseline).
	VS *core.VirtualServer
	// DRAM, Shared, and Disk model the local tiers. DRAM and Disk are
	// required; Shared only when the shared tier is enabled, SSD only when
	// SSDEnabled.
	DRAM   *memdev.DRAM
	Shared *memdev.SharedMem
	SSD    *memdev.SSD
	Disk   *memdev.Disk
	// Metrics mounts the engine's instrumentation; nil means a private
	// registry nothing exports.
	Metrics *Metrics
}

type tier int

const (
	tierShared tier = iota + 1
	tierRemote
	tierSSD
	tierDisk
	// tierRemoteZ is remote memory holding a deflated copy of a batch that
	// was written uncompressed — the third rung of the adaptive ladder. It
	// is appended after the historical tiers so trace annotations of the
	// original four keep their numeric values.
	tierRemoteZ
	tierCount
)

// tierNames label the tiers in metrics families and dmctl top.
var tierNames = [tierCount]string{
	tierShared:  "shared",
	tierRemote:  "remote",
	tierSSD:     "ssd",
	tierDisk:    "disk",
	tierRemoteZ: "remote_deflated",
}

// ladderDown is the adaptive-tiering demotion ladder: local shared memory →
// remote uncompressed → remote deflated → disk file. A batch that is already
// compressed (Config.Compression) skips the deflated rung — deflating twice
// buys nothing. SSD stays outside the ladder; it is XMemPod's static tier.
func (m *Manager) ladderDown(b *batchInfo) (tier, bool) {
	switch b.where {
	case tierShared:
		return tierRemote, true
	case tierRemote:
		if m.cfg.Compression || b.deflated {
			return tierDisk, true
		}
		return tierRemoteZ, true
	case tierRemoteZ:
		return tierDisk, true
	}
	return 0, false
}

// ladderUp is the promotion direction: one rung back towards local memory.
func (m *Manager) ladderUp(b *batchInfo) (tier, bool) {
	switch b.where {
	case tierDisk:
		if b.deflated {
			return tierRemoteZ, true
		}
		return tierRemote, true
	case tierRemoteZ:
		return tierRemote, true
	case tierRemote:
		return tierShared, true
	}
	return 0, false
}

type slotRef struct {
	batch uint64
	slot  int
}

type batchInfo struct {
	id        uint64
	where     tier
	diskOff   int64
	slotPage  []int
	slotOff   []int // offset of each slot within the stored payload
	slotSize  []int // stored (class) size of each slot
	live      []bool
	liveCount int
	total     int // stored payload bytes

	deflated bool  // payload went through the deflated rung's size model
	lastUse  int64 // fault-clock time of creation or last demand fetch
	touches  int   // demand fetches since the last promotion
}

// Manager is one virtual server's swapping system.
type Manager struct {
	cfg   Config
	deps  Deps
	met   *Metrics
	model *compress.Model

	lru      *list.List            // front = most recent
	resident map[int]*list.Element // page -> lru element
	pending  map[int]int           // staged pages -> index in window
	window   []int                 // staged victim pages, in eviction order
	dirty    map[int]bool          // resident pages modified since swap-in
	swapped  map[int]slotRef       // parked copies (kept for clean residents)
	batches  map[uint64]*batchInfo
	nextID   uint64
	diskNext int64
	counter  int64

	det          *prefetch.Detector // Leap stride detector (nil unless enabled)
	prefetchMark map[int]bool       // resident pages brought in by prefetch, unhit
	contHits     int                // prefetch hits since the last stream continuation
	sweepTick    int                // faults since the last demotion sweep
	tierPop      [tierCount]int64   // live parked pages per tier

	stats Stats
}

// NewManager builds an engine. deps.VS may be nil only if both the shared
// and remote tiers are disabled.
func NewManager(cfg Config, deps Deps) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if deps.DRAM == nil || deps.Disk == nil {
		return nil, errors.New("swap: DRAM and Disk devices are required")
	}
	usesShared := cfg.NodeRatio > 0
	if (usesShared || cfg.RemoteEnabled) && deps.VS == nil {
		return nil, errors.New("swap: shared/remote tiers need a virtual server")
	}
	if usesShared && deps.Shared == nil {
		return nil, errors.New("swap: shared tier needs a SharedMem device")
	}
	if cfg.SSDEnabled && deps.SSD == nil {
		return nil, errors.New("swap: SSD tier needs an SSD device")
	}
	met := deps.Metrics
	if met == nil {
		met = NewMetrics(metrics.NewRegistry("swap"))
	}
	if cfg.Tiering {
		if cfg.DemoteAfter <= 0 {
			cfg.DemoteAfter = DefaultDemoteAfter
		}
		if cfg.DemoteEvery <= 0 {
			cfg.DemoteEvery = DefaultDemoteEvery
		}
		if cfg.PromoteTouches <= 0 {
			cfg.PromoteTouches = DefaultPromoteTouches
		}
	}
	m := &Manager{
		cfg:          cfg,
		deps:         deps,
		met:          met,
		lru:          list.New(),
		resident:     map[int]*list.Element{},
		pending:      map[int]int{},
		dirty:        map[int]bool{},
		swapped:      map[int]slotRef{},
		batches:      map[uint64]*batchInfo{},
		prefetchMark: map[int]bool{},
	}
	if cfg.Compression || cfg.Tiering {
		// Tiering needs the size-class model even when swap-outs are stored
		// raw: the deflated rung bins recompressed payloads by class.
		gran := cfg.Granularity
		if gran == nil {
			gran = compress.Four
		}
		model, err := compress.NewModel(gran)
		if err != nil {
			return nil, err
		}
		m.model = model
	}
	if cfg.LeapPrefetch {
		det, err := prefetch.New(prefetch.Config{
			HistorySize:  cfg.PrefetchHistory,
			MinWindow:    cfg.PrefetchMinWindow,
			MaxDepth:     cfg.PrefetchMaxDepth,
			HitStreak:    cfg.PrefetchHitStreak,
			AddressSpace: cfg.AddressSpace,
		})
		if err != nil {
			return nil, err
		}
		m.det = det
		met.prefetchDepth.Set(int64(det.Depth()))
	}
	return m, nil
}

// Name returns the configured system name.
func (m *Manager) Name() string { return m.cfg.Name }

// Stats returns a copy of the engine counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResidentLen reports the current resident-set size (tests).
func (m *Manager) ResidentLen() int { return m.lru.Len() + len(m.pending) }

// TierOccupancy reports live parked pages per tier, keyed by tier name
// ("shared", "remote", "remote_deflated", "ssd", "disk").
func (m *Manager) TierOccupancy() map[string]int64 {
	out := make(map[string]int64, int(tierCount))
	for t := tierShared; t < tierCount; t++ {
		out[tierNames[t]] = m.tierPop[t]
	}
	return out
}

// ParkedPages is the number of live parked page copies across all tiers.
func (m *Manager) ParkedPages() int64 {
	var n int64
	for t := tierShared; t < tierCount; t++ {
		n += m.tierPop[t]
	}
	return n
}

// PrefetchDepth reports the adaptive prefetch depth, zero when Leap is off.
func (m *Manager) PrefetchDepth() int {
	if m.det == nil {
		return 0
	}
	return m.det.Depth()
}

// DetectorStats returns the stride detector's counters (zeroes when off).
func (m *Manager) DetectorStats() prefetch.Stats {
	if m.det == nil {
		return prefetch.Stats{}
	}
	return m.det.Stats()
}

// Touch accesses page (write marks it dirty), charging compute plus whatever
// the memory hierarchy costs. Clean resident pages keep their parked copy —
// the swap cache — so evicting them later costs nothing. ctx must carry the
// calling des.Proc.
func (m *Manager) Touch(ctx context.Context, page int, compute time.Duration, write bool) error {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("swap: context does not carry a des.Proc")
	}
	m.stats.Accesses++
	m.met.accesses.Inc()
	if m.det != nil {
		m.det.Record(page)
	}
	if el, ok := m.resident[page]; ok {
		m.lru.MoveToFront(el)
		m.stats.Hits++
		m.met.hits.Inc()
		if write {
			m.dirty[page] = true
		}
		m.notePrefetchHit(ctx, p, page)
		p.Sleep(compute + m.deps.DRAM.AccessTime(PageSize))
		return nil
	}
	if idx, ok := m.pending[page]; ok {
		// Staged in the send-buffer window: pull it back, no I/O.
		m.unstage(page, idx)
		m.resident[page] = m.lru.PushFront(page)
		m.dirty[page] = true // staged pages were dirty
		m.trim(ctx, p)
		m.stats.Hits++
		m.met.hits.Inc()
		p.Sleep(compute + m.deps.DRAM.AccessTime(PageSize))
		return nil
	}
	m.stats.Faults++
	m.met.faults.Inc()
	ctx, sp := trace.Start(ctx, "swap.fault")
	sp.Annotate("page", page)
	start := p.Now()
	if ref, ok := m.swapped[page]; ok {
		if err := m.swapIn(ctx, p, page, ref); err != nil {
			sp.EndErr(err)
			return err
		}
	} else {
		m.stats.ColdFills++ // first touch: zero-fill
		m.dirty[page] = true
	}
	if write {
		m.dirty[page] = true
	}
	if m.det != nil {
		m.leapPrefetch(ctx, p, page)
	}
	m.insertResident(ctx, p, page)
	m.maybeSweep(ctx, p)
	p.Sleep(compute + m.deps.DRAM.AccessTime(PageSize))
	m.met.faultLatency.Observe(p.Now() - start)
	m.met.residentPages.Set(int64(m.lru.Len()))
	sp.End()
	return nil
}

// notePrefetchHit credits a hit on a prefetched page to the accuracy stats
// and the adaptive depth, and — every half-depth of credited hits — asks the
// detector to continue the stream, so a steady stride keeps the pipeline
// primed without having to fault again at the end of each prediction.
func (m *Manager) notePrefetchHit(ctx context.Context, p *des.Proc, page int) {
	if !m.prefetchMark[page] {
		return
	}
	delete(m.prefetchMark, page)
	m.stats.PrefetchHits++
	m.met.prefetchHits.Inc()
	if m.det == nil {
		return
	}
	m.det.Hit()
	m.met.prefetchDepth.Set(int64(m.det.Depth()))
	m.contHits++
	if m.contHits >= max(1, m.det.Depth()/2) {
		m.contHits = 0
		m.leapPrefetch(ctx, p, page)
	}
}

// noteWaste charges an unused prefetched page evicted from the resident set
// against the accuracy stats and halves the adaptive depth.
func (m *Manager) noteWaste(victim int) {
	if !m.prefetchMark[victim] {
		return
	}
	delete(m.prefetchMark, victim)
	m.stats.PrefetchWaste++
	m.met.prefetchWasted.Inc()
	if m.det != nil {
		m.det.Waste()
		m.met.prefetchDepth.Set(int64(m.det.Depth()))
	}
}

// unstage removes a page from the window.
func (m *Manager) unstage(page, idx int) {
	m.window = append(m.window[:idx], m.window[idx+1:]...)
	delete(m.pending, page)
	for pg, i := range m.pending {
		if i > idx {
			m.pending[pg] = i - 1
		}
	}
}

// insertResident adds page to the LRU (or refreshes it, when a concurrent
// proactive pump already restored it) and trims the resident set.
func (m *Manager) insertResident(ctx context.Context, p *des.Proc, page int) {
	if el, ok := m.resident[page]; ok {
		m.lru.MoveToFront(el)
		return
	}
	m.resident[page] = m.lru.PushFront(page)
	m.trim(ctx, p)
}

// trim evicts LRU victims until the resident set fits. Dirty victims stage
// into the send-buffer window for batch write-out; clean victims still have
// a valid parked copy and are dropped for free (the swap-cache effect).
// Staged pages occupy the send buffer, not the resident set, so they do not
// count against capacity here.
func (m *Manager) trim(ctx context.Context, p *des.Proc) {
	for m.lru.Len() > m.cfg.ResidentPages {
		back := m.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(int)
		m.lru.Remove(back)
		delete(m.resident, victim)
		m.noteWaste(victim)
		if !m.dirty[victim] {
			if _, ok := m.swapped[victim]; ok {
				m.stats.CleanDrops++
				continue
			}
		}
		delete(m.dirty, victim)
		m.pending[victim] = len(m.window)
		m.window = append(m.window, victim)
		m.stats.SwapOuts++
		m.met.swapOuts.Inc()
	}
	if len(m.window) >= m.cfg.Window {
		m.flushWindow(ctx, p)
	}
}

// EvictAll pushes every resident page out to the backing tiers — the cold
// restart scenario of Figure 9 (a server whose working set was entirely
// paged out recovering to peak throughput).
func (m *Manager) EvictAll(ctx context.Context) {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("swap: context does not carry a des.Proc")
	}
	for m.lru.Len() > 0 {
		back := m.lru.Back()
		victim := back.Value.(int)
		m.lru.Remove(back)
		delete(m.resident, victim)
		// A forced cold restart is not the prefetcher's fault: clear marks
		// without charging waste.
		delete(m.prefetchMark, victim)
		if !m.dirty[victim] {
			if _, ok := m.swapped[victim]; ok {
				m.stats.CleanDrops++
				continue
			}
		}
		delete(m.dirty, victim)
		m.pending[victim] = len(m.window)
		m.window = append(m.window, victim)
		m.stats.SwapOuts++
		m.met.swapOuts.Inc()
		if len(m.window) >= m.cfg.Window {
			m.flushWindow(ctx, p)
		}
	}
	m.flushWindow(ctx, p)
	m.met.residentPages.Set(int64(m.lru.Len()))
}

// Flush forces the staging window out (end of run, or single-page systems).
func (m *Manager) Flush(ctx context.Context) {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("swap: context does not carry a des.Proc")
	}
	m.flushWindow(ctx, p)
}

// storedSize returns the stored class for page plus the compression CPU
// charged at swap-out.
func (m *Manager) storedSize(page int) int {
	if !m.cfg.Compression {
		return PageSize
	}
	return m.model.StoredSize(m.cfg.PageRatio(page))
}

// deflatedSize is the class a page occupies on the deflated rung.
func (m *Manager) deflatedSize(page int) int {
	return m.model.StoredSize(m.cfg.PageRatio(page))
}

// flushWindow writes the staged pages as one batch entry to the chosen tier.
func (m *Manager) flushWindow(ctx context.Context, p *des.Proc) {
	if len(m.window) == 0 {
		return
	}
	pages := m.window
	m.window = nil
	for pg := range m.pending {
		delete(m.pending, pg)
	}

	b := &batchInfo{id: m.nextID, lastUse: m.stats.Faults}
	m.nextID++
	off := 0
	for _, pg := range pages {
		size := m.storedSize(pg)
		b.slotPage = append(b.slotPage, pg)
		b.slotOff = append(b.slotOff, off)
		b.slotSize = append(b.slotSize, size)
		b.live = append(b.live, true)
		off += size
	}
	b.liveCount = len(pages)
	b.total = off
	ctx, sp := trace.Start(ctx, "swap.out")
	sp.Annotate("pages", len(pages))
	sp.Annotate("bytes", b.total)
	outStart := p.Now()
	if m.cfg.Compression {
		p.Sleep(time.Duration(len(pages)) * m.cfg.CompressCPU)
	}

	m.writeBatch(ctx, p, b)
	m.noteTier(b.where, len(pages))
	sp.Annotate("tier", int(b.where))
	m.met.swapOutLatency.Observe(p.Now() - outStart)
	sp.End()

	// Drop any stale older copies of these pages and point them at the new
	// batch.
	for i, pg := range pages {
		if old, ok := m.swapped[pg]; ok {
			m.releaseSlot(ctx, old)
		}
		m.swapped[pg] = slotRef{batch: b.id, slot: i}
	}
	m.batches[b.id] = b
	m.stats.BytesOut += int64(b.total)
	m.stats.RawOut += int64(len(pages) * PageSize)
}

// writeBatch places the batch on the first tier in the configured order
// with room, falling back tier by tier and resorting to disk.
func (m *Manager) writeBatch(ctx context.Context, p *des.Proc, b *batchInfo) {
	payload := make([]byte, b.total)
	class := roundClass(b.total)
	for _, t := range m.tierOrder() {
		switch t {
		case tierShared:
			if err := m.deps.VS.PutShared(pagetable.EntryID(b.id), payload, class, len(b.slotPage)*PageSize); err != nil {
				continue
			}
			m.deps.Shared.Move(p, int64(b.total))
			b.where = tierShared
			m.stats.SharedOuts += int64(len(b.slotPage))
			return
		case tierRemote:
			p.Sleep(m.cfg.RemoteOverhead + m.splitCost(b.total))
			if err := m.deps.VS.PutRemote(ctx, pagetable.EntryID(b.id), payload, class, len(b.slotPage)*PageSize); err != nil {
				continue
			}
			b.where = tierRemote
			m.stats.RemoteOuts += int64(len(b.slotPage))
			return
		}
	}
	if m.cfg.SSDEnabled {
		// XMemPod's flash tier: cheaper than the spinning device, capacity
		// assumed ample (flash swap partitions dwarf DRAM).
		b.where = tierSSD
		m.deps.SSD.Transfer(p, int64(b.total))
		m.stats.SSDOuts += int64(len(b.slotPage))
		return
	}
	// Disk is the unconditional last resort (the OS swap device).
	b.where = tierDisk
	b.diskOff = m.diskNext
	m.diskNext += int64(b.total)
	m.deps.Disk.Transfer(p, b.diskOff, int64(b.total))
	m.stats.DiskOuts += int64(len(b.slotPage))
}

// tierOrder applies the node:cluster distribution ratio of §V.A: NodeRatio
// tenths of the swap-out traffic try the shared pool first, the rest goes to
// remote memory.
func (m *Manager) tierOrder() []tier {
	sharedOK := m.cfg.NodeRatio > 0
	remoteOK := m.cfg.RemoteEnabled
	if !sharedOK && !remoteOK {
		return nil
	}
	if !remoteOK {
		return []tier{tierShared}
	}
	if !sharedOK {
		return []tier{tierRemote}
	}
	m.counter++
	if int((m.counter-1)%10) < m.cfg.NodeRatio {
		return []tier{tierShared, tierRemote}
	}
	return []tier{tierRemote, tierShared}
}

// swapIn faults page in from its parked batch, prefetching up to Readahead
// live pages of the same batch in the same request (PBS). Under Leap the
// in-batch readahead is off — the stride detector picks the prefetch set in
// leapPrefetch instead.
func (m *Manager) swapIn(ctx context.Context, p *des.Proc, page int, ref slotRef) (err error) {
	ctx, sp := trace.Start(ctx, "swap.in")
	sp.Annotate("page", page)
	defer func() { sp.EndErr(err) }()
	b, ok := m.batches[ref.batch]
	if !ok || !b.live[ref.slot] {
		return fmt.Errorf("%w: page %d", ErrNoBacking, page)
	}
	// Pick the slots this request brings in: the faulted one plus, under
	// PBS/readahead, the following live slots of the batch.
	slots := []int{ref.slot}
	if m.cfg.Readahead > 1 && m.det == nil {
		// Classic readahead: only slots after the faulted one (batches are
		// laid out in eviction order, so later slots are the pages a scan
		// will touch next); pages already in memory are skipped.
		for s := ref.slot + 1; s < len(b.live) && len(slots) < m.cfg.Readahead; s++ {
			if !b.live[s] {
				continue
			}
			// Skip pages already in memory: their live slots are just the
			// swap cache backing a clean resident copy.
			pg := b.slotPage[s]
			if _, resident := m.resident[pg]; resident {
				continue
			}
			if _, staged := m.pending[pg]; staged {
				continue
			}
			slots = append(slots, s)
		}
	}
	bytes, err := m.readSlots(ctx, p, b, ref.slot, slots)
	if err != nil {
		return err
	}
	m.stats.BytesIn += int64(bytes)
	m.stats.SwapIns++
	m.stats.Prefetched += int64(len(slots) - 1)
	m.met.swapIns.Inc()
	m.met.prefetched.Add(int64(len(slots) - 1))
	sp.Annotate("tier", int(b.where))
	sp.Annotate("slots", len(slots))
	sp.Annotate("prefetched", len(slots)-1)

	// Admit the pages to the resident set as clean copies: their slots stay
	// live in the batch (swap cache), so a later clean eviction is free.
	for _, s := range slots {
		pg := b.slotPage[s]
		delete(m.dirty, pg)
		if s != ref.slot {
			if _, already := m.resident[pg]; already {
				continue // restored concurrently by the proactive pump
			}
			m.resident[pg] = m.lru.PushFront(pg)
			m.prefetchMark[pg] = true
			// Prefetch must not recursively evict: trim happens in
			// insertResident for the faulted page.
		}
	}
	// Hotness: a demand fetch refreshes the batch, and enough of them in a
	// row climb it one rung back up the ladder.
	b.lastUse = m.stats.Faults
	if m.cfg.Tiering {
		b.touches++
		if b.touches >= m.cfg.PromoteTouches {
			b.touches = 0
			m.promote(ctx, p, b)
		}
	}
	return nil
}

// readSlots performs the device and fabric transfers for reading the given
// live slots of batch b from its current tier. anchor is the slot whose
// offset seeds single-slot and disk reads. It returns the stored bytes
// moved; per-request stats (SwapIns vs Prefetched) are the caller's.
func (m *Manager) readSlots(ctx context.Context, p *des.Proc, b *batchInfo, anchor int, slots []int) (int, error) {
	var bytes int
	for _, s := range slots {
		bytes += b.slotSize[s]
	}
	switch b.where {
	case tierShared:
		if len(slots) == 1 {
			if _, err := m.deps.VS.GetAt(ctx, pagetable.EntryID(b.id), b.slotOff[anchor], b.slotSize[anchor]); err != nil {
				return 0, fmt.Errorf("swap: shared read: %w", err)
			}
		} else {
			if _, _, err := m.deps.VS.Get(ctx, pagetable.EntryID(b.id)); err != nil {
				return 0, fmt.Errorf("swap: shared batch read: %w", err)
			}
		}
		m.deps.Shared.Move(p, int64(bytes))
		m.stats.SharedIns += int64(len(slots))
	case tierRemote, tierRemoteZ:
		p.Sleep(m.cfg.RemoteOverhead + m.splitCost(bytes))
		if len(slots) == 1 {
			if _, err := m.deps.VS.GetAt(ctx, pagetable.EntryID(b.id), b.slotOff[anchor], b.slotSize[anchor]); err != nil {
				return 0, fmt.Errorf("swap: remote read: %w", err)
			}
		} else {
			if _, _, err := m.deps.VS.Get(ctx, pagetable.EntryID(b.id)); err != nil {
				return 0, fmt.Errorf("swap: remote batch read: %w", err)
			}
		}
		m.stats.RemoteIns += int64(len(slots))
	case tierSSD:
		m.deps.SSD.Transfer(p, int64(bytes))
		m.stats.SSDIns += int64(len(slots))
	case tierDisk:
		// One seek for the anchor slot; the rest stream sequentially.
		m.deps.Disk.Transfer(p, b.diskOff+int64(b.slotOff[anchor]), int64(bytes))
		m.stats.DiskIns += int64(len(slots))
	default:
		return 0, fmt.Errorf("%w: batch %d in unknown tier", ErrNoBacking, b.id)
	}
	if m.cfg.Compression || b.where == tierRemoteZ {
		p.Sleep(time.Duration(len(slots)) * m.decompressCost())
	}
	return bytes, nil
}

// leapPrefetch asks the stride detector for a trend at page and fetches the
// predicted pages from whatever batches hold them. Unlike PBS's in-batch
// readahead, the prediction crosses batch boundaries: predicted slots are
// grouped per batch in first-predicted order and each group rides one
// request. Fetched pages enter the resident set as clean marked copies, and
// the set is trimmed afterwards so a deep prediction cannot overflow it.
func (m *Manager) leapPrefetch(ctx context.Context, p *des.Proc, page int) {
	preds := m.det.Predict(page)
	if len(preds) == 0 {
		return
	}
	var order []uint64
	groups := map[uint64][]int{}
	for _, pg := range preds {
		if _, ok := m.resident[pg]; ok {
			continue
		}
		if _, ok := m.pending[pg]; ok {
			continue
		}
		ref, ok := m.swapped[pg]
		if !ok {
			continue // never swapped out (or cold): nothing to fetch
		}
		b, ok := m.batches[ref.batch]
		if !ok || !b.live[ref.slot] {
			continue
		}
		if _, seen := groups[ref.batch]; !seen {
			order = append(order, ref.batch)
		}
		groups[ref.batch] = append(groups[ref.batch], ref.slot)
	}
	for _, id := range order {
		b := m.batches[id]
		slots := groups[id]
		pctx, sp := trace.Start(ctx, "swap.prefetch")
		sp.Annotate("trigger", page)
		sp.Annotate("pages", len(slots))
		sp.Annotate("tier", int(b.where))
		bytes, err := m.readSlots(pctx, p, b, slots[0], slots)
		if err != nil {
			sp.EndErr(err)
			continue
		}
		m.stats.BytesIn += int64(bytes)
		m.stats.Prefetched += int64(len(slots))
		m.met.prefetched.Add(int64(len(slots)))
		for _, s := range slots {
			pg := b.slotPage[s]
			delete(m.dirty, pg)
			m.resident[pg] = m.lru.PushFront(pg)
			m.prefetchMark[pg] = true
		}
		sp.End()
	}
	m.trim(ctx, p)
}

// maybeSweep runs the demotion sweep every DemoteEvery faults: batches idle
// longer than DemoteAfter move one rung down the ladder, oldest batch ids
// first, at most demotePerSweep per sweep. The fault counter is the idle
// clock — wall time would break DES determinism, and fault pressure is what
// makes local space precious.
func (m *Manager) maybeSweep(ctx context.Context, p *des.Proc) {
	if !m.cfg.Tiering {
		return
	}
	m.sweepTick++
	if m.sweepTick < m.cfg.DemoteEvery {
		return
	}
	m.sweepTick = 0
	var cold []uint64
	for id, b := range m.batches {
		if b.liveCount == 0 {
			continue
		}
		if _, ok := m.ladderDown(b); !ok {
			continue
		}
		if m.stats.Faults-b.lastUse >= int64(m.cfg.DemoteAfter) {
			cold = append(cold, id)
		}
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	if len(cold) > demotePerSweep {
		cold = cold[:demotePerSweep]
	}
	for _, id := range cold {
		m.demote(ctx, p, m.batches[id])
	}
}

// demote moves a cold batch one rung down the ladder.
func (m *Manager) demote(ctx context.Context, p *des.Proc, b *batchInfo) {
	to, ok := m.ladderDown(b)
	if !ok {
		return
	}
	ctx, sp := trace.Start(ctx, "swap.demote")
	sp.Annotate("batch", int(b.id))
	sp.Annotate("from", int(b.where))
	pages := b.liveCount
	if m.relocate(ctx, p, b, to) {
		m.stats.Demotions += int64(pages)
		m.met.demotions.Add(int64(pages))
		// A fresh rung restarts the idle clock, so the batch descends one
		// rung per DemoteAfter of further cold time instead of free-falling.
		b.lastUse = m.stats.Faults
	}
	sp.Annotate("to", int(b.where))
	sp.End()
}

// promote climbs a hot batch one rung back up the ladder.
func (m *Manager) promote(ctx context.Context, p *des.Proc, b *batchInfo) {
	to, ok := m.ladderUp(b)
	if !ok {
		return
	}
	ctx, sp := trace.Start(ctx, "swap.promote")
	sp.Annotate("batch", int(b.id))
	sp.Annotate("from", int(b.where))
	pages := b.liveCount
	if m.relocate(ctx, p, b, to) && b.where == to {
		m.stats.Promotions += int64(pages)
		m.met.promotions.Add(int64(pages))
	}
	sp.Annotate("to", int(b.where))
	sp.End()
}

// relocate rewrites batch b onto tier `to`, compacting dead slots on the way:
// the surviving payload is re-laid without holes, deflated (or inflated)
// when it crosses the deflated-rung boundary, and every parked ref is
// re-pointed at its new slot. When the target pool has no room the payload
// falls through to the disk rung, which always succeeds. Returns false only
// when the source read failed and the batch was left untouched.
func (m *Manager) relocate(ctx context.Context, p *des.Proc, b *batchInfo, to tier) bool {
	from := b.where
	if from == to {
		return true
	}
	// Read the surviving payload off its current rung.
	var liveBytes int
	for s, ok := range b.live {
		if ok {
			liveBytes += b.slotSize[s]
		}
	}
	switch from {
	case tierShared:
		m.deps.Shared.Move(p, int64(liveBytes))
	case tierRemote, tierRemoteZ:
		p.Sleep(m.cfg.RemoteOverhead + m.splitCost(liveBytes))
		if _, _, err := m.deps.VS.Get(ctx, pagetable.EntryID(b.id)); err != nil {
			return false
		}
	case tierSSD:
		m.deps.SSD.Transfer(p, int64(liveBytes))
	case tierDisk:
		m.deps.Disk.Transfer(p, b.diskOff, int64(liveBytes))
	}

	// Re-class the payload for the target rung and compact dead slots.
	deflated := b.deflated
	pages := b.liveCount
	switch {
	case to == tierRemoteZ && !deflated:
		deflated = true
		p.Sleep(time.Duration(pages) * m.compressCost())
	case to == tierRemote && b.deflated:
		deflated = false
		p.Sleep(time.Duration(pages) * m.decompressCost())
	}
	newPage := make([]int, 0, pages)
	newOff := make([]int, 0, pages)
	newSize := make([]int, 0, pages)
	off := 0
	for s, ok := range b.live {
		if !ok {
			continue
		}
		pg := b.slotPage[s]
		size := m.storedSize(pg)
		if deflated {
			size = m.deflatedSize(pg)
		}
		newPage = append(newPage, pg)
		newOff = append(newOff, off)
		newSize = append(newSize, size)
		off += size
	}

	// Drop the old copy, then park the new one; both share the entry id.
	switch from {
	case tierShared, tierRemote, tierRemoteZ:
		_ = m.deps.VS.Delete(ctx, pagetable.EntryID(b.id))
	}
	payload := make([]byte, off)
	class := roundClass(off)
	wrote := to
	switch to {
	case tierShared:
		if err := m.deps.VS.PutShared(pagetable.EntryID(b.id), payload, class, pages*PageSize); err != nil {
			wrote = tierDisk
		} else {
			m.deps.Shared.Move(p, int64(off))
		}
	case tierRemote, tierRemoteZ:
		p.Sleep(m.cfg.RemoteOverhead + m.splitCost(off))
		if err := m.deps.VS.PutRemote(ctx, pagetable.EntryID(b.id), payload, class, pages*PageSize); err != nil {
			wrote = tierDisk
		}
	}
	if wrote == tierDisk {
		b.diskOff = m.diskNext
		m.diskNext += int64(off)
		m.deps.Disk.Transfer(p, b.diskOff, int64(off))
	}

	m.noteTier(from, -pages)
	m.noteTier(wrote, pages)
	b.where = wrote
	b.deflated = deflated
	b.slotPage = newPage
	b.slotOff = newOff
	b.slotSize = newSize
	b.live = make([]bool, pages)
	for i := range b.live {
		b.live[i] = true
	}
	b.liveCount = pages
	b.total = off
	for i, pg := range newPage {
		m.swapped[pg] = slotRef{batch: b.id, slot: i}
	}
	return true
}

// noteTier moves the per-tier occupancy bookkeeping by delta pages.
func (m *Manager) noteTier(t tier, delta int) {
	m.tierPop[t] += int64(delta)
	m.met.tierPages[t].Add(int64(delta))
}

// compressCost is the per-page deflate CPU: the configured codec cost, or
// the library default when tiering deflates pages in an otherwise
// uncompressed configuration.
func (m *Manager) compressCost() time.Duration {
	if m.cfg.Compression || m.cfg.CompressCPU > 0 {
		return m.cfg.CompressCPU
	}
	return DefaultCompressCPU
}

// decompressCost mirrors compressCost for the inflate direction.
func (m *Manager) decompressCost() time.Duration {
	if m.cfg.Compression || m.cfg.DecompressCPU > 0 {
		return m.cfg.DecompressCPU
	}
	return DefaultDecompressCPU
}

// ProactiveSwapIn restores up to maxPages parked pages without waiting for
// faults — FastSwap's PBS (§IV.H, Figure 9): after memory pressure subsides,
// a background pump streams recently swapped-out batches back in so the
// application recovers to peak throughput instead of paying one fault per
// page. It reads the most recently parked batches first (they approximate
// the hottest data) and stops when the resident set is full. It returns the
// number of pages restored; zero means there is nothing (or no room) left.
//
// Run it from its own simulation process so its transfer time overlaps the
// foreground workload, as the real background thread's would.
func (m *Manager) ProactiveSwapIn(ctx context.Context, maxPages int) int {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("swap: context does not carry a des.Proc")
	}
	restored := 0
	for restored < maxPages {
		room := m.cfg.ResidentPages - m.lru.Len()
		if room <= 0 {
			break
		}
		b := m.newestLiveBatch()
		if b == nil {
			break
		}
		// Snapshot the slots to restore before sleeping: the foreground can
		// fault pages of this batch while the transfer is in flight.
		want := make([]int, 0, b.liveCount)
		var bytes int
		for s := range b.live {
			if !b.live[s] {
				continue
			}
			if _, already := m.resident[b.slotPage[s]]; already {
				continue
			}
			if len(want) >= room || restored+len(want) >= maxPages {
				break
			}
			want = append(want, s)
			bytes += b.slotSize[s]
		}
		if len(want) == 0 {
			break
		}
		switch b.where {
		case tierShared:
			m.deps.Shared.Move(p, int64(bytes))
			m.stats.SharedIns += int64(len(want))
		case tierRemote, tierRemoteZ:
			p.Sleep(m.cfg.RemoteOverhead + m.splitCost(bytes))
			if _, _, err := m.deps.VS.Get(ctx, pagetable.EntryID(b.id)); err != nil {
				return restored
			}
			m.stats.RemoteIns += int64(len(want))
		case tierSSD:
			m.deps.SSD.Transfer(p, int64(bytes))
			m.stats.SSDIns += int64(len(want))
		case tierDisk:
			m.deps.Disk.Transfer(p, b.diskOff, int64(b.total))
			m.stats.DiskIns += int64(len(want))
		}
		if m.cfg.Compression || b.where == tierRemoteZ {
			p.Sleep(time.Duration(len(want)) * m.decompressCost())
		}
		for _, s := range want {
			pg := b.slotPage[s]
			if _, already := m.resident[pg]; already {
				continue // faulted in while we slept
			}
			if m.lru.Len() >= m.cfg.ResidentPages {
				break
			}
			m.resident[pg] = m.lru.PushFront(pg)
			m.prefetchMark[pg] = true
			delete(m.dirty, pg)
			restored++
			m.stats.Prefetched++
		}
		m.stats.BytesIn += int64(bytes)
	}
	return restored
}

// newestLiveBatch returns the most recently created batch that still has a
// live slot whose page is not resident.
func (m *Manager) newestLiveBatch() *batchInfo {
	var best *batchInfo
	for _, b := range m.batches {
		if b.liveCount == 0 {
			continue
		}
		hasWork := false
		for s := range b.live {
			if b.live[s] {
				if _, already := m.resident[b.slotPage[s]]; !already {
					hasWork = true
					break
				}
			}
		}
		if !hasWork {
			continue
		}
		if best == nil || b.id > best.id {
			best = b
		}
	}
	return best
}

// releaseSlot retires one slot of a batch (page rewritten elsewhere).
func (m *Manager) releaseSlot(ctx context.Context, ref slotRef) {
	b, ok := m.batches[ref.batch]
	if !ok || !b.live[ref.slot] {
		return
	}
	b.live[ref.slot] = false
	b.liveCount--
	m.noteTier(b.where, -1)
	if b.liveCount == 0 {
		m.releaseBatch(ctx, b)
	}
}

func (m *Manager) releaseBatch(ctx context.Context, b *batchInfo) {
	delete(m.batches, b.id)
	switch b.where {
	case tierShared, tierRemote, tierRemoteZ:
		_ = m.deps.VS.Delete(ctx, pagetable.EntryID(b.id))
	case tierDisk:
		// Swap-device slots are reused implicitly by the bump allocator's
		// successor batches; nothing to free.
	}
}

// splitCost is the extra time a transfer of n bytes pays when the fabric
// message size caps at MaxMessageBytes: one MessageOverhead per message
// beyond the first.
func (m *Manager) splitCost(n int) time.Duration {
	if m.cfg.MaxMessageBytes <= 0 || n <= m.cfg.MaxMessageBytes {
		return 0
	}
	extra := (n + m.cfg.MaxMessageBytes - 1) / m.cfg.MaxMessageBytes
	return time.Duration(extra-1) * m.cfg.MessageOverhead
}

// roundClass rounds a batch payload up to the next power of two of at least
// one page, bounding allocator fragmentation from odd compressed sizes.
func roundClass(n int) int {
	c := PageSize
	for c < n {
		c *= 2
	}
	return c
}
