package swap

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/metrics"
)

// leapRig builds a Leap manager on a fresh rig.
func leapRig(t *testing.T, resident, space int) (*rig, *Manager) {
	t.Helper()
	r := newRig(t, 8<<20, 8<<20)
	m, err := NewManager(Leap(resident, 5, space, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	return r, m
}

// Repeated sequential scans over a working set twice the resident size: the
// detector locks onto the +1 stride and the second pass onward should be
// largely prefetch-fed.
func TestLeapPrefetchesSequentialStride(t *testing.T) {
	const pages, resident = 512, 256
	r, m := leapRig(t, resident, pages)
	r.drive(t, m, pages, 4)
	st := m.Stats()
	if st.Prefetched == 0 {
		t.Fatal("Leap issued no prefetches on a sequential scan")
	}
	if st.PrefetchHits == 0 {
		t.Fatal("no prefetch hits on a sequential scan")
	}
	if acc := st.PrefetchAccuracy(); acc < 0.5 {
		t.Fatalf("prefetch accuracy %.2f on a pure stride, want >= 0.5 (stats %+v)", acc, st)
	}
	if cov := st.PrefetchCoverage(); cov <= 0 || cov > 1 {
		t.Fatalf("coverage %.2f outside (0,1]", cov)
	}
}

// Leap should serve a strided rescan with far fewer demand swap-ins than the
// prefetch-off engine, and never break accounting: hits+waste <= issued.
func TestLeapReducesDemandSwapIns(t *testing.T) {
	const pages, resident, iters = 512, 256, 4
	r1, leap := leapRig(t, resident, pages)
	r1.drive(t, leap, pages, iters)

	r2 := newRig(t, 8<<20, 8<<20)
	off, err := NewManager(FastSwap(resident, 5, false, flatRatio(2)), r2.deps)
	if err != nil {
		t.Fatal(err)
	}
	r2.drive(t, off, pages, iters)

	ls, os := leap.Stats(), off.Stats()
	if ls.SwapIns >= os.SwapIns {
		t.Fatalf("Leap demand swap-ins %d >= prefetch-off %d", ls.SwapIns, os.SwapIns)
	}
	if ls.PrefetchHits+ls.PrefetchWaste > ls.Prefetched {
		t.Fatalf("hits %d + waste %d > issued %d", ls.PrefetchHits, ls.PrefetchWaste, ls.Prefetched)
	}
}

// An adversarial delta cycle never forms a majority: the detector must stay
// quiet instead of polluting the resident set.
func TestLeapSilentOnAdversarialStride(t *testing.T) {
	const pages, resident = 1024, 128
	r, m := leapRig(t, resident, pages)
	deltas := []int{3, 17, 29, 41} // distinct deltas, no strict majority
	var done time.Duration
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		pg := 0
		for i := 0; i < 4096; i++ {
			pg = (pg + deltas[i%len(deltas)]) % pages
			if err := m.Touch(ctx, pg, time.Microsecond, true); err != nil {
				t.Errorf("Touch: %v", err)
				return
			}
		}
		done = p.Now()
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	_ = done
	if st := m.Stats(); st.Prefetched > st.Faults/10 {
		t.Fatalf("adversarial stride still issued %d prefetches (%d faults)", st.Prefetched, st.Faults)
	}
}

// Fixed trace, fresh engines: stats transcripts must be byte-identical —
// the Leap path has no hidden nondeterminism (DES determinism contract).
func TestLeapDeterministicReplay(t *testing.T) {
	run := func() (Stats, time.Duration) {
		r := newRig(t, 8<<20, 8<<20)
		m, err := NewManager(Tiered(128, 5, 2048, flatRatio(2)), r.deps)
		if err != nil {
			t.Fatal(err)
		}
		var done time.Duration
		r.env.Go("driver", func(p *des.Proc) {
			ctx := des.NewContext(context.Background(), p)
			rng := rand.New(rand.NewSource(42))
			pg := 0
			for i := 0; i < 6000; i++ {
				switch rng.Intn(4) {
				case 0:
					pg = rng.Intn(2048)
				default:
					pg = (pg + 1) % 2048
				}
				if err := m.Touch(ctx, pg, time.Microsecond, rng.Intn(2) == 0); err != nil {
					t.Errorf("Touch: %v", err)
					return
				}
			}
			done = p.Now()
		})
		if err := r.env.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Stats(), done
	}
	s1, d1 := run()
	s2, d2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats differ across replays:\n%+v\n%+v", s1, s2)
	}
	if d1 != d2 {
		t.Fatalf("completion time differs across replays: %v vs %v", d1, d2)
	}
}

// Tiering: a working set that goes cold must sink down the ladder, and the
// per-tier occupancy must always sum to the live parked population.
func TestTieringDemotesColdBatches(t *testing.T) {
	const pages = 1024
	r := newRig(t, 8<<20, 8<<20)
	cfg := Tiered(64, 5, pages, flatRatio(2))
	cfg.DemoteAfter = 64
	cfg.DemoteEvery = 16
	m, err := NewManager(cfg, r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		// Phase 1: write set A out.
		for pg := 0; pg < 256; pg++ {
			_ = m.Touch(ctx, pg, 0, true)
		}
		// Phase 2: hammer set B; A's batches age out and demote.
		for it := 0; it < 8; it++ {
			for pg := 512; pg < 512+256; pg++ {
				_ = m.Touch(ctx, pg, 0, true)
			}
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Demotions == 0 {
		t.Fatalf("no demotions despite a cold working set (stats %+v)", st)
	}
	occ := m.TierOccupancy()
	var sum int64
	for _, n := range occ {
		sum += n
	}
	if sum != m.ParkedPages() {
		t.Fatalf("tier occupancy sums to %d, ParkedPages says %d (%v)", sum, m.ParkedPages(), occ)
	}
	// Cross-check against ground truth: live slots across all batches.
	var live int64
	for _, b := range m.batches {
		live += int64(b.liveCount)
	}
	if sum != live {
		t.Fatalf("tier occupancy %d != live batch slots %d (%v)", sum, live, occ)
	}
	if occ["remote_deflated"]+occ["disk"]+occ["remote"] == 0 {
		t.Fatalf("cold set never left the shared tier: %v", occ)
	}
}

// Re-referencing a demoted batch enough times climbs it back up the ladder.
func TestTieringPromotesOnReReference(t *testing.T) {
	const pages = 1024
	r := newRig(t, 8<<20, 8<<20)
	cfg := Tiered(64, 5, pages, flatRatio(2))
	cfg.DemoteAfter = 64
	cfg.DemoteEvery = 16
	cfg.PromoteTouches = 1
	m, err := NewManager(cfg, r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		for pg := 0; pg < 256; pg++ {
			_ = m.Touch(ctx, pg, 0, true)
		}
		for it := 0; it < 8; it++ { // age set A cold
			for pg := 512; pg < 512+256; pg++ {
				_ = m.Touch(ctx, pg, 0, true)
			}
		}
		for it := 0; it < 4; it++ { // re-reference set A
			for pg := 0; pg < 256; pg++ {
				_ = m.Touch(ctx, pg, 0, false)
			}
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Demotions == 0 || st.Promotions == 0 {
		t.Fatalf("ladder never moved both ways: %+v", st)
	}
}

// The per-tier gauges must flow into the digest plane exactly as the
// engine's own occupancy accounting reports them — this is the end-to-end
// observability assertion of the tier ladder (dmctl top reads the same
// digests).
func TestTierGaugesReachDigestPlane(t *testing.T) {
	const pages = 1024
	r := newRig(t, 8<<20, 8<<20)
	reg := metrics.NewRegistry("swap")
	cfg := Tiered(64, 5, pages, flatRatio(2))
	cfg.DemoteAfter = 64
	cfg.DemoteEvery = 16
	deps := r.deps
	deps.Metrics = NewMetrics(reg)
	m, err := NewManager(cfg, deps)
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		for pg := 0; pg < 256; pg++ {
			_ = m.Touch(ctx, pg, 0, true)
		}
		for it := 0; it < 8; it++ {
			for pg := 512; pg < 512+256; pg++ {
				_ = m.Touch(ctx, pg, 0, true)
			}
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	d := metrics.DigestRegistries(map[string]*metrics.Registry{"swap": reg})
	var sum int64
	for name, occ := range m.TierOccupancy() {
		got, ok := d.Gauges["swap/tier_"+name+"_pages"]
		if !ok {
			t.Fatalf("gauge swap/tier_%s_pages missing from digest (gauges %v)", name, d.Gauges)
		}
		if got != occ {
			t.Fatalf("digest gauge tier_%s_pages = %d, engine occupancy %d", name, got, occ)
		}
		sum += got
	}
	if sum != m.ParkedPages() {
		t.Fatalf("digest tier gauges sum to %d, parked population is %d", sum, m.ParkedPages())
	}
	if d.Counters["swap/tier_demotions"] == 0 {
		t.Fatal("tier_demotions counter missing or zero in digest")
	}
}

// BenchmarkPrefetchLeapScan measures the detector-driven fault path over a
// DRAM+disk engine, keeping cluster setup out of the measurement.
func BenchmarkPrefetchLeapScan(b *testing.B) {
	params := memdev.DefaultParams()
	for i := 0; i < b.N; i++ {
		env := des.NewEnv()
		cfg := Config{
			Name:          "bench-leap",
			ResidentPages: 256,
			Window:        16,
			NodeRatio:     -1,
			Readahead:     1,
			LeapPrefetch:  true,
			AddressSpace:  2048,
		}
		m, err := NewManager(cfg, Deps{DRAM: memdev.NewDRAM(params), Disk: memdev.NewDisk(env, "d", params)})
		if err != nil {
			b.Fatal(err)
		}
		env.Go("driver", func(p *des.Proc) {
			ctx := des.NewContext(context.Background(), p)
			for it := 0; it < 3; it++ {
				for pg := 0; pg < 2048; pg++ {
					if err := m.Touch(ctx, pg, 0, true); err != nil {
						b.Errorf("Touch: %v", err)
						return
					}
				}
			}
		})
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
