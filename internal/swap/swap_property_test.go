package swap

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"godm/internal/des"
)

// TestEngineMatchesModelProperty drives random access traces through every
// system preset and checks the engine against a trivially correct model:
//   - every access returns without error,
//   - page accounting is conserved (resident + staged + swapped covers every
//     page ever touched, with no page in two places),
//   - hits + faults == accesses.
func TestEngineMatchesModelProperty(t *testing.T) {
	type systemCase struct {
		name string
		cfg  func(resident int) Config
	}
	flat := func(int) float64 { return 2.5 }
	systems := []systemCase{
		{"fastswap", func(r int) Config { return FastSwap(r, 9, true, flat) }},
		{"fastswap-rdma", func(r int) Config { return FastSwap(r, 0, false, flat) }},
		{"linux", Linux},
		{"zswap", func(r int) Config { return Zswap(r, flat) }},
		{"infiniswap", Infiniswap},
	}
	for _, sys := range systems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			f := func(seed int64, opsRaw []uint16) bool {
				if len(opsRaw) == 0 {
					return true
				}
				r := newRig(t, 16<<20, 16<<20)
				deps := r.deps
				cfg := sys.cfg(8)
				if cfg.NodeRatio < 0 && !cfg.RemoteEnabled {
					deps = Deps{DRAM: r.deps.DRAM, Disk: r.deps.Disk}
				}
				m, err := NewManager(cfg, deps)
				if err != nil {
					t.Logf("NewManager: %v", err)
					return false
				}
				rng := rand.New(rand.NewSource(seed))
				ok := true
				touched := map[int]bool{}
				r.env.Go("driver", func(p *des.Proc) {
					ctx := des.NewContext(context.Background(), p)
					for _, op := range opsRaw {
						page := int(op) % 64
						write := rng.Intn(2) == 0
						if err := m.Touch(ctx, page, time.Microsecond, write); err != nil {
							t.Logf("Touch(%d): %v", page, err)
							ok = false
							return
						}
						touched[page] = true
					}
				})
				if err := r.env.Run(); err != nil {
					t.Logf("Run: %v", err)
					return false
				}
				if !ok {
					return false
				}
				st := m.Stats()
				if st.Hits+st.Faults != st.Accesses {
					t.Logf("hits %d + faults %d != accesses %d", st.Hits, st.Faults, st.Accesses)
					return false
				}
				if st.Accesses != int64(len(opsRaw)) {
					return false
				}
				// Every touched page is findable somewhere (resident,
				// staged, or swapped); none is double-resident.
				for pg := range touched {
					inResident := false
					if _, ok := m.resident[pg]; ok {
						inResident = true
					}
					_, inPending := m.pending[pg]
					_, inSwapped := m.swapped[pg]
					if !inResident && !inPending && !inSwapped {
						t.Logf("page %d lost", pg)
						return false
					}
					if inResident && inPending {
						t.Logf("page %d in two places", pg)
						return false
					}
				}
				// LRU list and resident map agree.
				if m.lru.Len() != len(m.resident) {
					t.Logf("lru %d != resident %d", m.lru.Len(), len(m.resident))
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestProactiveSwapInRestoresNewestFirst(t *testing.T) {
	r := newRig(t, 32<<20, 32<<20)
	m, err := NewManager(FastSwap(64, 10, false, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		// Touch 64 pages (fills resident), then evict everything.
		for pg := 0; pg < 64; pg++ {
			if err := m.Touch(ctx, pg, 0, true); err != nil {
				t.Errorf("Touch: %v", err)
				return
			}
		}
		m.EvictAll(ctx)
		if m.lru.Len() != 0 {
			t.Errorf("resident = %d after EvictAll", m.lru.Len())
			return
		}
		restored := m.ProactiveSwapIn(ctx, 16)
		if restored != 16 {
			t.Errorf("restored = %d, want 16", restored)
			return
		}
		// The newest batch holds the most recently evicted (MRU) pages:
		// 48..63. All 16 restored pages must come from that range.
		for pg := 48; pg < 64; pg++ {
			if _, ok := m.resident[pg]; !ok {
				t.Errorf("hot page %d not restored", pg)
			}
		}
		// Restored pages are clean: touching them is a hit, and evicting
		// them again costs nothing.
		before := m.Stats().Faults
		if err := m.Touch(ctx, 50, 0, false); err != nil {
			t.Errorf("Touch restored: %v", err)
			return
		}
		if m.Stats().Faults != before {
			t.Error("restored page faulted")
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProactiveSwapInStopsWhenResidentFull(t *testing.T) {
	r := newRig(t, 32<<20, 32<<20)
	m, err := NewManager(FastSwap(8, 10, false, flatRatio(2)), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		for pg := 0; pg < 32; pg++ {
			if err := m.Touch(ctx, pg, 0, true); err != nil {
				t.Errorf("Touch: %v", err)
				return
			}
		}
		// Resident set is full (8 pages): the pump must refuse to evict for
		// the sake of prefetch.
		if n := m.ProactiveSwapIn(ctx, 100); n != 0 {
			t.Errorf("pump restored %d into a full resident set", n)
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMessageSplitCost(t *testing.T) {
	cfg := FastSwap(8, 0, false, flatRatio(2))
	cfg.MaxMessageBytes = 8 << 10
	cfg.MessageOverhead = 3 * time.Microsecond
	r := newRig(t, 16<<20, 16<<20)
	m, err := NewManager(cfg, r.deps)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		bytes int
		want  time.Duration
	}{
		{0, 0},
		{8 << 10, 0},                     // one message
		{16 << 10, 3 * time.Microsecond}, // two messages: one extra
		{64 << 10, 21 * time.Microsecond},
	}
	for _, tt := range tests {
		if got := m.splitCost(tt.bytes); got != tt.want {
			t.Errorf("splitCost(%d) = %v, want %v", tt.bytes, got, tt.want)
		}
	}
	// Unlimited messages never split.
	cfg.MaxMessageBytes = 0
	r2 := newRig(t, 16<<20, 16<<20)
	m2, err := NewManager(cfg, r2.deps)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.splitCost(1 << 30); got != 0 {
		t.Errorf("unlimited splitCost = %v, want 0", got)
	}
}
