package swap

import (
	"time"

	"godm/internal/compress"
)

// Preset constructors for every system in the paper's evaluation. Callers
// pass the resident-set size (the 50%/75% memory configuration) and, where
// relevant, the per-page compressibility function of the workload.

// DefaultWindow is FastSwap's batching window d (pages per RDMA message).
const DefaultWindow = 16

// Block-stack overheads per remote request. NBDX is a raw RDMA block
// device; Infiniswap adds its own remote-slab indirection on top of the
// same stack, which is why the paper measures it slightly behind NBDX.
const (
	NBDXOverhead       = 25 * time.Microsecond
	InfiniswapOverhead = 30 * time.Microsecond
)

// Compression codec costs (LZO-class, §IV.H's four-granularity FastSwap).
const (
	DefaultCompressCPU   = 2 * time.Microsecond
	DefaultDecompressCPU = 1 * time.Microsecond
)

// FastSwap returns the full system: shared+remote tiers at the given
// distribution ratio (10 = FS-SM … 0 = FS-RDMA), 4-granularity compression,
// window batching, and proactive batch swap-in when pbs is set.
func FastSwap(resident, nodeRatio int, pbs bool, pageRatio func(int) float64) Config {
	readahead := 1
	if pbs {
		readahead = DefaultWindow
	}
	name := "FastSwap"
	if !pbs {
		name = "FastSwap-noPBS"
	}
	return Config{
		Name:          name,
		ResidentPages: resident,
		Window:        DefaultWindow,
		NodeRatio:     nodeRatio,
		RemoteEnabled: true,
		Readahead:     readahead,
		Compression:   true,
		Granularity:   compress.Four,
		PageRatio:     pageRatio,
		CompressCPU:   DefaultCompressCPU,
		DecompressCPU: DefaultDecompressCPU,
	}
}

// Leap returns FastSwap with the majority-trend stride prefetcher replacing
// the in-batch PBS readahead: every access feeds the detector, faults fetch
// the detected stride across batch boundaries, and the prefetch depth adapts
// to hit/waste feedback. addressSpace is the workload's page count.
func Leap(resident, nodeRatio, addressSpace int, pageRatio func(int) float64) Config {
	cfg := FastSwap(resident, nodeRatio, false, pageRatio)
	cfg.Name = "FastSwap-Leap"
	cfg.LeapPrefetch = true
	cfg.AddressSpace = addressSpace
	return cfg
}

// Tiered returns the Leap configuration with the adaptive tier ladder on
// top: cold batches sink local → remote → remote-deflated → disk, and
// re-referenced ones climb back. Swap-outs go out raw (hot data should not
// pay decompress on every fault); the ladder deflates batches only once
// they have proven cold, which is when the CPU trade pays off.
func Tiered(resident, nodeRatio, addressSpace int, pageRatio func(int) float64) Config {
	cfg := Leap(resident, nodeRatio, addressSpace, pageRatio)
	cfg.Name = "FastSwap-Tiered"
	cfg.Tiering = true
	cfg.Compression = false
	return cfg
}

// Linux returns the kernel disk-swap baseline: no disaggregated memory,
// swap clustering on write-out and 8-page readahead on fault
// (vm.page-cluster=3).
func Linux(resident int) Config {
	return Config{
		Name:          "Linux",
		ResidentPages: resident,
		Window:        8,
		NodeRatio:     -1,
		RemoteEnabled: false,
		Readahead:     8,
	}
}

// Zswap returns the compressed-RAM-cache baseline: zbud's two effective
// size classes in front of the disk swap device, per-page (no batching),
// no remote memory. The pool capacity is the node's shared pool.
func Zswap(resident int, pageRatio func(int) float64) Config {
	return Config{
		Name:          "Zswap",
		ResidentPages: resident,
		Window:        1,
		NodeRatio:     10,
		RemoteEnabled: false,
		Readahead:     1,
		Compression:   true,
		Granularity:   compress.Two, // zbud: half-page or full page
		PageRatio:     pageRatio,
		CompressCPU:   DefaultCompressCPU,
		DecompressCPU: DefaultDecompressCPU,
	}
}

// Infiniswap returns the remote-paging baseline of [26]: per-page requests
// through an RDMA block device, remote memory with disk fallback, no
// compression, no node-level shared memory, no batching.
func Infiniswap(resident int) Config {
	return Config{
		Name:           "Infiniswap",
		ResidentPages:  resident,
		Window:         1,
		NodeRatio:      -1,
		RemoteEnabled:  true,
		Readahead:      1,
		RemoteOverhead: InfiniswapOverhead,
	}
}

// XMemPod returns the hierarchical hybrid-memory configuration of the
// paper's [36]: FastSwap's shared + remote tiers backed by a local flash
// tier before the spinning swap device, so even cluster-wide memory
// exhaustion degrades to ~100 µs flash accesses rather than milliseconds of
// seeking.
func XMemPod(resident, nodeRatio int, pbs bool, pageRatio func(int) float64) Config {
	cfg := FastSwap(resident, nodeRatio, pbs, pageRatio)
	cfg.Name = "XMemPod"
	cfg.SSDEnabled = true
	return cfg
}

// NBDX returns the raw RDMA block-device baseline FastSwap is built on.
func NBDX(resident int) Config {
	return Config{
		Name:           "NBDX",
		ResidentPages:  resident,
		Window:         1,
		NodeRatio:      -1,
		RemoteEnabled:  true,
		Readahead:      1,
		RemoteOverhead: NBDXOverhead,
	}
}
