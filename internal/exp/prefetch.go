package exp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"godm/internal/des"
	"godm/internal/swap"
	"godm/internal/workload"
)

// Prefetch compares the Leap-style majority-trend prefetcher against
// FastSwap's in-batch readahead (PBS) and against prefetching disabled, on
// the three trace shapes built to separate them: a phase changer, an
// adversarial-stride walk, and a scan-heavy sweep. The tiered ladder runs as
// a fourth row so its demotion/promotion balance is visible next to the flat
// configurations.
func Prefetch(s Scale) (*PrefetchResult, error) {
	res := &PrefetchResult{Pages: s.Pages, Seed: s.Seed}
	resident := s.Pages / 2
	length := prefetchTraceLength(s.Pages)
	flat := func(int) float64 { return 0.5 }
	for _, shape := range workload.ShapeNames() {
		row := PrefetchShape{Shape: shape, Length: length}
		systems := []struct {
			cfg  swap.Config
			dest *PrefetchRun
		}{
			{swap.FastSwap(resident, 0, true, flat), &row.PBS},
			{swap.FastSwap(resident, 0, false, flat), &row.Off},
			{swap.Leap(resident, 0, s.Pages, flat), &row.Leap},
			{swap.Tiered(resident, 0, s.Pages, flat), &row.Tiered},
		}
		for _, sys := range systems {
			run, err := runShape(shape, sys.cfg, s.Pages, length, s.Seed)
			if err != nil {
				return nil, fmt.Errorf("prefetch %s/%s: %w", shape, sys.cfg.Name, err)
			}
			*sys.dest = run
		}
		res.Shapes = append(res.Shapes, row)
	}
	return res, nil
}

// prefetchTraceLength sizes each shape so every phase of the phase changer
// gets several turns and the scan-heavy sweep crosses the space repeatedly.
func prefetchTraceLength(pages int) int {
	length := 8 * pages
	if length < 8192 {
		length = 8192
	}
	return length
}

// runShape builds a fresh testbed + manager for cfg and drives the named
// trace shape through it.
func runShape(shape string, cfg swap.Config, pages, length int, seed int64) (PrefetchRun, error) {
	tb, err := NewTestbed(mlTestbedConfig(pages))
	if err != nil {
		return PrefetchRun{}, err
	}
	deps, err := tb.SwapDeps("vm-" + shape)
	if err != nil {
		return PrefetchRun{}, err
	}
	mgr, err := swap.NewManager(cfg, deps)
	if err != nil {
		return PrefetchRun{}, err
	}
	completion, err := tb.Run("job", func(ctx context.Context, p *des.Proc) error {
		tr := workload.NewShapeTrace(shape, pages, length, seed)
		for {
			a, ok := tr.Next()
			if !ok {
				return nil
			}
			if err := mgr.Touch(ctx, a.Page, a.Compute, a.Write); err != nil {
				return fmt.Errorf("touch page %d: %w", a.Page, err)
			}
		}
	})
	if err != nil {
		return PrefetchRun{}, err
	}
	st := mgr.Stats()
	return PrefetchRun{
		System:     cfg.Name,
		Completion: completion,
		Faults:     st.Faults,
		SwapIns:    st.SwapIns,
		Prefetched: st.Prefetched,
		Accuracy:   st.PrefetchAccuracy(),
		Coverage:   st.PrefetchCoverage(),
		Demotions:  st.Demotions,
		Promotions: st.Promotions,
	}, nil
}

// PrefetchRun is one (shape, system) measurement.
type PrefetchRun struct {
	System     string        `json:"system"`
	Completion time.Duration `json:"completion_ns"`
	Faults     int64         `json:"faults"`
	SwapIns    int64         `json:"swap_ins"`
	Prefetched int64         `json:"prefetched"`
	Accuracy   float64       `json:"accuracy"`
	Coverage   float64       `json:"coverage"`
	Demotions  int64         `json:"demotions,omitempty"`
	Promotions int64         `json:"promotions,omitempty"`
}

// PrefetchShape holds the four systems' runs on one trace shape.
type PrefetchShape struct {
	Shape  string      `json:"shape"`
	Length int         `json:"length"`
	PBS    PrefetchRun `json:"pbs"`
	Off    PrefetchRun `json:"prefetch_off"`
	Leap   PrefetchRun `json:"leap"`
	Tiered PrefetchRun `json:"tiered"`
}

// PrefetchResult is the full experiment output; it marshals directly into
// BENCH_prefetch.json (dmsim -exp prefetch -json BENCH_prefetch.json).
type PrefetchResult struct {
	Pages  int             `json:"pages"`
	Seed   int64           `json:"seed"`
	Shapes []PrefetchShape `json:"shapes"`
}

func (r *PrefetchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-19s %-15s %12s %8s %8s %10s %5s %5s\n",
		"SHAPE", "SYSTEM", "COMPLETION", "FAULTS", "SWAPIN", "PREFETCH", "ACC", "COV")
	for _, sh := range r.Shapes {
		for _, run := range []PrefetchRun{sh.PBS, sh.Off, sh.Leap, sh.Tiered} {
			fmt.Fprintf(&b, "%-19s %-15s %12s %8d %8d %10d %5.2f %5.2f",
				sh.Shape, run.System, run.Completion.Round(time.Microsecond),
				run.Faults, run.SwapIns, run.Prefetched, run.Accuracy, run.Coverage)
			if run.Demotions+run.Promotions > 0 {
				fmt.Fprintf(&b, "  (demote %d promote %d)", run.Demotions, run.Promotions)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
