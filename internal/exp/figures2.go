package exp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"godm/internal/des"
	"godm/internal/kv"
	"godm/internal/memdev"
	"godm/internal/metrics"
	"godm/internal/rdd"
	"godm/internal/swap"
	"godm/internal/workload"
)

// ---------------------------------------------------------------- Figure 8

// Fig8SystemNames is the sweep order of the distribution-ratio experiment.
var Fig8SystemNames = []string{
	"FS-SM", "FS-9:1", "FS-7:3", "FS-5:5", "FS-RDMA", "Infiniswap", "NBDX", "Linux",
}

// Fig8Row is one application's throughput across systems.
type Fig8Row struct {
	Workload string
	// OpsPerSec maps system name to measured throughput.
	OpsPerSec map[string]float64
}

// Fig8Result reproduces "Varying distribution ratio of disaggregated memory
// access": Redis/Memcached/VoltDB throughput under the five FastSwap
// node:cluster ratios and the three baselines, at the 50% configuration.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 runs the sweep.
func Fig8(scale Scale) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, name := range workload.ServerNames() {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Workload: name, OpsPerSec: map[string]float64{}}
		for _, sys := range Fig8SystemNames {
			ops, err := runKVThroughput(prof, sys, scale)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s on %s: %w", name, sys, err)
			}
			row.OpsPerSec[sys] = ops
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// fig8Config maps a system name to its swap configuration.
func fig8Config(sys string, resident int, ratioFn func(int) float64) (swap.Config, error) {
	switch sys {
	case "FS-SM":
		return swap.FastSwap(resident, 10, false, ratioFn), nil
	case "FS-9:1":
		return swap.FastSwap(resident, 9, false, ratioFn), nil
	case "FS-7:3":
		return swap.FastSwap(resident, 7, false, ratioFn), nil
	case "FS-5:5":
		return swap.FastSwap(resident, 5, false, ratioFn), nil
	case "FS-RDMA":
		return swap.FastSwap(resident, 0, false, ratioFn), nil
	case "Infiniswap":
		return swap.Infiniswap(resident), nil
	case "NBDX":
		return swap.NBDX(resident), nil
	case "Linux":
		return swap.Linux(resident), nil
	default:
		return swap.Config{}, fmt.Errorf("unknown system %q", sys)
	}
}

// runKVThroughput populates a server at the 50% configuration and measures
// steady-state operation throughput.
func runKVThroughput(prof workload.Profile, sys string, scale Scale) (float64, error) {
	resident := scale.Pages / 2
	ratioFn := func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) }
	cfg, err := fig8Config(sys, resident, ratioFn)
	if err != nil {
		return 0, err
	}
	tb, err := NewTestbed(mlTestbedConfig(scale.Pages))
	if err != nil {
		return 0, err
	}
	deps, err := tb.SwapDeps("kv-" + prof.Name)
	if err != nil {
		return 0, err
	}
	if cfg.NodeRatio < 0 && !cfg.RemoteEnabled {
		deps.VS = nil
	}
	mgr, err := swap.NewManager(cfg, deps)
	if err != nil {
		return 0, err
	}
	srv, err := kv.NewServer(prof, mgr, scale.Pages, 100*time.Millisecond)
	if err != nil {
		return 0, err
	}
	var opsStart, opsEnd time.Duration
	_, err = tb.Run("kv", func(ctx context.Context, p *des.Proc) error {
		if err := srv.Populate(ctx, 64); err != nil {
			return err
		}
		opsStart = p.Now()
		if err := srv.RunOps(ctx, scale.KVOps, scale.Seed); err != nil {
			return err
		}
		opsEnd = p.Now()
		return nil
	})
	if err != nil {
		return 0, err
	}
	elapsed := opsEnd - opsStart
	if elapsed <= 0 {
		return 0, fmt.Errorf("no elapsed time")
	}
	return float64(scale.KVOps) / elapsed.Seconds(), nil
}

// String renders the figure.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: server throughput (ops/sec) across distribution ratios, 50%% config\n")
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, sys := range Fig8SystemNames {
		fmt.Fprintf(&b, " %11s", sys)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s", row.Workload)
		for _, sys := range Fig8SystemNames {
			fmt.Fprintf(&b, " %11.0f", row.OpsPerSec[sys])
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s: FS-SM/Linux = %.0fx, FS-RDMA/Infiniswap = %.1fx, FS-RDMA/NBDX = %.1fx\n",
			row.Workload,
			row.OpsPerSec["FS-SM"]/row.OpsPerSec["Linux"],
			row.OpsPerSec["FS-RDMA"]/row.OpsPerSec["Infiniswap"],
			row.OpsPerSec["FS-RDMA"]/row.OpsPerSec["NBDX"])
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Series is one system's throughput recovery curve.
type Fig9Series struct {
	System string
	Points []metrics.Point
	// RecoverySeconds is the time until throughput first reaches 90% of the
	// curve's final plateau; -1 if never.
	RecoverySeconds float64
	// PeakFraction is the last window's throughput relative to the best
	// window (how fully the system recovered within the experiment).
	PeakFraction float64
}

// Fig9Result reproduces the Memcached ETC recovery experiment: after a cold
// restart with the heap fully paged out, FastSwap with the proactive batch
// swap-in pump recovers to peak almost immediately, FastSwap without PBS
// takes much longer, and Infiniswap is still below peak at the end of the
// measurement window.
type Fig9Result struct {
	Series []Fig9Series
}

// Fig9 runs the recovery curves.
func Fig9(scale Scale) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, sys := range []string{"FastSwap+PBS", "FastSwap-noPBS", "Infiniswap"} {
		s, err := runFig9System(sys, scale)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", sys, err)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func runFig9System(sys string, scale Scale) (Fig9Series, error) {
	prof, err := workload.ByName("Memcached")
	if err != nil {
		return Fig9Series{}, err
	}
	// The recovery dynamics need a heap whose full restore spans many
	// throughput windows: double the standard working set and flatten the
	// key skew so most pages participate.
	pages := scale.Pages * 2
	prof.ZipfS = 1.01
	resident := pages / 2
	ratioFn := func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) }
	var cfg swap.Config
	pump := false
	switch sys {
	case "FastSwap+PBS":
		cfg = swap.FastSwap(resident, 5, false, ratioFn)
		pump = true
	case "FastSwap-noPBS":
		cfg = swap.FastSwap(resident, 5, false, ratioFn)
	case "Infiniswap":
		cfg = swap.Infiniswap(resident)
	default:
		return Fig9Series{}, fmt.Errorf("unknown system %q", sys)
	}
	tb, err := NewTestbed(mlTestbedConfig(pages))
	if err != nil {
		return Fig9Series{}, err
	}
	deps, err := tb.SwapDeps("mc")
	if err != nil {
		return Fig9Series{}, err
	}
	mgr, err := swap.NewManager(cfg, deps)
	if err != nil {
		return Fig9Series{}, err
	}
	measureFor := scale.Fig9Window
	if measureFor <= 0 {
		// Auto-size: roughly 5x the fault-driven restore time of the heap.
		measureFor = time.Duration(pages) * 30 * time.Microsecond
	}
	window := measureFor / 40
	if window <= 0 {
		window = time.Millisecond
	}
	srv, err := kv.NewServer(prof, mgr, pages, window)
	if err != nil {
		return Fig9Series{}, err
	}
	done := false
	restarted := false
	if pump {
		tb.Env.Go("pbs-pump", func(p *des.Proc) {
			ctx := des.NewContext(context.Background(), p)
			for !done {
				if !restarted {
					p.Sleep(window / 4)
					continue
				}
				if mgr.ProactiveSwapIn(ctx, 256) == 0 {
					p.Sleep(window)
				}
			}
		})
	}
	var measureStart time.Duration
	_, err = tb.Run("mc", func(ctx context.Context, p *des.Proc) error {
		defer func() { done = true }()
		if err := srv.Populate(ctx, 64); err != nil {
			return err
		}
		// Warm up with live traffic so the LRU order reflects key hotness
		// (the pre-restart server was serving this workload); then page the
		// whole heap out, as after the paging storm of Figure 9.
		if err := srv.RunOps(ctx, pages*4, scale.Seed+1); err != nil {
			return err
		}
		srv.ColdRestart(ctx)
		restarted = true
		measureStart = p.Now()
		_, err := srv.RunFor(ctx, measureFor, scale.Seed)
		return err
	})
	if err != nil {
		return Fig9Series{}, err
	}
	// Trim the series to the measurement window and drop the final bucket,
	// which the deadline truncates.
	var pts []metrics.Point
	for _, pt := range srv.Throughput() {
		if pt.Start >= measureStart {
			pts = append(pts, metrics.Point{Start: pt.Start - measureStart, Rate: pt.Rate})
		}
	}
	if len(pts) > 1 {
		pts = pts[:len(pts)-1]
	}
	return Fig9Series{
		System:          sys,
		Points:          pts,
		RecoverySeconds: recoveryTime(pts),
		PeakFraction:    peakFraction(pts),
	}, nil
}

// recoveryTime returns seconds until the rate first reaches 90% of the
// plateau (the mean of the final quarter of the series).
func recoveryTime(pts []metrics.Point) float64 {
	if len(pts) == 0 {
		return -1
	}
	plateau := 0.0
	tail := pts[len(pts)*3/4:]
	for _, pt := range tail {
		plateau += pt.Rate
	}
	plateau /= float64(len(tail))
	target := plateau * 0.9
	for _, pt := range pts {
		if pt.Rate >= target {
			return pt.Start.Seconds()
		}
	}
	return -1
}

// peakFraction is the final window's rate over the best window's rate.
func peakFraction(pts []metrics.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	best := 0.0
	for _, pt := range pts {
		if pt.Rate > best {
			best = pt.Rate
		}
	}
	if best == 0 {
		return 0
	}
	return pts[len(pts)-1].Rate / best
}

// String renders the curves.
func (r *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: Memcached ETC throughput recovery after cold restart\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-16s recovery to 90%% plateau: %6.2fs  final/peak: %4.0f%%\n",
			s.System, s.RecoverySeconds, s.PeakFraction*100)
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %s:", s.System)
		for i, pt := range s.Points {
			if i%4 == 0 {
				fmt.Fprintf(&b, " %.0f", pt.Rate)
			}
		}
		fmt.Fprintf(&b, " ops/s\n")
	}
	return b.String()
}

// --------------------------------------------------------------- Figure 10

// Fig10Row is one (application, dataset size) speedup measurement.
type Fig10Row struct {
	Workload string
	Dataset  string // small / medium / large
	Vanilla  time.Duration
	DAHI     time.Duration
	Speedup  float64
}

// Fig10Result reproduces "Vanilla Spark v.s. DAHI powered Spark": iterative
// jobs over three dataset categories; small fits executor memory fully,
// medium and large cache only partially.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 runs the comparison.
func Fig10(scale Scale) (*Fig10Result, error) {
	jobs := []string{"LogisticRegression", "SVM", "KMeans", "ConnectedComponents"}
	// Executor memory in pages; dataset sizes relative to it.
	memPages := scale.Pages / 2
	datasets := []struct {
		label      string
		totalPages int
	}{
		{"small", memPages / 2},
		{"medium", memPages * 2},
		{"large", memPages * 4},
	}
	res := &Fig10Result{}
	for _, name := range jobs {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, ds := range datasets {
			partitions := 32
			pagesPer := ds.totalPages / partitions
			if pagesPer < 1 {
				pagesPer = 1
			}
			// ML jobs iterate many times; the first pass (which must read the
			// input from stable storage either way) amortizes away.
			iters := scale.Iters * 3
			tVanilla, err := runRDDJob(rdd.ModeVanilla, prof, memPages, partitions, pagesPer, iters)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %s vanilla: %w", name, ds.label, err)
			}
			tDAHI, err := runRDDJob(rdd.ModeDAHI, prof, memPages, partitions, pagesPer, iters)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %s dahi: %w", name, ds.label, err)
			}
			res.Rows = append(res.Rows, Fig10Row{
				Workload: name,
				Dataset:  ds.label,
				Vanilla:  tVanilla,
				DAHI:     tDAHI,
				Speedup:  float64(tVanilla) / float64(tDAHI),
			})
		}
	}
	return res, nil
}

func runRDDJob(mode rdd.Mode, prof workload.Profile, memPages, partitions, pagesPer, iters int) (time.Duration, error) {
	totalBytes := int64(partitions*pagesPer) * rdd.PageSize
	tb, err := NewTestbed(TestbedConfig{
		NodeCount:       4,
		SharedPoolBytes: totalBytes/2 + 1<<20,
		RecvPoolBytes:   alignMiB(totalBytes + 1<<20),
	})
	if err != nil {
		return 0, err
	}
	execCfg := rdd.ExecutorConfig{
		Name:     "exec-" + prof.Name,
		Mode:     mode,
		MemPages: memPages,
		DRAM:     tb.DRAM,
		Disk:     memdev.NewDisk(tb.Env, "hdfs-"+prof.Name, tb.Params),
	}
	if mode == rdd.ModeDAHI {
		vs, err := tb.Nodes[0].AddServer("exec-"+prof.Name, 0)
		if err != nil {
			return 0, err
		}
		execCfg.VS = vs
		execCfg.SHM = tb.SHM
	}
	exec, err := rdd.NewExecutor(execCfg)
	if err != nil {
		return 0, err
	}
	return tb.Run("job", func(ctx context.Context, p *des.Proc) error {
		eng := rdd.NewEngine(exec)
		src, err := eng.TextFile(partitions, pagesPer)
		if err != nil {
			return err
		}
		// Parse and featurize before caching — the lineage vanilla Spark
		// re-executes for every partition that did not fit in memory.
		data := src.Map(prof.ComputePerPage).Map(prof.ComputePerPage).Cache()
		for i := 0; i < iters; i++ {
			if _, err := data.Map(prof.ComputePerPage).Count(ctx); err != nil {
				return err
			}
		}
		return nil
	})
}

// String renders the figure.
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: vanilla Spark vs DAHI (iterative jobs)\n")
	fmt.Fprintf(&b, "%-22s %-8s %14s %14s %9s\n", "workload", "dataset", "vanilla", "DAHI", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %-8s %14v %14v %8.2fx\n", row.Workload, row.Dataset,
			row.Vanilla.Round(time.Microsecond), row.DAHI.Round(time.Microsecond), row.Speedup)
	}
	return b.String()
}
