package exp

import (
	"fmt"
	"strings"
	"time"

	"godm/internal/memdev"
	"godm/internal/swap"
	"godm/internal/workload"
)

// XMemPodRow is one memory-exhaustion severity point.
type XMemPodRow struct {
	// PoolFraction is the fast-tier capacity as a fraction of the working
	// set (lower = more severe exhaustion).
	PoolFraction float64
	FastSwap     time.Duration // disk-backed hierarchy
	XMemPod      time.Duration // SSD-backed hierarchy ([36])
	Speedup      float64
}

// XMemPodResult is an extension experiment for the paper's §VI discussion
// and its XMemPod citation [36]: when both the node's shared pool and the
// cluster's remote memory are exhausted, a hierarchy that degrades to a
// flash tier keeps the penalty at ~100 µs instead of milliseconds of disk
// seeking. The sweep tightens the fast-tier capacity to show where the
// flash tier starts to matter.
type XMemPodResult struct {
	Rows []XMemPodRow
}

// XMemPod runs the sweep.
func XMemPod(scale Scale) (*XMemPodResult, error) {
	prof, err := workload.ByName("KMeans")
	if err != nil {
		return nil, err
	}
	resident := scale.Pages / 2
	res := &XMemPodResult{}
	const xpSlab = 128 << 10
	for _, frac := range []float64{1.0, 0.25, 0.125, 0.0625} {
		// frac 1.0 is the amply provisioned baseline (4x the working set,
		// covering swap-cache pinning and allocator classing); lower
		// fractions tighten toward exhaustion.
		// Per-node pool size; the cluster's total fast tier is ~4x this
		// (one shared pool + three donors).
		bytes := int64(frac * float64(scale.Pages) * swap.PageSize)
		bytes = (bytes + xpSlab - 1) / xpSlab * xpSlab
		tbCfg := TestbedConfig{NodeCount: 4, SharedPoolBytes: bytes, RecvPoolBytes: bytes, SlabSize: xpSlab}
		ratioFn := func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) }

		runOne := func(ssd bool) (time.Duration, error) {
			tb, err := NewTestbed(tbCfg)
			if err != nil {
				return 0, err
			}
			deps, err := tb.SwapDeps("vm")
			if err != nil {
				return 0, err
			}
			cfg := swap.FastSwap(resident, 9, true, ratioFn)
			if ssd {
				deps.SSD = memdev.NewSSD(tb.Env, "flash", tb.Params)
				cfg = swap.XMemPod(resident, 9, true, ratioFn)
			}
			mgr, err := swap.NewManager(cfg, deps)
			if err != nil {
				return 0, err
			}
			return driveTrace(tb, mgr, prof, scale.Pages, scale.Iters, scale.Seed)
		}
		tFS, err := runOne(false)
		if err != nil {
			return nil, fmt.Errorf("xmempod frac %v fastswap: %w", frac, err)
		}
		tXP, err := runOne(true)
		if err != nil {
			return nil, fmt.Errorf("xmempod frac %v xmempod: %w", frac, err)
		}
		res.Rows = append(res.Rows, XMemPodRow{
			PoolFraction: frac,
			FastSwap:     tFS,
			XMemPod:      tXP,
			Speedup:      float64(tFS) / float64(tXP),
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *XMemPodResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension [36]: XMemPod flash tier under memory exhaustion\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %9s\n", "fast-tier", "FastSwap+disk", "XMemPod+SSD", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.0f%% %14v %14v %8.2fx\n", row.PoolFraction*100,
			row.FastSwap.Round(time.Microsecond), row.XMemPod.Round(time.Microsecond), row.Speedup)
	}
	return b.String()
}
