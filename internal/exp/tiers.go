package exp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"godm/internal/des"
	"godm/internal/memdev"
)

// TierRow is one rung of the memory hierarchy.
type TierRow struct {
	Tier    string
	Latency time.Duration // measured 4 KB access on the simulated testbed
}

// TiersResult quantifies the §VI discussion: the latency ladder from local
// DRAM through the node-coordinated shared pool and RDMA remote memory to
// flash and spinning disk — the gap structure that makes disaggregated
// memory a worthwhile tier at all.
type TiersResult struct {
	Rows []TierRow
}

// Tiers measures one 4 KB access at every tier of a live testbed.
func Tiers() (*TiersResult, error) {
	tb, err := NewTestbed(TestbedConfig{NodeCount: 2})
	if err != nil {
		return nil, err
	}
	vs, err := tb.Nodes[0].AddServer("probe", 0)
	if err != nil {
		return nil, err
	}
	ssd := memdev.NewSSD(tb.Env, "probe", tb.Params)
	disk := memdev.NewDisk(tb.Env, "probe", tb.Params)
	res := &TiersResult{}
	page := make([]byte, 4096)
	_, err = tb.Run("probe", func(ctx context.Context, p *des.Proc) error {
		measure := func(tier string, fn func() error) error {
			start := p.Now()
			if err := fn(); err != nil {
				return fmt.Errorf("%s: %w", tier, err)
			}
			res.Rows = append(res.Rows, TierRow{Tier: tier, Latency: p.Now() - start})
			return nil
		}
		if err := measure("local DRAM", func() error {
			tb.DRAM.Access(p, 4096)
			return nil
		}); err != nil {
			return err
		}
		if err := measure("shared memory pool", func() error {
			tb.SHM.Move(p, 4096)
			return nil
		}); err != nil {
			return err
		}
		if err := vs.PutShared(1, page, 4096, 4096); err != nil {
			return err
		}
		if err := vs.PutRemote(ctx, 2, page, 4096, 4096); err != nil {
			return err
		}
		if err := measure("remote memory (RDMA)", func() error {
			_, err := vs.GetAt(ctx, 2, 0, 4096)
			return err
		}); err != nil {
			return err
		}
		if err := measure("SSD / NVM", func() error {
			ssd.Transfer(p, 4096)
			return nil
		}); err != nil {
			return err
		}
		disk.Transfer(p, 0, 4096) // prime the head position
		if err := measure("disk (sequential)", func() error {
			disk.Transfer(p, 4096, 4096)
			return nil
		}); err != nil {
			return err
		}
		return measure("disk (random seek)", func() error {
			disk.Transfer(p, 1<<30, 4096)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the ladder.
func (r *TiersResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§VI: memory hierarchy, measured 4 KB access on the simulated testbed\n")
	base := time.Duration(0)
	for _, row := range r.Rows {
		if base == 0 {
			base = row.Latency
		}
		fmt.Fprintf(&b, "%-22s %12v  (%8.0fx DRAM)\n", row.Tier,
			row.Latency.Round(10*time.Nanosecond), float64(row.Latency)/float64(base))
	}
	return b.String()
}
