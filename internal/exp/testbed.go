// Package exp reproduces every table and figure of the paper's evaluation
// (§V) on the simulated testbed: a 32-machine 56 Gbps InfiniBand cluster
// scaled down so each experiment completes in seconds of wall-clock time.
// Each experiment constructs fresh clusters per system under test, drives
// the Table-1 workloads through them, and returns a structured result that
// renders as the rows/series the paper reports.
//
// Absolute numbers are simulated; the experiments are judged on shape —
// which system wins, by roughly what factor, and where the crossovers fall —
// as recorded in EXPERIMENTS.md.
package exp

import (
	"context"
	"fmt"
	"time"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/simnet"
	"godm/internal/swap"
	"godm/internal/transport"
	"godm/internal/workload"
)

// Scale sets the size of every experiment. The defaults run the full suite
// in well under a minute; multiply Pages and Iters for higher fidelity.
type Scale struct {
	// Pages is the per-VM working set in 4 KiB pages.
	Pages int
	// Iters is the iteration count for ML jobs.
	Iters int
	// KVOps is the operation count for server throughput runs.
	KVOps int
	// Fig9Window is the simulated duration of the recovery experiment.
	Fig9Window time.Duration
	// Seed fixes all randomness.
	Seed int64
}

// DefaultScale returns the CI-friendly configuration.
func DefaultScale() Scale {
	return Scale{
		Pages:      2048,
		Iters:      3,
		KVOps:      20000,
		Fig9Window: 0, // auto-sized from the heap
		Seed:       1,
	}
}

// Testbed is one simulated cluster instance. Experiments create a fresh
// testbed per system run so no state leaks between measurements.
type Testbed struct {
	Env    *des.Env
	Fabric *simnet.Fabric
	Dir    *cluster.Directory
	Nodes  []*core.Node
	Params memdev.Params
	DRAM   *memdev.DRAM
	SHM    *memdev.SharedMem
}

// TestbedConfig shapes a testbed.
type TestbedConfig struct {
	// NodeCount is the cluster size (default 4: one host + 3 remote peers,
	// enough for triple replication).
	NodeCount int
	// SharedPoolBytes and RecvPoolBytes size each node's pools.
	SharedPoolBytes int64
	RecvPoolBytes   int64
	// ReplicationFactor for remote entries (default 1, matching the
	// FastSwap prototype; the fault-tolerance experiments use 3).
	ReplicationFactor int
	// Durability selects the remote durability policy ("rf3", "rs4.2");
	// empty keeps ReplicationFactor full copies.
	Durability string
	// SlabSize is the pool registration granularity (default 1 MiB).
	SlabSize int
}

// NewTestbed builds a cluster.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.NodeCount == 0 {
		cfg.NodeCount = 4
	}
	if cfg.SharedPoolBytes == 0 {
		cfg.SharedPoolBytes = 64 << 20
	}
	if cfg.RecvPoolBytes == 0 {
		cfg.RecvPoolBytes = 64 << 20
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.SlabSize == 0 {
		cfg.SlabSize = 1 << 20
	}
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: cfg.NodeCount, HeartbeatTimeout: 3})
	if err != nil {
		return nil, err
	}
	params := memdev.DefaultParams()
	tb := &Testbed{
		Env:    env,
		Fabric: fabric,
		Dir:    dir,
		Params: params,
		DRAM:   memdev.NewDRAM(params),
		SHM:    memdev.NewSharedMem(params),
	}
	for i := 1; i <= cfg.NodeCount; i++ {
		ep, err := fabric.Attach(transport.NodeID(i))
		if err != nil {
			return nil, err
		}
		node, err := core.NewNode(core.Config{
			ID:                transport.NodeID(i),
			SharedPoolBytes:   cfg.SharedPoolBytes,
			SendPoolBytes:     16 << 20,
			RecvPoolBytes:     cfg.RecvPoolBytes,
			SlabSize:          cfg.SlabSize,
			ReplicationFactor: cfg.ReplicationFactor,
			Durability:        cfg.Durability,
		}, ep, dir)
		if err != nil {
			return nil, err
		}
		tb.Nodes = append(tb.Nodes, node)
	}
	return tb, nil
}

// SwapDeps wires a swap.Deps for a fresh virtual server named name on node 1
// with its own swap disk.
func (tb *Testbed) SwapDeps(name string) (swap.Deps, error) {
	vs, err := tb.Nodes[0].AddServer(name, 0)
	if err != nil {
		return swap.Deps{}, err
	}
	return swap.Deps{
		VS:     vs,
		DRAM:   tb.DRAM,
		Shared: tb.SHM,
		Disk:   memdev.NewDisk(tb.Env, name+".swap", tb.Params),
	}, nil
}

// Run executes body as a single simulation process and drives the
// simulation to completion, returning the process's finish time.
func (tb *Testbed) Run(name string, body func(ctx context.Context, p *des.Proc) error) (time.Duration, error) {
	var finish time.Duration
	var bodyErr error
	tb.Env.Go(name, func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		bodyErr = body(ctx, p)
		finish = p.Now()
	})
	if err := tb.Env.Run(); err != nil {
		return 0, err
	}
	if bodyErr != nil {
		return 0, bodyErr
	}
	return finish, nil
}

// runMLCompletion builds a fresh testbed + manager for cfg, drives the
// workload's ML trace through it, and returns the job completion time.
func runMLCompletion(prof workload.Profile, cfg swap.Config, tbCfg TestbedConfig, pages, iters int, seed int64) (time.Duration, swap.Stats, error) {
	tb, err := NewTestbed(tbCfg)
	if err != nil {
		return 0, swap.Stats{}, err
	}
	deps, err := tb.SwapDeps("vm-" + prof.Name)
	if err != nil {
		return 0, swap.Stats{}, err
	}
	if cfg.NodeRatio < 0 && !cfg.RemoteEnabled {
		deps.VS = nil // Linux-class system: no disaggregated memory
	}
	mgr, err := swap.NewManager(cfg, deps)
	if err != nil {
		return 0, swap.Stats{}, err
	}
	completion, err := driveTrace(tb, mgr, prof, pages, iters, seed)
	if err != nil {
		return 0, swap.Stats{}, err
	}
	return completion, mgr.Stats(), nil
}

// driveTrace runs a workload's ML trace through mgr on tb, returning the
// simulated completion time.
func driveTrace(tb *Testbed, mgr *swap.Manager, prof workload.Profile, pages, iters int, seed int64) (time.Duration, error) {
	return tb.Run("job", func(ctx context.Context, p *des.Proc) error {
		tr := workload.NewMLTrace(prof, pages, iters, seed)
		for {
			a, ok := tr.Next()
			if !ok {
				return nil
			}
			if err := mgr.Touch(ctx, a.Page, a.Compute, a.Write); err != nil {
				return fmt.Errorf("touch page %d: %w", a.Page, err)
			}
		}
	})
}

// mlTestbedConfig sizes pools so a 50% configuration's overflow fits the
// disaggregated tiers (the paper provisions the cluster's idle memory to
// absorb it).
func mlTestbedConfig(pages int) TestbedConfig {
	// 4x headroom: the swap cache keeps clean pages' parked copies live, and
	// slab pools dedicate whole slabs to each size class.
	bytes := alignMiB(4 * int64(pages) * swap.PageSize)
	return TestbedConfig{
		NodeCount:       4,
		SharedPoolBytes: bytes, // generous: FS-SM parks the full overflow
		RecvPoolBytes:   bytes,
	}
}

// alignMiB rounds n up to the 1 MiB slab granularity.
func alignMiB(n int64) int64 {
	const mib = 1 << 20
	if n < mib {
		return mib
	}
	return (n + mib - 1) / mib * mib
}
