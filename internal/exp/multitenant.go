package exp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/swap"
	"godm/internal/workload"
)

// MultiTenantResult reproduces the paper's §I motivating scenario: several
// virtual servers on one node with imbalanced memory demand. A pressured
// tenant next to idle neighbours runs at shared-memory speed on their
// donations; without disaggregation the same tenant thrashes on disk even
// though idle memory sits centimetres away. A second pressured tenant
// sharing the same copy engine then quantifies the interference cost —
// which stays negligible precisely because microsecond-class page moves
// leave the tenants compute-bound.
type MultiTenantResult struct {
	// LinuxAlone is the pressured tenant on plain disk swap (idle
	// neighbours cannot help).
	LinuxAlone time.Duration
	// SharedAlone is the same tenant using the neighbours' donated shared
	// pool (FS-SM).
	SharedAlone time.Duration
	// SharedContended is the tenant's completion when a second pressured
	// tenant swaps against the same pool, disks, and fabric concurrently.
	SharedContended time.Duration
	// IdleMemoryUsed is the donated memory the tenant actually borrowed.
	IdleMemoryUsed int64
}

// MultiTenant runs the three configurations.
func MultiTenant(scale Scale) (*MultiTenantResult, error) {
	prof, err := workload.ByName("LogisticRegression")
	if err != nil {
		return nil, err
	}
	resident := scale.Pages / 2
	ratioFn := func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) }
	res := &MultiTenantResult{}

	// Baseline: no disaggregation — the pressured tenant swaps to disk.
	linux, _, err := runMLCompletion(prof, swap.Linux(resident), mlTestbedConfig(scale.Pages), scale.Pages, scale.Iters, scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("multitenant linux: %w", err)
	}
	res.LinuxAlone = linux

	// With disaggregation, alone on the node.
	tb, err := NewTestbed(mlTestbedConfig(scale.Pages))
	if err != nil {
		return nil, err
	}
	deps, err := tb.SwapDeps("tenant-a")
	if err != nil {
		return nil, err
	}
	mgr, err := swap.NewManager(swap.FastSwap(resident, 10, true, ratioFn), deps)
	if err != nil {
		return nil, err
	}
	alone, err := driveTrace(tb, mgr, prof, scale.Pages, scale.Iters, scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("multitenant shared alone: %w", err)
	}
	res.SharedAlone = alone
	res.IdleMemoryUsed = tb.Nodes[0].SharedPool().Stats().LiveBytes

	// With a second pressured tenant running concurrently on the same node.
	tb2, err := NewTestbed(mlTestbedConfig(scale.Pages))
	if err != nil {
		return nil, err
	}
	depsA, err := tb2.SwapDeps("tenant-a")
	if err != nil {
		return nil, err
	}
	depsB, err := tb2.SwapDeps("tenant-b")
	if err != nil {
		return nil, err
	}
	// Both tenants copy through the same node's pool: one copy engine, so
	// their page moves contend for memory bandwidth.
	contended := memdev.NewSharedMemContended(tb2.Env, "node1.shm", tb2.Params, 1)
	depsA.Shared = contended
	depsB.Shared = contended
	mgrA, err := swap.NewManager(swap.FastSwap(resident, 10, true, ratioFn), depsA)
	if err != nil {
		return nil, err
	}
	mgrB, err := swap.NewManager(swap.FastSwap(resident, 10, true, ratioFn), depsB)
	if err != nil {
		return nil, err
	}
	var doneA time.Duration
	tb2.Env.Go("tenant-b", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		tr := workload.NewMLTrace(prof, scale.Pages, scale.Iters, scale.Seed+1)
		for {
			a, ok := tr.Next()
			if !ok {
				return
			}
			if err := mgrB.Touch(ctx, a.Page, a.Compute, a.Write); err != nil {
				return
			}
		}
	})
	finish, err := tb2.Run("tenant-a", func(ctx context.Context, p *des.Proc) error {
		tr := workload.NewMLTrace(prof, scale.Pages, scale.Iters, scale.Seed)
		for {
			a, ok := tr.Next()
			if !ok {
				doneA = p.Now()
				return nil
			}
			if err := mgrA.Touch(ctx, a.Page, a.Compute, a.Write); err != nil {
				return err
			}
		}
	})
	_ = finish
	if err != nil {
		return nil, fmt.Errorf("multitenant contended: %w", err)
	}
	res.SharedContended = doneA
	return res, nil
}

// String renders the comparison.
func (r *MultiTenantResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§I motivation: a pressured tenant next to idle neighbours\n")
	fmt.Fprintf(&b, "%-34s %14v\n", "Linux swap (idle memory wasted)", r.LinuxAlone.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-34s %14v  (%.0fx faster, borrowing %.1f MiB)\n",
		"disaggregated, alone", r.SharedAlone.Round(time.Microsecond),
		float64(r.LinuxAlone)/float64(r.SharedAlone), float64(r.IdleMemoryUsed)/(1<<20))
	fmt.Fprintf(&b, "%-34s %14v  (%.2fx interference from a 2nd pressured tenant)\n",
		"disaggregated, contended", r.SharedContended.Round(time.Microsecond),
		float64(r.SharedContended)/float64(r.SharedAlone))
	return b.String()
}
