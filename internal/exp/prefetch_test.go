package exp

import "testing"

// TestPrefetchAcceptance pins the experiment's headline claims: the trend
// prefetcher beats in-batch readahead on at least two of the three shapes,
// and on the adversarial-stride walk — where the only correct prediction is
// no prediction — it stays within 5% of prefetching disabled.
func TestPrefetchAcceptance(t *testing.T) {
	res, err := Prefetch(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Shapes), 3; got != want {
		t.Fatalf("shapes = %d, want %d", got, want)
	}

	leapWins := 0
	for _, sh := range res.Shapes {
		if sh.Leap.Faults < sh.PBS.Faults {
			leapWins++
		}
		t.Logf("%s: faults PBS=%d off=%d Leap=%d, completion PBS=%v off=%v Leap=%v",
			sh.Shape, sh.PBS.Faults, sh.Off.Faults, sh.Leap.Faults,
			sh.PBS.Completion, sh.Off.Completion, sh.Leap.Completion)
	}
	if leapWins < 2 {
		t.Errorf("Leap beat PBS on faults on %d shapes, want >= 2", leapWins)
	}

	for _, sh := range res.Shapes {
		switch sh.Shape {
		case "adversarial-stride":
			// Do-no-harm bound: within 5% of prefetching disabled, and far
			// fewer speculative fetches than PBS fires blindly.
			limit := sh.Off.Completion + sh.Off.Completion/20
			if sh.Leap.Completion > limit {
				t.Errorf("adversarial-stride: Leap completion %v > 105%% of prefetch-off %v",
					sh.Leap.Completion, sh.Off.Completion)
			}
			if sh.Leap.Prefetched*4 > sh.PBS.Prefetched {
				t.Errorf("adversarial-stride: Leap prefetched %d pages, want well under PBS's %d",
					sh.Leap.Prefetched, sh.PBS.Prefetched)
			}
		case "phase-changing", "scan-heavy":
			if sh.Leap.Prefetched == 0 {
				t.Errorf("%s: Leap issued no prefetches on a trending shape", sh.Shape)
			}
			if sh.Leap.Accuracy < 0.5 {
				t.Errorf("%s: Leap accuracy %.2f, want >= 0.5", sh.Shape, sh.Leap.Accuracy)
			}
		}
		// The ladder must actually move pages in both directions.
		if sh.Tiered.Demotions == 0 || sh.Tiered.Promotions == 0 {
			t.Errorf("%s: tiered demotions=%d promotions=%d, want both > 0",
				sh.Shape, sh.Tiered.Demotions, sh.Tiered.Promotions)
		}
	}
}

// TestPrefetchDeterministic pins replay determinism: two runs at the same
// scale produce identical measurements, fault counts and simulated clocks
// included.
func TestPrefetchDeterministic(t *testing.T) {
	a, err := Prefetch(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prefetch(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Shapes {
		if a.Shapes[i] != b.Shapes[i] {
			t.Errorf("shape %s differs across identical runs:\n  %+v\n  %+v",
				a.Shapes[i].Shape, a.Shapes[i], b.Shapes[i])
		}
	}
}
