package exp

import (
	"strings"
	"testing"
)

// TestECShape pins the acceptance shape of the erasure-coding comparison:
// RS(4,2) stores at most (k+m)/k = 1.5x the payload against replication's
// 3.0x (>= 1.8x more capacity per durable byte), and the degraded
// reconstruct-on-read path stays within 2x of the healthy read.
func TestECShape(t *testing.T) {
	res, err := EC(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rf, rs := res.Rows[0], res.Rows[1]
	if rf.Policy != "rf3" || rs.Policy != "rs4.2" {
		t.Fatalf("policies = %s, %s", rf.Policy, rs.Policy)
	}
	if ratio := rf.StoredPerByte / rs.StoredPerByte; ratio < 1.8 {
		t.Errorf("capacity per durable byte: rs is only %.2fx rf, want >= 1.8x", ratio)
	}
	if rs.StoredPerByte < 1.5 {
		t.Errorf("rs stored/byte %.2f below the (k+m)/k floor; shards are going missing", rs.StoredPerByte)
	}
	for _, row := range res.Rows {
		if row.HealthyRead <= 0 || row.DegradedRead <= 0 {
			t.Errorf("%s: non-positive latencies (%v healthy, %v degraded)", row.Policy, row.HealthyRead, row.DegradedRead)
		}
		if row.DegradedRead > 2*row.HealthyRead {
			t.Errorf("%s: degraded read %v more than 2x healthy %v", row.Policy, row.DegradedRead, row.HealthyRead)
		}
	}
	out := res.String()
	for _, term := range []string{"rf3", "rs4.2", "capacity per durable byte"} {
		if !strings.Contains(out, term) {
			t.Errorf("rendering missing %q:\n%s", term, out)
		}
	}
}
