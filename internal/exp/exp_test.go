package exp

import (
	"strings"
	"testing"
)

// tinyScale keeps the full registry run fast in CI.
func tinyScale() Scale {
	return Scale{
		Pages:      512,
		Iters:      2,
		KVOps:      4000,
		Fig9Window: 0, // auto-sized
		Seed:       1,
	}
}

func TestRegistryRunsEveryExperiment(t *testing.T) {
	scale := tinyScale()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(scale)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := res.String()
			if len(out) < 20 {
				t.Fatalf("%s: suspiciously short output %q", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 workloads", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FourGran < row.TwoGran {
			t.Errorf("%s: 4-granularity %.2f worse than 2-granularity %.2f",
				row.Workload, row.FourGran, row.TwoGran)
		}
		if row.FourGran < row.Zswap {
			t.Errorf("%s: FastSwap %.2f worse than Zswap %.2f",
				row.Workload, row.FourGran, row.Zswap)
		}
		if row.Zswap > 2.01 {
			t.Errorf("%s: zswap ratio %.2f exceeds zbud cap of 2", row.Workload, row.Zswap)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 ratios", len(res.Rows))
	}
	// Completion time improves (or holds) as compressibility rises, on both
	// backings, and disk never beats remote.
	for i, row := range res.Rows {
		if row.DiskTime < row.RemoteTime {
			t.Errorf("ratio %.1f: disk %v faster than remote %v", row.Ratio, row.DiskTime, row.RemoteTime)
		}
		if i > 0 && row.RemoteTime > res.Rows[i-1].RemoteTime*11/10 {
			t.Errorf("remote time rose with compressibility: %v -> %v",
				res.Rows[i-1].RemoteTime, row.RemoteTime)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.DiskTime >= first.DiskTime {
		t.Errorf("disk completion did not improve with compressibility: %v -> %v",
			first.DiskTime, last.DiskTime)
	}
	// At high compressibility the working set fits remote memory entirely,
	// opening a wide gap to the disk backing.
	if last.DiskTime < 10*last.RemoteTime {
		t.Errorf("ratio 4: disk %v not >=10x remote %v", last.DiskTime, last.RemoteTime)
	}
	// The capacity effect: ratio 4 is much faster than ratio 1.3 on remote.
	if first.RemoteTime < 2*last.RemoteTime {
		t.Errorf("remote knee too weak: %v -> %v", first.RemoteTime, last.RemoteTime)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 5 workloads x 2 configs", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !(row.FastSwap < row.Infiniswap && row.Infiniswap < row.Linux) {
			t.Errorf("%s %s: ordering violated FS=%v IS=%v LX=%v",
				row.Workload, row.Config, row.FastSwap, row.Infiniswap, row.Linux)
		}
	}
	// Headline shape: tens-of-x over Linux, few-x over Infiniswap, and the
	// 50% configuration hurts Linux more than it hurts FastSwap.
	if res.AvgOverLinux["50%"] < 10 {
		t.Errorf("avg speedup over Linux at 50%% = %.1f, want >= 10", res.AvgOverLinux["50%"])
	}
	if res.AvgOverInfiniswap["50%"] < 1.5 {
		t.Errorf("avg speedup over Infiniswap at 50%% = %.1f, want >= 1.5", res.AvgOverInfiniswap["50%"])
	}
	if res.AvgOverLinux["50%"] <= res.AvgOverLinux["75%"] {
		t.Errorf("50%% config speedup %.1f not above 75%% config %.1f",
			res.AvgOverLinux["50%"], res.AvgOverLinux["75%"])
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 server workloads", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Throughput decreases as remote share grows (FS-SM >= ... >= FS-RDMA).
		order := []string{"FS-SM", "FS-9:1", "FS-7:3", "FS-5:5", "FS-RDMA"}
		for i := 1; i < len(order); i++ {
			if row.OpsPerSec[order[i]] > row.OpsPerSec[order[i-1]]*1.15 {
				t.Errorf("%s: %s (%f) much faster than %s (%f)", row.Workload,
					order[i], row.OpsPerSec[order[i]], order[i-1], row.OpsPerSec[order[i-1]])
			}
		}
		if row.OpsPerSec["FS-SM"] < 20*row.OpsPerSec["Linux"] {
			t.Errorf("%s: FS-SM/Linux = %.1fx, want >= 20x", row.Workload,
				row.OpsPerSec["FS-SM"]/row.OpsPerSec["Linux"])
		}
		if row.OpsPerSec["FS-RDMA"] < row.OpsPerSec["Infiniswap"] {
			t.Errorf("%s: FS-RDMA below Infiniswap", row.Workload)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	byName := map[string]Fig9Series{}
	for _, s := range res.Series {
		byName[s.System] = s
		if len(s.Points) == 0 {
			t.Fatalf("%s: empty curve", s.System)
		}
	}
	pbs, noPBS := byName["FastSwap+PBS"], byName["FastSwap-noPBS"]
	is := byName["Infiniswap"]
	// Immediately after the restart, PBS serves faster than fault-driven
	// paging, which in turn beats the block-device baseline.
	pbsEarly, noPBSEarly, isEarly := earlyRate(pbs), earlyRate(noPBS), earlyRate(is)
	if pbsEarly < noPBSEarly*1.05 {
		t.Errorf("PBS early rate %.0f not above no-PBS %.0f", pbsEarly, noPBSEarly)
	}
	if noPBSEarly <= isEarly {
		t.Errorf("no-PBS early rate %.0f not above Infiniswap %.0f", noPBSEarly, isEarly)
	}
	// Recovery-time ordering: PBS <= no-PBS <= Infiniswap.
	if pbs.RecoverySeconds > noPBS.RecoverySeconds {
		t.Errorf("PBS recovery %vs slower than no-PBS %vs", pbs.RecoverySeconds, noPBS.RecoverySeconds)
	}
	if noPBS.RecoverySeconds > is.RecoverySeconds {
		t.Errorf("no-PBS recovery %vs slower than Infiniswap %vs", noPBS.RecoverySeconds, is.RecoverySeconds)
	}
	// Infiniswap has not fully recovered by the end of the window (the
	// paper's "only recovers to 60% of its best performance").
	if is.PeakFraction > 0.8 {
		t.Errorf("Infiniswap final/peak = %.2f, want < 0.8", is.PeakFraction)
	}
	for _, s := range []Fig9Series{pbs, noPBS} {
		if s.PeakFraction < 0.8 {
			t.Errorf("%s final/peak = %.2f, want >= 0.8 (recovered)", s.System, s.PeakFraction)
		}
	}
}

// earlyRate averages the first tenth of a recovery curve.
func earlyRate(s Fig9Series) float64 {
	n := len(s.Points) / 10
	if n == 0 {
		n = 1
	}
	var total float64
	for _, pt := range s.Points[:n] {
		total += pt.Rate
	}
	return total / float64(n)
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 4 jobs x 3 datasets", len(res.Rows))
	}
	bySize := map[string][]Fig10Row{}
	for _, row := range res.Rows {
		bySize[row.Dataset] = append(bySize[row.Dataset], row)
	}
	for _, row := range bySize["small"] {
		if row.Speedup < 0.95 || row.Speedup > 1.05 {
			t.Errorf("%s small: speedup %.2f, want ~1 (fully cached)", row.Workload, row.Speedup)
		}
	}
	for _, size := range []string{"medium", "large"} {
		for _, row := range bySize[size] {
			if row.Speedup < 1.2 {
				t.Errorf("%s %s: speedup %.2f, want >= 1.2", row.Workload, size, row.Speedup)
			}
		}
	}
	// Larger datasets widen the gap (the paper's medium -> large trend).
	avg := func(rows []Fig10Row) float64 {
		var s float64
		for _, r := range rows {
			s += r.Speedup
		}
		return s / float64(len(rows))
	}
	if avg(bySize["large"]) <= avg(bySize["medium"]) {
		t.Errorf("large avg speedup %.2f not above medium %.2f",
			avg(bySize["large"]), avg(bySize["medium"]))
	}
}

func TestMapScaleMatchesPaperNumbers(t *testing.T) {
	res := MapScale()
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 2 TB at 4 KB/8 B -> 4 GiB (the paper rounds to "5 GB").
	if got := res.Rows[0].FlatBytes; got != 4<<30 {
		t.Fatalf("2TB flat = %d, want 4 GiB", got)
	}
	if got := res.Rows[1].FlatBytes; got != 20<<30 {
		t.Fatalf("10TB flat = %d, want 20 GiB", got)
	}
	// Grouping by 8 on 32 nodes divides by 4.
	if got := res.Rows[1].GroupedBytes[8]; got != 5<<30 {
		t.Fatalf("10TB group=8 = %d, want 5 GiB", got)
	}
}

func TestBalanceShape(t *testing.T) {
	res := Balance(tinyScale())
	byName := map[string]float64{}
	for _, row := range res.Rows {
		byName[row.Policy] = row.Imbalance
		if row.Imbalance < 1 {
			t.Errorf("%s: imbalance %.3f below 1", row.Policy, row.Imbalance)
		}
	}
	if byName["round-robin"] > 1.01 {
		t.Errorf("round-robin imbalance %.3f, want ~1.0", byName["round-robin"])
	}
	if byName["power-of-two"] >= byName["random"] {
		t.Errorf("power-of-two %.3f not better than random %.3f",
			byName["power-of-two"], byName["random"])
	}
}

func TestFailoverShape(t *testing.T) {
	res, err := Failover(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.ElectionTicks <= 0 || res.ElectionTicks > 5 {
		t.Errorf("election ticks = %d, want 1-5", res.ElectionTicks)
	}
	if !res.SurvivedPartition {
		t.Error("replicated read did not survive primary partition")
	}
	if !res.Repaired {
		t.Error("replication factor not repaired after eviction")
	}
}

func TestAblationWindowShape(t *testing.T) {
	res, err := AblationWindow(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Batching should beat per-page messaging.
	if res.Rows[2].Completion >= res.Rows[0].Completion {
		t.Errorf("d=16 (%v) not faster than d=1 (%v)",
			res.Rows[2].Completion, res.Rows[0].Completion)
	}
}

func TestAblationReplicationShape(t *testing.T) {
	res, err := AblationReplication(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r1, r3 := res.Rows[0], res.Rows[1]
	if r3.Completion <= r1.Completion {
		t.Errorf("factor 3 (%v) not slower than factor 1 (%v)", r3.Completion, r1.Completion)
	}
	if r1.SurvivesPartition {
		t.Error("factor 1 should not survive primary partition")
	}
	if !r3.SurvivesPartition {
		t.Error("factor 3 should survive primary partition")
	}
}

func TestRenderingsMentionKeyTerms(t *testing.T) {
	scale := tinyScale()
	f3, err := Fig3(scale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3.String(), "Zswap") {
		t.Error("fig3 rendering missing Zswap column")
	}
	ms := MapScale()
	if !strings.Contains(ms.String(), "flat map") {
		t.Error("mapscale rendering missing flat map column")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 sizes", len(res.Rows))
	}
	for _, row := range res.Rows {
		// System ordering at every size: FastSwap (either) < Infiniswap < Linux.
		if row.FastSwapPBS >= row.Infiniswap || row.FastSwapNoPBS >= row.Infiniswap {
			t.Errorf("pages=%d: FastSwap not ahead of Infiniswap (%v/%v vs %v)",
				row.WorkloadPages, row.FastSwapPBS, row.FastSwapNoPBS, row.Infiniswap)
		}
		if row.Infiniswap >= row.Linux {
			t.Errorf("pages=%d: Infiniswap %v not ahead of Linux %v",
				row.WorkloadPages, row.Infiniswap, row.Linux)
		}
	}
	// Batch swap-in pays off at the largest size (small sizes may tie).
	last := res.Rows[len(res.Rows)-1]
	if last.FastSwapPBS > last.FastSwapNoPBS {
		t.Errorf("largest size: PBS %v slower than no-PBS %v", last.FastSwapPBS, last.FastSwapNoPBS)
	}
	// Completion grows with workload size for every system.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Linux <= res.Rows[i-1].Linux {
			t.Errorf("Linux completion not monotone: %v -> %v", res.Rows[i-1].Linux, res.Rows[i].Linux)
		}
	}
}

func TestAblationMessageSizeShape(t *testing.T) {
	res, err := AblationMessageSize(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Larger fabric messages amortize per-message cost: completion must not
	// degrade as m grows, and 1 MB must beat 4 KB.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Completion > res.Rows[i-1].Completion*105/100 {
			t.Errorf("m=%d (%v) slower than m=%d (%v)",
				res.Rows[i].MessageBytes, res.Rows[i].Completion,
				res.Rows[i-1].MessageBytes, res.Rows[i-1].Completion)
		}
	}
	if res.Rows[3].Completion >= res.Rows[0].Completion {
		t.Errorf("1MB messages (%v) not faster than 4KB (%v)",
			res.Rows[3].Completion, res.Rows[0].Completion)
	}
}

func TestTiersLadderOrdering(t *testing.T) {
	res, err := Tiers()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 tiers", len(res.Rows))
	}
	// The §VI premise: each tier is strictly slower than the previous.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Latency <= res.Rows[i-1].Latency {
			t.Errorf("%s (%v) not slower than %s (%v)",
				res.Rows[i].Tier, res.Rows[i].Latency,
				res.Rows[i-1].Tier, res.Rows[i-1].Latency)
		}
	}
	// And the disk-network gap the paper's whole argument rests on: remote
	// memory is >=100x faster than a random disk access.
	remote, seek := res.Rows[2].Latency, res.Rows[5].Latency
	if seek < 100*remote {
		t.Errorf("disk %v not >=100x remote %v", seek, remote)
	}
}

func TestXMemPodShape(t *testing.T) {
	res, err := XMemPod(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// With ample fast tiers the flash tier is idle: identical times.
	if res.Rows[0].Speedup < 0.99 || res.Rows[0].Speedup > 1.01 {
		t.Errorf("100%% pools: speedup %.2f, want ~1", res.Rows[0].Speedup)
	}
	// Tighter fast tiers make the flash tier matter more (allow small
	// wobble between adjacent points).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Speedup < res.Rows[i-1].Speedup*0.9 {
			t.Errorf("speedup regressed: %.2f -> %.2f",
				res.Rows[i-1].Speedup, res.Rows[i].Speedup)
		}
	}
	if last := res.Rows[len(res.Rows)-1]; last.Speedup < 2 {
		t.Errorf("exhausted-pool speedup %.2f, want >= 2", last.Speedup)
	}
}

func TestMultiTenantShape(t *testing.T) {
	res, err := MultiTenant(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// The headline: idle-neighbour memory turns a thrashing tenant around
	// by an order of magnitude or more.
	if res.LinuxAlone < 10*res.SharedAlone {
		t.Errorf("disaggregation gain %v -> %v below 10x", res.LinuxAlone, res.SharedAlone)
	}
	if res.IdleMemoryUsed == 0 {
		t.Error("no donated memory borrowed")
	}
	// A second pressured tenant interferes only mildly (both are
	// compute-bound at shared-memory speed) and never helps.
	ratio := float64(res.SharedContended) / float64(res.SharedAlone)
	if ratio < 0.99 || ratio > 1.5 {
		t.Errorf("interference ratio %.2f outside [1, 1.5]", ratio)
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 ML workloads", len(res.Rows))
	}
	atLeastOneBig := false
	for _, row := range res.Rows {
		// Compression never hurts by more than noise.
		if row.Improvement < 0.9 {
			t.Errorf("%s: compression made things worse (%.2fx)", row.Workload, row.Improvement)
		}
		if row.Improvement >= 1.3 {
			atLeastOneBig = true
		}
	}
	if !atLeastOneBig {
		t.Error("no workload gained >= 1.3x from compression")
	}
}
