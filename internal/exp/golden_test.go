package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The headline experiments run entirely on the simulated clock with a fixed
// seed, so their rendered output is a pure function of the code: any diff in a
// golden file is a behaviour change in the model, not noise. Regenerate with
//
//	go test ./internal/exp -run Golden -update
//
// and review the diff like any other code change.
var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestFig7Golden(t *testing.T) {
	res, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7", res.String())

	// Beyond byte-stability, pin the crossover claims the paper leads with:
	// the tighter 50% configuration widens FastSwap's advantage over both
	// baselines, and the worst case over Linux exceeds the average.
	for _, cfg := range []string{"75%", "50%"} {
		if res.AvgOverLinux[cfg] <= 1 || res.AvgOverInfiniswap[cfg] <= 1 {
			t.Errorf("config %s: aggregates not above 1 (Linux %.2f, Infiniswap %.2f)",
				cfg, res.AvgOverLinux[cfg], res.AvgOverInfiniswap[cfg])
		}
		if res.MaxOverLinux[cfg] < res.AvgOverLinux[cfg] {
			t.Errorf("config %s: max over Linux %.2f below avg %.2f",
				cfg, res.MaxOverLinux[cfg], res.AvgOverLinux[cfg])
		}
	}
	if res.AvgOverInfiniswap["50%"] <= res.AvgOverInfiniswap["75%"] {
		t.Errorf("50%% config did not widen the Infiniswap gap: %.2f vs %.2f",
			res.AvgOverInfiniswap["50%"], res.AvgOverInfiniswap["75%"])
	}
}

func TestFig8Golden(t *testing.T) {
	res, err := Fig8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8", res.String())

	// The sweep's crossover claims: the all-disaggregated FastSwap still beats
	// both block-device baselines, and Linux disk swap is the floor everywhere.
	for _, row := range res.Rows {
		for _, sys := range []string{"Infiniswap", "NBDX"} {
			if row.OpsPerSec["FS-RDMA"] < row.OpsPerSec[sys] {
				t.Errorf("%s: FS-RDMA (%.0f ops/s) below %s (%.0f ops/s)",
					row.Workload, row.OpsPerSec["FS-RDMA"], sys, row.OpsPerSec[sys])
			}
		}
		for _, sys := range Fig8SystemNames[:len(Fig8SystemNames)-1] {
			if row.OpsPerSec[sys] <= row.OpsPerSec["Linux"] {
				t.Errorf("%s: %s (%.0f ops/s) not above the Linux floor (%.0f ops/s)",
					row.Workload, sys, row.OpsPerSec[sys], row.OpsPerSec["Linux"])
			}
		}
	}
}

func TestMapScaleGolden(t *testing.T) {
	res := MapScale()
	checkGolden(t, "mapscale", res.String())

	// The arithmetic is exact, so pin it exactly: grouping by g on n nodes
	// divides the flat per-node map by n/g, and larger groups always cost more
	// per node than smaller ones.
	for _, row := range res.Rows {
		for _, g := range res.GroupSizes {
			want := row.FlatBytes * int64(g) / int64(res.TotalNodes)
			if got := row.GroupedBytes[g]; got != want {
				t.Errorf("%s group=%d: %d bytes, want flat/%d = %d",
					row.ClusterMemory, g, got, res.TotalNodes/g, want)
			}
		}
		for i := 1; i < len(res.GroupSizes); i++ {
			lo, hi := res.GroupSizes[i-1], res.GroupSizes[i]
			if row.GroupedBytes[hi] <= row.GroupedBytes[lo] {
				t.Errorf("%s: group=%d (%d B) not above group=%d (%d B)",
					row.ClusterMemory, hi, row.GroupedBytes[hi], lo, row.GroupedBytes[lo])
			}
		}
	}
	// Metadata scales linearly with cluster memory: 10 TB costs 5x the 2 TB map.
	if res.Rows[1].FlatBytes != 5*res.Rows[0].FlatBytes {
		t.Errorf("flat map not linear in cluster memory: %d vs %d",
			res.Rows[1].FlatBytes, res.Rows[0].FlatBytes)
	}
}
