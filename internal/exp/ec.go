package exp

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"godm/internal/des"
	"godm/internal/pagetable"
)

// ECRow is one durability policy's cost/latency measurement.
type ECRow struct {
	// Policy is the durability spec ("rf3", "rs4.2").
	Policy string
	// StoredPerByte is donor pool bytes consumed per durable payload byte
	// (3.0 for triple replication, (k+m)/k for RS striping).
	StoredPerByte float64
	// HealthyRead is the mean simulated read latency with every donor up.
	HealthyRead time.Duration
	// DegradedRead is the mean read latency with one stripe/replica holder
	// partitioned away: replica failover for rf, reconstruct-on-read for rs.
	DegradedRead time.Duration
}

// ECResult compares triple replication against RS(4,2) erasure coding on
// the axis the paper's §IV.D fault-tolerance discussion leaves open: what a
// durable remote byte costs in donor capacity, and what the degraded read
// path costs in latency when a holder disappears.
type ECResult struct {
	Entries int
	Payload int
	Rows    []ECRow
}

// ecEntries and ecPayload size the measurement working set: enough entries
// to average placement noise out, payloads large enough that shard framing
// overhead is visible but the suite stays fast.
const (
	ecEntries = 8
	ecPayload = 64 << 10
)

// EC runs the comparison. Both systems run on identical 8-node testbeds
// (owner + 7 donors: RS(4,2) stripes across 6 and keeps a spare).
func EC(scale Scale) (*ECResult, error) {
	res := &ECResult{Entries: ecEntries, Payload: ecPayload}
	for _, policy := range []string{"rf3", "rs4.2"} {
		row, err := ecMeasure(policy, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", policy, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ecMeasure builds a fresh cluster under one durability policy, stripes the
// working set, and measures capacity and read latency healthy then degraded.
func ecMeasure(policy string, seed int64) (ECRow, error) {
	row := ECRow{Policy: policy}
	tb, err := NewTestbed(TestbedConfig{NodeCount: 8, ReplicationFactor: 3, Durability: policy})
	if err != nil {
		return row, err
	}
	vs, err := tb.Nodes[0].AddServer("ec-vm", 0)
	if err != nil {
		return row, err
	}
	rng := rand.New(rand.NewSource(seed))
	payloads := make([][]byte, ecEntries)
	for i := range payloads {
		payloads[i] = make([]byte, ecPayload)
		rng.Read(payloads[i])
	}
	_, err = tb.Run("ec-"+policy, func(ctx context.Context, p *des.Proc) error {
		for i, pay := range payloads {
			if err := vs.PutRemote(ctx, pagetable.EntryID(i), pay, ecPayload, ecPayload); err != nil {
				return fmt.Errorf("put %d: %w", i, err)
			}
		}
		var stored int64
		for _, n := range tb.Nodes[1:] {
			stored += n.RecvPool().Stats().LiveBytes
		}
		row.StoredPerByte = float64(stored) / float64(ecEntries*ecPayload)

		all := make([]int, len(payloads))
		for i := range all {
			all[i] = i
		}
		healthy, err := ecTimeReads(ctx, p, vs, payloads, all)
		if err != nil {
			return fmt.Errorf("healthy read: %w", err)
		}
		row.HealthyRead = healthy

		// Partition entry 0's primary holder away from the owner and re-read
		// every entry that kept data on it: the rf read fails over to a
		// replica, the rs read reconstructs the lost shard from parity.
		loc, err := vs.Location(0)
		if err != nil {
			return err
		}
		victim := loc.Primary
		var affected []int
		for i := range payloads {
			l, err := vs.Location(pagetable.EntryID(i))
			if err != nil {
				return err
			}
			for _, h := range append([]pagetable.NodeID{l.Primary}, l.Replicas...) {
				if h == victim {
					affected = append(affected, i)
					break
				}
			}
		}
		tb.Fabric.Partition(1, nodeID(victim))
		degraded, err := ecTimeReads(ctx, p, vs, payloads, affected)
		if err != nil {
			return fmt.Errorf("degraded read: %w", err)
		}
		row.DegradedRead = degraded
		return nil
	})
	return row, err
}

// ecTimeReads reads the given entries back, verifying content, and returns
// the mean per-read simulated latency.
func ecTimeReads(ctx context.Context, p *des.Proc, vs ecReader, payloads [][]byte, ids []int) (time.Duration, error) {
	start := p.Now()
	for _, i := range ids {
		got, _, err := vs.Get(ctx, pagetable.EntryID(i))
		if err != nil {
			return 0, fmt.Errorf("get %d: %w", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			return 0, fmt.Errorf("get %d: payload mismatch", i)
		}
	}
	return (p.Now() - start) / time.Duration(len(ids)), nil
}

// ecReader is the slice of core.VirtualServer the timing loop needs.
type ecReader interface {
	Get(ctx context.Context, id pagetable.EntryID) ([]byte, pagetable.Location, error)
}

// String renders the comparison.
func (r *ECResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Erasure coding vs replication (%d entries x %d KiB)\n", r.Entries, r.Payload>>10)
	var rf, rs float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s stored/byte %.2f  healthy read %v  degraded read %v\n",
			row.Policy, row.StoredPerByte,
			row.HealthyRead.Round(time.Microsecond), row.DegradedRead.Round(time.Microsecond))
		switch {
		case strings.HasPrefix(row.Policy, "rf"):
			rf = row.StoredPerByte
		case strings.HasPrefix(row.Policy, "rs"):
			rs = row.StoredPerByte
		}
	}
	if rf > 0 && rs > 0 {
		fmt.Fprintf(&b, "capacity per durable byte: rs is %.2fx rf\n", rf/rs)
	}
	return b.String()
}
