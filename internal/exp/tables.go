package exp

import (
	"context"
	"fmt"
	"strings"

	"godm/internal/cluster"
	"godm/internal/des"
	"godm/internal/pagetable"
	"godm/internal/placement"
	"godm/internal/transport"
	"godm/internal/workload"
)

// ---------------------------------------------------------------- Table 1

// Table1Result renders the application catalog used in the experiments.
type Table1Result struct {
	Profiles []workload.Profile
}

// Table1 returns the catalog.
func Table1() *Table1Result {
	return &Table1Result{Profiles: workload.Catalog()}
}

// String renders the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: applications used in experiments\n")
	fmt.Fprintf(&b, "%-22s %-14s %12s %10s %8s\n", "application", "kind", "working set", "input", "compress")
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "%-22s %-14s %9.0f GB %7.0f GB %7.1fx\n",
			p.Name, p.Kind, p.WorkingSetGB, p.InputGB, p.Compressibility)
	}
	return b.String()
}

// ---------------------------------------------------------- §IV.C map scale

// MapScaleRow is one cluster-size point of the metadata cost model.
type MapScaleRow struct {
	ClusterMemory string
	FlatBytes     int64
	GroupedBytes  map[int]int64 // group size -> per-node metadata
}

// MapScaleResult reproduces the §IV.C scalability arithmetic: the per-node
// metadata a flat disaggregated memory map needs (the paper's 5 GB at 2 TB
// and 25 GB at 10 TB figures) and how hierarchical group sharing divides it.
type MapScaleResult struct {
	Rows       []MapScaleRow
	GroupSizes []int
	TotalNodes int
}

// MapScale computes the table for a 32-node cluster at 4 KB entries.
func MapScale() *MapScaleResult {
	const entry = 4096
	const totalNodes = 32
	groupSizes := []int{4, 8, 16}
	res := &MapScaleResult{GroupSizes: groupSizes, TotalNodes: totalNodes}
	for _, tb := range []struct {
		label string
		bytes int64
	}{
		{"2 TB", 2 << 40},
		{"10 TB", 10 << 40},
	} {
		row := MapScaleRow{
			ClusterMemory: tb.label,
			FlatBytes:     pagetable.MetadataBytes(tb.bytes, entry),
			GroupedBytes:  map[int]int64{},
		}
		for _, g := range groupSizes {
			row.GroupedBytes[g] = pagetable.GroupedMetadataBytes(tb.bytes, entry, totalNodes, g)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the table.
func (r *MapScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§IV.C: per-node memory-map metadata (4 KB entries, %d nodes)\n", r.TotalNodes)
	fmt.Fprintf(&b, "%-10s %12s", "cluster", "flat map")
	for _, g := range r.GroupSizes {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("group=%d", g))
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.1f GB", row.ClusterMemory, gib(row.FlatBytes))
		for _, g := range r.GroupSizes {
			fmt.Fprintf(&b, " %7.1f GB", gib(row.GroupedBytes[g]))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

func gib(n int64) float64 { return float64(n) / float64(1<<30) }

// ----------------------------------------------------------- §IV.E balance

// BalanceRow is one balancer's imbalance under a placement stream.
type BalanceRow struct {
	Policy    string
	Imbalance float64 // max node load / mean load (1.0 = perfect)
}

// BalanceResult reproduces the §IV.E comparison of memory balancing
// algorithms: random, round robin, weighted round robin, power of two
// choices.
type BalanceResult struct {
	Rows       []BalanceRow
	Placements int
	NodeCount  int
}

// Balance streams placements through each policy with capacity feedback.
func Balance(scale Scale) *BalanceResult {
	const nodes = 32
	placements := scale.KVOps
	if placements <= 0 {
		placements = 10000
	}
	res := &BalanceResult{Placements: placements, NodeCount: nodes}
	policies := []placement.Balancer{
		placement.NewRandom(scale.Seed),
		placement.NewRoundRobin(),
		placement.NewWeightedRoundRobin(scale.Seed),
		placement.NewPowerOfTwo(scale.Seed),
	}
	for _, pol := range policies {
		free := make([]int64, nodes)
		for i := range free {
			free[i] = int64(placements)
		}
		loads := map[placement.NodeID]int64{}
		for i := 0; i < placements; i++ {
			cands := make([]placement.Candidate, nodes)
			for j := range free {
				cands[j] = placement.Candidate{Node: placement.NodeID(j), FreeBytes: free[j]}
			}
			ids, err := pol.Pick(cands, 1)
			if err != nil {
				continue
			}
			loads[ids[0]]++
			free[ids[0]]--
		}
		res.Rows = append(res.Rows, BalanceRow{Policy: pol.Name(), Imbalance: placement.Imbalance(loads)})
	}
	return res
}

// String renders the table.
func (r *BalanceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§IV.E: memory balancing, %d placements over %d nodes (1.0 = perfect)\n",
		r.Placements, r.NodeCount)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s imbalance %.3f\n", row.Policy, row.Imbalance)
	}
	return b.String()
}

// --------------------------------------------------------- §IV.D failover

// FailoverResult reproduces the §IV.D fault-tolerance behaviours: leader
// re-election latency after a crash and replicated-entry survival across a
// primary failure with repair.
type FailoverResult struct {
	// ElectionTicks is how many failure-detector ticks re-election took.
	ElectionTicks int
	// NewLeader is the re-elected node.
	NewLeader cluster.NodeID
	// SurvivedPartition reports that a replicated entry stayed readable
	// when its primary was partitioned away.
	SurvivedPartition bool
	// Repaired reports that the replication factor was restored after a
	// replica eviction.
	Repaired bool
}

// Failover runs the crash and repair scenario.
func Failover(scale Scale) (*FailoverResult, error) {
	res := &FailoverResult{}

	// Leader election: 8 nodes, leader crashes, count ticks to re-election.
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 8, HeartbeatTimeout: 2})
	if err != nil {
		return nil, err
	}
	for i := 1; i <= 8; i++ {
		dir.Join(cluster.NodeID(i), int64(i*100))
	}
	leader, ok := dir.Leader(0)
	if !ok {
		return nil, fmt.Errorf("no initial leader")
	}
	for tick := 1; tick <= 10; tick++ {
		for i := 1; i <= 8; i++ {
			if cluster.NodeID(i) == leader {
				continue // crashed
			}
			_ = dir.Heartbeat(cluster.NodeID(i), int64(i*100))
		}
		events := dir.Tick()
		for _, e := range events {
			if e.Kind == cluster.EventLeaderElected {
				res.ElectionTicks = tick
				res.NewLeader = e.Node
			}
		}
		if res.ElectionTicks > 0 {
			break
		}
	}

	// Replicated-entry survival: triple replication, partition the primary,
	// then repair after an eviction.
	tb, err := NewTestbed(TestbedConfig{NodeCount: 5, ReplicationFactor: 3})
	if err != nil {
		return nil, err
	}
	vs, err := tb.Nodes[0].AddServer("ft-vm", 0)
	if err != nil {
		return nil, err
	}
	_, err = tb.Run("ft", func(ctx context.Context, p *des.Proc) error {
		payload := make([]byte, 4096)
		if err := vs.PutRemote(ctx, 1, payload, 4096, 4096); err != nil {
			return err
		}
		loc, err := vs.Location(1)
		if err != nil {
			return err
		}
		tb.Fabric.Partition(1, transport.NodeID(loc.Primary))
		if _, _, err := vs.Get(ctx, 1); err == nil {
			res.SurvivedPartition = true
		}
		tb.Fabric.Heal(1, transport.NodeID(loc.Primary))

		// Evict on one replica host and let the owner repair.
		victim := loc.Replicas[0]
		if _, err := tb.Nodes[victim-1].EvictRecvSlabs(ctx, 1<<20); err != nil {
			return err
		}
		repaired, err := tb.Nodes[0].Maintain(ctx)
		if err != nil {
			return err
		}
		if repaired == 1 {
			if _, _, err := vs.Get(ctx, 1); err == nil {
				res.Repaired = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the result.
func (r *FailoverResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§IV.D: fault tolerance\n")
	fmt.Fprintf(&b, "leader re-elected after %d ticks (node %d)\n", r.ElectionTicks, r.NewLeader)
	fmt.Fprintf(&b, "replicated read survived primary partition: %v\n", r.SurvivedPartition)
	fmt.Fprintf(&b, "replication factor restored after eviction: %v\n", r.Repaired)
	return b.String()
}
