package exp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"godm/internal/des"
	"godm/internal/swap"
	"godm/internal/workload"
)

// ------------------------------------------------- ablation: window size d

// WindowRow is one batching-window point.
type WindowRow struct {
	Window     int
	Completion time.Duration
}

// WindowResult is the §IV.H ablation the paper calls for ("it is worth to
// experiment window based message batching with different window size d"):
// FS-RDMA completion versus the swap-out batch size.
type WindowResult struct {
	Rows []WindowRow
}

// AblationWindow sweeps d over a remote-memory scan job.
func AblationWindow(scale Scale) (*WindowResult, error) {
	prof, err := workload.ByName("KMeans")
	if err != nil {
		return nil, err
	}
	resident := scale.Pages / 2
	res := &WindowResult{}
	for _, d := range []int{1, 4, 16, 64} {
		cfg := swap.FastSwap(resident, 0, true, func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) })
		cfg.Window = d
		cfg.Readahead = d
		cfg.Name = fmt.Sprintf("FS-RDMA-d%d", d)
		t, _, err := runMLCompletion(prof, cfg, mlTestbedConfig(scale.Pages), scale.Pages, scale.Iters, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("window %d: %w", d, err)
		}
		res.Rows = append(res.Rows, WindowRow{Window: d, Completion: t})
	}
	return res, nil
}

// String renders the sweep.
func (r *WindowResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: batching window d (FS-RDMA, sequential scan)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "d=%-4d completion %v\n", row.Window, row.Completion.Round(time.Microsecond))
	}
	return b.String()
}

// --------------------------------------------- ablation: replication factor

// ReplicationRow is one factor's cost/benefit measurement.
type ReplicationRow struct {
	Factor            int
	Completion        time.Duration
	SurvivesPartition bool
}

// ReplicationResult quantifies §IV.D's triple-replica choice: the write
// amplification cost of factor 3 versus factor 1, and what it buys — reads
// that survive a primary partition.
type ReplicationResult struct {
	Rows []ReplicationRow
}

// AblationReplication runs the comparison.
func AblationReplication(scale Scale) (*ReplicationResult, error) {
	prof, err := workload.ByName("KMeans")
	if err != nil {
		return nil, err
	}
	resident := scale.Pages / 2
	res := &ReplicationResult{}
	for _, factor := range []int{1, 3} {
		tbCfg := mlTestbedConfig(scale.Pages)
		tbCfg.ReplicationFactor = factor
		tbCfg.RecvPoolBytes *= int64(factor) // capacity for the extra copies
		cfg := swap.FastSwap(resident, 0, true, func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) })
		cfg.Name = fmt.Sprintf("FS-RDMA-r%d", factor)
		completion, _, err := runMLCompletion(prof, cfg, tbCfg, scale.Pages, scale.Iters, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("factor %d: %w", factor, err)
		}
		survives, err := partitionSurvival(factor)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ReplicationRow{
			Factor:            factor,
			Completion:        completion,
			SurvivesPartition: survives,
		})
	}
	return res, nil
}

// partitionSurvival checks whether a remote entry stays readable when its
// primary is cut off, at the given replication factor.
func partitionSurvival(factor int) (bool, error) {
	tb, err := NewTestbed(TestbedConfig{NodeCount: 5, ReplicationFactor: factor})
	if err != nil {
		return false, err
	}
	vs, err := tb.Nodes[0].AddServer("repl-vm", 0)
	if err != nil {
		return false, err
	}
	survives := false
	_, err = tb.Run("check", func(ctx context.Context, p *des.Proc) error {
		if err := vs.PutRemote(ctx, 1, make([]byte, 4096), 4096, 4096); err != nil {
			return err
		}
		loc, err := vs.Location(1)
		if err != nil {
			return err
		}
		tb.Fabric.Partition(1, nodeID(loc.Primary))
		if _, _, err := vs.Get(ctx, 1); err == nil {
			survives = true
		}
		return nil
	})
	return survives, err
}

// String renders the comparison.
func (r *ReplicationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: replication factor (FS-RDMA)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "factor=%d completion %v, read survives primary partition: %v\n",
			row.Factor, row.Completion.Round(time.Microsecond), row.SurvivesPartition)
	}
	return b.String()
}

// ------------------------------------------------ ablation: message size m

// MessageSizeRow is one fabric message-size point.
type MessageSizeRow struct {
	MessageBytes int
	Completion   time.Duration
}

// MessageSizeResult is the second half of the §IV.H ablation the paper asks
// for: window-based batching with different message sizes m (DAHI's RPC
// layer defaults to 8 KB messages with a 1 MB maximum).
type MessageSizeResult struct {
	Window int
	Rows   []MessageSizeRow
}

// AblationMessageSize fixes the window at the FastSwap default and sweeps
// the fabric message cap from per-page up to unlimited.
func AblationMessageSize(scale Scale) (*MessageSizeResult, error) {
	prof, err := workload.ByName("KMeans")
	if err != nil {
		return nil, err
	}
	resident := scale.Pages / 2
	res := &MessageSizeResult{Window: swap.DefaultWindow}
	for _, m := range []int{4 << 10, 8 << 10, 64 << 10, 1 << 20} {
		cfg := swap.FastSwap(resident, 0, true, func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) })
		cfg.MaxMessageBytes = m
		cfg.MessageOverhead = 3 * time.Microsecond
		cfg.Name = fmt.Sprintf("FS-RDMA-m%dk", m>>10)
		t, _, err := runMLCompletion(prof, cfg, mlTestbedConfig(scale.Pages), scale.Pages, scale.Iters, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("message size %d: %w", m, err)
		}
		res.Rows = append(res.Rows, MessageSizeRow{MessageBytes: m, Completion: t})
	}
	return res, nil
}

// String renders the sweep.
func (r *MessageSizeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: fabric message size m (window d=%d)\n", r.Window)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "m=%-8s completion %v\n", fmt.Sprintf("%dKB", row.MessageBytes>>10), row.Completion.Round(time.Microsecond))
	}
	return b.String()
}
