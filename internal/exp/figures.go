package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"godm/internal/compress"
	"godm/internal/swap"
	"godm/internal/workload"
)

// ---------------------------------------------------------------- Figure 3

// Fig3Row is one workload's compression ratios under the three systems.
type Fig3Row struct {
	Workload string
	FourGran float64 // FastSwap, 4 size classes
	TwoGran  float64 // FastSwap, 2 size classes
	Zswap    float64 // zbud allocator
}

// Fig3Result reproduces "Compression Ratio for 10 ML Workloads in FastSwap".
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 compresses profile-shaped synthetic pages with the real deflate codec
// under both granularities and the zbud model.
func Fig3(scale Scale) (*Fig3Result, error) {
	c4, err := compress.NewCodec(compress.Four)
	if err != nil {
		return nil, err
	}
	c2, err := compress.NewCodec(compress.Two)
	if err != nil {
		return nil, err
	}
	const pagesPerWorkload = 128
	res := &Fig3Result{}
	for _, prof := range workload.Catalog() {
		rng := rand.New(rand.NewSource(scale.Seed))
		var raw, s4, s2, sz int64
		for i := 0; i < pagesPerWorkload; i++ {
			ratio := prof.PageRatio(scale.Seed, i)
			page := compress.GeneratePage(rng, ratio)
			p4, err := c4.Compress(page)
			if err != nil {
				return nil, err
			}
			p2, err := c2.Compress(page)
			if err != nil {
				return nil, err
			}
			raw += compress.PageSize
			s4 += int64(p4.StoredSize)
			s2 += int64(p2.StoredSize)
			// Zswap stores the same deflate payload in zbud slots.
			sz += int64(compress.ZbudStoredSize(len(p4.Data)))
		}
		res.Rows = append(res.Rows, Fig3Row{
			Workload: prof.Name,
			FourGran: compress.Ratio(raw, s4),
			TwoGran:  compress.Ratio(raw, s2),
			Zswap:    compress.Ratio(raw, sz),
		})
	}
	return res, nil
}

// String renders the figure as a table.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: compression ratio per workload (higher is better)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s\n", "workload", "FS-4gran", "FS-2gran", "Zswap")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %10.2f %10.2f %10.2f\n", row.Workload, row.FourGran, row.TwoGran, row.Zswap)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 4

// Fig4Row is one compressibility point.
type Fig4Row struct {
	Ratio      float64
	RemoteTime time.Duration // swap to remote memory (Fig 4a)
	DiskTime   time.Duration // swap to disk (Fig 4b)
}

// Fig4Result reproduces "Effect of compression ratio on remote memory and
// local disk": logistic regression at the 50% configuration, sweeping the
// page compressibility.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 runs the sweep.
func Fig4(scale Scale) (*Fig4Result, error) {
	prof, err := workload.ByName("LogisticRegression")
	if err != nil {
		return nil, err
	}
	resident := scale.Pages / 2
	// Remote memory is scarce (half the raw working set): compressibility
	// decides how much of the overflow stays off disk — the capacity effect
	// compression buys in disaggregated memory.
	recvBytes := int64(scale.Pages) * swap.PageSize / 4
	const fig4Slab = 128 << 10 // fine-grained slabs: capacity, not classing, decides
	recvBytes = (recvBytes + fig4Slab - 1) / fig4Slab * fig4Slab
	remoteTB := TestbedConfig{
		NodeCount:       4,
		SharedPoolBytes: 1 << 20,
		RecvPoolBytes:   recvBytes,
		SlabSize:        fig4Slab,
	}
	res := &Fig4Result{}
	for _, ratio := range []float64{1.3, 2, 3, 4} {
		ratio := ratio
		flat := func(int) float64 { return ratio }

		remoteCfg := swap.FastSwap(resident, 0, true, flat) // FS-RDMA
		remoteTime, _, err := runMLCompletion(prof, remoteCfg, remoteTB, scale.Pages, scale.Iters, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig4 remote ratio %v: %w", ratio, err)
		}

		// Disk variant: compression + batching, but the backing tier is the
		// swap disk (no disaggregated memory).
		diskCfg := swap.FastSwap(resident, 0, true, flat)
		diskCfg.Name = "FastSwap-disk"
		diskCfg.RemoteEnabled = false
		diskCfg.NodeRatio = -1
		diskTime, _, err := runMLCompletion(prof, diskCfg, mlTestbedConfig(scale.Pages), scale.Pages, scale.Iters, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig4 disk ratio %v: %w", ratio, err)
		}
		res.Rows = append(res.Rows, Fig4Row{Ratio: ratio, RemoteTime: remoteTime, DiskTime: diskTime})
	}
	return res, nil
}

// String renders the figure.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: LR completion time vs page compressibility (50%% config)\n")
	fmt.Fprintf(&b, "%-8s %16s %16s\n", "ratio", "(a) remote", "(b) disk")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8.1f %16v %16v\n", row.Ratio, row.RemoteTime.Round(time.Microsecond), row.DiskTime.Round(time.Millisecond))
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Row is one workload's completion with compression on and off.
type Fig5Row struct {
	Workload    string
	Compressed  time.Duration
	Plain       time.Duration
	Improvement float64 // Plain/Compressed
}

// Fig5Result reproduces "Disaggregated memory compression on application
// performance".
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 compares compression on/off for the five ML workloads on the hybrid
// FastSwap at the 50% configuration, with pools sized so that compression
// determines how much of the working set stays in the fast tiers.
func Fig5(scale Scale) (*Fig5Result, error) {
	resident := scale.Pages / 2
	// Pools hold half the raw overflow: with ~2-3x compression everything
	// fits in fast tiers; without it, half spills to disk. Fine-grained
	// slabs keep allocator classing out of the comparison.
	const fig5Slab = 128 << 10
	bytes := int64(scale.Pages) * swap.PageSize / 4
	bytes = (bytes + fig5Slab - 1) / fig5Slab * fig5Slab
	tbCfg := TestbedConfig{NodeCount: 4, SharedPoolBytes: bytes, RecvPoolBytes: bytes, SlabSize: fig5Slab}
	res := &Fig5Result{}
	for _, name := range workload.MLNames() {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		ratioFn := func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) }
		on := swap.FastSwap(resident, 9, true, ratioFn)
		tOn, _, err := runMLCompletion(prof, on, tbCfg, scale.Pages, scale.Iters, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s compressed: %w", name, err)
		}
		off := swap.FastSwap(resident, 9, true, nil)
		off.Compression = false
		off.Name = "FastSwap-nocomp"
		tOff, _, err := runMLCompletion(prof, off, tbCfg, scale.Pages, scale.Iters, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s plain: %w", name, err)
		}
		res.Rows = append(res.Rows, Fig5Row{
			Workload:    name,
			Compressed:  tOn,
			Plain:       tOff,
			Improvement: float64(tOff) / float64(tOn),
		})
	}
	return res, nil
}

// String renders the figure.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: effect of page compression (FastSwap hybrid, 50%% config)\n")
	fmt.Fprintf(&b, "%-22s %14s %14s %10s\n", "workload", "compressed", "plain", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %14v %14v %9.2fx\n", row.Workload,
			row.Compressed.Round(time.Microsecond), row.Plain.Round(time.Microsecond), row.Improvement)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one working-set size.
type Fig6Row struct {
	WorkloadPages int
	FastSwapPBS   time.Duration
	FastSwapNoPBS time.Duration
	Infiniswap    time.Duration
	Linux         time.Duration
}

// Fig6Result reproduces the batch swap-in comparison across four workload
// sizes.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 runs a sequential-scan job at four working-set sizes against a fixed
// resident set.
func Fig6(scale Scale) (*Fig6Result, error) {
	prof, err := workload.ByName("KMeans")
	if err != nil {
		return nil, err
	}
	resident := scale.Pages / 2
	res := &Fig6Result{}
	for _, mult := range []int{1, 2, 3, 4} {
		pages := scale.Pages * mult / 2
		if pages <= resident {
			pages = resident + resident/2
		}
		ratioFn := func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) }
		row := Fig6Row{WorkloadPages: pages}
		// Figure 6 exercises cluster-level disaggregated memory, where batch
		// swap-in amortizes the per-message cost (FS-RDMA configuration).
		systems := []struct {
			cfg  swap.Config
			dest *time.Duration
		}{
			{swap.FastSwap(resident, 0, true, ratioFn), &row.FastSwapPBS},
			{swap.FastSwap(resident, 0, false, ratioFn), &row.FastSwapNoPBS},
			{swap.Infiniswap(resident), &row.Infiniswap},
			{swap.Linux(resident), &row.Linux},
		}
		for _, sys := range systems {
			t, _, err := runMLCompletion(prof, sys.cfg, mlTestbedConfig(pages), pages, scale.Iters, scale.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s at %d pages: %w", sys.cfg.Name, pages, err)
			}
			*sys.dest = t
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the figure.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: completion time vs workload size (proactive batch swap-in)\n")
	fmt.Fprintf(&b, "%-10s %14s %16s %14s %14s\n", "pages", "FastSwap+PBS", "FastSwap-noPBS", "Infiniswap", "Linux")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10d %14v %16v %14v %14v\n", row.WorkloadPages,
			row.FastSwapPBS.Round(time.Microsecond), row.FastSwapNoPBS.Round(time.Microsecond),
			row.Infiniswap.Round(time.Microsecond), row.Linux.Round(time.Millisecond))
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Row is one (workload, configuration) measurement.
type Fig7Row struct {
	Workload   string
	Config     string // "75%" or "50%"
	FastSwap   time.Duration
	Infiniswap time.Duration
	Linux      time.Duration
}

// Fig7Result reproduces the machine-learning workloads comparison, including
// the paper's headline speedups (24x/45x average over Linux, 2.3x/2.6x over
// Infiniswap at 75%/50%).
type Fig7Result struct {
	Rows []Fig7Row
	// Aggregates per configuration.
	AvgOverLinux      map[string]float64
	MaxOverLinux      map[string]float64
	AvgOverInfiniswap map[string]float64
}

// Fig7 runs the five ML workloads under both memory configurations.
func Fig7(scale Scale) (*Fig7Result, error) {
	res := &Fig7Result{
		AvgOverLinux:      map[string]float64{},
		MaxOverLinux:      map[string]float64{},
		AvgOverInfiniswap: map[string]float64{},
	}
	configs := []struct {
		label    string
		resident func(pages int) int
	}{
		{"75%", func(p int) int { return p * 3 / 4 }},
		{"50%", func(p int) int { return p / 2 }},
	}
	for _, cfg := range configs {
		var sumLx, maxLx, sumIS float64
		for _, name := range workload.MLNames() {
			prof, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			resident := cfg.resident(scale.Pages)
			ratioFn := func(pg int) float64 { return prof.PageRatio(scale.Seed, pg) }
			row := Fig7Row{Workload: name, Config: cfg.label}
			systems := []struct {
				c    swap.Config
				dest *time.Duration
			}{
				{swap.FastSwap(resident, 9, true, ratioFn), &row.FastSwap},
				{swap.Infiniswap(resident), &row.Infiniswap},
				{swap.Linux(resident), &row.Linux},
			}
			for _, sys := range systems {
				t, _, err := runMLCompletion(prof, sys.c, mlTestbedConfig(scale.Pages), scale.Pages, scale.Iters, scale.Seed)
				if err != nil {
					return nil, fmt.Errorf("fig7 %s %s %s: %w", name, cfg.label, sys.c.Name, err)
				}
				*sys.dest = t
			}
			res.Rows = append(res.Rows, row)
			lx := float64(row.Linux) / float64(row.FastSwap)
			is := float64(row.Infiniswap) / float64(row.FastSwap)
			sumLx += lx
			sumIS += is
			if lx > maxLx {
				maxLx = lx
			}
		}
		n := float64(len(workload.MLNames()))
		res.AvgOverLinux[cfg.label] = sumLx / n
		res.MaxOverLinux[cfg.label] = maxLx
		res.AvgOverInfiniswap[cfg.label] = sumIS / n
	}
	return res, nil
}

// String renders the figure.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: ML workload completion time\n")
	fmt.Fprintf(&b, "%-22s %-6s %14s %14s %14s\n", "workload", "config", "FastSwap", "Infiniswap", "Linux")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %-6s %14v %14v %14v\n", row.Workload, row.Config,
			row.FastSwap.Round(time.Microsecond), row.Infiniswap.Round(time.Microsecond),
			row.Linux.Round(time.Millisecond))
	}
	for _, cfg := range []string{"75%", "50%"} {
		fmt.Fprintf(&b, "config %s: FastSwap over Linux avg %.1fx (max %.1fx), over Infiniswap avg %.1fx\n",
			cfg, r.AvgOverLinux[cfg], r.MaxOverLinux[cfg], r.AvgOverInfiniswap[cfg])
	}
	return b.String()
}
