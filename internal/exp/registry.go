package exp

import (
	"fmt"
	"sort"

	"godm/internal/pagetable"
	"godm/internal/transport"
)

// nodeID converts a pagetable node id to a fabric node id.
func nodeID(n pagetable.NodeID) transport.NodeID { return transport.NodeID(n) }

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	// ID is the flag value passed to `dmsim -exp`.
	ID string
	// Paper names what the experiment reproduces.
	Paper string
	// Run executes the experiment and returns a printable result.
	Run func(scale Scale) (fmt.Stringer, error)
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{
			ID: "table1", Paper: "Table 1: applications used in experiments",
			Run: func(Scale) (fmt.Stringer, error) { return Table1(), nil },
		},
		{
			ID: "fig3", Paper: "Figure 3: compression ratio for 10 workloads",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig3(s) },
		},
		{
			ID: "fig4", Paper: "Figure 4: compression ratio vs remote/disk swap",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig4(s) },
		},
		{
			ID: "fig5", Paper: "Figure 5: compression on application performance",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig5(s) },
		},
		{
			ID: "fig6", Paper: "Figure 6: proactive batch swap-in vs baselines",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig6(s) },
		},
		{
			ID: "fig7", Paper: "Figure 7: ML workloads, FastSwap vs Infiniswap vs Linux",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig7(s) },
		},
		{
			ID: "fig8", Paper: "Figure 8: distribution-ratio throughput sweep",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig8(s) },
		},
		{
			ID: "fig9", Paper: "Figure 9: Memcached ETC recovery curve",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig9(s) },
		},
		{
			ID: "fig10", Paper: "Figure 10: vanilla Spark vs DAHI",
			Run: func(s Scale) (fmt.Stringer, error) { return Fig10(s) },
		},
		{
			ID: "mapscale", Paper: "§IV.C: memory-map metadata scalability",
			Run: func(Scale) (fmt.Stringer, error) { return MapScale(), nil },
		},
		{
			ID: "balance", Paper: "§IV.E: memory balancing policies",
			Run: func(s Scale) (fmt.Stringer, error) { return Balance(s), nil },
		},
		{
			ID: "failover", Paper: "§IV.D: leader election and replica repair",
			Run: func(s Scale) (fmt.Stringer, error) { return Failover(s) },
		},
		{
			ID: "window", Paper: "§IV.H ablation: batching window size d",
			Run: func(s Scale) (fmt.Stringer, error) { return AblationWindow(s) },
		},
		{
			ID: "replication", Paper: "§IV.D ablation: replication factor",
			Run: func(s Scale) (fmt.Stringer, error) { return AblationReplication(s) },
		},
		{
			ID: "msgsize", Paper: "§IV.H ablation: fabric message size m",
			Run: func(s Scale) (fmt.Stringer, error) { return AblationMessageSize(s) },
		},
		{
			ID: "tiers", Paper: "§VI: the memory-hierarchy latency ladder",
			Run: func(Scale) (fmt.Stringer, error) { return Tiers() },
		},
		{
			ID: "xmempod", Paper: "extension [36]: XMemPod flash tier under exhaustion",
			Run: func(s Scale) (fmt.Stringer, error) { return XMemPod(s) },
		},
		{
			ID: "multitenant", Paper: "§I motivation: idle-neighbour memory sharing + contention",
			Run: func(s Scale) (fmt.Stringer, error) { return MultiTenant(s) },
		},
		{
			ID: "prefetch", Paper: "§IV.B extension: trend prefetching + tier ladder vs PBS",
			Run: func(s Scale) (fmt.Stringer, error) { return Prefetch(s) },
		},
		{
			ID: "ec", Paper: "§IV.D extension: RS(4,2) erasure coding vs triple replication",
			Run: func(s Scale) (fmt.Stringer, error) { return EC(s) },
		},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}
