package workload

import (
	"reflect"
	"testing"
)

func TestShapeTracesDeterministicAndBounded(t *testing.T) {
	const pages, length = 1024, 4000
	for _, name := range ShapeNames() {
		a := NewShapeTrace(name, pages, length, 7).Drain()
		b := NewShapeTrace(name, pages, length, 7).Drain()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: trace differs across runs with one seed", name)
		}
		if len(a) != length {
			t.Fatalf("%s: emitted %d accesses, want %d", name, len(a), length)
		}
		for i, acc := range a {
			if acc.Page < 0 || acc.Page >= pages {
				t.Fatalf("%s: access %d touches page %d outside [0,%d)", name, i, acc.Page, pages)
			}
		}
		c := NewShapeTrace(name, pages, length, 8).Drain()
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical traces", name)
		}
	}
}

func TestPhaseTraceChangesPhases(t *testing.T) {
	accs := NewPhaseTrace(1024, 2048, 1).Drain()
	// First phase is a forward unit scan; the second must not be.
	if accs[100].Page-accs[99].Page != 1 {
		t.Fatalf("phase 0 not a unit scan: %d -> %d", accs[99].Page, accs[100].Page)
	}
	if accs[600].Page-accs[599].Page == 1 {
		t.Fatalf("phase 1 still a unit scan: %d -> %d", accs[599].Page, accs[600].Page)
	}
}
