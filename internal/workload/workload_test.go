package workload

import (
	"testing"
	"time"
)

func TestCatalogHasTenApplications(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d applications, want 10 (Table 1)", len(cat))
	}
	seen := map[string]bool{}
	for _, p := range cat {
		if seen[p.Name] {
			t.Fatalf("duplicate application %q", p.Name)
		}
		seen[p.Name] = true
		// Table 1 ranges: working sets 25-30 GB, inputs 12-20 GB.
		if p.WorkingSetGB < 25 || p.WorkingSetGB > 30 {
			t.Errorf("%s working set %v outside 25-30 GB", p.Name, p.WorkingSetGB)
		}
		if p.InputGB < 12 || p.InputGB > 20 {
			t.Errorf("%s input %v outside 12-20 GB", p.Name, p.InputGB)
		}
		if p.Compressibility < 1 || p.Compressibility > 8 {
			t.Errorf("%s compressibility %v unreasonable", p.Name, p.Compressibility)
		}
		if p.ComputePerPage <= 0 {
			t.Errorf("%s has no compute cost", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("PageRank")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindMLIterative {
		t.Fatalf("PageRank kind = %v", p.Kind)
	}
	if _, err := ByName("Doom"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestFigureWorkloadSetsExist(t *testing.T) {
	for _, n := range append(MLNames(), ServerNames()...) {
		if _, err := ByName(n); err != nil {
			t.Errorf("figure workload %q not in catalog: %v", n, err)
		}
	}
	if len(MLNames()) != 5 {
		t.Errorf("MLNames = %v, want 5 (Figure 7)", MLNames())
	}
	if len(ServerNames()) != 3 {
		t.Errorf("ServerNames = %v, want 3 (Figure 8)", ServerNames())
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindMLIterative, "ml-iterative"},
		{KindKeyValue, "key-value"},
		{KindOLTP, "oltp"},
		{Kind(9), "kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestPageRatioDeterministicAndClamped(t *testing.T) {
	p, _ := ByName("LogisticRegression")
	for page := 0; page < 1000; page++ {
		r1 := p.PageRatio(42, page)
		r2 := p.PageRatio(42, page)
		if r1 != r2 {
			t.Fatalf("PageRatio not deterministic at page %d", page)
		}
		if r1 < 1 || r1 > 8 {
			t.Fatalf("PageRatio = %v outside [1,8]", r1)
		}
	}
}

func TestPageRatioMeanTracksProfile(t *testing.T) {
	p, _ := ByName("LogisticRegression")
	var sum float64
	const n = 5000
	for page := 0; page < n; page++ {
		sum += p.PageRatio(1, page)
	}
	mean := sum / n
	if mean < p.Compressibility-0.3 || mean > p.Compressibility+0.3 {
		t.Fatalf("mean ratio %v far from profile %v", mean, p.Compressibility)
	}
}

func TestMLTraceCoversWorkingSetEachIteration(t *testing.T) {
	p, _ := ByName("KMeans")
	const pages, iters = 200, 3
	tr := NewMLTrace(p, pages, iters, 7)
	accesses := tr.Drain()
	if len(accesses) != pages*iters {
		t.Fatalf("len = %d, want %d", len(accesses), pages*iters)
	}
	for i, a := range accesses {
		if a.Page < 0 || a.Page >= pages {
			t.Fatalf("access %d page %d out of range", i, a.Page)
		}
		if a.Compute != p.ComputePerPage {
			t.Fatalf("compute = %v", a.Compute)
		}
	}
}

func TestMLTraceMostlySequential(t *testing.T) {
	p, _ := ByName("LogisticRegression") // locality 0.95
	tr := NewMLTrace(p, 1000, 2, 3)
	accesses := tr.Drain()
	sequential := 0
	for i := 1; i < len(accesses); i++ {
		if accesses[i].Page == (accesses[i-1].Page+1)%1000 || accesses[i].Page == 0 {
			sequential++
		}
	}
	frac := float64(sequential) / float64(len(accesses)-1)
	if frac < 0.85 {
		t.Fatalf("sequential fraction = %v, want >= 0.85", frac)
	}
}

func TestMLTraceDeterministic(t *testing.T) {
	p, _ := ByName("PageRank")
	a := NewMLTrace(p, 100, 2, 9).Drain()
	b := NewMLTrace(p, 100, 2, 9).Drain()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestServerTraceSkewAndMix(t *testing.T) {
	p, _ := ByName("Memcached")
	const pages, ops = 10000, 20000
	tr := NewServerTrace(p, pages, ops, 5)
	counts := map[int]int{}
	writes := 0
	total := 0
	for {
		a, ok := tr.Next()
		if !ok {
			break
		}
		total++
		counts[a.Page]++
		if a.Write {
			writes++
		}
	}
	if total != ops {
		t.Fatalf("total = %d, want %d", total, ops)
	}
	// Zipfian skew: the hottest page absorbs far more than uniform share.
	var hottest int
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	if hottest < 10*ops/pages {
		t.Fatalf("hottest page got %d accesses, want heavy skew", hottest)
	}
	// ETC mix: ~5% writes.
	frac := float64(writes) / float64(total)
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("write fraction = %v, want ~0.05", frac)
	}
}

func TestOLTPTraceBursts(t *testing.T) {
	p, _ := ByName("VoltDB")
	tr := NewServerTrace(p, 1000, 100, 1)
	accesses := tr.Drain()
	// 100 transactions of 2-4 pages each: 200-400 accesses.
	if len(accesses) < 200 || len(accesses) > 400 {
		t.Fatalf("accesses = %d, want 200-400", len(accesses))
	}
	var totalCompute time.Duration
	for _, a := range accesses {
		totalCompute += a.Compute
	}
	// Per-transaction compute stays near the profile cost.
	perTxn := totalCompute / 100
	if perTxn < p.ComputePerPage/2 || perTxn > 2*p.ComputePerPage {
		t.Fatalf("per-txn compute = %v, profile %v", perTxn, p.ComputePerPage)
	}
}

func TestNewTraceDispatch(t *testing.T) {
	ml, _ := ByName("SVM")
	kv, _ := ByName("Redis")
	oltp, _ := ByName("VoltDB")
	if got := len(NewTrace(ml, 50, 2, 1).Drain()); got != 100 {
		t.Fatalf("ML trace len = %d, want 100", got)
	}
	if got := len(NewTrace(kv, 50, 30, 1).Drain()); got != 30 {
		t.Fatalf("KV trace len = %d, want 30", got)
	}
	if got := len(NewTrace(oltp, 50, 10, 1).Drain()); got < 20 {
		t.Fatalf("OLTP trace len = %d, want >= 20", got)
	}
}

func TestTracePanicsOnBadInput(t *testing.T) {
	p, _ := ByName("SVM")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLTrace(p, 0, 1, 1)
}
