package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Trace shapes for the prefetcher evaluation. The Table-1 generators model
// the paper's applications; these three are adversaries and allies chosen to
// separate a trend-detecting prefetcher (Leap) from in-batch readahead
// (PBS): a phase changer whose stride keeps moving, an adversarial walk with
// no majority stride at all, and a scan-heavy sweep with a hot dwell set.

// ShapeNames lists the prefetcher-evaluation trace shapes in stable order.
func ShapeNames() []string {
	return []string{"phase-changing", "adversarial-stride", "scan-heavy"}
}

// NewShapeTrace builds the named trace shape over pages pages with roughly
// length accesses. Panics on an unknown name (the set is ShapeNames).
func NewShapeTrace(name string, pages, length int, seed int64) *Trace {
	switch name {
	case "phase-changing":
		return NewPhaseTrace(pages, length, seed)
	case "adversarial-stride":
		return NewAdversarialStrideTrace(pages, length, seed)
	case "scan-heavy":
		return NewScanHeavyTrace(pages, length, seed)
	default:
		panic(fmt.Sprintf("workload: unknown trace shape %q", name))
	}
}

// NewPhaseTrace cycles through access phases the way long-running analytics
// jobs do between stages: a forward unit scan, a strided scan, a reverse
// scan, and a zipfian dwell on a hot set. Each phase lasts long enough for a
// trend detector to lock on, and every phase change invalidates the last
// trend — in-batch readahead keyed to the *previous* phase's eviction order
// prefetches the wrong pages here.
func NewPhaseTrace(pages, length int, seed int64) *Trace {
	if pages <= 8 || length <= 0 {
		panic("workload: pages must be > 8 and length positive")
	}
	rng := rand.New(rand.NewSource(seed))
	const phaseLen = 512
	emitted, phase, step := 0, 0, 0
	cur := 0
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(pages/8))
	return &Trace{next: func() (Access, bool) {
		if emitted >= length {
			return Access{}, false
		}
		emitted++
		switch phase % 4 {
		case 0: // forward unit scan
			cur = (cur + 1) % pages
		case 1: // strided scan (stride 3)
			cur = (cur + 3) % pages
		case 2: // reverse scan
			cur = cur - 1
			if cur < 0 {
				cur = pages - 1
			}
		case 3: // zipfian dwell on a hot eighth of the space
			cur = int(zipf.Uint64())
		}
		step++
		if step >= phaseLen {
			step = 0
			phase++
		}
		return Access{Page: cur, Compute: 2 * time.Microsecond, Write: emitted%4 == 0}, true
	}}
}

// NewAdversarialStrideTrace walks the space with deltas drawn uniformly
// from a set of distinct strides, so no stride ever holds a majority: a
// correct trend detector must stay silent, and any prefetcher that guesses
// anyway pays for it. This is the "do no harm" bound of the evaluation.
func NewAdversarialStrideTrace(pages, length int, seed int64) *Trace {
	if pages <= 64 || length <= 0 {
		panic("workload: pages must be > 64 and length positive")
	}
	rng := rand.New(rand.NewSource(seed))
	deltas := []int{3, 7, 17, 29, 41, 53}
	emitted, cur := 0, 0
	return &Trace{next: func() (Access, bool) {
		if emitted >= length {
			return Access{}, false
		}
		emitted++
		cur = (cur + deltas[rng.Intn(len(deltas))]) % pages
		return Access{Page: cur, Compute: 2 * time.Microsecond, Write: emitted%3 == 0}, true
	}}
}

// NewScanHeavyTrace alternates long sequential sweeps over the full space
// with short revisits of a small hot set — the ETL-then-aggregate pattern.
// The sweeps dwarf any resident set, so fault rate is decided by how much of
// each sweep the prefetcher hides.
func NewScanHeavyTrace(pages, length int, seed int64) *Trace {
	if pages <= 16 || length <= 0 {
		panic("workload: pages must be > 16 and length positive")
	}
	rng := rand.New(rand.NewSource(seed))
	hot := pages / 16
	if hot < 4 {
		hot = 4
	}
	emitted, cur := 0, 0
	scanning, scanLeft, hotLeft := true, pages, 0
	return &Trace{next: func() (Access, bool) {
		if emitted >= length {
			return Access{}, false
		}
		emitted++
		if scanning {
			cur = (cur + 1) % pages
			scanLeft--
			if scanLeft <= 0 {
				scanning, hotLeft = false, hot*4
			}
			return Access{Page: cur, Compute: time.Microsecond, Write: true}, true
		}
		pg := rng.Intn(hot)
		hotLeft--
		if hotLeft <= 0 {
			scanning, scanLeft = true, pages
		}
		return Access{Page: pg, Compute: 3 * time.Microsecond, Write: false}, true
	}}
}
