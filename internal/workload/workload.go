// Package workload models the ten memory-intensive applications of the
// paper's Table 1 (§V): iterative machine-learning jobs (PageRank, logistic
// regression, TunkRank, k-means, SVM, connected components, ALS) and
// in-memory server systems (Memcached, Redis, VoltDB).
//
// The paper's testbed runs the real applications with 25–30 GB working sets;
// this package substitutes trace generators that reproduce the properties
// the evaluation depends on — access locality, iteration structure, compute
// density, page compressibility, and key skew — at laptop scale. Every
// generator is deterministic for a given seed.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind classifies an application's access pattern.
type Kind int

// Application kinds.
const (
	// KindMLIterative scans its working set once per iteration with high
	// sequential locality (Spark-style ML jobs).
	KindMLIterative Kind = iota + 1
	// KindKeyValue serves zipfian point lookups (Memcached/Redis-style).
	KindKeyValue
	// KindOLTP runs short transactions touching a few random pages each
	// (VoltDB-style).
	KindOLTP
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindMLIterative:
		return "ml-iterative"
	case KindKeyValue:
		return "key-value"
	case KindOLTP:
		return "oltp"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Profile describes one Table-1 application.
type Profile struct {
	// Name is the application name as the paper reports it.
	Name string
	// Kind selects the trace generator.
	Kind Kind
	// WorkingSetGB and InputGB echo Table 1 (25–30 GB working sets from
	// 12–20 GB inputs per virtual server).
	WorkingSetGB float64
	InputGB      float64
	// Compressibility is the mean deflate ratio of the application's pages
	// (drives Figure 3); Spread is the per-page standard deviation.
	Compressibility float64
	Spread          float64
	// Locality is the probability an ML scan continues sequentially.
	Locality float64
	// ComputePerPage is CPU time spent per page touched (ML kinds) or per
	// operation (server kinds).
	ComputePerPage time.Duration
	// ZipfS is the key-skew parameter for server kinds (>1).
	ZipfS float64
	// ReadFraction is the fraction of server operations that are reads
	// (Memcached ETC is 95% GET).
	ReadFraction float64
}

// Catalog returns the paper's ten applications (Table 1) in stable order.
func Catalog() []Profile {
	return []Profile{
		{Name: "PageRank", Kind: KindMLIterative, WorkingSetGB: 28, InputGB: 16,
			Compressibility: 3.2, Spread: 1.2, Locality: 0.90, ComputePerPage: 4 * time.Microsecond},
		{Name: "LogisticRegression", Kind: KindMLIterative, WorkingSetGB: 26, InputGB: 14,
			Compressibility: 4.2, Spread: 1.3, Locality: 0.95, ComputePerPage: 6 * time.Microsecond},
		{Name: "TunkRank", Kind: KindMLIterative, WorkingSetGB: 30, InputGB: 20,
			Compressibility: 2.6, Spread: 1.0, Locality: 0.85, ComputePerPage: 4 * time.Microsecond},
		{Name: "KMeans", Kind: KindMLIterative, WorkingSetGB: 27, InputGB: 15,
			Compressibility: 3.8, Spread: 1.2, Locality: 0.93, ComputePerPage: 8 * time.Microsecond},
		{Name: "SVM", Kind: KindMLIterative, WorkingSetGB: 25, InputGB: 12,
			Compressibility: 3.4, Spread: 1.1, Locality: 0.94, ComputePerPage: 7 * time.Microsecond},
		{Name: "ConnectedComponents", Kind: KindMLIterative, WorkingSetGB: 29, InputGB: 18,
			Compressibility: 2.8, Spread: 1.0, Locality: 0.80, ComputePerPage: 3 * time.Microsecond},
		{Name: "ALS", Kind: KindMLIterative, WorkingSetGB: 26, InputGB: 13,
			Compressibility: 3.0, Spread: 1.1, Locality: 0.91, ComputePerPage: 9 * time.Microsecond},
		{Name: "Memcached", Kind: KindKeyValue, WorkingSetGB: 25, InputGB: 12,
			Compressibility: 2.4, Spread: 0.8, Locality: 0.05, ComputePerPage: 2 * time.Microsecond,
			ZipfS: 1.1, ReadFraction: 0.95},
		{Name: "Redis", Kind: KindKeyValue, WorkingSetGB: 25, InputGB: 12,
			Compressibility: 2.0, Spread: 0.7, Locality: 0.05, ComputePerPage: 2 * time.Microsecond,
			ZipfS: 1.1, ReadFraction: 0.90},
		{Name: "VoltDB", Kind: KindOLTP, WorkingSetGB: 27, InputGB: 14,
			Compressibility: 1.7, Spread: 0.5, Locality: 0.20, ComputePerPage: 12 * time.Microsecond,
			ZipfS: 1.05, ReadFraction: 0.80},
	}
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown application %q", name)
}

// MLNames returns the five ML workloads used in Figure 7.
func MLNames() []string {
	return []string{"PageRank", "LogisticRegression", "TunkRank", "KMeans", "SVM"}
}

// ServerNames returns the three server workloads used in Figure 8.
func ServerNames() []string {
	return []string{"Redis", "Memcached", "VoltDB"}
}

// PageRatio returns the deterministic compressibility of page within an
// application with the given profile: a per-page gaussian around the
// profile mean, clamped to [1, 8]. The same (seed, page) always yields the
// same ratio, so repeated swap-outs of one page agree.
func (p Profile) PageRatio(seed int64, page int) float64 {
	rng := rand.New(rand.NewSource(seed ^ int64(page)*0x9E3779B9))
	r := p.Compressibility + rng.NormFloat64()*p.Spread
	if r < 1 {
		r = 1
	}
	if r > 8 {
		r = 8
	}
	return r
}

// Access is one step of a trace: touch Page, then spend Compute.
type Access struct {
	Page    int
	Compute time.Duration
	// Write marks operations that dirty the page (server kinds).
	Write bool
}

// Trace generates a deterministic access stream.
type Trace struct {
	next func() (Access, bool)
}

// Next returns the next access; ok is false at end of trace.
func (t *Trace) Next() (Access, bool) { return t.next() }

// Drain consumes the whole trace (tests and small experiments).
func (t *Trace) Drain() []Access {
	var out []Access
	for {
		a, ok := t.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// NewMLTrace builds an iterative scan over pages working-set pages for
// iters iterations. Within an iteration the scan is mostly sequential
// (profile locality) with occasional random jumps, which is how Spark-style
// jobs walk RDD partitions.
func NewMLTrace(p Profile, pages, iters int, seed int64) *Trace {
	if pages <= 0 || iters <= 0 {
		panic("workload: pages and iters must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	iter, step, cur := 0, 0, 0
	return &Trace{next: func() (Access, bool) {
		if iter >= iters {
			return Access{}, false
		}
		a := Access{Page: cur, Compute: p.ComputePerPage, Write: true}
		step++
		if step >= pages {
			step = 0
			iter++
			cur = 0
		} else if rng.Float64() < p.Locality {
			cur = (cur + 1) % pages
		} else {
			cur = rng.Intn(pages)
		}
		return a, true
	}}
}

// NewServerTrace builds nOps zipfian point operations over pages pages
// (Memcached ETC-style for key-value kinds, multi-page transactions for
// OLTP). Reads and writes follow the profile's ReadFraction.
func NewServerTrace(p Profile, pages, nOps int, seed int64) *Trace {
	if pages <= 1 || nOps <= 0 {
		panic("workload: pages must be > 1 and nOps positive")
	}
	rng := rand.New(rand.NewSource(seed))
	s := p.ZipfS
	if s <= 1 {
		s = 1.1
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(pages-1))
	emitted := 0
	// OLTP transactions touch a small burst of pages per operation.
	burst := 0
	burstLeft := 0
	var burstWrite bool
	return &Trace{next: func() (Access, bool) {
		if emitted >= nOps {
			return Access{}, false
		}
		if p.Kind == KindOLTP {
			if burstLeft == 0 {
				burst = 2 + rng.Intn(3)
				burstLeft = burst
				burstWrite = rng.Float64() >= p.ReadFraction
			}
			burstLeft--
			if burstLeft == 0 {
				emitted++
			}
			return Access{
				Page:    int(zipf.Uint64()),
				Compute: p.ComputePerPage / time.Duration(burst),
				Write:   burstWrite,
			}, true
		}
		emitted++
		return Access{
			Page:    int(zipf.Uint64()),
			Compute: p.ComputePerPage,
			Write:   rng.Float64() >= p.ReadFraction,
		}, true
	}}
}

// NewTrace selects the generator for the profile's kind. For ML kinds,
// opCount is the iteration count; for server kinds it is the operation
// count.
func NewTrace(p Profile, pages, opCount int, seed int64) *Trace {
	switch p.Kind {
	case KindMLIterative:
		return NewMLTrace(p, pages, opCount, seed)
	case KindKeyValue, KindOLTP:
		return NewServerTrace(p, pages, opCount, seed)
	default:
		panic(fmt.Sprintf("workload: unknown kind %v", p.Kind))
	}
}
