// Package rdd implements a miniature Spark-style execution engine — resilient
// distributed datasets with lineage, partitions, lazy transformations, and
// executor cache management — plus DAHI, the paper's disaggregated-memory
// system for caching RDD partitions off-heap (§V.B, Figure 10).
//
// An RDD is computed partition by partition. A partition of a cached dataset
// is served from the executor's storage memory when it fits; the systems
// differ in what happens to the overflow:
//
//   - Vanilla Spark (MEMORY_ONLY, the .cache() default): overflow partitions
//     are simply not cached — every later use recomputes them through the
//     lineage, re-reading the input from disk.
//   - DAHI: overflow partitions are parked in disaggregated memory — the
//     node-coordinated shared pool first, then remote memory via RDMA — and
//     come back at memory/network speed instead of being recomputed.
package rdd

import (
	"context"
	"errors"
	"fmt"
	"time"

	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/pagetable"
)

// PageSize is the accounting unit for partition sizes.
const PageSize = 4096

// Mode selects the cache-overflow policy.
type Mode int

// Cache modes.
const (
	// ModeVanilla recomputes partitions that do not fit in executor memory.
	ModeVanilla Mode = iota + 1
	// ModeDAHI parks overflow partitions in disaggregated memory.
	ModeDAHI
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "vanilla"
	case ModeDAHI:
		return "dahi"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// CacheTier says where a cached partition lives.
type CacheTier int

// Cache tiers.
const (
	// TierNone means the partition is not cached anywhere.
	TierNone CacheTier = iota
	// TierMemory is the executor's own storage memory.
	TierMemory
	// TierDisagg is DAHI's disaggregated memory (shared pool or remote).
	TierDisagg
)

// Stats counts executor activity.
type Stats struct {
	Computed    int64 // partitions computed through lineage
	SourceReads int64 // input partitions read from stable storage
	MemHits     int64 // partitions served from executor memory
	DisaggHits  int64 // partitions served from disaggregated memory
	CacheStores int64
	Overflowed  int64 // cache stores that did not fit executor memory
}

// Executor runs partitions with a bounded storage memory.
type Executor struct {
	name     string
	mode     Mode
	memPages int
	used     int
	vs       *core.VirtualServer
	dram     *memdev.DRAM
	shm      *memdev.SharedMem
	disk     *memdev.Disk

	cache    map[uint64]cacheEntry
	diskNext int64
	stats    Stats
}

type cacheEntry struct {
	tier  CacheTier
	pages int
}

// ExecutorConfig shapes an executor.
type ExecutorConfig struct {
	Name string
	Mode Mode
	// MemPages is the executor storage memory in pages.
	MemPages int
	// VS attaches the executor to disaggregated memory (required for
	// ModeDAHI).
	VS *core.VirtualServer
	// Devices.
	DRAM *memdev.DRAM
	SHM  *memdev.SharedMem
	Disk *memdev.Disk
}

// NewExecutor builds an executor.
func NewExecutor(cfg ExecutorConfig) (*Executor, error) {
	if cfg.MemPages <= 0 {
		return nil, fmt.Errorf("rdd: executor memory %d pages must be positive", cfg.MemPages)
	}
	if cfg.DRAM == nil || cfg.Disk == nil {
		return nil, errors.New("rdd: DRAM and Disk devices are required")
	}
	if cfg.Mode == ModeDAHI && (cfg.VS == nil || cfg.SHM == nil) {
		return nil, errors.New("rdd: DAHI mode needs a virtual server and shared-memory device")
	}
	if cfg.Mode != ModeVanilla && cfg.Mode != ModeDAHI {
		return nil, fmt.Errorf("rdd: unknown mode %v", cfg.Mode)
	}
	return &Executor{
		name:     cfg.Name,
		mode:     cfg.Mode,
		memPages: cfg.MemPages,
		vs:       cfg.VS,
		dram:     cfg.DRAM,
		shm:      cfg.SHM,
		disk:     cfg.Disk,
		cache:    map[uint64]cacheEntry{},
	}, nil
}

// Stats returns a copy of the executor counters.
func (e *Executor) Stats() Stats { return e.stats }

// Engine builds datasets over one executor.
type Engine struct {
	exec   *Executor
	nextID int
}

// NewEngine returns an engine over exec.
func NewEngine(exec *Executor) *Engine { return &Engine{exec: exec} }

// Executor returns the engine's executor.
func (e *Engine) Executor() *Executor { return e.exec }

// Dataset is an immutable, lazily evaluated RDD.
type Dataset struct {
	eng        *Engine
	id         int
	parent     *Dataset
	partitions int
	pagesPer   int
	cpuPerPage time.Duration
	cached     bool
	isSource   bool
	sourceOff  int64
}

// TextFile creates a source dataset of partitions x pagesPer pages backed by
// stable storage (the paper's 12–20 GB inputs).
func (e *Engine) TextFile(partitions, pagesPer int) (*Dataset, error) {
	if partitions <= 0 || pagesPer <= 0 {
		return nil, fmt.Errorf("rdd: partitions %d and pagesPer %d must be positive", partitions, pagesPer)
	}
	d := &Dataset{
		eng:        e,
		id:         e.nextID,
		partitions: partitions,
		pagesPer:   pagesPer,
		isSource:   true,
		sourceOff:  e.exec.diskNext,
	}
	e.nextID++
	e.exec.diskNext += int64(partitions*pagesPer) * PageSize
	return d, nil
}

// Map derives a dataset applying cpuPerPage of work per page (narrow
// dependency: partition i depends only on parent partition i).
func (d *Dataset) Map(cpuPerPage time.Duration) *Dataset {
	nd := &Dataset{
		eng:        d.eng,
		id:         d.eng.nextID,
		parent:     d,
		partitions: d.partitions,
		pagesPer:   d.pagesPer,
		cpuPerPage: cpuPerPage,
	}
	d.eng.nextID++
	return nd
}

// Cache marks the dataset for caching (Spark's .cache()); it returns the
// dataset for chaining.
func (d *Dataset) Cache() *Dataset {
	d.cached = true
	return d
}

// Partitions returns the partition count.
func (d *Dataset) Partitions() int { return d.partitions }

func (d *Dataset) key(part int) uint64 {
	return uint64(d.id)<<32 | uint64(part)
}

// Count materializes every partition and returns the total page count — the
// action that drives each iteration of the Figure 10 jobs.
func (d *Dataset) Count(ctx context.Context) (int64, error) {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("rdd: context does not carry a des.Proc")
	}
	var total int64
	for part := 0; part < d.partitions; part++ {
		if err := d.materialize(ctx, p, part); err != nil {
			return total, err
		}
		total += int64(d.pagesPer)
	}
	return total, nil
}

// materialize produces partition part: cache hit, or lineage recompute, then
// a cache store if the dataset is marked cached.
func (d *Dataset) materialize(ctx context.Context, p *des.Proc, part int) error {
	exec := d.eng.exec
	if d.cached {
		if entry, ok := exec.cache[d.key(part)]; ok {
			return exec.loadCached(ctx, p, d.key(part), entry)
		}
	}
	if err := d.computeLineage(ctx, p, part); err != nil {
		return err
	}
	if d.cached {
		exec.storeCached(ctx, p, d.key(part), d.pagesPer)
	}
	return nil
}

// computeLineage runs the partition through its dependency chain.
func (d *Dataset) computeLineage(ctx context.Context, p *des.Proc, part int) error {
	exec := d.eng.exec
	if d.isSource {
		off := d.sourceOff + int64(part*d.pagesPer)*PageSize
		exec.disk.Transfer(p, off, int64(d.pagesPer)*PageSize)
		exec.stats.SourceReads++
		return nil
	}
	if err := d.parent.materialize(ctx, p, part); err != nil {
		return err
	}
	p.Sleep(time.Duration(d.pagesPer) * d.cpuPerPage)
	exec.stats.Computed++
	return nil
}

// loadCached charges the cost of reading a cached partition.
func (e *Executor) loadCached(ctx context.Context, p *des.Proc, key uint64, entry cacheEntry) error {
	bytes := int64(entry.pages) * PageSize
	switch entry.tier {
	case TierMemory:
		e.dram.Access(p, bytes)
		e.stats.MemHits++
		return nil
	case TierDisagg:
		loc, err := e.vs.Location(pagetable.EntryID(key))
		if err != nil {
			return fmt.Errorf("rdd: cached partition lost: %w", err)
		}
		if _, _, err := e.vs.Get(ctx, pagetable.EntryID(key)); err != nil {
			return fmt.Errorf("rdd: disagg read: %w", err)
		}
		if loc.Tier == pagetable.TierSharedMemory {
			e.shm.Move(p, bytes)
		}
		e.stats.DisaggHits++
		return nil
	default:
		return fmt.Errorf("rdd: cache entry in unknown tier %d", entry.tier)
	}
}

// storeCached places a freshly computed partition in the cache hierarchy.
func (e *Executor) storeCached(ctx context.Context, p *des.Proc, key uint64, pages int) {
	e.stats.CacheStores++
	if e.used+pages <= e.memPages {
		e.used += pages
		e.dram.Access(p, int64(pages)*PageSize)
		e.cache[key] = cacheEntry{tier: TierMemory, pages: pages}
		return
	}
	e.stats.Overflowed++
	if e.mode == ModeVanilla {
		// MEMORY_ONLY: the overflow partition is not cached; later uses
		// recompute it through the lineage.
		return
	}
	// DAHI: park the partition off-heap in disaggregated memory.
	bytes := pages * PageSize
	payload := make([]byte, bytes)
	tier, err := e.vs.Put(ctx, pagetable.EntryID(key), payload, roundClass(bytes), bytes)
	if err != nil {
		// Disaggregated memory exhausted: behave like vanilla.
		return
	}
	if tier == pagetable.TierSharedMemory {
		e.shm.Move(p, int64(bytes))
	}
	e.cache[key] = cacheEntry{tier: TierDisagg, pages: pages}
}

// roundClass rounds partition payloads to power-of-two allocation classes.
func roundClass(n int) int {
	c := PageSize
	for c < n {
		c *= 2
	}
	return c
}
