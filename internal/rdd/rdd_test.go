package rdd

import (
	"context"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/simnet"
	"godm/internal/transport"
)

type rig struct {
	env  *des.Env
	vs   *core.VirtualServer
	dram *memdev.DRAM
	shm  *memdev.SharedMem
	disk *memdev.Disk
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 8, HeartbeatTimeout: 3})
	if err != nil {
		t.Fatal(err)
	}
	var vs *core.VirtualServer
	for i := 1; i <= 4; i++ {
		ep, err := fabric.Attach(transport.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node, err := core.NewNode(core.Config{
			ID:                transport.NodeID(i),
			SharedPoolBytes:   16 << 20,
			SendPoolBytes:     1 << 20,
			RecvPoolBytes:     64 << 20,
			SlabSize:          1 << 20,
			ReplicationFactor: 1,
		}, ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			vs, err = node.AddServer("executor0", 16<<20)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	params := memdev.DefaultParams()
	return &rig{
		env:  env,
		vs:   vs,
		dram: memdev.NewDRAM(params),
		shm:  memdev.NewSharedMem(params),
		disk: memdev.NewDisk(env, "hdfs", params),
	}
}

func (r *rig) newExecutor(t *testing.T, mode Mode, memPages int) *Executor {
	t.Helper()
	cfg := ExecutorConfig{
		Name: "exec0", Mode: mode, MemPages: memPages,
		DRAM: r.dram, Disk: r.disk,
	}
	if mode == ModeDAHI {
		cfg.VS = r.vs
		cfg.SHM = r.shm
	}
	exec, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

// runJob executes an iterative cached-scan job and returns completion time.
func (r *rig) runJob(t *testing.T, exec *Executor, partitions, pagesPer, iters int) time.Duration {
	t.Helper()
	var done time.Duration
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		eng := NewEngine(exec)
		src, err := eng.TextFile(partitions, pagesPer)
		if err != nil {
			t.Errorf("TextFile: %v", err)
			return
		}
		data := src.Map(2 * time.Microsecond).Cache()
		for i := 0; i < iters; i++ {
			step := data.Map(3 * time.Microsecond)
			if _, err := step.Count(ctx); err != nil {
				t.Errorf("iteration %d: %v", i, err)
				return
			}
		}
		done = p.Now()
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	return done
}

func TestExecutorValidation(t *testing.T) {
	r := newRig(t)
	if _, err := NewExecutor(ExecutorConfig{Mode: ModeVanilla, MemPages: 0, DRAM: r.dram, Disk: r.disk}); err == nil {
		t.Fatal("expected error for zero memory")
	}
	if _, err := NewExecutor(ExecutorConfig{Mode: ModeDAHI, MemPages: 10, DRAM: r.dram, Disk: r.disk}); err == nil {
		t.Fatal("expected error for DAHI without VS")
	}
	if _, err := NewExecutor(ExecutorConfig{Mode: Mode(9), MemPages: 10, DRAM: r.dram, Disk: r.disk}); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}

func TestModeString(t *testing.T) {
	if ModeVanilla.String() != "vanilla" || ModeDAHI.String() != "dahi" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestTextFileValidation(t *testing.T) {
	r := newRig(t)
	eng := NewEngine(r.newExecutor(t, ModeVanilla, 100))
	if _, err := eng.TextFile(0, 10); err == nil {
		t.Fatal("expected error for zero partitions")
	}
}

func TestFullyCachedJobHitsMemory(t *testing.T) {
	r := newRig(t)
	exec := r.newExecutor(t, ModeVanilla, 1000) // everything fits
	r.runJob(t, exec, 8, 16, 3)                 // 128 pages cached
	st := exec.Stats()
	if st.SourceReads != 8 {
		t.Fatalf("SourceReads = %d, want 8 (input read once)", st.SourceReads)
	}
	// First iteration computes and stores; the next two hit memory.
	if st.MemHits != 8*2 {
		t.Fatalf("MemHits = %d, want 16", st.MemHits)
	}
	if st.Overflowed != 0 {
		t.Fatalf("Overflowed = %d, want 0", st.Overflowed)
	}
}

func TestVanillaRecomputesOverflow(t *testing.T) {
	r := newRig(t)
	exec := r.newExecutor(t, ModeVanilla, 64) // half of 128 pages fit
	r.runJob(t, exec, 8, 16, 3)
	st := exec.Stats()
	// 4 partitions cached, 4 recomputed every iteration: source re-read.
	if st.SourceReads <= 8 {
		t.Fatalf("SourceReads = %d, want re-reads beyond the initial 8", st.SourceReads)
	}
	if st.DisaggHits != 0 {
		t.Fatalf("vanilla used disaggregated memory: %+v", st)
	}
}

func TestDAHIParksOverflowInDisagg(t *testing.T) {
	r := newRig(t)
	exec := r.newExecutor(t, ModeDAHI, 64)
	r.runJob(t, exec, 8, 16, 3)
	st := exec.Stats()
	if st.SourceReads != 8 {
		t.Fatalf("SourceReads = %d, want 8 (no recompute)", st.SourceReads)
	}
	if st.DisaggHits == 0 {
		t.Fatalf("no disagg hits: %+v", st)
	}
	if st.Overflowed == 0 {
		t.Fatalf("expected overflow: %+v", st)
	}
}

func TestDAHIBeatsVanillaOnPartialCache(t *testing.T) {
	// Figure 10's core claim: with medium/large datasets (partial caching),
	// DAHI finishes iterative jobs substantially faster than vanilla.
	r1 := newRig(t)
	vanilla := r1.newExecutor(t, ModeVanilla, 64)
	tVanilla := r1.runJob(t, vanilla, 8, 16, 4)
	r2 := newRig(t)
	dahi := r2.newExecutor(t, ModeDAHI, 64)
	tDAHI := r2.runJob(t, dahi, 8, 16, 4)
	if tDAHI >= tVanilla {
		t.Fatalf("DAHI %v not faster than vanilla %v", tDAHI, tVanilla)
	}
	speedup := float64(tVanilla) / float64(tDAHI)
	if speedup < 1.2 {
		t.Fatalf("speedup %.2f too small", speedup)
	}
}

func TestSmallDatasetModesEquivalent(t *testing.T) {
	// Figure 10: with small datasets everything fits in executor memory and
	// the two systems perform the same.
	r1 := newRig(t)
	vanilla := r1.newExecutor(t, ModeVanilla, 1000)
	tVanilla := r1.runJob(t, vanilla, 8, 16, 4)
	r2 := newRig(t)
	dahi := r2.newExecutor(t, ModeDAHI, 1000)
	tDAHI := r2.runJob(t, dahi, 8, 16, 4)
	ratio := float64(tVanilla) / float64(tDAHI)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("fully-cached runs differ: vanilla %v vs dahi %v", tVanilla, tDAHI)
	}
}

func TestLineageChainComputes(t *testing.T) {
	r := newRig(t)
	exec := r.newExecutor(t, ModeVanilla, 1000)
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		eng := NewEngine(exec)
		src, err := eng.TextFile(4, 8)
		if err != nil {
			t.Errorf("TextFile: %v", err)
			return
		}
		chain := src.Map(time.Microsecond).Map(time.Microsecond).Map(time.Microsecond)
		n, err := chain.Count(ctx)
		if err != nil {
			t.Errorf("Count: %v", err)
			return
		}
		if n != 32 {
			t.Errorf("Count = %d, want 32", n)
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if st := exec.Stats(); st.Computed != 12 { // 3 maps x 4 partitions
		t.Fatalf("Computed = %d, want 12", st.Computed)
	}
}

func TestCacheIsolationBetweenDatasets(t *testing.T) {
	r := newRig(t)
	exec := r.newExecutor(t, ModeDAHI, 32)
	r.env.Go("driver", func(p *des.Proc) {
		ctx := des.NewContext(context.Background(), p)
		eng := NewEngine(exec)
		srcA, _ := eng.TextFile(2, 16)
		srcB, _ := eng.TextFile(2, 16)
		a := srcA.Map(time.Microsecond).Cache()
		b := srcB.Map(time.Microsecond).Cache()
		if _, err := a.Count(ctx); err != nil {
			t.Errorf("a: %v", err)
			return
		}
		if _, err := b.Count(ctx); err != nil {
			t.Errorf("b: %v", err)
			return
		}
		// Second pass: both come from cache (memory or disagg), no source
		// re-reads.
		before := exec.Stats().SourceReads
		if _, err := a.Count(ctx); err != nil {
			t.Errorf("a2: %v", err)
			return
		}
		if _, err := b.Count(ctx); err != nil {
			t.Errorf("b2: %v", err)
			return
		}
		if exec.Stats().SourceReads != before {
			t.Error("cached datasets re-read the source")
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}
