package slab

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestPool(t *testing.T, maxBytes int64, slabSize int) *Pool {
	t.Helper()
	p, err := NewPool("test", maxBytes, WithSlabSize(slabSize))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllocFreeRoundTrip(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	h, err := p.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello disaggregated world")
	if err := p.Write(h, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(h, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
	if err := p.Free(h); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBadClass(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	if _, err := p.Alloc(0); err == nil {
		t.Fatal("expected error for class 0")
	}
	if _, err := p.Alloc(8192); err == nil {
		t.Fatal("expected error for class > slab size")
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := newTestPool(t, 8192, 4096) // room for exactly 2 slabs
	var handles []Handle
	for {
		h, err := p.Alloc(4096)
		if err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("err = %v, want ErrNoSpace", err)
			}
			break
		}
		handles = append(handles, h)
	}
	if len(handles) != 2 {
		t.Fatalf("allocated %d blocks, want 2", len(handles))
	}
	// Freeing lets allocation proceed again.
	if err := p.Free(handles[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(4096); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestDoubleFree(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	h, _ := p.Alloc(512)
	if err := p.Free(h); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(h); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("double free err = %v, want ErrBadHandle", err)
	}
}

func TestForeignHandleRejected(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	if err := p.Free(Handle{SlabID: 99, Offset: 0, Class: 512}); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v, want ErrBadHandle", err)
	}
	if _, err := p.Read(Handle{SlabID: 99, Class: 512}, 1); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v, want ErrBadHandle", err)
	}
}

func TestMisalignedHandleRejected(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	h, _ := p.Alloc(512)
	bad := h
	bad.Offset += 3
	if err := p.Write(bad, []byte{1}); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v, want ErrBadHandle", err)
	}
}

func TestWriteOversize(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	h, _ := p.Alloc(512)
	if err := p.Write(h, make([]byte, 513)); err == nil {
		t.Fatal("expected error for oversize write")
	}
}

func TestMixedClassesIsolated(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	h512, _ := p.Alloc(512)
	h2048, _ := p.Alloc(2048)
	if h512.SlabID == h2048.SlabID {
		t.Fatal("different classes must live in different slabs")
	}
	if err := p.Write(h512, bytes.Repeat([]byte{0xAA}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(h2048, bytes.Repeat([]byte{0xBB}, 2048)); err != nil {
		t.Fatal(err)
	}
	a, _ := p.Read(h512, 512)
	b, _ := p.Read(h2048, 2048)
	if a[0] != 0xAA || b[0] != 0xBB {
		t.Fatal("cross-class data corruption")
	}
}

func TestEvictLRUReturnsLiveHandles(t *testing.T) {
	p := newTestPool(t, 16384, 4096)
	h1, _ := p.Alloc(4096) // slab 0
	h2, _ := p.Alloc(4096) // slab 1
	_ = h2
	// Touch slab 0 so slab 1 becomes LRU.
	if err := p.Write(h1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	victims, err := p.EvictLRU()
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || victims[0].SlabID != h2.SlabID {
		t.Fatalf("evicted %+v, want slab %d", victims, h2.SlabID)
	}
	// Evicted handle is now invalid.
	if _, err := p.Read(h2, 1); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("read of evicted handle: err = %v, want ErrBadHandle", err)
	}
	// Survivor still valid.
	if _, err := p.Read(h1, 1); err != nil {
		t.Fatalf("survivor read: %v", err)
	}
}

func TestEvictEmptyPool(t *testing.T) {
	p := newTestPool(t, 1<<20, 4096)
	if _, err := p.EvictLRU(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestShrinkEmptyReleasesOnlyFreeSlabs(t *testing.T) {
	p := newTestPool(t, 3*4096, 4096)
	h1, _ := p.Alloc(4096)
	h2, _ := p.Alloc(4096)
	if err := p.Free(h2); err != nil {
		t.Fatal(err)
	}
	released := p.ShrinkEmpty(2 * 4096)
	if released != 4096 {
		t.Fatalf("released %d, want 4096 (one empty slab)", released)
	}
	if _, err := p.Read(h1, 1); err != nil {
		t.Fatalf("live block disturbed by shrink: %v", err)
	}
	st := p.Stats()
	if st.MaxBytes != 2*4096 {
		t.Fatalf("MaxBytes after shrink = %d, want %d", st.MaxBytes, 2*4096)
	}
}

func TestGrowExtendsBudget(t *testing.T) {
	p := newTestPool(t, 4096, 4096)
	if _, err := p.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(4096); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	p.Grow(4096)
	if _, err := p.Alloc(4096); err != nil {
		t.Fatalf("alloc after grow: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := newTestPool(t, 1<<20, 8192)
	var hs []Handle
	for i := 0; i < 20; i++ {
		h, err := p.Alloc(2048)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	st := p.Stats()
	if st.LiveBlocks != 20 {
		t.Fatalf("LiveBlocks = %d, want 20", st.LiveBlocks)
	}
	if st.LiveBytes != 20*2048 {
		t.Fatalf("LiveBytes = %d, want %d", st.LiveBytes, 20*2048)
	}
	if st.Slabs != 5 { // 8192/2048 = 4 blocks per slab
		t.Fatalf("Slabs = %d, want 5", st.Slabs)
	}
	for _, h := range hs {
		if err := p.Free(h); err != nil {
			t.Fatal(err)
		}
	}
	st = p.Stats()
	if st.LiveBlocks != 0 || st.LiveBytes != 0 {
		t.Fatalf("after free all: %+v", st)
	}
}

func TestFreeBytes(t *testing.T) {
	p := newTestPool(t, 8192, 4096)
	if got := p.FreeBytes(); got != 8192 {
		t.Fatalf("FreeBytes = %d, want 8192", got)
	}
	h, _ := p.Alloc(1024)
	if got := p.FreeBytes(); got != 8192-1024 {
		t.Fatalf("FreeBytes = %d, want %d", got, 8192-1024)
	}
	_ = p.Free(h)
}

func TestRegistrationCounters(t *testing.T) {
	p := newTestPool(t, 16384, 4096)
	h, _ := p.Alloc(4096)
	_, _ = p.Alloc(4096)
	_ = h
	if st := p.Stats(); st.Registrations != 2 || st.Deregistrations != 0 {
		t.Fatalf("reg counters = %+v", st)
	}
	if _, err := p.EvictLRU(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Deregistrations != 1 {
		t.Fatalf("deregistrations = %d, want 1", st.Deregistrations)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := newTestPool(t, 8<<20, DefaultSlabSize)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []Handle
			for i := 0; i < 500; i++ {
				if len(local) > 0 && rng.Intn(2) == 0 {
					h := local[len(local)-1]
					local = local[:len(local)-1]
					if err := p.Free(h); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
				} else {
					classes := []int{512, 1024, 2048, 4096}
					h, err := p.Alloc(classes[rng.Intn(len(classes))])
					if err != nil {
						continue
					}
					local = append(local, h)
				}
			}
			for _, h := range local {
				if err := p.Free(h); err != nil {
					t.Errorf("cleanup Free: %v", err)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if st := p.Stats(); st.LiveBlocks != 0 {
		t.Fatalf("leaked %d blocks", st.LiveBlocks)
	}
}

// Property: alloc never hands out the same (slab, offset) twice while live,
// and live accounting matches the set of outstanding handles.
func TestAllocUniquenessProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p, err := NewPool("q", 1<<18, WithSlabSize(4096))
		if err != nil {
			return false
		}
		live := map[Handle]bool{}
		var order []Handle
		for _, op := range ops {
			if op%3 == 0 && len(order) > 0 {
				h := order[0]
				order = order[1:]
				delete(live, h)
				if err := p.Free(h); err != nil {
					return false
				}
			} else {
				classes := []int{512, 1024, 2048, 4096}
				h, err := p.Alloc(classes[int(op)%len(classes)])
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				key := Handle{SlabID: h.SlabID, Offset: h.Offset, Class: h.Class}
				if live[key] {
					return false // double allocation
				}
				live[key] = true
				order = append(order, h)
			}
		}
		return p.Stats().LiveBlocks == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	p, _ := NewPool("bench", 64<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, err := p.Alloc(2048)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Free(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite4K(b *testing.B) {
	p, _ := NewPool("bench", 64<<20)
	h, _ := p.Alloc(4096)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Write(h, data); err != nil {
			b.Fatal(err)
		}
	}
}
