package slab

import (
	"bytes"
	"errors"
	"testing"
)

func TestBackedPoolWritesLandInBuffer(t *testing.T) {
	buf := make([]byte, 8192)
	p, err := NewPoolOver("recv", buf, WithSlabSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(h, []byte("remote page")); err != nil {
		t.Fatal(err)
	}
	off, err := p.GlobalOffset(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[off:off+11], []byte("remote page")) {
		t.Fatalf("buffer at %d = %q", off, buf[off:off+11])
	}
}

func TestBackedPoolValidation(t *testing.T) {
	if _, err := NewPoolOver("x", make([]byte, 100), WithSlabSize(4096)); err == nil {
		t.Fatal("expected error for non-multiple buffer")
	}
	if _, err := NewPoolOver("x", nil, WithSlabSize(4096)); err == nil {
		t.Fatal("expected error for empty buffer")
	}
}

func TestBackedPoolBudgetIsBufferSize(t *testing.T) {
	buf := make([]byte, 8192)
	p, err := NewPoolOver("recv", buf, WithSlabSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(4096); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestBackedPoolSlotRecycledAfterEviction(t *testing.T) {
	buf := make([]byte, 4096)
	p, err := NewPoolOver("recv", buf, WithSlabSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := p.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	off1, _ := p.GlobalOffset(h1)
	if _, err := p.EvictLRU(); err != nil {
		t.Fatal(err)
	}
	h2, err := p.Alloc(4096)
	if err != nil {
		t.Fatalf("alloc after eviction: %v", err)
	}
	off2, _ := p.GlobalOffset(h2)
	if off1 != off2 {
		t.Fatalf("slot not recycled: %d vs %d", off1, off2)
	}
}

func TestGlobalOffsetUnbackedPool(t *testing.T) {
	p, _ := NewPool("plain", 8192, WithSlabSize(4096))
	h, _ := p.Alloc(4096)
	if _, err := p.GlobalOffset(h); err == nil {
		t.Fatal("expected error for unbacked pool")
	}
	if _, err := p.HandleAt(0); err == nil {
		t.Fatal("expected error for unbacked pool")
	}
}

func TestHandleAtRoundTrip(t *testing.T) {
	buf := make([]byte, 16384)
	p, err := NewPoolOver("recv", buf, WithSlabSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	var handles []Handle
	for i := 0; i < 6; i++ {
		h, err := p.Alloc(2048)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		off, err := p.GlobalOffset(h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.HandleAt(off)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("HandleAt(%d) = %+v, want %+v", off, got, h)
		}
		// Interior offsets also resolve to the covering block.
		got, err = p.HandleAt(off + 100)
		if err != nil || got != h {
			t.Fatalf("interior HandleAt = %+v, %v", got, err)
		}
	}
}

func TestHandleAtFreeBlock(t *testing.T) {
	buf := make([]byte, 4096)
	p, _ := NewPoolOver("recv", buf, WithSlabSize(4096))
	h, _ := p.Alloc(2048)
	off, _ := p.GlobalOffset(h)
	_ = p.Free(h)
	if _, err := p.HandleAt(off); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v, want ErrBadHandle", err)
	}
	if _, err := p.HandleAt(999999); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("out-of-range err = %v, want ErrBadHandle", err)
	}
}
