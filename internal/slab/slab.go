// Package slab implements the registered-memory slab allocator that backs
// every disaggregated memory pool in the system: the node-coordinated shared
// memory pool and the cluster-wide RDMA send/receive buffer pools (§IV.B,
// §IV.F of the paper).
//
// Memory is carved into fixed-size slabs. Each slab is dedicated to one size
// class (512 B … 4 KB compressed-page classes) and subdivided into blocks.
// Slab creation models RDMA memory-region registration; slab eviction models
// preemptive deregistration when a node reclaims donated memory, returning
// the still-live blocks so the caller can relocate them (to another node or
// to disk) before the region disappears.
//
// A pool is internally sharded (WithShards): each shard owns a disjoint set
// of slabs under its own mutex, so operations on blocks in different shards
// never contend. The shard for an allocation is striped by hashing the size
// class together with the caller's hint (typically the entry key), while the
// pool-wide byte budget is enforced with a lock-free reservation, so the
// capacity behaviour — an allocation fails only when no shard holds a free
// block of the class and the budget cannot register another slab — is
// identical to a single-shard pool.
package slab

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Sentinel errors.
var (
	// ErrNoSpace is returned when the pool cannot allocate another block and
	// cannot register another slab within its byte budget.
	ErrNoSpace = errors.New("slab: pool exhausted")
	// ErrBadHandle is returned for operations on freed or foreign handles.
	ErrBadHandle = errors.New("slab: invalid handle")
	// ErrEmpty is returned by EvictLRU when no slab exists.
	ErrEmpty = errors.New("slab: no slabs to evict")
)

// DefaultSlabSize is 1 MiB, matching common RDMA registration granularity.
const DefaultSlabSize = 1 << 20

// maxShards bounds WithShards; beyond this the per-shard fixed cost
// outweighs any contention win.
const maxShards = 256

// Handle identifies one allocated block.
type Handle struct {
	SlabID int
	Offset int // byte offset within the slab
	Class  int // block size in bytes
}

type slabRegion struct {
	id       int
	class    int
	base     int // offset of this slab within a backing buffer, if any
	buf      []byte
	freeOffs []int
	live     map[int]bool // offset -> allocated
	lastUse  int64
}

// shard is one lock domain of the pool. Slab IDs encode their shard
// (id % shards == shard index), so any handle maps to its lock in O(1).
type shard struct {
	idx int

	mu          sync.Mutex
	nextLocalID int
	slabs       map[int]*slabRegion
	// partial[class] lists slabs of that class with at least one free block.
	partial map[int]map[int]*slabRegion
}

// Pool is a concurrency-safe, sharded slab allocator with a fixed byte
// budget. Independent operations on blocks in different shards proceed in
// parallel; the budget is a pool-wide atomic.
type Pool struct {
	name     string
	slabSize int
	shards   []*shard

	// maxBytes is the byte budget; registeredBytes the bytes currently held
	// in registered slabs. registeredBytes is reserved with a CAS loop
	// before a slab is created, so it never exceeds maxBytes and never goes
	// negative, without any pool-wide lock.
	maxBytes        atomic.Int64
	registeredBytes atomic.Int64

	// tick is the pool-wide logical clock ordering slabs for LRU eviction.
	tick atomic.Int64

	registrations   atomic.Int64
	deregistrations atomic.Int64

	// backing, when non-nil, is the contiguous buffer slabs are carved from
	// (see NewPoolOver). baseMu is a leaf lock (acquired, if at all, inside
	// a shard lock) guarding base-slot recycling and the base→slab index
	// that makes HandleAt O(1).
	backing   []byte
	baseMu    sync.Mutex
	freeBases []int
	nextBase  int
	baseSlab  map[int]int // slab base offset -> slab id
}

// Option configures a Pool.
type Option func(*poolConfig)

type poolConfig struct {
	slabSize int
	shards   int
}

// WithSlabSize overrides the slab size in bytes (must be positive).
func WithSlabSize(n int) Option {
	return func(c *poolConfig) { c.slabSize = n }
}

// WithShards splits the pool into n independently locked shards (default 1,
// which reproduces the single-lock allocator exactly). Striping is by size
// class and allocation hint, so it is deterministic for a given workload.
func WithShards(n int) Option {
	return func(c *poolConfig) { c.shards = n }
}

// NewPool returns a pool named name limited to maxBytes of registered memory.
func NewPool(name string, maxBytes int64, opts ...Option) (*Pool, error) {
	cfg := poolConfig{slabSize: DefaultSlabSize, shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.slabSize <= 0 {
		return nil, fmt.Errorf("slab: slab size %d must be positive", cfg.slabSize)
	}
	if cfg.shards < 1 || cfg.shards > maxShards {
		return nil, fmt.Errorf("slab: shard count %d out of range [1, %d]", cfg.shards, maxShards)
	}
	if maxBytes < 0 {
		return nil, fmt.Errorf("slab: max bytes %d must be non-negative", maxBytes)
	}
	p := &Pool{
		name:     name,
		slabSize: cfg.slabSize,
		shards:   make([]*shard, cfg.shards),
	}
	for i := range p.shards {
		p.shards[i] = &shard{
			idx:     i,
			slabs:   map[int]*slabRegion{},
			partial: map[int]map[int]*slabRegion{},
		}
	}
	p.maxBytes.Store(maxBytes)
	return p, nil
}

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// Shards returns the number of lock shards.
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor stripes an allocation to a shard by size class and hint. The
// result depends only on (class, hint), never on timing, so simulated runs
// stay deterministic.
func (p *Pool) shardFor(class int, hint uint64) int {
	if len(p.shards) == 1 {
		return 0
	}
	h := uint64(class)*0x9E3779B97F4A7C15 ^ hint*0xBF58476D1CE4E5B9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	return int(h % uint64(len(p.shards)))
}

// shardOf maps a handle to the shard owning its slab.
func (p *Pool) shardOf(h Handle) (*shard, error) {
	if h.SlabID < 0 {
		return nil, fmt.Errorf("%w: slab %d not registered", ErrBadHandle, h.SlabID)
	}
	return p.shards[h.SlabID%len(p.shards)], nil
}

// Alloc claims one block of the given size class. class must be positive and
// no larger than the slab size.
func (p *Pool) Alloc(class int) (Handle, error) {
	return p.AllocHint(class, 0)
}

// AllocHint is Alloc with a striping hint: allocations with different hints
// (typically the entry key) spread across shards even within one size class,
// so concurrent allocators contend only when they hash to the same shard.
// Capacity is pool-wide: if the home shard has no free block and the budget
// is spent, every other shard is tried before reporting ErrNoSpace.
func (p *Pool) AllocHint(class int, hint uint64) (Handle, error) {
	if class <= 0 || class > p.slabSize {
		return Handle{}, fmt.Errorf("slab: class %d out of range (0, %d]", class, p.slabSize)
	}
	tick := p.tick.Add(1)
	home := p.shardFor(class, hint)
	if h, ok := p.allocIn(p.shards[home], class, tick, true); ok {
		return h, nil
	}
	// The home shard had no free block and could not register a new slab.
	// Fall back to any shard with a partial slab of this class so the pool
	// never fails while a compatible free block exists anywhere.
	for i := range p.shards {
		if i == home {
			continue
		}
		if h, ok := p.allocIn(p.shards[i], class, tick, false); ok {
			return h, nil
		}
	}
	return Handle{}, fmt.Errorf("%w: %s at %d bytes", ErrNoSpace, p.name, p.maxBytes.Load())
}

// allocIn tries to take a block of class from sh, registering a fresh slab
// (if mayRegister and the budget allows) when no partial slab exists.
func (p *Pool) allocIn(sh *shard, class int, tick int64, mayRegister bool) (Handle, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if set := sh.partial[class]; len(set) > 0 {
		return p.takeBlock(sh, minIDSlab(set), tick), true
	}
	if !mayRegister || !p.reserveSlabBudget() {
		return Handle{}, false
	}
	s := p.registerSlab(sh, class)
	return p.takeBlock(sh, s, tick), true
}

// reserveSlabBudget claims slabSize bytes of the pool budget, or reports
// false when the budget is spent. The CAS loop means registeredBytes can
// never overshoot maxBytes, even transiently.
func (p *Pool) reserveSlabBudget() bool {
	n := int64(p.slabSize)
	for {
		cur := p.registeredBytes.Load()
		if cur+n > p.maxBytes.Load() {
			return false
		}
		if p.registeredBytes.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// minIDSlab picks the lowest-ID slab for deterministic allocation order.
func minIDSlab(set map[int]*slabRegion) *slabRegion {
	best := -1
	for id := range set {
		if best == -1 || id < best {
			best = id
		}
	}
	return set[best]
}

// registerSlab creates a slab in sh. Caller holds sh.mu and has already
// reserved the budget.
func (p *Pool) registerSlab(sh *shard, class int) *slabRegion {
	id := sh.nextLocalID*len(p.shards) + sh.idx
	sh.nextLocalID++
	blocks := p.slabSize / class
	s := &slabRegion{
		id:    id,
		class: class,
		live:  make(map[int]bool, blocks),
	}
	if p.backing != nil {
		p.baseMu.Lock()
		if len(p.freeBases) > 0 {
			s.base = p.freeBases[len(p.freeBases)-1]
			p.freeBases = p.freeBases[:len(p.freeBases)-1]
		} else {
			s.base = p.nextBase
			p.nextBase += p.slabSize
		}
		p.baseSlab[s.base] = id
		p.baseMu.Unlock()
		s.buf = p.backing[s.base : s.base+p.slabSize]
	} else {
		s.buf = make([]byte, p.slabSize)
	}
	for i := blocks - 1; i >= 0; i-- {
		s.freeOffs = append(s.freeOffs, i*class)
	}
	sh.slabs[id] = s
	if sh.partial[class] == nil {
		sh.partial[class] = map[int]*slabRegion{}
	}
	sh.partial[class][id] = s
	p.registrations.Add(1)
	return s
}

// takeBlock pops a free block from s. Caller holds the shard lock.
func (p *Pool) takeBlock(sh *shard, s *slabRegion, tick int64) Handle {
	off := s.freeOffs[len(s.freeOffs)-1]
	s.freeOffs = s.freeOffs[:len(s.freeOffs)-1]
	s.live[off] = true
	s.lastUse = tick
	if len(s.freeOffs) == 0 {
		delete(sh.partial[s.class], s.id)
	}
	return Handle{SlabID: s.id, Offset: off, Class: s.class}
}

// Free releases a block back to its slab.
func (p *Pool) Free(h Handle) error {
	sh, err := p.shardOf(h)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, err := sh.validate(h)
	if err != nil {
		return err
	}
	delete(s.live, h.Offset)
	s.freeOffs = append(s.freeOffs, h.Offset)
	if sh.partial[s.class] == nil {
		sh.partial[s.class] = map[int]*slabRegion{}
	}
	sh.partial[s.class][s.id] = s
	return nil
}

// validate resolves a handle within the shard. Caller holds sh.mu.
func (sh *shard) validate(h Handle) (*slabRegion, error) {
	s, ok := sh.slabs[h.SlabID]
	if !ok {
		return nil, fmt.Errorf("%w: slab %d not registered", ErrBadHandle, h.SlabID)
	}
	if h.Class != s.class || h.Offset < 0 || h.Offset+h.Class > len(s.buf) || h.Offset%s.class != 0 {
		return nil, fmt.Errorf("%w: handle %+v does not match slab layout", ErrBadHandle, h)
	}
	if !s.live[h.Offset] {
		return nil, fmt.Errorf("%w: block at %d not allocated", ErrBadHandle, h.Offset)
	}
	return s, nil
}

// Write copies data into the block. len(data) must not exceed the class size.
func (p *Pool) Write(h Handle, data []byte) error {
	if len(data) > h.Class {
		return fmt.Errorf("slab: write of %d bytes exceeds class %d", len(data), h.Class)
	}
	sh, err := p.shardOf(h)
	if err != nil {
		return err
	}
	tick := p.tick.Add(1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, err := sh.validate(h)
	if err != nil {
		return err
	}
	s.lastUse = tick
	copy(s.buf[h.Offset:h.Offset+h.Class], data)
	return nil
}

// Read copies up to n bytes of the block into a fresh slice.
func (p *Pool) Read(h Handle, n int) ([]byte, error) {
	return p.ReadAt(h, 0, n)
}

// ReadAt copies n bytes starting at off within the block into a fresh slice.
func (p *Pool) ReadAt(h Handle, off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > h.Class {
		return nil, fmt.Errorf("slab: read [%d,%d) exceeds class %d", off, off+n, h.Class)
	}
	sh, err := p.shardOf(h)
	if err != nil {
		return nil, err
	}
	tick := p.tick.Add(1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, err := sh.validate(h)
	if err != nil {
		return nil, err
	}
	s.lastUse = tick
	out := make([]byte, n)
	copy(out, s.buf[h.Offset+off:h.Offset+off+n])
	return out, nil
}

// EvictLRU deregisters the least-recently-used slab across all shards and
// returns the handles of blocks that were still live in it, so the caller
// can relocate their contents. The block data is gone after this call.
func (p *Pool) EvictLRU() ([]Handle, error) {
	for {
		// Pass 1: find the global LRU candidate, locking one shard at a time.
		victimShard, victimID := -1, 0
		var victimUse int64
		for si, sh := range p.shards {
			sh.mu.Lock()
			for _, s := range sh.slabs {
				if victimShard == -1 || s.lastUse < victimUse ||
					(s.lastUse == victimUse && s.id < victimID) {
					victimShard, victimID, victimUse = si, s.id, s.lastUse
				}
			}
			sh.mu.Unlock()
		}
		if victimShard == -1 {
			return nil, ErrEmpty
		}
		// Pass 2: re-acquire the winner's shard and drop the slab if it still
		// exists; a concurrent eviction or shrink may have raced us, in which
		// case rescan.
		sh := p.shards[victimShard]
		sh.mu.Lock()
		if s, ok := sh.slabs[victimID]; ok {
			handles := p.dropSlab(sh, s)
			sh.mu.Unlock()
			return handles, nil
		}
		sh.mu.Unlock()
	}
}

// dropSlab deregisters s from sh. Caller holds sh.mu.
func (p *Pool) dropSlab(sh *shard, s *slabRegion) []Handle {
	offs := make([]int, 0, len(s.live))
	for off := range s.live {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	handles := make([]Handle, 0, len(offs))
	for _, off := range offs {
		handles = append(handles, Handle{SlabID: s.id, Offset: off, Class: s.class})
	}
	delete(sh.slabs, s.id)
	if set := sh.partial[s.class]; set != nil {
		delete(set, s.id)
	}
	if p.backing != nil {
		p.baseMu.Lock()
		p.freeBases = append(p.freeBases, s.base)
		delete(p.baseSlab, s.base)
		p.baseMu.Unlock()
	}
	p.registeredBytes.Add(-int64(p.slabSize))
	p.deregistrations.Add(1)
	return handles
}

// ShrinkEmpty releases fully-free slabs until the budget drops by up to
// wantBytes, returning the bytes actually released. Live blocks are never
// disturbed.
func (p *Pool) ShrinkEmpty(wantBytes int64) int64 {
	var released int64
	for _, sh := range p.shards {
		if released >= wantBytes {
			break
		}
		sh.mu.Lock()
		ids := make([]int, 0, len(sh.slabs))
		for id := range sh.slabs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if released >= wantBytes {
				break
			}
			s := sh.slabs[id]
			if len(s.live) == 0 {
				p.dropSlab(sh, s)
				released += int64(p.slabSize)
			}
		}
		sh.mu.Unlock()
	}
	for {
		cur := p.maxBytes.Load()
		next := cur - released
		if next < 0 {
			next = 0
		}
		if p.maxBytes.CompareAndSwap(cur, next) {
			break
		}
	}
	return released
}

// ShrinkBudget lowers the pool's byte budget by up to wantBytes without
// touching registered slabs: only unbacked headroom (budget no slab has
// claimed yet) is surrendered. It returns the bytes actually cut. Combined
// with ShrinkEmpty this lets a donor claw back capacity cheapest-first:
// headroom costs nothing, empty slabs cost a deregistration, and only live
// slabs force block migration.
func (p *Pool) ShrinkBudget(wantBytes int64) int64 {
	if wantBytes <= 0 {
		return 0
	}
	for {
		cur := p.maxBytes.Load()
		headroom := cur - p.registeredBytes.Load()
		if headroom <= 0 {
			return 0
		}
		cut := wantBytes
		if cut > headroom {
			cut = headroom
		}
		if p.maxBytes.CompareAndSwap(cur, cur-cut) {
			return cut
		}
	}
}

// Grow raises the pool's byte budget by n.
func (p *Pool) Grow(n int64) {
	if n < 0 {
		panic("slab: Grow with negative bytes")
	}
	p.maxBytes.Add(n)
}

// Stats is a snapshot of pool occupancy.
type Stats struct {
	MaxBytes        int64
	RegisteredBytes int64 // bytes currently held in registered slabs
	LiveBytes       int64 // bytes of allocated blocks (class-rounded)
	LiveBlocks      int
	Slabs           int
	Shards          int
	Registrations   int64 // cumulative slab registrations
	Deregistrations int64 // cumulative slab deregistrations (evictions)
}

// Stats returns a snapshot. Under concurrent mutation the per-shard figures
// are each internally consistent but the cross-shard sums are a racy (still
// monotonic-in-aggregate) composite; quiescent pools get exact numbers.
func (p *Pool) Stats() Stats {
	st := Stats{
		MaxBytes:        p.maxBytes.Load(),
		RegisteredBytes: p.registeredBytes.Load(),
		Shards:          len(p.shards),
		Registrations:   p.registrations.Load(),
		Deregistrations: p.deregistrations.Load(),
	}
	for _, sh := range p.shards {
		sh.mu.Lock()
		st.Slabs += len(sh.slabs)
		for _, s := range sh.slabs {
			st.LiveBlocks += len(s.live)
			st.LiveBytes += int64(len(s.live)) * int64(s.class)
		}
		sh.mu.Unlock()
	}
	return st
}

// FreeBytes reports budget headroom plus free blocks inside registered slabs
// (algebraically, MaxBytes - LiveBytes — independent of how blocks are
// distributed across slabs or shards).
func (p *Pool) FreeBytes() int64 {
	st := p.Stats()
	return (st.MaxBytes - st.RegisteredBytes) + (st.RegisteredBytes - st.LiveBytes)
}
