// Package slab implements the registered-memory slab allocator that backs
// every disaggregated memory pool in the system: the node-coordinated shared
// memory pool and the cluster-wide RDMA send/receive buffer pools (§IV.B,
// §IV.F of the paper).
//
// Memory is carved into fixed-size slabs. Each slab is dedicated to one size
// class (512 B … 4 KB compressed-page classes) and subdivided into blocks.
// Slab creation models RDMA memory-region registration; slab eviction models
// preemptive deregistration when a node reclaims donated memory, returning
// the still-live blocks so the caller can relocate them (to another node or
// to disk) before the region disappears.
package slab

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	// ErrNoSpace is returned when the pool cannot allocate another block and
	// cannot register another slab within its byte budget.
	ErrNoSpace = errors.New("slab: pool exhausted")
	// ErrBadHandle is returned for operations on freed or foreign handles.
	ErrBadHandle = errors.New("slab: invalid handle")
	// ErrEmpty is returned by EvictLRU when no slab exists.
	ErrEmpty = errors.New("slab: no slabs to evict")
)

// DefaultSlabSize is 1 MiB, matching common RDMA registration granularity.
const DefaultSlabSize = 1 << 20

// Handle identifies one allocated block.
type Handle struct {
	SlabID int
	Offset int // byte offset within the slab
	Class  int // block size in bytes
}

type slabRegion struct {
	id       int
	class    int
	base     int // offset of this slab within a backing buffer, if any
	buf      []byte
	freeOffs []int
	live     map[int]bool // offset -> allocated
	lastUse  int64
}

// Pool is a concurrency-safe slab allocator with a fixed byte budget.
type Pool struct {
	mu         sync.Mutex
	name       string
	slabSize   int
	maxBytes   int64
	tick       int64
	nextSlabID int
	slabs      map[int]*slabRegion
	// partial[class] lists slabs of that class with at least one free block.
	partial map[int]map[int]*slabRegion

	// backing, when non-nil, is the contiguous buffer slabs are carved from
	// (see NewPoolOver); freeBases recycles slab slots after eviction.
	backing   []byte
	freeBases []int
	nextBase  int

	registrations   int64
	deregistrations int64
}

// Option configures a Pool.
type Option func(*Pool)

// WithSlabSize overrides the slab size in bytes (must be positive).
func WithSlabSize(n int) Option {
	return func(p *Pool) { p.slabSize = n }
}

// NewPool returns a pool named name limited to maxBytes of registered memory.
func NewPool(name string, maxBytes int64, opts ...Option) (*Pool, error) {
	p := &Pool{
		name:     name,
		slabSize: DefaultSlabSize,
		maxBytes: maxBytes,
		slabs:    map[int]*slabRegion{},
		partial:  map[int]map[int]*slabRegion{},
	}
	for _, o := range opts {
		o(p)
	}
	if p.slabSize <= 0 {
		return nil, fmt.Errorf("slab: slab size %d must be positive", p.slabSize)
	}
	if maxBytes < 0 {
		return nil, fmt.Errorf("slab: max bytes %d must be non-negative", maxBytes)
	}
	return p, nil
}

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// Alloc claims one block of the given size class. class must be positive and
// no larger than the slab size.
func (p *Pool) Alloc(class int) (Handle, error) {
	if class <= 0 || class > p.slabSize {
		return Handle{}, fmt.Errorf("slab: class %d out of range (0, %d]", class, p.slabSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tick++

	if set := p.partial[class]; len(set) > 0 {
		s := minIDSlab(set)
		return p.takeBlock(s), nil
	}
	// Need a fresh slab: register one if the budget allows.
	if int64(len(p.slabs)+1)*int64(p.slabSize) > p.maxBytes {
		return Handle{}, fmt.Errorf("%w: %s at %d bytes", ErrNoSpace, p.name, p.maxBytes)
	}
	s := p.registerSlab(class)
	return p.takeBlock(s), nil
}

// minIDSlab picks the lowest-ID slab for deterministic allocation order.
func minIDSlab(set map[int]*slabRegion) *slabRegion {
	best := -1
	for id := range set {
		if best == -1 || id < best {
			best = id
		}
	}
	return set[best]
}

func (p *Pool) registerSlab(class int) *slabRegion {
	id := p.nextSlabID
	p.nextSlabID++
	blocks := p.slabSize / class
	s := &slabRegion{
		id:    id,
		class: class,
		live:  make(map[int]bool, blocks),
	}
	if p.backing != nil {
		if len(p.freeBases) > 0 {
			s.base = p.freeBases[len(p.freeBases)-1]
			p.freeBases = p.freeBases[:len(p.freeBases)-1]
		} else {
			s.base = p.nextBase
			p.nextBase += p.slabSize
		}
		s.buf = p.backing[s.base : s.base+p.slabSize]
	} else {
		s.buf = make([]byte, p.slabSize)
	}
	for i := blocks - 1; i >= 0; i-- {
		s.freeOffs = append(s.freeOffs, i*class)
	}
	p.slabs[id] = s
	if p.partial[class] == nil {
		p.partial[class] = map[int]*slabRegion{}
	}
	p.partial[class][id] = s
	p.registrations++
	return s
}

func (p *Pool) takeBlock(s *slabRegion) Handle {
	off := s.freeOffs[len(s.freeOffs)-1]
	s.freeOffs = s.freeOffs[:len(s.freeOffs)-1]
	s.live[off] = true
	s.lastUse = p.tick
	if len(s.freeOffs) == 0 {
		delete(p.partial[s.class], s.id)
	}
	return Handle{SlabID: s.id, Offset: off, Class: s.class}
}

// Free releases a block back to its slab.
func (p *Pool) Free(h Handle) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.validate(h)
	if err != nil {
		return err
	}
	delete(s.live, h.Offset)
	s.freeOffs = append(s.freeOffs, h.Offset)
	if p.partial[s.class] == nil {
		p.partial[s.class] = map[int]*slabRegion{}
	}
	p.partial[s.class][s.id] = s
	return nil
}

func (p *Pool) validate(h Handle) (*slabRegion, error) {
	s, ok := p.slabs[h.SlabID]
	if !ok {
		return nil, fmt.Errorf("%w: slab %d not registered", ErrBadHandle, h.SlabID)
	}
	if h.Class != s.class || h.Offset < 0 || h.Offset+h.Class > len(s.buf) || h.Offset%s.class != 0 {
		return nil, fmt.Errorf("%w: handle %+v does not match slab layout", ErrBadHandle, h)
	}
	if !s.live[h.Offset] {
		return nil, fmt.Errorf("%w: block at %d not allocated", ErrBadHandle, h.Offset)
	}
	return s, nil
}

// Write copies data into the block. len(data) must not exceed the class size.
func (p *Pool) Write(h Handle, data []byte) error {
	if len(data) > h.Class {
		return fmt.Errorf("slab: write of %d bytes exceeds class %d", len(data), h.Class)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.validate(h)
	if err != nil {
		return err
	}
	p.tick++
	s.lastUse = p.tick
	copy(s.buf[h.Offset:h.Offset+h.Class], data)
	return nil
}

// Read copies up to n bytes of the block into a fresh slice.
func (p *Pool) Read(h Handle, n int) ([]byte, error) {
	return p.ReadAt(h, 0, n)
}

// ReadAt copies n bytes starting at off within the block into a fresh slice.
func (p *Pool) ReadAt(h Handle, off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > h.Class {
		return nil, fmt.Errorf("slab: read [%d,%d) exceeds class %d", off, off+n, h.Class)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.validate(h)
	if err != nil {
		return nil, err
	}
	p.tick++
	s.lastUse = p.tick
	out := make([]byte, n)
	copy(out, s.buf[h.Offset+off:h.Offset+off+n])
	return out, nil
}

// EvictLRU deregisters the least-recently-used slab and returns the handles
// of blocks that were still live in it, so the caller can relocate their
// contents. The block data is gone after this call.
func (p *Pool) EvictLRU() ([]Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var victim *slabRegion
	for _, s := range p.slabs {
		if victim == nil || s.lastUse < victim.lastUse ||
			(s.lastUse == victim.lastUse && s.id < victim.id) {
			victim = s
		}
	}
	if victim == nil {
		return nil, ErrEmpty
	}
	return p.dropSlab(victim), nil
}

func (p *Pool) dropSlab(s *slabRegion) []Handle {
	offs := make([]int, 0, len(s.live))
	for off := range s.live {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	handles := make([]Handle, 0, len(offs))
	for _, off := range offs {
		handles = append(handles, Handle{SlabID: s.id, Offset: off, Class: s.class})
	}
	delete(p.slabs, s.id)
	if set := p.partial[s.class]; set != nil {
		delete(set, s.id)
	}
	if p.backing != nil {
		p.freeBases = append(p.freeBases, s.base)
	}
	p.deregistrations++
	return handles
}

// ShrinkEmpty releases fully-free slabs until the budget drops by up to
// wantBytes, returning the bytes actually released. Live blocks are never
// disturbed.
func (p *Pool) ShrinkEmpty(wantBytes int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var released int64
	ids := make([]int, 0, len(p.slabs))
	for id := range p.slabs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if released >= wantBytes {
			break
		}
		s := p.slabs[id]
		if len(s.live) == 0 {
			p.dropSlab(s)
			released += int64(p.slabSize)
		}
	}
	p.maxBytes -= released
	if p.maxBytes < 0 {
		p.maxBytes = 0
	}
	return released
}

// Grow raises the pool's byte budget by n.
func (p *Pool) Grow(n int64) {
	if n < 0 {
		panic("slab: Grow with negative bytes")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxBytes += n
}

// Stats is a snapshot of pool occupancy.
type Stats struct {
	MaxBytes        int64
	RegisteredBytes int64 // bytes currently held in registered slabs
	LiveBytes       int64 // bytes of allocated blocks (class-rounded)
	LiveBlocks      int
	Slabs           int
	Registrations   int64 // cumulative slab registrations
	Deregistrations int64 // cumulative slab deregistrations (evictions)
}

// Stats returns a consistent snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		MaxBytes:        p.maxBytes,
		RegisteredBytes: int64(len(p.slabs)) * int64(p.slabSize),
		Slabs:           len(p.slabs),
		Registrations:   p.registrations,
		Deregistrations: p.deregistrations,
	}
	for _, s := range p.slabs {
		st.LiveBlocks += len(s.live)
		st.LiveBytes += int64(len(s.live)) * int64(s.class)
	}
	return st
}

// FreeBytes reports budget headroom plus free blocks inside registered slabs.
func (p *Pool) FreeBytes() int64 {
	st := p.Stats()
	return (st.MaxBytes - st.RegisteredBytes) + (st.RegisteredBytes - st.LiveBytes)
}
