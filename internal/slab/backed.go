package slab

import (
	"fmt"
)

// NewPoolOver returns a pool whose slabs are carved out of the caller's
// contiguous buffer instead of private allocations. This is how the
// cluster-wide receive buffer pool is built: the buffer is an RDMA-registered
// memory region, so remote peers can address any block by its global offset
// within the region while the pool manages allocation locally.
//
// The buffer length must be a multiple of the slab size; the pool's byte
// budget is fixed at len(buf).
func NewPoolOver(name string, buf []byte, opts ...Option) (*Pool, error) {
	p, err := NewPool(name, int64(len(buf)), opts...)
	if err != nil {
		return nil, err
	}
	if len(buf) == 0 || len(buf)%p.slabSize != 0 {
		return nil, fmt.Errorf("slab: backing buffer of %d bytes is not a positive multiple of slab size %d", len(buf), p.slabSize)
	}
	p.backing = buf
	p.baseSlab = map[int]int{}
	return p, nil
}

// GlobalOffset translates a handle from a backed pool into the byte offset of
// its block within the backing buffer, the address a remote peer uses for
// one-sided access.
func (p *Pool) GlobalOffset(h Handle) (int64, error) {
	if p.backing == nil {
		return 0, fmt.Errorf("slab: pool %s has no backing buffer", p.name)
	}
	sh, err := p.shardOf(h)
	if err != nil {
		return 0, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, err := sh.validate(h)
	if err != nil {
		return 0, err
	}
	return int64(s.base) + int64(h.Offset), nil
}

// HandleAt reverse-maps a global offset in the backing buffer to the live
// handle covering it, as needed when a remote peer names a block by offset.
// The base→slab index makes this O(1) regardless of slab count.
func (p *Pool) HandleAt(globalOff int64) (Handle, error) {
	if p.backing == nil {
		return Handle{}, fmt.Errorf("slab: pool %s has no backing buffer", p.name)
	}
	if globalOff < 0 || globalOff >= int64(len(p.backing)) {
		return Handle{}, fmt.Errorf("%w: offset %d outside any slab", ErrBadHandle, globalOff)
	}
	base := int(globalOff) - int(globalOff)%p.slabSize
	p.baseMu.Lock()
	id, ok := p.baseSlab[base]
	p.baseMu.Unlock()
	if !ok {
		return Handle{}, fmt.Errorf("%w: offset %d outside any slab", ErrBadHandle, globalOff)
	}
	sh := p.shards[id%len(p.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.slabs[id]
	if !ok || s.base != base {
		// The slab was dropped (and possibly its base re-issued) between the
		// index lookup and taking its shard lock.
		return Handle{}, fmt.Errorf("%w: offset %d outside any slab", ErrBadHandle, globalOff)
	}
	off := int(globalOff) - base
	off -= off % s.class
	if !s.live[off] {
		return Handle{}, fmt.Errorf("%w: offset %d not allocated", ErrBadHandle, globalOff)
	}
	return Handle{SlabID: s.id, Offset: off, Class: s.class}, nil
}
