package slab

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedAllocSpreadsByHint checks that distinct hints land allocations on
// more than one shard while a fixed hint keeps reusing one shard's partial
// slab (the striping that lets independent clients avoid each other's locks).
func TestShardedAllocSpreadsByHint(t *testing.T) {
	p, err := NewPool("spread", 64<<10, WithSlabSize(4096), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", p.Shards())
	}
	shards := map[int]bool{}
	for hint := uint64(0); hint < 32; hint++ {
		h, err := p.AllocHint(512, hint)
		if err != nil {
			t.Fatal(err)
		}
		shards[h.SlabID%p.Shards()] = true
	}
	if len(shards) < 2 {
		t.Fatalf("32 distinct hints all landed on %d shard(s)", len(shards))
	}
}

// TestShardedPoolConcurrentInvariants is the sharded pool's concurrency
// property test: many goroutines allocate, free, and evict while a sampler
// watches the pool-wide atomic byte budget. At every sampled instant the
// registered budget must sit in [0, maxBytes] — the CAS reservation loop may
// never let it go negative or overshoot — and handles returned by EvictLRU
// must behave like freed blocks (reverse lookups on their offsets error).
// Run with -race; the CI stress job does, repeatedly.
func TestShardedPoolConcurrentInvariants(t *testing.T) {
	const (
		slabSize = 4096
		maxBytes = 64 << 10
		workers  = 8
		rounds   = 300
	)
	buf := make([]byte, maxBytes)
	p, err := NewPoolOver("conc", buf, WithSlabSize(slabSize), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var violations atomic.Int64
	var sampled atomic.Int64
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for !stop.Load() {
			reg := p.registeredBytes.Load()
			max := p.maxBytes.Load()
			if reg < 0 || reg > max {
				violations.Add(1)
				t.Errorf("budget invariant violated: registered=%d max=%d", reg, max)
				return
			}
			sampled.Add(1)
		}
	}()

	classes := []int{512, 1024, 2048, 4096}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var held []Handle
			for i := 0; i < rounds; i++ {
				switch rng.Intn(4) {
				case 0, 1: // alloc
					class := classes[rng.Intn(len(classes))]
					h, err := p.AllocHint(class, rng.Uint64())
					if err != nil {
						if !errors.Is(err, ErrNoSpace) {
							t.Errorf("worker %d: alloc: %v", w, err)
							return
						}
						continue
					}
					held = append(held, h)
				case 2: // free
					if len(held) == 0 {
						continue
					}
					i := rng.Intn(len(held))
					h := held[i]
					held = append(held[:i], held[i+1:]...)
					if err := p.Free(h); err != nil && !errors.Is(err, ErrBadHandle) {
						// ErrBadHandle means another worker's eviction beat
						// us to the block; anything else is a real bug.
						t.Errorf("worker %d: free: %v", w, err)
						return
					}
				case 3: // evict: victims may belong to any worker
					victims, err := p.EvictLRU()
					if err != nil {
						if !errors.Is(err, ErrEmpty) {
							t.Errorf("worker %d: evict: %v", w, err)
						}
						continue
					}
					// A freshly evicted offset must never reverse-map to a
					// live handle (unless some other worker legitimately
					// re-allocated the space, which a new handle would show).
					for _, v := range victims {
						if v.SlabID < 0 {
							t.Errorf("worker %d: evicted handle has negative slab id %d", w, v.SlabID)
						}
					}
				}
			}
			for _, h := range held {
				_ = p.Free(h)
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	samplerWG.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d budget violations observed", violations.Load())
	}
	if sampled.Load() == 0 {
		t.Fatal("sampler never ran")
	}

	// Quiescent checks: everything is freed or evicted, so the exact
	// accounting identities must hold again.
	st := p.Stats()
	if st.LiveBlocks != 0 || st.LiveBytes != 0 {
		t.Fatalf("leaked blocks after teardown: %+v", st)
	}
	if st.RegisteredBytes < 0 || st.RegisteredBytes > st.MaxBytes {
		t.Fatalf("final budget out of range: %+v", st)
	}
}

// TestHandleAtFreedOffsetErrors pins the reverse-map contract the striped
// owner index on the node relies on: once a block is freed (or its whole slab
// evicted), HandleAt on any offset it covered must error, never resurrect a
// stale handle.
func TestHandleAtFreedOffsetErrors(t *testing.T) {
	buf := make([]byte, 16<<10)
	p, err := NewPoolOver("freedat", buf, WithSlabSize(4096), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.AllocHint(1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	off, err := p.GlobalOffset(h)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := p.HandleAt(off); err != nil || got != h {
		t.Fatalf("HandleAt(%d) = %+v, %v; want %+v", off, got, err, h)
	}
	if err := p.Free(h); err != nil {
		t.Fatal(err)
	}
	if _, err := p.HandleAt(off); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("HandleAt on freed offset: err = %v, want ErrBadHandle", err)
	}

	// Evicting a slab must invalidate every offset it covered too.
	h2, err := p.AllocHint(1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := p.GlobalOffset(h2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EvictLRU(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.HandleAt(off2); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("HandleAt on evicted offset: err = %v, want ErrBadHandle", err)
	}
}

// TestShardedCapacityMatchesSingleLock proves capacity equivalence: striping
// never makes the pool fail an allocation the single-lock layout would have
// served. Both layouts must fit exactly maxBytes/class blocks of one class no
// matter how hints scatter the allocations.
func TestShardedCapacityMatchesSingleLock(t *testing.T) {
	const slabSize, class, maxBytes = 4096, 1024, 32 << 10
	for _, shards := range []int{1, 8} {
		p, err := NewPool("cap", maxBytes, WithSlabSize(slabSize), WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		want := maxBytes / class
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < want; i++ {
			if _, err := p.AllocHint(class, rng.Uint64()); err != nil {
				t.Fatalf("shards=%d: alloc %d/%d failed: %v", shards, i+1, want, err)
			}
		}
		if _, err := p.AllocHint(class, rng.Uint64()); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("shards=%d: overfull alloc err = %v, want ErrNoSpace", shards, err)
		}
	}
}
