package kv

import (
	"context"
	"testing"
	"time"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/memdev"
	"godm/internal/simnet"
	"godm/internal/swap"
	"godm/internal/transport"
	"godm/internal/workload"
)

type rig struct {
	env  *des.Env
	deps swap.Deps
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: 8, HeartbeatTimeout: 3})
	if err != nil {
		t.Fatal(err)
	}
	var vs *core.VirtualServer
	for i := 1; i <= 4; i++ {
		ep, err := fabric.Attach(transport.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node, err := core.NewNode(core.Config{
			ID:                transport.NodeID(i),
			SharedPoolBytes:   32 << 20,
			SendPoolBytes:     1 << 20,
			RecvPoolBytes:     32 << 20,
			SlabSize:          1 << 20,
			ReplicationFactor: 1,
		}, ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			vs, err = node.AddServer("kv0", 32<<20)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	params := memdev.DefaultParams()
	return &rig{
		env: env,
		deps: swap.Deps{
			VS:     vs,
			DRAM:   memdev.NewDRAM(params),
			Shared: memdev.NewSharedMem(params),
			Disk:   memdev.NewDisk(env, "swapdev", params),
		},
	}
}

func (r *rig) newServer(t *testing.T, prof workload.Profile, cfg swap.Config, pages int) *Server {
	t.Helper()
	mgr, err := swap.NewManager(cfg, r.deps)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(prof, mgr, pages, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func (r *rig) run(t *testing.T, body func(ctx context.Context, p *des.Proc)) {
	t.Helper()
	r.env.Go("client", func(p *des.Proc) {
		body(des.NewContext(context.Background(), p), p)
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func memcachedProfile(t *testing.T) workload.Profile {
	t.Helper()
	prof, err := workload.ByName("Memcached")
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestNewServerValidation(t *testing.T) {
	r := newRig(t)
	mgr, err := swap.NewManager(swap.FastSwap(16, 10, true, func(int) float64 { return 2 }), r.deps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(memcachedProfile(t), nil, 10, time.Second); err == nil {
		t.Fatal("expected error for nil manager")
	}
	if _, err := NewServer(memcachedProfile(t), mgr, 1, time.Second); err == nil {
		t.Fatal("expected error for 1 page")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	r := newRig(t)
	srv := r.newServer(t, memcachedProfile(t), swap.FastSwap(64, 10, true, func(int) float64 { return 2 }), 128)
	r.run(t, func(ctx context.Context, p *des.Proc) {
		if err := srv.Set(ctx, "user:1", []byte("alice")); err != nil {
			t.Errorf("Set: %v", err)
			return
		}
		v, ok, err := srv.Get(ctx, "user:1")
		if err != nil || !ok || string(v) != "alice" {
			t.Errorf("Get = %q, %v, %v", v, ok, err)
		}
		_, ok, err = srv.Get(ctx, "missing")
		if err != nil || ok {
			t.Errorf("missing key: ok=%v err=%v", ok, err)
		}
	})
	if srv.Ops() != 3 {
		t.Fatalf("Ops = %d, want 3", srv.Ops())
	}
}

func TestSetGetSurvivesSwapOut(t *testing.T) {
	r := newRig(t)
	// Tiny resident set: the value's page will be swapped out and back.
	srv := r.newServer(t, memcachedProfile(t), swap.FastSwap(4, 10, false, func(int) float64 { return 2 }), 64)
	r.run(t, func(ctx context.Context, p *des.Proc) {
		if err := srv.Set(ctx, "k", []byte("v")); err != nil {
			t.Errorf("Set: %v", err)
			return
		}
		if err := srv.Populate(ctx, 16); err != nil { // churn all pages through
			t.Errorf("Populate: %v", err)
			return
		}
		v, ok, err := srv.Get(ctx, "k")
		if err != nil || !ok || string(v) != "v" {
			t.Errorf("Get after churn = %q, %v, %v", v, ok, err)
		}
	})
}

func TestRunOpsRecordsThroughput(t *testing.T) {
	r := newRig(t)
	srv := r.newServer(t, memcachedProfile(t), swap.FastSwap(256, 10, true, func(int) float64 { return 2 }), 512)
	r.run(t, func(ctx context.Context, p *des.Proc) {
		if err := srv.Populate(ctx, 64); err != nil {
			t.Errorf("Populate: %v", err)
			return
		}
		if err := srv.RunOps(ctx, 2000, 7); err != nil {
			t.Errorf("RunOps: %v", err)
		}
	})
	if srv.Ops() != 2000 { // populate is setup, not served traffic
		t.Fatalf("Ops = %d, want 2000", srv.Ops())
	}
	pts := srv.Throughput()
	if len(pts) == 0 {
		t.Fatal("no throughput points")
	}
	var total float64
	for _, pt := range pts {
		total += pt.Rate
	}
	if total <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	r := newRig(t)
	srv := r.newServer(t, memcachedProfile(t), swap.FastSwap(256, 10, true, func(int) float64 { return 2 }), 512)
	r.run(t, func(ctx context.Context, p *des.Proc) {
		served, err := srv.RunFor(ctx, 50*time.Millisecond, 3)
		if err != nil {
			t.Errorf("RunFor: %v", err)
			return
		}
		if served == 0 {
			t.Error("no ops served")
		}
		if p.Now() < 50*time.Millisecond {
			t.Errorf("stopped early at %v", p.Now())
		}
		if p.Now() > 60*time.Millisecond {
			t.Errorf("overran deadline: %v", p.Now())
		}
	})
}

func TestColdRestartRecovery(t *testing.T) {
	// The Figure 9 mechanism: after a cold restart, a background proactive
	// batch swap-in pump (PBS) restores the working set while the foreground
	// serves, recovering throughput much faster than fault-driven paging.
	measure := func(pbs bool) float64 {
		r := newRig(t)
		ratio := func(int) float64 { return 2 }
		cfg := swap.FastSwap(512, 10, false, ratio) // readahead off: random keys
		srv := r.newServer(t, memcachedProfile(t), cfg, 1024)
		mgr := srv.Manager()
		var served float64
		done := false
		if pbs {
			r.env.Go("pbs-pump", func(p *des.Proc) {
				ctx := des.NewContext(context.Background(), p)
				for !done {
					if mgr.ProactiveSwapIn(ctx, 64) == 0 {
						p.Sleep(time.Millisecond)
					}
				}
			})
		}
		r.run(t, func(ctx context.Context, p *des.Proc) {
			defer func() { done = true }()
			if err := srv.Populate(ctx, 64); err != nil {
				t.Errorf("Populate: %v", err)
				return
			}
			srv.ColdRestart(ctx)
			if _, err := srv.RunFor(ctx, 100*time.Millisecond, 11); err != nil {
				t.Errorf("RunFor: %v", err)
				return
			}
			served = float64(srv.Ops())
		})
		return served
	}
	withPBS := measure(true)
	noPBS := measure(false)
	if withPBS <= noPBS {
		t.Fatalf("PBS recovery %v not better than no-PBS %v", withPBS, noPBS)
	}
}
