// Package kv implements the in-memory server substrate for the paper's
// Figure 8 and Figure 9 experiments: Memcached-, Redis-, and VoltDB-shaped
// key-value servers whose heaps are paged by a swap.Manager. The store keeps
// real key/value semantics; every operation touches the heap page that holds
// the key, so server throughput is governed by where that page currently
// lives — resident memory, the node's shared pool, remote memory, or disk.
package kv

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"godm/internal/des"
	"godm/internal/metrics"
	"godm/internal/swap"
	"godm/internal/workload"
)

// Server is one key-value server instance.
type Server struct {
	profile workload.Profile
	mgr     *swap.Manager
	pages   int
	values  map[string][]byte
	ts      *metrics.TimeSeries
	ops     int64
}

// NewServer builds a server over pages heap pages managed by mgr, recording
// throughput into windows of tsWindow.
func NewServer(profile workload.Profile, mgr *swap.Manager, pages int, tsWindow time.Duration) (*Server, error) {
	if mgr == nil {
		return nil, errors.New("kv: nil swap manager")
	}
	if pages <= 1 {
		return nil, fmt.Errorf("kv: pages %d must be > 1", pages)
	}
	return &Server{
		profile: profile,
		mgr:     mgr,
		pages:   pages,
		values:  map[string][]byte{},
		ts:      metrics.NewTimeSeries(tsWindow),
	}, nil
}

// pageOf maps a key onto its heap page.
func (s *Server) pageOf(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32()) % s.pages
}

// Set stores a value, touching the key's heap page.
func (s *Server) Set(ctx context.Context, key string, value []byte) error {
	if err := s.mgr.Touch(ctx, s.pageOf(key), s.profile.ComputePerPage, true); err != nil {
		return fmt.Errorf("kv: set %q: %w", key, err)
	}
	s.values[key] = append([]byte(nil), value...)
	s.recordOp(ctx)
	return nil
}

// Get fetches a value, touching the key's heap page. The boolean reports
// presence.
func (s *Server) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := s.mgr.Touch(ctx, s.pageOf(key), s.profile.ComputePerPage, false); err != nil {
		return nil, false, fmt.Errorf("kv: get %q: %w", key, err)
	}
	v, ok := s.values[key]
	s.recordOp(ctx)
	return v, ok, nil
}

func (s *Server) recordOp(ctx context.Context) {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("kv: context does not carry a des.Proc")
	}
	s.ops++
	s.ts.Record(p.Now(), 1)
}

// Manager exposes the underlying swap manager (e.g. to run the proactive
// batch swap-in pump alongside the server).
func (s *Server) Manager() *swap.Manager { return s.mgr }

// Ops returns the total operations served.
func (s *Server) Ops() int64 { return s.ops }

// Throughput returns the per-window ops/sec series (Figure 9's curve).
func (s *Server) Throughput() []metrics.Point { return s.ts.Series() }

// Populate fills the heap: one representative key per page, forcing every
// page to materialize (and overflow through the swap hierarchy).
func (s *Server) Populate(ctx context.Context, valueBytes int) error {
	val := make([]byte, valueBytes)
	for pg := 0; pg < s.pages; pg++ {
		if err := s.mgr.Touch(ctx, pg, s.profile.ComputePerPage, true); err != nil {
			return fmt.Errorf("kv: populate page %d: %w", pg, err)
		}
		s.values[fmt.Sprintf("key-%d", pg)] = val
	}
	return nil
}

// ColdRestart pages the whole heap out, modelling the Figure 9 scenario
// where the server recovers from a fully swapped state.
func (s *Server) ColdRestart(ctx context.Context) {
	s.mgr.EvictAll(ctx)
}

// RunOps serves nOps operations drawn from the profile's trace generator
// (zipfian ETC mix for Memcached/Redis, transactions for VoltDB).
func (s *Server) RunOps(ctx context.Context, nOps int, seed int64) error {
	tr := workload.NewServerTrace(s.profile, s.pages, nOps, seed)
	for {
		a, ok := tr.Next()
		if !ok {
			return nil
		}
		if err := s.mgr.Touch(ctx, a.Page, a.Compute, a.Write); err != nil {
			return fmt.Errorf("kv: op on page %d: %w", a.Page, err)
		}
		s.recordOp(ctx)
	}
}

// RunFor serves trace operations until d of simulated time has elapsed,
// returning the operations completed (Figure 9 drives 300 s this way).
func (s *Server) RunFor(ctx context.Context, d time.Duration, seed int64) (int64, error) {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("kv: context does not carry a des.Proc")
	}
	deadline := p.Now() + d
	tr := workload.NewServerTrace(s.profile, s.pages, 1<<62, seed)
	var served int64
	for p.Now() < deadline {
		a, ok := tr.Next()
		if !ok {
			break
		}
		if err := s.mgr.Touch(ctx, a.Page, a.Compute, a.Write); err != nil {
			return served, fmt.Errorf("kv: op on page %d: %w", a.Page, err)
		}
		s.recordOp(ctx)
		served++
	}
	return served, nil
}
